(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index) plus a Bechamel
   microbenchmark suite over the core data structures.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- fig7 table1  -- selected targets
     ZYGOS_BENCH_SCALE=0.2 dune exec bench/main.exe   -- quicker pass *)

let scale =
  match Sys.getenv_opt "ZYGOS_BENCH_SCALE" with
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0. -> f
      | _ -> invalid_arg "ZYGOS_BENCH_SCALE must be a positive float")
  | None -> 1.0

(* ---- Bechamel microbenchmarks ---- *)

let micro_tests () =
  let open Bechamel in
  let heap_bench =
    let heap = Engine.Heap.create () in
    Test.make ~name:"engine: heap push+pop"
      (Staged.stage (fun () ->
           Engine.Heap.add heap ~time:1.0 ();
           ignore (Engine.Heap.pop_min heap : (float * unit) option)))
  in
  let rss = Net.Rss.create ~queues:16 () in
  let rss_bench =
    let counter = ref 0 in
    Test.make ~name:"net: toeplitz RSS dispatch"
      (Staged.stage (fun () ->
           incr counter;
           ignore (Net.Rss.queue_of_conn rss (!counter land 0x3ff) : int)))
  in
  let tally = Stats.Tally.create () in
  let tally_bench =
    Test.make ~name:"stats: tally record"
      (Staged.stage (fun () -> Stats.Tally.record tally 12.5))
  in
  let histogram = Stats.Histogram.create () in
  let histogram_bench =
    Test.make ~name:"stats: histogram record"
      (Staged.stage (fun () -> Stats.Histogram.record histogram 12.5))
  in
  let sched_bench =
    let module S = Core.Sched.Sim_sched in
    let sched = S.create ~cores:4 in
    let pcb = S.register sched ~conn:0 ~home:0 in
    Test.make ~name:"core: shuffle deliver+dispatch+complete"
      (Staged.stage (fun () ->
           S.deliver sched pcb ();
           match S.next_local sched ~core:0 with
           | Some (p, _, _) -> S.complete sched p
           | None -> assert false))
  in
  let btree = Silo.Btree.create () in
  let () =
    for i = 0 to 9_999 do
      ignore (Silo.Btree.insert btree (Silo.Key.of_int i) i : [ `Inserted | `Duplicate of int ])
    done
  in
  let btree_get_bench =
    let counter = ref 0 in
    Test.make ~name:"silo: btree get (10k keys)"
      (Staged.stage (fun () ->
           incr counter;
           ignore (Silo.Btree.get btree (Silo.Key.of_int (!counter mod 10_000)))))
  in
  let btree_churn_bench =
    let counter = ref 0 in
    Test.make ~name:"silo: btree insert+remove"
      (Staged.stage (fun () ->
           incr counter;
           let key = Silo.Key.of_int (100_000 + (!counter mod 1024)) in
           ignore (Silo.Btree.insert btree key 0 : [ `Inserted | `Duplicate of int ]);
           ignore (Silo.Btree.remove btree key : int option)))
  in
  let tpcc = Silo.Tpcc.load () in
  let worker = Silo.Db.worker (Silo.Tpcc.db tpcc) ~id:0 in
  let tpcc_rng = Engine.Rng.create ~seed:5 in
  let payment_bench =
    Test.make ~name:"silo: TPC-C Payment transaction"
      (Staged.stage (fun () ->
           ignore (Silo.Tpcc.execute tpcc worker tpcc_rng Silo.Tpcc.Payment : Silo.Tpcc.outcome)))
  in
  let neworder_bench =
    Test.make ~name:"silo: TPC-C NewOrder transaction"
      (Staged.stage (fun () ->
           ignore (Silo.Tpcc.execute tpcc worker tpcc_rng Silo.Tpcc.New_order : Silo.Tpcc.outcome)))
  in
  let store = Kvstore.Store.create ~capacity:10_000 () in
  let () = Kvstore.Store.set store "bench-key" "bench-value" in
  let kv_bench =
    let parser = Kvstore.Protocol.create_parser () in
    Test.make ~name:"kvstore: parse+execute GET"
      (Staged.stage (fun () ->
           match Kvstore.Protocol.feed parser "get bench-key\r\n" with
           | [ Ok cmd ] ->
               ignore (Kvstore.Protocol.execute store cmd : Kvstore.Protocol.response)
           | _ -> assert false))
  in
  [
    heap_bench;
    rss_bench;
    tally_bench;
    histogram_bench;
    sched_bench;
    btree_get_bench;
    btree_churn_bench;
    payment_bench;
    neworder_bench;
    kv_bench;
  ]

let micro ~scale =
  let open Bechamel in
  Experiments.Output.print_header "Microbenchmarks (Bechamel, ns per operation)";
  let quota = Time.second (Float.max 0.2 (0.5 *. scale)) in
  let cfg = Benchmark.cfg ~limit:1000 ~quota ~kde:None ~stabilize:false () in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let rows =
    List.map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        Hashtbl.fold
          (fun name bench acc ->
            let est = Analyze.one ols instance bench in
            let ns =
              match Analyze.OLS.estimates est with Some (x :: _) -> x | _ -> nan
            in
            [ name; Printf.sprintf "%.1f" ns ] :: acc)
          results [])
      (micro_tests ())
    |> List.concat
  in
  Experiments.Output.print_table ~columns:[ "operation"; "ns/op" ]
    ~rows:(List.sort compare rows)

(* ---- target registry and driver ---- *)

let targets = Experiments.Figures.all_targets @ [ ("micro", fun ~scale -> micro ~scale) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let selected =
    match args with
    | [] | [ "all" ] -> List.map fst targets
    | names ->
        List.iter
          (fun n ->
            if not (List.mem_assoc n targets) then begin
              Printf.eprintf "unknown target %S; available: %s\n" n
                (String.concat ", " (List.map fst targets));
              exit 1
            end)
          names;
        names
  in
  Printf.printf "ZygOS reproduction benchmarks (scale=%g; ZYGOS_BENCH_SCALE to change)\n" scale;
  List.iter
    (fun name ->
      let t0 = Unix.gettimeofday () in
      (List.assoc name targets) ~scale;
      Printf.printf "\n[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t0))
    selected
