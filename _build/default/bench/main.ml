(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index) plus a Bechamel
   microbenchmark suite over the core data structures.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- fig7 table1  -- selected targets
     dune exec bench/main.exe -- --json       -- also write BENCH_PR2.json
     ZYGOS_BENCH_SCALE=0.2 dune exec bench/main.exe   -- quicker pass *)

let scale =
  match Sys.getenv_opt "ZYGOS_BENCH_SCALE" with
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0. -> f
      | _ -> invalid_arg "ZYGOS_BENCH_SCALE must be a positive float")
  | None -> 1.0

(* Seed-commit ns/op for the two hot-path structures this PR rewrote
   (boxed heap entries, per-record [log]): median of three Bechamel runs
   of the seed implementation under the exact bench bodies below (depth-512
   heap, varying-magnitude histogram samples), 1s quota, same machine.
   BENCH_PR2.json reports current numbers next to these so the trajectory
   is visible without checking out the old commit. *)
let seed_baseline_ns = [ ("engine: heap push+pop", 221.0); ("stats: histogram record", 14.4) ]

(* ---- Bechamel microbenchmarks ---- *)

(* Some tests measure a block of [n] inner operations per staged call (to
   amortize loop overhead or batch a whole mini-simulation); their ns/op
   estimate is divided by [per_run] before reporting. *)
type micro = { test : Bechamel.Test.t; per_run : float }

let micro_tests () =
  let open Bechamel in
  let one name fn = { test = Test.make ~name (Staged.stage fn); per_run = 1. } in
  let heap_bench =
    (* Steady-state push+pop at depth 512: a sweep point keeps roughly one
       pending event per connection, so the representative cost includes a
       sift of depth ~9, not an empty-heap round trip. The rotating time
       keeps the inserted key landing at varied depths. *)
    let heap = Engine.Heap.create ~dummy:0 () in
    let () =
      for i = 1 to 512 do
        Engine.Heap.add heap ~time:(float_of_int (i * 7 mod 512)) 0
      done
    in
    let counter = ref 0 in
    one "engine: heap push+pop" (fun () ->
        incr counter;
        Engine.Heap.add heap ~time:(float_of_int (!counter * 7 mod 512)) 0;
        ignore (Engine.Heap.min_elt heap : int);
        Engine.Heap.drop_min heap)
  in
  let sim_cycle_bench =
    (* Steady-state engine cycle: two schedules, one cancel, one fire (the
       fire also skips the previous iteration's cancelled entry), touching
       the pool free list and the heap without allocating. *)
    let sim = Engine.Sim.create () in
    let noop () = () in
    one "sim: schedule+cancel+fire cycle" (fun () ->
        let _h1 : Engine.Sim.handle = Engine.Sim.schedule_after sim ~delay:1.0 noop in
        let h2 = Engine.Sim.schedule_after sim ~delay:2.0 noop in
        Engine.Sim.cancel sim h2;
        ignore (Engine.Sim.step sim : bool))
  in
  let experiments_bench =
    (* End-to-end cost per simulated request: a tiny ZygOS point (the
       paper's default sweep config at scale 0.05) amortized over its
       measured request count. *)
    let requests = 1_500 in
    let cfg =
      Experiments.Run.config ~cores:4 ~conns:128 ~requests ~seed:1
        ~system:Experiments.Run.Zygos ~service:(Engine.Dist.exponential 10.) ()
    in
    {
      test =
        Test.make ~name:"experiments: ns per simulated request"
          (Staged.stage (fun () ->
               ignore (Experiments.Run.run_point cfg ~load:0.5 : Experiments.Run.point)));
      per_run = float_of_int requests;
    }
  in
  let rss = Net.Rss.create ~queues:16 () in
  let rss_bench =
    let counter = ref 0 in
    one "net: toeplitz RSS dispatch" (fun () ->
        incr counter;
        ignore (Net.Rss.queue_of_conn rss (!counter land 0x3ff) : int))
  in
  let tally = Stats.Tally.create () in
  let tally_bench = one "stats: tally record" (fun () -> Stats.Tally.record tally 12.5) in
  let histogram = Stats.Histogram.create () in
  let histogram_bench =
    (* Latency samples vary in magnitude, which defeats the branch/operand
       caching a constant argument would enjoy inside [log]-style code. *)
    let vals =
      Array.init 1024 (fun i -> 0.5 +. (float_of_int (i * 193 mod 1024) *. 0.73))
    in
    let counter = ref 0 in
    one "stats: histogram record" (fun () ->
        incr counter;
        Stats.Histogram.record histogram (Array.unsafe_get vals (!counter land 1023)))
  in
  let sched_bench =
    let module S = Core.Sched.Sim_sched in
    let sched = S.create ~cores:4 in
    let pcb = S.register sched ~conn:0 ~home:0 in
    one "core: shuffle deliver+dispatch+complete" (fun () ->
        S.deliver sched pcb ();
        match S.next_local sched ~core:0 with
        | Some (p, _, _) -> S.complete sched p
        | None -> assert false)
  in
  let btree = Silo.Btree.create () in
  let () =
    for i = 0 to 9_999 do
      ignore (Silo.Btree.insert btree (Silo.Key.of_int i) i : [ `Inserted | `Duplicate of int ])
    done
  in
  let btree_get_bench =
    let counter = ref 0 in
    one "silo: btree get (10k keys)" (fun () ->
        incr counter;
        ignore (Silo.Btree.get btree (Silo.Key.of_int (!counter mod 10_000))))
  in
  let btree_churn_bench =
    let counter = ref 0 in
    one "silo: btree insert+remove" (fun () ->
        incr counter;
        let key = Silo.Key.of_int (100_000 + (!counter mod 1024)) in
        ignore (Silo.Btree.insert btree key 0 : [ `Inserted | `Duplicate of int ]);
        ignore (Silo.Btree.remove btree key : int option))
  in
  let tpcc = Silo.Tpcc.load () in
  let worker = Silo.Db.worker (Silo.Tpcc.db tpcc) ~id:0 in
  let tpcc_rng = Engine.Rng.create ~seed:5 in
  let payment_bench =
    one "silo: TPC-C Payment transaction" (fun () ->
        ignore (Silo.Tpcc.execute tpcc worker tpcc_rng Silo.Tpcc.Payment : Silo.Tpcc.outcome))
  in
  let neworder_bench =
    one "silo: TPC-C NewOrder transaction" (fun () ->
        ignore (Silo.Tpcc.execute tpcc worker tpcc_rng Silo.Tpcc.New_order : Silo.Tpcc.outcome))
  in
  let store = Kvstore.Store.create ~capacity:10_000 () in
  let () = Kvstore.Store.set store "bench-key" "bench-value" in
  let kv_bench =
    let parser = Kvstore.Protocol.create_parser () in
    one "kvstore: parse+execute GET" (fun () ->
        match Kvstore.Protocol.feed parser "get bench-key\r\n" with
        | [ Ok cmd ] -> ignore (Kvstore.Protocol.execute store cmd : Kvstore.Protocol.response)
        | _ -> assert false)
  in
  [
    heap_bench;
    sim_cycle_bench;
    experiments_bench;
    rss_bench;
    tally_bench;
    histogram_bench;
    sched_bench;
    btree_get_bench;
    btree_churn_bench;
    payment_bench;
    neworder_bench;
    kv_bench;
  ]

(* ns/op per microbenchmark, one Bechamel run each. *)
let micro_rows ~scale : (string * float) list =
  let open Bechamel in
  (* Floor of 1s per test regardless of sweep scale: the ns/op estimates
     (and the seed baselines they are compared against, measured at a 1s
     quota) need enough samples to be stable; scale only buys more beyond
     that. *)
  let quota = Time.second (Float.max 1.0 (0.5 *. scale)) in
  let cfg = Benchmark.cfg ~limit:1000 ~quota ~kde:None ~stabilize:false () in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  List.concat_map
    (fun { test; per_run } ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.fold
        (fun name bench acc ->
          let est = Analyze.one ols instance bench in
          let ns =
            match Analyze.OLS.estimates est with Some (x :: _) -> x | _ -> nan
          in
          (name, ns /. per_run) :: acc)
        results [])
    (micro_tests ())

let last_micro_rows : (string * float) list ref = ref []

let micro ~scale =
  Experiments.Output.print_header "Microbenchmarks (Bechamel, ns per operation)";
  let rows = micro_rows ~scale in
  last_micro_rows := rows;
  Experiments.Output.print_table ~columns:[ "operation"; "ns/op" ]
    ~rows:
      (List.sort compare
         (List.map (fun (name, ns) -> [ name; Printf.sprintf "%.1f" ns ]) rows))

(* ---- BENCH_PR2.json: the perf trajectory future PRs regress against ---- *)

let write_trajectory ~path ~scale ~micro ~wall_clock =
  let open Experiments.Output.Json in
  let number_map kvs = obj (List.map (fun (k, v) -> (k, num v)) kvs) in
  let improvements =
    List.filter_map
      (fun (name, seed_ns) ->
        match List.assoc_opt name micro with
        | Some now_ns when Float.is_finite now_ns && now_ns > 0. ->
            Some (name, (seed_ns -. now_ns) /. seed_ns)
        | _ -> None)
      seed_baseline_ns
  in
  let doc =
    obj
      [
        ("schema", str "zygos-bench/1");
        ("scale", num scale);
        ("micro_ns_per_op", number_map micro);
        ("targets_wall_clock_s", number_map wall_clock);
        ("seed_baseline_ns_per_op", number_map seed_baseline_ns);
        ("improvement_vs_seed", number_map improvements);
      ]
  in
  let oc = open_out path in
  output_string oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s (%d microbenchmarks, %d targets)\n" path (List.length micro)
    (List.length wall_clock)

(* ---- target registry and driver ---- *)

let targets = Experiments.Figures.all_targets @ [ ("micro", fun ~scale -> micro ~scale) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json_mode = List.mem "--json" args in
  let args = List.filter (fun a -> a <> "--json") args in
  let selected =
    match args with
    | [] | [ "all" ] -> List.map fst targets
    | names ->
        List.iter
          (fun n ->
            if not (List.mem_assoc n targets) then begin
              Printf.eprintf "unknown target %S; available: %s\n" n
                (String.concat ", " (List.map fst targets));
              exit 1
            end)
          names;
        names
  in
  (* --json needs the microbench table; run it even when only figure
     targets were selected explicitly. *)
  let selected =
    if json_mode && not (List.mem "micro" selected) then selected @ [ "micro" ] else selected
  in
  Printf.printf "ZygOS reproduction benchmarks (scale=%g; ZYGOS_BENCH_SCALE to change)\n" scale;
  let wall_clock = ref [] in
  List.iter
    (fun name ->
      let t0 = Unix.gettimeofday () in
      (List.assoc name targets) ~scale;
      let dt = Unix.gettimeofday () -. t0 in
      if name <> "micro" then wall_clock := (name, dt) :: !wall_clock;
      Printf.printf "\n[%s done in %.1fs]\n%!" name dt)
    selected;
  if json_mode then
    write_trajectory ~path:"BENCH_PR2.json" ~scale ~micro:!last_micro_rows
      ~wall_clock:(List.rev !wall_clock)
