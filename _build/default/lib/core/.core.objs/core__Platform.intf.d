lib/core/platform.mli:
