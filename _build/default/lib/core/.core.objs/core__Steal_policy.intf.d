lib/core/steal_policy.mli: Engine
