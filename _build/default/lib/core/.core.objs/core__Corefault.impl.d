lib/core/corefault.ml: Array Float List Printf
