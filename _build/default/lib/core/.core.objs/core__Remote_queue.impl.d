lib/core/remote_queue.ml: List Platform Queue
