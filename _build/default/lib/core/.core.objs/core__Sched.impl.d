lib/core/sched.ml: Array List Platform Queue
