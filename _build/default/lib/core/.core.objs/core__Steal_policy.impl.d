lib/core/steal_policy.ml: Array Engine
