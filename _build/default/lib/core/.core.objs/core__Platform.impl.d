lib/core/platform.ml: Mutex
