lib/core/remote_queue.mli: Platform
