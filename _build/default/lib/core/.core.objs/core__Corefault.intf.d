lib/core/corefault.mli:
