lib/core/sched.mli: Platform
