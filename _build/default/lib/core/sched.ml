module type S = sig
  type lock

  type source = Local | Stolen of int

  type state = Idle | Ready | Busy

  type 'ev pcb

  type 'ev t

  val create : cores:int -> 'ev t

  val cores : 'ev t -> int

  val register : 'ev t -> conn:int -> home:int -> 'ev pcb

  val conn : 'ev pcb -> int

  val home : 'ev pcb -> int

  val state : 'ev pcb -> state

  val pending_events : 'ev pcb -> int

  val deliver : 'ev t -> 'ev pcb -> 'ev -> unit

  val next : 'ev t -> core:int -> steal_order:int array -> ('ev pcb * 'ev list * source) option

  val next_local : 'ev t -> core:int -> ('ev pcb * 'ev list * source) option

  val complete : 'ev t -> 'ev pcb -> unit

  val queue_length : 'ev t -> core:int -> int

  val has_ready : 'ev t -> bool

  type counters = {
    local_dispatches : int;
    steal_dispatches : int;
    local_events : int;
    stolen_events : int;
  }

  val counters : 'ev t -> core:int -> counters

  val total_counters : 'ev t -> counters

  val steal_fraction : 'ev t -> float
end

module Make (L : Platform.LOCK) : S with type lock = L.t = struct
  type lock = L.t

  type source = Local | Stolen of int

  type state = Idle | Ready | Busy

  type 'ev pcb = {
    conn_id : int;
    home_core : int;
    plock : L.t;  (* guards [events] and [pcb_state] *)
    events : 'ev Queue.t;
    mutable pcb_state : state;
  }

  type 'ev core_state = {
    qlock : L.t;  (* guards [shuffle]; §5's one spinlock per core *)
    shuffle : 'ev pcb Queue.t;
    mutable local_dispatches : int;
    mutable steal_dispatches : int;
    mutable local_events : int;
    mutable stolen_events : int;
  }

  type 'ev t = { core_states : 'ev core_state array }

  let create ~cores =
    if cores < 1 then invalid_arg "Sched.create: cores < 1";
    let make_core _ =
      {
        qlock = L.create ();
        shuffle = Queue.create ();
        local_dispatches = 0;
        steal_dispatches = 0;
        local_events = 0;
        stolen_events = 0;
      }
    in
    { core_states = Array.init cores make_core }

  let cores t = Array.length t.core_states

  let register t ~conn ~home =
    if home < 0 || home >= cores t then invalid_arg "Sched.register: home out of range";
    { conn_id = conn; home_core = home; plock = L.create (); events = Queue.create ();
      pcb_state = Idle }

  let conn pcb = pcb.conn_id

  let home pcb = pcb.home_core

  let state pcb = pcb.pcb_state

  let pending_events pcb = Queue.length pcb.events

  (* Lock order is always PCB lock before shuffle-queue lock, both here and
     in [complete]; [dispatch_from] takes them in the opposite nesting but
     never holds both (the queue lock is released before the PCB lock is
     taken — safe because only the dispatcher that popped the PCB can see
     it in Ready-but-not-in-queue limbo). *)
  let enqueue_ready t pcb =
    let c = t.core_states.(pcb.home_core) in
    L.lock c.qlock;
    Queue.add pcb c.shuffle;
    L.unlock c.qlock

  let deliver t pcb ev =
    L.lock pcb.plock;
    Queue.add ev pcb.events;
    let became_ready = pcb.pcb_state = Idle in
    if became_ready then pcb.pcb_state <- Ready;
    if became_ready then begin
      enqueue_ready t pcb;
      L.unlock pcb.plock
    end
    else L.unlock pcb.plock

  let drain_events pcb =
    let rec loop acc =
      match Queue.take_opt pcb.events with
      | Some ev -> loop (ev :: acc)
      | None -> List.rev acc
    in
    loop []

  (* Pop one ready PCB from [victim]'s shuffle queue and acquire it.
     Stealing uses try_lock and gives up on contention (§5). *)
  let dispatch_from t ~core ~victim =
    let c = t.core_states.(victim) in
    let stealing = victim <> core in
    let locked = if stealing then L.try_lock c.qlock else (L.lock c.qlock; true) in
    if not locked then None
    else begin
      let popped = Queue.take_opt c.shuffle in
      L.unlock c.qlock;
      match popped with
      | None -> None
      | Some pcb ->
          L.lock pcb.plock;
          assert (pcb.pcb_state = Ready);
          pcb.pcb_state <- Busy;
          let batch = drain_events pcb in
          L.unlock pcb.plock;
          let n = List.length batch in
          let me = t.core_states.(core) in
          if stealing then begin
            me.steal_dispatches <- me.steal_dispatches + 1;
            me.stolen_events <- me.stolen_events + n
          end
          else begin
            me.local_dispatches <- me.local_dispatches + 1;
            me.local_events <- me.local_events + n
          end;
          Some (pcb, batch, if stealing then Stolen victim else Local)
    end

  let next t ~core ~steal_order =
    match dispatch_from t ~core ~victim:core with
    | Some _ as r -> r
    | None ->
        let n = Array.length steal_order in
        let rec try_victims i =
          if i >= n then None
          else begin
            let victim = steal_order.(i) in
            if victim = core then try_victims (i + 1)
            else
              match dispatch_from t ~core ~victim with
              | Some _ as r -> r
              | None -> try_victims (i + 1)
          end
        in
        try_victims 0

  let next_local t ~core = dispatch_from t ~core ~victim:core

  let complete t pcb =
    L.lock pcb.plock;
    if pcb.pcb_state <> Busy then begin
      L.unlock pcb.plock;
      invalid_arg "Sched.complete: pcb not busy"
    end;
    if Queue.is_empty pcb.events then pcb.pcb_state <- Idle
    else begin
      pcb.pcb_state <- Ready;
      enqueue_ready t pcb
    end;
    L.unlock pcb.plock

  let queue_length t ~core =
    let c = t.core_states.(core) in
    L.lock c.qlock;
    let n = Queue.length c.shuffle in
    L.unlock c.qlock;
    n

  let has_ready t =
    Array.exists (fun c -> not (Queue.is_empty c.shuffle)) t.core_states

  type counters = {
    local_dispatches : int;
    steal_dispatches : int;
    local_events : int;
    stolen_events : int;
  }

  let counters t ~core =
    let c = t.core_states.(core) in
    {
      local_dispatches = c.local_dispatches;
      steal_dispatches = c.steal_dispatches;
      local_events = c.local_events;
      stolen_events = c.stolen_events;
    }

  let total_counters t =
    let add (acc : counters) (c : _ core_state) : counters =
      {
        local_dispatches = acc.local_dispatches + c.local_dispatches;
        steal_dispatches = acc.steal_dispatches + c.steal_dispatches;
        local_events = acc.local_events + c.local_events;
        stolen_events = acc.stolen_events + c.stolen_events;
      }
    in
    Array.fold_left add
      { local_dispatches = 0; steal_dispatches = 0; local_events = 0; stolen_events = 0 }
      t.core_states

  let steal_fraction t =
    let c = total_counters t in
    let total = c.local_events + c.stolen_events in
    if total = 0 then 0. else float_of_int c.stolen_events /. float_of_int total
end

module Sim_sched = Make (Platform.Nolock)
module Mt_sched = Make (Platform.Mutex_lock)
