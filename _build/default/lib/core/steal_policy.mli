(** Idle-loop polling policy (§5, "Idle loop polling logic").

    A ZygOS core that finds nothing to do polls, in priority order:
    (a) the head of its own NIC hardware descriptor ring,
    (b) the shuffle queues of all other cores,
    (c) the unprocessed software packet queues of all other cores,
    (d) the NIC hardware descriptor rings of all other cores;
    for steps (b)–(d) the order in which the other cores are visited is
    randomized to avoid herding of thieves onto one victim.

    This module produces those randomized victim orders. It also provides
    the deterministic round-robin order used by the `ablate-poll`
    ablation. *)

type t

val create : rng:Engine.Rng.t -> cores:int -> self:int -> t
(** Policy state for one core. Raises [Invalid_argument] when [self] is out
    of range or [cores < 1]. *)

val self : t -> int

val victim_order : t -> int array
(** A fresh random permutation of all cores except [self]. The returned
    array is reused by the next call — copy it to retain it. *)

val round_robin_order : t -> int array
(** Deterministic order [self+1, self+2, ..., self-1 (mod cores)] — the
    naive policy the ablation benchmark compares against. *)
