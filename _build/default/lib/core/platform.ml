module type LOCK = sig
  type t

  val create : unit -> t

  val lock : t -> unit

  val unlock : t -> unit

  val try_lock : t -> bool
end

module Nolock : LOCK = struct
  (* In a single-threaded simulation a lock can never be contended, but a
     bug in the scheduler's lock discipline (double acquire, unlock without
     lock) would be a real bug in the multicore host too — so track the
     held bit and assert on misuse. *)
  type t = { mutable held : bool }

  let create () = { held = false }

  let lock t =
    assert (not t.held);
    t.held <- true

  let unlock t =
    assert t.held;
    t.held <- false

  let try_lock t =
    if t.held then false
    else begin
      t.held <- true;
      true
    end
end

module Mutex_lock : LOCK = struct
  type t = Mutex.t

  let create () = Mutex.create ()

  let lock = Mutex.lock

  let unlock = Mutex.unlock

  let try_lock = Mutex.try_lock
end
