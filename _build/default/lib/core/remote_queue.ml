module Make (L : Platform.LOCK) = struct
  type 'a t = { lock : L.t; items : 'a Queue.t; mutable pushed : int }

  let create () = { lock = L.create (); items = Queue.create (); pushed = 0 }

  let push t x =
    L.lock t.lock;
    Queue.add x t.items;
    t.pushed <- t.pushed + 1;
    L.unlock t.lock

  let drain t =
    L.lock t.lock;
    let rec loop acc =
      match Queue.take_opt t.items with
      | Some x -> loop (x :: acc)
      | None -> List.rev acc
    in
    let out = loop [] in
    L.unlock t.lock;
    out

  let length t =
    L.lock t.lock;
    let n = Queue.length t.items in
    L.unlock t.lock;
    n

  let is_empty t = length t = 0

  let pushed_total t = t.pushed
end
