(** Locking abstraction separating the scheduling logic from its host.

    The ZygOS scheduler ({!Sched}) runs in two very different hosts:

    - inside the single-threaded discrete-event simulator (lib/systems),
      where "locks" only assert the protocol and try-locks always succeed;
    - on real OCaml 5 domains (lib/runtime), where they are actual mutexes.

    Keeping the shuffle-layer code identical across both means the
    simulated experiments exercise the very same state-machine and queue
    code the real executor runs. *)

module type LOCK = sig
  type t

  val create : unit -> t

  val lock : t -> unit

  val unlock : t -> unit

  val try_lock : t -> bool
  (** Non-blocking acquisition, used by remote cores for steal attempts
      (§5: "Remote cores rely on trylock for their steal attempts"). *)
end

module Nolock : LOCK
(** For single-threaded simulation: lock/unlock only check (via assertions)
    that the lock discipline is respected; [try_lock] always succeeds. *)

module Mutex_lock : LOCK
(** Real [Stdlib.Mutex]-based locks for the multicore runtime. *)
