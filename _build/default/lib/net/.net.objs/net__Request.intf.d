lib/net/request.mli: Format
