lib/net/ring.ml: Queue
