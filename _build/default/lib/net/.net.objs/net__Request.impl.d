lib/net/request.ml: Format
