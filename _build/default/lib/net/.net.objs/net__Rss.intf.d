lib/net/rss.mli:
