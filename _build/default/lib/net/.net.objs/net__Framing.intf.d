lib/net/framing.mli:
