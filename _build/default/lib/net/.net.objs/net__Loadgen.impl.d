lib/net/loadgen.ml: Array Engine Queue Request Stats
