lib/net/loadgen.ml: Array Engine Float Hashtbl Option Queue Request Stats
