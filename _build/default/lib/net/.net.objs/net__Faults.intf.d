lib/net/faults.mli: Engine
