lib/net/loadgen.mli: Engine Request Stats
