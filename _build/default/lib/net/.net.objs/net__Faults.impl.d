lib/net/faults.ml: Bytes Char Engine Float Printf String
