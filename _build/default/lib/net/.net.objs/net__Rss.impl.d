lib/net/rss.ml: Array Bytes Char Int32 String
