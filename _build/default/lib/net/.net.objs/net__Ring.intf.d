lib/net/ring.mli:
