lib/net/framing.ml: Buffer Bytes Float Int32 Int64 List Printf String
