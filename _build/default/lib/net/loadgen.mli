(** Open-loop load generator (the reproduction's "mutilate").

    Generates RPC requests with Poisson inter-arrival times at a target
    aggregate rate, each on a uniformly random connection (§3.1: "incoming
    requests follow a Poisson inter-arrival time on randomly-selected
    connections"), with service demands drawn from a configurable
    distribution. Because it is open-loop, arrivals never wait for
    responses — a connection may accumulate several outstanding requests
    (the pipelining that §6.2 discusses).

    Latency is recorded client-side at response completion, but only for
    requests that arrive inside the measurement window (warmup and drain
    excluded). The generator also checks the paper's ordering guarantee:
    responses on one connection must come back in request order (§4.3). *)

type t

(** How arrivals pick their connection. [Uniform] is the paper's §3.1
    setup; [Hot_cold] models connection skew ("some clients request
    substantially more data than the average", §2.3's persistent
    imbalance): the first [hot_fraction] of connections receive
    [hot_load] of the traffic. *)
type conn_selection =
  | Uniform
  | Hot_cold of { hot_fraction : float; hot_load : float }

val create :
  Engine.Sim.t ->
  rng:Engine.Rng.t ->
  conns:int ->
  rate:float ->
  service:Engine.Dist.t ->
  ?selection:conn_selection ->
  ?service_fn:(conn:int -> float) ->
  unit ->
  t
(** [rate] is in requests per µs (e.g. 1.0 = 1 MRPS). The target server is
    attached afterwards with {!set_target}. [selection] defaults to
    [Uniform].

    [service_fn], when given, overrides [service]: it is invoked once per
    generated request to produce its service demand (µs). This is how real
    application work is coupled into the simulation (see
    {!Experiments.Appserve}): the function executes actual application
    code — a Silo transaction, a memcached op — measures it, and the
    simulated server then "serves" that measured demand. *)

val set_target : t -> (Request.t -> unit) -> unit
(** Where generated requests are delivered (the server's submit
    function). Must be called before {!start}. *)

val start : t -> warmup:float -> measure:float -> unit
(** Schedule the arrival process: requests are generated from sim-time now
    until [warmup + measure]; those arriving in [[warmup, warmup+measure))
    are measured. Run the simulation afterwards to completion. *)

val complete : t -> Request.t -> unit
(** Called by the server when the response for [req] is on the wire.
    Records latency for measured requests and verifies per-connection
    ordering. Completing a request twice raises [Invalid_argument]. *)

val tally : t -> Stats.Tally.t
(** Latencies (µs) of measured, completed requests. *)

val generated : t -> int
(** Total requests generated (including warmup). *)

val measured_generated : t -> int

val measured_completed : t -> int

val order_violations : t -> int
(** Completions that came back out of order on their connection. Always 0
    for a correct system model. *)

val throughput : t -> float
(** Achieved throughput: responses leaving the server {e during} the
    measurement window, per µs. Beyond saturation this plateaus at system
    capacity while latencies blow up. *)

val conns : t -> int
