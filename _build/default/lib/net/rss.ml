(* The default secret key Microsoft publishes with the RSS specification
   (also the default of many NIC drivers). *)
let default_key =
  "\x6d\x5a\x56\xda\x25\x5b\x0e\xc2\x41\x67\x25\x3d\x43\xa3\x8f\xb0\xd0\xca\x2b\xcb\xae\x7b\x30\xb4\x77\xcb\x2d\xa3\x80\x30\xf2\x0c\x6a\x42\xb7\x3b\xbe\xac\x01\xfa"

let indirection_entries = 128

type t = { key : string; table : int array }

let create ?(key = default_key) ~queues () =
  if queues < 1 then invalid_arg "Rss.create: queues < 1";
  if String.length key < 16 then invalid_arg "Rss.create: key too short";
  let table = Array.init indirection_entries (fun i -> i mod queues) in
  { key; table }

let toeplitz ~key input =
  let hash = ref 0l in
  (* Sliding 32-bit window of the key, starting at its first 32 bits. *)
  let key_bits i =
    (* Bit [i] of the key, MSB-first. *)
    let byte = Char.code key.[i / 8] in
    byte lsr (7 - (i mod 8)) land 1
  in
  let key_window_at bit_pos =
    let w = ref 0l in
    for i = 0 to 31 do
      w := Int32.logor (Int32.shift_left !w 1) (Int32.of_int (key_bits (bit_pos + i)))
    done;
    !w
  in
  let nbits = 8 * Bytes.length input in
  if String.length key * 8 < nbits + 32 then invalid_arg "Rss.toeplitz: key too short for input";
  for i = 0 to nbits - 1 do
    let byte = Char.code (Bytes.get input (i / 8)) in
    let bit = byte lsr (7 - (i mod 8)) land 1 in
    if bit = 1 then hash := Int32.logxor !hash (key_window_at i)
  done;
  !hash

let tuple_bytes ~src_ip ~dst_ip ~src_port ~dst_port =
  let b = Bytes.create 12 in
  let put32 off v =
    Bytes.set b off (Char.chr (Int32.to_int (Int32.shift_right_logical v 24) land 0xff));
    Bytes.set b (off + 1) (Char.chr (Int32.to_int (Int32.shift_right_logical v 16) land 0xff));
    Bytes.set b (off + 2) (Char.chr (Int32.to_int (Int32.shift_right_logical v 8) land 0xff));
    Bytes.set b (off + 3) (Char.chr (Int32.to_int v land 0xff))
  in
  let put16 off v =
    Bytes.set b off (Char.chr (v lsr 8 land 0xff));
    Bytes.set b (off + 1) (Char.chr (v land 0xff))
  in
  put32 0 src_ip;
  put32 4 dst_ip;
  put16 8 src_port;
  put16 10 dst_port;
  b

let queue_of_tuple t ~src_ip ~dst_ip ~src_port ~dst_port =
  let h = toeplitz ~key:t.key (tuple_bytes ~src_ip ~dst_ip ~src_port ~dst_port) in
  let idx = Int32.to_int (Int32.logand h 0x7fl) in
  t.table.(idx)

let conn_tuple c =
  let src_ip =
    Int32.logor 0x0A000000l (* 10.0.0.0 *)
      (Int32.of_int (((c / 250) lsl 8) lor ((c mod 250) + 1)))
  in
  let src_port = 1024 + c in
  (src_ip, 0x0A000001l, src_port, 8000)

let queue_of_conn t c =
  let src_ip, dst_ip, src_port, dst_port = conn_tuple c in
  queue_of_tuple t ~src_ip ~dst_ip ~src_port ~dst_port

let slots _t = indirection_entries

let slot_of_conn t c =
  let src_ip, dst_ip, src_port, dst_port = conn_tuple c in
  let h = toeplitz ~key:t.key (tuple_bytes ~src_ip ~dst_ip ~src_port ~dst_port) in
  Int32.to_int (Int32.logand h 0x7fl)

let queue_of_slot t slot = t.table.(slot)

let set_slot t ~slot ~queue =
  if slot < 0 || slot >= indirection_entries then invalid_arg "Rss.set_slot: slot out of range";
  if queue < 0 then invalid_arg "Rss.set_slot: negative queue";
  t.table.(slot) <- queue

let queues t = 1 + Array.fold_left max 0 t.table

let histogram_of_conns t n =
  let hist = Array.make (queues t) 0 in
  for c = 0 to n - 1 do
    let q = queue_of_conn t c in
    hist.(q) <- hist.(q) + 1
  done;
  hist
