module Sim = Engine.Sim
module Rng = Engine.Rng
module Dist = Engine.Dist

type conn_selection =
  | Uniform
  | Hot_cold of { hot_fraction : float; hot_load : float }

type t = {
  sim : Sim.t;
  rng : Rng.t;
  conns : int;
  rate : float;
  service : Dist.t;
  selection : conn_selection;
  service_fn : (conn:int -> float) option;
  mutable target : (Request.t -> unit) option;
  mutable next_id : int;
  mutable generated : int;
  mutable measured_generated : int;
  mutable measured_completed : int;
  mutable order_violations : int;
  mutable measure_span : float;
  mutable measure_start : float;
  mutable measure_end : float;
  mutable window_completions : int;
  latencies : Stats.Tally.t;
  outstanding : int Queue.t array;  (* per-conn FIFO of pending request ids *)
}

let create sim ~rng ~conns ~rate ~service ?(selection = Uniform) ?service_fn () =
  if conns < 1 then invalid_arg "Loadgen.create: conns < 1";
  if rate <= 0. then invalid_arg "Loadgen.create: rate <= 0";
  (match selection with
  | Uniform -> ()
  | Hot_cold { hot_fraction; hot_load } ->
      if hot_fraction <= 0. || hot_fraction >= 1. || hot_load <= 0. || hot_load >= 1. then
        invalid_arg "Loadgen.create: Hot_cold fractions must be in (0, 1)");
  {
    sim;
    rng;
    conns;
    rate;
    service;
    selection;
    service_fn;
    target = None;
    next_id = 0;
    generated = 0;
    measured_generated = 0;
    measured_completed = 0;
    order_violations = 0;
    measure_span = 0.;
    measure_start = infinity;
    measure_end = infinity;
    window_completions = 0;
    latencies = Stats.Tally.create ();
    outstanding = Array.init conns (fun _ -> Queue.create ());
  }

let set_target t f = t.target <- Some f

let emit t ~measure_start ~stop_at =
  let target =
    match t.target with
    | Some f -> f
    | None -> invalid_arg "Loadgen: no target set"
  in
  let now = Sim.now t.sim in
  let conn =
    match t.selection with
    | Uniform -> Rng.int t.rng t.conns
    | Hot_cold { hot_fraction; hot_load } ->
        let hot_count = max 1 (int_of_float (hot_fraction *. float_of_int t.conns)) in
        if Rng.bernoulli t.rng hot_load then Rng.int t.rng hot_count
        else if t.conns > hot_count then hot_count + Rng.int t.rng (t.conns - hot_count)
        else Rng.int t.rng t.conns
  in
  let service =
    match t.service_fn with
    | Some f -> f ~conn
    | None -> Dist.sample t.service t.rng
  in
  let measured = now >= measure_start && now < stop_at in
  let req = Request.make ~id:t.next_id ~conn ~arrival:now ~service ~measured in
  t.next_id <- t.next_id + 1;
  t.generated <- t.generated + 1;
  if measured then t.measured_generated <- t.measured_generated + 1;
  Queue.add req.Request.id t.outstanding.(conn);
  target req

let start t ~warmup ~measure =
  if t.target = None then invalid_arg "Loadgen.start: no target set";
  if measure <= 0. then invalid_arg "Loadgen.start: measure <= 0";
  let t0 = Sim.now t.sim in
  let measure_start = t0 +. warmup in
  let stop_at = measure_start +. measure in
  t.measure_span <- measure;
  t.measure_start <- measure_start;
  t.measure_end <- stop_at;
  let rec arrival () =
    if Sim.now t.sim < stop_at then begin
      emit t ~measure_start ~stop_at;
      let gap = Rng.exponential t.rng ~mean:(1. /. t.rate) in
      ignore (Sim.schedule_after t.sim ~delay:gap arrival : Sim.handle)
    end
  in
  let first_gap = Rng.exponential t.rng ~mean:(1. /. t.rate) in
  ignore (Sim.schedule_after t.sim ~delay:first_gap arrival : Sim.handle)

let complete t (req : Request.t) =
  if Request.is_completed req then invalid_arg "Loadgen.complete: already completed";
  req.Request.completion <- Sim.now t.sim;
  (* Per-connection ordering check (§4.3): the completed request must be
     the oldest outstanding one on its connection. *)
  let q = t.outstanding.(req.Request.conn) in
  (match Queue.take_opt q with
  | Some id when id = req.Request.id -> ()
  | Some _ | None ->
      t.order_violations <- t.order_violations + 1;
      (* Drop the stale entry for this id so the queue does not grow. *)
      let keep = Queue.create () in
      Queue.iter (fun id -> if id <> req.Request.id then Queue.add id keep) q;
      Queue.clear q;
      Queue.transfer keep q);
  (* Achieved throughput counts every completion inside the measurement
     window, whichever request it belongs to — beyond saturation it
     plateaus at the system's capacity instead of tracking the offered
     rate. *)
  let now = Sim.now t.sim in
  if now >= t.measure_start && now < t.measure_end then
    t.window_completions <- t.window_completions + 1;
  if req.Request.measured then begin
    if now < t.measure_end then t.measured_completed <- t.measured_completed + 1;
    (* Latency is recorded for every measured request, so overload shows
       up in the tail. *)
    Stats.Tally.record t.latencies (Request.latency req)
  end

let tally t = t.latencies

let generated t = t.generated

let measured_generated t = t.measured_generated

let measured_completed t = t.measured_completed

let order_violations t = t.order_violations

let throughput t =
  if t.measure_span = 0. then 0. else float_of_int t.window_completions /. t.measure_span

let conns t = t.conns
