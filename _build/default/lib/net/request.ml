type t = {
  id : int;
  conn : int;
  arrival : float;
  service : float;
  measured : bool;
  mutable started : float;
  mutable completion : float;
}

let make ~id ~conn ~arrival ~service ~measured =
  { id; conn; arrival; service; measured; started = -1.; completion = -1. }

let is_completed t = t.completion >= 0.

let latency t =
  if not (is_completed t) then invalid_arg "Request.latency: not completed";
  t.completion -. t.arrival

let pp ppf t =
  Format.fprintf ppf "req#%d conn=%d arrival=%.3f service=%.3f completion=%.3f" t.id t.conn
    t.arrival t.service t.completion
