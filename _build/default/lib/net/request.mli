(** A remote procedure call in flight.

    Requests are created by the load generator ({!Loadgen}), carried through
    a simulated server system (lib/systems), and completed when the response
    is written back "on the wire". Latency is measured client-side as
    [completion - arrival], exactly as the paper measures with mutilate. *)

type t = {
  id : int;  (** unique, increasing in arrival order *)
  conn : int;  (** connection carrying this RPC *)
  arrival : float;  (** sim time the request hits the server NIC (µs) *)
  service : float;  (** application service demand (µs) *)
  measured : bool;  (** inside the measurement window (not warmup/drain)? *)
  mutable started : float;  (** sim time application execution began *)
  mutable completion : float;  (** sim time the response was sent; -1 if pending *)
}

val make : id:int -> conn:int -> arrival:float -> service:float -> measured:bool -> t

val latency : t -> float
(** [completion - arrival]. Raises [Invalid_argument] if not completed. *)

val is_completed : t -> bool

val pp : Format.formatter -> t -> unit
