(** Binary RPC framing over a byte stream: the application-level job the
    paper's servers all perform ("identify RPC boundaries", §2.1) and the
    reason ZygOS cannot re-split work inside a connection ("ZygOS doesn't
    know the boundaries of the requests in the TCP byte stream", §6.2).

    Wire format: each message is a 4-byte big-endian length followed by
    the payload. {!segment} splits an encoded stream into MTU-sized
    packets, and {!Reassembler} is the per-connection state machine that
    turns arbitrarily fragmented packets back into complete messages — in
    order, across any packetization.

    {!Spin} is the paper's synthetic microbenchmark protocol on top: a
    request carries an id and a spin duration in µs (§3.1/§3.3). *)

val max_message : int
(** Maximum payload size accepted (16 MiB); larger lengths are treated as
    stream corruption. *)

val encode : string -> string
(** Frame one payload (length prefix + bytes). Raises [Invalid_argument]
    beyond {!max_message}. *)

val segment : ?mtu:int -> string -> string list
(** Split a wire stream into packets of at most [mtu] bytes (default
    1460, an Ethernet TCP segment). Raises [Invalid_argument] if
    [mtu < 1]. The concatenation of the result is the input. *)

val packets_per_message : ?mtu:int -> int -> int
(** How many packets a message of the given payload size occupies — the
    systems' [rpc_packets] parameter for a given workload. *)

module Reassembler : sig
  type t

  val create : unit -> t

  val feed : t -> string -> (string list, string) result
  (** Consume one packet (any fragmentation); returns the payloads
      completed by it, in stream order, or [Error reason] on a corrupt
      length prefix (the stream is then unusable). *)

  val pending_bytes : t -> int
  (** Bytes buffered awaiting the rest of a message. *)
end

(** The synthetic microbenchmark RPC: "spin for this long, then reply". *)
module Spin : sig
  type request = { id : int; spin_us : float }

  val encode_request : request -> string
  (** Framed wire bytes of a request. *)

  val decode_request : string -> (request, string) result
  (** Decode one reassembled payload. *)

  val encode_response : request -> string
  (** Framed response echoing the id. *)

  val decode_response : string -> (int, string) result
end
