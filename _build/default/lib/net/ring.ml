type 'a t = {
  capacity : int;
  queue : 'a Queue.t;
  mutable dropped : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Ring.create: capacity < 1";
  { capacity; queue = Queue.create (); dropped = 0 }

let push t x =
  if Queue.length t.queue >= t.capacity then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    Queue.add x t.queue;
    true
  end

let pop t = Queue.take_opt t.queue

let peek t = Queue.peek_opt t.queue

let length t = Queue.length t.queue

let is_empty t = Queue.is_empty t.queue

let capacity t = t.capacity

let drops t = t.dropped

let iter f t = Queue.iter f t.queue
