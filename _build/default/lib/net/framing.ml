let max_message = 16 * 1024 * 1024

let encode payload =
  let n = String.length payload in
  if n > max_message then invalid_arg "Framing.encode: payload too large";
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

let segment ?(mtu = 1460) stream =
  if mtu < 1 then invalid_arg "Framing.segment: mtu < 1";
  let len = String.length stream in
  let rec loop off acc =
    if off >= len then List.rev acc
    else begin
      let n = min mtu (len - off) in
      loop (off + n) (String.sub stream off n :: acc)
    end
  in
  loop 0 []

let packets_per_message ?(mtu = 1460) payload_size =
  if payload_size < 0 then invalid_arg "Framing.packets_per_message: negative size";
  let wire = 4 + payload_size in
  (wire + mtu - 1) / mtu

module Reassembler = struct
  type t = { buf : Buffer.t; mutable consumed : int }

  let create () = { buf = Buffer.create 256; consumed = 0 }

  let pending_bytes t = Buffer.length t.buf - t.consumed

  let compact t =
    if t.consumed > 4096 && t.consumed * 2 > Buffer.length t.buf then begin
      let rest = Buffer.sub t.buf t.consumed (Buffer.length t.buf - t.consumed) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.consumed <- 0
    end

  let peek_len t =
    if pending_bytes t < 4 then None
    else begin
      let b = Bytes.create 4 in
      for i = 0 to 3 do
        Bytes.set b i (Buffer.nth t.buf (t.consumed + i))
      done;
      Some (Int32.to_int (Bytes.get_int32_be b 0))
    end

  let feed t packet =
    Buffer.add_string t.buf packet;
    let rec drain acc =
      match peek_len t with
      | None -> Ok (List.rev acc)
      | Some n when n < 0 || n > max_message ->
          Error (Printf.sprintf "corrupt length prefix: %d" n)
      | Some n ->
          if pending_bytes t < 4 + n then Ok (List.rev acc)
          else begin
            let payload = Buffer.sub t.buf (t.consumed + 4) n in
            t.consumed <- t.consumed + 4 + n;
            drain (payload :: acc)
          end
    in
    let r = drain [] in
    compact t;
    r
end

module Spin = struct
  type request = { id : int; spin_us : float }

  let encode_request { id; spin_us } =
    let b = Bytes.create 16 in
    Bytes.set_int64_be b 0 (Int64.of_int id);
    Bytes.set_int64_be b 8 (Int64.bits_of_float spin_us);
    encode (Bytes.unsafe_to_string b)

  let decode_request payload =
    if String.length payload <> 16 then Error "spin request must be 16 bytes"
    else begin
      let id = Int64.to_int (String.get_int64_be payload 0) in
      let spin_us = Int64.float_of_bits (String.get_int64_be payload 8) in
      if Float.is_nan spin_us || spin_us < 0. then Error "invalid spin duration"
      else Ok { id; spin_us }
    end

  let encode_response { id; _ } =
    let b = Bytes.create 8 in
    Bytes.set_int64_be b 0 (Int64.of_int id);
    encode (Bytes.unsafe_to_string b)

  let decode_response payload =
    if String.length payload <> 8 then Error "spin response must be 8 bytes"
    else Ok (Int64.to_int (String.get_int64_be payload 0))
end
