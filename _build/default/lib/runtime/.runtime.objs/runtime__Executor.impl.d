lib/runtime/executor.ml: Array Atomic Core Domain Engine Fun List Mutex Unix
