lib/runtime/spin.mli:
