lib/runtime/executor.mli:
