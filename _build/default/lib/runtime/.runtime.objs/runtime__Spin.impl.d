lib/runtime/spin.ml: Sys Unix
