let now_us () = Unix.gettimeofday () *. 1e6

let busy_wait_us us =
  if us > 0. then begin
    let deadline = now_us () +. us in
    while now_us () < deadline do
      (* Keep the loop body non-empty so it cannot be optimized away. *)
      ignore (Sys.opaque_identity 0 : int)
    done
  end
