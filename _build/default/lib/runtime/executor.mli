(** Real multicore executor implementing the ZygOS scheduling discipline on
    OCaml 5 domains.

    This is the same shuffle-layer code the simulator runs
    ({!Core.Sched.Mt_sched}, instantiated with real mutexes), executing
    real closures on real domains: per-connection event queues, exclusive
    per-connection batches, idle workers stealing from the other cores'
    shuffle queues in randomized victim order. There are no IPIs — a
    user-space runtime cannot interrupt a peer thread, so this executor
    corresponds to the paper's cooperative "ZygOS (no interrupts)" variant
    (§4.5 explains why the full design needs to live in the kernel).

    Guarantees, inherited from {!Core.Sched} and checked by tests:
    tasks of one connection never run concurrently and complete in
    submission order; any task is eventually executed while at least one
    worker lives (work conservation). *)

type t

val create : ?seed:int -> cores:int -> conns:int -> unit -> t
(** An executor with [cores] worker domains (not yet running) serving
    connection ids [0, conns). Connections are homed round-robin. *)

val start : t -> unit
(** Spawn the worker domains. Raises [Invalid_argument] if already
    started. *)

val submit : t -> conn:int -> (unit -> unit) -> unit
(** Enqueue a task for a connection, from any domain. Raises
    [Invalid_argument] after {!stop} or for an out-of-range conn. *)

val drain : t -> unit
(** Block until every submitted task has executed. *)

val stop : t -> unit
(** Drain, then terminate and join the workers. Idempotent. *)

type stats = {
  submitted : int;
  executed : int;
  local_batches : int;
  stolen_batches : int;
  steal_fraction : float;  (** stolen events / executed events *)
}

val stats : t -> stats
