(** Synthetic µs-scale tasks: busy-spin for a requested duration.

    This is exactly what the paper's microbenchmark application does
    ("for each request, the application spins for an amount of time
    randomly selected to match both service time and distribution", §3.1);
    used by the live-runtime example and tests. *)

val busy_wait_us : float -> unit
(** Spin (no syscalls, no allocation) for approximately the given number
    of microseconds of wall-clock time. *)

val now_us : unit -> float
(** Monotonic-enough wall clock in µs (gettimeofday-based). *)
