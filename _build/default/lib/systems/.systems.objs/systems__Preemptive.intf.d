lib/systems/preemptive.mli: Engine Iface Net Params
