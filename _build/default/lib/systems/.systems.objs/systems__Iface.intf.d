lib/systems/iface.mli: Net
