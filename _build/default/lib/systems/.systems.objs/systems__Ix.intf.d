lib/systems/ix.mli: Engine Iface Net Params
