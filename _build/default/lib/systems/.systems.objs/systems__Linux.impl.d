lib/systems/linux.ml: Array Core Engine Iface Net Params Queue
