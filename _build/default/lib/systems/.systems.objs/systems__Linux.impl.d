lib/systems/linux.ml: Array Engine Iface Net Params Queue
