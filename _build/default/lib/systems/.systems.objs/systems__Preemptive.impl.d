lib/systems/preemptive.ml: Array Engine Float Iface Net Option Params Printf Queue
