lib/systems/rebalance.mli: Engine Net
