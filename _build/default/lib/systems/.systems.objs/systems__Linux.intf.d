lib/systems/linux.mli: Engine Iface Net Params
