lib/systems/overload.ml: Engine Float Hashtbl Net Queue
