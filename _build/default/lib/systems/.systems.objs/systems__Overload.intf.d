lib/systems/overload.mli: Engine Net
