lib/systems/rebalance.ml: Array Engine Net
