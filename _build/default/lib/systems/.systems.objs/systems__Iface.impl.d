lib/systems/iface.ml: List Net
