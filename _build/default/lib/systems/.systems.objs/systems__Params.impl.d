lib/systems/params.ml: Core Float List Printf
