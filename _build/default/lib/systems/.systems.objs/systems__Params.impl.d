lib/systems/params.ml:
