lib/systems/params.mli: Core
