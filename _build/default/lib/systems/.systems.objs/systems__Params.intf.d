lib/systems/params.mli:
