lib/systems/zygos.ml: Array Core Engine Format Iface List Net Params
