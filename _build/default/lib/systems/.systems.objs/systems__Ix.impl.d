lib/systems/ix.ml: Array Engine Iface List Net Params Printf
