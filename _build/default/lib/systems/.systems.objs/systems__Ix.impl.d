lib/systems/ix.ml: Array Core Engine Iface List Net Params Printf
