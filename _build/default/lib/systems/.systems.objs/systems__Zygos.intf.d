lib/systems/zygos.mli: Engine Format Iface Net Params
