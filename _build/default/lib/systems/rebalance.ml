module Sim = Engine.Sim

type stats = { mutable windows : int; mutable moves : int }

let attach sim ~rss ~queues ~read_counts ~window ?(imbalance_threshold = 1.3) () =
  if window <= 0. then invalid_arg "Rebalance.attach: window <= 0";
  if imbalance_threshold < 1. then invalid_arg "Rebalance.attach: threshold < 1";
  let stats = { windows = 0; moves = 0 } in
  let idle_windows = ref 0 in
  let rec tick () =
    stats.windows <- stats.windows + 1;
    let counts = read_counts () in
    let total = Array.fold_left ( + ) 0 counts in
    if total = 0 then incr idle_windows else idle_windows := 0;
    if total > 0 then begin
      (* Aggregate slot counts into per-queue load under the current
         mapping. *)
      let per_queue = Array.make queues 0 in
      Array.iteri
        (fun slot n ->
          let q = Net.Rss.queue_of_slot rss slot in
          if q < queues then per_queue.(q) <- per_queue.(q) + n)
        counts;
      let hottest = ref 0 and coldest = ref 0 in
      Array.iteri
        (fun q n ->
          if n > per_queue.(!hottest) then hottest := q;
          if n < per_queue.(!coldest) then coldest := q)
        per_queue;
      let hot = float_of_int per_queue.(!hottest) in
      let cold = float_of_int (max 1 per_queue.(!coldest)) in
      if !hottest <> !coldest && hot > imbalance_threshold *. cold then begin
        (* Move the busiest slot of the hottest queue — but never a slot
           so busy that moving it would just swap the imbalance. *)
        let surplus = (hot -. cold) /. 2. in
        let best = ref (-1) and best_count = ref 0 in
        Array.iteri
          (fun slot n ->
            if
              Net.Rss.queue_of_slot rss slot = !hottest
              && n > !best_count
              && float_of_int n <= surplus
            then begin
              best := slot;
              best_count := n
            end)
          counts;
        match !best with
        | -1 -> ()
        | slot ->
            Net.Rss.set_slot rss ~slot ~queue:!coldest;
            stats.moves <- stats.moves + 1
      end
    end;
    (* Re-arm while traffic flows; stop after two quiet windows so the
       simulation can drain and terminate. *)
    if !idle_windows < 2 then
      ignore (Sim.schedule_after sim ~delay:window tick : Sim.handle)
  in
  ignore (Sim.schedule_after sim ~delay:window tick : Sim.handle);
  stats
