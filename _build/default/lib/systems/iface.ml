type t = {
  name : string;
  submit : Net.Request.t -> unit;
  info : unit -> (string * float) list;
}

let info_value t key = List.assoc_opt key (t.info ())
