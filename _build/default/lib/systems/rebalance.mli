(** RSS re-programming control plane (§5 "Control plane interactions").

    The paper notes that the IX control plane fights {e persistent}
    imbalance by re-programming the NIC's RSS indirection table, and
    leaves the evaluation of such a control plane with ZygOS to future
    work. This module implements that controller for the simulated
    systems: every [window] µs it reads per-slot packet counts, and when
    the hottest core receives more than [imbalance_threshold] times the
    coldest core's traffic, it moves the busiest indirection slot of the
    hottest core to the coldest core.

    Two caveats the experiment (bench target `ext-rebalance`) surfaces:

    - re-programming helps only persistent skew; Poisson burst imbalance
      moves faster than any windowed controller (§2.3);
    - naive slot re-programming can reorder back-to-back requests of a
      connection that is in flight during the move (the reason IX
      migrates flow-groups with a careful protocol). The load generator
      counts these as order violations. *)

type stats = {
  mutable windows : int;  (** controller invocations *)
  mutable moves : int;  (** indirection slots re-programmed *)
}

val attach :
  Engine.Sim.t ->
  rss:Net.Rss.t ->
  queues:int ->
  read_counts:(unit -> int array) ->
  window:float ->
  ?imbalance_threshold:float ->
  unit ->
  stats
(** Start the periodic controller. It stops by itself after two
    consecutive windows with no traffic (so simulations terminate).
    [imbalance_threshold] defaults to 1.3. Raises [Invalid_argument] on a
    non-positive window or a threshold < 1. *)
