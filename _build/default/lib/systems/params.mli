(** Overhead parameters of the simulated server systems.

    The paper measures real systems whose efficiency differences come from
    per-request fixed costs (syscalls, kernel network stack, epoll, locking)
    and from scheduling behaviour (batching, stealing, IPIs). The simulator
    reproduces the scheduling behaviour exactly and represents the fixed
    costs with the constants below. Defaults are calibrated so that the
    per-request overhead of each system matches the saturation throughputs
    of the paper's Figure 6 at 10µs tasks (see EXPERIMENTS.md §Calibration):
    roughly 1.1µs/req for IX, 1.4µs/req for ZygOS local work, and 6.5µs/req
    for Linux. All times in µs. *)

type t = {
  cores : int;  (** worker cores/hyperthreads (paper: 16) *)
  ring_capacity : int;  (** NIC hardware descriptor ring slots per queue *)
  rpc_packets : int;
      (** network packets per request each way (1 for small RPCs; >1 for
          payloads above one MTU, e.g. TPC-C responses) — multiplies the
          per-packet network-stack costs of every system *)
  (* Linux (§3.3 "Linux configuration") *)
  linux_epoll : float;  (** epoll_wait returning one event *)
  linux_syscall : float;  (** one read or write system call *)
  linux_netstack : float;  (** kernel TCP/IP work per packet (each way) *)
  linux_wakeup : float;  (** waking a thread blocked in epoll_wait *)
  linux_lock : float;  (** floating mode: shared-pool locking per event *)
  (* Dataplane costs shared by IX and ZygOS *)
  dp_rx : float;  (** driver + lwIP receive path per packet *)
  dp_tx : float;  (** transmit path per packet *)
  dp_loop : float;  (** fixed cost of one poll-loop iteration *)
  (* IX *)
  ix_batch : int;  (** adaptive bounded batching limit B (§3.3; 1 or 64) *)
  (* ZygOS *)
  zy_rx_batch : int;  (** receive-side bounded batching (§6.2) *)
  zy_shuffle : float;  (** shuffle-queue enqueue+dequeue per event *)
  zy_steal : float;  (** extra cost of a stolen dispatch (cache-line pulls) *)
  zy_remote_syscall : float;  (** executing one remote batched syscall at home *)
  zy_ipi_latency : float;  (** IPI delivery latency *)
  zy_ipi_handler : float;  (** fixed cost of the exit-less IPI handler *)
  zy_poll_delay : float;  (** idle-loop remote-queue detection granularity *)
  zy_interrupts : bool;  (** false = the "ZygOS (no interrupts)" variant *)
  zy_poll_random : bool;
      (** randomized victim order in the idle loop (§5); false = naive
          round-robin, for the `ablate-poll` ablation *)
  stragglers : Core.Corefault.spec list;
      (** scheduled transient slowdowns/stalls of individual worker cores,
          applied uniformly to every system model (empty = no faults) *)
}

val validate : t -> t
(** Returns its argument after checking every invariant: positive
    counts/capacities, finite non-negative overheads, straggler specs
    within range. Raises [Invalid_argument] with the offending field
    otherwise. Every system model validates its parameters on
    construction, so a nonsensical record fails fast instead of silently
    producing garbage sweeps. *)

val default : ?cores:int -> unit -> t
(** Calibrated defaults for a 16-core server. *)

val no_interrupts : t -> t
(** Same parameters with IPIs disabled (purely cooperative stealing). *)

val with_ix_batch : t -> int -> t

val with_rpc_packets : t -> int -> t
(** Raises [Invalid_argument] when the count is < 1. *)

val with_stragglers : t -> Core.Corefault.spec list -> t
(** Replace the straggler schedule (validated against [cores]). *)

val corefaults : t -> Core.Corefault.t
(** Compiled straggler schedule for the system models;
    {!Core.Corefault.none}-equivalent when [stragglers] is empty. *)
