(** Uniform handle over the simulated server systems, so sweeps and SLO
    searches (lib/experiments) can treat Linux/IX/ZygOS interchangeably. *)

type t = {
  name : string;
  submit : Net.Request.t -> unit;
      (** deliver one request at the server NIC (called by the load
          generator at arrival time) *)
  info : unit -> (string * float) list;
      (** system-specific counters after a run: steals/event, IPI count,
          ring drops, ... — used by Figure 8 and by tests *)
}

val info_value : t -> string -> float option
(** Look up one counter by name. *)
