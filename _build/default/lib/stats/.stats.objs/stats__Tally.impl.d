lib/stats/tally.ml: Array Float
