lib/stats/tally.mli:
