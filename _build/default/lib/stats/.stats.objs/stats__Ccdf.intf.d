lib/stats/ccdf.mli: Format
