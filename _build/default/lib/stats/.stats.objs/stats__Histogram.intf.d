lib/stats/histogram.mli:
