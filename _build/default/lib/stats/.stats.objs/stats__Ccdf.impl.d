lib/stats/ccdf.ml: Array Float Format List
