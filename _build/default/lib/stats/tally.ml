type t = {
  mutable data : float array;
  mutable size : int;
  mutable sorted : bool;  (* whether data.[0,size) is known ascending *)
}

let create () = { data = [||]; size = 0; sorted = true }

let record t x =
  if t.size = Array.length t.data then begin
    let cap = max 256 (2 * Array.length t.data) in
    let bigger = Array.make cap 0. in
    Array.blit t.data 0 bigger 0 t.size;
    t.data <- bigger
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  t.sorted <- false

let count t = t.size

let is_empty t = t.size = 0

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let mean t = if t.size = 0 then 0. else fold ( +. ) 0. t /. float_of_int t.size

let max_value t = if t.size = 0 then 0. else fold Float.max neg_infinity t

let min_value t = if t.size = 0 then 0. else fold Float.min infinity t

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.data 0 t.size in
    Array.sort Float.compare live;
    Array.blit live 0 t.data 0 t.size;
    t.sorted <- true
  end

let percentile t p =
  if t.size = 0 then invalid_arg "Tally.percentile: empty tally";
  if p < 0. || p > 100. then invalid_arg "Tally.percentile: p out of [0,100]";
  ensure_sorted t;
  (* Nearest-rank: smallest value whose cumulative frequency >= p%. *)
  let rank = int_of_float (ceil (p /. 100. *. float_of_int t.size)) in
  let idx = max 0 (min (t.size - 1) (rank - 1)) in
  t.data.(idx)

let p50 t = percentile t 50.

let p90 t = percentile t 90.

let p99 t = percentile t 99.

let p999 t = percentile t 99.9

let stddev t =
  if t.size < 2 then 0.
  else begin
    let m = mean t in
    let ss = fold (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. t in
    sqrt (ss /. float_of_int (t.size - 1))
  end

let samples t = Array.sub t.data 0 t.size

let sorted_samples t =
  ensure_sorted t;
  Array.sub t.data 0 t.size

let merge a b =
  let t = create () in
  for i = 0 to a.size - 1 do
    record t a.data.(i)
  done;
  for i = 0 to b.size - 1 do
    record t b.data.(i)
  done;
  t

let clear t =
  t.size <- 0;
  t.sorted <- true
