(** Complementary CDF extraction (Figure 10a of the paper).

    Turns a set of samples into (value, P[X > value]) points suitable for a
    log-scale CCDF plot of service times. *)

type point = { value : float; prob : float }

val of_samples : ?points:int -> float array -> point list
(** [of_samples samples] computes the CCDF at [points] (default 200)
    equally spaced sample ranks. The input need not be sorted. Returns []
    on empty input. *)

val survival_at : float array -> float -> float
(** [survival_at samples x] = fraction of samples strictly greater than
    [x]. Input need not be sorted. *)

val pp_rows : Format.formatter -> point list -> unit
(** Print "value prob" rows, one per line. *)
