type point = { value : float; prob : float }

let of_samples ?(points = 200) samples =
  let n = Array.length samples in
  if n = 0 then []
  else begin
    let sorted = Array.copy samples in
    Array.sort Float.compare sorted;
    let step = max 1 (n / points) in
    let acc = ref [] in
    let i = ref 0 in
    while !i < n do
      let v = sorted.(!i) in
      (* P[X > v] with v at sorted rank i: (n - (last index of v) - 1)/n;
         using the conservative i-based estimate keeps the curve monotone. *)
      let prob = float_of_int (n - !i - 1) /. float_of_int n in
      acc := { value = v; prob } :: !acc;
      i := !i + step
    done;
    (* Always include the maximum so the tail end of the curve is exact. *)
    let last = { value = sorted.(n - 1); prob = 0. } in
    List.rev (last :: !acc)
  end

let survival_at samples x =
  let n = Array.length samples in
  if n = 0 then 0.
  else begin
    let above = Array.fold_left (fun acc v -> if v > x then acc + 1 else acc) 0 samples in
    float_of_int above /. float_of_int n
  end

let pp_rows ppf points =
  List.iter (fun { value; prob } -> Format.fprintf ppf "%.3f %.6f@." value prob) points
