(** Log-bucketed latency histogram (HdrHistogram-style).

    Constant-memory alternative to {!Tally} for very long runs: values are
    bucketed with a bounded relative error (sub-bucket resolution within
    each power-of-two range), so percentile queries are approximate but
    never off by more than the configured precision. Used where a
    simulation records tens of millions of samples. *)

type t

val create : ?significant_digits:int -> unit -> t
(** [significant_digits] (1–4, default 3) bounds the relative quantization
    error to 10^-digits. *)

val record : t -> float -> unit
(** Record a non-negative value. Negative values raise
    [Invalid_argument]. *)

val count : t -> int

val mean : t -> float
(** Mean of recorded values, subject to bucket quantization. *)

val max_value : t -> float
(** Largest recorded value (exact). *)

val percentile : t -> float -> float
(** Approximate nearest-rank percentile. Raises on empty histogram or [p]
    outside [0, 100]. *)

val merge_into : dst:t -> t -> unit
(** Add all of the source's counts into [dst]. The two histograms must have
    the same precision (raises [Invalid_argument] otherwise). *)

val clear : t -> unit
