type t = {
  digits : int;
  log_ratio : float;  (* ln of the geometric bucket ratio *)
  floor_value : float;  (* values below this land in bucket 0 *)
  mutable buckets : int array;
  mutable total : int;
  mutable sum : float;  (* exact running sum, for an exact mean *)
  mutable max_seen : float;
}

let create ?(significant_digits = 3) () =
  if significant_digits < 1 || significant_digits > 4 then
    invalid_arg "Histogram.create: significant_digits must be in 1..4";
  let ratio = 1. +. (10. ** float_of_int (-significant_digits)) in
  {
    digits = significant_digits;
    log_ratio = log ratio;
    floor_value = 1e-3;  (* 1 ns when values are in µs *)
    buckets = Array.make 1024 0;
    total = 0;
    sum = 0.;
    max_seen = 0.;
  }

let bucket_of_value t v =
  if v <= t.floor_value then 0
  else 1 + int_of_float (log (v /. t.floor_value) /. t.log_ratio)

let value_of_bucket t i =
  if i = 0 then t.floor_value
  else
    (* Midpoint (geometric) of the bucket's range. *)
    t.floor_value *. exp ((float_of_int i -. 0.5) *. t.log_ratio)

let record t v =
  if v < 0. then invalid_arg "Histogram.record: negative value";
  let i = bucket_of_value t v in
  if i >= Array.length t.buckets then begin
    let cap = max (i + 1) (2 * Array.length t.buckets) in
    let bigger = Array.make cap 0 in
    Array.blit t.buckets 0 bigger 0 (Array.length t.buckets);
    t.buckets <- bigger
  end;
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. v;
  if v > t.max_seen then t.max_seen <- v

let count t = t.total

let mean t = if t.total = 0 then 0. else t.sum /. float_of_int t.total

let max_value t = t.max_seen

let percentile t p =
  if t.total = 0 then invalid_arg "Histogram.percentile: empty histogram";
  if p < 0. || p > 100. then invalid_arg "Histogram.percentile: p out of [0,100]";
  let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int t.total))) in
  if rank >= t.total then t.max_seen
  else begin
  let remaining = ref rank in
  let result = ref t.max_seen in
  (try
     for i = 0 to Array.length t.buckets - 1 do
       remaining := !remaining - t.buckets.(i);
       if !remaining <= 0 then begin
         result := value_of_bucket t i;
         raise Exit
       end
     done
     with Exit -> ());
    Float.min !result t.max_seen
  end

let merge_into ~dst src =
  if dst.digits <> src.digits then invalid_arg "Histogram.merge_into: precision mismatch";
  (* Re-recording bucket midpoints can overshoot the true maximum (a
     midpoint lies above the values in the lower half of its bucket), so
     restore the exact extreme afterwards. *)
  let true_max = Float.max dst.max_seen src.max_seen in
  Array.iteri
    (fun i n ->
      if n > 0 then
        for _ = 1 to n do
          record dst (value_of_bucket src i)
        done)
    src.buckets;
  dst.max_seen <- true_max

let clear t =
  Array.fill t.buckets 0 (Array.length t.buckets) 0;
  t.total <- 0;
  t.sum <- 0.;
  t.max_seen <- 0.
