(** Exact sample tally with percentile queries.

    Stores every recorded value (growable float array) and answers
    percentile/mean/max queries by sorting on demand. This is the
    "client-side measurement agent" of the reproduction: latency samples
    from the simulated load generator land here, and all reported
    percentiles (p50/p99/...) are exact over the recorded samples, like the
    paper's mutilate-based measurements. *)

type t

val create : unit -> t

val record : t -> float -> unit
(** Add one sample. Amortized O(1). *)

val count : t -> int

val is_empty : t -> bool

val mean : t -> float
(** Arithmetic mean; 0 when empty. *)

val max_value : t -> float
(** Largest sample; 0 when empty. *)

val min_value : t -> float
(** Smallest sample; 0 when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0, 100]: nearest-rank percentile of the
    recorded samples. Raises [Invalid_argument] when empty or [p] out of
    range. *)

val p50 : t -> float

val p90 : t -> float

val p99 : t -> float

val p999 : t -> float

val stddev : t -> float

val samples : t -> float array
(** Copy of all recorded samples (order unspecified: percentile queries may
    reorder the internal store). *)

val sorted_samples : t -> float array
(** Copy of all recorded samples, ascending. *)

val merge : t -> t -> t
(** New tally holding both sample sets. *)

val clear : t -> unit
