lib/kvstore/workload.ml: Array Engine Float Printf Protocol Store String
