lib/kvstore/workload.mli: Engine Protocol Store
