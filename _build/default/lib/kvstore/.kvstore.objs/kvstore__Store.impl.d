lib/kvstore/store.ml: Array Hashtbl
