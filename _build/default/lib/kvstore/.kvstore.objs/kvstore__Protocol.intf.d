lib/kvstore/protocol.mli: Store
