lib/kvstore/store.mli:
