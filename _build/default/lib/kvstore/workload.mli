(** The Facebook memcached workloads (Atikoglu et al., SIGMETRICS'12) used
    by Figure 9, as modelled by mutilate.

    - {b USR}: tiny fixed-size records — short keys (16–21 B), 2 B values,
      99.8% GET. The closest real workload to a deterministic service-time
      distribution.
    - {b ETC}: the general-purpose pool — 20–45 B keys, value sizes spread
      over a generalized-Pareto-like range (tens of bytes to a few KB),
      ~3.3% SET.

    Two uses: generating live (key, command) streams against a real
    {!Store}, and deriving the per-request service-time distribution the
    system simulators consume (base dataplane-app cost plus a size-
    dependent term; §6.2 gives < 2µs mean task size). *)

type kind = Etc | Usr

val name : kind -> string

type t

val create : ?records:int -> ?seed:int -> kind -> t
(** [records] is the key-space size (default 100_000). *)

val kind : t -> kind

val records : t -> int

val populate : t -> Store.t -> unit
(** Preload every key with a value of the workload's size distribution. *)

val next_command : t -> Engine.Rng.t -> Protocol.command
(** Draw one request: GET with the workload's GET fraction, otherwise SET
    with a fresh value; keys are Zipf-skewed (popular keys exist, as in the
    trace). *)

val service_time_us : t -> Protocol.command -> float
(** Deterministic service-cost model of one request on the store: base
    lookup cost plus a per-byte term for the value moved. *)

val service_dist : t -> samples:int -> Engine.Dist.t
(** Empirical service-time distribution of [samples] randomly drawn
    requests — the distribution Figure 9's simulations feed the system
    models. *)

val get_fraction : kind -> float
