type entry = { key : string; mutable value : string; mutable referenced : bool }

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  mutable clock : entry array;  (* CLOCK ring; length = capacity *)
  mutable clock_used : int;  (* slots of [clock] in use *)
  mutable hand : int;
  mutable hits : int;
  mutable misses : int;
  mutable set_count : int;
  mutable evictions : int;
}

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Store.create: capacity < 1";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    clock = [||];
    clock_used = 0;
    hand = 0;
    hits = 0;
    misses = 0;
    set_count = 0;
    evictions = 0;
  }

let get t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
      e.referenced <- true;
      t.hits <- t.hits + 1;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      None

(* Advance the CLOCK hand to a victim slot: clear reference bits until an
   unreferenced entry is found (guaranteed to terminate within two laps). *)
let evict_one t =
  let rec loop () =
    let e = t.clock.(t.hand) in
    if e.referenced then begin
      e.referenced <- false;
      t.hand <- (t.hand + 1) mod t.clock_used;
      loop ()
    end
    else begin
      Hashtbl.remove t.table e.key;
      t.evictions <- t.evictions + 1;
      t.hand (* slot index to reuse *)
    end
  in
  loop ()

let set t key value =
  t.set_count <- t.set_count + 1;
  match Hashtbl.find_opt t.table key with
  | Some e ->
      e.value <- value;
      e.referenced <- true
  | None ->
      let e = { key; value; referenced = true } in
      if t.clock_used < t.capacity then begin
        if Array.length t.clock = 0 then t.clock <- Array.make t.capacity e
        else t.clock.(t.clock_used) <- e;
        t.clock_used <- t.clock_used + 1
      end
      else begin
        let slot = evict_one t in
        t.clock.(slot) <- e;
        t.hand <- (slot + 1) mod t.clock_used
      end;
      Hashtbl.replace t.table key e

let delete t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
      (* Leave the clock slot in place; the dead entry is skipped when the
         hand reaches it because its key is no longer in the table. *)
      Hashtbl.remove t.table key;
      e.referenced <- false;
      true
  | None -> false

let mem t key = Hashtbl.mem t.table key

let size t = Hashtbl.length t.table

let capacity t = t.capacity

type stats = { hits : int; misses : int; sets : int; evictions : int }

let stats (t : t) =
  ({ hits = t.hits; misses = t.misses; sets = t.set_count; evictions = t.evictions } : stats)
