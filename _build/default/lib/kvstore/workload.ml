module Rng = Engine.Rng

type kind = Etc | Usr

let name = function Etc -> "ETC" | Usr -> "USR"

let get_fraction = function Etc -> 0.967 | Usr -> 0.998

type t = {
  workload : kind;
  n_records : int;
  zipf_cdf : float array;  (* cumulative probabilities over record ranks *)
  rng : Rng.t;  (* private stream for sizes during populate *)
}

(* Zipf(0.99) over the key space, the usual key-popularity skew for these
   traces. The CDF is precomputed for O(log n) sampling. *)
let make_zipf_cdf n =
  let theta = 0.99 in
  let weights = Array.init n (fun i -> 1. /. Float.pow (float_of_int (i + 1)) theta) in
  let total = Array.fold_left ( +. ) 0. weights in
  let acc = ref 0. in
  Array.map
    (fun w ->
      acc := !acc +. (w /. total);
      !acc)
    weights

let create ?(records = 100_000) ?(seed = 11) workload =
  if records < 1 then invalid_arg "Workload.create: records < 1";
  { workload; n_records = records; zipf_cdf = make_zipf_cdf records; rng = Rng.create ~seed }

let kind t = t.workload

let records t = t.n_records

let sample_rank t rng =
  let u = Rng.float rng in
  (* First index with cdf >= u. *)
  let lo = ref 0 and hi = ref (t.n_records - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.zipf_cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let key_of_rank t rank =
  match t.workload with
  | Usr -> Printf.sprintf "usr:%016d" rank  (* 20 B, within the 16–21 B band *)
  | Etc -> Printf.sprintf "etc:%024d:%08d" rank (rank mod 97)  (* 38 B *)

(* Value sizes. USR: 2 bytes. ETC: a discretized generalized-Pareto-like
   mix — mostly tens-to-hundreds of bytes, occasionally KBs. *)
let value_size t rng =
  match t.workload with
  | Usr -> 2
  | Etc ->
      let u = Rng.float rng in
      if u < 0.40 then Rng.int_range rng 11 50
      else if u < 0.75 then Rng.int_range rng 51 300
      else if u < 0.95 then Rng.int_range rng 301 1024
      else Rng.int_range rng 1025 4096

let make_value size = String.make size 'v'

let populate t store =
  for rank = 0 to t.n_records - 1 do
    Store.set store (key_of_rank t rank) (make_value (value_size t t.rng))
  done

let next_command t rng =
  let rank = sample_rank t rng in
  let key = key_of_rank t rank in
  if Rng.bernoulli rng (get_fraction t.workload) then Protocol.Get key
  else Protocol.Set { key; flags = 0; exptime = 0; data = make_value (value_size t rng) }

(* Service-cost model: hash lookup + protocol handling ~0.7µs; SETs pay an
   allocation surcharge; value bytes move at ~10 GB/s (0.0001 µs/B). This
   lands the ETC/USR mean below 2µs, as §6.2 states. *)
let service_time_us t cmd =
  ignore t;
  match cmd with
  | Protocol.Get key -> 0.7 +. (0.0001 *. float_of_int (String.length key + 64))
  | Protocol.Delete _ -> 0.7
  | Protocol.Set { key; data; _ } ->
      1.0 +. (0.0002 *. float_of_int (String.length key + String.length data))

let service_dist t ~samples =
  if samples < 1 then invalid_arg "Workload.service_dist: samples < 1";
  let rng = Rng.copy t.rng in
  let a = Array.init samples (fun _ -> service_time_us t (next_command t rng)) in
  Engine.Dist.empirical a
