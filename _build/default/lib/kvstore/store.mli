(** In-memory key-value store (the reproduction's memcached core).

    A bounded hash table with CLOCK-style second-chance eviction — the
    behaviourally relevant parts of memcached for §6.2: O(1) GET/SET on
    tiny keys, bounded memory, evictions under pressure. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is the maximum number of resident entries (default
    65536). *)

val get : t -> string -> string option

val set : t -> string -> string -> unit
(** Insert or overwrite; evicts via CLOCK when at capacity. *)

val delete : t -> string -> bool
(** [true] if the key was present. *)

val mem : t -> string -> bool

val size : t -> int

val capacity : t -> int

type stats = { hits : int; misses : int; sets : int; evictions : int }

val stats : t -> stats
