type command =
  | Get of string
  | Set of { key : string; flags : int; exptime : int; data : string }
  | Delete of string

(* The parser is a resumable state machine: either waiting for a command
   line, or waiting for the <bytes>+2 data block of a set. *)
type mode = Line | Data of { key : string; flags : int; exptime : int; bytes : int }

type parser_state = { buf : Buffer.t; mutable consumed : int; mutable mode : mode }

let create_parser () = { buf = Buffer.create 256; consumed = 0; mode = Line }

(* Drop already-consumed bytes once they dominate the buffer. *)
let compact t =
  if t.consumed > 4096 && t.consumed * 2 > Buffer.length t.buf then begin
    let rest = Buffer.sub t.buf t.consumed (Buffer.length t.buf - t.consumed) in
    Buffer.clear t.buf;
    Buffer.add_string t.buf rest;
    t.consumed <- 0
  end

let pending_bytes t = Buffer.length t.buf - t.consumed

(* Find "\r\n" starting at [from]; return the index of '\r'. *)
let find_crlf t from =
  let len = Buffer.length t.buf in
  let rec loop i =
    if i + 1 >= len then None
    else if Buffer.nth t.buf i = '\r' && Buffer.nth t.buf (i + 1) = '\n' then Some i
    else loop (i + 1)
  in
  loop from

let parse_command_line line =
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [ ("get" | "gets"); key ] -> Ok (`Get key)
  | [ "delete"; key ] -> Ok (`Delete key)
  | [ "set"; key; flags; exptime; bytes ] -> (
      match (int_of_string_opt flags, int_of_string_opt exptime, int_of_string_opt bytes) with
      | Some flags, Some exptime, Some bytes when bytes >= 0 ->
          Ok (`Set (key, flags, exptime, bytes))
      | _ -> Error ("bad set arguments: " ^ line))
  | [] -> Error "empty command"
  | cmd :: _ -> Error ("unknown command: " ^ cmd)

let feed t chunk =
  Buffer.add_string t.buf chunk;
  let out = ref [] in
  let emit x = out := x :: !out in
  let progress = ref true in
  while !progress do
    progress := false;
    match t.mode with
    | Line -> (
        match find_crlf t t.consumed with
        | None -> ()
        | Some cr ->
            let line = Buffer.sub t.buf t.consumed (cr - t.consumed) in
            t.consumed <- cr + 2;
            progress := true;
            (match parse_command_line line with
            | Ok (`Get key) -> emit (Ok (Get key))
            | Ok (`Delete key) -> emit (Ok (Delete key))
            | Ok (`Set (key, flags, exptime, bytes)) ->
                t.mode <- Data { key; flags; exptime; bytes }
            | Error e -> emit (Error e)))
    | Data { key; flags; exptime; bytes } ->
        if pending_bytes t >= bytes + 2 then begin
          let data = Buffer.sub t.buf t.consumed bytes in
          let term = Buffer.sub t.buf (t.consumed + bytes) 2 in
          t.consumed <- t.consumed + bytes + 2;
          t.mode <- Line;
          progress := true;
          if String.equal term "\r\n" then emit (Ok (Set { key; flags; exptime; data }))
          else emit (Error "set data not terminated by CRLF")
        end
  done;
  compact t;
  List.rev !out

let render_command = function
  | Get key -> Printf.sprintf "get %s\r\n" key
  | Delete key -> Printf.sprintf "delete %s\r\n" key
  | Set { key; flags; exptime; data } ->
      Printf.sprintf "set %s %d %d %d\r\n%s\r\n" key flags exptime (String.length data) data

type response =
  | Value of { key : string; flags : int; data : string }
  | Not_found_resp
  | Stored
  | Deleted
  | Client_error of string

let render_response ~cmd response =
  match response with
  | Value { key; flags; data } ->
      Printf.sprintf "VALUE %s %d %d\r\n%s\r\nEND\r\n" key flags (String.length data) data
  | Not_found_resp -> (
      match cmd with Get _ -> "END\r\n" | Delete _ | Set _ -> "NOT_FOUND\r\n")
  | Stored -> "STORED\r\n"
  | Deleted -> "DELETED\r\n"
  | Client_error e -> Printf.sprintf "CLIENT_ERROR %s\r\n" e

let execute store = function
  | Get key -> (
      match Store.get store key with
      | Some data -> Value { key; flags = 0; data }
      | None -> Not_found_resp)
  | Set { key; data; _ } ->
      Store.set store key data;
      Stored
  | Delete key -> if Store.delete store key then Deleted else Not_found_resp
