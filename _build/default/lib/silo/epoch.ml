type t = { epoch : int Atomic.t; commits : int Atomic.t; advance_every : int }

let create ?(advance_every = 4096) () =
  if advance_every < 1 then invalid_arg "Epoch.create: advance_every < 1";
  { epoch = Atomic.make 1; commits = Atomic.make 0; advance_every }

let current t = Atomic.get t.epoch

let advance t = 1 + Atomic.fetch_and_add t.epoch 1

let on_commit t =
  let n = 1 + Atomic.fetch_and_add t.commits 1 in
  if n mod t.advance_every = 0 then ignore (advance t : int)
