(** Serializable transactions: Silo's OCC commit protocol (Tu et al.,
    SOSP'13 §4.3–4.5).

    Execution reads record snapshots ({!Record.stable_read}) and buffers
    writes; nothing is locked until commit. Commit then runs the three
    phases:

    + lock every written record, in a global (table, key) order so writer
      pairs cannot deadlock; read the global epoch;
    + validate: every read record must still carry the TID observed (and
      not be locked by another transaction), and every index leaf recorded
      in the node-set must still carry the version observed — the defense
      against phantoms for scans and absent reads;
    + assign the commit TID — larger than every TID read or overwritten
      and than this worker's previous commit, in the current epoch — then
      install writes, apply inserts/deletes, and unlock.

    Structural changes (inserts/deletes) are applied while holding the
    affected tables' index locks {e across validation}, so no concurrent
    structural change can intervene between a transaction's node-set check
    and its own index updates. This is the coarse-lock counterpart of
    Masstree's lock-free node-version protocol; the conflict semantics are
    identical (see DESIGN.md). *)

type t

exception Rollback
(** User-initiated abort (e.g. TPC-C NewOrder's 1% invalid item). *)

val begin_ : Db.t -> Db.worker -> t

val read : t -> Db.table -> string -> string array option
(** Snapshot read; [None] for missing or logically deleted keys. Reads
    the transaction's own buffered writes/inserts. The observed record (or
    the leaf proving absence) joins the read/node set. *)

val scan : t -> Db.table -> lo:string -> hi:string -> (string * string array) list
(** Range scan, lo inclusive, hi exclusive. Every touched leaf joins the
    node-set; every returned record joins the read set. The transaction's
    own buffered inserts are {b not} merged into the result (not needed by
    TPC-C; documented limitation). *)

val write : t -> Db.table -> string -> string array -> unit
(** Buffer an update of an existing key. Raises [Not_found] if the key is
    absent (TPC-C never blind-writes). *)

val insert : t -> Db.table -> string -> string array -> unit
(** Buffer an insert of a fresh key. Commit aborts with [`Conflict] if the
    key exists by then. *)

val delete : t -> Db.table -> string -> unit
(** Buffer a delete. Raises [Not_found] if the key is absent. *)

val commit : t -> (Tid.t, [ `Conflict ]) result
(** Run the commit protocol. On [`Conflict] all effects are discarded and
    the caller may retry. The transaction must not be reused. *)

val abort : t -> unit
(** Discard the transaction (nothing to undo; buffers are dropped). *)

type 'a outcome = Committed of 'a * Tid.t | Rolled_back | Conflict_exhausted

val run : ?max_attempts:int -> Db.t -> Db.worker -> (t -> 'a) -> 'a outcome
(** Execute [f] with automatic retry on conflicts ([max_attempts] default
    64). {!Rollback} from [f] aborts cleanly and yields [Rolled_back].
    Commit/abort counters are recorded on the worker. *)
