(** Silo transaction identifiers (Tu et al., SOSP'13, §4.2).

    A TID is a single word carrying, from least- to most-significant bits:
    a lock bit (bit 0), an absent bit (bit 1), a 32-bit sequence number
    (bits 2–33), and the epoch number (bits 34–61). Packing everything in
    one word lets the commit protocol lock a record and validate a read
    with single-word atomic operations. We use OCaml's native 63-bit [int]
    so that [Atomic.t] compare-and-set works on immediates (no boxing). *)

type t = int

val zero : t
(** Initial TID of freshly loaded records: epoch 0, sequence 0,
    unlocked. *)

val make : epoch:int -> seq:int -> t
(** Raises [Invalid_argument] when epoch or sequence exceed their fields
    (epoch < 2^28, seq < 2^32). *)

val epoch : t -> int

val seq : t -> int

val is_locked : t -> bool

val locked : t -> t
(** Same TID with the lock bit set. *)

val unlocked : t -> t

val is_absent : t -> bool

val absent : t -> t
(** Same TID with the absent bit set (record logically deleted / not yet
    committed). *)

val present : t -> t

val compare_data : t -> t -> int
(** Order by (epoch, seq), ignoring status bits — the "newer version"
    relation. *)

val next_after : t -> epoch:int -> t
(** Smallest valid TID in [epoch] strictly larger (in {!compare_data}) than
    [t] — used by the commit protocol's TID assignment rule (a). *)

val pp : Format.formatter -> t -> unit
