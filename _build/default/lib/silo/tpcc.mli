(** TPC-C on the Silo engine (§6.3 of the ZygOS paper).

    The full transaction mix — NewOrder, Payment, OrderStatus, Delivery,
    StockLevel with the standard 45/43/4/4/4 weights — implemented as
    serializable {!Txn} transactions over the nine TPC-C tables plus the
    two secondary indexes (customer by last name, order by customer).
    Monetary values are stored as integer cents; random inputs follow the
    spec's NURand / last-name-syllable rules.

    The loader's population counts default to a scaled-down profile (the
    spec's ratios at 1/10 size) so experiments fit a laptop-class machine;
    [load ~profile:`Full] gives spec-sized warehouses. *)

type t

type profile = [ `Full | `Small ]

val load : ?warehouses:int -> ?profile:profile -> ?seed:int -> unit -> t
(** Populate a fresh database. Defaults: 1 warehouse, [`Small] profile
    (10 districts, 300 customers/district, 10k items, 300 initial
    orders/district vs. the spec's 3000/100k/3000). *)

val db : t -> Db.t

val warehouses : t -> int

val items : t -> int

val customers_per_district : t -> int

type tx_type = New_order | Payment | Order_status | Delivery | Stock_level

val all_tx_types : tx_type list

val tx_name : tx_type -> string

val standard_mix : Engine.Rng.t -> tx_type
(** Draw a transaction type with the TPC-C weights
    (45/43/4/4/4 for NewOrder/Payment/OrderStatus/Delivery/StockLevel). *)

type outcome =
  | Committed
  | Rolled_back  (** NewOrder's 1% intentional rollback *)
  | Conflicted  (** retries exhausted *)

val execute : t -> Db.worker -> Engine.Rng.t -> tx_type -> outcome
(** Run one transaction of the given type with spec-random inputs,
    retrying internally on OCC conflicts. *)

val consistency_check : t -> (string * bool) list
(** TPC-C consistency conditions 1–4 (per warehouse/district):
    W_YTD = Σ D_YTD; D_NEXT_O_ID − 1 = max order id; NEW-ORDER ids are
    contiguous; Σ O_OL_CNT = order-line count. Returns (condition, holds)
    pairs. *)
