(* Maximum keys per node before it splits. *)
let fanout = 32

type 'a leaf = {
  mutable lkeys : string array;
  mutable lvals : 'a array;
  mutable lversion : int;
}

type 'a node = Leaf of 'a leaf | Inner of 'a inner

and 'a inner = {
  mutable ikeys : string array;  (* n separators *)
  mutable children : 'a node array;  (* n+1 children *)
}

type 'a t = { mutable root : 'a node; lock : Mutex.t; mutable count : int }

let create () =
  { root = Leaf { lkeys = [||]; lvals = [||]; lversion = 0 }; lock = Mutex.create (); count = 0 }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = t.count

let leaf_version l = l.lversion

(* Index of the first key >= [key], i.e. the insertion point. *)
let lower_bound keys key =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare keys.(mid) key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Child index to descend into for [key]: the child after the last
   separator <= key. Separator s means: child i holds keys < s, child i+1
   holds keys >= s. *)
let child_index inner key =
  let lo = ref 0 and hi = ref (Array.length inner.ikeys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare inner.ikeys.(mid) key <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let array_insert a i x =
  let n = Array.length a in
  let b = Array.make (n + 1) x in
  Array.blit a 0 b 0 i;
  Array.blit a i b (i + 1) (n - i);
  b

let array_remove a i =
  let n = Array.length a in
  let b = Array.sub a 0 (n - 1) in
  Array.blit a (i + 1) b i (n - 1 - i);
  b

let rec find_leaf node key =
  match node with
  | Leaf l -> l
  | Inner inner -> find_leaf inner.children.(child_index inner key) key

let get t key =
  with_lock t (fun () ->
      let l = find_leaf t.root key in
      let i = lower_bound l.lkeys key in
      if i < Array.length l.lkeys && String.equal l.lkeys.(i) key then (Some l.lvals.(i), l)
      else (None, l))

(* Split a full leaf into two, bumping the left's version (its keys
   moved); returns the separator and new right node. *)
let split_leaf l =
  let n = Array.length l.lkeys in
  let mid = n / 2 in
  let right =
    {
      lkeys = Array.sub l.lkeys mid (n - mid);
      lvals = Array.sub l.lvals mid (n - mid);
      lversion = 0;
    }
  in
  let sep = right.lkeys.(0) in
  l.lkeys <- Array.sub l.lkeys 0 mid;
  l.lvals <- Array.sub l.lvals 0 mid;
  l.lversion <- l.lversion + 1;
  (sep, Leaf right)

let split_inner inner =
  let n = Array.length inner.ikeys in
  let mid = n / 2 in
  let sep = inner.ikeys.(mid) in
  let right =
    {
      ikeys = Array.sub inner.ikeys (mid + 1) (n - mid - 1);
      children = Array.sub inner.children (mid + 1) (n - mid);
    }
  in
  inner.ikeys <- Array.sub inner.ikeys 0 mid;
  inner.children <- Array.sub inner.children 0 (mid + 1);
  (sep, Inner right)

(* Returns [Some (sep, right)] when the node split. *)
let rec insert_into node key value =
  match node with
  | Leaf l -> (
      let i = lower_bound l.lkeys key in
      if i < Array.length l.lkeys && String.equal l.lkeys.(i) key then `Duplicate l.lvals.(i)
      else begin
        l.lkeys <- array_insert l.lkeys i key;
        l.lvals <- array_insert l.lvals i value;
        l.lversion <- l.lversion + 1;
        if Array.length l.lkeys > fanout then `Split (split_leaf l) else `Ok
      end)
  | Inner inner -> (
      let ci = child_index inner key in
      match insert_into inner.children.(ci) key value with
      | (`Ok | `Duplicate _) as r -> r
      | `Split (sep, right) ->
          inner.ikeys <- array_insert inner.ikeys ci sep;
          inner.children <- array_insert inner.children (ci + 1) right;
          if Array.length inner.ikeys > fanout then `Split (split_inner inner) else `Ok)

let insert_unlocked t key value =
  match insert_into t.root key value with
  | `Duplicate v -> `Duplicate v
  | `Ok ->
      t.count <- t.count + 1;
      `Inserted
  | `Split (sep, right) ->
      t.root <- Inner { ikeys = [| sep |]; children = [| t.root; right |] };
      t.count <- t.count + 1;
      `Inserted

let insert t key value = with_lock t (fun () -> insert_unlocked t key value)

let remove_unlocked t key =
  let l = find_leaf t.root key in
  let i = lower_bound l.lkeys key in
  if i < Array.length l.lkeys && String.equal l.lkeys.(i) key then begin
    let v = l.lvals.(i) in
    l.lkeys <- array_remove l.lkeys i;
    l.lvals <- array_remove l.lvals i;
    l.lversion <- l.lversion + 1;
    t.count <- t.count - 1;
    (* No merging: under-full leaves are tolerated (deletes are rare in
       TPC-C relative to inserts, and validation only needs versions). *)
    Some v
  end
  else None

let remove t key = with_lock t (fun () -> remove_unlocked t key)

let lock_tree t = Mutex.lock t.lock

let unlock_tree t = Mutex.unlock t.lock

let rec scan node ~lo ~hi ~on_leaf ~emit =
  match node with
  | Leaf l ->
      on_leaf l;
      let i0 = lower_bound l.lkeys lo in
      let n = Array.length l.lkeys in
      let rec loop i =
        if i < n && String.compare l.lkeys.(i) hi < 0 then begin
          emit l.lkeys.(i) l.lvals.(i);
          loop (i + 1)
        end
      in
      loop i0
  | Inner inner ->
      (* Children overlapping [lo, hi): from the child covering lo to the
         child covering the last key < hi. *)
      let first = child_index inner lo in
      let n = Array.length inner.children in
      let rec loop ci =
        if ci < n && (ci = first || String.compare inner.ikeys.(ci - 1) hi < 0) then begin
          scan inner.children.(ci) ~lo ~hi ~on_leaf ~emit;
          loop (ci + 1)
        end
      in
      loop first

let iter_range t ~lo ~hi f =
  with_lock t (fun () -> scan t.root ~lo ~hi ~on_leaf:(fun _ -> ()) ~emit:f)

let scan_range t ~lo ~hi ?(on_leaf = fun _ -> ()) () =
  with_lock t (fun () ->
      let acc = ref [] in
      scan t.root ~lo ~hi ~on_leaf ~emit:(fun k v -> acc := (k, v) :: !acc);
      List.rev !acc)

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let rec check node ~lo ~hi ~depth =
    match node with
    | Leaf l ->
        let n = Array.length l.lkeys in
        if Array.length l.lvals <> n then fail "leaf keys/vals arity mismatch";
        for i = 0 to n - 1 do
          let k = l.lkeys.(i) in
          if i > 0 && String.compare l.lkeys.(i - 1) k >= 0 then fail "leaf keys not sorted";
          (match lo with Some b when String.compare k b < 0 -> fail "leaf key below bound" | _ -> ());
          (match hi with Some b when String.compare k b >= 0 -> fail "leaf key above bound" | _ -> ())
        done;
        (n, depth)
    | Inner inner ->
        let nk = Array.length inner.ikeys in
        if Array.length inner.children <> nk + 1 then fail "inner arity mismatch";
        if nk = 0 then fail "inner node with no separator";
        for i = 1 to nk - 1 do
          if String.compare inner.ikeys.(i - 1) inner.ikeys.(i) >= 0 then
            fail "separators not sorted"
        done;
        let total = ref 0 and leaf_depth = ref (-1) in
        for ci = 0 to nk do
          let clo = if ci = 0 then lo else Some inner.ikeys.(ci - 1) in
          let chi = if ci = nk then hi else Some inner.ikeys.(ci) in
          let n, d = check inner.children.(ci) ~lo:clo ~hi:chi ~depth:(depth + 1) in
          total := !total + n;
          if !leaf_depth = -1 then leaf_depth := d
          else if !leaf_depth <> d then fail "unbalanced leaf depth"
        done;
        (!total, !leaf_depth)
  in
  with_lock t (fun () ->
      let total, _ = check t.root ~lo:None ~hi:None ~depth:0 in
      if total <> t.count then fail "count mismatch: %d vs %d" total t.count)
