lib/silo/tpcc.mli: Db Engine
