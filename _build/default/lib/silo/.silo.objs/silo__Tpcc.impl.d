lib/silo/tpcc.ml: Array Atomic Btree Char Db Engine Hashtbl Key List Printf Record String Tid Txn
