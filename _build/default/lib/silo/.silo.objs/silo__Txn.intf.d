lib/silo/txn.mli: Db Tid
