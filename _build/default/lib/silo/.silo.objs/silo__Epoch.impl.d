lib/silo/epoch.ml: Atomic
