lib/silo/key.mli:
