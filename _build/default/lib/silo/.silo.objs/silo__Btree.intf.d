lib/silo/btree.mli:
