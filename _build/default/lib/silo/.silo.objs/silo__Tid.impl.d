lib/silo/tid.ml: Format
