lib/silo/record.mli: Tid
