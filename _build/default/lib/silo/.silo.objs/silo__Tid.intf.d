lib/silo/tid.mli: Format
