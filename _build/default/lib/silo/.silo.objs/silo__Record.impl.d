lib/silo/record.ml: Array Atomic Domain Tid
