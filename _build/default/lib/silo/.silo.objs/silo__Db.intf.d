lib/silo/db.mli: Btree Epoch Record Tid
