lib/silo/key.ml: Bytes Char List String
