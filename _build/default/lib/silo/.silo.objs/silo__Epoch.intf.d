lib/silo/epoch.mli:
