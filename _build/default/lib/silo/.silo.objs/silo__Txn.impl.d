lib/silo/txn.ml: Btree Db Epoch List Record String Tid
