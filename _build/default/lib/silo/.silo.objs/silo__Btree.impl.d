lib/silo/btree.ml: Array Fun List Mutex Printf String
