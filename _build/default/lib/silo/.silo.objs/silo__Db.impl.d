lib/silo/db.ml: Btree Epoch Hashtbl Record Tid
