(** Global epoch management (Silo §4.1).

    The epoch number is the coarse-grained component of every committed
    TID; it advances periodically (Silo: every 40ms, here on demand or
    every [advance_every] commits) and is what gives Silo serializability
    with no shared-counter bottleneck — workers only read it. The
    epoch-based garbage collection tied to it is the part the paper
    disables for the §6.3 measurements; we likewise do not implement GC. *)

type t

val create : ?advance_every:int -> unit -> t
(** [advance_every] commits between automatic advances (default 4096; the
    stand-in for Silo's 40ms timer). *)

val current : t -> int

val advance : t -> int
(** Manually advance; returns the new epoch. *)

val on_commit : t -> unit
(** Notify one commit; advances the epoch each [advance_every] calls. *)
