(** Database: a set of named ordered tables plus the epoch manager and
    per-worker commit state. *)

type table = { name : string; index : Record.t Btree.t }

type t

type worker
(** Per-worker transaction state: the last TID this worker committed (the
    commit protocol's TID assignment rule (c)) and abort/commit
    counters. *)

val create : ?epoch_advance_every:int -> unit -> t

val epoch : t -> Epoch.t

val add_table : t -> string -> table
(** Raises [Invalid_argument] on duplicate table names. *)

val find_table : t -> string -> table
(** Raises [Not_found]. *)

val tables : t -> table list

val worker : t -> id:int -> worker

val worker_id : worker -> int

val last_tid : worker -> Tid.t

val set_last_tid : worker -> Tid.t -> unit

val note_commit : worker -> unit

val note_abort : worker -> unit

val commits : worker -> int

val aborts : worker -> int
