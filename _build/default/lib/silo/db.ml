type table = { name : string; index : Record.t Btree.t }

type t = { epoch_mgr : Epoch.t; tables : (string, table) Hashtbl.t }

type worker = {
  id : int;
  mutable last : Tid.t;
  mutable commit_count : int;
  mutable abort_count : int;
}

let create ?(epoch_advance_every = 4096) () =
  { epoch_mgr = Epoch.create ~advance_every:epoch_advance_every (); tables = Hashtbl.create 16 }

let epoch t = t.epoch_mgr

let add_table t name =
  if Hashtbl.mem t.tables name then invalid_arg ("Db.add_table: duplicate table " ^ name);
  let table = { name; index = Btree.create () } in
  Hashtbl.add t.tables name table;
  table

let find_table t name =
  match Hashtbl.find_opt t.tables name with
  | Some table -> table
  | None -> raise Not_found

let tables t = Hashtbl.fold (fun _ table acc -> table :: acc) t.tables []

let worker _t ~id = { id; last = Tid.zero; commit_count = 0; abort_count = 0 }

let worker_id w = w.id

let last_tid w = w.last

let set_last_tid w tid = w.last <- tid

let note_commit w = w.commit_count <- w.commit_count + 1

let note_abort w = w.abort_count <- w.abort_count + 1

let commits w = w.commit_count

let aborts w = w.abort_count
