let of_int n =
  if n < 0 then invalid_arg "Key.of_int: negative";
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set b i (Char.chr ((n lsr (8 * (7 - i))) land 0xff))
  done;
  Bytes.unsafe_to_string b

let of_ints ids = String.concat "" (List.map of_int ids)

let of_ints_str ids suffix = of_ints ids ^ suffix

let to_ints s =
  let len = String.length s in
  if len mod 8 <> 0 then invalid_arg "Key.to_ints: length not a multiple of 8";
  List.init (len / 8) (fun w ->
      let acc = ref 0 in
      for i = 0 to 7 do
        acc := (!acc lsl 8) lor Char.code s.[(w * 8) + i]
      done;
      !acc)

let succ s = s ^ "\x00"
