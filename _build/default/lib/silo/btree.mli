(** Ordered in-memory index: a B+-tree with per-leaf version counters.

    This is the reproduction's stand-in for Masstree, Silo's index
    structure. What matters for the OCC protocol is preserved exactly:

    - every leaf carries a version counter, bumped by any insert or delete
      touching that leaf (including splits that move its keys);
    - lookups and scans report the leaves they touched, so a transaction
      can record (leaf, version) pairs in its node-set and revalidate them
      at commit — Silo's defense against phantoms (Tu et al. §4.5).

    Concurrency is coarser than Masstree's lock-free readers: one mutex per
    tree guards every operation. The simplification is documented in
    DESIGN.md; it does not change the validation semantics, only the
    scalability of the index itself. *)

type 'a t

type 'a leaf
(** A leaf node handle, valid for version checks for the tree's
    lifetime. *)

val create : unit -> 'a t

val length : 'a t -> int
(** Number of live keys. *)

val leaf_version : 'a leaf -> int

val get : 'a t -> string -> 'a option * 'a leaf
(** Value bound to the key (if any) and the leaf that holds — or would
    hold — the key; record its version to validate absent reads. *)

val insert : 'a t -> string -> 'a -> [ `Inserted | `Duplicate of 'a ]
(** Insert a new binding; refuses to overwrite (value updates go through
    {!Record} versioning, not the index). Bumps affected leaf versions. *)

val remove : 'a t -> string -> 'a option
(** Remove and return the binding, bumping the leaf version. *)

val iter_range : 'a t -> lo:string -> hi:string -> (string -> 'a -> unit) -> unit
(** Visit bindings with lo <= key < hi in ascending key order. *)

val scan_range :
  'a t -> lo:string -> hi:string -> ?on_leaf:('a leaf -> unit) -> unit -> (string * 'a) list
(** Like {!iter_range} but collects the bindings and reports every leaf
    overlapping the range through [on_leaf] (for node-set validation),
    including leaves that contributed no matching key. *)

val check_invariants : 'a t -> unit
(** Verify ordering, key/child arity and separator invariants; raises
    [Failure] on violation. For tests. *)

(** {2 Commit-protocol interface}

    The OCC commit protocol must hold the tree lock across node-set
    validation and its own structural changes, so that no concurrent
    insert can slip between the two (see {!Txn}). These entry points
    expose the lock; the [_unlocked] variants require it held. *)

val lock_tree : 'a t -> unit

val unlock_tree : 'a t -> unit

val insert_unlocked : 'a t -> string -> 'a -> [ `Inserted | `Duplicate of 'a ]

val remove_unlocked : 'a t -> string -> 'a option
