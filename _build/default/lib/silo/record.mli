(** Versioned in-memory records with word-sized OCC metadata.

    A record is a TID word (atomic, for lock-free readers and CAS locking)
    plus its column values. Readers use Silo's stable-read protocol: read
    the TID, spin while locked, read the data, re-read the TID; equal TIDs
    mean a consistent snapshot. *)

type t

val create : string array -> t
(** New record with {!Tid.zero} and the given column values. *)

val create_absent : string array -> t
(** New record carrying the absent bit — visible in indexes but logically
    not yet committed (used for inserts during the commit protocol). *)

val create_committed : string array -> tid:Tid.t -> t
(** New record already carrying a commit TID — used when the commit
    protocol inserts a record while holding the index lock, so the record
    is fully committed by the time it becomes visible. [tid] must be
    unlocked. *)

val tid : t -> Tid.t
(** Current TID word (may have status bits set). *)

val columns : t -> int

val stable_read : t -> Tid.t * string array
(** Consistent (tid, data) snapshot; spins across concurrent writers. The
    returned array is the internal one — treat as read-only. *)

val try_lock : t -> bool
(** CAS the lock bit; false if already locked. *)

val lock : t -> unit
(** Spin until the lock is acquired. *)

val unlock : t -> unit
(** Clear the lock bit. Raises [Invalid_argument] if not locked. *)

val install : t -> data:string array -> tid:Tid.t -> unit
(** Writer-side commit: store new data, then release the lock by
    publishing [tid] (which must be unlocked; raises otherwise). The caller
    must hold the lock. *)

val mark_absent : t -> tid:Tid.t -> unit
(** Commit a logical delete: publish [tid] with the absent bit. Caller
    must hold the lock. *)
