type t = { meta : int Atomic.t; mutable data : string array }

let create data = { meta = Atomic.make Tid.zero; data }

let create_absent data = { meta = Atomic.make (Tid.absent Tid.zero); data }

let create_committed data ~tid =
  if Tid.is_locked tid then invalid_arg "Record.create_committed: tid has lock bit";
  { meta = Atomic.make tid; data }

let tid t = Atomic.get t.meta

let columns t = Array.length t.data

let rec stable_read t =
  let before = Atomic.get t.meta in
  if Tid.is_locked before then begin
    Domain.cpu_relax ();
    stable_read t
  end
  else begin
    let data = t.data in
    let after = Atomic.get t.meta in
    if before = after then (before, data) else stable_read t
  end

let try_lock t =
  let current = Atomic.get t.meta in
  (not (Tid.is_locked current))
  && Atomic.compare_and_set t.meta current (Tid.locked current)

let rec lock t =
  if not (try_lock t) then begin
    Domain.cpu_relax ();
    lock t
  end

let unlock t =
  let current = Atomic.get t.meta in
  if not (Tid.is_locked current) then invalid_arg "Record.unlock: not locked";
  Atomic.set t.meta (Tid.unlocked current)

let install t ~data ~tid =
  if not (Tid.is_locked (Atomic.get t.meta)) then invalid_arg "Record.install: not locked";
  if Tid.is_locked tid then invalid_arg "Record.install: new tid has lock bit";
  t.data <- data;
  (* Publishing the unlocked TID releases the lock and versions the data
     in one atomic store. *)
  Atomic.set t.meta tid

let mark_absent t ~tid =
  if not (Tid.is_locked (Atomic.get t.meta)) then invalid_arg "Record.mark_absent: not locked";
  Atomic.set t.meta (Tid.absent (Tid.unlocked tid))
