type t = int

let lock_bit = 1

let absent_bit = 2

let seq_shift = 2

let seq_bits = 32

let epoch_shift = seq_shift + seq_bits

let epoch_bits = 28

let seq_mask = (1 lsl seq_bits) - 1

let epoch_mask = (1 lsl epoch_bits) - 1

let zero = 0

let make ~epoch ~seq =
  if epoch < 0 || epoch > epoch_mask then invalid_arg "Tid.make: epoch out of range";
  if seq < 0 || seq > seq_mask then invalid_arg "Tid.make: seq out of range";
  (epoch lsl epoch_shift) lor (seq lsl seq_shift)

let epoch t = (t lsr epoch_shift) land epoch_mask

let seq t = (t lsr seq_shift) land seq_mask

let is_locked t = t land lock_bit <> 0

let locked t = t lor lock_bit

let unlocked t = t land lnot lock_bit

let is_absent t = t land absent_bit <> 0

let absent t = t lor absent_bit

let present t = t land lnot absent_bit

let compare_data a b =
  let ca = compare (epoch a) (epoch b) in
  if ca <> 0 then ca else compare (seq a) (seq b)

let next_after t ~epoch:e =
  if epoch t > e then invalid_arg "Tid.next_after: epoch in the past";
  if epoch t = e then make ~epoch:e ~seq:(seq t + 1) else make ~epoch:e ~seq:0

let pp ppf t =
  Format.fprintf ppf "tid(e=%d, s=%d%s%s)" (epoch t) (seq t)
    (if is_locked t then ", locked" else "")
    (if is_absent t then ", absent" else "")
