(** Order-preserving key encoding.

    Composite TPC-C keys (warehouse, district, customer, order ids) are
    encoded as fixed-width big-endian byte strings so that lexicographic
    string comparison in the B+-tree matches numeric tuple order —
    the same trick Silo/Masstree use. *)

val of_int : int -> string
(** 8-byte big-endian encoding of a non-negative int. Raises
    [Invalid_argument] on negatives. *)

val of_ints : int list -> string
(** Concatenation of {!of_int} encodings: tuple ordering. *)

val of_ints_str : int list -> string -> string
(** [of_ints_str ids suffix] — composite of integer fields followed by a
    raw string component (e.g. a customer last name). *)

val to_ints : string -> int list
(** Inverse of {!of_ints} when the key is only integer components (length
    a multiple of 8). Raises [Invalid_argument] otherwise. *)

val succ : string -> string
(** Smallest key strictly greater than the argument (appends a NUL byte) —
    handy for half-open range scans. *)
