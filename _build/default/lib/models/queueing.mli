(** Idealized, zero-overhead queueing models (§2.3, Figure 1/2).

    Four open-loop models in Kendall notation, all with Poisson arrivals:

    - centralized-FCFS, M/G/n/FCFS: one global FIFO feeding n processors —
      idealizes floating-connection event-driven servers and ZygOS;
    - partitioned-FCFS, n×M/G/1/FCFS: a random selector in front of n
      single-processor FIFOs — idealizes shared-nothing dataplanes (IX) and
      partitioned epoll servers;
    - M/G/n/PS: n processors perfectly shared by all jobs (each job runs at
      rate min(1, n/k) with k jobs present) — idealizes thread-per-connection
      on a rebalancing time-sharing OS;
    - n×M/G/1/PS: random selector in front of n single-processor PS
      stations.

    These models have no system overheads of any kind; they provide the
    grey upper-bound lines of Figures 3 and 7 and the four curves of
    Figure 2. *)

type policy = Fcfs | Ps

type topology = Central | Partitioned

type spec = { servers : int; policy : policy; topology : topology }

val name : spec -> string
(** Kendall-style label, e.g. ["M/G/16/FCFS"] or ["16xM/G/1/PS"]. *)

type result = {
  latencies : Stats.Tally.t;  (** sojourn times of measured jobs *)
  throughput : float;  (** measured completions per unit time *)
  offered_load : float;  (** the requested λ·S̄/n *)
}

val simulate :
  spec ->
  service:Engine.Dist.t ->
  load:float ->
  requests:int ->
  seed:int ->
  result
(** [simulate spec ~service ~load ~requests ~seed] runs the model at
    offered load [load] (fraction of saturation; λ = load·n/S̄) until
    [requests] measured jobs complete. A warmup of [requests/5] jobs
    precedes measurement. Deterministic in [seed]. *)

val max_load_at_slo :
  spec ->
  service:Engine.Dist.t ->
  slo_p99:float ->
  ?requests:int ->
  ?seed:int ->
  unit ->
  float
(** Highest offered load (fraction of saturation, resolution 0.01) whose
    measured p99 sojourn time meets [slo_p99], found by bisection. This is
    how the paper computes e.g. "96.3% for centralized-FCFS" (§3.1). *)
