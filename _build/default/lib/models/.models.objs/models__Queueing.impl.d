lib/models/queueing.ml: Array Engine Float List Printf Queue Stats
