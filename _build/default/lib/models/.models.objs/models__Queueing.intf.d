lib/models/queueing.mli: Engine Stats
