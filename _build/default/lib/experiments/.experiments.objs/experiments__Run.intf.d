lib/experiments/run.mli: Core Engine Net Systems
