lib/experiments/run.mli: Engine Net
