lib/experiments/appserve.mli: Kvstore Run Silo
