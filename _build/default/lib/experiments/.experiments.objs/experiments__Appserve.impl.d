lib/experiments/appserve.ml: Array Engine Float Kvstore Net Option Run Silo Stats Systems Unix
