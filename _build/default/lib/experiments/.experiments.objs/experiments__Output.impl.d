lib/experiments/output.ml: Buffer Char Engine Float List Printf String
