lib/experiments/output.ml: List Printf String
