lib/experiments/output.mli:
