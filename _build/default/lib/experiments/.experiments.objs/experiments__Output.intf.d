lib/experiments/output.mli: Engine
