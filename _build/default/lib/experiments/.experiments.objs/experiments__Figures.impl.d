lib/experiments/figures.ml: Array Core Engine Float Hashtbl Kvstore List Models Net Option Output Printf Run Silo Stats Systems Unix
