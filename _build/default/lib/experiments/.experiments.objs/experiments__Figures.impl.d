lib/experiments/figures.ml: Array Engine Hashtbl Kvstore List Models Net Option Output Printf Run Silo Stats Systems Unix
