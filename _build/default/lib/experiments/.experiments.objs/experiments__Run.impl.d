lib/experiments/run.ml: Engine List Models Net Printf Stats Systems
