lib/experiments/run.ml: Core Engine List Models Net Option Printf Stats Systems
