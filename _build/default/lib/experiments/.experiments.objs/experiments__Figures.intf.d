lib/experiments/figures.mli:
