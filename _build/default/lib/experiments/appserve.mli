(** Serving {e real} application work through the simulated systems.

    The paper's §6.3 artifact is "a networked version of Silo": real
    database transactions behind a scheduler and a network stack. This
    module reproduces that composition: for each simulated request it
    executes actual application code — a TPC-C transaction on the real
    {!Silo} engine, or a memcached command on the real {!Kvstore} store —
    measures its wall-clock duration, and feeds that measured demand to
    the simulated server as the request's service time. Scheduling,
    queueing and stealing happen in simulated time; the work itself is
    real (so contention, aborts and data-dependent costs are real too).

    Measured durations are scaled by a calibration factor so the mean
    lands on a chosen µs value (this machine's raw speed differs from the
    paper's Xeon); pass [target_mean_us = 0.] to disable scaling. Raw
    durations are capped at 25x the calibrated median to filter OCaml-GC
    and host-scheduler artifacts — the moral equivalent of the paper
    disabling Silo's GC for the §6.3 measurements. *)

type workload =
  | Tpcc of Silo.Tpcc.t  (** the standard mix against a loaded database *)
  | Kv of Kvstore.Workload.t * Kvstore.Store.t  (** ETC/USR commands *)

type t

val create : ?seed:int -> ?calibrate_over:int -> target_mean_us:float -> workload -> t
(** Calibration runs [calibrate_over] operations (default 2000) to learn
    the raw mean cost. Raises [Invalid_argument] if [target_mean_us] is
    negative. *)

val service_fn : t -> conn:int -> float
(** Execute one real operation and return its (scaled) duration in µs —
    plug into {!Net.Loadgen.create}'s [service_fn]. *)

val mean_us : t -> float
(** The calibrated post-scaling mean (the [target_mean_us], or the raw
    mean when scaling is disabled). *)

val executed : t -> int
(** Real operations executed so far (including calibration). *)

val run_point :
  t ->
  system:Run.system_kind ->
  load:float ->
  ?cores:int ->
  ?conns:int ->
  ?requests:int ->
  ?seed:int ->
  unit ->
  Run.point
(** One latency/throughput point where every simulated request's demand
    comes from a freshly executed real operation. *)
