let print_header title =
  let line = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" line title line

let print_subheader title = Printf.printf "\n--- %s ---\n" title

let print_table ~columns ~rows =
  List.iter
    (fun row ->
      if List.length row <> List.length columns then
        invalid_arg "Output.print_table: row arity mismatch")
    rows;
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length col) rows)
      columns
  in
  let print_row cells =
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        Printf.printf "%s%s  " cell (String.make (w - String.length cell) ' '))
      cells;
    print_newline ()
  in
  print_row columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let print_sim_stats (s : Engine.Sim.stats) =
  print_subheader "event pool";
  print_table
    ~columns:[ "counter"; "value" ]
    ~rows:
      [
        [ "events scheduled"; string_of_int s.Engine.Sim.scheduled ];
        [ "events fired"; string_of_int s.Engine.Sim.fired ];
        [ "events cancelled"; string_of_int s.Engine.Sim.cancelled ];
        [ "pool slot reuses"; string_of_int s.Engine.Sim.reused ];
        [ "pool slots allocated"; string_of_int s.Engine.Sim.pool_slots ];
      ]

(* Minimal JSON emission for the benchmark-trajectory file; no external
   dependency, strings restricted to what Printf can escape. *)
module Json = struct
  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let str s = Printf.sprintf "\"%s\"" (escape s)

  let num x = if Float.is_finite x then Printf.sprintf "%.6g" x else "null"

  let obj fields =
    "{" ^ String.concat ", " (List.map (fun (k, v) -> str k ^ ": " ^ v) fields) ^ "}"

  let arr items = "[" ^ String.concat ", " items ^ "]"
end

let f1 x = Printf.sprintf "%.1f" x

let f2 x = Printf.sprintf "%.2f" x

let f3 x = Printf.sprintf "%.3f" x

let pct x = Printf.sprintf "%.1f%%" (100. *. x)
