let print_header title =
  let line = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" line title line

let print_subheader title = Printf.printf "\n--- %s ---\n" title

let print_table ~columns ~rows =
  List.iter
    (fun row ->
      if List.length row <> List.length columns then
        invalid_arg "Output.print_table: row arity mismatch")
    rows;
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length col) rows)
      columns
  in
  let print_row cells =
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        Printf.printf "%s%s  " cell (String.make (w - String.length cell) ' '))
      cells;
    print_newline ()
  in
  print_row columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let f1 x = Printf.sprintf "%.1f" x

let f2 x = Printf.sprintf "%.2f" x

let f3 x = Printf.sprintf "%.3f" x

let pct x = Printf.sprintf "%.1f%%" (100. *. x)
