(** Regeneration of every table and figure in the paper's evaluation
    (§2.3, §3.4, §6, §7), printing the same rows/series the paper plots.

    [scale] multiplies the per-point measured-request budget (1.0 = the
    defaults recorded in EXPERIMENTS.md; 0.2 for a quick pass). All output
    goes to stdout. *)

val fig2 : scale:float -> unit
(** Queueing-model p99 vs load, 4 models × 4 distributions (n = 16). *)

val fig3 : scale:float -> unit
(** Baselines: max load meeting p99 <= 10·S̄ as a function of S̄ —
    Linux-partitioned/floating, IX, and the two model bounds. *)

val fig6 : scale:float -> unit
(** p99 latency vs throughput, {fixed, exp, bimodal-1} × {10µs, 25µs}:
    Linux-floating, IX, ZygOS, ZygOS-no-interrupts, M/G/16/FCFS. *)

val fig7 : scale:float -> unit
(** Max load @ SLO vs S̄ with ZygOS included (1–50µs). *)

val fig8 : scale:float -> unit
(** Steal rate vs throughput, ZygOS with and without IPIs (exp, 25µs). *)

val fig9 : scale:float -> unit
(** memcached ETC/USR: p99 vs throughput for Linux, IX B=1, IX B=64,
    ZygOS. *)

val silo_service_samples : scale:float -> float array
(** Measured service times (µs) of a real TPC-C run on the Silo engine,
    normalized to the paper's 33µs mean (see EXPERIMENTS.md); memoized so
    fig10a/fig10b/table1 share one run. *)

val fig10a : scale:float -> unit
(** CCDF of Silo/TPC-C service time per transaction type and for the
    mix. *)

val fig10b : scale:float -> unit
(** Silo/TPC-C p99 end-to-end latency vs throughput on Linux, IX, ZygOS. *)

val table1 : scale:float -> unit
(** Max load @ 1000µs SLO, speedups, and tails at 50/75/90% of max. *)

val fig11 : scale:float -> unit
(** IX B=1 / B=64 / ZygOS under 100µs and 1000µs SLOs (fixed 10µs). *)

val ablate_poll : scale:float -> unit
(** Ablation: randomized vs round-robin idle-loop victim order. *)

val ablate_batch : scale:float -> unit
(** Ablation: IX batching bound B and ZygOS receive-batch sweep. *)

val ext_preempt : scale:float -> unit
(** Extension: preemptive centralized scheduling (quantum + switch cost)
    vs FCFS systems under extreme dispersion (bimodal-2) — Observation 2
    of §2.3 turned into a system. *)

val ext_rebalance : scale:float -> unit
(** Extension (§5 "control plane interactions", left as future work by the
    paper): a control plane that re-programs the RSS indirection table to
    fight persistent load imbalance, compared with static IX and with
    ZygOS's work stealing under a skewed connection load. *)

val ext_consolidate : scale:float -> unit
(** Extension (§5): the IX control plane's energy-proportionality
    function — dynamic core parking/unparking by measured utilization —
    on the centralized preemptive system, vs a static 16-core
    allocation. *)

val chaos : scale:float -> unit
(** Robustness: degradation curves under injected network faults (drop /
    duplicate / reorder), a straggler core, and retry storms past
    saturation — goodput and p99 for Linux-floating, IX, and ZygOS, with
    and without server-side load shedding. *)

val all_targets : (string * (scale:float -> unit)) list
(** Name → generator, in run order (the bench executable's registry). *)
