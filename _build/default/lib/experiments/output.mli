(** Plain-text table/series rendering for the benchmark harness. *)

val print_header : string -> unit
(** Boxed section title. *)

val print_subheader : string -> unit

val print_table : columns:string list -> rows:string list list -> unit
(** Aligned columns; every row must have the arity of [columns]. *)

val f1 : float -> string
(** Format helpers: fixed decimals. *)

val f2 : float -> string

val f3 : float -> string

val pct : float -> string
(** 0.753 -> "75.3%". *)
