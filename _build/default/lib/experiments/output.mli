(** Plain-text table/series rendering for the benchmark harness. *)

val print_header : string -> unit
(** Boxed section title. *)

val print_subheader : string -> unit

val print_table : columns:string list -> rows:string list list -> unit
(** Aligned columns; every row must have the arity of [columns]. *)

val print_sim_stats : Engine.Sim.stats -> unit
(** Table of the simulator's event-pool counters
    (scheduled/fired/cancelled/reused and pool size). *)

(** Minimal JSON emission (no external dependency), used by the benchmark
    harness's [--json] trajectory file. *)
module Json : sig
  val escape : string -> string

  val str : string -> string
  (** Quoted, escaped JSON string literal. *)

  val num : float -> string
  (** Decimal literal; NaN/infinity render as [null]. *)

  val obj : (string * string) list -> string
  (** Object from (key, already-rendered value) pairs. *)

  val arr : string list -> string
  (** Array of already-rendered values. *)
end

val f1 : float -> string
(** Format helpers: fixed decimals. *)

val f2 : float -> string

val f3 : float -> string

val pct : float -> string
(** 0.753 -> "75.3%". *)
