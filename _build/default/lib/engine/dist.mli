(** Service-time and inter-arrival distributions.

    These are the distributions of ZygOS §2.3/Figure 2 plus an empirical
    distribution used to replay measured Silo/TPC-C service times (§6.3).
    All times are in microseconds unless a caller rescales. *)

type t =
  | Deterministic of float  (** P[X = s] = 1 *)
  | Exponential of float  (** mean s *)
  | Bimodal of { p_slow : float; fast : float; slow : float }
      (** P[X = fast] = 1 - p_slow, P[X = slow] = p_slow *)
  | Lognormal of { mu : float; sigma : float }
      (** log X ~ N(mu, sigma); used for ablations beyond the paper *)
  | Empirical of float array
      (** uniform resampling from measured samples (Silo service times) *)

val deterministic : float -> t

val exponential : float -> t

val bimodal1 : mean:float -> t
(** The paper's bimodal-1: P[X = S/2] = .9, P[X = 5.5 S] = .1 — mean S. *)

val bimodal2 : mean:float -> t
(** The paper's bimodal-2: P[X = S/2] = .999, P[X = 500.5 S] = .001 —
    mean S. *)

val lognormal : mean:float -> sigma:float -> t
(** Lognormal with the requested mean and log-space sigma. *)

val empirical : float array -> t
(** Empirical distribution over the given samples (copied). Raises
    [Invalid_argument] on an empty array. *)

val mean : t -> float
(** Analytic mean (sample mean for [Empirical]). *)

val squared_cv : t -> float
(** Squared coefficient of variation, Var(X)/E(X)^2. 0 for deterministic,
    1 for exponential; distinguishes the dispersion regimes of §2.3. *)

val sample : t -> Rng.t -> float
(** Draw one value. *)

val scale : t -> float -> t
(** [scale t k] multiplies the distribution by [k] (so its mean scales by
    [k]); used to sweep mean service time at fixed shape. *)

val name : t -> string
(** Short label used in experiment output ("fixed", "exp", "bimodal1"...). *)

val pp : Format.formatter -> t -> unit
