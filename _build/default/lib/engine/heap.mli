(** Binary min-heap keyed by (time, sequence number).

    The event queue of the discrete-event simulator. Ties on time break by
    insertion order (FIFO), which keeps simulations deterministic and makes
    "simultaneous" events execute in the order they were scheduled. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> time:float -> 'a -> unit
(** Insert an element with the given priority. O(log n). *)

val pop_min : 'a t -> (float * 'a) option
(** Remove and return the earliest element (smallest time, then earliest
    insertion). O(log n). *)

val peek_min_time : 'a t -> float option
(** Time of the earliest element without removing it. *)

val clear : 'a t -> unit
