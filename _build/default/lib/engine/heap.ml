type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable entries : 'a entry array;  (* slots [0, size) are live *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { entries = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let precedes a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.entries in
  let new_cap = if cap = 0 then 64 else cap * 2 in
  (* Safe dummy: duplicate an existing entry if any, it is overwritten. *)
  let dummy = if t.size > 0 then t.entries.(0) else { time = 0.; seq = 0; value = Obj.magic 0 } in
  let bigger = Array.make new_cap dummy in
  Array.blit t.entries 0 bigger 0 t.size;
  t.entries <- bigger

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes t.entries.(i) t.entries.(parent) then begin
      let tmp = t.entries.(i) in
      t.entries.(i) <- t.entries.(parent);
      t.entries.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && precedes t.entries.(left) t.entries.(!smallest) then smallest := left;
  if right < t.size && precedes t.entries.(right) t.entries.(!smallest) then smallest := right;
  if !smallest <> i then begin
    let tmp = t.entries.(i) in
    t.entries.(i) <- t.entries.(!smallest);
    t.entries.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t ~time value =
  if t.size = Array.length t.entries then grow t;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.entries.(t.size) <- { time; seq; value };
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_min t =
  if t.size = 0 then None
  else begin
    let top = t.entries.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.entries.(0) <- t.entries.(t.size);
      sift_down t 0
    end;
    Some (top.time, top.value)
  end

let peek_min_time t = if t.size = 0 then None else Some t.entries.(0).time

let clear t =
  t.size <- 0;
  t.next_seq <- 0
