(** Deterministic pseudo-random number generation for simulations.

    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny,
    fast, statistically solid 64-bit generator with cheap stream splitting.
    Every simulation in this repository draws randomness exclusively through
    this module so that experiments are bit-for-bit reproducible from a seed,
    and so that independent model components (arrival process, service times,
    connection selection, steal-victim selection) can use decorrelated
    streams split from one master seed. *)

type t
(** Mutable generator state. Not thread-safe; use one per simulation
    component (see {!split}). *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state (same future stream). *)

val split : t -> t
(** [split t] draws from [t] to derive a new generator whose stream is
    decorrelated from [t]'s subsequent output. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [lo, hi). Requires [lo <= hi]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform in [lo, hi] (inclusive). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian sample (Box–Muller). *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. Used to randomize steal-victim polling order. *)
