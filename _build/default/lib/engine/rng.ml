type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  (* Re-mix so that split streams do not share the master's gamma phase. *)
  { state = mix64 seed }

let float t =
  (* 53 high-quality bits -> [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let float_range t lo hi =
  assert (lo <= hi);
  lo +. (float t *. (hi -. lo))

let int t bound =
  assert (bound > 0);
  (* Modulo bias is negligible for bounds << 2^62 (all our uses). *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))

let int_range t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = float t < p

let exponential t ~mean =
  (* Inverse CDF; [1. -. float t] avoids log 0. *)
  -.mean *. log (1. -. float t)

let normal t ~mu ~sigma =
  let u1 = 1. -. float t and u2 = float t in
  let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
  mu +. (sigma *. z)

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
