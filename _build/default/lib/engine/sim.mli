(** Discrete-event simulation core.

    A simulation is a virtual clock plus an event queue of timestamped
    callbacks. Simulated time is a float in microseconds. Events scheduled
    for the same instant fire in scheduling order, so runs are fully
    deterministic given deterministic callbacks and {!Rng} seeds.

    The hot path is allocation-free in steady state: event records live in
    a pool of recycled slots, handles are immediate integers carrying a
    per-slot generation, and the underlying {!Heap} stores its keys in a
    flat float array. The only per-event allocation left is the callback
    closure the caller passes in.

    Events can be cancelled through the handle returned by {!schedule};
    cancellation is O(1) (the heap entry stays queued but is skipped, and
    the slot is recycled immediately). *)

type t

type handle
(** A scheduled event, usable for cancellation. Handles are immediate
    values (no allocation) and generation-checked: a handle whose event has
    fired or been cancelled is inert even after its pool slot is reused. *)

type stats = {
  scheduled : int;  (** events ever scheduled *)
  fired : int;  (** events whose callback ran *)
  cancelled : int;  (** live events cancelled (stale cancels excluded) *)
  reused : int;  (** schedules served from the free list (pool hits) *)
  pool_slots : int;  (** distinct pool slots ever handed out *)
}
(** Event-pool counters. In steady state [reused] tracks [scheduled] and
    [pool_slots] stays at the high-water mark of concurrently pending
    events — the signature of an allocation-free hot path. *)

val create : unit -> t
(** Fresh simulation with clock at 0. *)

val now : t -> float
(** Current simulated time (µs). *)

val schedule : t -> at:float -> (unit -> unit) -> handle
(** [schedule t ~at f] runs [f] when the clock reaches [at]. [at] must not
    be in the past (raises [Invalid_argument]). *)

val schedule_after : t -> delay:float -> (unit -> unit) -> handle
(** [schedule_after t ~delay f] = [schedule t ~at:(now t +. delay) f].
    [delay] must be non-negative. *)

val cancel : t -> handle -> unit
(** Prevent a pending event from firing. Cancelling a fired or already
    cancelled event is a no-op. *)

val pending : t -> int
(** Number of events still queued (including cancelled ones not yet
    skipped). *)

val step : t -> bool
(** Execute the next event, advancing the clock. Returns [false] when the
    queue is empty. *)

val run : t -> unit
(** Run until no events remain. *)

val run_until : t -> float -> unit
(** [run_until t horizon] executes events with timestamp <= [horizon], then
    advances the clock to [horizon]. Events beyond stay queued. *)

val stats : t -> stats
(** Snapshot of the event-pool counters. *)
