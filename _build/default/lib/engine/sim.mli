(** Discrete-event simulation core.

    A simulation is a virtual clock plus an event queue of timestamped
    callbacks. Simulated time is a float in microseconds. Events scheduled
    for the same instant fire in scheduling order, so runs are fully
    deterministic given deterministic callbacks and {!Rng} seeds.

    Events can be cancelled through the handle returned by {!schedule};
    cancellation is O(1) (the entry stays in the heap but is skipped). *)

type t

type handle
(** A scheduled event, usable for cancellation. *)

val create : unit -> t
(** Fresh simulation with clock at 0. *)

val now : t -> float
(** Current simulated time (µs). *)

val schedule : t -> at:float -> (unit -> unit) -> handle
(** [schedule t ~at f] runs [f] when the clock reaches [at]. [at] must not
    be in the past (raises [Invalid_argument]). *)

val schedule_after : t -> delay:float -> (unit -> unit) -> handle
(** [schedule_after t ~delay f] = [schedule t ~at:(now t +. delay) f].
    [delay] must be non-negative. *)

val cancel : handle -> unit
(** Prevent a pending event from firing. Cancelling a fired or already
    cancelled event is a no-op. *)

val pending : t -> int
(** Number of events still queued (including cancelled ones not yet
    skipped). *)

val step : t -> bool
(** Execute the next event, advancing the clock. Returns [false] when the
    queue is empty. *)

val run : t -> unit
(** Run until no events remain. *)

val run_until : t -> float -> unit
(** [run_until t horizon] executes events with timestamp <= [horizon], then
    advances the clock to [horizon]. Events beyond stay queued. *)
