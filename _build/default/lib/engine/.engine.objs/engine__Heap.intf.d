lib/engine/heap.mli:
