lib/engine/dist.ml: Array Format Rng
