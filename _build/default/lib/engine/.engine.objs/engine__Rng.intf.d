lib/engine/rng.mli:
