lib/engine/sim.mli:
