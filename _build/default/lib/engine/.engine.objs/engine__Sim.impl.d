lib/engine/sim.ml: Array Heap Printf
