(* Event records are pooled: a scheduled event is a slot in a set of
   parallel arrays (action + generation), and the handle returned to the
   caller is an immediate int packing (generation, slot). Firing or
   cancelling a slot bumps its generation and pushes it on a free-list
   stack, so steady-state scheduling recycles slots instead of allocating,
   and a stale handle (fired or cancelled event, possibly with the slot
   since reused) can never touch the wrong event: its packed generation no
   longer matches the slot's. *)

type handle = int

let slot_bits = 24
let slot_mask = (1 lsl slot_bits) - 1

type stats = {
  scheduled : int;
  fired : int;
  cancelled : int;
  reused : int;
  pool_slots : int;
}

let noop () = ()

type t = {
  mutable clock : float;
  queue : handle Heap.t;
  mutable actions : (unit -> unit) array;
  mutable gens : int array;
  mutable free : int array;  (* stack of recyclable slots *)
  mutable free_top : int;
  mutable fresh : int;  (* slots handed out so far *)
  mutable n_scheduled : int;
  mutable n_fired : int;
  mutable n_cancelled : int;
  mutable n_reused : int;
}

let create () =
  {
    clock = 0.;
    queue = Heap.create ~dummy:0 ();
    actions = Array.make 64 noop;
    gens = Array.make 64 0;
    free = Array.make 64 0;
    free_top = 0;
    fresh = 0;
    n_scheduled = 0;
    n_fired = 0;
    n_cancelled = 0;
    n_reused = 0;
  }

let now t = t.clock

let grow_pool t =
  let cap = Array.length t.actions in
  if cap >= slot_mask + 1 then
    failwith "Sim: event pool exceeded 2^24 concurrent events";
  let new_cap = min (2 * cap) (slot_mask + 1) in
  let actions = Array.make new_cap noop in
  let gens = Array.make new_cap 0 in
  let free = Array.make new_cap 0 in
  Array.blit t.actions 0 actions 0 cap;
  Array.blit t.gens 0 gens 0 cap;
  Array.blit t.free 0 free 0 t.free_top;
  t.actions <- actions;
  t.gens <- gens;
  t.free <- free

let release_slot t slot =
  t.gens.(slot) <- t.gens.(slot) + 1;
  t.actions.(slot) <- noop;
  t.free.(t.free_top) <- slot;
  t.free_top <- t.free_top + 1

let schedule t ~at action =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule: at %g is in the past (now %g)" at t.clock);
  let slot =
    if t.free_top > 0 then begin
      t.free_top <- t.free_top - 1;
      t.n_reused <- t.n_reused + 1;
      t.free.(t.free_top)
    end
    else begin
      if t.fresh = Array.length t.actions then grow_pool t;
      let s = t.fresh in
      t.fresh <- s + 1;
      s
    end
  in
  t.actions.(slot) <- action;
  t.n_scheduled <- t.n_scheduled + 1;
  let h = (t.gens.(slot) lsl slot_bits) lor slot in
  Heap.add t.queue ~time:at h;
  h

let schedule_after t ~delay action =
  if delay < 0. then invalid_arg "Sim.schedule_after: negative delay";
  schedule t ~at:(t.clock +. delay) action

let cancel t h =
  let slot = h land slot_mask in
  let gen = h lsr slot_bits in
  if slot < t.fresh && t.gens.(slot) = gen then begin
    release_slot t slot;
    t.n_cancelled <- t.n_cancelled + 1
  end

let pending t = Heap.length t.queue

let rec step t =
  if Heap.is_empty t.queue then false
  else begin
    let time = Heap.min_time t.queue in
    let h = Heap.min_elt t.queue in
    Heap.drop_min t.queue;
    let slot = h land slot_mask in
    let gen = h lsr slot_bits in
    if t.gens.(slot) <> gen then step t (* cancelled; slot already recycled *)
    else begin
      let action = t.actions.(slot) in
      release_slot t slot;
      t.n_fired <- t.n_fired + 1;
      t.clock <- time;
      action ();
      true
    end
  end

let run t = while step t do () done

let run_until t horizon =
  while (not (Heap.is_empty t.queue)) && Heap.min_time t.queue <= horizon do
    ignore (step t : bool)
  done;
  if horizon > t.clock then t.clock <- horizon

let stats t =
  {
    scheduled = t.n_scheduled;
    fired = t.n_fired;
    cancelled = t.n_cancelled;
    reused = t.n_reused;
    pool_slots = t.fresh;
  }
