type event = { mutable cancelled : bool; action : unit -> unit }

type handle = event

type t = { mutable clock : float; queue : event Heap.t }

let create () = { clock = 0.; queue = Heap.create () }

let now t = t.clock

let schedule t ~at action =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule: at %g is in the past (now %g)" at t.clock);
  let ev = { cancelled = false; action } in
  Heap.add t.queue ~time:at ev;
  ev

let schedule_after t ~delay action =
  if delay < 0. then invalid_arg "Sim.schedule_after: negative delay";
  schedule t ~at:(t.clock +. delay) action

let cancel ev = ev.cancelled <- true

let pending t = Heap.length t.queue

let rec step t =
  match Heap.pop_min t.queue with
  | None -> false
  | Some (time, ev) ->
      if ev.cancelled then step t
      else begin
        t.clock <- time;
        ev.action ();
        true
      end

let run t = while step t do () done

let run_until t horizon =
  let rec loop () =
    match Heap.peek_min_time t.queue with
    | Some time when time <= horizon ->
        ignore (step t : bool);
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  if horizon > t.clock then t.clock <- horizon
