(* The paper's §6.3 artifact, end to end: a *networked* Silo. Every
   simulated RPC executes a real TPC-C transaction on the real OCC engine
   (its measured duration becomes the request's service demand), while
   arrival, queueing, scheduling, stealing and transmission happen in the
   simulated Linux/IX/ZygOS servers.

   Run with:  dune exec examples/silo_networked.exe *)

let () =
  Printf.printf "loading TPC-C and calibrating real transaction costs...\n%!";
  let tpcc = Silo.Tpcc.load () in
  (* Normalize the measured mean to the paper's 33us so loads compare. *)
  let app =
    Experiments.Appserve.create ~target_mean_us:33. (Experiments.Appserve.Tpcc tpcc)
  in
  Printf.printf "calibrated: mean transaction %.0fus (scaled)\n\n"
    (Experiments.Appserve.mean_us app);
  let systems = [ Experiments.Run.Linux_floating; Experiments.Run.Ix 1; Experiments.Run.Zygos ] in
  Printf.printf "%-16s" "load";
  List.iter (fun s -> Printf.printf "%18s" (Experiments.Run.system_name s)) systems;
  Printf.printf "      (p99 end-to-end latency, us)\n";
  List.iter
    (fun load ->
      Printf.printf "%-16.2f" load;
      List.iter
        (fun system ->
          let p =
            Experiments.Appserve.run_point app ~system ~load ~requests:8_000 ()
          in
          assert (p.Experiments.Run.order_violations = 0);
          Printf.printf "%18.0f" p.Experiments.Run.p99)
        systems;
      print_newline ())
    [ 0.2; 0.4; 0.6; 0.75 ];
  Printf.printf
    "\n%d real transactions executed inside the simulation.\n\
     TPC-C consistency after serving: %s\n"
    (Experiments.Appserve.executed app)
    (if List.for_all snd (Silo.Tpcc.consistency_check tpcc) then "OK" else "VIOLATED")
