(* SLO explorer: how the choice of tail-latency SLO decides which system
   wins (the §7 discussion). For a chosen service time distribution it
   prints the max load each system sustains across a range of SLO
   multiples of the mean.

   Run with:  dune exec examples/slo_explorer.exe [mean_us]  (default 10) *)

let () =
  let mean = if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 10. in
  let service = Engine.Dist.exponential mean in
  let systems =
    [ Experiments.Run.Linux_floating; Experiments.Run.Ix 1; Experiments.Run.Ix 64;
      Experiments.Run.Zygos ]
  in
  let slo_multiples = [ 5.; 10.; 30.; 100. ] in
  Printf.printf
    "max sustainable load (fraction of 16-core zero-overhead capacity)\n\
     exponential service, mean %gus; SLO = multiple x mean at p99\n\n" mean;
  Printf.printf "%-16s" "system";
  List.iter (fun m -> Printf.printf "%12s" (Printf.sprintf "%gx" m)) slo_multiples;
  print_newline ();
  List.iter
    (fun system ->
      Printf.printf "%-16s" (Experiments.Run.system_name system);
      List.iter
        (fun multiple ->
          let cfg = Experiments.Run.config ~system ~service ~requests:15_000 () in
          let load, _ =
            Experiments.Run.max_load_at_slo cfg ~slo_p99:(multiple *. mean) ~resolution:0.02 ()
          in
          Printf.printf "%12s" (Printf.sprintf "%.0f%%" (100. *. load)))
        slo_multiples;
      print_newline ())
    systems;
  Printf.printf
    "\nAt tight SLOs the work-conserving scheduler dominates; at loose SLOs\n\
     IX's adaptive batching catches up (paper Fig. 11).\n"
