examples/spin_server.mli:
