examples/runtime_demo.ml: Array Atomic Engine Fun List Printf Runtime
