examples/steal_trace.ml: Engine Format List Net Systems
