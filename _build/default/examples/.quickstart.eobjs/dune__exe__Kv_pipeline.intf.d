examples/kv_pipeline.mli:
