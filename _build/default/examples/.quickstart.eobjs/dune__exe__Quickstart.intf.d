examples/quickstart.mli:
