examples/kv_pipeline.ml: Engine Experiments Kvstore List Printf String
