examples/runtime_demo.mli:
