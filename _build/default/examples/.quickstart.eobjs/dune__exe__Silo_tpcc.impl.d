examples/silo_tpcc.ml: Engine Hashtbl List Printf Silo Stats Unix
