examples/quickstart.ml: Engine Experiments List Printf
