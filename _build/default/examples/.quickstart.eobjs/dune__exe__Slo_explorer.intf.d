examples/slo_explorer.mli:
