examples/slo_explorer.ml: Array Engine Experiments List Printf Sys
