examples/steal_trace.mli:
