examples/spin_server.ml: Array Buffer Engine Float List Mutex Net Printf Runtime String
