examples/silo_networked.mli:
