examples/silo_networked.ml: Experiments List Printf Silo
