examples/silo_tpcc.mli:
