(* Quickstart: simulate a 16-core server under microsecond RPCs and
   compare ZygOS's work-conserving scheduler against the IX dataplane.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 10µs exponentially-distributed tasks over 2752 connections — the
     paper's §6.1 setup. *)
  let service = Engine.Dist.exponential 10. in
  let loads = [ 0.3; 0.5; 0.7; 0.8 ] in
  let systems = [ Experiments.Run.Ix 1; Experiments.Run.Zygos ] in
  Printf.printf "p99 latency (us) for 10us exponential tasks on 16 cores:\n\n";
  Printf.printf "%-8s" "load";
  List.iter (fun s -> Printf.printf "%12s" (Experiments.Run.system_name s)) systems;
  print_newline ();
  List.iter
    (fun load ->
      Printf.printf "%-8.2f" load;
      List.iter
        (fun system ->
          let cfg = Experiments.Run.config ~system ~service ~requests:15_000 () in
          let p = Experiments.Run.run_point cfg ~load in
          Printf.printf "%12.1f" p.Experiments.Run.p99)
        systems;
      print_newline ())
    loads;
  Printf.printf
    "\nZygOS keeps the tail near the theoretical centralized-FCFS floor (~46us)\n\
     while IX's partitioned queues suffer temporary imbalance (paper Fig. 6b).\n"
