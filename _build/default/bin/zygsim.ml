(* zygsim: run a single latency/throughput experiment from the command
   line.

   Examples:
     zygsim --system zygos --dist exp --mean 10 --load 0.8
     zygsim --system ix --dist bimodal1 --mean 25 --sweep 0.2,0.5,0.8
     zygsim --system zygos --dist exp --mean 10 --slo 100 *)

open Cmdliner

let system_conv =
  let parse = function
    | "linux-partitioned" -> Ok Experiments.Run.Linux_partitioned
    | "linux-floating" -> Ok Experiments.Run.Linux_floating
    | "ix" -> Ok (Experiments.Run.Ix 1)
    | "ix-b64" -> Ok (Experiments.Run.Ix 64)
    | "zygos" -> Ok Experiments.Run.Zygos
    | "zygos-noint" -> Ok Experiments.Run.Zygos_no_interrupts
    | "model-central" -> Ok Experiments.Run.Model_central_fcfs
    | "model-partitioned" -> Ok Experiments.Run.Model_partitioned_fcfs
    | "ix-rebalanced" -> Ok (Experiments.Run.Ix_rebalanced 200.)
    | s -> (
        match String.index_opt s 'q' with
        | Some 8 when String.length s > 9 && String.sub s 0 8 = "preempt-" -> (
            match float_of_string_opt (String.sub s 9 (String.length s - 9)) with
            | Some q when q > 0. -> Ok (Experiments.Run.Preemptive q)
            | _ -> Error (`Msg (Printf.sprintf "bad preempt quantum in %S" s)))
        | _ -> Error (`Msg (Printf.sprintf "unknown system %S" s)))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Experiments.Run.system_name s))

let dist_names = [ "fixed"; "exp"; "bimodal1"; "bimodal2" ]

let make_dist name mean =
  match name with
  | "fixed" -> Engine.Dist.deterministic mean
  | "exp" -> Engine.Dist.exponential mean
  | "bimodal1" -> Engine.Dist.bimodal1 ~mean
  | "bimodal2" -> Engine.Dist.bimodal2 ~mean
  | s -> invalid_arg ("unknown distribution " ^ s)

let system =
  Arg.(
    value
    & opt system_conv Experiments.Run.Zygos
    & info [ "system" ] ~docv:"SYSTEM"
        ~doc:
          "System to simulate: linux-partitioned, linux-floating, ix, ix-b64, zygos, \
           zygos-noint, preempt-q<QUANTUM>, ix-rebalanced, model-central, \
           model-partitioned.")

let dist =
  Arg.(
    value
    & opt (enum (List.map (fun d -> (d, d)) dist_names)) "exp"
    & info [ "dist" ] ~docv:"DIST" ~doc:"Service-time distribution.")

let mean = Arg.(value & opt float 10. & info [ "mean" ] ~docv:"US" ~doc:"Mean service time (µs).")

let load =
  Arg.(
    value & opt float 0.7
    & info [ "load" ] ~docv:"FRACTION" ~doc:"Offered load as a fraction of 16-core capacity.")

let sweep =
  Arg.(
    value
    & opt (some (list float)) None
    & info [ "sweep" ] ~docv:"L1,L2,..." ~doc:"Run several loads instead of one.")

let slo =
  Arg.(
    value
    & opt (some float) None
    & info [ "slo" ] ~docv:"US"
        ~doc:"Find the max load whose p99 meets this SLO (µs) instead of running one point.")

let cores = Arg.(value & opt int 16 & info [ "cores" ] ~docv:"N" ~doc:"Worker cores.")

let conns = Arg.(value & opt int 2752 & info [ "conns" ] ~docv:"N" ~doc:"Client connections.")

let requests =
  Arg.(value & opt int 30_000 & info [ "requests" ] ~docv:"N" ~doc:"Measured requests per point.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let packets =
  Arg.(
    value & opt int 1
    & info [ "packets" ] ~docv:"N" ~doc:"Network packets per request each way.")

let hot_skew =
  Arg.(
    value
    & opt (some (pair ~sep:':' float float)) None
    & info [ "skew" ] ~docv:"FRAC:LOAD"
        ~doc:
          "Persistent connection skew: the first FRAC of connections receive LOAD of the \
           traffic (e.g. 0.05:0.5).")

let print_point (p : Experiments.Run.point) =
  Printf.printf
    "load=%.3f offered=%.3f MRPS tput=%.3f MRPS mean=%.1fus p50=%.1fus p99=%.1fus p999=%.1fus \
     completed=%d order_violations=%d\n"
    p.load p.offered_rate p.throughput p.mean p.p50 p.p99 p.p999 p.completed p.order_violations;
  List.iter (fun (k, v) -> Printf.printf "  %s = %g\n" k v) p.info

let run system dist mean load sweep slo cores conns requests seed packets hot_skew =
  let service = make_dist dist mean in
  let selection =
    match hot_skew with
    | None -> Net.Loadgen.Uniform
    | Some (hot_fraction, hot_load) -> Net.Loadgen.Hot_cold { hot_fraction; hot_load }
  in
  let cfg =
    Experiments.Run.config ~system ~service ~cores ~conns ~requests ~seed
      ~rpc_packets:packets ~selection ()
  in
  Printf.printf "system=%s dist=%s mean=%gus cores=%d conns=%d requests=%d\n"
    (Experiments.Run.system_name system) dist mean cores conns requests;
  match (slo, sweep) with
  | Some slo_us, _ ->
      let max_load, point = Experiments.Run.max_load_at_slo cfg ~slo_p99:slo_us () in
      Printf.printf "max load @ p99<=%.0fus: %.2f (%.3f MRPS)\n" slo_us max_load
        point.Experiments.Run.throughput;
      print_point point
  | None, Some loads -> List.iter (fun l -> print_point (Experiments.Run.run_point cfg ~load:l)) loads
  | None, None -> print_point (Experiments.Run.run_point cfg ~load)

let cmd =
  let doc = "single-point ZygOS/IX/Linux tail-latency simulations" in
  Cmd.v
    (Cmd.info "zygsim" ~doc)
    Term.(
      const run $ system $ dist $ mean $ load $ sweep $ slo $ cores $ conns $ requests $ seed
      $ packets $ hot_skew)

let () = exit (Cmd.eval cmd)
