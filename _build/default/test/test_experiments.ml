(* Tests for lib/experiments: the point runner, sweeps, SLO bisection, and
   output formatting — the plumbing every figure depends on. *)

module Run = Experiments.Run
module Output = Experiments.Output
module Dist = Engine.Dist

let exp10 = Dist.exponential 10.

let test_config_defaults () =
  let cfg = Run.config ~system:Run.Zygos ~service:exp10 () in
  Alcotest.(check int) "cores" 16 cfg.Run.cores;
  Alcotest.(check int) "conns" 2752 cfg.Run.conns;
  Alcotest.(check int) "requests" 30_000 cfg.Run.requests

let test_system_names () =
  Alcotest.(check string) "ix" "ix" (Run.system_name (Run.Ix 1));
  Alcotest.(check string) "ix-b64" "ix-b64" (Run.system_name (Run.Ix 64));
  Alcotest.(check string) "zygos" "zygos" (Run.system_name Run.Zygos);
  Alcotest.(check string) "model" "M/G/n/FCFS" (Run.system_name Run.Model_central_fcfs);
  Alcotest.(check int) "five real systems" 5 (List.length Run.all_real_systems)

let test_run_point_fields () =
  let cfg = Run.config ~system:Run.Zygos ~service:exp10 ~requests:8_000 () in
  let p = Run.run_point cfg ~load:0.5 in
  Alcotest.(check (float 1e-9)) "load echoed" 0.5 p.Run.load;
  Alcotest.(check (float 1e-6)) "offered rate = load*n/S" 0.8 p.Run.offered_rate;
  Alcotest.(check bool) "latency ordering" true
    (p.Run.p50 <= p.Run.p99 && p.Run.p99 <= p.Run.p999);
  Alcotest.(check bool) "mean sane" true (p.Run.mean >= 10.)

let test_model_point () =
  let cfg = Run.config ~system:Run.Model_central_fcfs ~service:exp10 ~requests:20_000 () in
  let p = Run.run_point cfg ~load:0.3 in
  (* Zero-overhead model at low load: p99 ~= service p99 = 46µs. *)
  Alcotest.(check bool)
    (Printf.sprintf "model p99 %.1f near 46" p.Run.p99)
    true
    (abs_float (p.Run.p99 -. 46.) < 3.)

let test_sweep () =
  let cfg = Run.config ~system:(Run.Ix 1) ~service:exp10 ~requests:6_000 () in
  let points = Run.sweep cfg ~loads:[ 0.2; 0.4; 0.6 ] in
  Alcotest.(check int) "one point per load" 3 (List.length points);
  let p99s = List.map (fun p -> p.Run.p99) points in
  Alcotest.(check bool) "p99 grows with load" true (List.sort compare p99s = p99s)

let test_max_load_at_slo () =
  let cfg = Run.config ~system:Run.Zygos ~service:exp10 ~requests:10_000 () in
  let load, point = Run.max_load_at_slo cfg ~slo_p99:100. ~resolution:0.02 () in
  Alcotest.(check bool) "in range" true (load > 0.3 && load <= 0.99);
  Alcotest.(check bool) "point meets slo" true (point.Run.p99 <= 100.);
  (* Paper §6.1: ZygOS achieves 75% of max load at SLO 10x mean for 10µs
     exponential tasks. Accept 0.68–0.92 for the reproduction. *)
  Alcotest.(check bool)
    (Printf.sprintf "zygos max load %.2f near paper's 0.75" load)
    true
    (load >= 0.68 && load <= 0.92)

let test_max_load_zero_when_impossible () =
  (* An SLO below the minimum possible latency is never met. *)
  let cfg = Run.config ~system:(Run.Ix 1) ~service:exp10 ~requests:5_000 () in
  let load, _ = Run.max_load_at_slo cfg ~slo_p99:5. () in
  Alcotest.(check (float 0.)) "impossible SLO" 0. load

let test_output_table_arity () =
  Alcotest.check_raises "row arity" (Invalid_argument "Output.print_table: row arity mismatch")
    (fun () -> Output.print_table ~columns:[ "a"; "b" ] ~rows:[ [ "only-one" ] ])

let test_output_formatters () =
  Alcotest.(check string) "f1" "1.2" (Output.f1 1.23);
  Alcotest.(check string) "f2" "1.23" (Output.f2 1.234);
  Alcotest.(check string) "f3" "1.234" (Output.f3 1.2341);
  Alcotest.(check string) "pct" "75.3%" (Output.pct 0.753)

let test_figures_registry () =
  let names = List.map fst Experiments.Figures.all_targets in
  List.iter
    (fun expected ->
      if not (List.mem expected names) then Alcotest.failf "missing bench target %s" expected)
    [ "fig2"; "fig3"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10a"; "fig10b"; "table1"; "fig11" ]

let () =
  Alcotest.run "experiments"
    [
      ( "run",
        [
          Alcotest.test_case "config defaults" `Quick test_config_defaults;
          Alcotest.test_case "system names" `Quick test_system_names;
          Alcotest.test_case "point fields" `Quick test_run_point_fields;
          Alcotest.test_case "model point" `Quick test_model_point;
          Alcotest.test_case "sweep" `Quick test_sweep;
          Alcotest.test_case "max load at slo" `Slow test_max_load_at_slo;
          Alcotest.test_case "impossible slo" `Quick test_max_load_zero_when_impossible;
        ] );
      ( "output",
        [
          Alcotest.test_case "table arity" `Quick test_output_table_arity;
          Alcotest.test_case "formatters" `Quick test_output_formatters;
          Alcotest.test_case "figures registry" `Quick test_figures_registry;
        ] );
    ]
