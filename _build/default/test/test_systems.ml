(* Tests for lib/systems: correctness invariants of every server model
   (ordering, work conservation, no drops) and the paper's qualitative
   results as executable assertions. *)

module Run = Experiments.Run
module Dist = Engine.Dist

let point ?(requests = 12_000) ?(seed = 42) system ~service ~load =
  let cfg = Run.config ~system ~service ~requests ~seed () in
  Run.run_point cfg ~load

let exp10 = Dist.exponential 10.

(* Every system, at moderate and near-saturation load: responses must come
   back in per-connection order and nothing may be dropped. *)
let test_invariants_all_systems () =
  List.iter
    (fun system ->
      List.iter
        (fun load ->
          let p = point system ~service:exp10 ~load in
          Alcotest.(check int)
            (Printf.sprintf "%s@%.2f order violations" (Run.system_name system) load)
            0 p.Run.order_violations;
          (match List.assoc_opt "ring_drops" p.Run.info with
          | Some d ->
              Alcotest.(check (float 0.))
                (Printf.sprintf "%s@%.2f drops" (Run.system_name system) load)
                0. d
          | None -> ());
          Alcotest.(check bool)
            (Printf.sprintf "%s@%.2f completed some" (Run.system_name system) load)
            true
            (p.Run.completed > 0))
        [ 0.4; 0.85 ])
    Run.all_real_systems

let test_zygos_work_conserving () =
  List.iter
    (fun load ->
      let p = point Run.Zygos ~service:exp10 ~load in
      Alcotest.(check (float 0.)) "work conservation" 0.
        (Option.value ~default:1. (List.assoc_opt "wc_violations" p.Run.info)))
    [ 0.3; 0.6; 0.9 ]

let test_zygos_steals_and_ipis () =
  let p = point Run.Zygos ~service:exp10 ~load:0.7 in
  let get k = Option.value ~default:0. (List.assoc_opt k p.Run.info) in
  Alcotest.(check bool) "steals happen" true (get "steal_fraction" > 0.05);
  Alcotest.(check bool) "ipis happen" true (get "ipis_sent" > 0.);
  let p0 = point Run.Zygos_no_interrupts ~service:exp10 ~load:0.7 in
  let get0 k = Option.value ~default:0. (List.assoc_opt k p0.Run.info) in
  Alcotest.(check (float 0.)) "no ipis in cooperative mode" 0. (get0 "ipis_sent");
  Alcotest.(check bool) "cooperative still steals" true (get0 "steal_fraction" > 0.01)

let test_zygos_beats_ix_tail () =
  (* §6.1: ZygOS substantially reduces tail latency over IX for 10µs
     exponential tasks at medium-high load. *)
  List.iter
    (fun load ->
      let zygos = point Run.Zygos ~service:exp10 ~load in
      let ix = point (Run.Ix 1) ~service:exp10 ~load in
      if zygos.Run.p99 >= ix.Run.p99 then
        Alcotest.failf "at load %.2f: zygos p99 %.1f >= ix p99 %.1f" load zygos.Run.p99
          ix.Run.p99)
    [ 0.5; 0.7; 0.8 ]

let test_zygos_approaches_central_model () =
  (* ZygOS tracks the zero-overhead M/G/16/FCFS bound within a small
     multiple at moderate load (Fig. 6b). *)
  let model = point Run.Model_central_fcfs ~service:exp10 ~load:0.7 in
  let zygos = point Run.Zygos ~service:exp10 ~load:0.7 in
  Alcotest.(check bool)
    (Printf.sprintf "zygos p99 %.1f within 1.6x of model %.1f" zygos.Run.p99 model.Run.p99)
    true
    (zygos.Run.p99 <= 1.6 *. model.Run.p99)

let test_interrupts_help () =
  (* Fig. 6: the cooperative variant has a visibly worse tail at medium
     load (head-of-line blocking before network processing). *)
  let with_ipi = point Run.Zygos ~service:exp10 ~load:0.6 in
  let without = point Run.Zygos_no_interrupts ~service:exp10 ~load:0.6 in
  Alcotest.(check bool)
    (Printf.sprintf "noint p99 %.1f > zygos p99 %.1f" without.Run.p99 with_ipi.Run.p99)
    true
    (without.Run.p99 > with_ipi.Run.p99)

let test_linux_floating_beats_partitioned_tail () =
  (* §3.4(b): floating connections rebalance and win on tail latency at
     loads where both are stable. *)
  let floating = point Run.Linux_floating ~service:(Dist.exponential 50.) ~load:0.5 in
  let partitioned = point Run.Linux_partitioned ~service:(Dist.exponential 50.) ~load:0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "floating %.1f <= partitioned %.1f" floating.Run.p99 partitioned.Run.p99)
    true
    (floating.Run.p99 <= partitioned.Run.p99)

let test_ix_batching_tradeoff () =
  (* §6.2/Fig. 11: batching buys throughput for tiny tasks. *)
  let tiny = Dist.deterministic 1.0 in
  let b1 = point (Run.Ix 1) ~service:tiny ~load:0.35 in
  let b64 = point (Run.Ix 64) ~service:tiny ~load:0.35 in
  Alcotest.(check bool)
    (Printf.sprintf "B=64 tput %.2f >= B=1 tput %.2f" b64.Run.throughput b1.Run.throughput)
    true
    (b64.Run.throughput >= 0.98 *. b1.Run.throughput)

let test_zygos_saturation_close_to_ix () =
  (* Requirement #4 (§4.1): minimally degrade small-task throughput vs a
     shared-nothing dataplane. Accept within 7%. *)
  let at_sat system =
    let p = point system ~service:exp10 ~load:0.98 in
    p.Run.throughput
  in
  let ix = at_sat (Run.Ix 1) and zygos = at_sat Run.Zygos in
  Alcotest.(check bool)
    (Printf.sprintf "zygos sat %.3f within 7%% of ix %.3f" zygos ix)
    true
    (zygos >= 0.93 *. ix)

let test_linux_overhead_larger () =
  (* Linux saturates well below the dataplanes for 10µs tasks. *)
  let lin = point Run.Linux_partitioned ~service:exp10 ~load:0.98 in
  let ix = point (Run.Ix 1) ~service:exp10 ~load:0.98 in
  Alcotest.(check bool)
    (Printf.sprintf "linux sat %.3f < ix sat %.3f" lin.Run.throughput ix.Run.throughput)
    true
    (lin.Run.throughput < ix.Run.throughput)

let test_determinism () =
  let a = point ~seed:7 Run.Zygos ~service:exp10 ~load:0.6 in
  let b = point ~seed:7 Run.Zygos ~service:exp10 ~load:0.6 in
  Alcotest.(check (float 0.)) "identical p99 for identical seed" a.Run.p99 b.Run.p99;
  let c = point ~seed:8 Run.Zygos ~service:exp10 ~load:0.6 in
  Alcotest.(check bool) "different seed differs" true (c.Run.p99 <> a.Run.p99)

let test_params_validation () =
  let p = Systems.Params.default () in
  Alcotest.check_raises "bad batch" (Invalid_argument "Params.with_ix_batch: b < 1") (fun () ->
      ignore (Systems.Params.with_ix_batch p 0 : Systems.Params.t));
  Alcotest.(check bool) "no_interrupts flips flag" false
    (Systems.Params.no_interrupts p).Systems.Params.zy_interrupts

let test_iface_info_lookup () =
  let p = point Run.Zygos ~service:exp10 ~load:0.3 in
  Alcotest.(check bool) "info has steal_fraction" true
    (List.mem_assoc "steal_fraction" p.Run.info)

let () =
  Alcotest.run "systems"
    [
      ( "invariants",
        [
          Alcotest.test_case "ordering + no drops (all systems)" `Slow
            test_invariants_all_systems;
          Alcotest.test_case "zygos work conservation" `Slow test_zygos_work_conserving;
          Alcotest.test_case "steal/ipi counters" `Quick test_zygos_steals_and_ipis;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "params validation" `Quick test_params_validation;
          Alcotest.test_case "iface info" `Quick test_iface_info_lookup;
        ] );
      ( "paper-properties",
        [
          Alcotest.test_case "zygos beats ix tail" `Slow test_zygos_beats_ix_tail;
          Alcotest.test_case "zygos near central model" `Quick test_zygos_approaches_central_model;
          Alcotest.test_case "interrupts help" `Quick test_interrupts_help;
          Alcotest.test_case "floating beats partitioned" `Quick
            test_linux_floating_beats_partitioned_tail;
          Alcotest.test_case "ix batching tradeoff" `Quick test_ix_batching_tradeoff;
          Alcotest.test_case "zygos throughput near ix" `Quick test_zygos_saturation_close_to_ix;
          Alcotest.test_case "linux overheads" `Quick test_linux_overhead_larger;
        ] );
    ]
