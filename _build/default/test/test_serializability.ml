(* Serializability checking for the Silo OCC engine.

   Property: for any two transactions (random mixes of reads, writes,
   inserts and deletes over a small keyspace) executed with a random
   interleaving of their operations, the set of outcomes that actually
   commit must be explainable by SOME serial order of the committed
   transactions executed on a copy of the initial database. This is the
   definition of serializability, tested directly rather than through
   invariants. *)

module Key = Silo.Key
module Txn = Silo.Txn
module Db = Silo.Db

let keyspace = 6

(* A transaction program: a list of operations over int-valued cells.
   Writes store [base + observed] so that write values depend on reads
   (making lost updates and write skew visible). *)
type op = Read of int | Add of int * int (* key, delta *) | Put of int * int | Del of int

let pp_op = function
  | Read k -> Printf.sprintf "R%d" k
  | Add (k, d) -> Printf.sprintf "A%d+%d" k d
  | Put (k, v) -> Printf.sprintf "P%d=%d" k v
  | Del k -> Printf.sprintf "D%d" k

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun k -> Read (abs k mod keyspace)) int);
        (3, map2 (fun k d -> Add (abs k mod keyspace, 1 + (abs d mod 9))) int int);
        (2, map2 (fun k v -> Put (abs k mod keyspace, abs v mod 100)) int int);
        (1, map (fun k -> Del (abs k mod keyspace)) int);
      ])

let program_gen = QCheck.Gen.(list_size (int_range 1 6) op_gen)

(* Fresh database with cells 0..keyspace/2 present (so deletes and absent
   reads both occur). *)
let make_db () =
  let db = Db.create () in
  let table = Db.add_table db "cells" in
  let w = Db.worker db ~id:0 in
  let txn = Txn.begin_ db w in
  for k = 0 to (keyspace / 2) - 1 do
    Txn.insert txn table (Key.of_int k) [| string_of_int (10 * k) |]
  done;
  (match Txn.commit txn with Ok _ -> () | Error `Conflict -> assert false);
  (db, table)

(* Run one op inside a transaction; all exceptions from missing keys are
   absorbed into no-ops so programs are total. *)
let apply_op table txn = function
  | Read k -> ignore (Txn.read txn table (Key.of_int k) : string array option)
  | Add (k, d) -> (
      match Txn.read txn table (Key.of_int k) with
      | Some data -> Txn.write txn table (Key.of_int k) [| string_of_int (int_of_string data.(0) + d) |]
      | None -> ())
  | Put (k, v) -> (
      match Txn.read txn table (Key.of_int k) with
      | Some _ -> Txn.write txn table (Key.of_int k) [| string_of_int v |]
      | None -> Txn.insert txn table (Key.of_int k) [| string_of_int v |])
  | Del k -> (
      match Txn.read txn table (Key.of_int k) with
      | Some _ -> Txn.delete txn table (Key.of_int k)
      | None -> ())

(* Database snapshot as an assoc list. *)
let snapshot table =
  List.init keyspace (fun k ->
      let v, _ = Silo.Btree.get table.Db.index (Key.of_int k) in
      match v with
      | Some record ->
          let tid, data = Silo.Record.stable_read record in
          if Silo.Tid.is_absent tid then (k, None) else (k, Some data.(0))
      | None -> (k, None))

(* Execute programs serially in the given order on a fresh database;
   return the final snapshot. Serial execution cannot conflict. *)
let run_serial order =
  let db, table = make_db () in
  List.iter
    (fun program ->
      let w = Db.worker db ~id:9 in
      let txn = Txn.begin_ db w in
      List.iter (apply_op table txn) program;
      match Txn.commit txn with
      | Ok _ -> ()
      | Error `Conflict -> failwith "serial execution conflicted")
    order;
  snapshot table

let run_interleaved (p1, p2, schedule) =
  let db, table = make_db () in
  let w1 = Db.worker db ~id:1 and w2 = Db.worker db ~id:2 in
  let t1 = Txn.begin_ db w1 and t2 = Txn.begin_ db w2 in
  let q1 = ref p1 and q2 = ref p2 in
  let step use_first =
    match (use_first, !q1, !q2) with
    | true, op :: rest, _ ->
        apply_op table t1 op;
        q1 := rest
    | false, _, op :: rest ->
        apply_op table t2 op;
        q2 := rest
    | _ -> ()
  in
  List.iter step schedule;
  List.iter (fun op -> apply_op table t1 op) !q1;
  List.iter (fun op -> apply_op table t2 op) !q2;
  let ok1 = match Txn.commit t1 with Ok _ -> true | Error `Conflict -> false in
  let ok2 = match Txn.commit t2 with Ok _ -> true | Error `Conflict -> false in
  (snapshot table, ok1, ok2)

let serial_candidates (p1, p2) ~ok1 ~ok2 =
  match (ok1, ok2) with
  | true, true -> [ [ p1; p2 ]; [ p2; p1 ] ]
  | true, false -> [ [ p1 ] ]
  | false, true -> [ [ p2 ] ]
  | false, false -> [ [] ]

let prop_serializable =
  QCheck.Test.make ~name:"interleaved execution equals some serial order" ~count:500
    (QCheck.make
       QCheck.Gen.(triple program_gen program_gen (list_size (int_range 0 12) bool))
       ~print:(fun (p1, p2, schedule) ->
         Printf.sprintf "T1=[%s] T2=[%s] sched=[%s]"
           (String.concat ";" (List.map pp_op p1))
           (String.concat ";" (List.map pp_op p2))
           (String.concat "" (List.map (fun b -> if b then "1" else "2") schedule))))
    (fun (p1, p2, schedule) ->
      let observed, ok1, ok2 = run_interleaved (p1, p2, schedule) in
      let candidates = serial_candidates (p1, p2) ~ok1 ~ok2 in
      List.exists (fun order -> run_serial order = observed) candidates)

(* Three transactions, fully random round-robin-ish schedules: committed
   programs must still admit a serial explanation (all permutations of the
   committed subset are candidates). *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y != x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let prop_three_txn_serializable =
  QCheck.Test.make ~name:"three interleaved txns equal some serial order" ~count:300
    (QCheck.make
       QCheck.Gen.(
         pair
           (triple program_gen program_gen program_gen)
           (list_size (int_range 0 15) (int_range 0 2)))
       ~print:(fun ((p1, p2, p3), _) ->
         Printf.sprintf "T1=[%s] T2=[%s] T3=[%s]"
           (String.concat ";" (List.map pp_op p1))
           (String.concat ";" (List.map pp_op p2))
           (String.concat ";" (List.map pp_op p3))))
    (fun ((p1, p2, p3), schedule) ->
      let db, table = make_db () in
      let txns =
        Array.mapi
          (fun i program -> (Txn.begin_ db (Db.worker db ~id:i), ref program))
          [| p1; p2; p3 |]
      in
      let step i =
        let txn, q = txns.(i) in
        match !q with
        | op :: rest ->
            apply_op table txn op;
            q := rest
        | [] -> ()
      in
      List.iter step schedule;
      Array.iteri
        (fun i _ ->
          let txn, q = txns.(i) in
          List.iter (fun op -> apply_op table txn op) !q)
        txns;
      (* Tag with the transaction index so duplicate programs (physically
         shared lists, e.g. two empty programs) stay distinct during
         permutation. *)
      let committed =
        List.filteri
          (fun i _ ->
            let txn, _ = txns.(i) in
            match Txn.commit txn with Ok _ -> true | Error `Conflict -> false)
          [ (0, p1); (1, p2); (2, p3) ]
      in
      let observed = snapshot table in
      List.exists
        (fun order -> run_serial (List.map snd order) = observed)
        (permutations committed))

let () =
  Alcotest.run "serializability"
    [
      ( "occ",
        [
          QCheck_alcotest.to_alcotest prop_serializable;
          QCheck_alcotest.to_alcotest prop_three_txn_serializable;
        ] );
    ]
