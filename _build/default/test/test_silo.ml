(* Tests for lib/silo: TIDs, records, the B+-tree (model-based), the OCC
   commit protocol (conflict/phantom semantics, multicore serializability)
   and TPC-C. *)

module Tid = Silo.Tid
module Record = Silo.Record
module Btree = Silo.Btree
module Key = Silo.Key
module Db = Silo.Db
module Txn = Silo.Txn
module Tpcc = Silo.Tpcc

(* ---- Tid ---- *)

let test_tid_fields () =
  let t = Tid.make ~epoch:5 ~seq:1234 in
  Alcotest.(check int) "epoch" 5 (Tid.epoch t);
  Alcotest.(check int) "seq" 1234 (Tid.seq t);
  Alcotest.(check bool) "not locked" false (Tid.is_locked t);
  Alcotest.(check bool) "not absent" false (Tid.is_absent t)

let test_tid_status_bits () =
  let t = Tid.make ~epoch:1 ~seq:2 in
  let l = Tid.locked t in
  Alcotest.(check bool) "locked" true (Tid.is_locked l);
  Alcotest.(check int) "lock keeps epoch" 1 (Tid.epoch l);
  Alcotest.(check int) "lock keeps seq" 2 (Tid.seq l);
  Alcotest.(check bool) "unlock" false (Tid.is_locked (Tid.unlocked l));
  let a = Tid.absent t in
  Alcotest.(check bool) "absent" true (Tid.is_absent a);
  Alcotest.(check bool) "present clears" false (Tid.is_absent (Tid.present a))

let test_tid_compare_and_next () =
  let a = Tid.make ~epoch:1 ~seq:5 and b = Tid.make ~epoch:2 ~seq:0 in
  Alcotest.(check bool) "epoch dominates" true (Tid.compare_data a b < 0);
  let n = Tid.next_after a ~epoch:1 in
  Alcotest.(check int) "same epoch increments seq" 6 (Tid.seq n);
  let n2 = Tid.next_after a ~epoch:3 in
  Alcotest.(check int) "new epoch resets seq" 0 (Tid.seq n2);
  Alcotest.(check int) "new epoch" 3 (Tid.epoch n2);
  Alcotest.check_raises "past epoch" (Invalid_argument "Tid.next_after: epoch in the past")
    (fun () -> ignore (Tid.next_after b ~epoch:1 : Tid.t))

let prop_tid_roundtrip =
  QCheck.Test.make ~name:"tid make/epoch/seq roundtrip" ~count:500
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (epoch, seq) ->
      let t = Tid.make ~epoch ~seq in
      Tid.epoch t = epoch && Tid.seq t = seq
      && (not (Tid.is_locked t))
      && not (Tid.is_absent t))

(* ---- Record ---- *)

let test_record_stable_read_and_install () =
  let r = Record.create [| "a"; "b" |] in
  let tid0, data0 = Record.stable_read r in
  Alcotest.(check int) "initial tid" Tid.zero tid0;
  Alcotest.(check string) "initial data" "a" data0.(0);
  Alcotest.(check bool) "lock" true (Record.try_lock r);
  Alcotest.(check bool) "second lock fails" false (Record.try_lock r);
  Record.install r ~data:[| "x"; "y" |] ~tid:(Tid.make ~epoch:1 ~seq:1);
  let tid1, data1 = Record.stable_read r in
  Alcotest.(check int) "new seq" 1 (Tid.seq tid1);
  Alcotest.(check string) "new data" "x" data1.(0);
  Alcotest.(check bool) "unlocked after install" false (Tid.is_locked (Record.tid r))

let test_record_errors () =
  let r = Record.create [| "a" |] in
  Alcotest.check_raises "unlock unlocked" (Invalid_argument "Record.unlock: not locked")
    (fun () -> Record.unlock r);
  Alcotest.check_raises "install without lock" (Invalid_argument "Record.install: not locked")
    (fun () -> Record.install r ~data:[| "b" |] ~tid:(Tid.make ~epoch:1 ~seq:1));
  Record.lock r;
  Alcotest.check_raises "install locked tid"
    (Invalid_argument "Record.install: new tid has lock bit") (fun () ->
      Record.install r ~data:[| "b" |] ~tid:(Tid.locked (Tid.make ~epoch:1 ~seq:1)));
  Record.unlock r

(* ---- Key ---- *)

let test_key_ordering () =
  Alcotest.(check bool) "numeric order preserved" true
    (String.compare (Key.of_int 2) (Key.of_int 10) < 0);
  Alcotest.(check bool) "tuple order" true
    (String.compare (Key.of_ints [ 1; 9 ]) (Key.of_ints [ 2; 0 ]) < 0);
  Alcotest.(check (list int)) "roundtrip" [ 3; 7; 42 ] (Key.to_ints (Key.of_ints [ 3; 7; 42 ]));
  Alcotest.(check bool) "succ is greater" true (String.compare (Key.succ "abc") "abc" > 0);
  Alcotest.check_raises "negative" (Invalid_argument "Key.of_int: negative") (fun () ->
      ignore (Key.of_int (-1) : string))

let prop_key_order_matches_int_order =
  QCheck.Test.make ~name:"key encoding is order-preserving" ~count:500
    QCheck.(pair (int_bound 1_000_000_000) (int_bound 1_000_000_000))
    (fun (a, b) -> compare a b = String.compare (Key.of_int a) (Key.of_int b))

(* ---- Btree: model-based ---- *)

type btree_op = Insert of int | Remove of int | Get of int | Scan of int * int

let btree_op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun k -> Insert (k mod 500)) small_nat);
        (2, map (fun k -> Remove (k mod 500)) small_nat);
        (2, map (fun k -> Get (k mod 500)) small_nat);
        (1, map2 (fun a b -> Scan (a mod 500, b mod 500)) small_nat small_nat);
      ])

let prop_btree_model =
  QCheck.Test.make ~name:"btree matches Map model" ~count:300
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 400) btree_op_gen)
       ~print:(fun ops -> Printf.sprintf "%d ops" (List.length ops)))
    (fun ops ->
      let tree = Btree.create () in
      let module M = Map.Make (String) in
      let model = ref M.empty in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Insert k ->
              let key = Key.of_int k in
              let r = Btree.insert tree key k in
              let expected = if M.mem key !model then `Dup else `Ins in
              (match (r, expected) with
              | `Inserted, `Ins -> model := M.add key k !model
              | `Duplicate _, `Dup -> ()
              | _ -> ok := false)
          | Remove k ->
              let key = Key.of_int k in
              let r = Btree.remove tree key in
              if (r <> None) <> M.mem key !model then ok := false;
              model := M.remove key !model
          | Get k ->
              let key = Key.of_int k in
              let v, _leaf = Btree.get tree key in
              if v <> M.find_opt key !model then ok := false
          | Scan (a, b) ->
              let lo = Key.of_int (min a b) and hi = Key.of_int (max a b) in
              let got = List.map fst (Btree.scan_range tree ~lo ~hi ()) in
              let expected =
                M.bindings !model
                |> List.filter (fun (k, _) ->
                       String.compare k lo >= 0 && String.compare k hi < 0)
                |> List.map fst
              in
              if got <> expected then ok := false)
        ops;
      Btree.check_invariants tree;
      if M.cardinal !model <> Btree.length tree then ok := false;
      !ok)

let test_btree_leaf_versions () =
  let tree = Btree.create () in
  ignore (Btree.insert tree (Key.of_int 1) 1 : [ `Inserted | `Duplicate of int ]);
  let _, leaf = Btree.get tree (Key.of_int 2) in
  let v0 = Btree.leaf_version leaf in
  ignore (Btree.insert tree (Key.of_int 2) 2 : [ `Inserted | `Duplicate of int ]);
  Alcotest.(check bool) "insert bumps version" true (Btree.leaf_version leaf > v0);
  let v1 = Btree.leaf_version leaf in
  ignore (Btree.remove tree (Key.of_int 1) : int option);
  Alcotest.(check bool) "remove bumps version" true (Btree.leaf_version leaf > v1)

let test_btree_split_bumps_version () =
  (* Filling one leaf past the fanout moves keys into a new node; the old
     leaf's version must change so that scans revalidate. *)
  let tree = Btree.create () in
  let _, leaf = Btree.get tree (Key.of_int 0) in
  let v0 = Btree.leaf_version leaf in
  for i = 0 to 40 do
    ignore (Btree.insert tree (Key.of_int i) i : [ `Inserted | `Duplicate of int ])
  done;
  Btree.check_invariants tree;
  Alcotest.(check bool) "version changed across split" true (Btree.leaf_version leaf > v0)

let test_btree_scan_reports_leaves () =
  let tree = Btree.create () in
  for i = 0 to 200 do
    ignore (Btree.insert tree (Key.of_int i) i : [ `Inserted | `Duplicate of int ])
  done;
  let leaves = ref 0 in
  let entries =
    Btree.scan_range tree ~lo:(Key.of_int 50) ~hi:(Key.of_int 100)
      ~on_leaf:(fun _ -> incr leaves)
      ()
  in
  Alcotest.(check int) "scan size" 50 (List.length entries);
  Alcotest.(check bool) "visited at least one leaf" true (!leaves >= 1)

(* ---- Epoch ---- *)

let test_epoch_advance () =
  let e = Silo.Epoch.create ~advance_every:10 () in
  Alcotest.(check int) "initial" 1 (Silo.Epoch.current e);
  for _ = 1 to 9 do
    Silo.Epoch.on_commit e
  done;
  Alcotest.(check int) "not yet" 1 (Silo.Epoch.current e);
  Silo.Epoch.on_commit e;
  Alcotest.(check int) "advanced" 2 (Silo.Epoch.current e);
  Alcotest.(check int) "manual advance" 3 (Silo.Epoch.advance e)

(* ---- Txn ---- *)

let fresh_db () =
  let db = Db.create () in
  let t = Db.add_table db "t" in
  (db, t)

let commit_exn txn =
  match Txn.commit txn with
  | Ok tid -> tid
  | Error `Conflict -> Alcotest.fail "unexpected conflict"

let seed_key db t k v =
  let w = Db.worker db ~id:99 in
  let txn = Txn.begin_ db w in
  Txn.insert txn t k [| v |];
  ignore (commit_exn txn : Tid.t)

let test_txn_insert_and_read () =
  let db, t = fresh_db () in
  let w = Db.worker db ~id:0 in
  let txn = Txn.begin_ db w in
  Alcotest.(check bool) "absent before" true (Txn.read txn t "k" = None);
  Txn.insert txn t "k" [| "v" |];
  (match Txn.read txn t "k" with
  | Some d -> Alcotest.(check string) "reads own insert" "v" d.(0)
  | None -> Alcotest.fail "own insert invisible");
  ignore (commit_exn txn : Tid.t);
  let txn2 = Txn.begin_ db w in
  match Txn.read txn2 t "k" with
  | Some d -> Alcotest.(check string) "committed visible" "v" d.(0)
  | None -> Alcotest.fail "committed insert invisible"

let test_txn_write_and_delete () =
  let db, t = fresh_db () in
  seed_key db t "k" "v0";
  let w = Db.worker db ~id:0 in
  let txn = Txn.begin_ db w in
  Txn.write txn t "k" [| "v1" |];
  (match Txn.read txn t "k" with
  | Some d -> Alcotest.(check string) "reads own write" "v1" d.(0)
  | None -> Alcotest.fail "own write invisible");
  ignore (commit_exn txn : Tid.t);
  let txn2 = Txn.begin_ db w in
  Txn.delete txn2 t "k";
  Alcotest.(check bool) "reads own delete" true (Txn.read txn2 t "k" = None);
  ignore (commit_exn txn2 : Tid.t);
  let txn3 = Txn.begin_ db w in
  Alcotest.(check bool) "deleted invisible" true (Txn.read txn3 t "k" = None);
  Txn.abort txn3

let test_txn_write_absent_raises () =
  let db, t = fresh_db () in
  let w = Db.worker db ~id:0 in
  let txn = Txn.begin_ db w in
  Alcotest.check_raises "write absent" Not_found (fun () -> Txn.write txn t "nope" [| "x" |]);
  Alcotest.check_raises "delete absent" Not_found (fun () -> Txn.delete txn t "nope");
  Txn.abort txn

let test_txn_read_validation_conflict () =
  let db, t = fresh_db () in
  seed_key db t "a" "0";
  seed_key db t "b" "0";
  let w1 = Db.worker db ~id:1 and w2 = Db.worker db ~id:2 in
  (* t1 reads a, then t2 updates a and commits, then t1 tries to write b:
     t1's read of a is stale -> conflict. *)
  let t1 = Txn.begin_ db w1 in
  ignore (Txn.read t1 t "a" : string array option);
  let t2 = Txn.begin_ db w2 in
  Txn.write t2 t "a" [| "1" |];
  ignore (commit_exn t2 : Tid.t);
  Txn.write t1 t "b" [| "1" |];
  (match Txn.commit t1 with
  | Error `Conflict -> ()
  | Ok _ -> Alcotest.fail "stale read committed");
  Alcotest.(check int) "abort recorded" 1 (Db.aborts w1)

let test_txn_write_write_not_lost () =
  let db, t = fresh_db () in
  seed_key db t "a" "0";
  let w1 = Db.worker db ~id:1 and w2 = Db.worker db ~id:2 in
  (* Two read-modify-write increments, interleaved: the second to commit
     must abort (it read the pre-image). *)
  let t1 = Txn.begin_ db w1 in
  let v1 = match Txn.read t1 t "a" with Some d -> int_of_string d.(0) | None -> -1 in
  let t2 = Txn.begin_ db w2 in
  let v2 = match Txn.read t2 t "a" with Some d -> int_of_string d.(0) | None -> -1 in
  Txn.write t1 t "a" [| string_of_int (v1 + 1) |];
  Txn.write t2 t "a" [| string_of_int (v2 + 1) |];
  ignore (commit_exn t1 : Tid.t);
  (match Txn.commit t2 with
  | Error `Conflict -> ()
  | Ok _ -> Alcotest.fail "lost update committed");
  let w = Db.worker db ~id:3 in
  let txn = Txn.begin_ db w in
  (match Txn.read txn t "a" with
  | Some d -> Alcotest.(check string) "exactly one increment" "1" d.(0)
  | None -> Alcotest.fail "record vanished");
  Txn.abort txn

let test_txn_phantom_scan_conflict () =
  let db, t = fresh_db () in
  seed_key db t (Key.of_int 1) "x";
  seed_key db t (Key.of_int 5) "y";
  let w1 = Db.worker db ~id:1 and w2 = Db.worker db ~id:2 in
  (* t1 scans [0, 10); t2 inserts key 3 and commits; t1 then commits a
     write -> node-set validation must fail (phantom). *)
  let t1 = Txn.begin_ db w1 in
  let seen = Txn.scan t1 t ~lo:(Key.of_int 0) ~hi:(Key.of_int 10) in
  Alcotest.(check int) "initial scan" 2 (List.length seen);
  let t2 = Txn.begin_ db w2 in
  Txn.insert t2 t (Key.of_int 3) [| "z" |];
  ignore (commit_exn t2 : Tid.t);
  Txn.write t1 t (Key.of_int 1) [| "x2" |];
  match Txn.commit t1 with
  | Error `Conflict -> ()
  | Ok _ -> Alcotest.fail "phantom not detected"

let test_txn_absent_read_conflict () =
  let db, t = fresh_db () in
  seed_key db t (Key.of_int 100) "seed";
  let w1 = Db.worker db ~id:1 and w2 = Db.worker db ~id:2 in
  (* t1 reads a missing key; t2 inserts exactly that key; t1's commit must
     fail. *)
  let t1 = Txn.begin_ db w1 in
  Alcotest.(check bool) "missing" true (Txn.read t1 t (Key.of_int 7) = None);
  let t2 = Txn.begin_ db w2 in
  Txn.insert t2 t (Key.of_int 7) [| "new" |];
  ignore (commit_exn t2 : Tid.t);
  Txn.write t1 t (Key.of_int 100) [| "update" |];
  match Txn.commit t1 with
  | Error `Conflict -> ()
  | Ok _ -> Alcotest.fail "absent-read conflict not detected"

let test_txn_duplicate_insert_conflict () =
  let db, t = fresh_db () in
  let w1 = Db.worker db ~id:1 and w2 = Db.worker db ~id:2 in
  let t1 = Txn.begin_ db w1 in
  Txn.insert t1 t "dup" [| "a" |];
  let t2 = Txn.begin_ db w2 in
  Txn.insert t2 t "dup" [| "b" |];
  ignore (commit_exn t1 : Tid.t);
  (match Txn.commit t2 with
  | Error `Conflict -> ()
  | Ok _ -> Alcotest.fail "duplicate insert committed");
  let w = Db.worker db ~id:3 in
  let txn = Txn.begin_ db w in
  (match Txn.read txn t "dup" with
  | Some d -> Alcotest.(check string) "first wins" "a" d.(0)
  | None -> Alcotest.fail "record missing");
  Txn.abort txn

let test_txn_tid_monotonic_per_worker () =
  let db, t = fresh_db () in
  seed_key db t "k" "0";
  let w = Db.worker db ~id:0 in
  let tids =
    List.init 20 (fun i ->
        let txn = Txn.begin_ db w in
        Txn.write txn t "k" [| string_of_int i |];
        commit_exn txn)
  in
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "strictly increasing" true (Tid.compare_data a b < 0);
        check rest
    | _ -> ()
  in
  check tids

let test_txn_rollback_outcome () =
  let db, t = fresh_db () in
  let w = Db.worker db ~id:0 in
  (match Txn.run db w (fun txn ->
       Txn.insert txn t "never" [| "x" |];
       raise Txn.Rollback)
   with
  | Txn.Rolled_back -> ()
  | _ -> Alcotest.fail "expected Rolled_back");
  let txn = Txn.begin_ db w in
  Alcotest.(check bool) "rollback left no state" true (Txn.read txn t "never" = None);
  Txn.abort txn

(* Serializability under real concurrency: bank transfers between accounts
   on several domains preserve the total balance. *)
let test_txn_multicore_bank () =
  let db, t = fresh_db () in
  let accounts = 8 and domains = 4 and transfers = 400 in
  for a = 0 to accounts - 1 do
    seed_key db t (Key.of_int a) "1000"
  done;
  let body did =
    let w = Db.worker db ~id:did in
    let rng = Engine.Rng.create ~seed:(1000 + did) in
    let committed = ref 0 in
    while !committed < transfers do
      let src = Engine.Rng.int rng accounts in
      let dst = (src + 1 + Engine.Rng.int rng (accounts - 1)) mod accounts in
      let amount = 1 + Engine.Rng.int rng 10 in
      match
        Txn.run db w (fun txn ->
            let read k =
              match Txn.read txn t (Key.of_int k) with
              | Some d -> int_of_string d.(0)
              | None -> Alcotest.fail "account missing"
            in
            let s = read src and d = read dst in
            Txn.write txn t (Key.of_int src) [| string_of_int (s - amount) |];
            Txn.write txn t (Key.of_int dst) [| string_of_int (d + amount) |])
      with
      | Txn.Committed ((), _) -> incr committed
      | Txn.Rolled_back | Txn.Conflict_exhausted -> ()
    done
  in
  let ds = List.init domains (fun i -> Domain.spawn (fun () -> body i)) in
  List.iter Domain.join ds;
  let w = Db.worker db ~id:77 in
  let txn = Txn.begin_ db w in
  let total =
    List.fold_left
      (fun acc a ->
        match Txn.read txn t (Key.of_int a) with
        | Some d -> acc + int_of_string d.(0)
        | None -> Alcotest.fail "account missing")
      0
      (List.init accounts Fun.id)
  in
  Txn.abort txn;
  Alcotest.(check int) "total balance conserved" (accounts * 1000) total

(* ---- TPC-C ---- *)

let tpcc = lazy (Tpcc.load ())

let test_tpcc_load_counts () =
  let t = Lazy.force tpcc in
  Alcotest.(check int) "warehouses" 1 (Tpcc.warehouses t);
  Alcotest.(check int) "items" 10_000 (Tpcc.items t);
  Alcotest.(check int) "customers" 300 (Tpcc.customers_per_district t);
  let db = Tpcc.db t in
  Alcotest.(check int) "item rows" 10_000 (Btree.length (Db.find_table db "item").Db.index);
  Alcotest.(check int) "customer rows" 3_000
    (Btree.length (Db.find_table db "customer").Db.index);
  Alcotest.(check int) "stock rows" 10_000 (Btree.length (Db.find_table db "stock").Db.index);
  Btree.check_invariants (Db.find_table db "order_line").Db.index

let test_tpcc_mix_ratios () =
  let rng = Engine.Rng.create ~seed:3 in
  let n = 50_000 in
  let counts = Hashtbl.create 8 in
  for _ = 1 to n do
    let tx = Tpcc.standard_mix rng in
    Hashtbl.replace counts tx (1 + Option.value ~default:0 (Hashtbl.find_opt counts tx))
  done;
  let frac tx = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts tx)) /. float_of_int n in
  Alcotest.(check bool) "NewOrder ~45%" true (abs_float (frac Tpcc.New_order -. 0.45) < 0.02);
  Alcotest.(check bool) "Payment ~43%" true (abs_float (frac Tpcc.Payment -. 0.43) < 0.02);
  Alcotest.(check bool) "OrderStatus ~4%" true (abs_float (frac Tpcc.Order_status -. 0.04) < 0.01);
  Alcotest.(check bool) "Delivery ~4%" true (abs_float (frac Tpcc.Delivery -. 0.04) < 0.01);
  Alcotest.(check bool) "StockLevel ~4%" true (abs_float (frac Tpcc.Stock_level -. 0.04) < 0.01)

let test_tpcc_each_type_commits () =
  let t = Lazy.force tpcc in
  let w = Db.worker (Tpcc.db t) ~id:10 in
  let rng = Engine.Rng.create ~seed:4 in
  List.iter
    (fun tx ->
      let committed = ref false in
      (* NewOrder occasionally rolls back by design; try a few times. *)
      for _ = 1 to 10 do
        if (not !committed) && Tpcc.execute t w rng tx = Tpcc.Committed then committed := true
      done;
      Alcotest.(check bool) (Tpcc.tx_name tx ^ " commits") true !committed)
    Tpcc.all_tx_types

let test_tpcc_consistency_after_run () =
  let t = Lazy.force tpcc in
  let w = Db.worker (Tpcc.db t) ~id:11 in
  let rng = Engine.Rng.create ~seed:5 in
  for _ = 1 to 3_000 do
    ignore (Tpcc.execute t w rng (Tpcc.standard_mix rng) : Tpcc.outcome)
  done;
  List.iter
    (fun (name, ok) -> if not ok then Alcotest.failf "consistency violated: %s" name)
    (Tpcc.consistency_check t)

let () =
  Alcotest.run "silo"
    [
      ( "tid",
        [
          Alcotest.test_case "fields" `Quick test_tid_fields;
          Alcotest.test_case "status bits" `Quick test_tid_status_bits;
          Alcotest.test_case "compare/next" `Quick test_tid_compare_and_next;
          QCheck_alcotest.to_alcotest prop_tid_roundtrip;
        ] );
      ( "record",
        [
          Alcotest.test_case "stable read/install" `Quick test_record_stable_read_and_install;
          Alcotest.test_case "errors" `Quick test_record_errors;
        ] );
      ( "key",
        [
          Alcotest.test_case "ordering" `Quick test_key_ordering;
          QCheck_alcotest.to_alcotest prop_key_order_matches_int_order;
        ] );
      ( "btree",
        [
          QCheck_alcotest.to_alcotest prop_btree_model;
          Alcotest.test_case "leaf versions" `Quick test_btree_leaf_versions;
          Alcotest.test_case "split bumps version" `Quick test_btree_split_bumps_version;
          Alcotest.test_case "scan reports leaves" `Quick test_btree_scan_reports_leaves;
        ] );
      ("epoch", [ Alcotest.test_case "advance" `Quick test_epoch_advance ]);
      ( "txn",
        [
          Alcotest.test_case "insert/read" `Quick test_txn_insert_and_read;
          Alcotest.test_case "write/delete" `Quick test_txn_write_and_delete;
          Alcotest.test_case "write absent raises" `Quick test_txn_write_absent_raises;
          Alcotest.test_case "read validation" `Quick test_txn_read_validation_conflict;
          Alcotest.test_case "no lost update" `Quick test_txn_write_write_not_lost;
          Alcotest.test_case "phantom via scan" `Quick test_txn_phantom_scan_conflict;
          Alcotest.test_case "absent-read conflict" `Quick test_txn_absent_read_conflict;
          Alcotest.test_case "duplicate insert" `Quick test_txn_duplicate_insert_conflict;
          Alcotest.test_case "tid monotonic" `Quick test_txn_tid_monotonic_per_worker;
          Alcotest.test_case "rollback" `Quick test_txn_rollback_outcome;
          Alcotest.test_case "multicore bank" `Slow test_txn_multicore_bank;
        ] );
      ( "tpcc",
        [
          Alcotest.test_case "load counts" `Slow test_tpcc_load_counts;
          Alcotest.test_case "mix ratios" `Quick test_tpcc_mix_ratios;
          Alcotest.test_case "each type commits" `Slow test_tpcc_each_type_commits;
          Alcotest.test_case "consistency after run" `Slow test_tpcc_consistency_after_run;
        ] );
    ]
