(* Tests for Net.Framing: the binary RPC framing layer and the synthetic
   spin protocol, including roundtrip-under-arbitrary-packetization
   properties (the §6.2 byte-stream reality). *)

module Framing = Net.Framing

let test_encode_shape () =
  let wire = Framing.encode "abc" in
  Alcotest.(check int) "4-byte prefix" 7 (String.length wire);
  Alcotest.(check string) "payload at offset 4" "abc" (String.sub wire 4 3);
  Alcotest.(check int) "prefix value" 3 (Char.code wire.[3])

let test_segment_boundaries () =
  let packets = Framing.segment ~mtu:4 "0123456789" in
  Alcotest.(check (list string)) "4-byte packets" [ "0123"; "4567"; "89" ] packets;
  Alcotest.(check (list string)) "small message, one packet" [ "ab" ]
    (Framing.segment ~mtu:1460 "ab");
  Alcotest.(check (list string)) "empty stream" [] (Framing.segment "");
  Alcotest.check_raises "mtu" (Invalid_argument "Framing.segment: mtu < 1") (fun () ->
      ignore (Framing.segment ~mtu:0 "x" : string list))

let test_packets_per_message () =
  Alcotest.(check int) "small rpc, 1 packet" 1 (Framing.packets_per_message 100);
  Alcotest.(check int) "1456-byte payload exactly fits" 1 (Framing.packets_per_message 1456);
  Alcotest.(check int) "1457 bytes spills" 2 (Framing.packets_per_message 1457);
  (* a TPC-C-sized 4KB response needs 3 packets — the Silo experiments'
     rpc_packets = 3 *)
  Alcotest.(check int) "4KB response" 3 (Framing.packets_per_message 4096)

let test_reassembler_basic () =
  let r = Framing.Reassembler.create () in
  let wire = Framing.encode "hello" ^ Framing.encode "world" in
  match Framing.Reassembler.feed r wire with
  | Ok msgs -> Alcotest.(check (list string)) "both messages" [ "hello"; "world" ] msgs
  | Error e -> Alcotest.fail e

let test_reassembler_fragmented () =
  let r = Framing.Reassembler.create () in
  let wire = Framing.encode "hello" in
  (* split mid-prefix and mid-payload *)
  let p1 = String.sub wire 0 2
  and p2 = String.sub wire 2 4
  and p3 = String.sub wire 6 (String.length wire - 6) in
  (match Framing.Reassembler.feed r p1 with
  | Ok [] -> ()
  | _ -> Alcotest.fail "no message from 2 bytes");
  (match Framing.Reassembler.feed r p2 with
  | Ok [] -> Alcotest.(check bool) "bytes pending" true (Framing.Reassembler.pending_bytes r > 0)
  | _ -> Alcotest.fail "no message yet");
  match Framing.Reassembler.feed r p3 with
  | Ok [ "hello" ] -> ()
  | _ -> Alcotest.fail "message not completed"

let test_reassembler_corrupt () =
  let r = Framing.Reassembler.create () in
  (* a length prefix of 0xffffffff = -1 as a signed int32 *)
  match Framing.Reassembler.feed r "\xff\xff\xff\xff" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt prefix accepted"

let prop_roundtrip_any_packetization =
  QCheck.Test.make ~name:"messages survive arbitrary packetization" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 10) (string_of_size Gen.(0 -- 200))) (int_range 1 50))
    (fun (messages, mtu) ->
      let wire = String.concat "" (List.map Framing.encode messages) in
      let packets = Framing.segment ~mtu wire in
      let r = Framing.Reassembler.create () in
      let out =
        List.concat_map
          (fun p ->
            match Framing.Reassembler.feed r p with
            | Ok msgs -> msgs
            | Error e -> QCheck.Test.fail_reportf "reassembly error: %s" e)
          packets
      in
      out = messages && Framing.Reassembler.pending_bytes r = 0)

let prop_segment_concat_identity =
  QCheck.Test.make ~name:"segment preserves the byte stream" ~count:300
    QCheck.(pair (string_of_size Gen.(0 -- 5000)) (int_range 1 2000))
    (fun (stream, mtu) ->
      String.concat "" (Framing.segment ~mtu stream) = stream
      && List.for_all (fun p -> String.length p <= mtu) (Framing.segment ~mtu stream))

let test_spin_roundtrip () =
  let req = { Framing.Spin.id = 123456789; spin_us = 10.5 } in
  let r = Framing.Reassembler.create () in
  match Framing.Reassembler.feed r (Framing.Spin.encode_request req) with
  | Ok [ payload ] -> (
      (match Framing.Spin.decode_request payload with
      | Ok req' ->
          Alcotest.(check int) "id" req.Framing.Spin.id req'.Framing.Spin.id;
          Alcotest.(check (float 1e-12)) "spin" req.Framing.Spin.spin_us
            req'.Framing.Spin.spin_us
      | Error e -> Alcotest.fail e);
      match Framing.Reassembler.feed r (Framing.Spin.encode_response req) with
      | Ok [ resp ] -> (
          match Framing.Spin.decode_response resp with
          | Ok id -> Alcotest.(check int) "response id" req.Framing.Spin.id id
          | Error e -> Alcotest.fail e)
      | _ -> Alcotest.fail "response framing")
  | _ -> Alcotest.fail "request framing"

let test_spin_rejects_garbage () =
  (match Framing.Spin.decode_request "short" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short request accepted");
  let b = Bytes.make 16 '\x00' in
  Bytes.set_int64_be b 8 (Int64.bits_of_float (-5.)) (* negative spin *);
  match Framing.Spin.decode_request (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative spin accepted"

let () =
  Alcotest.run "framing"
    [
      ( "framing",
        [
          Alcotest.test_case "encode shape" `Quick test_encode_shape;
          Alcotest.test_case "segment boundaries" `Quick test_segment_boundaries;
          Alcotest.test_case "packets per message" `Quick test_packets_per_message;
          Alcotest.test_case "reassemble basic" `Quick test_reassembler_basic;
          Alcotest.test_case "reassemble fragmented" `Quick test_reassembler_fragmented;
          Alcotest.test_case "corrupt prefix" `Quick test_reassembler_corrupt;
          QCheck_alcotest.to_alcotest prop_roundtrip_any_packetization;
          QCheck_alcotest.to_alcotest prop_segment_concat_identity;
        ] );
      ( "spin-protocol",
        [
          Alcotest.test_case "roundtrip" `Quick test_spin_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_spin_rejects_garbage;
        ] );
    ]
