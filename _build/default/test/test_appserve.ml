(* Tests for Experiments.Appserve: real application work coupled into the
   simulated servers. *)

module Appserve = Experiments.Appserve
module Run = Experiments.Run

let kv_app () =
  let wl = Kvstore.Workload.create ~records:2_000 Kvstore.Workload.Usr in
  let store = Kvstore.Store.create ~capacity:4_000 () in
  Appserve.create ~calibrate_over:500 ~target_mean_us:2.
    (Appserve.Kv (wl, store))

let test_calibration_scales_mean () =
  let app = kv_app () in
  Alcotest.(check (float 1e-9)) "mean is the target" 2. (Appserve.mean_us app);
  (* Sample a lot of service times: the empirical mean must be within 50%
     of the target (real measurements are noisy but clamped). *)
  let n = 3_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Appserve.service_fn app ~conn:0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "sampled mean %.2f within [1, 4]" mean)
    true
    (mean > 1. && mean < 4.)

let test_service_fn_positive_and_counted () =
  let app = kv_app () in
  let before = Appserve.executed app in
  let x = Appserve.service_fn app ~conn:3 in
  Alcotest.(check bool) "positive duration" true (x > 0.);
  Alcotest.(check int) "op counted" (before + 1) (Appserve.executed app)

let test_run_point_through_simulator () =
  let app = kv_app () in
  let p = Appserve.run_point app ~system:Run.Zygos ~load:0.3 ~requests:4_000 () in
  Alcotest.(check int) "ordering preserved" 0 p.Run.order_violations;
  Alcotest.(check bool) "completed requests" true (p.Run.completed > 3_000);
  Alcotest.(check bool) "tail above floor" true (p.Run.p99 > 1.)

let test_validation () =
  let wl = Kvstore.Workload.create ~records:100 Kvstore.Workload.Usr in
  let store = Kvstore.Store.create ~capacity:200 () in
  Alcotest.check_raises "negative mean" (Invalid_argument "Appserve.create: negative target mean")
    (fun () ->
      ignore
        (Appserve.create ~target_mean_us:(-1.) (Appserve.Kv (wl, store)) : Appserve.t));
  let app = kv_app () in
  Alcotest.check_raises "unsupported system"
    (Invalid_argument "Appserve.run_point: unsupported system kind") (fun () ->
      ignore (Appserve.run_point app ~system:Run.Model_central_fcfs ~load:0.3 () : Run.point))

let test_raw_mode_no_scaling () =
  let wl = Kvstore.Workload.create ~records:500 Kvstore.Workload.Usr in
  let store = Kvstore.Store.create ~capacity:1_000 () in
  let app = Appserve.create ~calibrate_over:300 ~target_mean_us:0. (Appserve.Kv (wl, store)) in
  (* Unscaled: the mean is whatever this machine measures, necessarily
     positive. *)
  Alcotest.(check bool) "raw mean positive" true (Appserve.mean_us app > 0.)

let () =
  Alcotest.run "appserve"
    [
      ( "appserve",
        [
          Alcotest.test_case "calibration" `Quick test_calibration_scales_mean;
          Alcotest.test_case "service fn" `Quick test_service_fn_positive_and_counted;
          Alcotest.test_case "through simulator" `Quick test_run_point_through_simulator;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "raw mode" `Quick test_raw_mode_no_scaling;
        ] );
    ]
