(* Tests for lib/core: the ZygOS shuffle layer — PCB state machine,
   per-connection ordering, work conservation, steal accounting — plus the
   steal policy and the remote-syscall queue. Includes a model-based
   property test and a真 multicore stress test of the Mutex instantiation. *)

module S = Core.Sched.Sim_sched
module Mt = Core.Sched.Mt_sched
module Policy = Core.Steal_policy
module RQ = Core.Remote_queue.Make (Core.Platform.Nolock)

(* ---- unit tests on the state machine ---- *)

let mk ?(cores = 4) ?(conns = 8) () =
  let sched = S.create ~cores in
  let pcbs = Array.init conns (fun c -> S.register sched ~conn:c ~home:(c mod cores)) in
  (sched, pcbs)

let test_deliver_makes_ready () =
  let sched, pcbs = mk () in
  Alcotest.(check bool) "idle initially" true (S.state pcbs.(0) = S.Idle);
  S.deliver sched pcbs.(0) "a";
  Alcotest.(check bool) "ready" true (S.state pcbs.(0) = S.Ready);
  Alcotest.(check int) "in home queue" 1 (S.queue_length sched ~core:0);
  S.deliver sched pcbs.(0) "b";
  Alcotest.(check int) "still once in queue" 1 (S.queue_length sched ~core:0);
  Alcotest.(check int) "two events pending" 2 (S.pending_events pcbs.(0))

let test_dispatch_batches () =
  let sched, pcbs = mk () in
  S.deliver sched pcbs.(0) "a";
  S.deliver sched pcbs.(0) "b";
  (match S.next_local sched ~core:0 with
  | Some (pcb, batch, S.Local) ->
      Alcotest.(check (list string)) "whole batch in order" [ "a"; "b" ] batch;
      Alcotest.(check bool) "busy" true (S.state pcb = S.Busy);
      S.complete sched pcb;
      Alcotest.(check bool) "idle after" true (S.state pcb = S.Idle)
  | _ -> Alcotest.fail "expected local dispatch");
  Alcotest.(check (option unit)) "queue drained" None
    (Option.map (fun _ -> ()) (S.next_local sched ~core:0))

let test_events_during_busy_reready () =
  let sched, pcbs = mk () in
  S.deliver sched pcbs.(0) "a";
  match S.next_local sched ~core:0 with
  | Some (pcb, _, _) ->
      S.deliver sched pcbs.(0) "late";
      Alcotest.(check bool) "still busy" true (S.state pcb = S.Busy);
      Alcotest.(check int) "not re-queued while busy" 0 (S.queue_length sched ~core:0);
      S.complete sched pcb;
      Alcotest.(check bool) "ready again" true (S.state pcb = S.Ready);
      Alcotest.(check int) "re-enqueued" 1 (S.queue_length sched ~core:0)
  | None -> Alcotest.fail "expected dispatch"

let test_steal () =
  let sched, pcbs = mk () in
  S.deliver sched pcbs.(0) "a";
  (* core 1 steals from core 0 *)
  match S.next sched ~core:1 ~steal_order:[| 0; 2; 3 |] with
  | Some (pcb, [ "a" ], S.Stolen 0) ->
      S.complete sched pcb;
      let c = S.counters sched ~core:1 in
      Alcotest.(check int) "steal counted" 1 c.S.steal_dispatches;
      Alcotest.(check int) "stolen events" 1 c.S.stolen_events;
      Alcotest.(check (float 1e-9)) "steal fraction" 1.0 (S.steal_fraction sched)
  | _ -> Alcotest.fail "expected steal from core 0"

let test_local_preferred_over_steal () =
  let sched, pcbs = mk () in
  S.deliver sched pcbs.(0) "remote";
  S.deliver sched pcbs.(1) "local";
  (* conn 1 homes on core 1; core 1 must take its own work first. *)
  match S.next sched ~core:1 ~steal_order:[| 0; 2; 3 |] with
  | Some (pcb, [ "local" ], S.Local) -> S.complete sched pcb
  | _ -> Alcotest.fail "expected local dispatch first"

let test_complete_non_busy_raises () =
  let sched, pcbs = mk () in
  Alcotest.check_raises "complete idle pcb" (Invalid_argument "Sched.complete: pcb not busy")
    (fun () -> S.complete sched pcbs.(0))

let test_register_validation () =
  let sched, _ = mk () in
  Alcotest.check_raises "home out of range" (Invalid_argument "Sched.register: home out of range")
    (fun () -> ignore (S.register sched ~conn:99 ~home:7 : string S.pcb));
  Alcotest.check_raises "cores < 1" (Invalid_argument "Sched.create: cores < 1") (fun () ->
      ignore (S.create ~cores:0 : string S.t))

let test_has_ready () =
  let sched, pcbs = mk () in
  Alcotest.(check bool) "nothing ready" false (S.has_ready sched);
  S.deliver sched pcbs.(3) "x";
  Alcotest.(check bool) "ready somewhere" true (S.has_ready sched)

(* ---- model-based property test ----

   Drive the scheduler with random operations and check the §4.3/§4.4
   invariants against a reference model: per-connection event order is
   preserved across arbitrary interleavings of dispatch/steal/complete,
   no event is lost or duplicated, and a connection is never dispatched
   concurrently. *)

type op = Deliver of int (* conn *) | Dispatch of int (* core *) | Complete of int (* conn *)

let op_gen ~conns ~cores =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun c -> Deliver (c mod conns)) small_nat);
        (3, map (fun c -> Dispatch (c mod cores)) small_nat);
        (3, map (fun c -> Complete (c mod conns)) small_nat);
      ])

let prop_scheduler_model =
  let conns = 6 and cores = 3 in
  QCheck.Test.make ~name:"random ops preserve ordering and conservation" ~count:500
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 200) (op_gen ~conns ~cores))
       ~print:(fun ops -> string_of_int (List.length ops)))
    (fun ops ->
      let sched = S.create ~cores in
      let pcbs = Array.init conns (fun c -> S.register sched ~conn:c ~home:(c mod cores)) in
      let next_event_id = ref 0 in
      let delivered = Array.make conns [] in
      let executed = Array.make conns [] in
      let in_flight : (int, (int S.pcb * int list)) Hashtbl.t = Hashtbl.create 8 in
      let rng = Engine.Rng.create ~seed:1 in
      List.iter
        (fun op ->
          match op with
          | Deliver conn ->
              let id = !next_event_id in
              incr next_event_id;
              delivered.(conn) <- id :: delivered.(conn);
              S.deliver sched pcbs.(conn) id
          | Dispatch core -> (
              let order = Array.init cores (fun i -> i) in
              Engine.Rng.shuffle_in_place rng order;
              match S.next sched ~core ~steal_order:order with
              | None -> ()
              | Some (pcb, batch, _) ->
                  let conn = S.conn pcb in
                  if Hashtbl.mem in_flight conn then
                    QCheck.Test.fail_report "connection dispatched twice concurrently";
                  Hashtbl.add in_flight conn (pcb, batch))
          | Complete conn -> (
              match Hashtbl.find_opt in_flight conn with
              | None -> ()
              | Some (pcb, batch) ->
                  Hashtbl.remove in_flight conn;
                  (* executed logs are kept newest-first *)
                  executed.(conn) <- List.rev_append batch executed.(conn);
                  S.complete sched pcb))
        ops;
      (* Drain: finish in-flight batches, then dispatch until empty. *)
      let flushed = Hashtbl.fold (fun conn v acc -> (conn, v) :: acc) in_flight [] in
      List.iter
        (fun (conn, (pcb, batch)) ->
          Hashtbl.remove in_flight conn;
          executed.(conn) <- List.rev_append batch executed.(conn);
          S.complete sched pcb)
        flushed;
      let rec drain () =
        match S.next sched ~core:0 ~steal_order:(Array.init cores (fun i -> i)) with
        | Some (pcb, batch, _) ->
            executed.(S.conn pcb) <- List.rev_append batch executed.(S.conn pcb);
            S.complete sched pcb;
            drain ()
        | None -> ()
      in
      drain ();
      (* Work conservation: nothing ready remains. *)
      if S.has_ready sched then QCheck.Test.fail_report "events left behind";
      (* Per-connection order and no loss/duplication. *)
      Array.iteri
        (fun conn log ->
          let got = List.rev executed.(conn) in
          let want = List.rev log in
          if got <> want then
            QCheck.Test.fail_reportf "conn %d: executed %s, delivered %s" conn
              (String.concat "," (List.map string_of_int got))
              (String.concat "," (List.map string_of_int want)))
        delivered;
      true)

(* ---- steal policy ---- *)

let test_policy_permutation () =
  let rng = Engine.Rng.create ~seed:2 in
  let p = Policy.create ~rng ~cores:8 ~self:3 in
  for _ = 1 to 50 do
    let order = Policy.victim_order p in
    let sorted = List.sort compare (Array.to_list order) in
    Alcotest.(check (list int)) "permutation of others" [ 0; 1; 2; 4; 5; 6; 7 ] sorted
  done

let test_policy_round_robin () =
  let rng = Engine.Rng.create ~seed:3 in
  let p = Policy.create ~rng ~cores:4 ~self:2 in
  Alcotest.(check (list int)) "rr order" [ 3; 0; 1 ] (Array.to_list (Policy.round_robin_order p))

let test_policy_randomizes () =
  let rng = Engine.Rng.create ~seed:4 in
  let p = Policy.create ~rng ~cores:16 ~self:0 in
  let a = Array.copy (Policy.victim_order p) in
  let differs = ref false in
  for _ = 1 to 20 do
    if Policy.victim_order p <> a then differs := true
  done;
  Alcotest.(check bool) "order varies across calls" true !differs

let test_policy_validation () =
  let rng = Engine.Rng.create ~seed:5 in
  Alcotest.check_raises "self out of range"
    (Invalid_argument "Steal_policy.create: self out of range") (fun () ->
      ignore (Policy.create ~rng ~cores:4 ~self:4 : Policy.t))

(* ---- remote queue ---- *)

let test_remote_queue_fifo () =
  let q = RQ.create () in
  Alcotest.(check bool) "empty" true (RQ.is_empty q);
  List.iter (RQ.push q) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (RQ.length q);
  Alcotest.(check (list int)) "drain order" [ 1; 2; 3 ] (RQ.drain q);
  Alcotest.(check (list int)) "drained empty" [] (RQ.drain q);
  Alcotest.(check int) "pushed total" 3 (RQ.pushed_total q)

(* ---- real multicore stress of the Mutex instantiation ---- *)

let test_mt_sched_stress () =
  let cores = 4 and conns = 16 and per_conn = 300 in
  let sched = Mt.create ~cores in
  let pcbs = Array.init conns (fun c -> Mt.register sched ~conn:c ~home:(c mod cores)) in
  let executed = Array.init conns (fun _ -> Atomic.make []) in
  let total = Atomic.make 0 in
  let stop = Atomic.make false in
  let worker core =
    let rng = Engine.Rng.create ~seed:(100 + core) in
    let policy = Policy.create ~rng ~cores ~self:core in
    let rec loop () =
      match Mt.next sched ~core ~steal_order:(Policy.victim_order policy) with
      | Some (pcb, batch, _) ->
          let conn = Mt.conn pcb in
          List.iter
            (fun ev ->
              let log = executed.(conn) in
              let rec push () =
                let old = Atomic.get log in
                if not (Atomic.compare_and_set log old (ev :: old)) then push ()
              in
              push ();
              ignore (Atomic.fetch_and_add total 1 : int))
            batch;
          Mt.complete sched pcb;
          loop ()
      | None -> if not (Atomic.get stop) then loop ()
    in
    loop ()
  in
  let domains = List.init cores (fun core -> Domain.spawn (fun () -> worker core)) in
  (* Producer: deliver events with per-conn sequence numbers. *)
  for seq = 0 to per_conn - 1 do
    for conn = 0 to conns - 1 do
      Mt.deliver sched pcbs.(conn) seq
    done
  done;
  let deadline = Unix.gettimeofday () +. 30. in
  while Atomic.get total < conns * per_conn && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.001
  done;
  Atomic.set stop true;
  List.iter Domain.join domains;
  Alcotest.(check int) "all events executed" (conns * per_conn) (Atomic.get total);
  Array.iteri
    (fun conn log ->
      let got = List.rev (Atomic.get log) in
      let want = List.init per_conn Fun.id in
      if got <> want then Alcotest.failf "conn %d out of order or lossy" conn)
    executed

let () =
  Alcotest.run "core"
    [
      ( "sched",
        [
          Alcotest.test_case "deliver makes ready" `Quick test_deliver_makes_ready;
          Alcotest.test_case "dispatch batches" `Quick test_dispatch_batches;
          Alcotest.test_case "busy re-ready" `Quick test_events_during_busy_reready;
          Alcotest.test_case "steal" `Quick test_steal;
          Alcotest.test_case "local first" `Quick test_local_preferred_over_steal;
          Alcotest.test_case "complete non-busy" `Quick test_complete_non_busy_raises;
          Alcotest.test_case "register validation" `Quick test_register_validation;
          Alcotest.test_case "has_ready" `Quick test_has_ready;
          QCheck_alcotest.to_alcotest prop_scheduler_model;
        ] );
      ( "steal-policy",
        [
          Alcotest.test_case "permutation" `Quick test_policy_permutation;
          Alcotest.test_case "round robin" `Quick test_policy_round_robin;
          Alcotest.test_case "randomizes" `Quick test_policy_randomizes;
          Alcotest.test_case "validation" `Quick test_policy_validation;
        ] );
      ("remote-queue", [ Alcotest.test_case "fifo" `Quick test_remote_queue_fifo ]);
      ("multicore", [ Alcotest.test_case "mt stress" `Slow test_mt_sched_stress ]);
    ]
