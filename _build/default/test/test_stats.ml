(* Tests for lib/stats: exact tally, log-bucketed histogram, CCDF. *)

module Tally = Stats.Tally
module Histogram = Stats.Histogram
module Ccdf = Stats.Ccdf
module Rng = Engine.Rng

(* Reference nearest-rank percentile over a plain list. *)
let reference_percentile xs p =
  let sorted = List.sort Float.compare xs in
  let n = List.length sorted in
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  List.nth sorted (max 0 (min (n - 1) (rank - 1)))

let tally_of xs =
  let t = Tally.create () in
  List.iter (Tally.record t) xs;
  t

let prop_percentile_matches_reference =
  QCheck.Test.make ~name:"tally percentile = nearest-rank reference" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 200) (float_range 0. 1e6)) (float_range 0. 100.))
    (fun (xs, p) ->
      let t = tally_of xs in
      Tally.percentile t p = reference_percentile xs p)

let test_tally_basics () =
  let t = tally_of [ 5.; 1.; 3.; 2.; 4. ] in
  Alcotest.(check int) "count" 5 (Tally.count t);
  Alcotest.(check (float 1e-9)) "mean" 3. (Tally.mean t);
  Alcotest.(check (float 1e-9)) "max" 5. (Tally.max_value t);
  Alcotest.(check (float 1e-9)) "min" 1. (Tally.min_value t);
  Alcotest.(check (float 1e-9)) "p50" 3. (Tally.p50 t);
  Alcotest.(check (float 1e-9)) "p99" 5. (Tally.p99 t)

let test_tally_empty () =
  let t = Tally.create () in
  Alcotest.(check bool) "empty" true (Tally.is_empty t);
  Alcotest.(check (float 0.)) "mean of empty" 0. (Tally.mean t);
  Alcotest.check_raises "percentile of empty" (Invalid_argument "Tally.percentile: empty tally")
    (fun () -> ignore (Tally.p99 t : float))

let test_tally_record_after_query () =
  (* Percentile queries sort internally; recording afterwards must still
     work correctly. *)
  let t = tally_of [ 3.; 1.; 2. ] in
  Alcotest.(check (float 1e-9)) "p50 before" 2. (Tally.p50 t);
  Tally.record t 0.5;
  Alcotest.(check int) "count grew" 4 (Tally.count t);
  Alcotest.(check (float 1e-9)) "p50 after" 1. (Tally.p50 t);
  Alcotest.(check (float 1e-9)) "max unchanged" 3. (Tally.max_value t)

let test_tally_merge_and_clear () =
  let a = tally_of [ 1.; 2. ] and b = tally_of [ 3. ] in
  let m = Tally.merge a b in
  Alcotest.(check int) "merged count" 3 (Tally.count m);
  Alcotest.(check (float 1e-9)) "merged mean" 2. (Tally.mean m);
  Tally.clear a;
  Alcotest.(check int) "cleared" 0 (Tally.count a)

let test_tally_stddev () =
  let t = tally_of [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  Alcotest.(check (float 1e-6)) "sample stddev" 2.13808993 (Tally.stddev t)

let prop_histogram_close_to_exact =
  QCheck.Test.make ~name:"histogram percentile within quantization error" ~count:100
    QCheck.(list_of_size Gen.(10 -- 300) (float_range 0.1 1e5))
    (fun xs ->
      let t = tally_of xs in
      let h = Histogram.create ~significant_digits:3 () in
      List.iter (Histogram.record h) xs;
      List.for_all
        (fun p ->
          let exact = Tally.percentile t p in
          let approx = Histogram.percentile h p in
          abs_float (approx -. exact) <= (0.01 *. exact) +. 1e-3)
        [ 50.; 90.; 99. ])

let test_histogram_basics () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 10.; 20.; 30. ];
  Alcotest.(check int) "count" 3 (Histogram.count h);
  Alcotest.(check (float 0.3)) "mean near 20" 20. (Histogram.mean h);
  Alcotest.(check (float 1e-9)) "max exact" 30. (Histogram.max_value h);
  Alcotest.check_raises "negative raises" (Invalid_argument "Histogram.record: negative value")
    (fun () -> Histogram.record h (-1.))

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.record a) [ 1.; 2. ];
  List.iter (Histogram.record b) [ 100.; 200. ];
  Histogram.merge_into ~dst:a b;
  Alcotest.(check int) "merged count" 4 (Histogram.count a);
  Alcotest.(check (float 1e-9)) "merged max" 200. (Histogram.max_value a)

let test_histogram_merge_exact () =
  (* Bucket-array merging must be indistinguishable from recording every
     sample into the destination directly: same counts per bucket, exact
     sum (mean) and maximum. *)
  let rng = Engine.Rng.create ~seed:11 in
  let a = Histogram.create () and b = Histogram.create () in
  let direct = Histogram.create () in
  for i = 1 to 5_000 do
    let v = Rng.exponential rng ~mean:25. in
    Histogram.record (if i mod 2 = 0 then a else b) v;
    Histogram.record direct v
  done;
  Histogram.merge_into ~dst:a b;
  Alcotest.(check int) "count" (Histogram.count direct) (Histogram.count a);
  Alcotest.(check (float 1e-9)) "exact mean" (Histogram.mean direct) (Histogram.mean a);
  Alcotest.(check (float 1e-9)) "exact max" (Histogram.max_value direct) (Histogram.max_value a);
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%g" p)
        (Histogram.percentile direct p) (Histogram.percentile a p))
    [ 50.; 90.; 99.; 99.9 ]

(* The log-free bucket index (IEEE-754 exponent/mantissa extraction plus a
   table) must agree with the straightforward log-based formula across the
   full value range, for every supported precision. *)
let test_histogram_fast_bucketing_agrees () =
  let rng = Engine.Rng.create ~seed:13 in
  let lo = log 1e-4 and hi = log 1e8 in
  List.iter
    (fun digits ->
      let h = Histogram.create ~significant_digits:digits () in
      let log_ratio = log (1. +. (10. ** float_of_int (-digits))) in
      let reference v =
        if v <= 1e-3 then 0 else 1 + int_of_float (log (v /. 1e-3) /. log_ratio)
      in
      for _ = 1 to 250_000 do
        (* log-uniform across [1e-4, 1e8]: covers sub-floor values, the
           floor boundary, and ~12 decades of magnitude *)
        let v = exp (lo +. (Rng.float rng *. (hi -. lo))) in
        let fast = Histogram.bucket_of_value h v in
        let slow = reference v in
        if fast <> slow then
          Alcotest.failf "digits=%d v=%h: fast bucket %d <> log bucket %d" digits v fast
            slow
      done)
    [ 1; 2; 3; 4 ]

let test_histogram_precision_mismatch () =
  let a = Histogram.create ~significant_digits:2 () in
  let b = Histogram.create ~significant_digits:3 () in
  Alcotest.check_raises "mismatch" (Invalid_argument "Histogram.merge_into: precision mismatch")
    (fun () -> Histogram.merge_into ~dst:a b)

let test_histogram_clear () =
  let h = Histogram.create () in
  Histogram.record h 5.;
  Histogram.clear h;
  Alcotest.(check int) "cleared" 0 (Histogram.count h)

let test_ccdf_monotone () =
  let samples = Array.init 500 (fun i -> float_of_int (i * i mod 997)) in
  let points = Ccdf.of_samples samples in
  let rec check = function
    | { Ccdf.value = v1; prob = p1 } :: ({ Ccdf.value = v2; prob = p2 } :: _ as rest) ->
        Alcotest.(check bool) "values ascend" true (v1 <= v2);
        Alcotest.(check bool) "probs descend" true (p1 >= p2);
        check rest
    | _ -> ()
  in
  check points;
  (match List.rev points with
  | last :: _ -> Alcotest.(check (float 1e-9)) "tail reaches 0" 0. last.Ccdf.prob
  | [] -> Alcotest.fail "no points")

let test_ccdf_survival () =
  let samples = [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check (float 1e-9)) "survival mid" 0.5 (Ccdf.survival_at samples 2.);
  Alcotest.(check (float 1e-9)) "survival top" 0. (Ccdf.survival_at samples 4.);
  Alcotest.(check (float 1e-9)) "survival below" 1. (Ccdf.survival_at samples 0.);
  Alcotest.(check (float 1e-9)) "empty" 0. (Ccdf.survival_at [||] 1.)

let test_ccdf_empty () = Alcotest.(check int) "no points" 0 (List.length (Ccdf.of_samples [||]))

let () =
  Alcotest.run "stats"
    [
      ( "tally",
        [
          QCheck_alcotest.to_alcotest prop_percentile_matches_reference;
          Alcotest.test_case "basics" `Quick test_tally_basics;
          Alcotest.test_case "empty" `Quick test_tally_empty;
          Alcotest.test_case "record after query" `Quick test_tally_record_after_query;
          Alcotest.test_case "merge/clear" `Quick test_tally_merge_and_clear;
          Alcotest.test_case "stddev" `Quick test_tally_stddev;
        ] );
      ( "histogram",
        [
          QCheck_alcotest.to_alcotest prop_histogram_close_to_exact;
          Alcotest.test_case "basics" `Quick test_histogram_basics;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "merge exact" `Quick test_histogram_merge_exact;
          Alcotest.test_case "fast bucketing = log bucketing" `Slow
            test_histogram_fast_bucketing_agrees;
          Alcotest.test_case "precision mismatch" `Quick test_histogram_precision_mismatch;
          Alcotest.test_case "clear" `Quick test_histogram_clear;
        ] );
      ( "ccdf",
        [
          Alcotest.test_case "monotone" `Quick test_ccdf_monotone;
          Alcotest.test_case "survival" `Quick test_ccdf_survival;
          Alcotest.test_case "empty" `Quick test_ccdf_empty;
        ] );
    ]
