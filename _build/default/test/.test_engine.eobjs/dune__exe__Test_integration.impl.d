test/test_integration.ml: Alcotest Array Engine Experiments Kvstore List Printf
