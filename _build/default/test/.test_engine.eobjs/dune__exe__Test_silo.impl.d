test/test_silo.ml: Alcotest Array Domain Engine Fun Hashtbl Lazy List Map Option Printf QCheck QCheck_alcotest Silo String
