test/test_stats.ml: Alcotest Array Engine Float Gen List Printf QCheck QCheck_alcotest Stats
