test/test_bench_targets.ml: Alcotest Experiments Fun List Unix
