test/test_core.ml: Alcotest Array Atomic Core Domain Engine Fun Hashtbl List Option QCheck QCheck_alcotest String Unix
