test/test_linux_model.mli:
