test/test_runtime.ml: Alcotest Array Atomic Fun List Printf Runtime
