test/test_ix_model.ml: Alcotest Engine Float List Net Printf Systems
