test/test_edge_cases.ml: Alcotest Array Atomic Engine Format Fun Kvstore List Models Net Printf Runtime Silo Stats String
