test/test_systems.ml: Alcotest Engine Experiments List Option Printf Systems
