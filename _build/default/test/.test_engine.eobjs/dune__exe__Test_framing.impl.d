test/test_framing.ml: Alcotest Bytes Char Gen Int64 List Net QCheck QCheck_alcotest String
