test/test_zygos_model.ml: Alcotest Engine List Net Option Printf Systems
