test/test_experiments.ml: Alcotest Engine Experiments List Printf
