test/test_kvstore.ml: Alcotest Engine Gen Hashtbl Kvstore List Option Printf QCheck QCheck_alcotest String
