test/test_framing.mli:
