test/test_ix_model.mli:
