test/test_appserve.mli:
