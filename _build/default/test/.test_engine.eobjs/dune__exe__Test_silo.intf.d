test/test_silo.mli:
