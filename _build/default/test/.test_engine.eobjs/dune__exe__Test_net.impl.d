test/test_net.ml: Alcotest Array Bytes Char Engine Int32 List Net QCheck QCheck_alcotest Queue Stats
