test/test_bench_targets.mli:
