test/test_linux_model.ml: Alcotest Engine Float List Net Printf Systems
