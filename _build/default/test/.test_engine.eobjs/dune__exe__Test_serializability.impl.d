test/test_serializability.ml: Alcotest Array List Printf QCheck QCheck_alcotest Silo String
