test/test_determinism.ml: Alcotest Engine Experiments Float Format List Printf
