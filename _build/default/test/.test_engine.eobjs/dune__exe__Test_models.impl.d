test/test_models.ml: Alcotest Engine List Models Printf Stats
