test/test_appserve.ml: Alcotest Experiments Kvstore Printf
