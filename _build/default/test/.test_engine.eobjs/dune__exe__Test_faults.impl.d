test/test_faults.ml: Alcotest Array Core Engine Experiments Float Gen Int64 List Net Printf QCheck QCheck_alcotest Stats Systems
