test/test_zygos_model.mli:
