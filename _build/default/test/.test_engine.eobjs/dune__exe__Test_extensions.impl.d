test/test_extensions.ml: Alcotest Engine Experiments List Net Option Printf Stats Systems
