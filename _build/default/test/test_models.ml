(* Tests for lib/models: the idealized queueing models against known
   closed-form results (M/M/1, M/M/n, Erlang-C) and against the paper's
   quoted SLO capacities. *)

open Models.Queueing

let exp1 = Engine.Dist.exponential 1.0

let mean_sojourn spec ~load ~requests ~seed =
  let r = simulate spec ~service:exp1 ~load ~requests ~seed in
  Stats.Tally.mean r.latencies

let within ~tol ~expected actual =
  if abs_float (actual -. expected) /. expected > tol then
    Alcotest.failf "expected %.3f, got %.3f (tol %.0f%%)" expected actual (100. *. tol)

let test_mm1_mean () =
  (* M/M/1: E[T] = 1/(1 - rho). *)
  List.iter
    (fun rho ->
      let t = mean_sojourn { servers = 1; policy = Fcfs; topology = Central } ~load:rho
          ~requests:150_000 ~seed:1
      in
      within ~tol:0.08 ~expected:(1. /. (1. -. rho)) t)
    [ 0.3; 0.5; 0.7 ]

let test_mm1_ps_mean () =
  (* M/M/1/PS has the same mean sojourn as FCFS. *)
  let t = mean_sojourn { servers = 1; policy = Ps; topology = Central } ~load:0.5
      ~requests:80_000 ~seed:2
  in
  within ~tol:0.08 ~expected:2.0 t

let erlang_c ~n ~rho =
  (* P(wait) for M/M/n at per-server utilization rho. *)
  let a = float_of_int n *. rho in
  let fact k = List.fold_left ( *. ) 1. (List.init k (fun i -> float_of_int (i + 1))) in
  let sum =
    List.fold_left ( +. ) 0. (List.init n (fun k -> (a ** float_of_int k) /. fact k))
  in
  let top = (a ** float_of_int n) /. fact n /. (1. -. rho) in
  top /. (sum +. top)

let test_mm16_mean () =
  (* M/M/16: E[T] = 1 + C(16, rho) / (16 (1 - rho)). *)
  let rho = 0.9 in
  let expected = 1. +. (erlang_c ~n:16 ~rho /. (16. *. (1. -. rho))) in
  let t = mean_sojourn { servers = 16; policy = Fcfs; topology = Central } ~load:rho
      ~requests:200_000 ~seed:3
  in
  within ~tol:0.08 ~expected t

let test_partitioned_matches_mm1 () =
  (* n independent M/M/1 queues: per-queue behaviour equals M/M/1. *)
  let t = mean_sojourn { servers = 16; policy = Fcfs; topology = Partitioned } ~load:0.8
      ~requests:200_000 ~seed:4
  in
  within ~tol:0.12 ~expected:5.0 t

let test_md1_wait () =
  (* M/D/1: E[W] = rho / (2 (1 - rho)) for unit service. *)
  let rho = 0.6 in
  let r =
    simulate { servers = 1; policy = Fcfs; topology = Central }
      ~service:(Engine.Dist.deterministic 1.0) ~load:rho ~requests:150_000 ~seed:5
  in
  within ~tol:0.08 ~expected:(1. +. (rho /. (2. *. (1. -. rho)))) (Stats.Tally.mean r.latencies)

let test_p99_exponential_floor () =
  (* At very low load the p99 sojourn is just the p99 of the service time:
     -ln(0.01) ~ 4.6 for exp(1). *)
  let r = simulate { servers = 16; policy = Fcfs; topology = Central } ~service:exp1 ~load:0.1
      ~requests:60_000 ~seed:6
  in
  within ~tol:0.06 ~expected:4.605 (Stats.Tally.p99 r.latencies)

let test_central_beats_partitioned_p99 () =
  List.iter
    (fun (dist : Engine.Dist.t) ->
      let p99 topology =
        let r = simulate { servers = 16; policy = Fcfs; topology } ~service:dist ~load:0.7
            ~requests:40_000 ~seed:7
        in
        Stats.Tally.p99 r.latencies
      in
      let central = p99 Central and partitioned = p99 Partitioned in
      if central > partitioned then
        Alcotest.failf "central p99 %.2f worse than partitioned %.2f (%s)" central partitioned
          (Engine.Dist.name dist))
    [ Engine.Dist.deterministic 1.; exp1; Engine.Dist.bimodal1 ~mean:1. ]

let test_fcfs_beats_ps_low_dispersion () =
  (* Observation 2 of §2.3: FCFS wins for low-dispersion distributions... *)
  let p99 policy service =
    let r = simulate { servers = 16; policy; topology = Central } ~service ~load:0.8
        ~requests:40_000 ~seed:8
    in
    Stats.Tally.p99 r.latencies
  in
  let fcfs = p99 Fcfs exp1 and ps = p99 Ps exp1 in
  Alcotest.(check bool)
    (Printf.sprintf "FCFS (%.1f) <= PS (%.1f) for exponential" fcfs ps)
    true (fcfs <= ps);
  (* ...while PS wins under bimodal-2's huge dispersion. *)
  let b2 = Engine.Dist.bimodal2 ~mean:1. in
  let fcfs2 = p99 Fcfs b2 and ps2 = p99 Ps b2 in
  Alcotest.(check bool)
    (Printf.sprintf "PS (%.1f) <= FCFS (%.1f) for bimodal-2" ps2 fcfs2)
    true (ps2 <= fcfs2)

let test_paper_slo_loads () =
  (* §3.1: for the exponential distribution and an SLO of p99 <= 10x mean,
     queueing theory gives 53.7% for partitioned-FCFS and 96.3% for
     centralized-FCFS (n = 16). *)
  let partitioned =
    max_load_at_slo { servers = 16; policy = Fcfs; topology = Partitioned } ~service:exp1
      ~slo_p99:10. ~requests:30_000 ()
  in
  if abs_float (partitioned -. 0.537) > 0.05 then
    Alcotest.failf "partitioned max load %.3f (paper: 0.537)" partitioned;
  let central =
    max_load_at_slo { servers = 16; policy = Fcfs; topology = Central } ~service:exp1
      ~slo_p99:10. ~requests:30_000 ()
  in
  if abs_float (central -. 0.963) > 0.04 then
    Alcotest.failf "central max load %.3f (paper: 0.963)" central

let test_simulate_validation () =
  let spec = { servers = 16; policy = Fcfs; topology = Central } in
  Alcotest.check_raises "bad load" (Invalid_argument "Queueing.simulate: load out of (0, 1.05)")
    (fun () -> ignore (simulate spec ~service:exp1 ~load:2.0 ~requests:10 ~seed:1 : result));
  Alcotest.check_raises "bad servers" (Invalid_argument "Queueing.simulate: servers < 1")
    (fun () ->
      ignore
        (simulate { spec with servers = 0 } ~service:exp1 ~load:0.5 ~requests:10 ~seed:1
          : result))

let test_names () =
  Alcotest.(check string) "central" "M/G/16/FCFS"
    (name { servers = 16; policy = Fcfs; topology = Central });
  Alcotest.(check string) "partitioned" "16xM/G/1/PS"
    (name { servers = 16; policy = Ps; topology = Partitioned })

let test_determinism () =
  let spec = { servers = 16; policy = Fcfs; topology = Central } in
  let a = simulate spec ~service:exp1 ~load:0.7 ~requests:10_000 ~seed:42 in
  let b = simulate spec ~service:exp1 ~load:0.7 ~requests:10_000 ~seed:42 in
  Alcotest.(check (float 0.)) "same p99 for same seed" (Stats.Tally.p99 a.latencies)
    (Stats.Tally.p99 b.latencies)

let () =
  Alcotest.run "models"
    [
      ( "closed-form",
        [
          Alcotest.test_case "M/M/1 mean" `Slow test_mm1_mean;
          Alcotest.test_case "M/M/1/PS mean" `Slow test_mm1_ps_mean;
          Alcotest.test_case "M/M/16 mean (Erlang-C)" `Slow test_mm16_mean;
          Alcotest.test_case "16xM/M/1 = M/M/1" `Slow test_partitioned_matches_mm1;
          Alcotest.test_case "M/D/1 wait" `Slow test_md1_wait;
          Alcotest.test_case "p99 floor" `Slow test_p99_exponential_floor;
        ] );
      ( "paper-observations",
        [
          Alcotest.test_case "central beats partitioned (obs 1)" `Slow
            test_central_beats_partitioned_p99;
          Alcotest.test_case "FCFS vs PS by dispersion (obs 2)" `Slow
            test_fcfs_beats_ps_low_dispersion;
          Alcotest.test_case "SLO capacities (53.7%/96.3%)" `Slow test_paper_slo_loads;
        ] );
      ( "api",
        [
          Alcotest.test_case "validation" `Quick test_simulate_validation;
          Alcotest.test_case "names" `Quick test_names;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
    ]
