(* Integration tests: the full pipeline (load generator -> simulated
   server -> client-side measurement) across systems and distributions,
   plus convergence of the system models to their idealized queueing
   models for large tasks (the central claim of §3.4). *)

module Run = Experiments.Run
module Dist = Engine.Dist

let point ?(requests = 10_000) ?(conns = 2752) system ~service ~load =
  let cfg = Run.config ~system ~service ~requests ~conns () in
  Run.run_point cfg ~load

(* Matrix smoke: every system x distribution x load combination completes
   with per-connection ordering intact and plausible latency floors. *)
let test_matrix_invariants () =
  let dists = [ Dist.deterministic 10.; Dist.exponential 10.; Dist.bimodal1 ~mean:10. ] in
  List.iter
    (fun system ->
      List.iter
        (fun service ->
          List.iter
            (fun load ->
              let p = point ~requests:6_000 system ~service ~load in
              let label =
                Printf.sprintf "%s/%s@%.1f" (Run.system_name system) (Dist.name service) load
              in
              Alcotest.(check int) (label ^ " ordering") 0 p.Run.order_violations;
              (* Latency can never undercut the smallest service time. *)
              let floor =
                match service with
                | Dist.Bimodal { fast; _ } -> fast
                | _ -> 0.8 *. Dist.mean service
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s p50 %.1f above service floor" label p.Run.p50)
                true (p.Run.p50 >= floor))
            [ 0.3; 0.75 ])
        dists)
    Run.all_real_systems

(* §3.4(a): IX converges to the partitioned-FCFS model as tasks grow. *)
let test_ix_converges_to_partitioned_model () =
  let service = Dist.exponential 200. in
  let ix = point ~requests:25_000 (Run.Ix 1) ~service ~load:0.5 in
  let model = point ~requests:25_000 Run.Model_partitioned_fcfs ~service ~load:0.5 in
  let ratio = ix.Run.p99 /. model.Run.p99 in
  Alcotest.(check bool)
    (Printf.sprintf "ix p99 within 15%% of model (ratio %.3f)" ratio)
    true
    (ratio > 0.85 && ratio < 1.15)

(* §3.4(b): Linux-floating converges to the centralized-FCFS model. *)
let test_floating_converges_to_central_model () =
  let service = Dist.exponential 200. in
  let lin = point Run.Linux_floating ~service ~load:0.5 in
  let model = point Run.Model_central_fcfs ~service ~load:0.5 in
  let ratio = lin.Run.p99 /. model.Run.p99 in
  Alcotest.(check bool)
    (Printf.sprintf "floating p99 within 15%% of model (ratio %.3f)" ratio)
    true
    (ratio > 0.85 && ratio < 1.15)

(* ZygOS converges to centralized-FCFS far faster than Linux does — at
   25µs it is already within ~20% of the model at 70% load (Fig. 6e). *)
let test_zygos_fast_convergence () =
  let service = Dist.exponential 25. in
  let zygos = point Run.Zygos ~service ~load:0.7 in
  let model = point Run.Model_central_fcfs ~service ~load:0.7 in
  let ratio = zygos.Run.p99 /. model.Run.p99 in
  Alcotest.(check bool)
    (Printf.sprintf "zygos/model p99 ratio %.2f < 1.35" ratio)
    true (ratio < 1.35)

(* The bimodal-1 distribution is where HOL blocking bites: ZygOS's
   advantage over IX must be larger than for the deterministic
   distribution at the same load. *)
let test_hol_blocking_hurts_ix_most_with_dispersion () =
  (* Measured as the absolute p99 gap: ZygOS's own floor also rises with
     dispersion (slow bimodal requests are slow everywhere), but the µs
     cost of head-of-line blocking in IX grows faster. *)
  let gap service =
    let ix = point (Run.Ix 1) ~service ~load:0.6 in
    let zy = point Run.Zygos ~service ~load:0.6 in
    ix.Run.p99 -. zy.Run.p99
  in
  let det = gap (Dist.deterministic 10.) in
  let bimodal = gap (Dist.bimodal1 ~mean:10.) in
  Alcotest.(check bool)
    (Printf.sprintf "zygos advantage grows with dispersion (%.0fus -> %.0fus)" det bimodal)
    true (bimodal > det)

(* Throughput plateaus at capacity beyond saturation instead of tracking
   the offered rate. *)
let test_throughput_plateaus () =
  let service = Dist.exponential 10. in
  let at load = (point (Run.Ix 1) ~service ~load).Run.throughput in
  let t95 = at 0.95 and t99 = at 0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "plateau: %.3f vs %.3f" t95 t99)
    true
    (abs_float (t99 -. t95) /. t95 < 0.08)

(* The Silo pipeline end to end: real execution -> empirical distribution
   -> simulated serving, with ordering preserved. *)
let test_silo_empirical_pipeline () =
  let samples = Experiments.Figures.silo_service_samples ~scale:0.05 in
  Alcotest.(check bool) "enough samples" true (Array.length samples > 1_000);
  let service = Dist.empirical samples in
  Alcotest.(check (float 2.)) "normalized mean 33us" 33. (Dist.mean service);
  let p = point ~requests:6_000 Run.Zygos ~service ~load:0.6 ~conns:2752 in
  Alcotest.(check int) "ordering" 0 p.Run.order_violations;
  Alcotest.(check bool) "tail above service p99" true (p.Run.p99 > 100.)

(* memcached workload end to end through each system at one load. *)
let test_kv_pipeline () =
  let wl = Kvstore.Workload.create Kvstore.Workload.Usr in
  let service = Kvstore.Workload.service_dist wl ~samples:5_000 in
  List.iter
    (fun system ->
      let p = point ~requests:8_000 system ~service ~load:0.25 in
      Alcotest.(check int)
        (Run.system_name system ^ " ordering")
        0 p.Run.order_violations)
    [ Run.Ix 1; Run.Ix 64; Run.Zygos; Run.Linux_floating ]

(* Different connection counts: fewer connections increase pipelining
   (more same-conn batching) but never break ordering. *)
let test_few_connections () =
  let service = Dist.exponential 10. in
  List.iter
    (fun conns ->
      let p = point ~requests:6_000 ~conns Run.Zygos ~service ~load:0.7 in
      Alcotest.(check int)
        (Printf.sprintf "%d conns ordering" conns)
        0 p.Run.order_violations)
    [ 16; 64; 2752 ]

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "matrix invariants" `Slow test_matrix_invariants;
          Alcotest.test_case "throughput plateaus" `Quick test_throughput_plateaus;
          Alcotest.test_case "silo empirical pipeline" `Slow test_silo_empirical_pipeline;
          Alcotest.test_case "kv pipeline" `Quick test_kv_pipeline;
          Alcotest.test_case "few connections" `Quick test_few_connections;
        ] );
      ( "model-convergence",
        [
          Alcotest.test_case "ix -> partitioned model" `Quick
            test_ix_converges_to_partitioned_model;
          Alcotest.test_case "floating -> central model" `Quick
            test_floating_converges_to_central_model;
          Alcotest.test_case "zygos fast convergence" `Quick test_zygos_fast_convergence;
          Alcotest.test_case "dispersion hurts ix most" `Quick
            test_hol_blocking_hurts_ix_most_with_dispersion;
        ] );
    ]
