(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index) plus a Bechamel
   microbenchmark suite over the core data structures.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- fig7 table1  -- selected targets
     dune exec bench/main.exe -- -j 4 fig6    -- sweep points on 4 domains
     dune exec bench/main.exe -- --json       -- also write BENCH_PR8.json
     ZYGOS_BENCH_SCALE=0.2 dune exec bench/main.exe   -- quicker pass *)

(* Driver-level suppressions, file-wide: the harness keys its target and
   result tables by string (poly-compare on CLI tokens is the idiom, not
   a hot-path hazard), and its module-level accumulators (wall_clock,
   last_* rows) are written only from the main domain — sweep workers
   hand results back through [Sweep.run_with_stats]'s return value, so
   the ref cells and captured arrays never race. *)
[@@@zygos.allow "poly-compare domain-safety domain-escape"]

let scale =
  match Sys.getenv_opt "ZYGOS_BENCH_SCALE" with
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0. -> f
      | _ -> invalid_arg "ZYGOS_BENCH_SCALE must be a positive float")
  | None -> 1.0

let default_jobs =
  match Sys.getenv_opt "ZYGOS_JOBS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some j when j >= 1 -> j
      | _ -> invalid_arg "ZYGOS_JOBS must be a positive integer")
  | None -> 1

(* Every stored baseline is stamped with the ZYGOS_BENCH_SCALE it was
   recorded at. BENCH_PR7.json compared a scale-0.05 run against PR 4's
   scale-0.2 rows and recorded uniformly negative "improvements" that
   were really a different machine phase under a different run length —
   so [write_trajectory] now refuses to emit [improvement_vs_*] against
   a baseline whose scale differs from the current run's, and records
   why instead. Comparing against a stored baseline therefore requires
   re-running at its scale (e.g. ZYGOS_BENCH_SCALE=0.2 for PR 4). *)

(* Seed-commit ns/op for the two hot-path structures PR 1 rewrote
   (boxed heap entries, per-record [log]): median of three Bechamel runs
   of the seed implementation under the exact bench bodies below (depth-512
   heap, varying-magnitude histogram samples), 1s quota, same machine.
   BENCH_PR8.json reports current numbers next to these so the trajectory
   is visible without checking out the old commit. *)
let seed_baseline_scale = 0.1
let seed_baseline_ns = [ ("engine: heap push+pop", 221.0); ("stats: histogram record", 14.4) ]

(* PR 3's BENCH_PR3.json numbers for the engine hot-path benches this PR
   (closure-free dispatch + timing wheel) targets, same machine and
   quota (re-verified against a PR-3 checkout on the current machine:
   87.5 / 105.0); BENCH_PR8.json reports the improvement against these.
   The wheel and schedule_fn rows are keyed to the PR-3 numbers of what
   they replace on the hot path: the wheel supersedes the heap as the
   default queue, and the closure-free cycle supersedes the closure
   cycle at every converted call site, so those pairs are the
   before/after of the same simulator operation. *)
let pr3_baseline_scale = 0.2
let pr3_baseline_ns =
  [
    ("engine: heap push+pop", 105.187);
    ("engine: wheel push+pop", 105.187);
    ("sim: schedule+cancel+fire cycle", 88.0986);
    ("sim: schedule_fn+cancel+fire cycle", 88.0986);
  ]

(* PR 4's BENCH_PR4.json numbers on the same machine and quota: the rack
   tier added in this PR routes every request through the engine hot path
   (dispatch timers, estimate refreshes, per-server event streams), so
   these rows guard against the cluster layer taxing the single-server
   fast path it composes over. *)
let pr4_baseline_scale = 0.2
let pr4_baseline_ns =
  [
    ("engine: heap push+pop", 104.287);
    ("engine: wheel push+pop", 31.4413);
    ("sim: schedule+cancel+fire cycle", 75.4381);
    ("sim: schedule_fn+cancel+fire cycle", 60.7865);
    ("experiments: ns per simulated request", 2647.66);
  ]

(* PR 7's BENCH_PR7.json rows for the request path this PR attacks
   (Toeplitz LUT, zero-alloc kvstore parsing, pooled request state,
   keyed schedules). Recorded at scale 0.05: [write_trajectory] will
   only emit [improvement_vs_pr7] from a scale-0.05 run. *)
let pr7_baseline_scale = 0.05
let pr7_baseline_ns =
  [
    ("engine: heap push+pop", 124.693);
    ("engine: wheel push+pop", 39.0151);
    ("sim: schedule+cancel+fire cycle", 87.0269);
    ("sim: schedule_fn+cancel+fire cycle", 74.2401);
    ("experiments: ns per simulated request", 2959.05);
    ("net: toeplitz RSS dispatch", 2153.84);
    ("kvstore: parse+execute GET", 170.174);
  ]

(* ---- Bechamel microbenchmarks ---- *)

(* Some tests measure a block of [n] inner operations per staged call (to
   amortize loop overhead or batch a whole mini-simulation); their ns/op
   estimate is divided by [per_run] before reporting. *)
type micro = { test : Bechamel.Test.t; per_run : float }

let micro_tests () =
  let open Bechamel in
  let one name fn = { test = Test.make ~name (Staged.stage fn); per_run = 1. } in
  let heap_bench =
    (* Steady-state push+pop at depth 512: a sweep point keeps roughly one
       pending event per connection, so the representative cost includes a
       sift of depth ~9, not an empty-heap round trip. The rotating time
       keeps the inserted key landing at varied depths. *)
    let heap = Engine.Heap.create ~dummy:0 () in
    let () =
      for i = 1 to 512 do
        Engine.Heap.add heap ~time:(float_of_int (i * 7 mod 512)) 0
      done
    in
    let counter = ref 0 in
    one "engine: heap push+pop" (fun () ->
        incr counter;
        Engine.Heap.add heap ~time:(float_of_int (!counter * 7 mod 512)) 0;
        ignore (Engine.Heap.min_elt heap : int);
        Engine.Heap.drop_min heap)
  in
  let wheel_bench =
    (* The same steady-state body as the heap bench, on the timing wheel:
       depth 512, rotating key, so the two ns/op numbers are directly
       comparable. *)
    let wheel = Engine.Wheel.create ~dummy:0 () in
    let () =
      for i = 1 to 512 do
        Engine.Wheel.add wheel ~time:(float_of_int (i * 7 mod 512)) 0
      done
    in
    let counter = ref 0 in
    let base = ref 0 in
    one "engine: wheel push+pop" (fun () ->
        incr counter;
        (* The wheel's clock only moves forward; rebase the rotating key on
           the current minimum instead of wrapping to absolute time. *)
        if !counter land 511 = 0 then
          base := int_of_float (Engine.Wheel.min_time wheel);
        Engine.Wheel.add wheel
          ~time:(float_of_int (!base + (!counter * 7 mod 512)))
          0;
        ignore (Engine.Wheel.min_elt wheel : int);
        Engine.Wheel.drop_min wheel)
  in
  let sim_cycle_bench =
    (* Steady-state engine cycle: two schedules, one cancel, one fire (the
       fire also skips the previous iteration's cancelled entry), touching
       the pool free list and the queue without allocating. Runs on the
       default queue (the wheel); PR 3's number for this bench ran the
       heap. *)
    let sim = Engine.Sim.create () in
    let noop () = () in
    one "sim: schedule+cancel+fire cycle" (fun () ->
        let _h1 : Engine.Sim.handle = Engine.Sim.schedule_after sim ~delay:1.0 noop in
        let h2 = Engine.Sim.schedule_after sim ~delay:2.0 noop in
        Engine.Sim.cancel sim h2;
        ignore (Engine.Sim.step sim : bool))
  in
  let sim_fn_cycle_bench =
    (* The same cycle through the closure-free API: no closure built per
       schedule, payload carried in the pool's int array. *)
    let sim = Engine.Sim.create () in
    let noop_fn (_ : int) = () in
    one "sim: schedule_fn+cancel+fire cycle" (fun () ->
        let _h1 : Engine.Sim.handle = Engine.Sim.schedule_fn_after sim ~delay:1.0 noop_fn 0 in
        let h2 = Engine.Sim.schedule_fn_after sim ~delay:2.0 noop_fn 0 in
        Engine.Sim.cancel sim h2;
        ignore (Engine.Sim.step sim : bool))
  in
  let sim_deep kind name =
    (* Depth-512 self-rescheduling cohort (every event re-arms itself 512
       µs out): the queue discipline dominates, so this is where heap
       sift-depth and wheel bucketing actually separate. *)
    let sim = Engine.Sim.create ~queue:kind () in
    let rec fn _ = ignore (Engine.Sim.schedule_fn_after sim ~delay:512.0 fn 0 : Engine.Sim.handle) in
    let () =
      for _ = 1 to 512 do
        fn 0
      done
    in
    one name (fun () -> ignore (Engine.Sim.step sim : bool))
  in
  let sim_deep_heap_bench = sim_deep Engine.Equeue.Heap "sim: depth-512 fn step (heap)" in
  let sim_deep_wheel_bench = sim_deep Engine.Equeue.Wheel "sim: depth-512 fn step (wheel)" in
  let experiments_bench =
    (* End-to-end cost per simulated request: a tiny ZygOS point (the
       paper's default sweep config at scale 0.05) amortized over its
       measured request count. *)
    let requests = 1_500 in
    let cfg =
      Experiments.Run.config ~cores:4 ~conns:128 ~requests ~seed:1
        ~system:Experiments.Run.Zygos ~service:(Engine.Dist.exponential 10.) ()
    in
    {
      test =
        Test.make ~name:"experiments: ns per simulated request"
          (Staged.stage (fun () ->
               ignore (Experiments.Run.run_point cfg ~load:0.5 : Experiments.Run.point)));
      per_run = float_of_int requests;
    }
  in
  let rss = Net.Rss.create ~queues:16 () in
  let rss_bench =
    let counter = ref 0 in
    one "net: toeplitz RSS dispatch" (fun () ->
        incr counter;
        ignore (Net.Rss.queue_of_conn rss (!counter land 0x3ff) : int))
  in
  let tally = Stats.Tally.create () in
  let tally_bench = one "stats: tally record" (fun () -> Stats.Tally.record tally 12.5) in
  let histogram = Stats.Histogram.create () in
  let histogram_bench =
    (* Latency samples vary in magnitude, which defeats the branch/operand
       caching a constant argument would enjoy inside [log]-style code. *)
    let vals =
      Array.init 1024 (fun i -> 0.5 +. (float_of_int (i * 193 mod 1024) *. 0.73))
    in
    let counter = ref 0 in
    one "stats: histogram record" (fun () ->
        incr counter;
        Stats.Histogram.record histogram (Array.unsafe_get vals (!counter land 1023)))
  in
  let sched_bench =
    let module S = Core.Sched.Sim_sched in
    let sched = S.create ~cores:4 in
    let pcb = S.register sched ~conn:0 ~home:0 in
    one "core: shuffle deliver+dispatch+complete" (fun () ->
        S.deliver sched pcb ();
        match S.next_local sched ~core:0 with
        | Some (p, _, _) -> S.complete sched p
        | None -> assert false)
  in
  let btree = Silo.Btree.create () in
  let () =
    for i = 0 to 9_999 do
      ignore (Silo.Btree.insert btree (Silo.Key.of_int i) i : [ `Inserted | `Duplicate of int ])
    done
  in
  let btree_get_bench =
    let counter = ref 0 in
    one "silo: btree get (10k keys)" (fun () ->
        incr counter;
        ignore (Silo.Btree.get btree (Silo.Key.of_int (!counter mod 10_000))))
  in
  let btree_churn_bench =
    let counter = ref 0 in
    one "silo: btree insert+remove" (fun () ->
        incr counter;
        let key = Silo.Key.of_int (100_000 + (!counter mod 1024)) in
        ignore (Silo.Btree.insert btree key 0 : [ `Inserted | `Duplicate of int ]);
        ignore (Silo.Btree.remove btree key : int option))
  in
  let tpcc = Silo.Tpcc.load () in
  let worker = Silo.Db.worker (Silo.Tpcc.db tpcc) ~id:0 in
  let tpcc_rng = Engine.Rng.create ~seed:5 in
  let payment_bench =
    one "silo: TPC-C Payment transaction" (fun () ->
        ignore (Silo.Tpcc.execute tpcc worker tpcc_rng Silo.Tpcc.Payment : Silo.Tpcc.outcome))
  in
  let neworder_bench =
    one "silo: TPC-C NewOrder transaction" (fun () ->
        ignore (Silo.Tpcc.execute tpcc worker tpcc_rng Silo.Tpcc.New_order : Silo.Tpcc.outcome))
  in
  let store = Kvstore.Store.create ~capacity:10_000 () in
  let () = Kvstore.Store.set store "bench-key" "bench-value" in
  let kv_bench =
    let parser = Kvstore.Protocol.create_parser () in
    one "kvstore: parse+execute GET" (fun () ->
        match Kvstore.Protocol.feed parser "get bench-key\r\n" with
        | [ Ok cmd ] -> ignore (Kvstore.Protocol.execute store cmd : Kvstore.Protocol.response)
        | _ -> assert false)
  in
  [
    heap_bench;
    wheel_bench;
    sim_cycle_bench;
    sim_fn_cycle_bench;
    sim_deep_heap_bench;
    sim_deep_wheel_bench;
    experiments_bench;
    rss_bench;
    tally_bench;
    histogram_bench;
    sched_bench;
    btree_get_bench;
    btree_churn_bench;
    payment_bench;
    neworder_bench;
    kv_bench;
  ]

(* Minor-heap allocation of the end-to-end request path, amortized per
   simulated request (point setup and tally collection included). Not a
   Bechamel test — [Gc.minor_words] deltas around whole [run_point]
   calls; the unit is words, not ns, and the row is reported alongside
   the timing rows so the trajectory tracks allocation regressions the
   same way it tracks time regressions. *)
let words_per_request_row () =
  let requests = 1_500 in
  let cfg =
    Experiments.Run.config ~cores:4 ~conns:128 ~requests ~seed:1
      ~system:Experiments.Run.Zygos ~service:(Engine.Dist.exponential 10.) ()
  in
  let point () = ignore (Experiments.Run.run_point cfg ~load:0.5 : Experiments.Run.point) in
  point ();
  let iters = 3 in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    point ()
  done;
  let per_req = (Gc.minor_words () -. w0) /. float_of_int (iters * requests) in
  ("experiments: minor words per simulated request", per_req)

(* ns/op per microbenchmark, one Bechamel run each. *)
let micro_rows ~scale : (string * float) list =
  let open Bechamel in
  (* Floor of 1s per test regardless of sweep scale: the ns/op estimates
     (and the seed baselines they are compared against, measured at a 1s
     quota) need enough samples to be stable; scale only buys more beyond
     that. *)
  let quota = Time.second (Float.max 1.0 (0.5 *. scale)) in
  let cfg = Benchmark.cfg ~limit:1000 ~quota ~kde:None ~stabilize:false () in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  List.concat_map
    (fun { test; per_run } ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.fold
        (fun name bench acc ->
          let est = Analyze.one ols instance bench in
          let ns =
            match Analyze.OLS.estimates est with Some (x :: _) -> x | _ -> nan
          in
          (name, ns /. per_run) :: acc)
        results [])
    (micro_tests ())
  @ [ words_per_request_row () ]

let last_micro_rows : (string * float) list ref = ref []

let micro ~scale =
  Experiments.Output.print_header "Microbenchmarks (Bechamel, ns per operation)";
  let rows = micro_rows ~scale in
  last_micro_rows := rows;
  Experiments.Output.print_table ~columns:[ "operation"; "ns/op (words/req where noted)" ]
    ~rows:
      (List.sort compare
         (List.map (fun (name, ns) -> [ name; Printf.sprintf "%.1f" ns ]) rows))

(* ---- equeue: heap vs wheel at 1e3..1e6 pending events ---- *)

let last_equeue : (string * float) list ref = ref []

let equeue_bench ~jobs ~scale =
  ignore (jobs : int);
  let module E = Engine.Equeue in
  (* 1. Pop-order identity: both back ends must produce the same (time,
     seqno) pop sequence for an adversarial interleaving of adds and pops
     (duplicate times, past adds, far-future cascade targets). *)
  let assert_parity () =
    let rng = Engine.Rng.create ~seed:99 in
    let heap = E.create E.Heap and wheel = E.create E.Wheel in
    let n = 20_000 in
    let clock = ref 0. in
    for i = 0 to n - 1 do
      let t =
        match Engine.Rng.int rng 10 with
        | 0 -> !clock (* tie with the current minimum *)
        | 1 -> !clock +. 1e7 (* far future: multi-level cascade *)
        | 2 -> !clock +. (float_of_int (Engine.Rng.int rng 1000) /. 16.) (* sub-us ties *)
        | _ -> !clock +. float_of_int (Engine.Rng.int rng 4096)
      in
      E.add heap ~time:t i;
      E.add wheel ~time:t i;
      if Engine.Rng.int rng 3 = 0 then begin
        let th = E.min_time heap and tw = E.min_time wheel in
        let vh = E.min_elt heap and vw = E.min_elt wheel in
        if th <> tw || vh <> vw then
          failwith
            (Printf.sprintf "equeue parity: heap (%g, %d) <> wheel (%g, %d)" th vh tw vw);
        E.drop_min heap;
        E.drop_min wheel;
        clock := th
      end
    done;
    while not (E.is_empty heap) do
      let th = E.min_time heap and tw = E.min_time wheel in
      let vh = E.min_elt heap and vw = E.min_elt wheel in
      if th <> tw || vh <> vw then
        failwith (Printf.sprintf "equeue parity: heap (%g, %d) <> wheel (%g, %d)" th vh tw vw);
      E.drop_min heap;
      E.drop_min wheel
    done;
    if not (E.is_empty wheel) then failwith "equeue parity: wheel longer than heap"
  in
  assert_parity ();
  (* 2. Raw push+pop ns/op at growing pending-set sizes: the heap pays
     O(log n) sifts, the wheel O(1) bucket ops. Rotating relative delays
     keep the insert depth varied. *)
  let ops = max 200_000 (int_of_float (2e6 *. scale)) in
  let raw kind n =
    let q = E.create ~capacity:n kind in
    for i = 1 to n do
      E.add q ~time:(float_of_int (i * 7 mod n)) 0
    done;
    let t0 = Unix.gettimeofday () in
    for i = 1 to ops do
      let m = E.min_time q in
      ignore (E.min_elt q : int);
      E.drop_min q;
      E.add q ~time:(m +. float_of_int (i * 7 mod n)) 0
    done;
    let dt = Unix.gettimeofday () -. t0 in
    E.clear q;
    dt /. float_of_int ops *. 1e9
  in
  (* 3. Schedule+cancel+fire through Sim at depth n, per dispatch API:
     the cancel path exercises lazy deletion in both queues. *)
  let sim_cycle kind ~fn_api n =
    let sim = Engine.Sim.create ~queue:kind () in
    let noop () = () in
    let noop_fn (_ : int) = () in
    let rec keepalive _ =
      ignore (Engine.Sim.schedule_fn_after sim ~delay:(float_of_int n) keepalive 0 : Engine.Sim.handle)
    in
    for _ = 1 to n do
      keepalive 0
    done;
    let cycles = max 1 (ops / 4) in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to cycles do
      let h =
        if fn_api then Engine.Sim.schedule_fn_after sim ~delay:2.0 noop_fn 0
        else Engine.Sim.schedule_after sim ~delay:2.0 noop
      in
      Engine.Sim.cancel sim h;
      ignore (Engine.Sim.step sim : bool)
    done;
    let dt = Unix.gettimeofday () -. t0 in
    dt /. float_of_int cycles *. 1e9
  in
  let sizes =
    if scale >= 0.5 then [ 1_000; 10_000; 100_000; 1_000_000 ]
    else [ 1_000; 10_000; 100_000 ]
  in
  let rows = ref [] in
  let record name v = rows := (name, v) :: !rows in
  List.iter
    (fun n ->
      let h = raw E.Heap n and w = raw E.Wheel n in
      record (Printf.sprintf "heap push+pop @%d" n) h;
      record (Printf.sprintf "wheel push+pop @%d" n) w)
    sizes;
  let d = 512 in
  record "sim closure cycle @512 (heap)" (sim_cycle E.Heap ~fn_api:false d);
  record "sim closure cycle @512 (wheel)" (sim_cycle E.Wheel ~fn_api:false d);
  record "sim schedule_fn cycle @512 (heap)" (sim_cycle E.Heap ~fn_api:true d);
  record "sim schedule_fn cycle @512 (wheel)" (sim_cycle E.Wheel ~fn_api:true d);
  let rows = List.rev !rows in
  last_equeue := rows;
  Experiments.Output.print_header
    "Event queue: heap vs timing wheel (pop-order parity asserted, ns per op)";
  Experiments.Output.print_table
    ~columns:[ "benchmark"; "ns/op" ]
    ~rows:(List.map (fun (name, ns) -> [ name; Printf.sprintf "%.1f" ns ]) rows)

(* ---- sweep: sequential vs pooled wall clock on a fig6 slice ---- *)

let last_sweep_parallel : (string * float) list ref = ref []

let sweep_bench ~jobs ~scale =
  let module Run = Experiments.Run in
  let module Sweep = Experiments.Sweep in
  (* A representative Figure 6 slice: the exp/10µs panel, 5 systems x 9
     loads = 45 mutually independent points. *)
  let service = Engine.Dist.exponential 10. in
  let systems =
    [ Run.Model_central_fcfs; Run.Linux_floating; Run.Ix 1; Run.Zygos; Run.Zygos_no_interrupts ]
  in
  let loads = [ 0.2; 0.35; 0.5; 0.6; 0.7; 0.8; 0.85; 0.9; 0.95 ] in
  let points =
    List.concat_map
      (fun system ->
        List.map
          (fun load ->
            Sweep.point
              ~key:(Printf.sprintf "bench-sweep/%s/%g" (Run.system_name system) load)
              (fun ~seed ->
                let cfg =
                  Run.config ~system ~service ~cores:16
                    ~requests:(max 4_000 (int_of_float (25_000. *. scale)))
                    ~seed ()
                in
                let p = Run.run_point cfg ~load in
                (p.Run.throughput, p.Run.p99)))
          loads)
      systems
  in
  let workers = if jobs > 1 then jobs else Runtime.Pool.recommended_workers () in
  let seq, seq_stats = Sweep.run_with_stats ~jobs:1 ~seed:42 points in
  let par, par_stats = Sweep.run_with_stats ~jobs:workers ~seed:42 points in
  let parity = seq = par in
  let speedup =
    if par_stats.Runtime.Pool.wall_s > 0. then
      seq_stats.Runtime.Pool.wall_s /. par_stats.Runtime.Pool.wall_s
    else 1.
  in
  Experiments.Output.print_header
    "Sweep runner: sequential vs pooled execution (fig6 slice: exp, S = 10us)";
  Experiments.Output.print_table
    ~columns:[ "metric"; "value" ]
    ~rows:
      [
        [ "points"; string_of_int (List.length points) ];
        [ "workers"; string_of_int par_stats.Runtime.Pool.workers ];
        [ "sequential wall (s)"; Printf.sprintf "%.2f" seq_stats.Runtime.Pool.wall_s ];
        [ "pooled wall (s)"; Printf.sprintf "%.2f" par_stats.Runtime.Pool.wall_s ];
        [ "speedup"; Printf.sprintf "%.2fx" speedup ];
        [ "steals"; string_of_int par_stats.Runtime.Pool.steals ];
        [ "output parity"; (if parity then "byte-identical" else "MISMATCH") ];
      ];
  Experiments.Output.print_pool_stats par_stats;
  if not parity then failwith "sweep bench: pooled results differ from sequential";
  last_sweep_parallel :=
    [
      ("points", float_of_int (List.length points));
      ("workers", float_of_int par_stats.Runtime.Pool.workers);
      ("sequential_wall_s", seq_stats.Runtime.Pool.wall_s);
      ("pooled_wall_s", par_stats.Runtime.Pool.wall_s);
      ("speedup", speedup);
      ("steals", float_of_int par_stats.Runtime.Pool.steals);
    ]

(* ---- BENCH_PR8.json: the perf trajectory future PRs regress against ---- *)

let write_trajectory ~path ~scale ~micro ~wall_clock =
  let open Experiments.Output.Json in
  let number_map kvs = obj (List.map (fun (k, v) -> (k, num v)) kvs) in
  let improve_against baseline =
    List.filter_map
      (fun (name, base_ns) ->
        match List.assoc_opt name micro with
        | Some now_ns when Float.is_finite now_ns && now_ns > 0. ->
            Some (name, (base_ns -. now_ns) /. base_ns)
        | _ -> None)
      baseline
  in
  (* Ratios against a baseline recorded at a different ZYGOS_BENCH_SCALE
     are not comparisons of the same measurement (see the note above the
     baseline tables): emit the skip reason instead of the numbers. *)
  let gated key ~baseline_scale baseline =
    if scale = baseline_scale then [ (key, number_map (improve_against baseline)) ]
    else
      [
        ( key ^ "_skipped",
          str
            (Printf.sprintf "run at scale %g, baseline recorded at scale %g; rerun with ZYGOS_BENCH_SCALE=%g to compare"
               scale baseline_scale baseline_scale) );
      ]
  in
  let totals = Experiments.Sweep.read_totals () in
  let pool_totals =
    [
      ("sweeps", float_of_int totals.Experiments.Sweep.sweeps);
      ("points", float_of_int totals.Experiments.Sweep.points);
      ("steals", float_of_int totals.Experiments.Sweep.steals);
      ("busy_s", totals.Experiments.Sweep.busy_s);
      ("wall_s", totals.Experiments.Sweep.wall_s);
      ("workers", float_of_int totals.Experiments.Sweep.workers);
    ]
  in
  let doc =
    obj
      ([
        ("schema", str "zygos-bench/1");
        ("scale", num scale);
        ("micro_ns_per_op", number_map micro);
        ("targets_wall_clock_s", number_map wall_clock);
        ("seed_baseline_ns_per_op", number_map seed_baseline_ns);
        ("pr3_baseline_ns_per_op", number_map pr3_baseline_ns);
        ("pr4_baseline_ns_per_op", number_map pr4_baseline_ns);
        ("pr7_baseline_ns_per_op", number_map pr7_baseline_ns);
      ]
      @ gated "improvement_vs_seed" ~baseline_scale:seed_baseline_scale seed_baseline_ns
      @ gated "improvement_vs_pr3" ~baseline_scale:pr3_baseline_scale pr3_baseline_ns
      @ gated "improvement_vs_pr4" ~baseline_scale:pr4_baseline_scale pr4_baseline_ns
      @ gated "improvement_vs_pr7" ~baseline_scale:pr7_baseline_scale pr7_baseline_ns
      @ [
        ("equeue_ns_per_op", number_map !last_equeue);
        ("sweep_pool", number_map pool_totals);
        ("sweep_parallel", number_map !last_sweep_parallel);
      ])
  in
  let oc = open_out path in
  output_string oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s (%d microbenchmarks, %d targets)\n" path (List.length micro)
    (List.length wall_clock)

(* ---- target registry and driver ---- *)

let targets =
  Experiments.Figures.all_targets
  @ [
      ("micro", fun ~jobs ~scale -> ignore (jobs : int); micro ~scale);
      ("equeue", equeue_bench);
      ("sweep", sweep_bench);
    ]

(* Consume "-j N" / "--jobs N" / "-jN" / "--jobs=N" from the argument
   list; everything else is a target name (or --json). *)
let parse_jobs args =
  let rec go jobs acc = function
    | [] -> (jobs, List.rev acc)
    | ("-j" | "--jobs") :: v :: rest -> (
        match int_of_string_opt v with
        | Some j when j >= 1 -> go j acc rest
        | _ -> invalid_arg "-j expects a positive integer")
    | [ ("-j" | "--jobs") ] -> invalid_arg "-j expects a positive integer"
    | a :: rest when String.length a > 2 && String.sub a 0 2 = "-j" -> (
        match int_of_string_opt (String.sub a 2 (String.length a - 2)) with
        | Some j when j >= 1 -> go j acc rest
        | _ -> invalid_arg "-j expects a positive integer")
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--jobs=" -> (
        match int_of_string_opt (String.sub a 7 (String.length a - 7)) with
        | Some j when j >= 1 -> go j acc rest
        | _ -> invalid_arg "--jobs expects a positive integer")
    | a :: rest -> go jobs (a :: acc) rest
  in
  go default_jobs [] args

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json_mode = List.mem "--json" args in
  let args = List.filter (fun a -> a <> "--json") args in
  let jobs, args = parse_jobs args in
  let selected =
    match args with
    | [] | [ "all" ] -> List.map fst targets
    | names ->
        List.iter
          (fun n ->
            if not (List.mem_assoc n targets) then begin
              Printf.eprintf "unknown target %S; available: %s\n" n
                (String.concat ", " (List.map fst targets));
              exit 1
            end)
          names;
        names
  in
  (* --json needs the microbench table; run it even when only figure
     targets were selected explicitly. *)
  let selected =
    if json_mode && not (List.mem "micro" selected) then selected @ [ "micro" ] else selected
  in
  let selected =
    if json_mode && not (List.mem "equeue" selected) then selected @ [ "equeue" ] else selected
  in
  Printf.printf
    "ZygOS reproduction benchmarks (scale=%g, jobs=%d; ZYGOS_BENCH_SCALE / -j N to change)\n"
    scale jobs;
  Experiments.Sweep.reset_totals ();
  let wall_clock = ref [] in
  List.iter
    (fun name ->
      let t0 = Unix.gettimeofday () in
      (List.assoc name targets) ~jobs ~scale;
      let dt = Unix.gettimeofday () -. t0 in
      if name <> "micro" then wall_clock := (name, dt) :: !wall_clock;
      Printf.printf "\n[%s done in %.1fs]\n%!" name dt)
    selected;
  (let totals = Experiments.Sweep.read_totals () in
   if totals.Experiments.Sweep.points > 0 then
     Printf.eprintf
       "[sweep pool: %d points over %d sweeps, %d steals, busy %.1fs / wall %.1fs, max %d workers]\n"
       totals.Experiments.Sweep.points totals.Experiments.Sweep.sweeps
       totals.Experiments.Sweep.steals totals.Experiments.Sweep.busy_s
       totals.Experiments.Sweep.wall_s totals.Experiments.Sweep.workers);
  if json_mode then
    write_trajectory ~path:"BENCH_PR8.json" ~scale ~micro:!last_micro_rows
      ~wall_clock:(List.rev !wall_clock)
