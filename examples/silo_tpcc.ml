(* Run the real Silo engine under the TPC-C mix, print per-transaction
   service-time percentiles (the data behind Figure 10a) and verify the
   TPC-C consistency conditions afterwards.

   Run with:  dune exec examples/silo_tpcc.exe *)

let () =
  let n = 30_000 in
  Printf.printf "loading TPC-C (1 warehouse, small profile)...\n%!";
  let tpcc = Silo.Tpcc.load () in
  let worker = Silo.Db.worker (Silo.Tpcc.db tpcc) ~id:0 in
  let rng = Engine.Rng.create ~seed:2024 in
  let per_type = Hashtbl.create 8 in
  let tally_for tx =
    match Hashtbl.find_opt per_type tx with
    | Some t -> t
    | None ->
        let t = Stats.Tally.create () in
        Hashtbl.add per_type tx t;
        t
  in
  let rolled_back = ref 0 in
  (* This example *measures live execution*: wall-clock is the payload,
     not a determinism leak — TPS and per-tx latency are its output. *)
  let t0 = (Unix.gettimeofday () [@zygos.allow "determinism"]) in
  for _ = 1 to n do
    let tx = Silo.Tpcc.standard_mix rng in
    let s = (Unix.gettimeofday () [@zygos.allow "determinism"]) in
    (match Silo.Tpcc.execute tpcc worker rng tx with
    | Silo.Tpcc.Rolled_back -> incr rolled_back
    | Silo.Tpcc.Committed | Silo.Tpcc.Conflicted -> ());
    Stats.Tally.record
      (tally_for (Silo.Tpcc.tx_name tx))
      (((Unix.gettimeofday () [@zygos.allow "determinism"]) -. s) *. 1e6)
  done;
  let elapsed = (Unix.gettimeofday () [@zygos.allow "determinism"]) -. t0 in
  Printf.printf "%d transactions in %.2fs = %.0f TPS (%d intentional rollbacks)\n\n" n elapsed
    (float_of_int n /. elapsed) !rolled_back;
  Printf.printf "%-12s %8s %10s %10s %10s\n" "transaction" "count" "p50(us)" "p99(us)" "max(us)";
  Hashtbl.iter
    (fun tx tally ->
      Printf.printf "%-12s %8d %10.1f %10.1f %10.1f\n" tx (Stats.Tally.count tally)
        (Stats.Tally.p50 tally) (Stats.Tally.p99 tally) (Stats.Tally.max_value tally))
    per_type;
  let checks = Silo.Tpcc.consistency_check tpcc in
  let failed = List.filter (fun (_, ok) -> not ok) checks in
  Printf.printf "\nTPC-C consistency: %d/%d conditions hold\n"
    (List.length checks - List.length failed)
    (List.length checks);
  List.iter (fun (name, _) -> Printf.printf "  FAILED: %s\n" name) failed;
  if not (List.is_empty failed) then exit 1
