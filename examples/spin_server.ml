(* The paper's synthetic microbenchmark server (§3.1/§3.3), live and end
   to end: clients frame spin requests with the binary RPC codec, the
   stream is segmented into MTU packets and reassembled per connection
   (the §6.2 byte-stream reality), decoded requests run as real spin
   tasks on the ZygOS executor over OCaml domains, and responses are
   framed, "transmitted", and verified.

   Run with:  dune exec examples/spin_server.exe *)

module Framing = Net.Framing
module Spin = Net.Framing.Spin

let () =
  let cores = 4 and conns = 16 and requests = 400 in
  let rng = Engine.Rng.create ~seed:3 in
  (* Client side: build each connection's wire stream of framed requests,
     then chop everything into 64-byte "packets" to force fragmentation. *)
  let per_conn_reqs =
    Array.init conns (fun conn ->
        List.init (requests / conns) (fun i ->
            { Spin.id = (conn * 10_000) + i;
              spin_us = Engine.Rng.exponential rng ~mean:30. }))
  in
  let packets =
    Array.to_list per_conn_reqs
    |> List.mapi (fun conn reqs ->
           let stream = String.concat "" (List.map Spin.encode_request reqs) in
           List.map (fun p -> (conn, p)) (Framing.segment ~mtu:64 stream))
    |> List.concat
  in
  Printf.printf "%d requests framed into %d fragmented packets\n%!" requests
    (List.length packets);
  (* Server side: per-connection reassembly in front of the executor. *)
  let exec = Runtime.Executor.create ~cores ~conns () in
  Runtime.Executor.start exec;
  let reassemblers = Array.init conns (fun _ -> Framing.Reassembler.create ()) in
  let response_streams = Array.init conns (fun _ -> Buffer.create 256) in
  let stream_locks = Array.init conns (fun _ -> Mutex.create ()) in
  List.iter
    (fun (conn, packet) ->
      match Framing.Reassembler.feed reassemblers.(conn) packet with
      | Error e -> failwith e
      | Ok payloads ->
          List.iter
            (fun payload ->
              match Spin.decode_request payload with
              | Error e -> failwith e
              | Ok req ->
                  (* Each response stream is guarded by its per-connection
                     mutex; the arrays are fixed-shape and only indexed. *)
                  (Runtime.Executor.submit exec ~conn (fun () ->
                       Runtime.Spin.busy_wait_us (Float.min req.Spin.spin_us 100.);
                       Mutex.lock stream_locks.(conn);
                       Buffer.add_string response_streams.(conn) (Spin.encode_response req);
                       Mutex.unlock stream_locks.(conn))
                   [@zygos.owned]))
            payloads)
    packets;
  Runtime.Executor.stop exec;
  (* Client side again: decode every response stream and check ids came
     back complete and in order per connection. Written only after
     [Executor.stop]: the main domain owns it. *)
  let ok = (ref true [@zygos.owned]) in
  Array.iteri
    (fun conn buf ->
      let r = Framing.Reassembler.create () in
      let ids =
        match Framing.Reassembler.feed r (Buffer.contents buf) with
        | Ok payloads ->
            List.map
              (fun p -> match Spin.decode_response p with Ok id -> id | Error e -> failwith e)
              payloads
        | Error e -> failwith e
      in
      let expected = List.map (fun r -> r.Spin.id) per_conn_reqs.(conn) in
      if not (List.equal Int.equal ids expected) then begin
        ok := false;
        Printf.printf "conn %d: responses OUT OF ORDER or missing\n" conn
      end)
    response_streams;
  let stats = Runtime.Executor.stats exec in
  Printf.printf
    "served %d spin RPCs on %d domains (%d stolen batches, steal fraction %.1f%%)\n"
    stats.Runtime.Executor.executed cores stats.Runtime.Executor.stolen_batches
    (100. *. stats.Runtime.Executor.steal_fraction);
  Printf.printf "per-connection response ordering: %s\n" (if !ok then "OK" else "VIOLATED");
  if not !ok then exit 1
