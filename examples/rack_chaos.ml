(* Rack-tier chaos run: 4 ZygOS servers behind a JBSQ(32) ToR dispatcher,
   server 0 crashing mid-run, timeout-based detection + failover on.
   Mirrors the README's library example for the `rack` target. *)

let () =
  let cfg =
    Experiments.Rackrun.config ~servers:4 ~policy:(Cluster.Policy.Jbsq 32)
      ~service:(Engine.Dist.exponential 10.) ~feedback_delay:5.
      ~failplan:[ Cluster.Failplan.Crash { server = 0; start = 2e3; duration = 2e3 } ]
      ~detect:
        Cluster.Dispatch.
          { retry = Net.Loadgen.retry ~timeout:300. (); health = Cluster.Health.config () }
      ()
  in
  let p = Experiments.Rackrun.run cfg ~load:0.8 in
  Printf.printf "rack p99 %.1fus, throughput %.3f MRPS\n" p.Experiments.Run.p99
    p.Experiments.Run.throughput;
  List.iter
    (fun (k, v) ->
      if
        List.exists (String.equal k)
          [ "rack_failovers"; "health_detections"; "health_recoveries"; "rack_lost_requests" ]
      then Printf.printf "  %-18s %.0f\n" k v)
    p.Experiments.Run.info
