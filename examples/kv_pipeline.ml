(* memcached-protocol demo: requests arrive split across "packets"
   (arbitrary chunk boundaries), get framed by the resumable parser, and
   execute against the store — then a mini Figure-9 comparison of the
   systems on the ETC workload.

   Run with:  dune exec examples/kv_pipeline.exe *)

let () =
  let store = Kvstore.Store.create ~capacity:1024 () in
  let parser = Kvstore.Protocol.create_parser () in
  (* Two pipelined requests, deliberately fragmented mid-command and
     mid-data — the byte-stream reality of §6.2. *)
  let stream =
    [ "set user:1 0 0 5\r\nhel"; "lo\r\nget us"; "er:1\r\nget missing\r\n" ]
  in
  Printf.printf "feeding %d fragments:\n" (List.length stream);
  List.iter
    (fun chunk ->
      Printf.printf "  chunk %S -> " chunk;
      let commands = Kvstore.Protocol.feed parser chunk in
      if List.is_empty commands then Printf.printf "(incomplete, %d bytes buffered)\n"
          (Kvstore.Protocol.pending_bytes parser)
      else begin
        print_newline ();
        List.iter
          (fun cmd ->
            match cmd with
            | Ok cmd ->
                let response = Kvstore.Protocol.execute store cmd in
                Printf.printf "    %-30s => %s"
                  (String.escaped (Kvstore.Protocol.render_command cmd))
                  (String.escaped (Kvstore.Protocol.render_response ~cmd response));
                print_newline ()
            | Error e -> Printf.printf "    parse error: %s\n" e)
          commands
      end)
    stream;
  let stats = Kvstore.Store.stats store in
  Printf.printf "\nstore: %d entries, %d hits, %d misses, %d sets\n\n"
    (Kvstore.Store.size store) stats.Kvstore.Store.hits stats.Kvstore.Store.misses
    stats.Kvstore.Store.sets;

  (* Mini Figure 9: ETC-shaped tiny tasks across the four systems. *)
  let wl = Kvstore.Workload.create Kvstore.Workload.Etc in
  let service = Kvstore.Workload.service_dist wl ~samples:10_000 in
  (* Tiny tasks: per-request overheads dominate, so 30% of zero-overhead
     capacity is already a high absolute rate (several MRPS). *)
  Printf.printf "ETC workload, mean task %.2fus -- p99 at 30%% load:\n" (Engine.Dist.mean service);
  List.iter
    (fun system ->
      let cfg = Experiments.Run.config ~system ~service ~requests:20_000 () in
      let p = Experiments.Run.run_point cfg ~load:0.3 in
      Printf.printf "  %-16s p99 = %6.1fus  tput = %.2f MRPS\n"
        (Experiments.Run.system_name system)
        p.Experiments.Run.p99 p.Experiments.Run.throughput)
    [ Experiments.Run.Linux_floating; Experiments.Run.Ix 1; Experiments.Run.Ix 64;
      Experiments.Run.Zygos ]
