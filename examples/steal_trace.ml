(* Scheduling trace: watch the shuffle layer work — receive batches,
   local dispatches, steals, IPIs and remote transmissions — on a small
   machine under a short burst of load.

   Run with:  dune exec examples/steal_trace.exe *)

let () =
  let cores = 4 and conns = 64 in
  let sim = Engine.Sim.create () in
  let params = Systems.Params.default ~cores () in
  let rng = Engine.Rng.create ~seed:7 in
  let events = ref 0 in
  let trace at ev =
    incr events;
    if !events <= 40 then
      Format.printf "%8.2fus  %a@." at Systems.Zygos.pp_trace_event ev
  in
  let pool = Net.Request.create_pool ~recycle:true () in
  let gen =
    Net.Loadgen.create sim ~rng:(Engine.Rng.split rng) ~pool ~conns ~rate:1.2
      ~service:(Engine.Dist.exponential 10.) ()
  in
  let system =
    Systems.Zygos.create sim params ~rng:(Engine.Rng.split rng) ~pool ~conns
      ~respond:(fun req -> Net.Loadgen.complete gen req)
      ~trace ()
  in
  Net.Loadgen.set_target gen system.Systems.Iface.submit;
  Net.Loadgen.start gen ~warmup:0. ~measure:400.;
  Format.printf "first 40 scheduling events (4 cores, exp 10us tasks, 75%% load):@.@.";
  Engine.Sim.run sim;
  Format.printf "@.... %d events total.  counters:@." !events;
  List.iter (fun (k, v) -> Format.printf "  %-16s %g@." k v) (system.Systems.Iface.info ());
  assert (Net.Loadgen.order_violations gen = 0)
