(* Live multicore executor: the same shuffle-layer code the simulator
   models, running real spin-tasks on OCaml 5 domains with work stealing.

   Run with:  dune exec examples/runtime_demo.exe *)

let () =
  let cores = 4 and conns = 64 and tasks = 2_000 in
  let exec = Runtime.Executor.create ~cores ~conns () in
  Runtime.Executor.start exec;
  let rng = Engine.Rng.create ~seed:31 in
  (* Per-connection completion logs to verify the §4.3 ordering guarantee:
     tasks of one connection must finish in submission order even when
     stolen by other workers. *)
  let logs = Array.init conns (fun _ -> Atomic.make []) in
  let submitted = Array.make conns 0 in
  let t0 = Runtime.Spin.now_us () in
  for _ = 1 to tasks do
    let conn = Engine.Rng.int rng conns in
    let seqno = submitted.(conn) in
    submitted.(conn) <- seqno + 1;
    let us = Engine.Rng.exponential rng ~mean:20. in
    (* Each completion log is an Atomic cell; the [logs] array itself is
       fixed-shape and only indexed, never written across domains. *)
    (Runtime.Executor.submit exec ~conn (fun () ->
         Runtime.Spin.busy_wait_us us;
         let log = logs.(conn) in
         let rec push () =
           let old = Atomic.get log in
           if not (Atomic.compare_and_set log old (seqno :: old)) then push ()
         in
         push ())
     [@zygos.owned])
  done;
  Runtime.Executor.stop exec;
  let elapsed_ms = (Runtime.Spin.now_us () -. t0) /. 1000. in
  let stats = Runtime.Executor.stats exec in
  Printf.printf "executed %d/%d tasks on %d domains in %.1f ms\n"
    stats.Runtime.Executor.executed stats.Runtime.Executor.submitted cores elapsed_ms;
  Printf.printf "batches: %d local, %d stolen (steal fraction %.1f%%)\n"
    stats.Runtime.Executor.local_batches stats.Runtime.Executor.stolen_batches
    (100. *. stats.Runtime.Executor.steal_fraction);
  (* Written only after [Executor.stop]: the main domain owns it. *)
  let ordered = (ref true [@zygos.owned]) in
  Array.iteri
    (fun conn log ->
      let finished = List.rev (Atomic.get log) in
      let expected = List.init submitted.(conn) Fun.id in
      if not (List.equal Int.equal finished expected) then begin
        ordered := false;
        Printf.printf "conn %d completed OUT OF ORDER\n" conn
      end)
    logs;
  Printf.printf "per-connection ordering: %s\n" (if !ordered then "OK" else "VIOLATED");
  if not !ordered then exit 1
