(* Tests for lib/kvstore: the bounded store with CLOCK eviction, the
   resumable memcached protocol parser (framing property tests), and the
   ETC/USR workload generators. *)

module Store = Kvstore.Store
module Protocol = Kvstore.Protocol
module Workload = Kvstore.Workload

(* ---- Store ---- *)

let test_store_basics () =
  let s = Store.create ~capacity:16 () in
  Alcotest.(check (option string)) "miss" None (Store.get s "k");
  Store.set s "k" "v";
  Alcotest.(check (option string)) "hit" (Some "v") (Store.get s "k");
  Store.set s "k" "v2";
  Alcotest.(check (option string)) "overwrite" (Some "v2") (Store.get s "k");
  Alcotest.(check int) "size" 1 (Store.size s);
  Alcotest.(check bool) "delete" true (Store.delete s "k");
  Alcotest.(check bool) "delete again" false (Store.delete s "k");
  Alcotest.(check (option string)) "gone" None (Store.get s "k")

let test_store_stats () =
  let s = Store.create ~capacity:16 () in
  Store.set s "a" "1";
  ignore (Store.get s "a" : string option);
  ignore (Store.get s "b" : string option);
  let st = Store.stats s in
  Alcotest.(check int) "hits" 1 st.Store.hits;
  Alcotest.(check int) "misses" 1 st.Store.misses;
  Alcotest.(check int) "sets" 1 st.Store.sets

let test_store_eviction_bounded () =
  let s = Store.create ~capacity:8 () in
  for i = 0 to 99 do
    Store.set s (string_of_int i) "v"
  done;
  Alcotest.(check bool) "bounded" true (Store.size s <= 8);
  Alcotest.(check bool) "evictions counted" true ((Store.stats s).Store.evictions >= 92)

let test_store_clock_second_chance () =
  (* A key referenced between fills should survive one eviction pass in
     preference to never-referenced keys. *)
  let s = Store.create ~capacity:4 () in
  List.iter (fun k -> Store.set s k "v") [ "a"; "b"; "c"; "d" ];
  (* Clear reference bits via one eviction, then re-reference "a". *)
  Store.set s "e" "v" (* evicts something, clears some bits *);
  if Store.mem s "a" then begin
    ignore (Store.get s "a" : string option);
    (* Now "a" is referenced; inserting more should prefer other victims
       at least once. *)
    Store.set s "f" "v";
    Alcotest.(check bool) "referenced key survives one pass" true (Store.mem s "a")
  end

let prop_store_capacity_respected =
  QCheck.Test.make ~name:"store never exceeds capacity" ~count:100
    QCheck.(list_of_size Gen.(1 -- 200) (string_of_size (Gen.int_range 1 8)))
    (fun keys ->
      let s = Store.create ~capacity:16 () in
      List.iter (fun k -> Store.set s k "v") keys;
      Store.size s <= 16)

(* ---- Protocol ---- *)

let feed_all parser chunks = List.concat_map (Protocol.feed parser) chunks

let test_protocol_simple_commands () =
  let p = Protocol.create_parser () in
  match feed_all p [ "get foo\r\nset bar 1 0 3\r\nxyz\r\ndelete foo\r\n" ] with
  | [ Ok (Protocol.Get "foo"); Ok (Protocol.Set { key = "bar"; flags = 1; data = "xyz"; _ });
      Ok (Protocol.Delete "foo") ] ->
      ()
  | other -> Alcotest.failf "unexpected parse: %d results" (List.length other)

let test_protocol_fragmented () =
  let p = Protocol.create_parser () in
  let r1 = Protocol.feed p "se" in
  Alcotest.(check int) "incomplete line" 0 (List.length r1);
  let r2 = Protocol.feed p "t k 0 0 5\r\nhe" in
  Alcotest.(check int) "incomplete data" 0 (List.length r2);
  Alcotest.(check bool) "bytes pending" true (Protocol.pending_bytes p > 0);
  match Protocol.feed p "llo\r\n" with
  | [ Ok (Protocol.Set { key = "k"; data = "hello"; _ }) ] -> ()
  | _ -> Alcotest.fail "fragmented set not reassembled"

let test_protocol_compact_bounded () =
  (* 100k tiny commands through one parser: the consumed prefix must be
     reclaimed continuously, so neither the pending bytes nor the backing
     buffer may grow with the command count. *)
  let p = Protocol.create_parser () in
  let n = ref 0 in
  for i = 0 to 99_999 do
    Protocol.feed_iter p
      (Printf.sprintf "get key%d\r\n" (i mod 1000))
      (function Ok (Protocol.Get _) -> incr n | _ -> Alcotest.fail "bad parse");
    if Protocol.pending_bytes p > 0 then Alcotest.fail "whole commands left pending"
  done;
  Alcotest.(check int) "all parsed" 100_000 !n;
  Alcotest.(check bool)
    (Printf.sprintf "capacity %d stays at the initial size" (Protocol.buffer_capacity p))
    true
    (Protocol.buffer_capacity p <= 256)

let test_protocol_compact_straddling () =
  (* Same bound when every command straddles a chunk boundary and the
     parser must hold partial lines across feeds. *)
  let p = Protocol.create_parser () in
  let wire = Buffer.create 4096 in
  for i = 0 to 9_999 do
    Buffer.add_string wire (Printf.sprintf "set k%d 0 0 3\r\nabc\r\n" (i mod 100))
  done;
  let wire = Buffer.contents wire in
  let n = ref 0 and i = ref 0 in
  while !i < String.length wire do
    let len = min 7 (String.length wire - !i) in
    Protocol.feed_iter p (String.sub wire !i len) (function
      | Ok (Protocol.Set _) -> incr n
      | _ -> Alcotest.fail "bad parse");
    i := !i + len
  done;
  Alcotest.(check int) "all parsed" 10_000 !n;
  Alcotest.(check int) "nothing pending" 0 (Protocol.pending_bytes p);
  Alcotest.(check bool) "capacity bounded" true (Protocol.buffer_capacity p <= 256)

let test_protocol_errors () =
  let p = Protocol.create_parser () in
  (match Protocol.feed p "bogus command here\r\nget ok\r\n" with
  | [ Error _; Ok (Protocol.Get "ok") ] -> ()
  | _ -> Alcotest.fail "error recovery failed");
  (match Protocol.feed p "set k x y z\r\n" with
  | [ Error _ ] -> ()
  | _ -> Alcotest.fail "bad set args accepted");
  match Protocol.feed p "set k 0 0 3\r\nabcXX" with
  | [ Error _ ] -> ()
  | _ -> Alcotest.fail "missing CRLF after data accepted"

let command_gen =
  QCheck.Gen.(
    let key = map (fun n -> Printf.sprintf "key%d" (abs n mod 1000)) int in
    let data = string_size ~gen:(char_range 'a' 'z') (int_range 0 64) in
    frequency
      [
        (5, map (fun k -> Protocol.Get k) key);
        (3, map2 (fun k d -> Protocol.Set { key = k; flags = 0; exptime = 0; data = d }) key data);
        (1, map (fun k -> Protocol.Delete k) key);
      ])

let prop_protocol_roundtrip_chunked =
  (* Render a command list to bytes, split at random boundaries, feed the
     chunks, and require the same commands back — the framing property at
     the heart of §6.2's byte-stream discussion. *)
  QCheck.Test.make ~name:"render/parse roundtrip under random chunking" ~count:300
    (QCheck.make
       QCheck.Gen.(pair (list_size (int_range 1 12) command_gen) (int_range 1 7))
       ~print:(fun (cmds, n) -> Printf.sprintf "%d cmds, chunk %d" (List.length cmds) n))
    (fun (cmds, chunk_size) ->
      let wire = String.concat "" (List.map Protocol.render_command cmds) in
      let parser = Protocol.create_parser () in
      let parsed = ref [] in
      let i = ref 0 in
      while !i < String.length wire do
        let len = min chunk_size (String.length wire - !i) in
        parsed := List.rev_append (Protocol.feed parser (String.sub wire !i len)) !parsed;
        i := !i + len
      done;
      let parsed = List.rev !parsed in
      let ok = List.for_all (function Ok _ -> true | Error _ -> false) parsed in
      ok
      && List.map (function Ok c -> c | Error _ -> assert false) parsed = cmds
      && Protocol.pending_bytes parser = 0)

let test_protocol_execute_and_render () =
  let store = Store.create ~capacity:16 () in
  let set = Protocol.Set { key = "k"; flags = 7; exptime = 0; data = "hello" } in
  Alcotest.(check string) "stored" "STORED\r\n"
    (Protocol.render_response ~cmd:set (Protocol.execute store set));
  let get = Protocol.Get "k" in
  Alcotest.(check string) "value" "VALUE k 0 5\r\nhello\r\nEND\r\n"
    (Protocol.render_response ~cmd:get (Protocol.execute store get));
  let miss = Protocol.Get "nope" in
  Alcotest.(check string) "miss is bare END" "END\r\n"
    (Protocol.render_response ~cmd:miss (Protocol.execute store miss));
  let del = Protocol.Delete "k" in
  Alcotest.(check string) "deleted" "DELETED\r\n"
    (Protocol.render_response ~cmd:del (Protocol.execute store del));
  Alcotest.(check string) "delete miss" "NOT_FOUND\r\n"
    (Protocol.render_response ~cmd:del (Protocol.execute store del))

(* ---- Workload ---- *)

let test_workload_get_fractions () =
  let rng = Engine.Rng.create ~seed:5 in
  List.iter
    (fun kind ->
      let wl = Workload.create ~records:1_000 kind in
      let n = 20_000 in
      let gets = ref 0 in
      for _ = 1 to n do
        match Workload.next_command wl rng with
        | Protocol.Get _ -> incr gets
        | Protocol.Set _ | Protocol.Delete _ -> ()
      done;
      let frac = float_of_int !gets /. float_of_int n in
      if abs_float (frac -. Workload.get_fraction kind) > 0.01 then
        Alcotest.failf "%s GET fraction %.3f" (Workload.name kind) frac)
    [ Workload.Etc; Workload.Usr ]

let test_workload_usr_value_sizes () =
  let rng = Engine.Rng.create ~seed:6 in
  let wl = Workload.create ~records:1_000 Workload.Usr in
  for _ = 1 to 2_000 do
    match Workload.next_command wl rng with
    | Protocol.Set { data; _ } ->
        Alcotest.(check int) "USR values are 2 bytes" 2 (String.length data)
    | Protocol.Get _ | Protocol.Delete _ -> ()
  done

let test_workload_zipf_skew () =
  let rng = Engine.Rng.create ~seed:7 in
  let wl = Workload.create ~records:10_000 Workload.Etc in
  let counts = Hashtbl.create 64 in
  for _ = 1 to 50_000 do
    match Workload.next_command wl rng with
    | Protocol.Get k | Protocol.Delete k | Protocol.Set { key = k; _ } ->
        Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  (* Zipf: a handful of keys dominate. *)
  let top = Hashtbl.fold (fun _ n acc -> max n acc) counts 0 in
  Alcotest.(check bool) "popular key dominates" true (top > 50_000 / 100)

let test_workload_populate_and_service () =
  let wl = Workload.create ~records:500 Workload.Etc in
  let store = Store.create ~capacity:1_000 () in
  Workload.populate wl store;
  Alcotest.(check int) "populated" 500 (Store.size store);
  let dist = Workload.service_dist wl ~samples:5_000 in
  let mean = Engine.Dist.mean dist in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.2fus < 2us (paper: memcached < 2us tasks)" mean)
    true (mean < 2.)

let () =
  Alcotest.run "kvstore"
    [
      ( "store",
        [
          Alcotest.test_case "basics" `Quick test_store_basics;
          Alcotest.test_case "stats" `Quick test_store_stats;
          Alcotest.test_case "eviction bounded" `Quick test_store_eviction_bounded;
          Alcotest.test_case "clock second chance" `Quick test_store_clock_second_chance;
          QCheck_alcotest.to_alcotest prop_store_capacity_respected;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "simple commands" `Quick test_protocol_simple_commands;
          Alcotest.test_case "fragmented" `Quick test_protocol_fragmented;
          Alcotest.test_case "errors" `Quick test_protocol_errors;
          Alcotest.test_case "compaction bounds the buffer" `Quick
            test_protocol_compact_bounded;
          Alcotest.test_case "compaction under straddling chunks" `Quick
            test_protocol_compact_straddling;
          QCheck_alcotest.to_alcotest prop_protocol_roundtrip_chunked;
          Alcotest.test_case "execute/render" `Quick test_protocol_execute_and_render;
        ] );
      ( "workload",
        [
          Alcotest.test_case "get fractions" `Quick test_workload_get_fractions;
          Alcotest.test_case "usr value sizes" `Quick test_workload_usr_value_sizes;
          Alcotest.test_case "zipf skew" `Quick test_workload_zipf_skew;
          Alcotest.test_case "populate + service dist" `Quick test_workload_populate_and_service;
        ] );
    ]
