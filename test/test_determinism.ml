(* Fixed-seed sweep determinism regression.

   The golden values below were captured from the seed implementation of
   the engine (boxed heap entries, per-event record allocation) before the
   SoA-heap/event-pool rewrite. The rewrite must not change simulation
   results at all: the same seeds must yield byte-identical points —
   throughput, every percentile, completion counts and ordering-violation
   counts. Floats are written as hex literals so the comparison is exact,
   with no parsing round-trip. *)

module Run = Experiments.Run

type golden = {
  g_system : Run.system_kind;
  g_load : float;
  g_throughput : float;
  g_mean : float;
  g_p50 : float;
  g_p99 : float;
  g_p999 : float;
  g_completed : int;
  g_order_violations : int;
}

(* Captured with: cores=4, conns=64, requests=2000, seed=7,
   service=exponential(10µs), loads [0.3; 0.7]. *)
let goldens =
  [
    {
      g_system = Run.Linux_floating;
      g_load = 0x1.3333333333333p-2;
      g_throughput = 0x1.ebc408d8ec95bp-4;
      g_mean = 0x1.74eadee7b14a4p+4;
      g_p50 = 0x1.39579c55f8ep+4;
      g_p99 = 0x1.2601f37c6448p+6;
      g_p999 = 0x1.d2acf2a279c8p+6;
      g_completed = 1999;
      g_order_violations = 0;
    };
    {
      g_system = Run.Linux_floating;
      g_load = 0x1.6666666666666p-1;
      g_throughput = 0x1.b6ae7d566cf41p-3;
      g_mean = 0x1.8e5635b17d5edp+10;
      g_p50 = 0x1.565c2baa49992p+10;
      g_p99 = 0x1.0cbad8934c1a1p+12;
      g_p999 = 0x1.279f551cda5c2p+12;
      g_completed = 1999;
      g_order_violations = 0;
    };
    {
      g_system = Run.Ix 1;
      g_load = 0x1.3333333333333p-2;
      g_throughput = 0x1.eb851eb851eb8p-4;
      g_mean = 0x1.094fd32f8c5dp+4;
      g_p50 = 0x1.5e994770758p+3;
      g_p99 = 0x1.5ca89f6599ap+6;
      g_p999 = 0x1.1ca014b55dep+7;
      g_completed = 1999;
      g_order_violations = 0;
    };
    {
      g_system = Run.Ix 1;
      g_load = 0x1.6666666666666p-1;
      g_throughput = 0x1.1d92b7fe08aefp-2;
      g_mean = 0x1.933c516e9f8b8p+5;
      g_p50 = 0x1.edd4469b7d5p+4;
      g_p99 = 0x1.edb39613e19p+7;
      g_p999 = 0x1.24c9d3ea0fdfp+8;
      g_completed = 1999;
      g_order_violations = 0;
    };
    {
      g_system = Run.Zygos;
      g_load = 0x1.3333333333333p-2;
      g_throughput = 0x1.eb851eb851eb8p-4;
      g_mean = 0x1.a00e003005d62p+3;
      g_p50 = 0x1.343cdabca5p+3;
      g_p99 = 0x1.a4414cec587p+5;
      g_p999 = 0x1.63ef50baa9ap+6;
      g_completed = 1999;
      g_order_violations = 0;
    };
    {
      g_system = Run.Zygos;
      g_load = 0x1.6666666666666p-1;
      g_throughput = 0x1.1f94855da2728p-2;
      g_mean = 0x1.955e912d2b1bcp+4;
      g_p50 = 0x1.36e46feb95dp+4;
      g_p99 = 0x1.9c9d9c67c648p+6;
      g_p999 = 0x1.82ab03f713b2p+7;
      g_completed = 1999;
      g_order_violations = 0;
    };
  ]

let exact = Alcotest.testable (fun ppf x -> Format.fprintf ppf "%h" x) Float.equal

let test_fixed_seed_sweep () =
  let service = Engine.Dist.exponential 10. in
  List.iter
    (fun system ->
      let cfg =
        Run.config ~cores:4 ~conns:64 ~requests:2_000 ~seed:7 ~system ~service ()
      in
      let expected = List.filter (fun g -> g.g_system = system) goldens in
      let points = Run.sweep cfg ~loads:(List.map (fun g -> g.g_load) expected) in
      List.iter2
        (fun g (p : Run.point) ->
          let ctx fmt =
            Printf.sprintf "%s load=%g %s" (Run.system_name system) g.g_load fmt
          in
          Alcotest.check exact (ctx "throughput") g.g_throughput p.Run.throughput;
          Alcotest.check exact (ctx "mean") g.g_mean p.Run.mean;
          Alcotest.check exact (ctx "p50") g.g_p50 p.Run.p50;
          Alcotest.check exact (ctx "p99") g.g_p99 p.Run.p99;
          Alcotest.check exact (ctx "p999") g.g_p999 p.Run.p999;
          Alcotest.(check int) (ctx "completed") g.g_completed p.Run.completed;
          Alcotest.(check int) (ctx "order_violations") g.g_order_violations
            p.Run.order_violations)
        expected points)
    [ Run.Linux_floating; Run.Ix 1; Run.Zygos ]

let test_sweep_is_repeatable () =
  (* Two runs of the same config in one process must agree exactly (no
     hidden global state in the pooled engine). *)
  let service = Engine.Dist.exponential 10. in
  let cfg = Run.config ~cores:4 ~conns:32 ~requests:500 ~seed:3 ~system:Run.Zygos ~service () in
  let a = Run.run_point cfg ~load:0.6 in
  let b = Run.run_point cfg ~load:0.6 in
  Alcotest.check exact "throughput" a.Run.throughput b.Run.throughput;
  Alcotest.check exact "p99" a.Run.p99 b.Run.p99;
  Alcotest.(check int) "completed" a.Run.completed b.Run.completed

let () =
  Alcotest.run "determinism"
    [
      ( "fixed-seed sweep",
        [
          Alcotest.test_case "golden points across engine rewrite" `Quick
            test_fixed_seed_sweep;
          Alcotest.test_case "same-process repeatability" `Quick test_sweep_is_repeatable;
        ] );
    ]
