(* The parallel sweep runner: pool correctness, deterministic seed
   derivation, and the acceptance property of PR 3 — figure output at any
   -j is byte-identical to the sequential run. *)

module Pool = Runtime.Pool
module Sweep = Experiments.Sweep
module Figures = Experiments.Figures
module Output = Experiments.Output

(* ---- Pool ---- *)

let test_pool_results_in_order () =
  List.iter
    (fun workers ->
      let n = 100 in
      let tasks = Array.init n (fun i () -> i * i) in
      let results, stats = Pool.run ~workers ~tasks in
      Alcotest.(check (array int))
        (Printf.sprintf "workers=%d" workers)
        (Array.init n (fun i -> i * i))
        results;
      Alcotest.(check int) "points" n stats.Pool.points;
      Alcotest.(check int) "run_counts sum" n (Array.fold_left ( + ) 0 stats.Pool.run_counts))
    [ 1; 2; 3; 8; 200 ]

let test_pool_runs_each_task_once () =
  let n = 64 in
  let counts = Array.init n (fun _ -> Atomic.make 0) in
  let tasks = Array.init n (fun i () -> Atomic.incr counts.(i)) in
  let _, _ = Pool.run ~workers:4 ~tasks in
  Array.iteri
    (fun i c ->
      Alcotest.(check int) (Printf.sprintf "task %d runs once" i) 1 (Atomic.get c))
    counts

let test_pool_propagates_exception () =
  let tasks =
    Array.init 16 (fun i () -> if i = 13 then failwith "boom" else ())
  in
  (* The failing run still executes everything else before re-raising. *)
  let survivors = Atomic.make 0 in
  let tasks =
    Array.mapi
      (fun i task ->
        fun () ->
          task ();
          if i <> 13 then Atomic.incr survivors)
      tasks
  in
  (match Pool.run ~workers:3 ~tasks with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure m -> Alcotest.(check string) "message" "boom" m);
  Alcotest.(check int) "other tasks still ran" 15 (Atomic.get survivors)

let test_pool_rejects_bad_workers () =
  match Pool.run ~workers:0 ~tasks:[| (fun () -> ()) |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ---- Seed derivation ---- *)

let test_point_seed_deterministic () =
  let s1 = Sweep.point_seed ~seed:42 ~key:"fig6/exp/10/zygos/0.8" in
  let s2 = Sweep.point_seed ~seed:42 ~key:"fig6/exp/10/zygos/0.8" in
  Alcotest.(check int) "same (seed, key) -> same seed" s1 s2;
  Alcotest.(check bool) "seed is non-negative" true (s1 >= 0);
  let other = Sweep.point_seed ~seed:43 ~key:"fig6/exp/10/zygos/0.8" in
  Alcotest.(check bool) "master seed decorrelates" true (s1 <> other)

let test_point_seeds_collision_free =
  (* Any set of distinct keys must derive distinct seeds: the 63-bit
     output space makes an honest-mixer collision over a few dozen keys
     essentially impossible, so a collision means the hash lost input
     bits. *)
  QCheck.Test.make ~name:"derived seeds are collision-free over distinct keys" ~count:200
    QCheck.(pair small_int (small_list (string_of_size Gen.(1 -- 40))))
    (fun (seed, keys) ->
      let keys = List.sort_uniq compare keys in
      let seeds = List.map (fun key -> Sweep.point_seed ~seed ~key) keys in
      List.length (List.sort_uniq compare seeds) = List.length keys)

let test_point_seeds_order_independent =
  QCheck.Test.make ~name:"derived seed ignores enumeration order" ~count:100
    QCheck.(small_list (string_of_size Gen.(1 -- 40)))
    (fun keys ->
      let forward = List.map (fun key -> (key, Sweep.point_seed ~seed:7 ~key)) keys in
      let backward =
        List.rev_map (fun key -> (key, Sweep.point_seed ~seed:7 ~key)) (List.rev keys)
      in
      forward = backward)

let test_sweep_results_independent_of_jobs () =
  let points =
    List.init 37 (fun i ->
        Sweep.point ~key:(Printf.sprintf "p%d" i) (fun ~seed -> (i, seed)))
  in
  let expected = Sweep.run ~jobs:1 ~seed:5 points in
  List.iter
    (fun jobs ->
      let got = Sweep.run ~jobs ~seed:5 points in
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "jobs=%d" jobs)
        expected got)
    [ 2; 4; 8 ]

(* ---- Figure output parity (the CI-enforced acceptance property) ---- *)

let render_figure target ~jobs =
  match List.assoc_opt target Figures.all_targets with
  | None -> Alcotest.failf "no such target %s" target
  | Some f -> Output.capture (fun () -> f ~jobs ~scale:0.01)

let test_figure_parity () =
  List.iter
    (fun target ->
      let sequential = render_figure target ~jobs:1 in
      Alcotest.(check bool)
        (Printf.sprintf "%s renders something" target)
        true
        (String.length sequential > 0);
      List.iter
        (fun jobs ->
          let parallel = render_figure target ~jobs in
          Alcotest.(check string)
            (Printf.sprintf "%s at -j %d is byte-identical to sequential" target jobs)
            sequential parallel)
        [ 4; 8 ])
    [ "ablate-batch"; "ablate-poll"; "fig2" ]

let () =
  Alcotest.run "sweep"
    [
      ( "pool",
        [
          Alcotest.test_case "results in task order" `Quick test_pool_results_in_order;
          Alcotest.test_case "each task runs exactly once" `Quick
            test_pool_runs_each_task_once;
          Alcotest.test_case "exceptions propagate after join" `Quick
            test_pool_propagates_exception;
          Alcotest.test_case "workers < 1 rejected" `Quick test_pool_rejects_bad_workers;
        ] );
      ( "seed derivation",
        [
          Alcotest.test_case "deterministic in (seed, key)" `Quick
            test_point_seed_deterministic;
          QCheck_alcotest.to_alcotest test_point_seeds_collision_free;
          QCheck_alcotest.to_alcotest test_point_seeds_order_independent;
          Alcotest.test_case "sweep results independent of jobs" `Quick
            test_sweep_results_independent_of_jobs;
        ] );
      ( "figure parity",
        [
          Alcotest.test_case "figures byte-identical at -j 1/4/8" `Slow test_figure_parity;
        ] );
    ]
