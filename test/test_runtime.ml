(* Tests for lib/runtime: the live OCaml-domains executor — completion,
   per-connection ordering under stealing, lifecycle errors — and the spin
   helper. *)

module Executor = Runtime.Executor
module Spin = Runtime.Spin

let test_executes_everything () =
  let exec = Executor.create ~cores:3 ~conns:10 () in
  Executor.start exec;
  let counter = Atomic.make 0 in
  for i = 0 to 499 do
    Executor.submit exec ~conn:(i mod 10) (fun () ->
        ignore (Atomic.fetch_and_add counter 1 : int))
  done;
  Executor.stop exec;
  Alcotest.(check int) "all ran" 500 (Atomic.get counter);
  let stats = Executor.stats exec in
  Alcotest.(check int) "submitted" 500 stats.Executor.submitted;
  Alcotest.(check int) "executed" 500 stats.Executor.executed

let test_per_conn_ordering () =
  let conns = 6 and per_conn = 200 in
  let exec = Executor.create ~cores:4 ~conns () in
  Executor.start exec;
  let logs = Array.init conns (fun _ -> Atomic.make []) in
  for seq = 0 to per_conn - 1 do
    for conn = 0 to conns - 1 do
      Executor.submit exec ~conn (fun () ->
          (* A little jitter to provoke stealing interleavings. *)
          if seq land 15 = 0 then Spin.busy_wait_us 50.;
          let log = logs.(conn) in
          let rec push () =
            let old = Atomic.get log in
            if not (Atomic.compare_and_set log old (seq :: old)) then push ()
          in
          push ())
    done
  done;
  Executor.stop exec;
  Array.iteri
    (fun conn log ->
      let got = List.rev (Atomic.get log) in
      if got <> List.init per_conn Fun.id then Alcotest.failf "conn %d out of order" conn)
    logs

let test_lifecycle_errors () =
  let exec = Executor.create ~cores:2 ~conns:2 () in
  Executor.start exec;
  Alcotest.check_raises "double start" (Invalid_argument "Executor.start: already started")
    (fun () -> Executor.start exec);
  Alcotest.check_raises "bad conn" (Invalid_argument "Executor.submit: conn out of range")
    (fun () -> Executor.submit exec ~conn:5 (fun () -> ()));
  Executor.stop exec;
  Executor.stop exec (* idempotent *);
  Alcotest.check_raises "submit after stop" (Invalid_argument "Executor.submit: executor stopped")
    (fun () -> Executor.submit exec ~conn:0 (fun () -> ()))

let test_create_validation () =
  Alcotest.check_raises "cores" (Invalid_argument "Executor.create: cores < 1") (fun () ->
      ignore (Executor.create ~cores:0 ~conns:1 () : Executor.t));
  Alcotest.check_raises "conns" (Invalid_argument "Executor.create: conns < 1") (fun () ->
      ignore (Executor.create ~cores:1 ~conns:0 () : Executor.t))

let test_drain_blocks_until_done () =
  let exec = Executor.create ~cores:2 ~conns:2 () in
  Executor.start exec;
  let done_flag = Atomic.make false in
  Executor.submit exec ~conn:0 (fun () ->
      Spin.busy_wait_us 3_000.;
      Atomic.set done_flag true);
  Executor.drain exec;
  Alcotest.(check bool) "drain waited" true (Atomic.get done_flag);
  Executor.stop exec

let test_steals_happen_under_imbalance () =
  (* All tasks target connections homed on core 0; with several workers,
     the others can only make progress by stealing. *)
  let cores = 3 in
  let exec = Executor.create ~cores ~conns:cores () in
  Executor.start exec;
  for _ = 1 to 300 do
    Executor.submit exec ~conn:0 (fun () -> Spin.busy_wait_us 20.)
  done;
  Executor.stop exec;
  let stats = Executor.stats exec in
  Alcotest.(check int) "all executed" 300 stats.Executor.executed;
  (* conn 0 is a single connection: batches serialize on it, so stealing
     is possible but not guaranteed; just check counters are sane. *)
  Alcotest.(check bool) "batch counters consistent" true
    (stats.Executor.local_batches + stats.Executor.stolen_batches > 0)

(* N domains x M tasks through the work-stealing pool: every task runs
   exactly once (per-task atomic counters), results land at their own
   index regardless of steal order, and the per-worker run counts sum to
   the task count. This is the behavioral contract behind the
   [@zygos.owned "lock-protected"] annotations on the pool's deque
   head/tail fields. *)
let test_pool_exactly_once () =
  let tasks_n = 2000 and workers = 4 in
  let ran = Array.init tasks_n (fun _ -> Atomic.make 0) in
  let tasks =
    Array.init tasks_n (fun i () ->
        (* occasional jitter so owners and thieves interleave *)
        if i land 127 = 0 then Spin.busy_wait_us 30.;
        ignore (Atomic.fetch_and_add ran.(i) 1 : int);
        i * 3)
  in
  let results, stats = Runtime.Pool.run ~workers ~tasks in
  Alcotest.(check int) "points" tasks_n stats.Runtime.Pool.points;
  Array.iteri
    (fun i r -> if r <> i * 3 then Alcotest.failf "task %d: result %d" i r)
    results;
  Array.iteri
    (fun i c ->
      let n = Atomic.get c in
      if n <> 1 then Alcotest.failf "task %d ran %d times" i n)
    ran;
  Alcotest.(check int) "run_counts sum to task count" tasks_n
    (Array.fold_left ( + ) 0 stats.Runtime.Pool.run_counts)

let test_spin_waits () =
  let t0 = Spin.now_us () in
  Spin.busy_wait_us 2_000.;
  let elapsed = Spin.now_us () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "waited at least 2ms (got %.0fus)" elapsed)
    true (elapsed >= 2_000.)

let () =
  Alcotest.run "runtime"
    [
      ( "executor",
        [
          Alcotest.test_case "executes everything" `Quick test_executes_everything;
          Alcotest.test_case "per-conn ordering" `Slow test_per_conn_ordering;
          Alcotest.test_case "lifecycle errors" `Quick test_lifecycle_errors;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "drain" `Quick test_drain_blocks_until_done;
          Alcotest.test_case "steal counters" `Quick test_steals_happen_under_imbalance;
        ] );
      ( "pool",
        [ Alcotest.test_case "exactly-once under stealing" `Quick test_pool_exactly_once ] );
      ("spin", [ Alcotest.test_case "busy wait" `Quick test_spin_waits ]);
    ]
