(* White-box scenario tests of the ZygOS system model: hand-crafted
   packet sequences through a small simulated machine, checking exact cost
   accounting, steal-based rescue of short requests stuck behind long
   ones, and the role of IPIs (§4.4–§4.5). *)

module Sim = Engine.Sim
module Rng = Engine.Rng
module Request = Net.Request

let default_params cores = Systems.Params.default ~cores ()

(* Build a tiny ZygOS machine and return (sim, submit, responses, iface).
   Responses are recorded as (request, completion time). *)
let make_machine ?(cores = 2) ?(params = None) ~conns () =
  let sim = Sim.create () in
  let pool = Request.create_pool () in
  let p = match params with Some p -> p | None -> default_params cores in
  let responses = ref [] in
  let iface =
    Systems.Zygos.create sim p ~rng:(Rng.create ~seed:1) ~pool ~conns
      ~respond:(fun req -> responses := (req, Sim.now sim) :: !responses)
      ()
  in
  (sim, pool, iface, responses)

let mk_req pool ~id ~conn ~service arrival =
  Request.alloc pool ~id ~conn ~arrival ~service ~measured:true

(* Two connections homed on the same core, as computed by the same RSS
   configuration the system uses. *)
let two_conns_same_home ~cores =
  let rss = Net.Rss.create ~queues:cores () in
  let rec find c acc =
    match acc with
    | a :: b :: _ -> (a, b)
    | _ ->
        if Net.Rss.queue_of_conn rss c = 0 then find (c + 1) (acc @ [ c ])
        else find (c + 1) acc
  in
  find 0 []

let test_single_request_cost () =
  (* One request through an idle machine: wake (dp_loop) + rx (dp_loop +
     dp_rx) + shuffle handoff + service + tx. Locks in the model's cost
     accounting. *)
  let p = default_params 2 in
  let sim, pool, iface, responses = make_machine ~cores:2 ~conns:4 () in
  let req = mk_req pool ~id:0 ~conn:0 ~service:10. 0. in
  iface.Systems.Iface.submit req;
  Sim.run sim;
  match !responses with
  | [ (r, at) ] ->
      Alcotest.(check bool) "same request" true (r = req);
      let expected =
        p.Systems.Params.dp_loop (* idle wakeup poll *)
        +. p.Systems.Params.dp_loop +. p.Systems.Params.dp_rx (* rx *)
        +. p.Systems.Params.zy_shuffle +. 10. (* user *)
        +. p.Systems.Params.dp_tx (* eager tx *)
      in
      Alcotest.(check (float 1e-9)) "exact completion time" expected at
  | other -> Alcotest.failf "expected 1 response, got %d" (List.length other)

let test_steal_rescues_short_request () =
  (* Long request on conn A and short request on conn B, both homed on
     core 0, arriving together: core 0 takes A; the idle core 1 must steal
     B so it completes long before A (no head-of-line blocking, §4.4). *)
  let a, b = two_conns_same_home ~cores:2 in
  let sim, pool, iface, responses = make_machine ~cores:2 ~conns:(max a b + 1) () in
  let long_req = mk_req pool ~id:0 ~conn:a ~service:100. 0. in
  let short_req = mk_req pool ~id:1 ~conn:b ~service:5. 0. in
  iface.Systems.Iface.submit long_req;
  iface.Systems.Iface.submit short_req;
  Sim.run sim;
  let completion r =
    match List.assoc_opt r !responses with
    | Some t -> t
    | None -> Alcotest.fail "request not completed"
  in
  Alcotest.(check bool) "short request not blocked behind long one" true
    (completion short_req < 30. && completion long_req >= 100.);
  (match Systems.Iface.info_value iface "stolen_events" with
  | Some n -> Alcotest.(check bool) "a steal happened" true (n >= 1.)
  | None -> Alcotest.fail "no counter");
  Alcotest.(check int) "work conserving" 0 (Systems.Zygos.work_conservation_violations iface)

let test_ipi_rescues_packet_behind_user_code () =
  (* Conn A starts a long task on core 0; then a packet for conn B (same
     home) arrives. Without an IPI, core 0 cannot run its network stack
     until A finishes; with IPIs, core 1 notices, interrupts core 0, the
     handler refills the shuffle queue, and core 1 steals B (§4.5). *)
  let run ~interrupts =
    let a, b = two_conns_same_home ~cores:2 in
    let params =
      let p = default_params 2 in
      if interrupts then p else Systems.Params.no_interrupts p
    in
    let sim, pool, iface, responses =
      make_machine ~cores:2 ~params:(Some params) ~conns:(max a b + 1) ()
    in
    let long_req = mk_req pool ~id:0 ~conn:a ~service:200. 0. in
    iface.Systems.Iface.submit long_req;
    (* B arrives once core 0 is deep in user code. *)
    let short_req = ref None in
    let _ : Sim.handle =
      Sim.schedule sim ~at:20. (fun () ->
          let r = mk_req pool ~id:1 ~conn:b ~service:5. 20. in
          short_req := Some r;
          iface.Systems.Iface.submit r)
    in
    Sim.run sim;
    let r = Option.get !short_req in
    (match List.assoc_opt r !responses with
    | Some t -> t -. 20.
    | None -> Alcotest.fail "short request never completed")
  in
  let with_ipi = run ~interrupts:true in
  let without_ipi = run ~interrupts:false in
  Alcotest.(check bool)
    (Printf.sprintf "IPI latency %.1f << cooperative %.1f" with_ipi without_ipi)
    true
    (with_ipi < 30. && without_ipi > 150.)

let test_remote_syscalls_return_home () =
  (* A stolen batch's responses are transmitted by the home core: the
     remote_batches counter must tick and ordering must hold. *)
  let a, b = two_conns_same_home ~cores:2 in
  let sim, pool, iface, _responses = make_machine ~cores:2 ~conns:(max a b + 1) () in
  iface.Systems.Iface.submit (mk_req pool ~id:0 ~conn:a ~service:50. 0.);
  iface.Systems.Iface.submit (mk_req pool ~id:1 ~conn:b ~service:5. 0.);
  Sim.run sim;
  match Systems.Iface.info_value iface "remote_batches" with
  | Some n -> Alcotest.(check bool) "remote batch pushed" true (n >= 1.)
  | None -> Alcotest.fail "no counter"

let test_per_conn_batching () =
  (* Back-to-back events on one connection execute as one exclusive batch
     (implicit batching, §6.2): both responses appear and in order. *)
  let sim, pool, iface, responses = make_machine ~cores:2 ~conns:4 () in
  let r1 = mk_req pool ~id:0 ~conn:0 ~service:5. 0. in
  let r2 = mk_req pool ~id:1 ~conn:0 ~service:5. 0. in
  iface.Systems.Iface.submit r1;
  iface.Systems.Iface.submit r2;
  Sim.run sim;
  let t1 = List.assoc_opt r1 !responses and t2 = List.assoc_opt r2 !responses in
  match (t1, t2) with
  | Some t1, Some t2 -> Alcotest.(check bool) "in order" true (t1 < t2)
  | _ -> Alcotest.fail "responses missing"

let test_interrupt_extends_current_task () =
  (* The IPI handler's work is charged to the interrupted request: with a
     concurrent short request arriving mid-execution, the long request's
     completion slips by roughly the handler cost. *)
  let run ~second_arrives =
    let a, b = two_conns_same_home ~cores:2 in
    let sim, pool, iface, responses = make_machine ~cores:2 ~conns:(max a b + 1) () in
    let long_req = mk_req pool ~id:0 ~conn:a ~service:100. 0. in
    iface.Systems.Iface.submit long_req;
    if second_arrives then begin
      let _ : Sim.handle =
        Sim.schedule sim ~at:10. (fun () ->
            iface.Systems.Iface.submit (mk_req pool ~id:1 ~conn:b ~service:1. 10.))
      in
      ()
    end;
    Sim.run sim;
    List.assoc_opt long_req !responses |> Option.get
  in
  let alone = run ~second_arrives:false in
  let interrupted = run ~second_arrives:true in
  Alcotest.(check bool)
    (Printf.sprintf "interrupted (%.2f) slightly later than alone (%.2f)" interrupted alone)
    true
    (interrupted > alone && interrupted < alone +. 5.)

let test_zero_load_idle_terminates () =
  (* No requests: the machine schedules nothing and the simulation ends
     immediately (no busy polling loops in sim time). *)
  let sim, _pool, _iface, responses = make_machine ~cores:4 ~conns:8 () in
  Sim.run sim;
  Alcotest.(check int) "no responses" 0 (List.length !responses);
  Alcotest.(check (float 0.)) "no time passed" 0. (Sim.now sim)

let test_rx_batching_bounded () =
  (* 200 packets for one core: receive-side batching processes at most
     zy_rx_batch per kernel segment, but everything completes. *)
  let p = { (default_params 2) with Systems.Params.zy_rx_batch = 16 } in
  let sim, pool, iface, responses = make_machine ~cores:2 ~params:(Some p) ~conns:64 () in
  for i = 0 to 199 do
    iface.Systems.Iface.submit (mk_req pool ~id:i ~conn:(i mod 64) ~service:1. 0.)
  done;
  Sim.run sim;
  Alcotest.(check int) "all completed" 200 (List.length !responses)

let test_trace_consistency () =
  (* The trace stream must agree with the aggregate counters. *)
  let sim = Sim.create () in
  let p = default_params 2 in
  let steals = ref 0 and ipis = ref 0 and rx_packets = ref 0 and remote = ref 0 in
  let trace _at = function
    | Systems.Zygos.Steal _ -> incr steals
    | Systems.Zygos.Ipi _ -> incr ipis
    | Systems.Zygos.Rx { packets; _ } -> rx_packets := !rx_packets + packets
    | Systems.Zygos.Remote_tx _ -> incr remote
    | Systems.Zygos.Dispatch_local _ -> ()
  in
  let responses = ref 0 in
  let pool = Request.create_pool () in
  let iface =
    Systems.Zygos.create sim p ~rng:(Rng.create ~seed:3) ~pool ~conns:16
      ~respond:(fun _ -> incr responses)
      ~trace ()
  in
  for i = 0 to 99 do
    iface.Systems.Iface.submit (mk_req pool ~id:i ~conn:(i mod 16) ~service:8. 0.)
  done;
  Sim.run sim;
  Alcotest.(check int) "all responded" 100 !responses;
  Alcotest.(check int) "all packets seen by rx trace" 100 !rx_packets;
  let get k = Option.get (Systems.Iface.info_value iface k) in
  Alcotest.(check int) "ipi trace = counter" (int_of_float (get "ipis_sent")) !ipis;
  Alcotest.(check int) "remote trace = counter" (int_of_float (get "remote_batches")) !remote;
  Alcotest.(check bool) "steals traced" true (!steals > 0)

let () =
  Alcotest.run "zygos-model"
    [
      ( "scenarios",
        [
          Alcotest.test_case "single request cost" `Quick test_single_request_cost;
          Alcotest.test_case "steal rescues short request" `Quick
            test_steal_rescues_short_request;
          Alcotest.test_case "IPI rescues stuck packet" `Quick
            test_ipi_rescues_packet_behind_user_code;
          Alcotest.test_case "remote syscalls return home" `Quick
            test_remote_syscalls_return_home;
          Alcotest.test_case "per-conn batching order" `Quick test_per_conn_batching;
          Alcotest.test_case "IPI extends current task" `Quick
            test_interrupt_extends_current_task;
          Alcotest.test_case "idle machine terminates" `Quick test_zero_load_idle_terminates;
          Alcotest.test_case "bounded rx batching" `Quick test_rx_batching_bounded;
          Alcotest.test_case "trace consistency" `Quick test_trace_consistency;
        ] );
    ]
