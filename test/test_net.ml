(* Tests for lib/net: Toeplitz RSS, rings, requests, load generator. *)

module Rss = Net.Rss
module Ring = Net.Ring
module Request = Net.Request
module Loadgen = Net.Loadgen
module Sim = Engine.Sim
module Rng = Engine.Rng

(* ---- RSS / Toeplitz ---- *)

(* Published verification vectors for the Microsoft RSS default key
   (IPv4 with ports): input bytes are src_ip | dst_ip | src_port |
   dst_port. *)
let test_toeplitz_vectors () =
  let cases =
    [
      (* src 66.9.149.187:2794 -> dst 161.142.100.80:1766, hash 0x51ccc178 *)
      ((66, 9, 149, 187), 2794, (161, 142, 100, 80), 1766, 0x51ccc178l);
      (* src 199.92.111.2:14230 -> dst 65.69.140.83:4739, hash 0xc626b0ea *)
      ((199, 92, 111, 2), 14230, (65, 69, 140, 83), 4739, 0xc626b0eal);
    ]
  in
  let ip (a, b, c, d) = Int32.of_int ((a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d) in
  let key =
    "\x6d\x5a\x56\xda\x25\x5b\x0e\xc2\x41\x67\x25\x3d\x43\xa3\x8f\xb0\xd0\xca\x2b\xcb\xae\x7b\x30\xb4\x77\xcb\x2d\xa3\x80\x30\xf2\x0c\x6a\x42\xb7\x3b\xbe\xac\x01\xfa"
  in
  List.iter
    (fun (src, sport, dst, dport, expected) ->
      let b = Bytes.create 12 in
      let put32 off v =
        for i = 0 to 3 do
          Bytes.set b (off + i)
            (Char.chr (Int32.to_int (Int32.shift_right_logical v (8 * (3 - i))) land 0xff))
        done
      in
      put32 0 (ip src);
      put32 4 (ip dst);
      Bytes.set b 8 (Char.chr (sport lsr 8));
      Bytes.set b 9 (Char.chr (sport land 0xff));
      Bytes.set b 10 (Char.chr (dport lsr 8));
      Bytes.set b 11 (Char.chr (dport land 0xff));
      Alcotest.(check int32) "toeplitz vector" expected (Rss.toeplitz ~key b))
    cases

let test_rss_range_and_determinism () =
  let rss = Rss.create ~queues:16 () in
  for c = 0 to 999 do
    let q = Rss.queue_of_conn rss c in
    if q < 0 || q >= 16 then Alcotest.failf "queue out of range: %d" q;
    Alcotest.(check int) "deterministic" q (Rss.queue_of_conn rss c)
  done

let test_rss_histogram () =
  let rss = Rss.create ~queues:16 () in
  let hist = Rss.histogram_of_conns rss 2752 in
  Alcotest.(check int) "sums to conns" 2752 (Array.fold_left ( + ) 0 hist);
  (* Flow-consistent hashing spreads connections over every queue, if not
     perfectly evenly. *)
  Array.iteri (fun q n -> if n = 0 then Alcotest.failf "queue %d got no connections" q) hist

let test_rss_bad_args () =
  Alcotest.check_raises "queues < 1" (Invalid_argument "Rss.create: queues < 1") (fun () ->
      ignore (Rss.create ~queues:0 () : Rss.t));
  Alcotest.check_raises "short key" (Invalid_argument "Rss.create: key too short") (fun () ->
      ignore (Rss.create ~key:"short" ~queues:4 () : Rss.t))

(* The precomputed 12x256 lookup table must be bitwise-equal to the
   bit-serial reference over random keys and random 4-tuples. *)
let prop_rss_lut_matches_reference =
  let gen_key = QCheck.Gen.(string_size ~gen:char (return 40)) in
  let gen_case =
    QCheck.Gen.(
      map
        (fun (key, (si, di, sp, dp)) -> (key, si, di, sp, dp))
        (pair gen_key (quad ui64 ui64 (int_bound 0xffff) (int_bound 0xffff))))
  in
  let arb =
    QCheck.make gen_case ~print:(fun (key, si, di, sp, dp) ->
        Printf.sprintf "key=%S si=%Ld di=%Ld sp=%d dp=%d" key si di sp dp)
  in
  QCheck.Test.make ~name:"rss lut hash = bit-serial toeplitz" ~count:500 arb
    (fun (key, si64, di64, src_port, dst_port) ->
      let src_ip = Int64.to_int32 si64 and dst_ip = Int64.to_int32 di64 in
      let rss = Rss.create ~key ~queues:16 () in
      let fast = Rss.hash_of_tuple rss ~src_ip ~dst_ip ~src_port ~dst_port in
      let b = Bytes.create 12 in
      Bytes.set_int32_be b 0 src_ip;
      Bytes.set_int32_be b 4 dst_ip;
      Bytes.set_uint16_be b 8 src_port;
      Bytes.set_uint16_be b 10 dst_port;
      let slow = Int32.to_int (Rss.toeplitz ~key b) land 0xffffffff in
      fast = slow)

let test_rss_set_slot_bounds () =
  let rss = Rss.create ~queues:4 () in
  Alcotest.check_raises "slot out of range"
    (Invalid_argument "Rss.set_slot: slot out of range") (fun () ->
      Rss.set_slot rss ~slot:(Rss.slots rss) ~queue:0);
  Alcotest.check_raises "negative slot"
    (Invalid_argument "Rss.set_slot: slot out of range") (fun () ->
      Rss.set_slot rss ~slot:(-1) ~queue:0);
  Alcotest.check_raises "queue out of range"
    (Invalid_argument "Rss.set_slot: queue out of range") (fun () ->
      Rss.set_slot rss ~slot:0 ~queue:4)

let test_rss_remap_mass_conservation () =
  (* Reprogramming the indirection table moves connections between queues
     but never loses one: the histogram mass is conserved, the remapped
     slot's connections all follow it, and the per-connection slot memo
     stays valid (slot_of_conn is remap-stable by contract). *)
  let conns = 2752 in
  let rss = Rss.create ~queues:16 () in
  let slots_before = Array.init conns (fun c -> Rss.slot_of_conn rss c) in
  let hist = Rss.histogram_of_conns rss conns in
  Alcotest.(check int) "mass before" conns (Array.fold_left ( + ) 0 hist);
  for s = 0 to Rss.slots rss - 1 do
    if s mod 3 = 0 then Rss.set_slot rss ~slot:s ~queue:(s mod Rss.queues rss)
  done;
  let hist' = Rss.histogram_of_conns rss conns in
  Alcotest.(check int) "mass after remap" conns (Array.fold_left ( + ) 0 hist');
  for c = 0 to conns - 1 do
    let s = Rss.slot_of_conn rss c in
    if s <> slots_before.(c) then Alcotest.failf "conn %d changed slot under remap" c;
    Alcotest.(check int) "queue follows table" (Rss.queue_of_slot rss s)
      (Rss.queue_of_conn rss c)
  done

(* ---- Ring ---- *)

let test_ring_fifo () =
  let r = Ring.create ~capacity:4 in
  List.iter (fun i -> Alcotest.(check bool) "push ok" true (Ring.push r i)) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "peek" (Some 1) (Ring.peek r);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Ring.pop r);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Ring.pop r);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Ring.pop r);
  Alcotest.(check (option int)) "empty" None (Ring.pop r)

let test_ring_overflow_drops () =
  let r = Ring.create ~capacity:2 in
  Alcotest.(check bool) "1 fits" true (Ring.push r 1);
  Alcotest.(check bool) "2 fits" true (Ring.push r 2);
  Alcotest.(check bool) "3 dropped" false (Ring.push r 3);
  Alcotest.(check int) "drop counted" 1 (Ring.drops r);
  Alcotest.(check int) "length" 2 (Ring.length r);
  ignore (Ring.pop r : int option);
  Alcotest.(check bool) "fits again" true (Ring.push r 4)

let prop_ring_model =
  (* Random push/pop sequence vs a plain-queue model with explicit
     capacity filtering. *)
  QCheck.Test.make ~name:"ring behaves like bounded FIFO" ~count:300
    QCheck.(list (option small_int))
    (fun ops ->
      let r = Ring.create ~capacity:8 in
      let model = Queue.create () in
      List.for_all
        (fun op ->
          match op with
          | Some x ->
              let accepted = Ring.push r x in
              let model_accepts = Queue.length model < 8 in
              if model_accepts then Queue.add x model;
              accepted = model_accepts
          | None -> Ring.pop r = Queue.take_opt model)
        ops)

(* ---- Request ---- *)

let test_request_lifecycle () =
  let p = Request.create_pool () in
  let r = Request.alloc p ~id:1 ~conn:2 ~arrival:10. ~service:5. ~measured:true in
  Alcotest.(check int) "id" 1 (Request.id p r);
  Alcotest.(check int) "conn" 2 (Request.conn p r);
  Alcotest.(check bool) "not completed" false (Request.is_completed p r);
  Alcotest.(check (float 1e-9)) "not started" (-1.) (Request.started p r);
  Alcotest.check_raises "latency before completion"
    (Invalid_argument "Request.latency: not completed") (fun () ->
      ignore (Request.latency p r : float));
  Request.set_completion p r 25.;
  Alcotest.(check (float 1e-9)) "latency" 15. (Request.latency p r)

let test_request_pool_recycling () =
  let p = Request.create_pool ~recycle:true ~capacity:2 () in
  let r1 = Request.alloc p ~id:1 ~conn:0 ~arrival:0. ~service:1. ~measured:false in
  let r2 = Request.alloc p ~id:2 ~conn:1 ~arrival:0. ~service:1. ~measured:false in
  Alcotest.(check int) "live" 2 (Request.live p);
  Request.release p r1;
  Alcotest.(check int) "live after release" 1 (Request.live p);
  (* The slot recycles under a fresh generation: the new handle works, the
     stale one is detected. *)
  let r3 = Request.alloc p ~id:3 ~conn:2 ~arrival:5. ~service:1. ~measured:true in
  Alcotest.(check int) "slot reused" 2 (Request.hwm p);
  Alcotest.(check int) "fresh handle reads fresh fields" 3 (Request.id p r3);
  Alcotest.check_raises "stale handle caught"
    (Invalid_argument "Request: stale or invalid handle") (fun () ->
      ignore (Request.id p r1 : int));
  Alcotest.(check int) "live handle unaffected" 2 (Request.id p r2);
  (* Growth past the initial capacity preserves everything. *)
  let more =
    List.init 16 (fun i ->
        Request.alloc p ~id:(100 + i) ~conn:i ~arrival:1. ~service:1. ~measured:false)
  in
  List.iteri
    (fun i r -> Alcotest.(check int) "grown pool intact" (100 + i) (Request.id p r))
    more;
  Alcotest.(check int) "allocated counts all" 19 (Request.allocated p)

let test_request_no_recycle_keeps_handles () =
  (* recycle:false pools (faults/retry/cluster paths) must keep released
     handles readable: duplicate responses arrive after first completion. *)
  let p = Request.create_pool ~recycle:false () in
  let r = Request.alloc p ~id:7 ~conn:3 ~arrival:2. ~service:1. ~measured:true in
  Request.set_completion p r 9.;
  Request.release p r;
  Alcotest.(check (float 1e-9)) "still readable after release" 7. (Request.latency p r);
  let r' = Request.alloc p ~id:8 ~conn:3 ~arrival:3. ~service:1. ~measured:true in
  Alcotest.(check bool) "no slot reuse" true (r' <> r)

(* ---- Loadgen ---- *)

let run_loadgen ~rate ~conns ~echo_delay =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:9 in
  let pool = Request.create_pool ~recycle:true () in
  let gen =
    Loadgen.create sim ~rng ~pool ~conns ~rate ~service:(Engine.Dist.deterministic 1.) ()
  in
  Loadgen.set_target gen (fun req ->
      ignore
        (Sim.schedule_after sim ~delay:echo_delay (fun () -> Loadgen.complete gen req)
          : Sim.handle));
  Loadgen.start gen ~warmup:100. ~measure:1000.;
  Sim.run sim;
  gen

let test_loadgen_rate_and_measurement () =
  let gen = run_loadgen ~rate:1.0 ~conns:64 ~echo_delay:2. in
  let n = Loadgen.measured_generated gen in
  (* ~1000 arrivals expected in the 1000µs window. *)
  if n < 850 || n > 1150 then Alcotest.failf "measured arrivals unexpected: %d" n;
  (* A request arriving just before the window closes completes after it
     and is excluded from the in-window throughput count. *)
  let completed = Loadgen.measured_completed gen in
  if completed > n || completed < n - 5 then
    Alcotest.failf "in-window completions %d vs %d arrivals" completed n;
  Alcotest.(check int) "no order violations" 0 (Loadgen.order_violations gen);
  let tally = Loadgen.tally gen in
  Alcotest.(check int) "every measured latency recorded" n (Stats.Tally.count tally);
  Alcotest.(check (float 1e-6)) "latency = echo delay" 2. (Stats.Tally.p99 tally);
  Alcotest.(check (float 0.15)) "throughput ~= rate" 1.0 (Loadgen.throughput gen)

let test_loadgen_order_violation_detected () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:10 in
  let pool = Request.create_pool ~recycle:true () in
  let gen =
    Loadgen.create sim ~rng ~pool ~conns:1 ~rate:1.0 ~service:(Engine.Dist.deterministic 1.)
      ()
  in
  let pending = ref [] in
  Loadgen.set_target gen (fun req -> pending := req :: !pending);
  Loadgen.start gen ~warmup:0. ~measure:5.;
  Sim.run sim;
  (* Complete in LIFO order: completions on a single connection then come
     back out of order. *)
  let n = List.length !pending in
  if n < 2 then Alcotest.fail "need at least 2 requests for this test";
  List.iter (fun req -> Loadgen.complete gen req) !pending;
  Alcotest.(check bool) "violations detected" true (Loadgen.order_violations gen > 0)

let test_loadgen_double_complete_counted () =
  (* A lossy network can deliver the same response twice; the second
     completion must be counted, not crash the client. *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:11 in
  (* recycle:false — duplicate deliveries must stay detectable after the
     first completion, exactly the situation that forbids slot reuse. *)
  let pool = Request.create_pool ~recycle:false () in
  let gen =
    Loadgen.create sim ~rng ~pool ~conns:1 ~rate:1.0 ~service:(Engine.Dist.deterministic 1.)
      ()
  in
  let seen = ref None in
  Loadgen.set_target gen (fun req -> if !seen = None then seen := Some req);
  Loadgen.start gen ~warmup:0. ~measure:3.;
  Sim.run sim;
  match !seen with
  | None -> Alcotest.fail "no request generated"
  | Some req ->
      Loadgen.complete gen req;
      let count = Stats.Tally.count (Loadgen.tally gen) in
      Loadgen.complete gen req;
      Loadgen.complete gen req;
      Alcotest.(check int) "duplicates counted" 2 (Loadgen.duplicate_completions gen);
      Alcotest.(check int) "tally unchanged" count (Stats.Tally.count (Loadgen.tally gen))

let test_loadgen_requires_target () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:12 in
  let pool = Request.create_pool ~recycle:true () in
  let gen =
    Loadgen.create sim ~rng ~pool ~conns:1 ~rate:1.0 ~service:(Engine.Dist.deterministic 1.)
      ()
  in
  Alcotest.check_raises "no target" (Invalid_argument "Loadgen.start: no target set") (fun () ->
      Loadgen.start gen ~warmup:0. ~measure:1.)

let () =
  Alcotest.run "net"
    [
      ( "rss",
        [
          Alcotest.test_case "toeplitz vectors" `Quick test_toeplitz_vectors;
          Alcotest.test_case "range+determinism" `Quick test_rss_range_and_determinism;
          Alcotest.test_case "histogram" `Quick test_rss_histogram;
          Alcotest.test_case "bad args" `Quick test_rss_bad_args;
          QCheck_alcotest.to_alcotest prop_rss_lut_matches_reference;
          Alcotest.test_case "set_slot bounds" `Quick test_rss_set_slot_bounds;
          Alcotest.test_case "remap mass conservation" `Quick
            test_rss_remap_mass_conservation;
        ] );
      ( "ring",
        [
          Alcotest.test_case "fifo" `Quick test_ring_fifo;
          Alcotest.test_case "overflow drops" `Quick test_ring_overflow_drops;
          QCheck_alcotest.to_alcotest prop_ring_model;
        ] );
      ( "request",
        [
          Alcotest.test_case "lifecycle" `Quick test_request_lifecycle;
          Alcotest.test_case "pool recycling" `Quick test_request_pool_recycling;
          Alcotest.test_case "no-recycle keeps handles" `Quick
            test_request_no_recycle_keeps_handles;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "rate and measurement" `Quick test_loadgen_rate_and_measurement;
          Alcotest.test_case "order violations" `Quick test_loadgen_order_violation_detected;
          Alcotest.test_case "double complete" `Quick test_loadgen_double_complete_counted;
          Alcotest.test_case "requires target" `Quick test_loadgen_requires_target;
        ] );
    ]
