(* Fault-injection & overload-control layer tests (PR 2):

   - Corefault: exact clock arithmetic, stalls, window validation.
   - Faults: plan validation, per-kind counters, delivery semantics, and
     the headline determinism property — an all-zero-rate plan yields a
     byte-identical run (histogram samples compared bit for bit) to no
     plan at all.
   - Loadgen resilience: backoff schedule, retry-budget exhaustion,
     duplicate-response tolerance.
   - Overload: shedding-policy boundaries for both policies.
   - Ring drops: summed across queues and surfaced uniformly by all
     server models.
   - Acceptance: ZygOS degrades strictly less than IX under a straggler;
     shedding keeps goodput alive through a retry storm that collapses
     the unprotected server. *)

module Sim = Engine.Sim
module Rng = Engine.Rng
module Dist = Engine.Dist
module Corefault = Core.Corefault
module Faults = Net.Faults
module Loadgen = Net.Loadgen
module Request = Net.Request
module Overload = Systems.Overload
module Run = Experiments.Run

let check_raises_any name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

(* ---- Corefault ---- *)

let test_corefault_exact_when_clear () =
  (* Outside every window the fault layer must return [now +. work] with
     bit-identical float arithmetic — this is what keeps a fault-free run
     reproducible against the pre-fault goldens. *)
  let f = Corefault.create [ { core = 1; start = 100.; duration = 50.; slowdown = 4. } ] in
  let cases = [ (0.1, 3.7); (17.3, 0.0); (99.9, 0.05); (151.0, 42.0) ] in
  List.iter
    (fun (now, work) ->
      let expected = now +. work in
      let got = Corefault.completion_time f ~core:0 ~now ~work in
      Alcotest.(check bool)
        "other core untouched" true
        (Int64.bits_of_float got = Int64.bits_of_float expected))
    cases;
  (* Same core, but execution entirely before / after the window. *)
  let got = Corefault.completion_time f ~core:1 ~now:10. ~work:5. in
  Alcotest.(check bool) "before window" true (got = 15.);
  let got = Corefault.completion_time f ~core:1 ~now:200. ~work:5. in
  Alcotest.(check bool) "after window" true (got = 205.)

let test_corefault_slowdown_integration () =
  let f = Corefault.create [ { core = 0; start = 10.; duration = 10.; slowdown = 2. } ] in
  (* Start at 5: 5µs at full speed reach the window having done 5µs of
     work; the remaining 5µs run at half speed inside the window (10µs of
     wall clock ends exactly at the window end). *)
  let got = Corefault.completion_time f ~core:0 ~now:5. ~work:10. in
  Alcotest.(check (float 1e-9)) "spans into window" 20. got;
  (* Entirely inside: 2µs of work takes 4µs of wall clock. *)
  let got = Corefault.completion_time f ~core:0 ~now:12. ~work:2. in
  Alcotest.(check (float 1e-9)) "inside window" 16. got;
  (* Crosses out the far side: window holds 5µs of work in its last 10µs
     of wall clock; the last 3µs run at full speed after it. *)
  let got = Corefault.completion_time f ~core:0 ~now:10. ~work:8. in
  Alcotest.(check (float 1e-9)) "spans out of window" 23. got

let test_corefault_stall () =
  let f =
    Corefault.create [ { core = 0; start = 10.; duration = 10.; slowdown = infinity } ]
  in
  (* Work starting inside a full stall resumes at the window end. *)
  let got = Corefault.completion_time f ~core:0 ~now:12. ~work:3. in
  Alcotest.(check (float 1e-9)) "stall defers work" 23. got;
  Alcotest.(check bool) "stalled inside" true (Corefault.stalled f ~core:0 ~now:15.);
  Alcotest.(check bool) "not stalled outside" false (Corefault.stalled f ~core:0 ~now:5.)

let test_corefault_validation () =
  check_raises_any "negative core" (fun () ->
      Corefault.validate_spec { core = -1; start = 0.; duration = 1.; slowdown = 2. });
  check_raises_any "slowdown < 1" (fun () ->
      Corefault.validate_spec { core = 0; start = 0.; duration = 1.; slowdown = 0.5 });
  check_raises_any "nan start" (fun () ->
      Corefault.validate_spec { core = 0; start = Float.nan; duration = 1.; slowdown = 2. });
  check_raises_any "overlapping windows" (fun () ->
      Corefault.create
        [
          { core = 0; start = 0.; duration = 10.; slowdown = 2. };
          { core = 0; start = 5.; duration = 10.; slowdown = 3. };
        ]);
  Alcotest.(check bool) "none is none" true (Corefault.is_none Corefault.none)

(* ---- Faults: plan validation & counters ---- *)

let test_plan_validation () =
  check_raises_any "rate > 1" (fun () -> Faults.plan ~drop:1.5 ());
  check_raises_any "negative rate" (fun () -> Faults.plan ~reorder:(-0.1) ());
  check_raises_any "negative delay" (fun () -> Faults.plan ~reorder_delay:(-1.) ());
  check_raises_any "blackhole from < 0" (fun () -> Faults.plan ~blackhole:(-1., 5.) ());
  check_raises_any "blackhole until < from" (fun () -> Faults.plan ~blackhole:(10., 5.) ());
  check_raises_any "blackhole NaN" (fun () -> Faults.plan ~blackhole:(Float.nan, 5.) ());
  Faults.validate_plan Faults.zero;
  (* An explicit empty window is the zero plan. *)
  Alcotest.(check bool) "empty window = zero" true
    (Faults.plan ~blackhole:(0., 0.) () = Faults.zero)

let test_blackhole_window () =
  (* Packets inside the partition window are swallowed (with their own
     counter); before and after, delivery is untouched. *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:21 in
  let f = Faults.create sim ~rng ~plan:(Faults.plan ~blackhole:(10., 20.) ()) () in
  let delivered = ref [] in
  let send_at at =
    let _ : Sim.handle =
      Sim.schedule sim ~at (fun () ->
          Faults.apply f at ~deliver:(fun t -> delivered := t :: !delivered))
    in
    ()
  in
  List.iter send_at [ 5.; 10.; 15.; 19.9; 20.; 25. ];
  Sim.run sim;
  Alcotest.(check (list (float 0.)))
    "window [10,20) swallowed, end exclusive" [ 5.; 20.; 25. ]
    (List.rev !delivered);
  let get k = int_of_float (List.assoc k (Faults.info f)) in
  Alcotest.(check int) "blackhole counter" 3 (get "fault_blackholes");
  Alcotest.(check int) "counted as injected" 3 (get "fault_injected");
  Alcotest.(check int) "not counted as drops" 0 (get "fault_drops");
  Alcotest.(check bool) "active inside" true
    (Faults.blackhole_active (Faults.plan ~blackhole:(10., 20.) ()) ~now:15.);
  Alcotest.(check bool) "inactive at end" false
    (Faults.blackhole_active (Faults.plan ~blackhole:(10., 20.) ()) ~now:20.)

let test_fault_counters () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:99 in
  let n = 10_000 in
  (* Deterministic extremes first. *)
  let all_drop = Faults.create sim ~rng ~plan:(Faults.plan ~drop:1.0 ()) () in
  let delivered = ref 0 in
  for _ = 1 to n do
    Faults.apply all_drop () ~deliver:(fun () -> incr delivered)
  done;
  Alcotest.(check int) "all dropped" 0 !delivered;
  Alcotest.(check int) "drop count" n (int_of_float (List.assoc "fault_drops" (Faults.info all_drop)));
  let all_dup = Faults.create sim ~rng ~plan:(Faults.plan ~duplicate:1.0 ()) () in
  let delivered = ref 0 in
  for _ = 1 to n do
    Faults.apply all_dup () ~deliver:(fun () -> incr delivered)
  done;
  Sim.run sim;
  Alcotest.(check int) "duplicates delivered twice" (2 * n) !delivered;
  (* Mixed plan: counters are consistent with deliveries. *)
  let sim = Sim.create () in
  let mixed =
    Faults.create sim ~rng ~plan:(Faults.plan ~drop:0.1 ~duplicate:0.1 ~reorder:0.1 ~corrupt:0.05 ()) ()
  in
  let delivered = ref 0 in
  for _ = 1 to n do
    Faults.apply mixed () ~deliver:(fun () -> incr delivered)
  done;
  Sim.run sim;
  let info = Faults.info mixed in
  let get k = int_of_float (List.assoc k info) in
  Alcotest.(check int) "packet count" n (get "fault_packets");
  Alcotest.(check int) "deliveries = survivors + duplicates" !delivered
    (n - get "fault_drops" - get "fault_corruptions" + get "fault_duplicates");
  let expect_around name rate got =
    let exp_count = float_of_int n *. rate in
    if Float.abs (float_of_int got -. exp_count) > 5. *. sqrt exp_count then
      Alcotest.failf "%s: got %d, expected ~%.0f" name got exp_count
  in
  expect_around "drops" 0.1 (get "fault_drops");
  (* Corrupt draws after drop: survivors only. *)
  expect_around "corruptions" (0.9 *. 0.05) (get "fault_corruptions");
  Alcotest.(check bool) "injected > 0" true (Faults.injected mixed > 0)

let test_corrupt_frame_detected () =
  QCheck.Test.make ~name:"corrupted frames never reassemble intact" ~count:300
    QCheck.(pair small_nat (string_of_size Gen.(0 -- 300)))
    (fun (seed, payload) ->
      let rng = Rng.create ~seed in
      let wire = Net.Framing.encode payload in
      let corrupted = Faults.corrupt_frame rng wire in
      if corrupted = wire then QCheck.Test.fail_report "corruption was a no-op";
      let r = Net.Framing.Reassembler.create () in
      match Net.Framing.Reassembler.feed r corrupted with
      | Error _ -> true (* length prefix rejected *)
      | Ok msgs -> not (List.mem payload msgs))

(* ---- Zero-rate plan: byte-identical histograms ---- *)

let point_fingerprint (p : Run.point) =
  ( Int64.bits_of_float p.throughput,
    Int64.bits_of_float p.goodput,
    Int64.bits_of_float p.mean,
    Int64.bits_of_float p.p99,
    p.completed )

let test_zero_plan_identical () =
  QCheck.Test.make ~name:"zero-rate plan is byte-identical to no plan" ~count:8
    QCheck.(triple (int_range 1 1000) (int_range 0 2) (int_range 3 9))
    (fun (seed, sys_idx, load10) ->
      let system = List.nth [ Run.Linux_floating; Run.Ix 1; Run.Zygos ] sys_idx in
      let load = float_of_int load10 /. 10. in
      let cfg ?faults () =
        Run.config ~system ~service:(Dist.exponential 10.) ~cores:4 ~conns:64
          ~requests:800 ~seed ?faults ()
      in
      let base = Run.run_point (cfg ()) ~load in
      let zeroed = Run.run_point (cfg ~faults:Faults.zero ()) ~load in
      if point_fingerprint base <> point_fingerprint zeroed then
        QCheck.Test.fail_report "summary stats differ under zero-rate plan";
      true)

(* The blackhole draws nothing from the rng: a run whose window never
   opens (entirely after the horizon) is bitwise-identical to no plan. *)
let test_future_blackhole_bitwise () =
  QCheck.Test.make ~name:"unreached blackhole window is byte-identical to no plan"
    ~count:6
    QCheck.(pair (int_range 1 1000) (int_range 3 9))
    (fun (seed, load10) ->
      let load = float_of_int load10 /. 10. in
      let cfg ?faults () =
        Run.config ~system:Run.Zygos ~service:(Dist.exponential 10.) ~cores:4 ~conns:64
          ~requests:800 ~seed ?faults ()
      in
      let base = Run.run_point (cfg ()) ~load in
      let far = Faults.plan ~blackhole:(1e15, 2e15) () in
      let holed = Run.run_point (cfg ~faults:far ()) ~load in
      if point_fingerprint base <> point_fingerprint holed then
        QCheck.Test.fail_report "summary stats differ under unreached blackhole";
      true)

(* Bitwise histogram comparison needs the tallies themselves; run the
   loadgen pipeline directly for one system so the samples arrays can be
   compared element by element. *)
let test_zero_plan_samples_bitwise () =
  let run ~with_plan =
    let sim = Sim.create () in
    let rng = Rng.create ~seed:4242 in
    let loadgen_rng = Rng.split rng in
    let system_rng = Rng.split rng in
    let pool = Request.create_pool ~recycle:true () in
    let gen =
      Loadgen.create sim ~rng:loadgen_rng ~pool ~conns:64 ~rate:0.3
        ~service:(Dist.exponential 10.) ()
    in
    let params = Systems.Params.default ~cores:4 () in
    let system =
      Systems.Zygos.create sim params ~rng:system_rng ~pool ~conns:64
        ~respond:(fun req -> Loadgen.complete gen req)
        ()
    in
    let submit req = system.Systems.Iface.submit req in
    (if with_plan then begin
       let frng = Rng.split rng in
       let f = Faults.create sim ~rng:frng ~plan:Faults.zero () in
       Loadgen.set_target gen (fun req -> Faults.apply f req ~deliver:submit)
     end
     else Loadgen.set_target gen submit);
    Loadgen.start gen ~warmup:200. ~measure:2000.;
    Sim.run sim;
    Stats.Tally.samples (Loadgen.tally gen)
  in
  let a = run ~with_plan:false in
  let b = run ~with_plan:true in
  Alcotest.(check int) "sample counts equal" (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then
        Alcotest.failf "sample %d differs: %h vs %h" i x b.(i))
    a

(* ---- Loadgen resilience ---- *)

let test_backoff_schedule () =
  let r = Loadgen.retry ~backoff_base:50. ~backoff_max:800. () in
  List.iteri
    (fun i expected ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "attempt %d" (i + 1))
        expected
        (Loadgen.backoff_nominal r ~attempt:(i + 1)))
    [ 50.; 100.; 200.; 400.; 800.; 800.; 800. ];
  check_raises_any "attempt 0" (fun () -> Loadgen.backoff_nominal r ~attempt:0);
  check_raises_any "bad timeout" (fun () -> Loadgen.retry ~timeout:0. ());
  check_raises_any "bad jitter" (fun () -> Loadgen.retry ~jitter:1.5 ());
  check_raises_any "cap below base" (fun () ->
      Loadgen.retry ~backoff_base:100. ~backoff_max:50. ())

let test_retry_budget_exhaustion () =
  (* A server that never answers: every logical request must burn its
     full budget (1 original + max_retries sends, each timing out) and
     then be abandoned. *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:5 in
  let max_retries = 3 in
  let retry = Loadgen.retry ~timeout:50. ~max_retries ~backoff_base:10. ~backoff_max:40. () in
  let gen =
    (* Retries keep handles alive past their timeouts: no recycling. *)
    Loadgen.create sim ~rng ~pool:(Request.create_pool ()) ~conns:4 ~rate:0.05
      ~service:(Dist.deterministic 1.) ~retry ()
  in
  let sent = ref 0 in
  Loadgen.set_target gen (fun _ -> incr sent);
  Loadgen.start gen ~warmup:0. ~measure:400.;
  Sim.run sim;
  let n = Loadgen.generated gen in
  Alcotest.(check bool) "generated some" true (n > 0);
  Alcotest.(check int) "every request abandoned" n (Loadgen.retry_exhausted gen);
  Alcotest.(check int) "retransmissions" (n * max_retries) (Loadgen.retries gen);
  Alcotest.(check int) "timeouts per attempt" (n * (max_retries + 1)) (Loadgen.timeouts gen);
  Alcotest.(check int) "sends observed" (n * (max_retries + 1)) !sent;
  Alcotest.(check int) "nothing completed" 0 (Stats.Tally.count (Loadgen.tally gen))

let test_retry_recovers_loss () =
  (* Drop the first transmission of every request; the retransmission
     must complete every logical request exactly once. *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:6 in
  let retry = Loadgen.retry ~timeout:30. ~max_retries:2 ~backoff_base:5. ~backoff_max:10. () in
  let pool = Request.create_pool () in
  let gen =
    Loadgen.create sim ~rng ~pool ~conns:4 ~rate:0.05 ~service:(Dist.deterministic 1.)
      ~retry ()
  in
  (* Retransmissions are marked [measured = false]; serving only those
     deterministically drops every first attempt. *)
  Loadgen.set_target gen (fun req ->
      if not (Request.measured pool req) then
        let _ : Sim.handle =
          Sim.schedule_after sim ~delay:1. (fun () -> Loadgen.complete gen req)
        in
        ());
  Loadgen.start gen ~warmup:0. ~measure:300.;
  Sim.run sim;
  let n = Loadgen.generated gen in
  Alcotest.(check bool) "generated some" true (n > 0);
  Alcotest.(check int) "all logical requests completed" n
    (Stats.Tally.count (Loadgen.tally gen));
  Alcotest.(check int) "one retry each" n (Loadgen.retries gen);
  Alcotest.(check int) "no duplicates" 0 (Loadgen.duplicate_completions gen)

let test_duplicate_responses_tolerated () =
  (* Server answers twice; with retries enabled the duplicate must be
     counted and the latency recorded once. *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:7 in
  let retry = Loadgen.retry ~timeout:500. () in
  let gen =
    (* recycle:false — the duplicate completion below re-presents the
       handle after its first completion released it. *)
    Loadgen.create sim ~rng ~pool:(Request.create_pool ()) ~conns:2 ~rate:0.05
      ~service:(Dist.deterministic 1.) ~retry ()
  in
  Loadgen.set_target gen (fun req ->
      let _ : Sim.handle =
        Sim.schedule_after sim ~delay:2. (fun () ->
            Loadgen.complete gen req;
            Loadgen.complete gen req)
      in
      ());
  Loadgen.start gen ~warmup:0. ~measure:200.;
  Sim.run sim;
  let n = Loadgen.generated gen in
  Alcotest.(check int) "completed once each" n (Stats.Tally.count (Loadgen.tally gen));
  Alcotest.(check int) "duplicates counted" n (Loadgen.duplicate_completions gen);
  Alcotest.(check int) "no retries needed" 0 (Loadgen.retries gen)

(* ---- Overload policies ---- *)

let mk_req pool id = Request.alloc pool ~id ~conn:0 ~arrival:0. ~service:1. ~measured:true

let test_queue_length_boundary () =
  let sim = Sim.create () in
  let pool = Request.create_pool () in
  let mk_req = mk_req pool in
  let g = Overload.create sim ~pool ~policy:(Overload.Queue_length 2) () in
  let forwarded = ref [] in
  let fwd req = forwarded := req :: !forwarded in
  let r1 = mk_req 1 and r2 = mk_req 2 and r3 = mk_req 3 in
  Overload.admit g r1 ~forward:fwd;
  Overload.admit g r2 ~forward:fwd;
  Overload.admit g r3 ~forward:fwd;
  Alcotest.(check int) "two admitted" 2 (List.length !forwarded);
  Alcotest.(check int) "inflight at bound" 2 (Overload.inflight g);
  let info = Overload.info g in
  Alcotest.(check int) "one shed" 1 (int_of_float (List.assoc "shed" info));
  (* Retiring one opens a slot. *)
  Overload.note_response g r1;
  Overload.admit g (mk_req 4) ~forward:fwd;
  Alcotest.(check int) "slot reopened" 3 (List.length !forwarded);
  check_raises_any "bound 0 rejected" (fun () ->
      Overload.validate_policy (Overload.Queue_length 0))

let test_sojourn_boundary () =
  let sim = Sim.create () in
  let pool = Request.create_pool () in
  let mk_req = mk_req pool in
  let g = Overload.create sim ~pool ~policy:(Overload.Sojourn 10.) () in
  let forwarded = ref 0 in
  let fwd _ = incr forwarded in
  let r1 = mk_req 1 in
  Overload.admit g r1 ~forward:fwd;
  (* Head has been in for < bound: still admitting. *)
  let _ : Sim.handle =
    Sim.schedule_after sim ~delay:5. (fun () ->
        Overload.admit g (mk_req 2) ~forward:fwd)
  in
  (* Head exceeds the bound: shed. *)
  let _ : Sim.handle =
    Sim.schedule_after sim ~delay:20. (fun () ->
        Overload.admit g (mk_req 3) ~forward:fwd)
  in
  (* Head retired: admitting again even though time has passed. *)
  let _ : Sim.handle =
    Sim.schedule_after sim ~delay:30. (fun () ->
        Overload.note_response g r1;
        Overload.note_response g (mk_req 2);
        Overload.admit g (mk_req 4) ~forward:fwd)
  in
  Sim.run sim;
  Alcotest.(check int) "admitted 1, 2 and 4" 3 !forwarded;
  let info = Overload.info g in
  Alcotest.(check int) "shed exactly one" 1 (int_of_float (List.assoc "shed" info));
  check_raises_any "bound 0 rejected" (fun () ->
      Overload.validate_policy (Overload.Sojourn 0.))

(* ---- Ring drops summed across queues, all systems ---- *)

let test_ring_drops_sum () =
  let burst_into pool iface n =
    for i = 1 to n do
      iface.Systems.Iface.submit
        (Request.alloc pool ~id:i ~conn:(i mod 8) ~arrival:0. ~service:1. ~measured:true)
    done
  in
  let check_system name make =
    let sim = Sim.create () in
    let pool = Request.create_pool () in
    let completed = ref 0 in
    let iface = make sim ~pool ~respond:(fun _ -> incr completed) in
    let n = 400 in
    burst_into pool iface n;
    Sim.run sim;
    let drops =
      match Systems.Iface.info_value iface "ring_drops" with
      | Some d -> int_of_float d
      | None -> Alcotest.failf "%s: no ring_drops counter" name
    in
    Alcotest.(check bool) (name ^ ": burst overflows rings") true (drops > 0);
    Alcotest.(check int)
      (name ^ ": drops + completions = submissions")
      n (drops + !completed)
  in
  let params =
    { (Systems.Params.default ~cores:2 ()) with ring_capacity = 4 }
  in
  check_system "ix" (fun sim ~pool ~respond ->
      Systems.Ix.create sim params ~pool ~conns:8 ~respond);
  check_system "linux-partitioned" (fun sim ~pool ~respond ->
      Systems.Linux.partitioned sim params ~pool ~conns:8 ~respond);
  check_system "linux-floating" (fun sim ~pool ~respond ->
      Systems.Linux.floating sim params ~pool ~conns:8 ~respond);
  check_system "zygos" (fun sim ~pool ~respond ->
      Systems.Zygos.create sim params ~rng:(Rng.create ~seed:3) ~pool ~conns:8 ~respond ())

(* ---- Acceptance: straggler degradation, ZygOS < IX ---- *)

let test_straggler_degradation () =
  let service = Dist.exponential 10. in
  let cores = 16 in
  let requests = 6_000 in
  let load = 0.7 in
  let p99 system stragglers =
    let cfg = Run.config ~system ~service ~cores ~requests ~seed:11 ~stragglers () in
    (Run.run_point cfg ~load).Run.p99
  in
  let rate = load *. float_of_int cores /. Dist.mean service in
  let measure = float_of_int requests /. rate in
  let stragglers =
    [
      Corefault.
        { core = 0; start = 0.2 *. measure; duration = 0.25 *. measure; slowdown = 10. };
    ]
  in
  let ix_ratio = p99 (Run.Ix 1) stragglers /. p99 (Run.Ix 1) [] in
  let zy_ratio = p99 Run.Zygos stragglers /. p99 Run.Zygos [] in
  if not (zy_ratio < ix_ratio) then
    Alcotest.failf "ZygOS degraded more than IX: %.2fx vs %.2fx" zy_ratio ix_ratio;
  Alcotest.(check bool)
    (Printf.sprintf "IX hurt by straggler (%.2fx)" ix_ratio)
    true (ix_ratio > 2.);
  Alcotest.(check bool)
    (Printf.sprintf "ZygOS steals around it (%.2fx)" zy_ratio)
    true (zy_ratio < 2.)

(* ---- Acceptance: shedding prevents retry-storm goodput collapse ---- *)

let test_shedding_prevents_collapse () =
  let service = Dist.exponential 10. in
  let cores = 16 in
  let requests = 6_000 in
  let retry = Loadgen.retry ~timeout:200. ~max_retries:4 () in
  let goodput shed load =
    let cfg =
      Run.config ~system:(Run.Ix 1) ~service ~cores ~requests ~seed:13 ~retry ~slo:100.
        ~shed ()
    in
    (Run.run_point cfg ~load).Run.goodput
  in
  let bound = Overload.Queue_length (2 * cores) in
  let unprotected_sat = goodput Overload.No_shed 0.8 in
  let unprotected_over = goodput Overload.No_shed 1.2 in
  let protected_sat = goodput bound 0.8 in
  let protected_over = goodput bound 1.2 in
  (* Without shedding, the retry storm collapses goodput past saturation. *)
  if not (unprotected_over < 0.2 *. unprotected_sat) then
    Alcotest.failf "expected collapse without shedding: %.3f -> %.3f" unprotected_sat
      unprotected_over;
  (* With shedding, goodput holds (within 40%) instead of collapsing. *)
  if not (protected_over > 0.6 *. protected_sat) then
    Alcotest.failf "shedding failed to hold goodput: %.3f -> %.3f" protected_sat
      protected_over;
  if not (protected_over > 3. *. unprotected_over) then
    Alcotest.failf "shedding not better than collapse: %.3f vs %.3f" protected_over
      unprotected_over

let () =
  Alcotest.run "faults"
    [
      ( "corefault",
        [
          Alcotest.test_case "exact outside windows" `Quick test_corefault_exact_when_clear;
          Alcotest.test_case "slowdown integration" `Quick test_corefault_slowdown_integration;
          Alcotest.test_case "stall" `Quick test_corefault_stall;
          Alcotest.test_case "validation" `Quick test_corefault_validation;
        ] );
      ( "net-faults",
        [
          Alcotest.test_case "plan validation" `Quick test_plan_validation;
          Alcotest.test_case "counters" `Quick test_fault_counters;
          Alcotest.test_case "blackhole window" `Quick test_blackhole_window;
          QCheck_alcotest.to_alcotest (test_corrupt_frame_detected ());
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest (test_zero_plan_identical ());
          QCheck_alcotest.to_alcotest (test_future_blackhole_bitwise ());
          Alcotest.test_case "zero plan, bitwise samples" `Quick
            test_zero_plan_samples_bitwise;
        ] );
      ( "retries",
        [
          Alcotest.test_case "backoff schedule" `Quick test_backoff_schedule;
          Alcotest.test_case "budget exhaustion" `Quick test_retry_budget_exhaustion;
          Alcotest.test_case "loss recovery" `Quick test_retry_recovers_loss;
          Alcotest.test_case "duplicate responses" `Quick test_duplicate_responses_tolerated;
        ] );
      ( "overload",
        [
          Alcotest.test_case "queue-length boundary" `Quick test_queue_length_boundary;
          Alcotest.test_case "sojourn boundary" `Quick test_sojourn_boundary;
        ] );
      ( "rings",
        [ Alcotest.test_case "drops sum across queues" `Quick test_ring_drops_sum ] );
      ( "acceptance",
        [
          Alcotest.test_case "straggler: zygos < ix" `Slow test_straggler_degradation;
          Alcotest.test_case "shedding prevents collapse" `Slow
            test_shedding_prevents_collapse;
        ] );
    ]
