(* The PR-4 acceptance property: the timing wheel is observationally
   identical to the binary heap — same (time, seq) pop order for any
   interleaving of adds, pops and clears, the same simulation traces
   under either dispatch API, and byte-identical figure output — so
   flipping the default queue can never change results, only speed. *)

module Sim = Engine.Sim
module Equeue = Engine.Equeue
module Wheel = Engine.Wheel
module Heap = Engine.Heap
module Output = Experiments.Output

(* ---- queue-level equivalence (heap is the reference model) ---- *)

let drain_both heap wheel =
  let rec go acc =
    let eh = Equeue.is_empty heap and ew = Equeue.is_empty wheel in
    if eh <> ew then Alcotest.failf "emptiness disagrees: heap=%b wheel=%b" eh ew;
    if eh then List.rev acc
    else begin
      let th = Equeue.min_time heap and tw = Equeue.min_time wheel in
      let vh = Equeue.min_elt heap and vw = Equeue.min_elt wheel in
      if th <> tw || vh <> vw then
        Alcotest.failf "pop disagrees: heap (%g, %d) wheel (%g, %d)" th vh tw vw;
      Equeue.drop_min heap;
      Equeue.drop_min wheel;
      go ((th, vh) :: acc)
    end
  in
  go []

(* Random add/pop/clear interleavings; times on a half-integer grid so
   sub-microsecond ties (several floats within one tick) are frequent,
   with occasional far-future adds to force multi-level cascades. *)
let prop_wheel_matches_heap =
  let op_gen =
    QCheck.Gen.(
      list
        (pair (int_bound 9) (map (fun k -> float_of_int k /. 2.) (int_bound 40))))
  in
  QCheck.Test.make ~name:"wheel pops exactly like the heap" ~count:300
    (QCheck.make ~print:(fun ops -> string_of_int (List.length ops)) op_gen)
    (fun ops ->
      let heap = Equeue.create Equeue.Heap and wheel = Equeue.create Equeue.Wheel in
      List.iter
        (fun (op, time) ->
          if op <= 4 then begin
            (* the wheel refuses nothing: times at or before the current
               tick are legal and must still pop in (time, seq) order *)
            let time = if op = 4 then time +. 1e6 else time in
            Equeue.add heap ~time 0;
            Equeue.add wheel ~time 0
          end
          else if op <= 7 then begin
            let eh = Equeue.is_empty heap and ew = Equeue.is_empty wheel in
            if eh <> ew then Alcotest.failf "emptiness disagrees mid-run";
            if not eh then begin
              let th = Equeue.min_time heap and tw = Equeue.min_time wheel in
              let vh = Equeue.min_elt heap and vw = Equeue.min_elt wheel in
              if th <> tw || vh <> vw then
                Alcotest.failf "pop disagrees: heap (%g, %d) wheel (%g, %d)" th vh tw vw;
              Equeue.drop_min heap;
              Equeue.drop_min wheel
            end
          end
          else if op = 8 then begin
            Equeue.clear heap;
            Equeue.clear wheel
          end
          (* op = 9: no-op, length agreement *)
          else if Equeue.length heap <> Equeue.length wheel then
            Alcotest.failf "length disagrees")
        ops;
      ignore (drain_both heap wheel : (float * int) list);
      true)

(* Values must ride along correctly, not just keys: tag every add. *)
let prop_wheel_payloads_match =
  let op_gen = QCheck.Gen.(list (pair bool (int_bound 30))) in
  QCheck.Test.make ~name:"payloads track their keys" ~count:200
    (QCheck.make ~print:(fun ops -> string_of_int (List.length ops)) op_gen)
    (fun ops ->
      let heap = Equeue.create Equeue.Heap and wheel = Equeue.create Equeue.Wheel in
      List.iteri
        (fun i (pop, k) ->
          let time = float_of_int k /. 4. in
          Equeue.add heap ~time i;
          Equeue.add wheel ~time i;
          if pop then begin
            let vh = Equeue.min_elt heap and vw = Equeue.min_elt wheel in
            if vh <> vw then Alcotest.failf "payload disagrees: %d vs %d" vh vw;
            Equeue.drop_min heap;
            Equeue.drop_min wheel
          end)
        ops;
      ignore (drain_both heap wheel : (float * int) list);
      true)

(* ---- cascade and boundary edges ---- *)

let test_empty_queue () =
  List.iter
    (fun kind ->
      let q = Equeue.create ~dummy:(-7) kind in
      Alcotest.(check bool) "empty" true (Equeue.is_empty q);
      Alcotest.(check (float 0.)) "min_time" infinity (Equeue.min_time q);
      Alcotest.(check int) "min_elt" (-7) (Equeue.min_elt q);
      Equeue.drop_min q (* no-op, must not raise *))
    [ Equeue.Heap; Equeue.Wheel ]

let test_far_future_cascades () =
  (* Events spanning many wheel levels, popped interleaved with adds:
     every pop must cascade down to the right microsecond. *)
  let heap = Equeue.create Equeue.Heap and wheel = Equeue.create Equeue.Wheel in
  let times =
    [ 0.5; 31.; 32.; 33.; 1023.9; 1024.; 32_767.5; 32_768.; 1_048_575.
    ; 1_048_576.25; 1e9; 1e12; 4.6e18 (* above the tick clamp *) ]
  in
  List.iteri
    (fun i t ->
      Equeue.add heap ~time:t i;
      Equeue.add wheel ~time:t i)
    times;
  let popped = drain_both heap wheel in
  Alcotest.(check int) "all popped" (List.length times) (List.length popped)

let test_add_at_reached_tick () =
  (* After the wheel has advanced, adds at/below the current tick must
     still pop in global (time, seq) order — they merge into the ready
     run rather than a bucket. *)
  let heap = Equeue.create Equeue.Heap and wheel = Equeue.create Equeue.Wheel in
  List.iter
    (fun (t : float) ->
      Equeue.add heap ~time:t 0;
      Equeue.add wheel ~time:t 0)
    [ 10.; 10.25; 10.75; 50. ];
  (* pop to 10.25: both queues are now "at" microsecond 10 *)
  Equeue.drop_min heap;
  Equeue.drop_min wheel;
  (* time below the current tick, inside it, and at the popped time *)
  List.iter
    (fun (t : float) ->
      Equeue.add heap ~time:t 1;
      Equeue.add wheel ~time:t 1)
    [ 3.; 10.25; 10.5; 10.0 ];
  let popped = drain_both heap wheel in
  Alcotest.(check (float 0.)) "past add pops first" 3. (fst (List.hd popped));
  Alcotest.(check int) "seven left" 7 (List.length popped)

let test_same_tick_cohort () =
  (* >32 events inside one microsecond exercises the heapsort path of
     the wheel's ready run (insertion sort handles the small buckets). *)
  let heap = Equeue.create Equeue.Heap and wheel = Equeue.create Equeue.Wheel in
  let rng = Engine.Rng.create ~seed:42 in
  for i = 0 to 199 do
    let t = 7. +. (float_of_int (Engine.Rng.int rng 64) /. 64.) in
    Equeue.add heap ~time:t i;
    Equeue.add wheel ~time:t i
  done;
  let popped = drain_both heap wheel in
  Alcotest.(check int) "all 200 popped" 200 (List.length popped)

let test_pop_into_add_key_duals () =
  (* The simulator's flat-buffer fast path agrees with the labelled API. *)
  let w = Wheel.create ~dummy:(-1) () and h = Heap.create ~dummy:(-1) () in
  let buf = [| 0. |] in
  for i = 0 to 99 do
    buf.(0) <- float_of_int ((i * 13) mod 50) /. 2.;
    Wheel.add_key w buf i;
    Heap.add_key h buf i
  done;
  for _ = 0 to 99 do
    let tw = Wheel.min_time w in
    let vw = Wheel.pop_into w buf in
    Alcotest.(check (float 0.)) "pop_into time" tw buf.(0);
    let th = Heap.min_time h in
    let vh = Heap.pop_into h buf in
    Alcotest.(check (float 0.)) "heap pop_into time" th buf.(0);
    Alcotest.(check int) "payloads agree" vh vw;
    Alcotest.(check (float 0.)) "keys agree" th tw
  done;
  Alcotest.(check bool) "wheel drained" true (Wheel.is_empty w);
  Alcotest.(check int) "empty pop_into returns dummy" (-1) (Wheel.pop_into w buf)

(* ---- Sim-level equivalence: schedule/cancel under both queues ---- *)

(* Replay one deterministic schedule/cancel/step script against a sim on
   each queue kind, recording every fire; traces must be identical. *)
let run_script kind ops =
  let sim = Sim.create ~queue:kind () in
  let trace = Buffer.create 256 in
  let handles = ref [] in
  let fire id = Buffer.add_string trace (Printf.sprintf "%h:%d;" (Sim.now sim) id) in
  List.iter
    (fun (op, k) ->
      match op with
      | 0 | 1 | 2 ->
          let delay = float_of_int k /. 2. in
          handles := Sim.schedule_after sim ~delay (fun () -> fire k) :: !handles
      | 3 | 4 ->
          let delay = float_of_int k /. 2. in
          handles := Sim.schedule_fn_after sim ~delay fire (1000 + k) :: !handles
      | 5 -> (
          (* cancel the k-th outstanding handle, if any *)
          match List.nth_opt !handles (k mod max 1 (List.length !handles)) with
          | Some h when !handles <> [] -> Sim.cancel sim h
          | _ -> ())
      | _ -> ignore (Sim.step sim : bool))
    ops;
  Sim.run sim;
  Buffer.add_string trace (Printf.sprintf "end:%h" (Sim.now sim));
  Buffer.contents trace

let prop_sim_trace_queue_independent =
  let op_gen = QCheck.Gen.(list (pair (int_bound 7) (int_bound 20))) in
  QCheck.Test.make ~name:"sim traces identical under heap and wheel" ~count:200
    (QCheck.make ~print:(fun ops -> string_of_int (List.length ops)) op_gen)
    (fun ops ->
      String.equal (run_script Equeue.Heap ops) (run_script Equeue.Wheel ops))

(* The two dispatch APIs must also produce the same trace: the same
   workload scheduled through closures and through (fn, iarg) pairs. *)
let run_chain kind ~fn_api =
  let sim = Sim.create ~queue:kind () in
  let rng = Engine.Rng.create ~seed:7 in
  let trace = Buffer.create 256 in
  let remaining = ref 500 in
  let rec arm id =
    if !remaining > 0 then begin
      decr remaining;
      let delay = Engine.Rng.float rng *. 20. in
      if fn_api then ignore (Sim.schedule_fn_after sim ~delay fire id : Sim.handle)
      else ignore (Sim.schedule_after sim ~delay (fun () -> fire id) : Sim.handle)
    end
  and fire id =
    Buffer.add_string trace (Printf.sprintf "%h:%d;" (Sim.now sim) id);
    arm ((id + 1) land 0xff)
  in
  for id = 0 to 3 do
    arm id
  done;
  Sim.run sim;
  Buffer.contents trace

let test_dispatch_api_parity () =
  let reference = run_chain Equeue.Heap ~fn_api:false in
  List.iter
    (fun (kind, fn_api, label) ->
      Alcotest.(check string) label reference (run_chain kind ~fn_api))
    [
      (Equeue.Heap, true, "heap + schedule_fn");
      (Equeue.Wheel, false, "wheel + closures");
      (Equeue.Wheel, true, "wheel + schedule_fn");
    ]

(* ---- figure byte-parity across queue back ends ---- *)

let render_figure target ~kind =
  Sim.set_default_queue kind;
  Fun.protect
    ~finally:(fun () -> Sim.set_default_queue Equeue.Wheel)
    (fun () ->
      match List.assoc_opt target Experiments.Figures.all_targets with
      | None -> Alcotest.failf "no such target %s" target
      | Some f -> Output.capture (fun () -> f ~jobs:1 ~scale:0.01))

let test_figure_parity_across_queues () =
  List.iter
    (fun target ->
      let wheel = render_figure target ~kind:Equeue.Wheel in
      Alcotest.(check bool)
        (Printf.sprintf "%s renders something" target)
        true
        (String.length wheel > 0);
      let heap = render_figure target ~kind:Equeue.Heap in
      Alcotest.(check string)
        (Printf.sprintf "%s byte-identical under heap and wheel" target)
        wheel heap)
    [ "fig2"; "fig6" ]

(* ---- kind selection plumbing ---- *)

let test_kind_of_string () =
  Alcotest.(check bool) "heap" true (Equeue.kind_of_string "Heap" = Some Equeue.Heap);
  Alcotest.(check bool) "wheel" true (Equeue.kind_of_string " wheel " = Some Equeue.Wheel);
  Alcotest.(check bool) "garbage" true (Equeue.kind_of_string "fifo" = None)

let test_create_queue_kind () =
  let s = Sim.create ~queue:Equeue.Heap () in
  Alcotest.(check bool) "explicit heap" true (Sim.queue_kind s = Equeue.Heap);
  let s = Sim.create ~queue:Equeue.Wheel () in
  Alcotest.(check bool) "explicit wheel" true (Sim.queue_kind s = Equeue.Wheel)

let () =
  Alcotest.run "equeue"
    [
      ( "model equivalence",
        [
          QCheck_alcotest.to_alcotest prop_wheel_matches_heap;
          QCheck_alcotest.to_alcotest prop_wheel_payloads_match;
        ] );
      ( "edges",
        [
          Alcotest.test_case "empty queue accessors" `Quick test_empty_queue;
          Alcotest.test_case "far-future cascades" `Quick test_far_future_cascades;
          Alcotest.test_case "adds at a reached tick" `Quick test_add_at_reached_tick;
          Alcotest.test_case "same-tick cohort (heapsort path)" `Quick test_same_tick_cohort;
          Alcotest.test_case "pop_into/add_key duals" `Quick test_pop_into_add_key_duals;
        ] );
      ( "sim equivalence",
        [
          QCheck_alcotest.to_alcotest prop_sim_trace_queue_independent;
          Alcotest.test_case "dispatch APIs trace-identical" `Quick test_dispatch_api_parity;
        ] );
      ( "figure parity",
        [
          Alcotest.test_case "figures byte-identical across queues" `Slow
            test_figure_parity_across_queues;
        ] );
      ( "selection",
        [
          Alcotest.test_case "kind_of_string" `Quick test_kind_of_string;
          Alcotest.test_case "create ?queue" `Quick test_create_queue_kind;
        ] );
    ]
