(* Edge cases and secondary behaviours across all libraries — boundary
   inputs, rare code paths, and cross-checks that the main suites do not
   cover. *)

module Rng = Engine.Rng
module Dist = Engine.Dist
module Sim = Engine.Sim
module Heap = Engine.Heap

(* ---- engine ---- *)

let test_heap_interleaved () =
  (* add/pop interleavings with duplicate times keep global order. *)
  let h = Heap.create ~dummy:"" () in
  Heap.add h ~time:5. "a";
  Heap.add h ~time:1. "b";
  Alcotest.(check (option (pair (float 0.) string))) "pop min" (Some (1., "b")) (Heap.pop_min h);
  Heap.add h ~time:0.5 "c";
  Heap.add h ~time:5. "d";
  Alcotest.(check (option (pair (float 0.) string))) "new min" (Some (0.5, "c")) (Heap.pop_min h);
  Alcotest.(check (option (pair (float 0.) string))) "tie fifo a" (Some (5., "a")) (Heap.pop_min h);
  Alcotest.(check (option (pair (float 0.) string))) "tie fifo d" (Some (5., "d")) (Heap.pop_min h)

let test_sim_cancel_after_fire () =
  let sim = Sim.create () in
  let h = Sim.schedule sim ~at:1. (fun () -> ()) in
  Sim.run sim;
  (* cancelling a fired event is a harmless no-op *)
  Sim.cancel sim h;
  Sim.cancel sim h;
  Alcotest.(check int) "queue empty" 0 (Sim.pending sim)

let test_sim_zero_delay_event () =
  let sim = Sim.create () in
  let fired = ref false in
  ignore (Sim.schedule_after sim ~delay:0. (fun () -> fired := true) : Sim.handle);
  Sim.run sim;
  Alcotest.(check bool) "zero-delay fires" true !fired

let test_dist_pp_and_names () =
  let check_name d expected = Alcotest.(check string) expected expected (Dist.name d) in
  check_name (Dist.deterministic 1.) "fixed";
  check_name (Dist.exponential 1.) "exp";
  check_name (Dist.bimodal1 ~mean:1.) "bimodal1";
  check_name (Dist.bimodal2 ~mean:1.) "bimodal2";
  check_name (Dist.lognormal ~mean:1. ~sigma:1.) "lognormal";
  check_name (Dist.empirical [| 1. |]) "empirical";
  let s = Format.asprintf "%a" Dist.pp (Dist.exponential 3.) in
  Alcotest.(check string) "pp" "exp(3)" s

let test_lognormal_tail_heavier_than_exp () =
  let rng = Rng.create ~seed:20 in
  let sample_p999 d =
    let t = Stats.Tally.create () in
    for _ = 1 to 100_000 do
      Stats.Tally.record t (Dist.sample d rng)
    done;
    Stats.Tally.p999 t
  in
  let logn = sample_p999 (Dist.lognormal ~mean:10. ~sigma:2.) in
  let exp = sample_p999 (Dist.exponential 10.) in
  Alcotest.(check bool) (Printf.sprintf "lognormal p999 %.0f > exp %.0f" logn exp) true
    (logn > exp)

let test_rng_float_range_bounds () =
  let rng = Rng.create ~seed:21 in
  for _ = 1 to 1_000 do
    let x = Rng.float_range rng 3. 7. in
    if x < 3. || x >= 7. then Alcotest.failf "out of range: %g" x
  done

(* ---- stats ---- *)

let test_histogram_p100_is_max () =
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.record h) [ 3.; 1.; 15.; 0.2 ];
  Alcotest.(check (float 1e-9)) "p100 = exact max" 15. (Stats.Histogram.percentile h 100.)

let test_tally_invalid_percentile () =
  let t = Stats.Tally.create () in
  Stats.Tally.record t 1.;
  Alcotest.check_raises "p out of range" (Invalid_argument "Tally.percentile: p out of [0,100]")
    (fun () -> ignore (Stats.Tally.percentile t 101. : float))

let test_tally_single_sample () =
  let t = Stats.Tally.create () in
  Stats.Tally.record t 42.;
  Alcotest.(check (float 0.)) "p1" 42. (Stats.Tally.percentile t 1.);
  Alcotest.(check (float 0.)) "p99" 42. (Stats.Tally.p99 t);
  Alcotest.(check (float 0.)) "stddev of one" 0. (Stats.Tally.stddev t)

(* ---- net ---- *)

let test_ring_iter () =
  let r = Net.Ring.create ~capacity:8 in
  List.iter (fun x -> ignore (Net.Ring.push r x : bool)) [ 1; 2; 3 ];
  let acc = ref [] in
  Net.Ring.iter (fun x -> acc := x :: !acc) r;
  Alcotest.(check (list int)) "iter front-to-back" [ 1; 2; 3 ] (List.rev !acc);
  Alcotest.(check int) "iter does not consume" 3 (Net.Ring.length r)

let test_rss_odd_queue_counts () =
  List.iter
    (fun queues ->
      let rss = Net.Rss.create ~queues () in
      let hist = Net.Rss.histogram_of_conns rss 1000 in
      Alcotest.(check int) "queue count" queues (Array.length hist);
      Alcotest.(check int) "total" 1000 (Array.fold_left ( + ) 0 hist))
    [ 1; 3; 7; 16 ]

let test_loadgen_conn_validation () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:22 in
  let pool = Net.Request.create_pool () in
  Alcotest.check_raises "conns" (Invalid_argument "Loadgen.create: conns < 1") (fun () ->
      ignore
        (Net.Loadgen.create sim ~rng ~pool ~conns:0 ~rate:1.
           ~service:(Dist.deterministic 1.) ()
          : Net.Loadgen.t));
  Alcotest.check_raises "rate" (Invalid_argument "Loadgen.create: rate <= 0") (fun () ->
      ignore
        (Net.Loadgen.create sim ~rng ~pool ~conns:1 ~rate:0.
           ~service:(Dist.deterministic 1.) ()
          : Net.Loadgen.t))

(* ---- silo ---- *)

let test_btree_empty_ops () =
  let t : int Silo.Btree.t = Silo.Btree.create () in
  Alcotest.(check int) "empty length" 0 (Silo.Btree.length t);
  let v, _leaf = Silo.Btree.get t "missing" in
  Alcotest.(check (option int)) "get on empty" None v;
  Alcotest.(check (option int)) "remove on empty" None (Silo.Btree.remove t "missing");
  Alcotest.(check int) "scan on empty" 0
    (List.length (Silo.Btree.scan_range t ~lo:"" ~hi:"\xff" ()));
  Silo.Btree.check_invariants t

let test_btree_commit_interface () =
  let t = Silo.Btree.create () in
  Silo.Btree.lock_tree t;
  (match Silo.Btree.insert_unlocked t "k" 1 with
  | `Inserted -> ()
  | `Duplicate _ -> Alcotest.fail "unexpected duplicate");
  (match Silo.Btree.insert_unlocked t "k" 2 with
  | `Duplicate 1 -> ()
  | _ -> Alcotest.fail "duplicate not detected");
  Alcotest.(check (option int)) "remove unlocked" (Some 1) (Silo.Btree.remove_unlocked t "k");
  Silo.Btree.unlock_tree t;
  Silo.Btree.check_invariants t

let test_btree_reverse_insertion () =
  let t = Silo.Btree.create () in
  for i = 500 downto 0 do
    match Silo.Btree.insert t (Silo.Key.of_int i) i with
    | `Inserted -> ()
    | `Duplicate _ -> Alcotest.fail "dup"
  done;
  Silo.Btree.check_invariants t;
  let all = Silo.Btree.scan_range t ~lo:"" ~hi:"\xff\xff\xff\xff\xff\xff\xff\xff" () in
  Alcotest.(check int) "all present" 501 (List.length all);
  Alcotest.(check bool) "sorted ascending" true
    (List.map snd all = List.init 501 Fun.id)

let test_key_of_ints_str_ordering () =
  (* composite (ints, string) keys group by the int prefix. *)
  let a = Silo.Key.of_ints_str [ 1; 2 ] "SMITH" in
  let b = Silo.Key.of_ints_str [ 1; 2 ] "SMYTH" in
  let c = Silo.Key.of_ints_str [ 1; 3 ] "ADAMS" in
  Alcotest.(check bool) "string orders within prefix" true (String.compare a b < 0);
  Alcotest.(check bool) "prefix dominates" true (String.compare b c < 0)

let test_txn_reuse_rejected () =
  let db = Silo.Db.create () in
  let table = Silo.Db.add_table db "t" in
  let w = Silo.Db.worker db ~id:0 in
  let txn = Silo.Txn.begin_ db w in
  Silo.Txn.insert txn table "x" [| "1" |];
  (match Silo.Txn.commit txn with Ok _ -> () | Error `Conflict -> Alcotest.fail "conflict");
  Alcotest.check_raises "reuse after commit"
    (Invalid_argument "Txn: transaction already finished") (fun () ->
      ignore (Silo.Txn.read txn table "x" : string array option))

let test_db_duplicate_table () =
  let db = Silo.Db.create () in
  ignore (Silo.Db.add_table db "t" : Silo.Db.table);
  Alcotest.check_raises "duplicate" (Invalid_argument "Db.add_table: duplicate table t")
    (fun () -> ignore (Silo.Db.add_table db "t" : Silo.Db.table));
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Silo.Db.find_table db "nope" : Silo.Db.table))

let test_record_absent_lifecycle () =
  let r = Silo.Record.create_absent [| "ghost" |] in
  let tid, _ = Silo.Record.stable_read r in
  Alcotest.(check bool) "created absent" true (Silo.Tid.is_absent tid);
  Silo.Record.lock r;
  Silo.Record.install r ~data:[| "alive" |] ~tid:(Silo.Tid.make ~epoch:1 ~seq:1);
  let tid2, data = Silo.Record.stable_read r in
  Alcotest.(check bool) "install clears nothing implicitly" false (Silo.Tid.is_absent tid2);
  Alcotest.(check string) "data installed" "alive" data.(0)

let test_tpcc_full_profile_loads () =
  (* Spec-size loading is expensive; just verify the knob works at 1
     warehouse and the row counts scale by 10x over `Small. *)
  let t = Silo.Tpcc.load ~profile:`Full () in
  Alcotest.(check int) "items" 100_000 (Silo.Tpcc.items t);
  Alcotest.(check int) "customers" 3000 (Silo.Tpcc.customers_per_district t);
  let db = Silo.Tpcc.db t in
  Alcotest.(check int) "customer rows" 30_000
    (Silo.Btree.length (Silo.Db.find_table db "customer").Silo.Db.index)

(* ---- kvstore ---- *)

let test_protocol_zero_byte_set () =
  let p = Kvstore.Protocol.create_parser () in
  match Kvstore.Protocol.feed p "set empty 0 0 0\r\n\r\n" with
  | [ Ok (Kvstore.Protocol.Set { key = "empty"; data = ""; _ }) ] -> ()
  | _ -> Alcotest.fail "zero-byte set not parsed"

let test_protocol_gets_alias () =
  let p = Kvstore.Protocol.create_parser () in
  match Kvstore.Protocol.feed p "gets k\r\n" with
  | [ Ok (Kvstore.Protocol.Get "k") ] -> ()
  | _ -> Alcotest.fail "gets not handled"

let test_protocol_byte_at_a_time () =
  let p = Kvstore.Protocol.create_parser () in
  let wire = "set k 0 0 3\r\nxyz\r\nget k\r\n" in
  let out = ref [] in
  String.iter
    (fun c -> out := List.rev_append (Kvstore.Protocol.feed p (String.make 1 c)) !out)
    wire;
  match List.rev !out with
  | [ Ok (Kvstore.Protocol.Set _); Ok (Kvstore.Protocol.Get "k") ] -> ()
  | l -> Alcotest.failf "byte-at-a-time parse gave %d results" (List.length l)

let test_store_delete_then_reinsert () =
  let s = Kvstore.Store.create ~capacity:4 () in
  Kvstore.Store.set s "a" "1";
  Alcotest.(check bool) "deleted" true (Kvstore.Store.delete s "a");
  Kvstore.Store.set s "a" "2";
  Alcotest.(check (option string)) "reinserted" (Some "2") (Kvstore.Store.get s "a");
  (* fill beyond capacity to exercise eviction across dead slots *)
  for i = 0 to 19 do
    Kvstore.Store.set s (string_of_int i) "v"
  done;
  Alcotest.(check bool) "bounded" true (Kvstore.Store.size s <= 4)

let test_workload_etc_value_range () =
  let rng = Rng.create ~seed:23 in
  let wl = Kvstore.Workload.create ~records:100 Kvstore.Workload.Etc in
  for _ = 1 to 3_000 do
    match Kvstore.Workload.next_command wl rng with
    | Kvstore.Protocol.Set { data; _ } ->
        let n = String.length data in
        if n < 11 || n > 4096 then Alcotest.failf "ETC value size out of range: %d" n
    | _ -> ()
  done

(* ---- models ---- *)

let test_queueing_bimodal2_partitioned_pathological () =
  (* §3.4 omits bimodal-2 because multi-queue FCFS is pathological there;
     verify the pathology: partitioned p99 at moderate load is an order of
     magnitude above centralized. *)
  let open Models.Queueing in
  let service = Dist.bimodal2 ~mean:1. in
  let p99 topology =
    let r = simulate { servers = 16; policy = Fcfs; topology } ~service ~load:0.5
        ~requests:60_000 ~seed:9
    in
    Stats.Tally.p99 r.latencies
  in
  let central = p99 Central and partitioned = p99 Partitioned in
  Alcotest.(check bool)
    (Printf.sprintf "partitioned %.1f >> central %.1f" partitioned central)
    true
    (partitioned > 5. *. central)

(* ---- runtime ---- *)

let test_executor_many_conns_few_cores () =
  let exec = Runtime.Executor.create ~cores:2 ~conns:100 () in
  Runtime.Executor.start exec;
  let n = Atomic.make 0 in
  for i = 0 to 999 do
    Runtime.Executor.submit exec ~conn:(i mod 100) (fun () ->
        ignore (Atomic.fetch_and_add n 1 : int))
  done;
  Runtime.Executor.stop exec;
  Alcotest.(check int) "all ran" 1000 (Atomic.get n)

let () =
  Alcotest.run "edge-cases"
    [
      ( "engine",
        [
          Alcotest.test_case "heap interleaved" `Quick test_heap_interleaved;
          Alcotest.test_case "cancel after fire" `Quick test_sim_cancel_after_fire;
          Alcotest.test_case "zero-delay event" `Quick test_sim_zero_delay_event;
          Alcotest.test_case "dist names/pp" `Quick test_dist_pp_and_names;
          Alcotest.test_case "lognormal tail" `Slow test_lognormal_tail_heavier_than_exp;
          Alcotest.test_case "float_range bounds" `Quick test_rng_float_range_bounds;
        ] );
      ( "stats",
        [
          Alcotest.test_case "histogram p100" `Quick test_histogram_p100_is_max;
          Alcotest.test_case "invalid percentile" `Quick test_tally_invalid_percentile;
          Alcotest.test_case "single sample" `Quick test_tally_single_sample;
        ] );
      ( "net",
        [
          Alcotest.test_case "ring iter" `Quick test_ring_iter;
          Alcotest.test_case "rss odd queues" `Quick test_rss_odd_queue_counts;
          Alcotest.test_case "loadgen validation" `Quick test_loadgen_conn_validation;
        ] );
      ( "silo",
        [
          Alcotest.test_case "btree empty" `Quick test_btree_empty_ops;
          Alcotest.test_case "btree commit interface" `Quick test_btree_commit_interface;
          Alcotest.test_case "btree reverse insertion" `Quick test_btree_reverse_insertion;
          Alcotest.test_case "composite keys" `Quick test_key_of_ints_str_ordering;
          Alcotest.test_case "txn reuse rejected" `Quick test_txn_reuse_rejected;
          Alcotest.test_case "duplicate table" `Quick test_db_duplicate_table;
          Alcotest.test_case "absent record" `Quick test_record_absent_lifecycle;
          Alcotest.test_case "tpcc full profile" `Slow test_tpcc_full_profile_loads;
        ] );
      ( "kvstore",
        [
          Alcotest.test_case "zero-byte set" `Quick test_protocol_zero_byte_set;
          Alcotest.test_case "gets alias" `Quick test_protocol_gets_alias;
          Alcotest.test_case "byte-at-a-time" `Quick test_protocol_byte_at_a_time;
          Alcotest.test_case "delete/reinsert/evict" `Quick test_store_delete_then_reinsert;
          Alcotest.test_case "etc value range" `Quick test_workload_etc_value_range;
        ] );
      ( "models",
        [
          Alcotest.test_case "bimodal-2 pathology" `Slow
            test_queueing_bimodal2_partitioned_pathological;
        ] );
      ( "runtime",
        [ Alcotest.test_case "many conns few cores" `Quick test_executor_many_conns_few_cores ]
      );
    ]
