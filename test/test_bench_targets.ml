(* Regression net over deliverable (d): every bench target must run to
   completion at a tiny scale without raising, and the registry must stay
   complete. The heavyweight sweep targets (fig3/fig6/fig7) are exercised
   once each at the minimum request budget; everything else too. Output is
   redirected away so test logs stay readable. *)

let with_quiet_stdout f =
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  flush stdout;
  Unix.dup2 devnull Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close devnull)
    f

let fast_targets =
  [ "fig2"; "fig8"; "fig9"; "fig10a"; "fig10b"; "table1"; "fig11"; "ablate-poll";
    "ablate-batch"; "ext-preempt"; "ext-rebalance"; "ext-consolidate"; "chaos" ]

let slow_targets = [ "fig3"; "fig7"; "fig6" ]

let run_target ?(jobs = 1) name =
  match List.assoc_opt name Experiments.Figures.all_targets with
  | None -> Alcotest.failf "target %s missing from registry" name
  | Some f -> with_quiet_stdout (fun () -> f ~jobs ~scale:0.01)

(* jobs:2 so every fast target also exercises the pooled path. *)
let test_fast_targets () = List.iter (run_target ~jobs:2) fast_targets

let test_slow_targets () = List.iter (run_target ~jobs:1) slow_targets

let test_registry_complete () =
  let names = List.map fst Experiments.Figures.all_targets in
  List.iter
    (fun n -> if not (List.mem n names) then Alcotest.failf "missing: %s" n)
    (fast_targets @ slow_targets)

let () =
  Alcotest.run "bench-targets"
    [
      ( "targets",
        [
          Alcotest.test_case "registry complete" `Quick test_registry_complete;
          Alcotest.test_case "fast targets run" `Slow test_fast_targets;
          Alcotest.test_case "sweep targets run" `Slow test_slow_targets;
        ] );
    ]
