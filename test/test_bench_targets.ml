(* Regression net over deliverable (d): every bench target must run to
   completion at a tiny scale without raising, and the registry must stay
   complete. The heavyweight sweep targets (fig3/fig6/fig7) are exercised
   once each at the minimum request budget; everything else too. Output is
   redirected away so test logs stay readable. *)

let with_quiet_stdout f =
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  flush stdout;
  Unix.dup2 devnull Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close devnull)
    f

let fast_targets =
  [ "fig2"; "fig8"; "fig9"; "fig10a"; "fig10b"; "table1"; "fig11"; "ablate-poll";
    "ablate-batch"; "ext-preempt"; "ext-rebalance"; "ext-consolidate"; "chaos"; "rack" ]

let slow_targets = [ "fig3"; "fig7"; "fig6" ]

let run_target ?(jobs = 1) name =
  match List.assoc_opt name Experiments.Figures.all_targets with
  | None -> Alcotest.failf "target %s missing from registry" name
  | Some f -> with_quiet_stdout (fun () -> f ~jobs ~scale:0.01)

(* jobs:2 so every fast target also exercises the pooled path. *)
let test_fast_targets () = List.iter (run_target ~jobs:2) fast_targets

let test_slow_targets () = List.iter (run_target ~jobs:1) slow_targets

let test_registry_complete () =
  let names = List.map fst Experiments.Figures.all_targets in
  List.iter
    (fun n -> if not (List.mem n names) then Alcotest.failf "missing: %s" n)
    (fast_targets @ slow_targets)

(* The CLI must reject an unknown figure target with a non-zero exit and
   name the valid ones (the dune deps make the binary available). *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_unknown_target_cli () =
  let err = Filename.temp_file "zygos_cli" ".err" in
  Fun.protect
    ~finally:(fun () -> Sys.remove err)
    (fun () ->
      let rc =
        Sys.command
          (Printf.sprintf "../bin/main.exe no-such-target >/dev/null 2>%s"
             (Filename.quote err))
      in
      if rc = 0 then Alcotest.fail "unknown target must exit non-zero";
      let ic = open_in_bin err in
      let out = really_input_string ic (in_channel_length ic) in
      close_in ic;
      List.iter
        (fun needle ->
          if not (contains out needle) then
            Alcotest.failf "stderr must mention %S, got:\n%s" needle out)
        [ "unknown target"; "valid targets:"; "rack"; "fig2"; "chaos" ])

let () =
  Alcotest.run "bench-targets"
    [
      ( "targets",
        [
          Alcotest.test_case "registry complete" `Quick test_registry_complete;
          Alcotest.test_case "unknown target exits non-zero" `Quick
            test_unknown_target_cli;
          Alcotest.test_case "fast targets run" `Slow test_fast_targets;
          Alcotest.test_case "sweep targets run" `Slow test_slow_targets;
        ] );
    ]
