(* Tests for the two future-work extensions: the preemptive centralized
   scheduler (§2.3 Observation 2) and the RSS-reprogramming control plane
   (§5), plus the supporting API (dynamic indirection table, skewed load
   generation). *)

module Run = Experiments.Run
module Dist = Engine.Dist
module Rss = Net.Rss

let point ?(requests = 12_000) ?selection system ~service ~load =
  let cfg = Run.config ~system ~service ~requests ?selection () in
  Run.run_point cfg ~load

(* ---- preemptive scheduler ---- *)

let test_preemptive_wins_on_bimodal2 () =
  (* Under extreme dispersion, preemption must beat every FCFS system by a
     wide margin at the tail (Fig. 2d's PS-vs-FCFS gap, with overheads). *)
  let service = Dist.bimodal2 ~mean:10. in
  let pre = point (Run.Preemptive 5.) ~service ~load:0.6 in
  let zygos = point Run.Zygos ~service ~load:0.6 in
  let ix = point (Run.Ix 1) ~service ~load:0.6 in
  Alcotest.(check bool)
    (Printf.sprintf "preempt %.1f << zygos %.1f << ix %.1f" pre.Run.p99 zygos.Run.p99 ix.Run.p99)
    true
    (pre.Run.p99 < 0.5 *. zygos.Run.p99 && zygos.Run.p99 < 0.1 *. ix.Run.p99)

let test_preemptive_overhead_on_fixed () =
  (* On deterministic tasks preemption has nothing to offer: a small
     quantum only adds context switches (more preemptions, higher tail
     than a large quantum). *)
  let service = Dist.deterministic 10. in
  let q1 = point (Run.Preemptive 1.) ~service ~load:0.6 in
  let q20 = point (Run.Preemptive 20.) ~service ~load:0.6 in
  Alcotest.(check bool)
    (Printf.sprintf "q=1 tail %.1f worse than q=20 tail %.1f" q1.Run.p99 q20.Run.p99)
    true
    (q1.Run.p99 > q20.Run.p99);
  let preemptions p = Option.value ~default:0. (List.assoc_opt "preemptions_per_request" p.Run.info) in
  (* Preemption fires only when other work queues behind the running job,
     so the per-request count reflects queueing frequency, not 10/q. *)
  Alcotest.(check bool) "q=1 preempts regularly" true (preemptions q1 > 0.2);
  Alcotest.(check bool) "q=20 never preempts fixed 10us work" true (preemptions q20 = 0.)

let test_preemptive_ordering_and_args () =
  let service = Dist.bimodal2 ~mean:10. in
  let p = point (Run.Preemptive 5.) ~service ~load:0.7 in
  Alcotest.(check int) "per-conn ordering preserved" 0 p.Run.order_violations;
  let sim = Engine.Sim.create () in
  let params = Systems.Params.default () in
  Alcotest.check_raises "quantum <= 0" (Invalid_argument "Preemptive.create: quantum <= 0")
    (fun () ->
      ignore
        (Systems.Preemptive.create sim params ~quantum:0. ~switch_cost:0.1
           ~pool:(Net.Request.create_pool ()) ~conns:1
           ~respond:(fun _ -> ())
           ()
          : Systems.Iface.t))

(* ---- RSS dynamic indirection ---- *)

let test_rss_slot_reprogramming () =
  let rss = Rss.create ~queues:4 () in
  Alcotest.(check int) "128 slots" 128 (Rss.slots rss);
  let conn = 7 in
  let slot = Rss.slot_of_conn rss conn in
  let before = Rss.queue_of_conn rss conn in
  Alcotest.(check int) "slot consistent with queue" before (Rss.queue_of_slot rss slot);
  let target = (before + 1) mod 4 in
  Rss.set_slot rss ~slot ~queue:target;
  Alcotest.(check int) "remap visible" target (Rss.queue_of_conn rss conn);
  Alcotest.(check int) "slot stable across remap" slot (Rss.slot_of_conn rss conn);
  Alcotest.check_raises "bad slot" (Invalid_argument "Rss.set_slot: slot out of range")
    (fun () -> Rss.set_slot rss ~slot:128 ~queue:0)

(* ---- skewed load generation ---- *)

let test_hot_cold_selection () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:5 in
  let pool = Net.Request.create_pool ~recycle:true () in
  let gen =
    Net.Loadgen.create sim ~rng ~pool ~conns:100 ~rate:1.0
      ~service:(Dist.deterministic 1.)
      ~selection:(Net.Loadgen.Hot_cold { hot_fraction = 0.1; hot_load = 0.6 })
      ()
  in
  let hot_hits = ref 0 and total = ref 0 in
  Net.Loadgen.set_target gen (fun req ->
      incr total;
      if Net.Request.conn pool req < 10 then incr hot_hits;
      Net.Loadgen.complete gen req);
  Net.Loadgen.start gen ~warmup:0. ~measure:20_000.;
  Engine.Sim.run sim;
  let frac = float_of_int !hot_hits /. float_of_int !total in
  Alcotest.(check bool)
    (Printf.sprintf "hot 10%% of conns got %.2f of load (want ~0.6)" frac)
    true
    (abs_float (frac -. 0.6) < 0.03)

let test_hot_cold_validation () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:6 in
  Alcotest.check_raises "bad fractions"
    (Invalid_argument "Loadgen.create: Hot_cold fractions must be in (0, 1)") (fun () ->
      ignore
        (Net.Loadgen.create sim ~rng ~pool:(Net.Request.create_pool ()) ~conns:10
           ~rate:1.0 ~service:(Dist.deterministic 1.)
           ~selection:(Net.Loadgen.Hot_cold { hot_fraction = 1.5; hot_load = 0.5 })
           ()
          : Net.Loadgen.t))

(* ---- the control plane ---- *)

let skew = Net.Loadgen.Hot_cold { hot_fraction = 0.05; hot_load = 0.5 }

let test_rebalance_reduces_skewed_tail () =
  let service = Dist.exponential 10. in
  let static = point ~selection:skew (Run.Ix 1) ~service ~load:0.8 in
  let rebalanced = point ~selection:skew (Run.Ix_rebalanced 200.) ~service ~load:0.8 in
  Alcotest.(check bool)
    (Printf.sprintf "rebalanced p99 %.1f < 0.7 x static %.1f" rebalanced.Run.p99 static.Run.p99)
    true
    (rebalanced.Run.p99 < 0.7 *. static.Run.p99);
  let moves = Option.value ~default:0. (List.assoc_opt "rebalance_moves" rebalanced.Run.info) in
  Alcotest.(check bool) "controller actually moved slots" true (moves > 0.)

let test_zygos_immune_to_skew () =
  (* Work stealing absorbs persistent imbalance with no control plane:
     the skewed tail stays within a small factor of the uniform one. *)
  let service = Dist.exponential 10. in
  let uniform = point Run.Zygos ~service ~load:0.7 in
  let skewed = point ~selection:skew Run.Zygos ~service ~load:0.7 in
  Alcotest.(check bool)
    (Printf.sprintf "skewed p99 %.1f within 1.5x of uniform %.1f" skewed.Run.p99 uniform.Run.p99)
    true
    (skewed.Run.p99 < 1.5 *. uniform.Run.p99);
  Alcotest.(check int) "no order violations" 0 skewed.Run.order_violations

let test_rebalance_idle_terminates () =
  (* The controller must stop re-arming once traffic ends, or simulations
     would never terminate. This run finishing at all is the test; also
     check it observed a bounded number of windows. *)
  let service = Dist.exponential 10. in
  let p = point ~requests:4_000 ~selection:skew (Run.Ix_rebalanced 100.) ~service ~load:0.4 in
  let windows = Option.value ~default:0. (List.assoc_opt "rebalance_windows" p.Run.info) in
  Alcotest.(check bool) "controller ticked and stopped" true (windows > 2. && windows < 10_000.)

(* ---- consolidation ---- *)

let run_consolidated ~load =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:42 in
  let service = Dist.exponential 10. in
  let rate = load *. 16. /. 10. in
  let pool = Net.Request.create_pool ~recycle:true () in
  let gen =
    Net.Loadgen.create sim ~rng:(Engine.Rng.split rng) ~pool ~conns:512 ~rate ~service ()
  in
  let system =
    Systems.Preemptive.create sim (Systems.Params.default ()) ~quantum:10. ~switch_cost:0.3
      ~pool ~conns:512
      ~respond:(fun req -> Net.Loadgen.complete gen req)
      ~consolidate:Systems.Preemptive.default_consolidation ()
  in
  Net.Loadgen.set_target gen system.Systems.Iface.submit;
  let measure = 8_000. /. rate in
  Net.Loadgen.start gen ~warmup:(0.3 *. measure) ~measure;
  Engine.Sim.run sim;
  let avg = Option.get (Systems.Iface.info_value system "avg_active_cores") in
  (avg, Stats.Tally.p99 (Net.Loadgen.tally gen), Net.Loadgen.order_violations gen)

let test_consolidation_parks_at_low_load () =
  let avg, _, violations = run_consolidated ~load:0.1 in
  Alcotest.(check int) "ordering" 0 violations;
  Alcotest.(check bool)
    (Printf.sprintf "avg active cores %.1f well below 16" avg)
    true (avg < 8.)

let test_consolidation_scales_up_at_high_load () =
  let avg, p99, _ = run_consolidated ~load:0.8 in
  Alcotest.(check bool) (Printf.sprintf "avg active %.1f near 16" avg) true (avg > 14.);
  Alcotest.(check bool) (Printf.sprintf "latency sane: %.1f" p99) true (p99 < 500.)

let test_rebalance_validation () =
  let sim = Engine.Sim.create () in
  let rss = Rss.create ~queues:4 () in
  Alcotest.check_raises "window" (Invalid_argument "Rebalance.attach: window <= 0") (fun () ->
      ignore
        (Systems.Rebalance.attach sim ~rss ~queues:4 ~read_counts:(fun () -> [||]) ~window:0. ()
          : Systems.Rebalance.stats))

let () =
  Alcotest.run "extensions"
    [
      ( "preemptive",
        [
          Alcotest.test_case "wins on bimodal-2" `Quick test_preemptive_wins_on_bimodal2;
          Alcotest.test_case "overhead on fixed" `Quick test_preemptive_overhead_on_fixed;
          Alcotest.test_case "ordering + validation" `Quick test_preemptive_ordering_and_args;
        ] );
      ( "rss-control",
        [
          Alcotest.test_case "slot reprogramming" `Quick test_rss_slot_reprogramming;
          Alcotest.test_case "hot/cold selection" `Quick test_hot_cold_selection;
          Alcotest.test_case "hot/cold validation" `Quick test_hot_cold_validation;
          Alcotest.test_case "rebalance reduces skewed tail" `Quick
            test_rebalance_reduces_skewed_tail;
          Alcotest.test_case "zygos immune to skew" `Quick test_zygos_immune_to_skew;
          Alcotest.test_case "controller terminates" `Quick test_rebalance_idle_terminates;
          Alcotest.test_case "validation" `Quick test_rebalance_validation;
        ] );
      ( "consolidation",
        [
          Alcotest.test_case "parks at low load" `Quick test_consolidation_parks_at_low_load;
          Alcotest.test_case "scales up at high load" `Quick
            test_consolidation_scales_up_at_high_load;
        ] );
    ]
