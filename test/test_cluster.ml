(* Rack tier tests (PR 7):

   - Policy: selection semantics per policy, routable masking, and the
     no-draw guarantee on a 1-server rack.
   - Estimate: zero-delay exactness, staleness under a feedback delay,
     forced resync, refresh horizon.
   - Health: timeout thresholding, probe-slot gating, recovery counters.
   - Failplan: validation, window queries, link/straggler lowering.
   - Dispatch/Rack with scripted fake servers: the JBSQ bound invariant,
     timeout detection + failover recovery, hedged requests with
     first-response-wins dedupe.
   - Degeneracy: a 1-server rack under every policy, zero failure plan,
     zero feedback delay is bitwise identical (per-sample latencies) to
     the bare single-server pipeline at the same seed.
   - Determinism: rack points are byte-identical across heap/wheel event
     queues and across Sweep jobs counts.
   - Acceptance: queue-aware policies track the rack-wide centralized
     bound where static hashing collapses, and bound the p99 damage of a
     degraded server. *)

module Sim = Engine.Sim
module Rng = Engine.Rng
module Dist = Engine.Dist
module Policy = Cluster.Policy
module Estimate = Cluster.Estimate
module Health = Cluster.Health
module Failplan = Cluster.Failplan
module Dispatch = Cluster.Dispatch
module Rack = Cluster.Rack
module Request = Net.Request
module Loadgen = Net.Loadgen
module Run = Experiments.Run
module Rackrun = Experiments.Rackrun

let check_raises_any name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let all_policies = Policy.[ Static_hash; Random; Po2; Jsq; Jbsq 32 ]

(* ---- Policy ---- *)

let test_policy_basics () =
  check_raises_any "jbsq bound 0" (fun () -> Policy.validate (Policy.Jbsq 0));
  List.iter Policy.validate all_policies;
  Alcotest.(check string) "jbsq name" "jbsq-32" (Policy.name (Policy.Jbsq 32));
  Alcotest.(check int) "jbsq bound" 32 (Policy.bound (Policy.Jbsq 32));
  Alcotest.(check int) "jsq bound" max_int (Policy.bound Policy.Jsq);
  Alcotest.(check bool) "hash oblivious" false (Policy.queue_aware Policy.Static_hash);
  Alcotest.(check bool) "jsq aware" true (Policy.queue_aware Policy.Jsq)

let choose ?(n = 4) ?(estimates = [| 0.; 0.; 0.; 0. |]) ?(routable = fun _ -> true)
    ?(seed = 1) ?(conn = 7) policy =
  let rss = Net.Rss.create ~queues:n () in
  let rng = Rng.create ~seed in
  Policy.choose policy ~rss ~rng ~estimate:(fun i -> estimates.(i)) ~routable ~n ~conn

let test_policy_jsq () =
  Alcotest.(check int) "argmin" 2 (choose ~estimates:[| 3.; 2.; 1.; 2. |] Policy.Jsq);
  Alcotest.(check int) "tie -> lowest index" 1
    (choose ~estimates:[| 3.; 1.; 1.; 2. |] Policy.Jsq);
  Alcotest.(check int) "mask wins over estimate" 3
    (choose ~estimates:[| 0.; 0.; 0.; 9. |] ~routable:(fun i -> i = 3) Policy.Jsq);
  Alcotest.(check int) "nothing routable" (-1) (choose ~routable:(fun _ -> false) Policy.Jsq)

let test_policy_hash () =
  let n = 4 in
  let rss = Net.Rss.create ~queues:n () in
  let home = Net.Rss.queue_of_conn rss 7 in
  Alcotest.(check int) "home server" home (choose ~n Policy.Static_hash);
  (* Masking the home server probes linearly to the next index. *)
  Alcotest.(check int) "rehash past masked home"
    ((home + 1) mod n)
    (choose ~n ~routable:(fun i -> i <> home) Policy.Static_hash);
  (* Flow consistency: same conn, same answer, rng untouched. *)
  Alcotest.(check int) "stable" (choose ~n Policy.Static_hash) (choose ~n Policy.Static_hash)

let test_policy_po2 () =
  (* Both candidates exist (n = 2 means po2 samples both): the smaller
     estimate must win regardless of draw order. *)
  for seed = 1 to 20 do
    Alcotest.(check int) "po2 picks the shorter queue" 1
      (choose ~n:2 ~estimates:[| 5.; 0. |] ~seed Policy.Po2)
  done;
  let s = choose ~n:4 ~estimates:[| 1.; 1.; 1.; 1. |] Policy.Po2 in
  Alcotest.(check bool) "in range" true (s >= 0 && s < 4)

let test_policy_single_server_no_draws () =
  (* A 1-server rack must consume no randomness whatever the policy: this
     is what keeps the degenerate rack bit-identical to the bare system. *)
  List.iter
    (fun policy ->
      let rng = Rng.create ~seed:9 in
      let witness = Rng.copy rng in
      let s =
        Policy.choose policy ~rss:(Net.Rss.create ~queues:1 ()) ~rng
          ~estimate:(fun _ -> 0.)
          ~routable:(fun _ -> true)
          ~n:1 ~conn:3
      in
      Alcotest.(check int) (Policy.name policy ^ " picks 0") 0 s;
      Alcotest.(check int64)
        (Policy.name policy ^ " drew nothing")
        (Rng.next_int64 witness) (Rng.next_int64 rng))
    all_policies

(* ---- Estimate ---- *)

let test_estimate_zero_delay_exact () =
  let sim = Sim.create () in
  let live = [| 1.; 2. |] in
  let e = Estimate.create sim ~live ~delay:0. ~until:1000. () in
  live.(0) <- 7.;
  Alcotest.(check (float 0.)) "read is live" 7. (Estimate.read e 0);
  Sim.run sim;
  Alcotest.(check int) "no refresh events" 0 (Estimate.refreshes e)

let test_estimate_staleness () =
  let sim = Sim.create () in
  let live = [| 0. |] in
  let e = Estimate.create sim ~live ~delay:10. ~until:100. () in
  live.(0) <- 4.;
  Alcotest.(check (float 0.)) "stale before refresh" 0. (Estimate.read e 0);
  Alcotest.(check (float 0.)) "exact sees it" 4. (Estimate.exact e 0);
  Sim.run_until sim 10.5;
  Alcotest.(check (float 0.)) "refreshed" 4. (Estimate.read e 0);
  live.(0) <- 9.;
  Estimate.force e 0;
  Alcotest.(check (float 0.)) "forced resync" 9. (Estimate.read e 0);
  (* The refresh loop stops at [until] so the simulation can drain. *)
  Sim.run sim;
  live.(0) <- 13.;
  Alcotest.(check (float 0.)) "frozen after horizon" 9. (Estimate.read e 0);
  Alcotest.(check bool) "bounded refreshes" true (Estimate.refreshes e <= 11)

(* ---- Health ---- *)

let test_health_detection_cycle () =
  let cfg = Health.config ~suspect_after:3 ~probe_interval:100. () in
  let h = Health.create ~n:2 cfg in
  Alcotest.(check bool) "up routable" true (Health.routable h 0 ~now:0.);
  Health.note_timeout h 0 ~now:10.;
  Alcotest.(check bool) "suspect still routable" true (Health.routable h 0 ~now:10.);
  Health.note_timeout h 0 ~now:20.;
  Health.note_timeout h 0 ~now:30.;
  (match Health.state h 0 with
  | Health.Down -> ()
  | Health.Up | Health.Suspect -> Alcotest.fail "expected Down after 3 timeouts");
  Alcotest.(check int) "one detection" 1 (Health.down_count h);
  (* Down: no probe slot until a full interval after detection. *)
  Alcotest.(check bool) "no probe yet" false (Health.routable h 0 ~now:50.);
  Alcotest.(check bool) "probe slot opens" true (Health.routable h 0 ~now:130.);
  (* routable is pure: asking twice must not consume the slot. *)
  Alcotest.(check bool) "still open" true (Health.routable h 0 ~now:130.);
  Health.note_probe h 0 ~now:130.;
  Alcotest.(check bool) "slot consumed" false (Health.routable h 0 ~now:150.);
  Health.note_response h 0 ~now:160.;
  (match Health.state h 0 with
  | Health.Up -> ()
  | Health.Suspect | Health.Down -> Alcotest.fail "expected recovery");
  let get k = List.assoc k (Health.info h) in
  Alcotest.(check (float 0.)) "recoveries" 1. (get "health_recoveries");
  Alcotest.(check (float 0.)) "probes" 1. (get "health_probes");
  Alcotest.(check (float 0.)) "down time" 130. (get "health_down_time");
  (* An intervening response resets the consecutive count. *)
  Health.note_timeout h 1 ~now:0.;
  Health.note_timeout h 1 ~now:1.;
  Health.note_response h 1 ~now:2.;
  Health.note_timeout h 1 ~now:3.;
  Health.note_timeout h 1 ~now:4.;
  (match Health.state h 1 with
  | Health.Suspect -> ()
  | Health.Up | Health.Down -> Alcotest.fail "reset count must keep server 1 out of Down")

(* ---- Failplan ---- *)

let test_failplan_validation () =
  check_raises_any "server out of range" (fun () ->
      Failplan.validate ~servers:2
        [ Failplan.Crash { server = 2; start = 0.; duration = 1. } ]);
  check_raises_any "empty window" (fun () ->
      Failplan.validate ~servers:2
        [ Failplan.Blackhole { server = 0; start = 5.; duration = 0. } ]);
  check_raises_any "slowdown < 1" (fun () ->
      Failplan.validate ~servers:2
        [ Failplan.Degraded { server = 0; slowdown = 0.5; start = 0.; duration = 1. } ]);
  check_raises_any "two blackholes on one server" (fun () ->
      Failplan.validate ~servers:2
        [
          Failplan.Blackhole { server = 1; start = 0.; duration = 1. };
          Failplan.Blackhole { server = 1; start = 5.; duration = 1. };
        ]);
  Failplan.validate ~servers:1 Failplan.none

let test_failplan_lowering () =
  let plan =
    [
      Failplan.Crash { server = 0; start = 10.; duration = 5. };
      Failplan.Blackhole { server = 1; start = 20.; duration = 10. };
      Failplan.Degraded { server = 2; slowdown = 4.; start = 0.; duration = 50. };
    ]
  in
  Failplan.validate ~servers:3 plan;
  Alcotest.(check bool) "crashed inside" true (Failplan.crashed plan ~server:0 ~now:12.);
  Alcotest.(check bool) "window end exclusive" false
    (Failplan.crashed plan ~server:0 ~now:15.);
  Alcotest.(check bool) "other server clean" false (Failplan.crashed plan ~server:1 ~now:12.);
  Alcotest.(check bool) "has_crash" true (Failplan.has_crash plan ~server:0);
  (match Failplan.link_plan plan ~server:1 with
  | Some p ->
      Alcotest.(check bool) "blackhole active at 25" true
        (Net.Faults.blackhole_active p ~now:25.);
      Alcotest.(check bool) "inactive at 30" false (Net.Faults.blackhole_active p ~now:30.)
  | None -> Alcotest.fail "server 1 must have a link plan");
  (match Failplan.link_plan plan ~server:0 with
  | None -> ()
  | Some _ -> Alcotest.fail "server 0 has no blackhole: no link layer");
  let specs = Failplan.stragglers plan ~server:2 ~cores:4 in
  Alcotest.(check int) "one spec per core" 4 (List.length specs);
  Alcotest.(check int) "no stragglers elsewhere" 0
    (List.length (Failplan.stragglers plan ~server:0 ~cores:4))

(* ---- Dispatch/Rack with scripted fake servers ---- *)

(* A server that completes each request [delay] µs after submission (or
   never, when [delay] is infinite) and records its peak in-flight count. *)
let fake_server sim ~pool ~delay ~respond =
  let inflight = ref 0 in
  let peak = ref 0 in
  let submit req =
    incr inflight;
    if !inflight > !peak then peak := !inflight;
    if delay < infinity then
      let _ : Sim.handle =
        Sim.schedule_after sim ~delay (fun () ->
            decr inflight;
            Request.set_completion pool req (Sim.now sim);
            respond req)
      in
      ()
  in
  let info () = [ ("fake_peak", float_of_int !peak) ] in
  (Systems.Iface.{ name = "fake"; submit; info }, peak)

(* Racks never recycle: failover and hedge copies outlive the first
   completion of a logical id. *)
let mk_pool () = Request.create_pool ~recycle:false ()

let mk_req pool id = Request.alloc pool ~id ~conn:id ~arrival:0. ~service:1. ~measured:true

let test_jbsq_bound_invariant () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:3 in
  let completed = ref 0 in
  let bound = 2 in
  let peaks = Array.make 3 (ref 0) in
  let cfg = Rack.config ~servers:3 ~policy:(Policy.Jbsq bound) () in
  let pool = mk_pool () in
  let rack =
    Rack.create sim cfg ~rng ~pool
      ~make_server:(fun ~i ~rng:_ ~respond ->
        let iface, peak = fake_server sim ~pool ~delay:10. ~respond in
        peaks.(i) <- peak;
        iface)
      ~respond:(fun _ -> incr completed)
  in
  let iface = Rack.iface rack in
  for id = 1 to 50 do
    iface.Systems.Iface.submit (mk_req pool id)
  done;
  Alcotest.(check bool) "central FIFO holds the overflow" true (Rack.dispatch rack |> Dispatch.tor_depth > 0);
  Sim.run sim;
  Alcotest.(check int) "all complete" 50 !completed;
  Array.iteri
    (fun i peak ->
      if !peak > bound then
        Alcotest.failf "server %d exceeded JBSQ bound: %d > %d" i !peak bound)
    peaks;
  let get k = List.assoc k ((Rack.iface rack).Systems.Iface.info ()) in
  Alcotest.(check bool) "queued at ToR" true (get "rack_tor_queued" > 0.);
  Alcotest.(check (float 0.)) "nothing dropped" 0. (get "rack_no_route_drops")

let test_failover_recovers_dead_server () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:5 in
  let completed = ref 0 in
  let detect =
    Dispatch.
      {
        retry = Loadgen.retry ~timeout:50. ~max_retries:2 ~backoff_base:10. ~backoff_max:20. ();
        health = Health.config ~suspect_after:3 ~probe_interval:200. ();
      }
  in
  let cfg = Rack.config ~servers:2 ~policy:Policy.Static_hash ~detect () in
  let pool = mk_pool () in
  let rack =
    Rack.create sim cfg ~rng ~pool
      ~make_server:(fun ~i ~rng:_ ~respond ->
        (* Server 0 is dead from the start; server 1 answers in 5µs. *)
        fst (fake_server sim ~pool ~delay:(if i = 0 then infinity else 5.) ~respond))
      ~respond:(fun _ -> incr completed)
  in
  let iface = Rack.iface rack in
  let n = 40 in
  for id = 1 to n do
    let _ : Sim.handle =
      Sim.schedule sim
        ~at:(float_of_int id *. 10.)
        (fun () -> iface.Systems.Iface.submit (mk_req pool id))
    in
    ()
  done;
  Sim.run sim;
  (* Hashing sends a share of the flows to the dead server; every one of
     those must be recovered by timeout detection + failover. *)
  let get k = List.assoc k (iface.Systems.Iface.info ()) in
  Alcotest.(check int) "every request completes exactly once" n !completed;
  Alcotest.(check bool) "some failovers happened" true (get "rack_failovers" > 0.);
  Alcotest.(check bool) "dead server detected" true (get "health_detections" >= 1.);
  Alcotest.(check bool) "probes keep checking it" true (get "health_probes" >= 1.);
  Alcotest.(check (float 0.)) "no duplicates (it never answers)" 0.
    (get "rack_duplicates_dropped");
  match Dispatch.health (Rack.dispatch rack) with
  | None -> Alcotest.fail "detect configured: health must exist"
  | Some h -> (
      match Health.state h 0 with
      | Health.Down -> ()
      | Health.Up | Health.Suspect -> Alcotest.fail "server 0 must end Down")

let test_hedge_first_response_wins () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:6 in
  let latencies = ref [] in
  let cfg = Rack.config ~servers:2 ~policy:Policy.Jsq ~hedge:50. () in
  let pool = mk_pool () in
  let rack =
    Rack.create sim cfg ~rng ~pool
      ~make_server:(fun ~i ~rng:_ ~respond ->
        (* Server 0 is a straggler (500µs); server 1 answers in 5µs. JSQ
           ties break to index 0, so the primary goes to the straggler
           and the hedge must win. *)
        fst (fake_server sim ~pool ~delay:(if i = 0 then 500. else 5.) ~respond))
      ~respond:(fun req -> latencies := Request.latency pool req :: !latencies)
  in
  (Rack.iface rack).Systems.Iface.submit (mk_req pool 1);
  Sim.run sim;
  (match !latencies with
  | [ l ] ->
      if not (l < 100.) then Alcotest.failf "hedge should cut latency to ~55µs, got %g" l
  | ls -> Alcotest.failf "exactly one response expected, got %d" (List.length ls));
  let get k = List.assoc k ((Rack.iface rack).Systems.Iface.info ()) in
  Alcotest.(check (float 0.)) "one hedge" 1. (get "rack_hedges");
  Alcotest.(check (float 0.)) "hedge won" 1. (get "rack_hedge_wins");
  Alcotest.(check (float 0.)) "straggler's late response deduped" 1.
    (get "rack_duplicates_dropped")

(* ---- Degeneracy: 1-server rack == bare system, bitwise ---- *)

let bare_samples () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:4242 in
  let loadgen_rng = Rng.split rng in
  let system_rng = Rng.split rng in
  let pool = mk_pool () in
  let gen =
    Loadgen.create sim ~rng:loadgen_rng ~pool ~conns:64 ~rate:0.3
      ~service:(Dist.exponential 10.) ()
  in
  let system =
    Systems.Zygos.create sim
      (Systems.Params.default ~cores:4 ())
      ~rng:system_rng ~pool ~conns:64
      ~respond:(fun req -> Loadgen.complete gen req)
      ()
  in
  Loadgen.set_target gen system.Systems.Iface.submit;
  Loadgen.start gen ~warmup:200. ~measure:2000.;
  Sim.run sim;
  Stats.Tally.samples (Loadgen.tally gen)

let rack_samples ~policy =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:4242 in
  let loadgen_rng = Rng.split rng in
  let pool = mk_pool () in
  let gen =
    Loadgen.create sim ~rng:loadgen_rng ~pool ~conns:64 ~rate:0.3
      ~service:(Dist.exponential 10.) ()
  in
  let cfg = Rack.config ~servers:1 ~policy () in
  let rack =
    Rack.create sim cfg ~rng ~pool
      ~make_server:(fun ~i:_ ~rng ~respond ->
        Systems.Zygos.create sim
          (Systems.Params.default ~cores:4 ())
          ~rng ~pool ~conns:64 ~respond ())
      ~respond:(fun req -> Loadgen.complete gen req)
  in
  Loadgen.set_target gen (Rack.iface rack).Systems.Iface.submit;
  Loadgen.start gen ~warmup:200. ~measure:2000.;
  Sim.run sim;
  Stats.Tally.samples (Loadgen.tally gen)

let test_one_server_rack_bitwise () =
  let base = bare_samples () in
  Alcotest.(check bool) "bare run produced samples" true (Array.length base > 100);
  List.iter
    (fun policy ->
      let got = rack_samples ~policy in
      Alcotest.(check int)
        (Policy.name policy ^ ": sample count")
        (Array.length base) (Array.length got);
      Array.iteri
        (fun i x ->
          if Int64.bits_of_float x <> Int64.bits_of_float got.(i) then
            Alcotest.failf "%s: sample %d differs: %h vs %h" (Policy.name policy) i x
              got.(i))
        base)
    (* Jbsq with a bound the run never reaches: the credit gate must not
       perturb the degenerate rack either. *)
    Policy.[ Static_hash; Random; Po2; Jsq; Jbsq 1_000_000 ]

(* The full Rackrun pipeline degenerates too (rate scaling, warmup,
   estimator horizon included). *)
let point_fingerprint (p : Run.point) =
  ( Int64.bits_of_float p.Run.throughput,
    Int64.bits_of_float p.Run.goodput,
    Int64.bits_of_float p.Run.mean,
    Int64.bits_of_float p.Run.p50,
    Int64.bits_of_float p.Run.p99,
    Int64.bits_of_float p.Run.p999,
    p.Run.completed,
    p.Run.order_violations )

let test_rackrun_degenerates () =
  let service = Dist.exponential 10. in
  let bare =
    Run.run_point
      (Run.config ~system:Run.Zygos ~service ~cores:8 ~conns:128 ~requests:4_000 ~seed:17 ())
      ~load:0.7
  in
  List.iter
    (fun policy ->
      let cfg =
        Rackrun.config ~servers:1 ~system:Run.Zygos ~cores:8 ~conns:128 ~requests:4_000
          ~seed:17 ~policy ~service ()
      in
      let p = Rackrun.run cfg ~load:0.7 in
      if point_fingerprint p <> point_fingerprint bare then
        Alcotest.failf "rackrun(%s) diverges from bare run" (Policy.name policy))
    Policy.[ Static_hash; Random; Po2; Jsq; Jbsq 1_000_000 ]

(* ---- Determinism: equeue back ends and Sweep jobs ---- *)

let rack_point ~policy ~seed =
  let cfg =
    Rackrun.config ~servers:2 ~system:Run.Zygos ~cores:4 ~conns:64 ~requests:2_000 ~seed
      ~feedback_delay:5. ~policy ~service:(Dist.exponential 10.) ()
  in
  Rackrun.run cfg ~load:0.8

let test_rack_equeue_parity () =
  let with_queue kind f =
    Sim.set_default_queue kind;
    Fun.protect ~finally:(fun () -> Sim.set_default_queue Engine.Equeue.Wheel) f
  in
  List.iter
    (fun policy ->
      let heap = with_queue Engine.Equeue.Heap (fun () -> rack_point ~policy ~seed:23) in
      let wheel = with_queue Engine.Equeue.Wheel (fun () -> rack_point ~policy ~seed:23) in
      if point_fingerprint heap <> point_fingerprint wheel then
        Alcotest.failf "%s: heap and wheel runs differ" (Policy.name policy))
    all_policies

let test_rack_sweep_jobs_parity () =
  let points =
    List.map
      (fun policy ->
        Experiments.Sweep.point
          ~key:("test-rack/" ^ Policy.name policy)
          (fun ~seed -> point_fingerprint (rack_point ~policy ~seed)))
      all_policies
  in
  let seq = Experiments.Sweep.run ~jobs:1 ~seed:42 points in
  let par = Experiments.Sweep.run ~jobs:4 ~seed:42 points in
  if seq <> par then Alcotest.fail "rack sweep points differ between -j1 and -j4"

(* ---- Acceptance: two-level scheduling & robustness ---- *)

let acceptance_cfg ?feedback_delay ?failplan ~policy () =
  Rackrun.config ~servers:4 ~system:Run.Zygos ~cores:16 ~requests:5_000 ~seed:29
    ?feedback_delay ?failplan ~policy ~service:(Dist.exponential 10.) ()

let test_policy_vs_bound () =
  let load = 0.85 in
  let p99 policy =
    (Rackrun.run (acceptance_cfg ~feedback_delay:5. ~policy ()) ~load).Run.p99
  in
  let bound =
    (Rackrun.central_bound (acceptance_cfg ~policy:Policy.Jsq ()) ~load).Run.p99
  in
  let hash = p99 Policy.Static_hash in
  let po2 = p99 Policy.Po2 in
  let jbsq = p99 (Policy.Jbsq 32) in
  (* Queue-aware policies approximate the rack-wide centralized bound;
     static hashing is far from it. *)
  if not (po2 < 3. *. bound) then
    Alcotest.failf "po2 should track the bound: %.1f vs %.1f" po2 bound;
  if not (jbsq < 3. *. bound) then
    Alcotest.failf "jbsq should track the bound: %.1f vs %.1f" jbsq bound;
  if not (hash > 1.8 *. jbsq) then
    Alcotest.failf "hashing should be clearly worse: %.1f vs jbsq %.1f" hash jbsq

let test_degraded_server_bounded () =
  let load = 0.6 in
  let service_mean = 10. in
  let rate = load *. 64. /. service_mean in
  let measure = 5_000. /. rate in
  let failplan =
    [
      Cluster.Failplan.Degraded
        { server = 0; slowdown = 10.; start = 0.2 *. measure; duration = 0.25 *. measure };
    ]
  in
  let ratio policy =
    let clean = Rackrun.run (acceptance_cfg ~feedback_delay:5. ~policy ()) ~load in
    let deg = Rackrun.run (acceptance_cfg ~feedback_delay:5. ~failplan ~policy ()) ~load in
    deg.Run.p99 /. Float.max 1e-9 clean.Run.p99
  in
  let hash = ratio Policy.Static_hash in
  let po2 = ratio Policy.Po2 in
  let jbsq = ratio (Policy.Jbsq 32) in
  (* One 10x-degraded server: hashing keeps feeding it and collapses;
     queue-aware policies route around it and bound the damage. *)
  if not (hash > 2.5) then Alcotest.failf "hash should collapse: %.2fx" hash;
  if not (po2 < 1.8) then Alcotest.failf "po2 degradation unbounded: %.2fx" po2;
  if not (jbsq < 1.8) then Alcotest.failf "jbsq degradation unbounded: %.2fx" jbsq;
  if not (po2 < hash /. 1.5 && jbsq < hash /. 1.5) then
    Alcotest.failf "queue-aware not clearly better: po2 %.2fx jbsq %.2fx hash %.2fx" po2
      jbsq hash

let () =
  Alcotest.run "cluster"
    [
      ( "policy",
        [
          Alcotest.test_case "basics" `Quick test_policy_basics;
          Alcotest.test_case "jsq argmin" `Quick test_policy_jsq;
          Alcotest.test_case "hash + rehash" `Quick test_policy_hash;
          Alcotest.test_case "po2" `Quick test_policy_po2;
          Alcotest.test_case "1-server: no draws" `Quick test_policy_single_server_no_draws;
        ] );
      ( "estimate",
        [
          Alcotest.test_case "zero delay is exact" `Quick test_estimate_zero_delay_exact;
          Alcotest.test_case "staleness + force" `Quick test_estimate_staleness;
        ] );
      ( "health",
        [ Alcotest.test_case "detect/probe/recover" `Quick test_health_detection_cycle ] );
      ( "failplan",
        [
          Alcotest.test_case "validation" `Quick test_failplan_validation;
          Alcotest.test_case "lowering" `Quick test_failplan_lowering;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "jbsq bound invariant" `Quick test_jbsq_bound_invariant;
          Alcotest.test_case "failover recovers dead server" `Quick
            test_failover_recovers_dead_server;
          Alcotest.test_case "hedge: first response wins" `Quick
            test_hedge_first_response_wins;
        ] );
      ( "degeneracy",
        [
          Alcotest.test_case "1-server rack bitwise" `Slow test_one_server_rack_bitwise;
          Alcotest.test_case "rackrun degenerates" `Slow test_rackrun_degenerates;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "heap == wheel" `Slow test_rack_equeue_parity;
          Alcotest.test_case "-j1 == -j4 sweep" `Slow test_rack_sweep_jobs_parity;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "policies vs centralized bound" `Slow test_policy_vs_bound;
          Alcotest.test_case "degraded server bounded" `Slow test_degraded_server_bounded;
        ] );
    ]
