(* White-box scenario tests of the Linux models: per-request cost
   accounting, partitioned vs floating rebalancing, per-socket
   serialization, and the shared-pool hand-off bottleneck. *)

module Sim = Engine.Sim
module Request = Net.Request
module Params = Systems.Params

let mk pool ~id ~conn ~service arrival =
  Request.alloc pool ~id ~conn ~arrival ~service ~measured:true

let completion responses r =
  match List.assoc_opt r !responses with
  | Some t -> t
  | None -> Alcotest.fail "request not completed"

let make_part ?(cores = 2) ~conns () =
  let sim = Sim.create () in
  let pool = Request.create_pool () in
  let p = Params.default ~cores () in
  let responses = ref [] in
  let iface =
    Systems.Linux.partitioned sim p ~pool ~conns ~respond:(fun req ->
        responses := (req, Sim.now sim) :: !responses)
  in
  (sim, p, pool, iface, responses)

let make_float ?(cores = 2) ~conns () =
  let sim = Sim.create () in
  let pool = Request.create_pool () in
  let p = Params.default ~cores () in
  let responses = ref [] in
  let iface =
    Systems.Linux.floating sim p ~pool ~conns ~respond:(fun req ->
        responses := (req, Sim.now sim) :: !responses)
  in
  (sim, p, pool, iface, responses)

let conns_on_core_0 ~cores ~n =
  let rss = Net.Rss.create ~queues:cores () in
  let rec find c acc =
    if List.length acc = n then List.rev acc
    else find (c + 1) (if Net.Rss.queue_of_conn rss c = 0 then c :: acc else acc)
  in
  find 0 []

let test_partitioned_request_cost () =
  (* wakeup + epoll + 2 syscalls + 2 stack crossings + service. *)
  let sim, p, pool, iface, responses = make_part ~conns:4 () in
  let r = mk pool ~id:0 ~conn:0 ~service:10. 0. in
  iface.Systems.Iface.submit r;
  Sim.run sim;
  let expected =
    p.Params.linux_wakeup +. p.Params.linux_epoll
    +. (2. *. p.Params.linux_syscall)
    +. (2. *. p.Params.linux_netstack)
    +. 10.
  in
  Alcotest.(check (float 1e-9)) "exact cost" expected (completion responses r)

let test_floating_request_cost () =
  (* pool hand-off (lock) + wakeup + epoll + syscalls + stack + service. *)
  let sim, p, pool, iface, responses = make_float ~conns:4 () in
  let r = mk pool ~id:0 ~conn:0 ~service:10. 0. in
  iface.Systems.Iface.submit r;
  Sim.run sim;
  let expected =
    p.Params.linux_lock +. p.Params.linux_wakeup +. p.Params.linux_epoll
    +. (2. *. p.Params.linux_syscall)
    +. (2. *. p.Params.linux_netstack)
    +. 10.
  in
  Alcotest.(check (float 1e-9)) "exact cost" expected (completion responses r)

let test_partitioned_no_rescue_floating_rescues () =
  (* A long and a short request homed on core 0: partitioned makes the
     short one wait; floating dispatches it to the idle thread. *)
  match conns_on_core_0 ~cores:2 ~n:2 with
  | [ a; b ] ->
      let run make =
        let sim, _, pool, iface, responses = make ~conns:(b + 1) () in
        let long_req = mk pool ~id:0 ~conn:a ~service:100. 0. in
        let short_req = mk pool ~id:1 ~conn:b ~service:1. 0. in
        iface.Systems.Iface.submit long_req;
        iface.Systems.Iface.submit short_req;
        Sim.run sim;
        completion responses short_req
      in
      let partitioned = run (fun ~conns () -> make_part ~conns ()) in
      let floating = run (fun ~conns () -> make_float ~conns ()) in
      Alcotest.(check bool)
        (Printf.sprintf "partitioned %.1f blocks, floating %.1f rescues" partitioned floating)
        true
        (partitioned > 100. && floating < 30.)
  | _ -> Alcotest.fail "need 2 conns on core 0"

let test_floating_socket_serialization () =
  (* Two requests on ONE connection never run concurrently even with idle
     threads: the second completes after the first (§4.3's problem, solved
     in the floating model by the locking protocol). *)
  let sim, _, pool, iface, responses = make_float ~cores:4 ~conns:2 () in
  let r1 = mk pool ~id:0 ~conn:0 ~service:20. 0. in
  let r2 = mk pool ~id:1 ~conn:0 ~service:1. 0. in
  iface.Systems.Iface.submit r1;
  iface.Systems.Iface.submit r2;
  Sim.run sim;
  let t1 = completion responses r1 and t2 = completion responses r2 in
  Alcotest.(check bool)
    (Printf.sprintf "serialized: r2 at %.1f after r1 at %.1f" t2 t1)
    true
    (t2 > t1 && t2 > 21.)

let test_floating_dispatch_serializes () =
  (* The pool hand-off is a serial section: 16 simultaneous arrivals on 16
     idle cores still start at lock-interval spacing. *)
  let cores = 16 in
  let sim = Sim.create () in
  let pool = Request.create_pool () in
  let p = Params.default ~cores () in
  let responses = ref [] in
  let iface =
    Systems.Linux.floating sim p ~pool ~conns:cores ~respond:(fun req ->
        responses := (req, Sim.now sim) :: !responses)
  in
  let reqs = List.init cores (fun i -> mk pool ~id:i ~conn:i ~service:5. 0.) in
  List.iter iface.Systems.Iface.submit reqs;
  Sim.run sim;
  let times = List.map (fun r -> completion responses r) reqs in
  let span = List.fold_left Float.max 0. times -. List.fold_left Float.min infinity times in
  (* 16 hand-offs x 0.5µs lock = at least ~7.5µs of spread. *)
  Alcotest.(check bool)
    (Printf.sprintf "dispatch spread %.2fus >= 7.5" span)
    true (span >= 7.5)

let test_partitioned_batches_wakeup () =
  (* Requests queued behind the first one do not pay the wakeup again. *)
  match conns_on_core_0 ~cores:2 ~n:2 with
  | [ a; b ] ->
      let sim, p, pool, iface, responses = make_part ~conns:(b + 1) () in
      let r1 = mk pool ~id:0 ~conn:a ~service:10. 0. in
      let r2 = mk pool ~id:1 ~conn:b ~service:10. 0. in
      iface.Systems.Iface.submit r1;
      iface.Systems.Iface.submit r2;
      Sim.run sim;
      let per_req =
        p.Params.linux_epoll
        +. (2. *. p.Params.linux_syscall)
        +. (2. *. p.Params.linux_netstack)
        +. 10.
      in
      Alcotest.(check (float 1e-9)) "second request pays no wakeup"
        (p.Params.linux_wakeup +. (2. *. per_req))
        (completion responses r2)
  | _ -> Alcotest.fail "need 2 conns on core 0"

let () =
  Alcotest.run "linux-model"
    [
      ( "scenarios",
        [
          Alcotest.test_case "partitioned cost" `Quick test_partitioned_request_cost;
          Alcotest.test_case "floating cost" `Quick test_floating_request_cost;
          Alcotest.test_case "rescue semantics" `Quick test_partitioned_no_rescue_floating_rescues;
          Alcotest.test_case "socket serialization" `Quick test_floating_socket_serialization;
          Alcotest.test_case "dispatch serial section" `Quick test_floating_dispatch_serializes;
          Alcotest.test_case "wakeup batching" `Quick test_partitioned_batches_wakeup;
        ] );
    ]
