(* Tests for tool/zygoscope: each rule fires on a minimal bad fixture at
   the expected line, stays quiet on the good variant, and every
   suppression mechanism ([@zygos.allow], [@zygos.owned], floating
   [@@@zygos.allow]) downgrades the finding to suppressed-but-recorded.
   The end-to-end case runs the real analyzer over the built library
   tree and proves both directions of the gate: zero active findings,
   and a non-empty suppressed set covering every documented annotation
   site — deleting any one of those annotations would surface an active
   finding and fail [dune build @lint]. *)

module Lint = Zygoscope_lib.Lint

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let analyze ?enabled ?r1 ?r4 ~name code =
  Lint.analyze_structure ?enabled ?r1 ?r4 ~file:name (Lint.typecheck_string ~name code)

let show f = Format.asprintf "%a" Lint.pp_finding f

let show_all fs = String.concat "\n" (List.map show fs)

(* Assert the active findings are exactly [(rule, line)] pairs, in order. *)
let check_active what expected findings =
  let got = List.map (fun f -> (f.Lint.rule, f.Lint.line)) (Lint.active findings) in
  if got <> expected then
    Alcotest.failf "%s: expected %s, got:\n%s" what
      (String.concat "; "
         (List.map
            (fun (r, l) -> Printf.sprintf "%s@%d" (Lint.rule_name r) l)
            expected))
      (show_all (Lint.active findings))

(* ---- R1: determinism ---- *)

let fixture_r1 =
  {|
let elapsed () = Sys.time ()
let roll () = Random.int 6
let digest x = Hashtbl.hash x
let table () : (int, int) Hashtbl.t = Hashtbl.create ~random:true 16
let fine () : (int, int) Hashtbl.t = Hashtbl.create 16
let own_rng seed = (seed * 25214903917) + 11
|}

let test_r1_fires () =
  let fs = analyze ~r1:true ~name:"fixture_r1.ml" fixture_r1 in
  check_active "r1"
    [ (Lint.R1, 2); (Lint.R1, 3); (Lint.R1, 4); (Lint.R1, 5) ]
    fs

let test_r1_scoped_off_outside_deterministic_dirs () =
  (* Same code, applicability derived from the file path: lib/runtime is
     allowlisted, bench/ is out of scope entirely — wall-clock is the
     very thing a benchmark harness measures. *)
  List.iter
    (fun file -> check_active file [] (analyze ~name:file fixture_r1))
    [ "lib/runtime/pool.ml"; "bench/main.ml" ]

let test_r1_active_in_deterministic_dirs () =
  (* bin/ and examples/ joined the deterministic set when @lint grew to
     cover the executables. *)
  List.iter
    (fun file ->
      Alcotest.(check int) file 4 (List.length (Lint.active (analyze ~name:file fixture_r1))))
    [ "lib/engine/sim.ml"; "bin/main.ml"; "examples/quickstart.ml" ]

(* ---- R2: hot-path allocation ---- *)

let fixture_r2 =
  {|
let[@zygos.hot] mk_tuple x = (x, x)
let[@zygos.hot] mk_some x = Some x
let[@zygos.hot] mk_closure x = let g y = x + y in g
let[@zygos.hot] mk_partial (a : int array) = Array.unsafe_set a 0
let fns : (int -> unit) array = Array.make 4 ignore
let[@zygos.hot] full_app_returning_fn i = Array.unsafe_get fns i
let[@zygos.hot] cold_branch x = if x < 0 then failwith (String.concat "" ["n"; "eg"]) else x
let not_hot x = (x, Some x)
|}

let test_r2_fires () =
  let fs = analyze ~name:"fixture_r2.ml" fixture_r2 in
  check_active "r2"
    [ (Lint.R2, 2); (Lint.R2, 3); (Lint.R2, 4); (Lint.R2, 5) ]
    fs

(* Regression for the arity check: a full application whose *result* is
   a function (['a] instantiated to an arrow) must not be read as a
   partial application — line 7 above —, while a genuine partial
   application (line 5) must. *)
let test_r2_arity_regression () =
  let fs = analyze ~name:"fixture_r2.ml" fixture_r2 in
  let at line = List.filter (fun f -> f.Lint.line = line) (Lint.active fs) in
  Alcotest.(check int) "unsafe_get returning fn is full" 0 (List.length (at 7));
  Alcotest.(check int) "unsafe_set missing an arg is partial" 1 (List.length (at 5))

(* ---- R3: polymorphic operations ---- *)

let fixture_r3 =
  {|
let eq_int (a : int) b = a = b
let eq_str (a : string) b = a = b
let cmp_pair (a : int * int) b = compare a b
let min_float (a : float) b = min a b
let sort_poly (l : (int * int) list) = List.sort compare l
let mem_str (x : string) l = List.mem x l
let mem_int (x : int) l = List.mem x l
|}

let test_r3_fires () =
  let fs = analyze ~name:"fixture_r3.ml" fixture_r3 in
  (* int (immediate) and string = (directly specialized) pass; the boxed
     pair, min (never specialized, even at float), compare-as-a-value and
     List.mem at string fire. *)
  check_active "r3"
    [ (Lint.R3, 4); (Lint.R3, 5); (Lint.R3, 6); (Lint.R3, 7) ]
    fs

let test_r3_local_shadow_ignored () =
  (* A local value that happens to be called [min]/[max] is not the
     stdlib polymorphic operation. *)
  let fs =
    analyze ~name:"fixture_r3b.ml"
      {|
let pick ~min ~max (s : string) = if String.length s > max then min else s
|}
  in
  check_active "r3 shadow" [] fs

(* ---- R4: domain-safety ---- *)

let fixture_r4 =
  {|
type counter = { mutable n : int }
type documented = { mutable m : int [@zygos.owned "test fixture"] }
type atomics = { hits : int Atomic.t; lock : Mutex.t }
let total = ref 0
let bump () = total := !total + 1
let local_acc xs = let acc = ref 0 in List.iter (fun x -> acc := !acc + x) xs; !acc
|}

let test_r4_fires () =
  let fs = analyze ~r4:true ~name:"fixture_r4.ml" fixture_r4 in
  (* the bare mutable field and the module-level ref fire; the
     [@zygos.owned] field is suppressed; Atomic.t/Mutex.t fields and the
     function-local accumulator ref pass. *)
  check_active "r4" [ (Lint.R4, 2); (Lint.R4, 5) ] fs;
  let sup = Lint.suppressed_of fs in
  Alcotest.(check int) "owned field recorded as suppressed" 1 (List.length sup);
  Alcotest.(check int) "owned suppression on line 3" 3 (List.nth sup 0).Lint.line

let test_r4_off_by_default_elsewhere () =
  check_active "r4 off" [] (analyze ~name:"lib/stats/tally.ml" fixture_r4)

(* ---- R5: Obj ---- *)

let test_r5_fires () =
  let fs =
    analyze ~name:"fixture_r5.ml" {|
let peek (x : int list) = Obj.repr x
|}
  in
  check_active "r5" [ (Lint.R5, 2) ] fs

(* ---- suppression mechanics ---- *)

let test_allow_suppresses_and_is_load_bearing () =
  let with_allow =
    {|
let stamp () = (Sys.time () [@zygos.allow "determinism"])
|}
  in
  let without_allow = {|
let stamp () = Sys.time ()
|} in
  let fs = analyze ~r1:true ~name:"fixture_allow.ml" with_allow in
  check_active "allow: nothing active" [] fs;
  Alcotest.(check int) "allow: recorded as suppressed" 1
    (List.length (Lint.suppressed_of fs));
  (* Deleting the annotation turns the same code into an active finding:
     the suppression is load-bearing, not dead. *)
  let fs' = analyze ~r1:true ~name:"fixture_allow.ml" without_allow in
  check_active "allow removed: finding is active" [ (Lint.R1, 2) ] fs'

let test_floating_allow_covers_file () =
  let fs =
    analyze ~name:"fixture_floating.ml"
      {|
[@@@zygos.allow "poly-compare"]

let worst (a : int * int) b = min a b
|}
  in
  check_active "floating allow" [] fs;
  Alcotest.(check int) "still recorded" 1 (List.length (Lint.suppressed_of fs))

let test_hot_alloc_allow () =
  let fs =
    analyze ~name:"fixture_hot_allow.ml"
      {|
let[@zygos.hot] emit x = (Some x [@zygos.allow "hot-alloc"])
|}
  in
  check_active "hot allow" [] fs;
  Alcotest.(check int) "recorded" 1 (List.length (Lint.suppressed_of fs))

let test_rule_selection () =
  (* --rules narrows the enabled set: with only R3 enabled the R1 hit in
     the same fixture is not even recorded. *)
  let code = {|
let both () = ignore (Sys.time ()); min (1, 2) (3, 4)
|} in
  let only_r3 = analyze ~enabled:[ Lint.R3 ] ~r1:true ~name:"fixture_rules.ml" code in
  Alcotest.(check int) "one R3 finding" 1 (List.length (Lint.active only_r3));
  Alcotest.(check bool) "it is R3" true
    (List.for_all (fun f -> f.Lint.rule = Lint.R3) (Lint.active only_r3));
  let only_r1 = analyze ~enabled:[ Lint.R1 ] ~r1:true ~name:"fixture_rules.ml" code in
  Alcotest.(check bool) "only R1" true
    (List.for_all (fun f -> f.Lint.rule = Lint.R1) (Lint.active only_r1))

let test_unknown_rule_names () =
  Alcotest.(check bool) "r1..r8 resolve" true
    (List.for_all
       (fun s -> Option.is_some (Lint.rule_of_string s))
       [ "r1"; "determinism"; "r2"; "hot-alloc"; "r3"; "poly-compare";
         "r4"; "domain-safety"; "r5"; "obj"; "r6"; "transitive-hot";
         "r7"; "float-boxing"; "r8"; "domain-escape"; "all" ]);
  Alcotest.(check bool) "junk does not" true (Option.is_none (Lint.rule_of_string "r9"))

let test_split_rules_rejects_duplicates () =
  (* Duplicates are detected after normalization: "R2" and "hot-alloc"
     are the same rule as "r2", so only the first spelling survives and
     every later copy is reported through [dup]. *)
  let dups = ref [] in
  let kept =
    Lint.split_rules ~dup:(fun t -> dups := t :: !dups) "r2, R2, hot-alloc hot_alloc r3"
  in
  Alcotest.(check (list string)) "kept" [ "r2"; "r3" ] kept;
  Alcotest.(check (list string)) "rejected" [ "R2"; "hot-alloc"; "hot_alloc" ]
    (List.rev !dups);
  (* Unknown tokens dedup case-insensitively too. *)
  let dups = ref [] in
  let kept = Lint.split_rules ~dup:(fun t -> dups := t :: !dups) "bogus BOGUS" in
  Alcotest.(check (list string)) "unknown kept once" [ "bogus" ] kept;
  Alcotest.(check (list string)) "unknown dup" [ "BOGUS" ] (List.rev !dups)

(* Warnings about malformed [@zygos.allow] payloads must point at the
   attribute itself — the fix site — not at the expression it hangs off. *)
let mk_attr ~line name payload =
  let pos =
    { Lexing.pos_fname = "attr_fixture.ml"; pos_lnum = line; pos_bol = 0; pos_cnum = 0 }
  in
  let loc = { Location.loc_start = pos; loc_end = pos; loc_ghost = false } in
  {
    Parsetree.attr_name = { Location.txt = name; loc };
    attr_payload =
      (match payload with
      | Some s ->
          Parsetree.PStr
            [ Ast_helper.Str.eval (Ast_helper.Exp.constant (Ast_helper.Const.string s)) ]
      | None -> Parsetree.PStr []);
    attr_loc = loc;
  }

let test_allow_warnings_at_attribute_location () =
  let warnings = ref [] in
  let warn (loc : Location.t) msg =
    warnings := (loc.Location.loc_start.pos_lnum, msg) :: !warnings
  in
  (* unknown rule name: the known one still applies, the typo is loud *)
  let allows =
    Lint.allows_of_attributes ~warn [ mk_attr ~line:42 "zygos.allow" (Some "r2 bogus") ]
  in
  Alcotest.(check bool) "known rule survives the typo" true (allows = [ Lint.R2 ]);
  (match !warnings with
  | [ (line, msg) ] ->
      Alcotest.(check int) "warning at the attribute's line" 42 line;
      Alcotest.(check bool) "names the unknown rule" true
        (contains msg "unknown rule \"bogus\"")
  | ws -> Alcotest.failf "expected exactly one warning, got %d" (List.length ws));
  (* duplicate token *)
  warnings := [];
  let allows =
    Lint.allows_of_attributes ~warn [ mk_attr ~line:7 "zygos.allow" (Some "r1 r1") ]
  in
  Alcotest.(check bool) "dup collapses to one rule" true (allows = [ Lint.R1 ]);
  (match !warnings with
  | [ (7, msg) ] ->
      Alcotest.(check bool) "duplicate reported" true (contains msg "duplicate rule")
  | ws -> Alcotest.failf "expected one dup warning, got %d" (List.length ws));
  (* missing payload *)
  warnings := [];
  let allows = Lint.allows_of_attributes ~warn [ mk_attr ~line:9 "zygos.allow" None ] in
  Alcotest.(check bool) "no rules from an empty payload" true (allows = []);
  (match !warnings with
  | [ (9, msg) ] ->
      Alcotest.(check bool) "payload warning" true (contains msg "without a string payload")
  | ws -> Alcotest.failf "expected one payload warning, got %d" (List.length ws))

(* ---- end to end over the built library tree ---- *)

(* Documented suppression sites: a representative annotation per file.
   If someone deletes one, the corresponding finding becomes active and
   [dune build @lint] fails; this test pins the inventory. *)
let documented_suppressions =
  [
    ("lib/runtime/pool.ml", Lint.R4);
    ("lib/runtime/executor.ml", Lint.R4);
    ("lib/experiments/sweep.ml", Lint.R4);
    ("lib/experiments/figures.ml", Lint.R1);
    ("lib/experiments/appserve.ml", Lint.R1);
    ("lib/net/loadgen.ml", Lint.R2);
    ("lib/systems/zygos.ml", Lint.R2);
    ("lib/systems/preemptive.ml", Lint.R2);
  ]

let test_lib_tree_clean () =
  (* cwd is _build/default/test under [dune runtest], the workspace root
     under [dune exec] — probe both. *)
  let root =
    List.find_opt Sys.file_exists [ "../lib"; "_build/default/lib" ]
    |> function
    | Some r -> r
    | None ->
        Alcotest.failf "built library tree not found (cwd %s)" (Sys.getcwd ())
  in
  let cmts = Lint.find_cmts [] root in
  Alcotest.(check bool)
    (Printf.sprintf "found %d cmts" (List.length cmts))
    true
    (List.length cmts > 30);
  let all =
    List.concat_map
      (fun path ->
        match Lint.analyze_cmt path with
        | Ok r -> r.Lint.findings
        | Error e -> Alcotest.failf "%s" e)
      cmts
  in
  (match Lint.active all with
  | [] -> ()
  | fs -> Alcotest.failf "active findings in lib/:\n%s" (show_all fs));
  let sup = Lint.suppressed_of all in
  Alcotest.(check bool) "suppressed set non-empty" true (List.length sup > 0);
  List.iter
    (fun (file, rule) ->
      if
        not
          (List.exists
             (fun (f : Lint.finding) -> contains f.Lint.file file && f.Lint.rule = rule)
             sup)
      then
        Alcotest.failf
          "no suppressed %s finding recorded in %s: either the annotation was \
           deleted together with the code it covered (update \
           documented_suppressions) or suppression tracking broke"
          (Lint.rule_name rule) file)
    documented_suppressions

(* ---- R8: domain-escape (per-file typedtree rule) ---- *)

let test_r8_fires_and_owned_is_load_bearing () =
  let without_owned =
    {|
let data = Array.make 4 0
let spin () =
  let d = Domain.spawn (fun () -> data.(0) <- 1) in
  Domain.join d
|}
  in
  let fs = analyze ~name:"fixture_r8.ml" without_owned in
  let r8 = List.filter (fun f -> f.Lint.rule = Lint.R8) (Lint.active fs) in
  (match r8 with
  | [ f ] ->
      Alcotest.(check bool) "names the captured value" true (contains f.Lint.msg "data");
      Alcotest.(check bool) "names the sink" true (contains f.Lint.msg "Domain.spawn")
  | fs -> Alcotest.failf "expected one active R8 finding, got:\n%s" (show_all fs));
  (* Same capture with the single-owner discipline documented: suppressed
     but recorded — deleting the annotation resurrects the finding above. *)
  let with_owned =
    {|
let data = Array.make 4 0
let spin () =
  let d = (Domain.spawn (fun () -> data.(0) <- 1) [@zygos.owned]) in
  Domain.join d
|}
  in
  let fs' = analyze ~name:"fixture_r8.ml" with_owned in
  Alcotest.(check int) "owned: nothing active" 0
    (List.length (List.filter (fun f -> f.Lint.rule = Lint.R8) (Lint.active fs')));
  Alcotest.(check bool) "owned: recorded as suppressed" true
    (List.exists (fun f -> f.Lint.rule = Lint.R8) (Lint.suppressed_of fs'))

(* ---- whole-program call graph (R6/R7) ---- *)

module Graph = Zygoscope_lib.Graph
module Report = Zygoscope_lib.Report

(* Typecheck a fixture and run the whole-program analysis on it alone. *)
let graph_of ?(name = "lib/fix.ml") code =
  let summaries, aliases =
    Lint.summarize_structure ~modname:"Fix" ~file:name (Lint.typecheck_string ~name code)
  in
  Graph.analyze ~aliases summaries

let check_graph_active what expected (r : Graph.result) =
  check_active what expected r.Graph.findings

let active_msgs (r : Graph.result) =
  List.map (fun f -> f.Lint.msg) (Lint.active r.Graph.findings)

let assert_some_msg what r sub =
  if not (List.exists (fun m -> contains m sub) (active_msgs r)) then
    Alcotest.failf "%s: no active finding mentions %S; got:\n%s" what sub
      (show_all (Lint.active r.Graph.findings))

let test_r6_def_site_fires () =
  let r = graph_of {|
let helper x = x + 1
let[@zygos.hot] root x = helper x
|} in
  check_graph_active "r6 def site" [ (Lint.R6, 2) ] r;
  (* the finding carries the shortest root-to-function trace *)
  assert_some_msg "r6 def site" r
    "Fix.helper is reachable from hot root Fix.root (Fix.root -> Fix.helper)"

let test_r6_clean_when_certified () =
  let r =
    graph_of {|
let[@zygos.hot] helper x = x + 1
let[@zygos.hot] root x = helper x
|}
  in
  check_graph_active "r6 certified" [] r;
  Alcotest.(check (list string)) "hot set" [ "Fix.helper"; "Fix.root" ] r.Graph.hot_set;
  Alcotest.(check (list (pair string int)))
    "per-root reachable sizes"
    [ ("Fix.helper", 1); ("Fix.root", 2) ]
    r.Graph.root_sizes

let test_r6_allow_cuts_propagation () =
  let r =
    graph_of
      {|
let helper x = x + 1
let[@zygos.hot] root x = (helper x [@zygos.allow "r6"])
|}
  in
  (* the edge is cut: helper never enters the hot set, no def-site
     finding — but the cut itself is recorded as a suppressed finding *)
  check_graph_active "r6 allow" [] r;
  Alcotest.(check (list string)) "hot set stops at the root" [ "Fix.root" ] r.Graph.hot_set;
  (match Lint.suppressed_of r.Graph.findings with
  | [ f ] ->
      Alcotest.(check bool) "edge cut recorded" true
        (contains f.Lint.msg "call edge out of Fix.root")
  | fs -> Alcotest.failf "expected one suppressed edge-cut, got:\n%s" (show_all fs))

let test_r6_alloc_in_transitive_callee () =
  let r =
    graph_of {|
let mk x = Some x
let mid x = mk x
let[@zygos.hot] root x = mid x
|}
  in
  (* def-site findings for both unannotated links plus the allocation
     inside the leaf, each carrying the full transitive trace *)
  check_graph_active "r6 alloc chain" [ (Lint.R6, 2); (Lint.R6, 2); (Lint.R6, 3) ] r;
  assert_some_msg "r6 alloc chain" r
    "constructor Some allocated in Fix.mk, reachable from hot root Fix.root \
     (Fix.root -> Fix.mid -> Fix.mk)"

let test_r6_unknown_callee () =
  let r = graph_of {|
let[@zygos.hot] apply f x = f x
|} in
  (match Lint.active r.Graph.findings with
  | [ f ] ->
      Alcotest.(check bool) "refuses to certify what it cannot see" true
        (contains f.Lint.msg "unknown callee")
  | fs -> Alcotest.failf "expected one unknown-callee finding, got:\n%s" (show_all fs));
  (* with the edge explicitly allowed the finding is only recorded *)
  let r' = graph_of {|
let[@zygos.hot] apply f x = (f x [@zygos.allow "r6"])
|} in
  check_graph_active "r6 unknown allowed" [] r';
  Alcotest.(check int) "recorded as suppressed" 1
    (List.length (Lint.suppressed_of r'.Graph.findings))

let test_r6_allocating_external () =
  let r = graph_of {|
let[@zygos.hot] mk n = Array.make n 0
|} in
  (match Lint.active r.Graph.findings with
  | [ f ] ->
      Alcotest.(check bool) "allocating external flagged" true
        (contains f.Lint.msg "allocating external caml_make_vect")
  | fs -> Alcotest.failf "expected one prim finding, got:\n%s" (show_all fs));
  (* the hot-alloc allow covers graph-level allocation findings too *)
  let r' =
    graph_of {|
let[@zygos.hot] mk n = (Array.make n 0 [@zygos.allow "hot-alloc"])
|}
  in
  check_graph_active "prim allowed" [] r';
  Alcotest.(check int) "recorded" 1 (List.length (Lint.suppressed_of r'.Graph.findings))

(* ---- call-graph resolution fixtures ---- *)

let test_graph_module_alias () =
  let r =
    graph_of
      {|
module Dep = struct
  let tick x = x + 1
end
module A = Dep
let[@zygos.hot] root x = A.tick x
|}
  in
  (* the call through the alias resolves to the definition inside Dep *)
  assert_some_msg "module alias" r "Fix.Dep.tick is reachable from hot root Fix.root"

let test_graph_functor_application () =
  let r =
    graph_of
      {|
module type S = sig
  val step : int -> int
end

module Make (M : S) = struct
  let run x = M.step x
end

module Inst = Make (struct
  let step x = x + 2
end)

let[@zygos.hot] root x = Inst.run x
|}
  in
  (* Inst.run resolves through the instantiation alias to the functor
     body; the call through the module parameter inside it is the top of
     the callee lattice and keeps the body uncertifiable *)
  assert_some_msg "functor app: body reached" r "Fix.Make.run is reachable from hot root Fix.root";
  assert_some_msg "functor app: parameter call is unknown" r "unknown callee"

let test_graph_partial_application () =
  let r =
    graph_of {|
let add a b = a + b
let mk a = add a
let[@zygos.hot] root a = mk a
|}
  in
  assert_some_msg "partial app: callee reached" r "Fix.mk is reachable from hot root Fix.root";
  assert_some_msg "partial app: closure alloc surfaced" r "partial application (closure)"

let test_graph_mutual_recursion () =
  (* propagation terminates on cycles and flags each link exactly once *)
  let r =
    graph_of
      {|
let rec even n = if n = 0 then true else odd (n - 1)
and odd n = if n = 0 then false else even (n - 1)
let[@zygos.hot] parity n = even n
|}
  in
  check_graph_active "mutual recursion" [ (Lint.R6, 2); (Lint.R6, 3) ] r;
  assert_some_msg "even flagged" r "Fix.even is reachable from hot root Fix.parity";
  assert_some_msg "odd flagged" r "Fix.odd is reachable from hot root Fix.parity"

(* ---- hand-built summaries: cross-unit aliasing and R7 ---- *)

let mk_call ?(ret_float = false) ?(arg_float = false) ?(allows = []) ~line callee =
  {
    Lint.cs_line = line;
    cs_col = 0;
    cs_callee = callee;
    cs_ret_float = ret_float;
    cs_arg_float = arg_float;
    cs_allows = allows;
  }

let mk_sum ?(hot = false) ?(calls = []) ?(allocs = []) ~file ~line name =
  {
    Lint.fs_name = name;
    fs_file = file;
    fs_line = line;
    fs_hot = hot;
    fs_calls = calls;
    fs_allocs = allocs;
  }

let test_graph_cross_unit_alias () =
  (* a functor instantiation exported by one compilation unit resolves
     call sites in another *)
  let summaries =
    [
      mk_sum ~hot:true ~file:"lib/a.ml" ~line:1 "A.caller"
        ~calls:[ mk_call ~line:2 (Lint.Callee "Core.Q.f") ];
      mk_sum ~file:"lib/b.ml" ~line:5 "Core.Impl.f";
    ]
  in
  let r = Graph.analyze ~aliases:[ ("Core.Q", "Core.Impl") ] summaries in
  (match Lint.active r.Graph.findings with
  | [ f ] ->
      Alcotest.(check bool) "resolved through the alias" true
        (contains f.Lint.msg "Core.Impl.f is reachable from hot root A.caller")
  | fs -> Alcotest.failf "expected one def-site finding, got:\n%s" (show_all fs))

let r7_of ?(ret_float = true) ?(arg_float = false) ?(allows = []) ~callee_file callee_name =
  let summaries =
    [
      mk_sum ~hot:true ~file:"lib/a.ml" ~line:1 "A.caller"
        ~calls:[ mk_call ~ret_float ~arg_float ~allows ~line:2 (Lint.Callee callee_name) ];
      mk_sum ~hot:true ~file:callee_file ~line:1 callee_name;
    ]
  in
  Graph.analyze summaries

let test_r7_cross_unit_float () =
  let r = r7_of ~callee_file:"lib/b.ml" "B.f" in
  (match Lint.active r.Graph.findings with
  | [ f ] ->
      Alcotest.(check bool) "is R7" true (f.Lint.rule = Lint.R7);
      Alcotest.(check bool) "names the boundary" true
        (contains f.Lint.msg "bare float returned across the A.caller -> B.f call boundary")
  | fs -> Alcotest.failf "expected one R7 finding, got:\n%s" (show_all fs));
  (* an argument crossing is worded differently *)
  let r = r7_of ~ret_float:false ~arg_float:true ~callee_file:"lib/b.ml" "B.f" in
  (match Lint.active r.Graph.findings with
  | [ f ] -> Alcotest.(check bool) "passed across" true (contains f.Lint.msg "passed across")
  | fs -> Alcotest.failf "expected one R7 arg finding, got:\n%s" (show_all fs))

let test_r7_boundaries_and_suppression () =
  (* same compilation unit: unboxed across the call, no finding *)
  check_active "r7 same file" [] (r7_of ~callee_file:"lib/a.ml" "A.g").Graph.findings;
  (* the keyed hand-off entry points are the sanctioned boundary *)
  check_active "r7 sanctioned" []
    (r7_of ~callee_file:"lib/b.ml" "B.pop_into").Graph.findings;
  check_active "r7 sanctioned keyed" []
    (r7_of ~callee_file:"lib/b.ml" "Engine.Sim.schedule_fn_keyed").Graph.findings;
  (* [@zygos.allow "r7"] downgrades to suppressed-but-recorded *)
  let r = r7_of ~allows:[ Lint.R7 ] ~callee_file:"lib/b.ml" "B.f" in
  check_active "r7 allowed" [] r.Graph.findings;
  Alcotest.(check int) "recorded" 1 (List.length (Lint.suppressed_of r.Graph.findings))

let test_r7_only_in_hot_set () =
  (* a cold caller may box floats at will: only the hot set is scanned *)
  let summaries =
    [
      mk_sum ~file:"lib/a.ml" ~line:1 "A.cold"
        ~calls:[ mk_call ~ret_float:true ~line:2 (Lint.Callee "B.f") ];
      mk_sum ~file:"lib/b.ml" ~line:1 "B.f";
    ]
  in
  check_active "r7 cold" [] (Graph.analyze summaries).Graph.findings

(* ---- qcheck: the propagated hot set is a fixed point ---- *)

(* Annotating exactly the functions the analysis says are hot-reachable
   must converge: re-running on the annotated program reproduces the same
   hot set and leaves no reachable-but-unannotated findings. This is the
   contract that makes R6 fixes terminate for users. *)
let hot_fixed_point_prop =
  QCheck.Test.make ~count:200 ~name:"R6 hot set is a fixed point"
    QCheck.(pair (small_list (pair small_nat small_nat)) (small_list small_nat))
    (fun (edges, hots) ->
      let n = 8 in
      let name i = Printf.sprintf "Q.f%d" i in
      let calls = Array.make n [] in
      List.iter
        (fun (a, b) ->
          let a = a mod n and b = b mod n in
          calls.(a) <- mk_call ~line:(b + 1) (Lint.Callee (name b)) :: calls.(a))
        edges;
      let sums =
        List.init n (fun i ->
            mk_sum
              ~hot:(List.exists (fun h -> h mod n = i) hots)
              ~file:"lib/q.ml" ~line:(i + 1) ~calls:calls.(i) (name i))
      in
      let r1 = Graph.analyze sums in
      let sums' =
        List.map
          (fun s ->
            if List.mem s.Lint.fs_name r1.Graph.hot_set then { s with Lint.fs_hot = true }
            else s)
          sums
      in
      let r2 = Graph.analyze sums' in
      r2.Graph.hot_set = r1.Graph.hot_set
      && List.for_all
           (fun (f : Lint.finding) ->
             not (contains f.Lint.msg "is reachable from hot root"))
           (Lint.active r2.Graph.findings))

(* ---- whole-program runs over the built library tree ---- *)

let lib_root () =
  match List.find_opt Sys.file_exists [ "../lib"; "_build/default/lib" ] with
  | Some r -> r
  | None -> Alcotest.failf "built library tree not found (cwd %s)" (Sys.getcwd ())

let lib_summaries () =
  let cmts = Lint.find_cmts [] (lib_root ()) in
  List.fold_left
    (fun (sums, als) path ->
      match Lint.analyze_cmt path with
      | Ok r -> (r.Lint.summaries @ sums, r.Lint.aliases @ als)
      | Error e -> Alcotest.failf "%s" e)
    ([], []) cmts

let test_whole_program_certified () =
  let sums, aliases = lib_summaries () in
  let r = Graph.analyze ~aliases sums in
  (match Lint.active r.Graph.findings with
  | [] -> ()
  | fs -> Alcotest.failf "active graph findings in lib/:\n%s" (show_all fs));
  Alcotest.(check bool)
    (Printf.sprintf "substantial root count (%d)" r.Graph.stats.Graph.gs_roots)
    true
    (r.Graph.stats.Graph.gs_roots > 100);
  Alcotest.(check bool) "hot set covers the roots" true
    (r.Graph.stats.Graph.gs_hot >= r.Graph.stats.Graph.gs_roots);
  Alcotest.(check bool) "edges resolved" true (r.Graph.stats.Graph.gs_edges > 1000)

(* The certification is load-bearing: deleting a single [@zygos.hot]
   from lib/engine/sim.ml surfaces an active R6 finding whose message
   names the hot root and the transitive trace — exactly what would fail
   [dune build @lint]. *)
let test_hot_deletion_in_sim_breaks_certification () =
  let sums, aliases = lib_summaries () in
  let sim_hot =
    List.filter
      (fun s -> s.Lint.fs_hot && contains s.Lint.fs_file "lib/engine/sim.ml")
      sums
    |> List.sort (fun a b -> compare a.Lint.fs_name b.Lint.fs_name)
  in
  Alcotest.(check bool) "sim.ml has hot roots" true (sim_hot <> []);
  let broken_by =
    List.filter
      (fun victim ->
        let sums' =
          List.map
            (fun s ->
              if s.Lint.fs_name = victim.Lint.fs_name && s.Lint.fs_file = victim.Lint.fs_file
              then { s with Lint.fs_hot = false }
              else s)
            sums
        in
        let r = Graph.analyze ~aliases sums' in
        List.exists
          (fun f ->
            contains f.Lint.msg (victim.Lint.fs_name ^ " is reachable from hot root")
            && contains f.Lint.msg " -> ")
          (Lint.active r.Graph.findings))
      sim_hot
  in
  if broken_by = [] then
    Alcotest.failf
      "deleting [@zygos.hot] from any of the %d hot functions in sim.ml leaves the \
       gate green — the certification is not load-bearing"
      (List.length sim_hot)

(* Introducing one allocating call into a certified hot function is
   caught even when the function itself keeps its annotation. *)
let test_seeded_allocating_call_breaks_certification () =
  let sums, aliases = lib_summaries () in
  let victim =
    List.filter
      (fun s -> s.Lint.fs_hot && contains s.Lint.fs_file "lib/engine/sim.ml")
      sums
    |> List.sort (fun a b -> compare a.Lint.fs_name b.Lint.fs_name)
    |> function
    | v :: _ -> v
    | [] -> Alcotest.failf "no hot function in sim.ml to seed"
  in
  let sums' =
    List.map
      (fun s ->
        if s.Lint.fs_name = victim.Lint.fs_name && s.Lint.fs_file = victim.Lint.fs_file
        then
          {
            s with
            Lint.fs_calls =
              s.Lint.fs_calls
              @ [ mk_call ~line:999 (Lint.Callee_prim ("caml_make_vect", true)) ];
          }
        else s)
      sums
  in
  let r = Graph.analyze ~aliases sums' in
  let hits =
    List.filter
      (fun f -> contains f.Lint.msg "allocating external caml_make_vect on hot path from root")
      (Lint.active r.Graph.findings)
  in
  (match hits with
  | f :: _ ->
      Alcotest.(check bool) "finding lands in sim.ml" true
        (contains f.Lint.file "lib/engine/sim.ml")
  | [] -> Alcotest.failf "seeded allocating call not caught")

(* ---- report determinism, roundtrip, ratchet ---- *)

let test_report_deterministic () =
  let sums, aliases = lib_summaries () in
  let render sums =
    let r = Graph.analyze ~aliases sums in
    Report.to_string
      (Report.report_json
         ~active:(Lint.active r.Graph.findings)
         ~suppressed:(Lint.suppressed_of r.Graph.findings)
         ~graph:r)
  in
  (* byte-identical regardless of summary arrival order (-j reordering) *)
  Alcotest.(check string) "order-independent bytes" (render sums) (render (List.rev sums))

let test_report_roundtrip () =
  let sums, aliases = lib_summaries () in
  let r = Graph.analyze ~aliases sums in
  let j =
    Report.report_json
      ~active:(Lint.active r.Graph.findings)
      ~suppressed:(Lint.suppressed_of r.Graph.findings)
      ~graph:r
  in
  Alcotest.(check bool) "parse inverts to_string" true (Report.parse (Report.to_string j) = j)

let test_ratchet_detects_regressions () =
  let graph0 = Graph.analyze [] in
  let f_active =
    { Lint.file = "lib/x.ml"; line = 3; col = 0; rule = Lint.R6; msg = "boom"; suppressed = false }
  in
  let f_sup = { f_active with Lint.rule = Lint.R2; suppressed = true } in
  let report ~active ~suppressed = Report.report_json ~active ~suppressed ~graph:graph0 in
  let baseline = report ~active:[] ~suppressed:[ f_sup ] in
  let current = report ~active:[ f_active ] ~suppressed:[] in
  let violations = Report.ratchet ~baseline ~current in
  Alcotest.(check int) "two violations" 2 (List.length violations);
  Alcotest.(check bool) "new finding reported" true
    (List.exists (fun v -> contains v "new finding") violations);
  Alcotest.(check bool) "vanished suppression reported" true
    (List.exists (fun v -> contains v "suppression vanished") violations);
  (* the ratchet holds against itself *)
  Alcotest.(check int) "self-ratchet clean" 0
    (List.length (Report.ratchet ~baseline:current ~current));
  (* pure line drift does not churn: keys exclude line/col *)
  let drifted = report ~active:[ { f_active with Lint.line = 99 } ] ~suppressed:[] in
  Alcotest.(check int) "line drift tolerated" 0
    (List.length (Report.ratchet ~baseline:current ~current:drifted))

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 fires" `Quick test_r1_fires;
          Alcotest.test_case "R1 scope off" `Quick test_r1_scoped_off_outside_deterministic_dirs;
          Alcotest.test_case "R1 scope on" `Quick test_r1_active_in_deterministic_dirs;
          Alcotest.test_case "R2 fires" `Quick test_r2_fires;
          Alcotest.test_case "R2 arity regression" `Quick test_r2_arity_regression;
          Alcotest.test_case "R3 fires" `Quick test_r3_fires;
          Alcotest.test_case "R3 shadow" `Quick test_r3_local_shadow_ignored;
          Alcotest.test_case "R4 fires" `Quick test_r4_fires;
          Alcotest.test_case "R4 scope off" `Quick test_r4_off_by_default_elsewhere;
          Alcotest.test_case "R5 fires" `Quick test_r5_fires;
          Alcotest.test_case "R8 fires, owned is load-bearing" `Quick
            test_r8_fires_and_owned_is_load_bearing;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "R6 def site" `Quick test_r6_def_site_fires;
          Alcotest.test_case "R6 certified chain" `Quick test_r6_clean_when_certified;
          Alcotest.test_case "R6 allow cuts propagation" `Quick test_r6_allow_cuts_propagation;
          Alcotest.test_case "R6 transitive alloc" `Quick test_r6_alloc_in_transitive_callee;
          Alcotest.test_case "R6 unknown callee" `Quick test_r6_unknown_callee;
          Alcotest.test_case "R6 allocating external" `Quick test_r6_allocating_external;
          Alcotest.test_case "module alias" `Quick test_graph_module_alias;
          Alcotest.test_case "functor application" `Quick test_graph_functor_application;
          Alcotest.test_case "partial application" `Quick test_graph_partial_application;
          Alcotest.test_case "mutual recursion" `Quick test_graph_mutual_recursion;
          Alcotest.test_case "cross-unit alias" `Quick test_graph_cross_unit_alias;
          Alcotest.test_case "R7 cross-unit float" `Quick test_r7_cross_unit_float;
          Alcotest.test_case "R7 boundaries + suppression" `Quick
            test_r7_boundaries_and_suppression;
          Alcotest.test_case "R7 only in hot set" `Quick test_r7_only_in_hot_set;
          QCheck_alcotest.to_alcotest hot_fixed_point_prop;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "allow is load-bearing" `Quick
            test_allow_suppresses_and_is_load_bearing;
          Alcotest.test_case "floating allow" `Quick test_floating_allow_covers_file;
          Alcotest.test_case "hot-alloc allow" `Quick test_hot_alloc_allow;
          Alcotest.test_case "rule selection" `Quick test_rule_selection;
          Alcotest.test_case "rule names" `Quick test_unknown_rule_names;
          Alcotest.test_case "duplicate tokens rejected" `Quick
            test_split_rules_rejects_duplicates;
          Alcotest.test_case "warnings at attribute location" `Quick
            test_allow_warnings_at_attribute_location;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "lib/ tree clean" `Quick test_lib_tree_clean;
          Alcotest.test_case "whole-program certified" `Quick test_whole_program_certified;
          Alcotest.test_case "hot deletion breaks the gate" `Quick
            test_hot_deletion_in_sim_breaks_certification;
          Alcotest.test_case "seeded alloc breaks the gate" `Quick
            test_seeded_allocating_call_breaks_certification;
          Alcotest.test_case "report bytes deterministic" `Quick test_report_deterministic;
          Alcotest.test_case "report parse roundtrip" `Quick test_report_roundtrip;
          Alcotest.test_case "ratchet detects regressions" `Quick
            test_ratchet_detects_regressions;
        ] );
    ]
