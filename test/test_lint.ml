(* Tests for tool/zygoscope: each rule fires on a minimal bad fixture at
   the expected line, stays quiet on the good variant, and every
   suppression mechanism ([@zygos.allow], [@zygos.owned], floating
   [@@@zygos.allow]) downgrades the finding to suppressed-but-recorded.
   The end-to-end case runs the real analyzer over the built library
   tree and proves both directions of the gate: zero active findings,
   and a non-empty suppressed set covering every documented annotation
   site — deleting any one of those annotations would surface an active
   finding and fail [dune build @lint]. *)

module Lint = Zygoscope_lib.Lint

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let analyze ?enabled ?r1 ?r4 ~name code =
  Lint.analyze_structure ?enabled ?r1 ?r4 ~file:name (Lint.typecheck_string ~name code)

let show f = Format.asprintf "%a" Lint.pp_finding f

let show_all fs = String.concat "\n" (List.map show fs)

(* Assert the active findings are exactly [(rule, line)] pairs, in order. *)
let check_active what expected findings =
  let got = List.map (fun f -> (f.Lint.rule, f.Lint.line)) (Lint.active findings) in
  if got <> expected then
    Alcotest.failf "%s: expected %s, got:\n%s" what
      (String.concat "; "
         (List.map
            (fun (r, l) -> Printf.sprintf "%s@%d" (Lint.rule_name r) l)
            expected))
      (show_all (Lint.active findings))

(* ---- R1: determinism ---- *)

let fixture_r1 =
  {|
let elapsed () = Sys.time ()
let roll () = Random.int 6
let digest x = Hashtbl.hash x
let table () : (int, int) Hashtbl.t = Hashtbl.create ~random:true 16
let fine () : (int, int) Hashtbl.t = Hashtbl.create 16
let own_rng seed = (seed * 25214903917) + 11
|}

let test_r1_fires () =
  let fs = analyze ~r1:true ~name:"fixture_r1.ml" fixture_r1 in
  check_active "r1"
    [ (Lint.R1, 2); (Lint.R1, 3); (Lint.R1, 4); (Lint.R1, 5) ]
    fs

let test_r1_scoped_off_outside_deterministic_dirs () =
  (* Same code, applicability derived from the file path: lib/runtime is
     allowlisted, bin/ is out of scope entirely. *)
  List.iter
    (fun file -> check_active file [] (analyze ~name:file fixture_r1))
    [ "lib/runtime/pool.ml"; "bin/main.ml" ]

let test_r1_active_in_deterministic_dirs () =
  let fs = analyze ~name:"lib/engine/sim.ml" fixture_r1 in
  Alcotest.(check int) "derived applicability" 4 (List.length (Lint.active fs))

(* ---- R2: hot-path allocation ---- *)

let fixture_r2 =
  {|
let[@zygos.hot] mk_tuple x = (x, x)
let[@zygos.hot] mk_some x = Some x
let[@zygos.hot] mk_closure x = let g y = x + y in g
let[@zygos.hot] mk_partial (a : int array) = Array.unsafe_set a 0
let fns : (int -> unit) array = Array.make 4 ignore
let[@zygos.hot] full_app_returning_fn i = Array.unsafe_get fns i
let[@zygos.hot] cold_branch x = if x < 0 then failwith (String.concat "" ["n"; "eg"]) else x
let not_hot x = (x, Some x)
|}

let test_r2_fires () =
  let fs = analyze ~name:"fixture_r2.ml" fixture_r2 in
  check_active "r2"
    [ (Lint.R2, 2); (Lint.R2, 3); (Lint.R2, 4); (Lint.R2, 5) ]
    fs

(* Regression for the arity check: a full application whose *result* is
   a function (['a] instantiated to an arrow) must not be read as a
   partial application — line 7 above —, while a genuine partial
   application (line 5) must. *)
let test_r2_arity_regression () =
  let fs = analyze ~name:"fixture_r2.ml" fixture_r2 in
  let at line = List.filter (fun f -> f.Lint.line = line) (Lint.active fs) in
  Alcotest.(check int) "unsafe_get returning fn is full" 0 (List.length (at 7));
  Alcotest.(check int) "unsafe_set missing an arg is partial" 1 (List.length (at 5))

(* ---- R3: polymorphic operations ---- *)

let fixture_r3 =
  {|
let eq_int (a : int) b = a = b
let eq_str (a : string) b = a = b
let cmp_pair (a : int * int) b = compare a b
let min_float (a : float) b = min a b
let sort_poly (l : (int * int) list) = List.sort compare l
let mem_str (x : string) l = List.mem x l
let mem_int (x : int) l = List.mem x l
|}

let test_r3_fires () =
  let fs = analyze ~name:"fixture_r3.ml" fixture_r3 in
  (* int (immediate) and string = (directly specialized) pass; the boxed
     pair, min (never specialized, even at float), compare-as-a-value and
     List.mem at string fire. *)
  check_active "r3"
    [ (Lint.R3, 4); (Lint.R3, 5); (Lint.R3, 6); (Lint.R3, 7) ]
    fs

let test_r3_local_shadow_ignored () =
  (* A local value that happens to be called [min]/[max] is not the
     stdlib polymorphic operation. *)
  let fs =
    analyze ~name:"fixture_r3b.ml"
      {|
let pick ~min ~max (s : string) = if String.length s > max then min else s
|}
  in
  check_active "r3 shadow" [] fs

(* ---- R4: domain-safety ---- *)

let fixture_r4 =
  {|
type counter = { mutable n : int }
type documented = { mutable m : int [@zygos.owned "test fixture"] }
type atomics = { hits : int Atomic.t; lock : Mutex.t }
let total = ref 0
let bump () = total := !total + 1
let local_acc xs = let acc = ref 0 in List.iter (fun x -> acc := !acc + x) xs; !acc
|}

let test_r4_fires () =
  let fs = analyze ~r4:true ~name:"fixture_r4.ml" fixture_r4 in
  (* the bare mutable field and the module-level ref fire; the
     [@zygos.owned] field is suppressed; Atomic.t/Mutex.t fields and the
     function-local accumulator ref pass. *)
  check_active "r4" [ (Lint.R4, 2); (Lint.R4, 5) ] fs;
  let sup = Lint.suppressed_of fs in
  Alcotest.(check int) "owned field recorded as suppressed" 1 (List.length sup);
  Alcotest.(check int) "owned suppression on line 3" 3 (List.nth sup 0).Lint.line

let test_r4_off_by_default_elsewhere () =
  check_active "r4 off" [] (analyze ~name:"lib/stats/tally.ml" fixture_r4)

(* ---- R5: Obj ---- *)

let test_r5_fires () =
  let fs =
    analyze ~name:"fixture_r5.ml" {|
let peek (x : int list) = Obj.repr x
|}
  in
  check_active "r5" [ (Lint.R5, 2) ] fs

(* ---- suppression mechanics ---- *)

let test_allow_suppresses_and_is_load_bearing () =
  let with_allow =
    {|
let stamp () = (Sys.time () [@zygos.allow "determinism"])
|}
  in
  let without_allow = {|
let stamp () = Sys.time ()
|} in
  let fs = analyze ~r1:true ~name:"fixture_allow.ml" with_allow in
  check_active "allow: nothing active" [] fs;
  Alcotest.(check int) "allow: recorded as suppressed" 1
    (List.length (Lint.suppressed_of fs));
  (* Deleting the annotation turns the same code into an active finding:
     the suppression is load-bearing, not dead. *)
  let fs' = analyze ~r1:true ~name:"fixture_allow.ml" without_allow in
  check_active "allow removed: finding is active" [ (Lint.R1, 2) ] fs'

let test_floating_allow_covers_file () =
  let fs =
    analyze ~name:"fixture_floating.ml"
      {|
[@@@zygos.allow "poly-compare"]

let worst (a : int * int) b = min a b
|}
  in
  check_active "floating allow" [] fs;
  Alcotest.(check int) "still recorded" 1 (List.length (Lint.suppressed_of fs))

let test_hot_alloc_allow () =
  let fs =
    analyze ~name:"fixture_hot_allow.ml"
      {|
let[@zygos.hot] emit x = (Some x [@zygos.allow "hot-alloc"])
|}
  in
  check_active "hot allow" [] fs;
  Alcotest.(check int) "recorded" 1 (List.length (Lint.suppressed_of fs))

let test_rule_selection () =
  (* --rules narrows the enabled set: with only R3 enabled the R1 hit in
     the same fixture is not even recorded. *)
  let code = {|
let both () = ignore (Sys.time ()); min (1, 2) (3, 4)
|} in
  let only_r3 = analyze ~enabled:[ Lint.R3 ] ~r1:true ~name:"fixture_rules.ml" code in
  Alcotest.(check int) "one R3 finding" 1 (List.length (Lint.active only_r3));
  Alcotest.(check bool) "it is R3" true
    (List.for_all (fun f -> f.Lint.rule = Lint.R3) (Lint.active only_r3));
  let only_r1 = analyze ~enabled:[ Lint.R1 ] ~r1:true ~name:"fixture_rules.ml" code in
  Alcotest.(check bool) "only R1" true
    (List.for_all (fun f -> f.Lint.rule = Lint.R1) (Lint.active only_r1))

let test_unknown_rule_names () =
  Alcotest.(check bool) "r1..r5 resolve" true
    (List.for_all
       (fun s -> Option.is_some (Lint.rule_of_string s))
       [ "r1"; "determinism"; "r2"; "hot-alloc"; "r3"; "poly-compare";
         "r4"; "domain-safety"; "r5"; "obj" ]);
  Alcotest.(check bool) "junk does not" true (Option.is_none (Lint.rule_of_string "r9"))

(* ---- end to end over the built library tree ---- *)

(* Documented suppression sites: a representative annotation per file.
   If someone deletes one, the corresponding finding becomes active and
   [dune build @lint] fails; this test pins the inventory. *)
let documented_suppressions =
  [
    ("lib/runtime/pool.ml", Lint.R4);
    ("lib/runtime/executor.ml", Lint.R4);
    ("lib/experiments/sweep.ml", Lint.R4);
    ("lib/experiments/figures.ml", Lint.R1);
    ("lib/experiments/appserve.ml", Lint.R1);
    ("lib/net/loadgen.ml", Lint.R2);
    ("lib/systems/zygos.ml", Lint.R2);
    ("lib/systems/preemptive.ml", Lint.R2);
  ]

let test_lib_tree_clean () =
  (* cwd is _build/default/test under [dune runtest], the workspace root
     under [dune exec] — probe both. *)
  let root =
    List.find_opt Sys.file_exists [ "../lib"; "_build/default/lib" ]
    |> function
    | Some r -> r
    | None ->
        Alcotest.failf "built library tree not found (cwd %s)" (Sys.getcwd ())
  in
  let cmts = Lint.find_cmts [] root in
  Alcotest.(check bool)
    (Printf.sprintf "found %d cmts" (List.length cmts))
    true
    (List.length cmts > 30);
  let all =
    List.concat_map
      (fun path ->
        match Lint.analyze_cmt path with
        | Ok r -> r.Lint.findings
        | Error e -> Alcotest.failf "%s" e)
      cmts
  in
  (match Lint.active all with
  | [] -> ()
  | fs -> Alcotest.failf "active findings in lib/:\n%s" (show_all fs));
  let sup = Lint.suppressed_of all in
  Alcotest.(check bool) "suppressed set non-empty" true (List.length sup > 0);
  List.iter
    (fun (file, rule) ->
      if
        not
          (List.exists
             (fun (f : Lint.finding) -> contains f.Lint.file file && f.Lint.rule = rule)
             sup)
      then
        Alcotest.failf
          "no suppressed %s finding recorded in %s: either the annotation was \
           deleted together with the code it covered (update \
           documented_suppressions) or suppression tracking broke"
          (Lint.rule_name rule) file)
    documented_suppressions

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 fires" `Quick test_r1_fires;
          Alcotest.test_case "R1 scope off" `Quick test_r1_scoped_off_outside_deterministic_dirs;
          Alcotest.test_case "R1 scope on" `Quick test_r1_active_in_deterministic_dirs;
          Alcotest.test_case "R2 fires" `Quick test_r2_fires;
          Alcotest.test_case "R2 arity regression" `Quick test_r2_arity_regression;
          Alcotest.test_case "R3 fires" `Quick test_r3_fires;
          Alcotest.test_case "R3 shadow" `Quick test_r3_local_shadow_ignored;
          Alcotest.test_case "R4 fires" `Quick test_r4_fires;
          Alcotest.test_case "R4 scope off" `Quick test_r4_off_by_default_elsewhere;
          Alcotest.test_case "R5 fires" `Quick test_r5_fires;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "allow is load-bearing" `Quick
            test_allow_suppresses_and_is_load_bearing;
          Alcotest.test_case "floating allow" `Quick test_floating_allow_covers_file;
          Alcotest.test_case "hot-alloc allow" `Quick test_hot_alloc_allow;
          Alcotest.test_case "rule selection" `Quick test_rule_selection;
          Alcotest.test_case "rule names" `Quick test_unknown_rule_names;
        ] );
      ( "end-to-end",
        [ Alcotest.test_case "lib/ tree clean" `Quick test_lib_tree_clean ] );
    ]
