(* White-box scenario tests of the IX model: run-to-completion order,
   batch formation, batched-syscall transmit semantics, and flow
   partitioning (no cross-core rescue). *)

module Sim = Engine.Sim
module Request = Net.Request
module Params = Systems.Params

let make ?(batch = 1) ?(cores = 2) ~conns () =
  let sim = Sim.create () in
  let pool = Request.create_pool () in
  let p = Params.with_ix_batch (Params.default ~cores ()) batch in
  let responses = ref [] in
  let iface =
    Systems.Ix.create sim p ~pool ~conns ~respond:(fun req ->
        responses := (req, Sim.now sim) :: !responses)
  in
  (sim, p, pool, iface, responses)

let mk pool ~id ~conn ~service =
  Request.alloc pool ~id ~conn ~arrival:0. ~service ~measured:true

let completion responses r =
  match List.assoc_opt r !responses with
  | Some t -> t
  | None -> Alcotest.fail "request not completed"

(* Connections homed on core 0 under the model's own RSS config. *)
let conns_on_core_0 ~cores ~n =
  let rss = Net.Rss.create ~queues:cores () in
  let rec find c acc =
    if List.length acc = n then List.rev acc
    else find (c + 1) (if Net.Rss.queue_of_conn rss c = 0 then c :: acc else acc)
  in
  find 0 []

let test_single_request_cost () =
  (* poll-notice + loop + rx + service + tx, exactly. *)
  let sim, p, pool, iface, responses = make ~conns:4 () in
  let r = mk pool ~id:0 ~conn:0 ~service:10. in
  iface.Systems.Iface.submit r;
  Sim.run sim;
  let expected =
    p.Params.dp_loop (* idle poll notice *)
    +. p.Params.dp_loop +. p.Params.dp_rx (* batch rx *)
    +. 10. +. p.Params.dp_tx
  in
  Alcotest.(check (float 1e-9)) "exact cost" expected (completion responses r)

let test_run_to_completion_order () =
  (* Requests on one core complete strictly in arrival order regardless of
     service times — FCFS with no preemption and no stealing. *)
  match conns_on_core_0 ~cores:2 ~n:3 with
  | [ a; b; c ] ->
      let sim, _, pool, iface, responses = make ~conns:(c + 1) () in
      let r1 = mk pool ~id:0 ~conn:a ~service:50. in
      let r2 = mk pool ~id:1 ~conn:b ~service:1. in
      let r3 = mk pool ~id:2 ~conn:c ~service:1. in
      List.iter iface.Systems.Iface.submit [ r1; r2; r3 ];
      Sim.run sim;
      let t1 = completion responses r1
      and t2 = completion responses r2
      and t3 = completion responses r3 in
      Alcotest.(check bool)
        (Printf.sprintf "FCFS: %.1f < %.1f < %.1f" t1 t2 t3)
        true
        (t1 < t2 && t2 < t3);
      (* the 1µs requests waited behind the 50µs one: head-of-line
         blocking, the paper's core criticism of IX *)
      Alcotest.(check bool) "HOL blocking occurred" true (t2 > 50.)
  | _ -> Alcotest.fail "need 3 conns on core 0"

let test_no_stealing_across_cores () =
  (* With one core overloaded and the other idle, the idle core never
     helps: per-core completion sets are disjoint by home. *)
  match conns_on_core_0 ~cores:2 ~n:2 with
  | [ a; b ] ->
      let sim, _, pool, iface, responses = make ~conns:(b + 1) () in
      let long_req = mk pool ~id:0 ~conn:a ~service:100. in
      let short_req = mk pool ~id:1 ~conn:b ~service:1. in
      iface.Systems.Iface.submit long_req;
      iface.Systems.Iface.submit short_req;
      Sim.run sim;
      (* The short request waits the full 100µs — no rescue. *)
      Alcotest.(check bool) "no cross-core rescue" true
        (completion responses short_req > 100.)
  | _ -> Alcotest.fail "need 2 conns on core 0"

let test_batched_tx_delays_first_response () =
  (* With B >= 2 and two requests in the ring, the first request's
     response is transmitted only after the second finishes executing. *)
  match conns_on_core_0 ~cores:2 ~n:2 with
  | [ a; b ] ->
      let run ~batch =
        let sim, _, pool, iface, responses = make ~batch ~conns:(b + 1) () in
        let r1 = mk pool ~id:0 ~conn:a ~service:10. in
        let r2 = mk pool ~id:1 ~conn:b ~service:10. in
        iface.Systems.Iface.submit r1;
        iface.Systems.Iface.submit r2;
        Sim.run sim;
        completion responses r1
      in
      let eager = run ~batch:1 and batched = run ~batch:64 in
      Alcotest.(check bool)
        (Printf.sprintf "batched first response %.2f > unbatched %.2f" batched eager)
        true
        (batched > eager +. 9.)
  | _ -> Alcotest.fail "need 2 conns on core 0"

let test_batch_amortizes_loop_cost () =
  (* Aggregate completion of k requests is faster with batching: one loop
     iteration instead of k. *)
  match conns_on_core_0 ~cores:2 ~n:4 with
  | a :: _ :: _ :: d :: _ ->
      ignore (a, d);
      let reqs_on_core0 = conns_on_core_0 ~cores:2 ~n:4 in
      let run ~batch =
        let sim, _, pool, iface, responses =
          make ~batch ~conns:(List.fold_left max 0 reqs_on_core0 + 1) ()
        in
        let reqs = List.mapi (fun i c -> mk pool ~id:i ~conn:c ~service:2.) reqs_on_core0 in
        List.iter iface.Systems.Iface.submit reqs;
        Sim.run sim;
        List.fold_left (fun acc r -> Float.max acc (completion responses r)) 0. reqs
      in
      let all_b1 = run ~batch:1 and all_b64 = run ~batch:64 in
      Alcotest.(check bool)
        (Printf.sprintf "last completion: B=64 %.2f <= B=1 %.2f" all_b64 all_b1)
        true (all_b64 <= all_b1)
  | _ -> Alcotest.fail "need 4 conns on core 0"

let test_rpc_packets_cost () =
  (* Multi-packet requests multiply rx and tx stack costs. *)
  let cost ~packets =
    let sim = Sim.create () in
    let pool = Request.create_pool () in
    let p = Params.with_rpc_packets (Params.default ~cores:2 ()) packets in
    let responses = ref [] in
    let iface =
      Systems.Ix.create sim p ~pool ~conns:4 ~respond:(fun req ->
          responses := (req, Sim.now sim) :: !responses)
    in
    let r = mk pool ~id:0 ~conn:0 ~service:10. in
    iface.Systems.Iface.submit r;
    Sim.run sim;
    completion responses r
  in
  let p = Params.default ~cores:2 () in
  let delta = cost ~packets:3 -. cost ~packets:1 in
  Alcotest.(check (float 1e-9)) "2 extra packets each way"
    (2. *. (p.Params.dp_rx +. p.Params.dp_tx))
    delta

let () =
  Alcotest.run "ix-model"
    [
      ( "scenarios",
        [
          Alcotest.test_case "single request cost" `Quick test_single_request_cost;
          Alcotest.test_case "run-to-completion order" `Quick test_run_to_completion_order;
          Alcotest.test_case "no stealing" `Quick test_no_stealing_across_cores;
          Alcotest.test_case "batched tx delays response" `Quick
            test_batched_tx_delays_first_response;
          Alcotest.test_case "batch amortizes loop" `Quick test_batch_amortizes_loop_cost;
          Alcotest.test_case "rpc packets cost" `Quick test_rpc_packets_cost;
        ] );
    ]
