(* Tests for lib/engine: PRNG, distributions, event heap, simulator. *)

module Rng = Engine.Rng
module Dist = Engine.Dist
module Heap = Engine.Heap
module Sim = Engine.Sim

let check_float = Alcotest.(check (float 1e-9))

(* ---- Rng ---- *)

let test_rng_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:8 in
  Alcotest.(check bool) "different seeds differ" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_copy_independent () =
  let a = Rng.create ~seed:3 in
  ignore (Rng.next_int64 a : int64);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues the stream" (Rng.next_int64 a) (Rng.next_int64 b);
  ignore (Rng.next_int64 a : int64);
  (* advancing a does not affect b *)
  let a' = Rng.next_int64 a and b' = Rng.next_int64 b in
  Alcotest.(check bool) "streams diverged after extra draw" true (a' <> b' || a' = b')

let test_rng_split_decorrelated () =
  let a = Rng.create ~seed:3 in
  let b = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 50 (fun _ -> Rng.next_int64 b) in
  Alcotest.(check bool) "split stream differs" true (xs <> ys)

let test_rng_float_range () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    if x < 0. || x >= 1. then Alcotest.failf "float out of [0,1): %g" x
  done

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:2 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 17 in
    if x < 0 || x >= 17 then Alcotest.failf "int out of [0,17): %d" x
  done;
  for _ = 1 to 1_000 do
    let x = Rng.int_range rng 5 9 in
    if x < 5 || x > 9 then Alcotest.failf "int_range out of [5,9]: %d" x
  done

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:4 in
  let n = 200_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:10.
  done;
  let mean = !sum /. float_of_int n in
  if abs_float (mean -. 10.) > 0.2 then Alcotest.failf "exponential mean off: %g" mean

let test_rng_bernoulli () =
  let rng = Rng.create ~seed:5 in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  if abs_float (p -. 0.3) > 0.01 then Alcotest.failf "bernoulli(0.3) off: %g" p

let prop_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let rng = Rng.create ~seed in
      let a = Array.of_list xs in
      Rng.shuffle_in_place rng a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

(* ---- Dist ---- *)

let test_dist_means () =
  check_float "deterministic" 5. (Dist.mean (Dist.deterministic 5.));
  check_float "exponential" 7. (Dist.mean (Dist.exponential 7.));
  check_float "bimodal1 mean is S" 10. (Dist.mean (Dist.bimodal1 ~mean:10.));
  check_float "bimodal2 mean is S" 10. (Dist.mean (Dist.bimodal2 ~mean:10.));
  Alcotest.(check (float 1e-6)) "lognormal mean" 3. (Dist.mean (Dist.lognormal ~mean:3. ~sigma:1.2))

let test_dist_scv () =
  check_float "deterministic scv" 0. (Dist.squared_cv (Dist.deterministic 4.));
  Alcotest.(check (float 1e-9)) "exponential scv" 1. (Dist.squared_cv (Dist.exponential 4.));
  Alcotest.(check bool) "bimodal2 has huge dispersion" true
    (Dist.squared_cv (Dist.bimodal2 ~mean:1.) > 100.)

let test_dist_sample_values () =
  let rng = Rng.create ~seed:6 in
  let d = Dist.bimodal1 ~mean:10. in
  for _ = 1 to 1_000 do
    let x = Dist.sample d rng in
    if not (x = 5. || x = 55.) then Alcotest.failf "bimodal1 sample unexpected: %g" x
  done

let test_dist_sample_mean () =
  let rng = Rng.create ~seed:7 in
  List.iter
    (fun d ->
      let n = 100_000 in
      let sum = ref 0. in
      for _ = 1 to n do
        sum := !sum +. Dist.sample d rng
      done;
      let m = !sum /. float_of_int n in
      let expected = Dist.mean d in
      if abs_float (m -. expected) /. expected > 0.05 then
        Alcotest.failf "sample mean of %s off: %g vs %g" (Dist.name d) m expected)
    [ Dist.deterministic 3.; Dist.exponential 3.; Dist.bimodal1 ~mean:3.;
      Dist.lognormal ~mean:3. ~sigma:1. ]

let prop_dist_scale =
  QCheck.Test.make ~name:"scale multiplies the mean" ~count:100
    QCheck.(pair (float_range 0.1 100.) (float_range 0.1 10.))
    (fun (mean, k) ->
      List.for_all
        (fun d ->
          let scaled = Dist.scale d k in
          abs_float (Dist.mean scaled -. (k *. Dist.mean d)) < 1e-6 *. k *. mean)
        [ Dist.deterministic mean; Dist.exponential mean; Dist.bimodal1 ~mean ])

let test_dist_empirical () =
  let d = Dist.empirical [| 1.; 2.; 3.; 4. |] in
  check_float "empirical mean" 2.5 (Dist.mean d);
  let rng = Rng.create ~seed:8 in
  for _ = 1 to 100 do
    let x = Dist.sample d rng in
    if not (List.mem x [ 1.; 2.; 3.; 4. ]) then Alcotest.failf "empirical sample: %g" x
  done;
  Alcotest.check_raises "empty empirical" (Invalid_argument "Dist.empirical: no samples")
    (fun () -> ignore (Dist.empirical [||] : Dist.t))

(* ---- Heap ---- *)

let prop_heap_sorted =
  QCheck.Test.make ~name:"pop yields times in order" ~count:200
    QCheck.(list (float_range 0. 1000.))
    (fun times ->
      let h = Heap.create ~dummy:(-1) () in
      List.iteri (fun i t -> Heap.add h ~time:t i) times;
      let rec drain last =
        match Heap.pop_min h with
        | None -> true
        | Some (t, _) -> t >= last && drain t
      in
      drain neg_infinity)

(* Random add/pop/clear interleavings against a sorted-list reference
   model: pops must agree with the model exactly — nondecreasing times
   with FIFO tie-breaking by insertion sequence. Times are drawn from a
   coarse grid so ties are frequent. *)
let prop_heap_matches_model =
  let op_gen =
    QCheck.Gen.(
      list
        (pair (int_bound 7) (map (fun k -> float_of_int k /. 2.) (int_bound 20))))
  in
  QCheck.Test.make ~name:"heap agrees with sorted-list model" ~count:300
    (QCheck.make ~print:(fun ops -> string_of_int (List.length ops)) op_gen)
    (fun ops ->
      let h = Heap.create ~dummy:(-1) () in
      let model = ref [] in
      (* model entries: (time, seq); popped element = min by (time, seq) *)
      let next_seq = ref 0 in
      List.for_all
        (fun (op, time) ->
          if op <= 4 then begin
            Heap.add h ~time !next_seq;
            model := (time, !next_seq) :: !model;
            incr next_seq;
            true
          end
          else if op <= 6 then begin
            match (Heap.pop_min h, !model) with
            | None, [] -> true
            | None, _ :: _ | Some _, [] -> false
            | Some (t, v), entries ->
                let ((mt, ms) as m) =
                  List.fold_left
                    (fun acc e -> if compare e acc < 0 then e else acc)
                    (List.hd entries) (List.tl entries)
                in
                model := List.filter (fun e -> e <> m) entries;
                t = mt && v = ms
          end
          else begin
            Heap.clear h;
            model := [];
            (* clear also resets the FIFO sequence, matching a fresh heap *)
            next_seq := 0;
            Heap.is_empty h
          end)
        ops
      && Heap.length h = List.length !model)

let test_heap_fifo_ties () =
  let h = Heap.create ~dummy:(-1) () in
  List.iter (fun i -> Heap.add h ~time:1.0 i) [ 1; 2; 3; 4; 5 ];
  let order = List.init 5 (fun _ -> match Heap.pop_min h with Some (_, v) -> v | None -> -1) in
  Alcotest.(check (list int)) "FIFO among equal times" [ 1; 2; 3; 4; 5 ] order

let test_heap_length_and_clear () =
  let h = Heap.create ~dummy:(-1) () in
  Alcotest.(check bool) "fresh heap empty" true (Heap.is_empty h);
  for i = 1 to 100 do
    Heap.add h ~time:(float_of_int (100 - i)) i
  done;
  Alcotest.(check int) "length" 100 (Heap.length h);
  Alcotest.(check (option (float 0.))) "peek" (Some 0.) (Heap.peek_min_time h);
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.length h);
  Alcotest.(check (option (float 0.))) "peek empty" None (Heap.peek_min_time h)

let test_heap_no_stale_values () =
  (* An empty heap — including one grown from empty and drained — must
     never expose a previously stored payload. *)
  let h = Heap.create ~capacity:1 ~dummy:"dummy" () in
  Alcotest.(check string) "fresh min_elt is dummy" "dummy" (Heap.min_elt h);
  for i = 1 to 200 do
    Heap.add h ~time:(float_of_int i) (string_of_int i)
  done;
  for _ = 1 to 200 do
    Heap.drop_min h
  done;
  Alcotest.(check string) "drained min_elt is dummy" "dummy" (Heap.min_elt h);
  Alcotest.(check bool) "min_time empty = infinity" true (Heap.min_time h = infinity);
  Heap.add h ~time:3. "live";
  Heap.clear h;
  Alcotest.(check string) "cleared min_elt is dummy" "dummy" (Heap.min_elt h)

let test_heap_peek_then_drop () =
  let h = Heap.create ~dummy:(-1) () in
  Heap.add h ~time:2. 20;
  Heap.add h ~time:1. 10;
  Alcotest.(check bool) "min_time" true (Heap.min_time h = 1.);
  Alcotest.(check int) "min_elt" 10 (Heap.min_elt h);
  Heap.drop_min h;
  Alcotest.(check int) "next min_elt" 20 (Heap.min_elt h);
  Heap.drop_min h;
  Heap.drop_min h;
  (* dropping on empty is a no-op *)
  Alcotest.(check int) "empty length" 0 (Heap.length h)

(* ---- Sim ---- *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule sim ~at:3. (fun () -> log := 3 :: !log) : Sim.handle);
  ignore (Sim.schedule sim ~at:1. (fun () -> log := 1 :: !log) : Sim.handle);
  ignore (Sim.schedule sim ~at:2. (fun () -> log := 2 :: !log) : Sim.handle);
  Sim.run sim;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  check_float "clock at last event" 3. (Sim.now sim)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule sim ~at:1. (fun () -> fired := true) in
  Sim.cancel sim h;
  Sim.run sim;
  Alcotest.(check bool) "cancelled event did not fire" false !fired

let test_sim_pool_recycles () =
  (* A long chain of schedule-inside-action events must run in O(1) pool
     slots, recycling the same slot instead of allocating fresh ones. *)
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 1_000 then ignore (Sim.schedule_after sim ~delay:1. tick : Sim.handle)
  in
  ignore (Sim.schedule_after sim ~delay:1. tick : Sim.handle);
  Sim.run sim;
  let s = Sim.stats sim in
  Alcotest.(check int) "all fired" 1_000 s.Sim.fired;
  Alcotest.(check int) "all scheduled" 1_000 s.Sim.scheduled;
  Alcotest.(check int) "no cancels" 0 s.Sim.cancelled;
  Alcotest.(check bool) "slots recycled" true (s.Sim.reused >= 998);
  Alcotest.(check bool) "pool stayed tiny" true (s.Sim.pool_slots <= 2)

let test_sim_stale_handle_is_inert () =
  (* After an event fires, its pool slot may be reused by a new event; the
     old handle must not be able to cancel the new occupant. *)
  let sim = Sim.create () in
  let first = Sim.schedule sim ~at:1. (fun () -> ()) in
  Sim.run sim;
  let fired = ref false in
  ignore (Sim.schedule sim ~at:2. (fun () -> fired := true) : Sim.handle);
  Sim.cancel sim first;
  (* stale: same slot, older generation *)
  Sim.run sim;
  Alcotest.(check bool) "new event still fired" true !fired;
  Alcotest.(check int) "stale cancel not counted" 0 (Sim.stats sim).Sim.cancelled

let test_sim_cancel_frees_slot () =
  let sim = Sim.create () in
  let h = Sim.schedule sim ~at:5. (fun () -> ()) in
  Sim.cancel sim h;
  ignore (Sim.schedule sim ~at:6. (fun () -> ()) : Sim.handle);
  Sim.run sim;
  let s = Sim.stats sim in
  Alcotest.(check int) "one cancel" 1 s.Sim.cancelled;
  Alcotest.(check int) "one fired" 1 s.Sim.fired;
  Alcotest.(check bool) "cancelled slot reused" true (s.Sim.reused >= 1);
  Alcotest.(check int) "single slot" 1 s.Sim.pool_slots

let test_sim_past_raises () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~at:5. (fun () -> ()) : Sim.handle);
  Sim.run sim;
  Alcotest.check_raises "past scheduling rejected"
    (Invalid_argument "Sim.schedule: at 1 is in the past (now 5)") (fun () ->
      ignore (Sim.schedule sim ~at:1. (fun () -> ()) : Sim.handle))

let test_sim_negative_delay_raises () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Sim.schedule_after: negative delay")
    (fun () -> ignore (Sim.schedule_after sim ~delay:(-1.) (fun () -> ()) : Sim.handle))

let test_sim_nested_scheduling () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.schedule sim ~at:1. (fun () ->
         log := "outer" :: !log;
         ignore (Sim.schedule_after sim ~delay:1. (fun () -> log := "inner" :: !log) : Sim.handle))
      : Sim.handle);
  Sim.run sim;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  check_float "clock" 2. (Sim.now sim)

let test_sim_run_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.schedule sim ~at:(float_of_int i) (fun () -> incr count) : Sim.handle)
  done;
  Sim.run_until sim 5.5;
  Alcotest.(check int) "events before horizon" 5 !count;
  check_float "clock advanced to horizon" 5.5 (Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "rest after run" 10 !count

let test_sim_same_time_fifo () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.schedule sim ~at:1. (fun () -> log := i :: !log) : Sim.handle)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO at same instant" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let () =
  Alcotest.run "engine"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split_decorrelated;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "exponential mean" `Slow test_rng_exponential_mean;
          Alcotest.test_case "bernoulli" `Quick test_rng_bernoulli;
          QCheck_alcotest.to_alcotest prop_shuffle_is_permutation;
        ] );
      ( "dist",
        [
          Alcotest.test_case "analytic means" `Quick test_dist_means;
          Alcotest.test_case "squared CV" `Quick test_dist_scv;
          Alcotest.test_case "bimodal support" `Quick test_dist_sample_values;
          Alcotest.test_case "sample means" `Slow test_dist_sample_mean;
          Alcotest.test_case "empirical" `Quick test_dist_empirical;
          QCheck_alcotest.to_alcotest prop_dist_scale;
        ] );
      ( "heap",
        [
          QCheck_alcotest.to_alcotest prop_heap_sorted;
          QCheck_alcotest.to_alcotest prop_heap_matches_model;
          Alcotest.test_case "FIFO ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "length/clear" `Quick test_heap_length_and_clear;
          Alcotest.test_case "no stale values" `Quick test_heap_no_stale_values;
          Alcotest.test_case "peek then drop" `Quick test_heap_peek_then_drop;
        ] );
      ( "sim",
        [
          Alcotest.test_case "ordering" `Quick test_sim_ordering;
          Alcotest.test_case "cancel" `Quick test_sim_cancel;
          Alcotest.test_case "pool recycles" `Quick test_sim_pool_recycles;
          Alcotest.test_case "stale handle inert" `Quick test_sim_stale_handle_is_inert;
          Alcotest.test_case "cancel frees slot" `Quick test_sim_cancel_frees_slot;
          Alcotest.test_case "past raises" `Quick test_sim_past_raises;
          Alcotest.test_case "negative delay" `Quick test_sim_negative_delay_raises;
          Alcotest.test_case "nested" `Quick test_sim_nested_scheduling;
          Alcotest.test_case "run_until" `Quick test_sim_run_until;
          Alcotest.test_case "same-time FIFO" `Quick test_sim_same_time_fifo;
        ] );
    ]
