(* Perf-regression guard for the PR 1 allocation-free engine hot path.

   Two invariants, asserted on a warmed-up steady-state window so pool
   growth and closure creation are excluded:

   - the engine's schedule/fire cycle allocates ~nothing on the minor
     heap (the only sanctioned per-event allocation is a caller-supplied
     closure, and the steady-state loop below reuses one closure);
   - the event pool recycles its slots: [reused / scheduled] approaches 1
     and [pool_slots] stays at the high-water mark of concurrently
     pending events.

   If either drifts, the SoA-heap/pooled-event rewrite has silently
   regressed into an allocating path.

   Through PR 3 the steady-state floor on non-flambda OCaml was 4 minor
   words/event: two transient float boxes (the [at] argument built in
   [schedule_after], and the boxed min-time return consumed by [step])
   that cross-module float passing always costs. PR 4 routes event times
   through a flat one-element float array in both directions
   ([Heap.add_key] / [pop_into]), which removes both boxes: the floor is
   now 0 for either dispatch API, and the bounds below sit at the
   ISSUE-4 acceptance level (4.5, under the old 4-word floor) for the
   closure path and essentially zero for the closure-free path — any
   pooled-record or re-boxing regression trips them immediately. *)

let words_per_event_bound = 4.5
let fn_words_per_event_bound = 0.5

module Sim = Engine.Sim

let test_minor_words_per_event () =
  let sim = Sim.create () in
  (* One self-rescheduling closure: steady state with a single pending
     event, exercising schedule + heap sift + fire on every step. *)
  let rec tick () = ignore (Sim.schedule_after sim ~delay:1.0 tick : Sim.handle) in
  tick ();
  for _ = 1 to 1_000 do
    ignore (Sim.step sim : bool)
  done;
  let events = 50_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to events do
    ignore (Sim.step sim : bool)
  done;
  let per_event = (Gc.minor_words () -. w0) /. float_of_int events in
  if per_event > words_per_event_bound then
    Alcotest.failf "steady-state Sim allocates %.2f minor words/event (want <= %g)"
      per_event words_per_event_bound

let test_deep_heap_minor_words () =
  (* Same guard at depth 512 (a realistic pending-event population), so a
     regression in the heap's sift path can't hide behind a depth-1 run. *)
  let sim = Sim.create () in
  let rec tick () = ignore (Sim.schedule_after sim ~delay:512.0 tick : Sim.handle) in
  for _ = 1 to 512 do
    tick ()
  done;
  for _ = 1 to 2_048 do
    ignore (Sim.step sim : bool)
  done;
  let events = 50_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to events do
    ignore (Sim.step sim : bool)
  done;
  let per_event = (Gc.minor_words () -. w0) /. float_of_int events in
  if per_event > words_per_event_bound then
    Alcotest.failf "deep-heap Sim allocates %.2f minor words/event (want <= %g)"
      per_event words_per_event_bound

(* The same two guards through the closure-free API: a long-lived fn and
   an int payload, so the loop must allocate nothing at all. *)
let test_fn_minor_words_per_event () =
  let sim = Sim.create () in
  let rec tick _ = ignore (Sim.schedule_fn_after sim ~delay:1.0 tick 0 : Sim.handle) in
  tick 0;
  for _ = 1 to 1_000 do
    ignore (Sim.step sim : bool)
  done;
  let events = 50_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to events do
    ignore (Sim.step sim : bool)
  done;
  let per_event = (Gc.minor_words () -. w0) /. float_of_int events in
  if per_event > fn_words_per_event_bound then
    Alcotest.failf "schedule_fn steady state allocates %.2f minor words/event (want <= %g)"
      per_event fn_words_per_event_bound

let test_fn_deep_minor_words () =
  let sim = Sim.create () in
  let rec tick _ = ignore (Sim.schedule_fn_after sim ~delay:512.0 tick 0 : Sim.handle) in
  for _ = 1 to 512 do
    tick 0
  done;
  for _ = 1 to 2_048 do
    ignore (Sim.step sim : bool)
  done;
  let events = 50_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to events do
    ignore (Sim.step sim : bool)
  done;
  let per_event = (Gc.minor_words () -. w0) /. float_of_int events in
  if per_event > fn_words_per_event_bound then
    Alcotest.failf "deep schedule_fn loop allocates %.2f minor words/event (want <= %g)"
      per_event fn_words_per_event_bound

let test_pool_reuse_ratio () =
  let sim = Sim.create () in
  let rec tick () = ignore (Sim.schedule_after sim ~delay:1.0 tick : Sim.handle) in
  for _ = 1 to 64 do
    tick ()
  done;
  for _ = 1 to 100_000 do
    ignore (Sim.step sim : bool)
  done;
  let s = Sim.stats sim in
  let ratio = float_of_int s.Sim.reused /. float_of_int s.Sim.scheduled in
  if ratio < 0.99 then
    Alcotest.failf "pool reuse ratio %.4f (reused %d / scheduled %d), want >= 0.99" ratio
      s.Sim.reused s.Sim.scheduled;
  if s.Sim.pool_slots > 128 then
    Alcotest.failf "pool grew to %d slots for 64 concurrent events" s.Sim.pool_slots

(* PR 8 extends the guard from the bare engine cycle to the whole
   request path: one fig6-style ZygOS point (the bench's
   "experiments: ns per simulated request" config) must stay within a
   fixed minor-words-per-simulated-request budget, point setup and
   tally collection included. The floor is not 0: the engine cycle and
   every pooled structure on the path (requests, events, parser, RSS)
   are allocation-free, but non-flambda OCaml still boxes floats that
   cross the remaining non-inlined call boundaries — two RNG
   [exponential] draws per request (arrival gap, service sample, ~6
   words each) plus the [~cost]/[~delay]/[~arrival]/latency floats
   handed to segment starts, wakes, request allocs and tally records
   (~2 words per crossing). Measured 2026-08: ~70 words/request; the
   bound leaves headroom for compiler-version drift while still
   tripping on any new per-request allocation (a single stray closure
   or list cell per request costs 3+ words). *)
let request_path_words_bound = 85.

let test_request_path_minor_words () =
  let requests = 1_500 in
  let cfg =
    Experiments.Run.config ~cores:4 ~conns:128 ~requests ~seed:1
      ~system:Experiments.Run.Zygos ~service:(Engine.Dist.exponential 10.) ()
  in
  let point () = ignore (Experiments.Run.run_point cfg ~load:0.5 : Experiments.Run.point) in
  point ();
  let iters = 2 in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    point ()
  done;
  let per_req = (Gc.minor_words () -. w0) /. float_of_int (iters * requests) in
  if per_req > request_path_words_bound then
    Alcotest.failf "request path allocates %.1f minor words/request (want <= %g)" per_req
      request_path_words_bound

let test_end_to_end_reuse_ratio () =
  (* The same invariant through the full stack: a ZygOS point's event
     pool must serve almost every schedule from the free list. *)
  let cfg =
    Experiments.Run.config ~cores:4 ~conns:64 ~requests:4_000 ~seed:11
      ~system:Experiments.Run.Zygos ~service:(Engine.Dist.exponential 10.) ()
  in
  let p = Experiments.Run.run_point cfg ~load:0.7 in
  let get key = Option.value ~default:0. (List.assoc_opt key p.Experiments.Run.info) in
  let scheduled = get "sim_events_scheduled" and reused = get "sim_events_reused" in
  if scheduled <= 0. then Alcotest.fail "no events scheduled";
  let ratio = reused /. scheduled in
  if ratio < 0.9 then
    Alcotest.failf "end-to-end reuse ratio %.4f (reused %g / scheduled %g), want >= 0.9"
      ratio reused scheduled

let () =
  Alcotest.run "perf-guard"
    [
      ( "allocation-free hot path",
        [
          Alcotest.test_case "steady-state minor words/event ~ 0" `Quick
            test_minor_words_per_event;
          Alcotest.test_case "depth-512 minor words/event ~ 0" `Quick
            test_deep_heap_minor_words;
          Alcotest.test_case "schedule_fn minor words/event = 0" `Quick
            test_fn_minor_words_per_event;
          Alcotest.test_case "deep schedule_fn minor words/event = 0" `Quick
            test_fn_deep_minor_words;
          Alcotest.test_case "event-pool reuse ratio ~ 1" `Quick test_pool_reuse_ratio;
          Alcotest.test_case "zygos point reuse ratio >= 0.9" `Quick
            test_end_to_end_reuse_ratio;
          Alcotest.test_case "request path minor words/request bounded" `Quick
            test_request_path_minor_words;
        ] );
    ]
