module Sim = Engine.Sim
module Rng = Engine.Rng
module Request = Net.Request

type detect = { retry : Net.Loadgen.retry; health : Health.config }

let no_handle : Sim.handle = Sim.no_handle

(* Per logical request in flight; allocated only when detection or hedging
   is enabled (the clean path tracks nothing per request). *)
type entry = {
  e_id : int;
  mutable e_attempts : int;  (* failover re-dispatches sent so far *)
  mutable e_server : int;  (* server of the latest primary dispatch; -1 = queued *)
  mutable e_hedge_server : int;  (* -1 = no hedge copy in flight *)
  mutable e_timeout : Sim.handle;  (* detection timer of the latest primary *)
  mutable e_hedge : Sim.handle;  (* pending hedge trigger *)
  mutable e_done : bool;
}

type t = {
  sim : Sim.t;
  rng : Rng.t;
  pool : Request.pool;
  n : int;
  policy : Policy.t;
  bound : int;
  rss : Net.Rss.t;
  outstanding : float array;  (* exact ToR-side in-flight per server *)
  est : Estimate.t;
  detect : detect option;
  health : Health.t option;  (* Some iff detect *)
  hedge_delay : float;  (* nan = hedging off *)
  tracked : bool;  (* detect or hedge on: per-request entries + dedupe *)
  entries : (int, entry) Hashtbl.t;
  reqs : (int, Request.t) Hashtbl.t;  (* queued/failover copies need fields *)
  tor_queue : Engine.Intq.t;  (* JBSQ central FIFO of request handles *)
  mutable forward : int -> Request.t -> unit;
  respond : Request.t -> unit;
  (* counters *)
  mutable dispatched : int;
  per_server : int array;
  mutable tor_queued : int;
  mutable tor_peak : int;
  mutable no_route_drops : int;
  mutable failovers : int;
  mutable failover_exhausted : int;
  mutable hedges : int;
  mutable hedge_wins : int;
  mutable duplicates_dropped : int;
  mutable credit_resyncs : int;
  mutable fn_timeout : int -> unit;
  mutable fn_failover : int -> unit;
  mutable fn_hedge : int -> unit;
}

let hedging t = not (Float.is_nan t.hedge_delay)

(* Health mask plus, under JBSQ, the exact credit gate. Ranking estimates
   stay stale; only the bound check reads ground truth (JBSQ's credits are
   an explicit ack channel, not telemetry). *)
let routable t i ~now =
  (match t.health with None -> true | Some h -> Health.routable h i ~now)
  && (t.bound = max_int || Estimate.exact t.est i < float_of_int t.bound)

let choose t ~conn ~exclude =
  let now = Sim.now t.sim in
  let ok i = i <> exclude && routable t i ~now in
  let s =
    Policy.choose t.policy ~rss:t.rss ~rng:t.rng ~estimate:(Estimate.read t.est)
      ~routable:ok ~n:t.n ~conn
  in
  if s >= 0 || exclude < 0 then s
  else
    (* The excluded server is the only candidate left: better than dropping. *)
    Policy.choose t.policy ~rss:t.rss ~rng:t.rng ~estimate:(Estimate.read t.est)
      ~routable:(fun i -> routable t i ~now) ~n:t.n ~conn

(* Physical dispatch: credit, probe bookkeeping, forward to the server's
   ingress (link faults and crash filters are composed outside). *)
let send t server (req : Request.t) =
  t.outstanding.(server) <- t.outstanding.(server) +. 1.;
  t.dispatched <- t.dispatched + 1;
  t.per_server.(server) <- t.per_server.(server) + 1;
  (match t.health with
  | None -> ()
  | Some h -> Health.note_probe h server ~now:(Sim.now t.sim));
  t.forward server req

let arm_detection t e =
  match t.detect with
  | None -> ()
  | Some d ->
      e.e_timeout <- Sim.schedule_fn_after t.sim ~delay:d.retry.timeout t.fn_timeout e.e_id

let arm_hedge t e =
  if hedging t && t.n > 1 && e.e_hedge = no_handle && e.e_hedge_server < 0 then
    e.e_hedge <- Sim.schedule_fn_after t.sim ~delay:t.hedge_delay t.fn_hedge e.e_id

(* Dispatch [req] as the current primary copy of [e]. *)
let dispatch_primary t e (req : Request.t) server =
  e.e_server <- server;
  arm_detection t e;
  arm_hedge t e;
  send t server req

let enqueue_tor t (req : Request.t) =
  Engine.Intq.push t.tor_queue req;
  t.tor_queued <- t.tor_queued + 1;
  let depth = Engine.Intq.length t.tor_queue in
  if depth > t.tor_peak then t.tor_peak <- depth

(* JBSQ handoff: responses (and recoveries) free credits; drain the
   central FIFO into whichever servers have slots. *)
let drain_tor t =
  if t.bound < max_int then begin
    let continue_ = ref true in
    while !continue_ && not (Engine.Intq.is_empty t.tor_queue) do
      match
        choose t ~conn:(Request.conn t.pool (Engine.Intq.peek t.tor_queue)) ~exclude:(-1)
      with
      | -1 -> continue_ := false
      | server ->
          let req = Engine.Intq.pop t.tor_queue in
          if t.tracked then begin
            match Hashtbl.find_opt t.entries (Request.id t.pool req) with
            | Some e when not e.e_done -> dispatch_primary t e req server
            | Some _ | None -> ()
          end
          else send t server req
    done
  end

(* A [Down] server whose probe slot is open, or -1. Queue-aware policies
   would never volunteer one (its leaked credits keep its estimate high),
   so probing is the dispatcher's job: the next fresh arrival is routed to
   it as the probe, bypassing the policy and the JBSQ bound (a dead
   server's stuck credits must not block its own liveness check). *)
let probe_target t =
  match t.health with
  | None -> -1
  | Some h ->
      let now = Sim.now t.sim in
      let rec scan i =
        if i >= t.n then -1
        else
          match Health.state h i with
          | Health.Down when Health.routable h i ~now -> i
          | Health.Down | Health.Up | Health.Suspect -> scan (i + 1)
      in
      scan 0

let submit t (req : Request.t) =
  let e =
    if not t.tracked then None
    else begin
      let e =
        {
          e_id = Request.id t.pool req;
          e_attempts = 0;
          e_server = -1;
          e_hedge_server = -1;
          e_timeout = no_handle;
          e_hedge = no_handle;
          e_done = false;
        }
      in
      Hashtbl.replace t.entries e.e_id e;
      Some e
    end
  in
  let probe = probe_target t in
  if probe >= 0 then (
    match e with
    | None -> send t probe req
    | Some e -> dispatch_primary t e req probe)
  else if
    (* JBSQ FIFO fairness: never overtake requests already held at the ToR. *)
    t.bound < max_int && not (Engine.Intq.is_empty t.tor_queue)
  then enqueue_tor t req
  else
    match choose t ~conn:(Request.conn t.pool req) ~exclude:(-1) with
    | -1 ->
        if t.bound < max_int then enqueue_tor t req
        else begin
          (* No routable server and no central queue to hold the request:
             the rack is partitioned off; the request is lost (a client
             retry layer may resend it under a fresh id). *)
          ignore e;
          t.no_route_drops <- t.no_route_drops + 1
        end
    | server -> (
        match e with
        | None -> send t server req
        | Some e -> dispatch_primary t e req server)

(* Copy a request for a failover or hedge dispatch: same logical identity
   (id, conn, arrival, service, measured) so client-side latency spans
   from the original arrival, but a fresh pool slot so two servers never
   race on the same mutable started/completion fields. The rack runs its
   pool without recycling — a copy can outlive the first completion. *)
let copy_req t (req : Request.t) =
  Request.alloc t.pool ~id:(Request.id t.pool req) ~conn:(Request.conn t.pool req)
    ~arrival:(Request.arrival t.pool req) ~service:(Request.service t.pool req)
    ~measured:(Request.measured t.pool req)

let on_timeout t id =
  match Hashtbl.find_opt t.entries id with
  | None -> ()
  | Some e ->
      e.e_timeout <- no_handle;
      if not e.e_done then begin
        match t.detect with
        | None -> ()
        | Some d ->
            let now = Sim.now t.sim in
            (match t.health with
            | None -> ()
            | Some h -> Health.note_timeout h e.e_server ~now);
            if e.e_attempts >= d.retry.max_retries then
              t.failover_exhausted <- t.failover_exhausted + 1
            else begin
              e.e_attempts <- e.e_attempts + 1;
              let nominal = Net.Loadgen.backoff_nominal d.retry ~attempt:e.e_attempts in
              let jittered = nominal *. (1. +. (d.retry.jitter *. Rng.float t.rng)) in
              ignore
                (Sim.schedule_fn_after t.sim ~delay:jittered t.fn_failover id : Sim.handle)
            end
      end

let on_failover t id =
  match Hashtbl.find_opt t.entries id with
  | None -> ()
  | Some e ->
      if not e.e_done then begin
        match Hashtbl.find_opt t.reqs id with
        | None -> ()
        | Some orig ->
            let req = copy_req t orig in
            t.failovers <- t.failovers + 1;
            (* Prefer any server other than the one that just timed out. *)
            if t.bound < max_int && not (Engine.Intq.is_empty t.tor_queue) then
              enqueue_tor t req
            else (
              match choose t ~conn:(Request.conn t.pool req) ~exclude:e.e_server with
              | -1 ->
                  if t.bound < max_int then enqueue_tor t req
                  else t.no_route_drops <- t.no_route_drops + 1
              | server -> dispatch_primary t e req server)
      end

let on_hedge t id =
  match Hashtbl.find_opt t.entries id with
  | None -> ()
  | Some e ->
      e.e_hedge <- no_handle;
      if (not e.e_done) && t.n > 1 then begin
        match Hashtbl.find_opt t.reqs id with
        | None -> ()
        | Some orig -> (
            (* Hedge to the best server other than the primary; the copy
               carries no detection timer — the primary's timer still
               governs failover. *)
            match choose t ~conn:(Request.conn t.pool orig) ~exclude:e.e_server with
            | -1 -> ()
            | server ->
                let req = copy_req t orig in
                e.e_hedge_server <- server;
                t.hedges <- t.hedges + 1;
                send t server req)
      end

let on_response t ~server (req : Request.t) =
  let now = Sim.now t.sim in
  t.outstanding.(server) <- Float.max 0. (t.outstanding.(server) -. 1.);
  (match t.health with
  | None -> ()
  | Some h ->
      let was_down = match Health.state h server with Health.Down -> true | _ -> false in
      Health.note_response h server ~now;
      if was_down then begin
        (* Reconnect semantics: timeouts may have leaked credits while the
           server was unreachable; restart its window from empty and push
           the corrected value past the feedback delay. *)
        t.outstanding.(server) <- 0.;
        Estimate.force t.est server;
        t.credit_resyncs <- t.credit_resyncs + 1
      end);
  (if not t.tracked then t.respond req
   else
     match Hashtbl.find_opt t.entries (Request.id t.pool req) with
     | None -> t.respond req
     | Some e ->
         if e.e_done then t.duplicates_dropped <- t.duplicates_dropped + 1
         else begin
           e.e_done <- true;
           if server = e.e_hedge_server then t.hedge_wins <- t.hedge_wins + 1;
           if e.e_timeout <> no_handle then begin
             Sim.cancel t.sim e.e_timeout;
             e.e_timeout <- no_handle
           end;
           if e.e_hedge <> no_handle then begin
             Sim.cancel t.sim e.e_hedge;
             e.e_hedge <- no_handle
           end;
           t.respond req
         end);
  drain_tor t

let create sim ~pool ~n ~policy ~rng ?(feedback_delay = 0.) ?(feedback_until = 0.) ?detect
    ?hedge ~respond () =
  if n < 1 then invalid_arg "Dispatch: n < 1";
  Policy.validate policy;
  (match detect with
  | None -> ()
  | Some d ->
      Net.Loadgen.validate_retry d.retry;
      Health.validate_config d.health);
  (match hedge with
  | None -> ()
  | Some h ->
      if Float.is_nan h || h <= 0. then invalid_arg "Dispatch: hedge delay <= 0");
  let outstanding = Array.make n 0. in
  let tracked = Option.is_some detect || Option.is_some hedge in
  let t =
    {
      sim;
      rng;
      pool;
      n;
      policy;
      bound = Policy.bound policy;
      rss = Net.Rss.create ~queues:n ();
      outstanding;
      est = Estimate.create sim ~live:outstanding ~delay:feedback_delay ~until:feedback_until ();
      detect;
      health = Option.map (fun (d : detect) -> Health.create ~n d.health) detect;
      hedge_delay = (match hedge with Some h -> h | None -> nan);
      tracked;
      entries = Hashtbl.create (if tracked then 4096 else 1);
      reqs = Hashtbl.create (if tracked then 4096 else 1);
      tor_queue = Engine.Intq.create ();
      forward = (fun _ _ -> invalid_arg "Dispatch: no servers attached");
      respond;
      dispatched = 0;
      per_server = Array.make n 0;
      tor_queued = 0;
      tor_peak = 0;
      no_route_drops = 0;
      failovers = 0;
      failover_exhausted = 0;
      hedges = 0;
      hedge_wins = 0;
      duplicates_dropped = 0;
      credit_resyncs = 0;
      fn_timeout = ignore;
      fn_failover = ignore;
      fn_hedge = ignore;
    }
  in
  t.fn_timeout <- (fun id -> on_timeout t id);
  t.fn_failover <- (fun id -> on_failover t id);
  t.fn_hedge <- (fun id -> on_hedge t id);
  t

let set_forward t forward = t.forward <- forward

let submit t req =
  if t.tracked then Hashtbl.replace t.reqs (Request.id t.pool req) req;
  submit t req

let outstanding_of t i = t.outstanding.(i)

let tor_depth t = Engine.Intq.length t.tor_queue

let estimator t = t.est

let health t = t.health

let info t =
  let base =
    [
      ("rack_dispatched", float_of_int t.dispatched);
      ("rack_tor_queued", float_of_int t.tor_queued);
      ("rack_tor_peak", float_of_int t.tor_peak);
      ("rack_no_route_drops", float_of_int t.no_route_drops);
      ("rack_failovers", float_of_int t.failovers);
      ("rack_failover_exhausted", float_of_int t.failover_exhausted);
      ("rack_hedges", float_of_int t.hedges);
      ("rack_hedge_wins", float_of_int t.hedge_wins);
      ("rack_duplicates_dropped", float_of_int t.duplicates_dropped);
      ("rack_credit_resyncs", float_of_int t.credit_resyncs);
      ("est_refreshes", float_of_int (Estimate.refreshes t.est));
    ]
  in
  let per_server =
    List.init t.n (fun i ->
        (Printf.sprintf "rack_dispatched_s%d" i, float_of_int t.per_server.(i)))
  in
  let health = match t.health with None -> [] | Some h -> Health.info h in
  base @ per_server @ health
