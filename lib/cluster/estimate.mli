(** Stale queue-length estimates: the dispatcher's delayed view of
    per-server outstanding work.

    The ToR tracks each server's outstanding requests exactly (the [live]
    array, owned by the dispatcher), but scheduling policies read a
    {e snapshot} of it that refreshes only every [delay] µs — modelling
    the feedback delay of real queue-length telemetry (piggybacked
    responses, switch counters). With [delay = 0] the snapshot {e is} the
    live array: reads are exact, and no simulator events are scheduled at
    all, so a zero-delay estimator cannot perturb a run. *)

type t

val create :
  Engine.Sim.t -> live:float array -> delay:float -> until:float -> unit -> t
(** [live] is aliased, not copied: the caller keeps mutating it and the
    estimator snapshots it every [delay] µs until sim time [until] (after
    which the view freezes so the simulation can drain). Raises
    [Invalid_argument] on a negative or NaN delay. *)

val read : t -> int -> float
(** Policy-visible estimate for server [i]: stale by up to the feedback
    delay. *)

val exact : t -> int -> float
(** Ground truth ([live.(i)]); used by JBSQ credit gating, never by the
    ranking policies. *)

val force : t -> int -> unit
(** Synchronize server [i]'s visible estimate with the live value now
    (out-of-band correction, e.g. after failure-detection state changes). *)

val refreshes : t -> int
(** Snapshot count so far. *)

val delay : t -> float
