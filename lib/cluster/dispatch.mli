(** The ToR dispatcher: one ingress point routing requests across the
    rack's servers, with optional failure detection, failover, and
    hedging.

    {b Credit accounting.} The dispatcher tracks each server's
    outstanding requests exactly from its own vantage point: +1 at
    dispatch, -1 at response (floored at zero). Timeouts do {e not}
    return credits — a packet lost to a blackhole leaks its credit until
    the health layer declares the server [Down] and a later response
    triggers a resync to zero ([rack_credit_resyncs]). Policies rank
    servers on the {!Estimate} snapshot of this array (stale by the
    feedback delay); only JBSQ's bound check reads it exactly, because
    credits are an explicit ack channel rather than telemetry.

    {b JBSQ.} Under [Policy.Jbsq n], requests that find every healthy
    server at its bound wait in a central FIFO at the ToR and are handed
    out as responses free slots — the bounded single queue of nanoPU.
    Under every other policy a request that finds no routable server is
    dropped ([rack_no_route_drops]); a client retry layer may resend it.

    {b Detection and failover.} With [detect], every primary dispatch
    arms a response timeout ([retry.timeout]). On expiry the dispatcher
    notes the timeout with {!Health} and, while the failover budget
    ([retry.max_retries]) lasts, re-dispatches a copy of the request to a
    different server after the retry policy's jittered backoff. Copies
    share the logical id, arrival, and measured flag, so client-side
    latency spans from the {e first} send; the dispatcher de-duplicates
    so exactly one response per logical request reaches [respond].
    While a server is [Down], one arrival per probe interval is routed to
    it as the liveness probe, bypassing the policy and the JBSQ bound —
    queue-aware policies would never volunteer a down server (its leaked
    credits keep its estimate high), and a dead server's stuck credits
    must not block its own liveness check.

    {b Hedging.} With [hedge] (µs), a request still unanswered after
    that delay is speculatively duplicated to the best other server;
    whichever copy responds first wins ([rack_hedge_wins]). *)

type detect = { retry : Net.Loadgen.retry; health : Health.config }
(** [retry.timeout] is the detection timeout; [retry.max_retries] the
    failover budget; backoff/jitter shape the re-dispatch delay. *)

type t

val create :
  Engine.Sim.t ->
  pool:Net.Request.pool ->
  n:int ->
  policy:Policy.t ->
  rng:Engine.Rng.t ->
  ?feedback_delay:float ->
  ?feedback_until:float ->
  ?detect:detect ->
  ?hedge:float ->
  respond:(Net.Request.t -> unit) ->
  unit ->
  t
(** [rng] must be the dispatcher's own stream: it is drawn from only by
    randomized policies (and never when [n = 1]) and by failover backoff
    jitter. [feedback_delay] (default 0 = exact estimates) and
    [feedback_until] bound the estimator. [respond] receives exactly one
    response per logical request. Servers attach via {!set_forward}. *)

val set_forward : t -> (int -> Net.Request.t -> unit) -> unit
(** [set_forward t f]: dispatching to server [i] calls [f i req]. The
    rack composes crash filters and link fault layers inside [f]. *)

val submit : t -> Net.Request.t -> unit
(** Ingress: route one request. *)

val on_response : t -> server:int -> Net.Request.t -> unit
(** A response from server [i] reached the ToR: return its credit,
    update health, de-duplicate, forward to [respond], and drain the
    JBSQ FIFO into any freed slots. *)

val outstanding_of : t -> int -> float
(** Exact in-flight count the ToR holds for server [i]. *)

val tor_depth : t -> int
(** Current JBSQ central-FIFO depth (0 unless the policy is [Jbsq]). *)

val estimator : t -> Estimate.t

val health : t -> Health.t option
(** [Some] iff created with [detect]. *)

val info : t -> (string * float) list
(** Counters: [rack_dispatched] (+ per-server [rack_dispatched_s<i>]),
    [rack_tor_queued]/[rack_tor_peak], [rack_no_route_drops],
    [rack_failovers]/[rack_failover_exhausted],
    [rack_hedges]/[rack_hedge_wins], [rack_duplicates_dropped],
    [rack_credit_resyncs], [est_refreshes], plus {!Health.info} when
    detection is on. *)
