module Sim = Engine.Sim
module Rng = Engine.Rng
module Request = Net.Request

type config = {
  servers : int;
  policy : Policy.t;
  feedback_delay : float;
  feedback_until : float;
  detect : Dispatch.detect option;
  hedge : float option;
  failplan : Failplan.t;
}

let config ?(feedback_delay = 0.) ?(feedback_until = 0.) ?detect ?hedge
    ?(failplan = Failplan.none) ~servers ~policy () =
  if servers < 1 then invalid_arg "Rack: servers < 1";
  Policy.validate policy;
  if Float.is_nan feedback_delay || feedback_delay < 0. then
    invalid_arg "Rack: feedback_delay < 0";
  Failplan.validate ~servers failplan;
  { servers; policy; feedback_delay; feedback_until; detect; hedge; failplan }

type t = {
  iface : Systems.Iface.t;
  dispatch : Dispatch.t;
  server_ifaces : Systems.Iface.t array;
  lost_requests : int ref;  (* swallowed by a crash window on ingress *)
  lost_responses : int ref;  (* suppressed by a crash window on egress *)
}

(* Build a list strictly left to right: several steps below split RNG
   streams or construct simulator state per server, so evaluation order is
   part of the determinism contract ([Array.init] leaves it unspecified). *)
let init_ordered n f =
  let rec go i acc = if i = n then List.rev acc else go (i + 1) (f i :: acc) in
  go 0 []

(* Sum per-server info lists key-wise, preserving the key order of the
   first list (all servers run the same system model, so the key sets
   match; unseen keys are appended in encounter order). *)
let sum_infos infos =
  match infos with
  | [] -> []
  | first :: _ ->
      let tbl = Hashtbl.create 32 in
      let extra = ref [] in
      List.iter
        (fun info ->
          List.iter
            (fun (k, v) ->
              match Hashtbl.find_opt tbl k with
              | Some acc -> Hashtbl.replace tbl k (acc +. v)
              | None ->
                  Hashtbl.replace tbl k v;
                  if not (List.exists (fun (k0, _) -> String.equal k0 k) first) then
                    extra := k :: !extra)
            info)
        infos;
      List.map (fun (k, _) -> (k, Hashtbl.find tbl k)) first
      @ List.rev_map (fun k -> (k, Hashtbl.find tbl k)) !extra

let create sim cfg ~rng ~pool ~make_server ~respond =
  let n = cfg.servers in
  (* RNG stream discipline: server streams split first, in index order, so
     a 1-server rack consumes exactly the splits a bare system run does
     (loadgen, then system); dispatcher and link streams come after and
     are never drawn from in the degenerate configuration. *)
  let server_rngs = Array.of_list (init_ordered n (fun _ -> Rng.split rng)) in
  let dispatcher_rng = Rng.split rng in
  let dispatch =
    Dispatch.create sim ~pool ~n ~policy:cfg.policy ~rng:dispatcher_rng
      ~feedback_delay:cfg.feedback_delay ~feedback_until:cfg.feedback_until
      ?detect:cfg.detect ?hedge:cfg.hedge ~respond ()
  in
  let lost_requests = ref 0 in
  let lost_responses = ref 0 in
  let crash_windows =
    List.exists
      (function Failplan.Crash _ -> true | Failplan.Blackhole _ | Failplan.Degraded _ -> false)
      cfg.failplan
  in
  (* Egress: a crashed server's responses are lost; everything else goes
     through the dispatcher (credit return, health, dedupe, client). *)
  let egress i (req : Request.t) =
    if crash_windows && Failplan.crashed cfg.failplan ~server:i ~now:(Sim.now sim) then
      incr lost_responses
    else Dispatch.on_response dispatch ~server:i req
  in
  let server_ifaces =
    Array.of_list
      (init_ordered n (fun i -> make_server ~i ~rng:server_rngs.(i) ~respond:(egress i)))
  in
  (* Ingress: crash filter, then the server's link fault layer (its
     blackhole window) when it has one, then the server NIC. Fault-free
     links are composed out entirely so a clean rack adds no layers. *)
  let links = ref [] in
  let forwards =
    Array.of_list
      (init_ordered n (fun i ->
           let submit = server_ifaces.(i).Systems.Iface.submit in
           let deliver =
             match Failplan.link_plan cfg.failplan ~server:i with
             | None -> submit
             | Some plan ->
                 let f = Net.Faults.create sim ~rng:(Rng.split rng) ~plan () in
                 links := f :: !links;
                 fun req -> Net.Faults.apply f req ~deliver:submit
           in
           if crash_windows && Failplan.has_crash cfg.failplan ~server:i then
             fun req ->
               if Failplan.crashed cfg.failplan ~server:i ~now:(Sim.now sim) then
                 incr lost_requests
               else deliver req
           else deliver))
  in
  Dispatch.set_forward dispatch (fun i req -> forwards.(i) req);
  let links = List.rev !links in
  let info () =
    Dispatch.info dispatch
    @ [
        ("rack_servers", float_of_int n);
        ("rack_lost_requests", float_of_int !lost_requests);
        ("rack_lost_responses", float_of_int !lost_responses);
      ]
    @ sum_infos (List.map Net.Faults.info links)
    @ sum_infos
        (Array.to_list (Array.map (fun s -> s.Systems.Iface.info ()) server_ifaces))
  in
  let iface =
    Systems.Iface.
      {
        name = Printf.sprintf "rack%d-%s" n (Policy.name cfg.policy);
        submit = (fun req -> Dispatch.submit dispatch req);
        info;
      }
  in
  { iface; dispatch; server_ifaces; lost_requests; lost_responses }

let iface t = t.iface

let dispatch t = t.dispatch

let server t i = t.server_ifaces.(i)

let lost_requests t = !(t.lost_requests)

let lost_responses t = !(t.lost_responses)
