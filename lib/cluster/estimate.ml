module Sim = Engine.Sim

type t = {
  sim : Sim.t;
  delay : float;
  until : float;
  live : float array;
  visible : float array;  (* == live when delay = 0 *)
  mutable refreshes : int;
  mutable refresh_fn : int -> unit;
}

let create sim ~live ~delay ~until () =
  if Float.is_nan delay || delay < 0. then invalid_arg "Estimate: delay < 0";
  if Float.is_nan until then invalid_arg "Estimate: until is NaN";
  let t =
    {
      sim;
      delay;
      until;
      live;
      visible = (if delay = 0. then live else Array.copy live);
      refreshes = 0;
      refresh_fn = ignore;
    }
  in
  if delay > 0. then begin
    (* Periodic snapshot: the dispatcher sees queue lengths as of the last
       refresh, i.e. stale by up to [delay] µs — the feedback-delay model
       of RackSched's evaluation. The loop stops at [until] (the end of
       request generation) so the simulation can drain and terminate;
       estimates are frozen from then on. *)
    t.refresh_fn <-
      (fun _ ->
        Array.blit t.live 0 t.visible 0 (Array.length t.live);
        t.refreshes <- t.refreshes + 1;
        if Sim.now t.sim +. t.delay <= t.until then
          ignore (Sim.schedule_fn_after t.sim ~delay:t.delay t.refresh_fn 0 : Sim.handle));
    ignore (Sim.schedule_fn_after t.sim ~delay:t.delay t.refresh_fn 0 : Sim.handle)
  end;
  t

let read t i = t.visible.(i)

let exact t i = t.live.(i)

let refreshes t = t.refreshes

let delay t = t.delay

(* Dispatcher-side resync (e.g. on failure-detection recovery): make the
   stale view agree with the corrected live value immediately — the real
   feedback channel a detector uses is fresher than the periodic path. *)
let force t i = if t.delay > 0. then t.visible.(i) <- t.live.(i)
