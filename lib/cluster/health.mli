(** Dispatcher-side failure detection: per-server health driven purely by
    observed timeouts and responses.

    The ToR has no oracle — it infers server health from its own traffic.
    Each response-detection timeout against a server bumps its
    consecutive-timeout count: the first puts it in [Suspect]
    (informational), [suspect_after] of them mark it [Down]. A [Down]
    server stops receiving traffic except for one probe request per
    [probe_interval]; any response from the server (probe or straggler
    backlog) marks it [Up] again and zeroes the count.

    Timeout arming, backoff, and failover re-dispatch live in
    {!Dispatch}; this module is only the state machine and its
    counters. *)

type state = Up | Suspect | Down

type config = {
  suspect_after : int;  (** consecutive timeouts before [Down], >= 1 *)
  probe_interval : float;  (** µs between probe dispatches while [Down] *)
}

val config : ?suspect_after:int -> ?probe_interval:float -> unit -> config
(** Defaults: 3 timeouts to declare a server down, a probe every 500 µs.
    Raises [Invalid_argument] on out-of-range fields. *)

val validate_config : config -> unit

type t

val create : n:int -> config -> t

val state : t -> int -> state

val note_timeout : t -> int -> now:float -> unit
(** A dispatch to server [i] timed out. *)

val note_response : t -> int -> now:float -> unit
(** Server [i] responded: reset its count; [Down -> Up] counts as a
    recovery and accumulates the outage into [health_down_time]. *)

val routable : t -> int -> now:float -> bool
(** May server [i] receive a request at [now]? [Up]/[Suspect]: yes;
    [Down]: only if its probe slot is open. Pure — the dispatcher calls
    {!note_probe} when it actually sends to a [Down] server. *)

val note_probe : t -> int -> now:float -> unit
(** Consume server [i]'s probe slot (no-op unless [Down]). *)

val down_count : t -> int

val info : t -> (string * float) list
(** [health_timeouts], [health_detections], [health_probes],
    [health_recoveries], [health_down] (currently down),
    [health_down_time] (µs, closed outages only). *)
