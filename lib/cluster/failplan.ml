type event =
  | Crash of { server : int; start : float; duration : float }
  | Blackhole of { server : int; start : float; duration : float }
  | Degraded of { server : int; slowdown : float; start : float; duration : float }

type t = event list

let none : t = []

let server_of = function
  | Crash { server; _ } | Blackhole { server; _ } | Degraded { server; _ } -> server

let validate ~servers plan =
  let window what server start duration =
    if server < 0 || server >= servers then
      invalid_arg (Printf.sprintf "Failplan: %s server %d outside rack of %d" what server servers);
    if Float.is_nan start || start < 0. then
      invalid_arg (Printf.sprintf "Failplan: %s start < 0" what);
    if Float.is_nan duration || duration <= 0. then
      invalid_arg (Printf.sprintf "Failplan: %s duration <= 0" what)
  in
  List.iter
    (function
      | Crash { server; start; duration } -> window "crash" server start duration
      | Blackhole { server; start; duration } -> window "blackhole" server start duration
      | Degraded { server; slowdown; start; duration } ->
          window "degraded" server start duration;
          if Float.is_nan slowdown || slowdown < 1. then
            invalid_arg "Failplan: degraded slowdown < 1")
    plan;
  (* One blackhole window per server: the per-link fault plan carries a
     single partition window (Net.Faults), so a second one would be
     silently ignored. *)
  let rec dup_blackhole seen = function
    | [] -> ()
    | Blackhole { server; _ } :: rest ->
        if List.mem server seen then
          invalid_arg
            (Printf.sprintf "Failplan: multiple blackhole windows for server %d" server);
        dup_blackhole (server :: seen) rest
    | (Crash _ | Degraded _) :: rest -> dup_blackhole seen rest
  in
  dup_blackhole [] plan

(* Is [server] inside one of its crash windows at [now]? O(plan length);
   plans are a handful of events, and the dispatcher caches nothing so a
   window opening mid-run needs no extra machinery. *)
let crashed plan ~server ~now =
  List.exists
    (function
      | Crash { server = s; start; duration } ->
          s = server && now >= start && now < start +. duration
      | Blackhole _ | Degraded _ -> false)
    plan

let has_crash plan ~server =
  List.exists
    (function Crash { server = s; _ } -> s = server | Blackhole _ | Degraded _ -> false)
    plan

(* Link-level fault plan for [server]'s ingress path: the blackhole window
   becomes a Net.Faults partition. [None] when the server has no
   blackhole, so fault-free links are composed out entirely. *)
let link_plan plan ~server =
  List.find_map
    (function
      | Blackhole { server = s; start; duration } when s = server ->
          Some (Net.Faults.plan ~blackhole:(start, start +. duration) ())
      | Blackhole _ | Crash _ | Degraded _ -> None)
    plan

(* Straggler specs for [server]'s intra-server params: a degraded server
   runs every one of its cores [slowdown]x slower inside the window —
   the rack-level fault intra-server work stealing cannot absorb. *)
let stragglers plan ~server ~cores =
  List.concat_map
    (function
      | Degraded { server = s; slowdown; start; duration } when s = server ->
          List.init cores (fun core -> Core.Corefault.{ core; start; duration; slowdown })
      | Degraded _ | Crash _ | Blackhole _ -> [])
    plan
