(** Scripted per-server failure plans for the rack tier.

    A plan is a list of failure events, each pinned to one server and a
    sim-time window — the rack-scale counterpart of
    {!Core.Corefault.spec}. Three kinds:

    - [Crash]: the server is absent during the window. Requests forwarded
      to it are lost on arrival, and responses it would emit during the
      window are lost too (the model keeps simulating the server's
      internals, so on recovery its backlog drains — a hung process, not
      a reboot).
    - [Blackhole]: an ingress partition. The ToR→server link swallows
      requests during the window (implemented as the {!Net.Faults}
      partition fault, with its own counter); work already inside the
      server completes and its responses still return. At most one
      blackhole window per server.
    - [Degraded]: every core of the server runs [slowdown]x slower during
      the window — the rack-scale straggler that intra-server work
      stealing cannot route around, applied through the existing
      {!Core.Corefault} machinery.

    An empty plan composes to nothing: no link fault layers, no straggler
    specs, no crash checks that could perturb a clean run. *)

type event =
  | Crash of { server : int; start : float; duration : float }
  | Blackhole of { server : int; start : float; duration : float }
  | Degraded of { server : int; slowdown : float; start : float; duration : float }

type t = event list

val none : t

val validate : servers:int -> t -> unit
(** Raises [Invalid_argument] on out-of-range servers, empty/negative
    windows, slowdown < 1, or multiple blackhole windows for one
    server. *)

val server_of : event -> int

val crashed : t -> server:int -> now:float -> bool
(** Is the server inside a crash window at [now]? *)

val has_crash : t -> server:int -> bool

val link_plan : t -> server:int -> Net.Faults.plan option
(** The server's ingress-link fault plan (its blackhole window), or
    [None] so fault-free links are not composed at all. *)

val stragglers : t -> server:int -> cores:int -> Core.Corefault.spec list
(** Straggler specs implementing the server's [Degraded] windows across
    all [cores] of that server (empty when none). *)
