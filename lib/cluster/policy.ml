type t =
  | Static_hash
  | Random
  | Po2
  | Jsq
  | Jbsq of int

let name = function
  | Static_hash -> "hash"
  | Random -> "random"
  | Po2 -> "po2"
  | Jsq -> "jsq"
  | Jbsq n -> Printf.sprintf "jbsq-%d" n

let validate = function
  | Jbsq n when n < 1 -> invalid_arg "Policy: Jbsq bound < 1"
  | Static_hash | Random | Po2 | Jsq | Jbsq _ -> ()

let bound = function Jbsq n -> n | Static_hash | Random | Po2 | Jsq -> max_int

let queue_aware = function
  | Static_hash | Random -> false
  | Po2 | Jsq | Jbsq _ -> true

(* Index of the [j]-th (0-based) routable server. The caller guarantees
   there are more than [j]; scanning is O(n) with n = rack size (single
   digits), so no precomputed set is kept. *)
let nth_routable ~routable ~n j =
  let rec go i remaining =
    if i >= n then invalid_arg "Policy: routable count changed underfoot"
    else if routable i then if remaining = 0 then i else go (i + 1) (remaining - 1)
    else go (i + 1) remaining
  in
  go 0 j

let count_routable ~routable ~n =
  let k = ref 0 in
  for i = 0 to n - 1 do
    if routable i then incr k
  done;
  !k

(* Lowest-index routable server with the smallest estimate. *)
let argmin_estimate ~estimate ~routable ~n =
  let best = ref (-1) in
  let best_e = ref infinity in
  for i = 0 to n - 1 do
    if routable i then begin
      let e = estimate i in
      if !best < 0 || e < !best_e then begin
        best := i;
        best_e := e
      end
    end
  done;
  !best

let choose t ~rss ~rng ~estimate ~routable ~n ~conn =
  if n = 1 then if routable 0 then 0 else -1
  else
    match t with
    | Static_hash ->
        (* Flow-consistent: the ToR applies the same Toeplitz/indirection
           hashing a NIC would, over the rack instead of over queues. A
           down home server falls through to the next index (rehash by
           linear probing) so hashing can still fail over when the caller
           masks servers out. *)
        let home = Net.Rss.queue_of_conn rss conn in
        let rec probe k =
          if k >= n then -1
          else
            let i = (home + k) mod n in
            if routable i then i else probe (k + 1)
        in
        probe 0
    | Random ->
        let k = count_routable ~routable ~n in
        if k = 0 then -1 else nth_routable ~routable ~n (Engine.Rng.int rng k)
    | Po2 ->
        let k = count_routable ~routable ~n in
        if k = 0 then -1
        else if k = 1 then nth_routable ~routable ~n 0
        else begin
          (* Two distinct candidates (sampling without replacement), then
             the shorter estimated queue; ties go to the first draw. *)
          let a = Engine.Rng.int rng k in
          let b =
            let b = Engine.Rng.int rng (k - 1) in
            if b >= a then b + 1 else b
          in
          let ia = nth_routable ~routable ~n a in
          let ib = nth_routable ~routable ~n b in
          if estimate ib < estimate ia then ib else ia
        end
    | Jsq | Jbsq _ -> argmin_estimate ~estimate ~routable ~n
