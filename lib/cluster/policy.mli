(** Inter-server dispatch policies for the rack tier (RackSched's design
    space, arxiv 2010.05969).

    The ToR dispatcher picks a server for every incoming request using one
    of five policies:

    - {!Static_hash} — RSS-style flow-consistent hashing: the Toeplitz
      hash of the connection picks the server, exactly as a NIC picks a
      receive queue. Oblivious to load; the baseline that two-level
      scheduling must beat.
    - {!Random} — uniformly random among routable servers.
    - {!Po2} — power-of-two-choices: sample two distinct servers, send to
      the one with the shorter {e estimated} queue.
    - {!Jsq} — join-shortest-queue over the estimates.
    - {!Jbsq} [n] — bounded single queue (nanoPU's JBSQ(n), arxiv
      2010.12114): at most [n] requests outstanding per server, the rest
      held in a central FIFO at the ToR and handed out as responses free
      slots. The dispatcher enforces the bound with exact credit
      accounting; the {e ranking} among non-full servers still uses the
      (possibly stale) estimates.

    Queue estimates are supplied by {!Estimate} and go stale with the
    configured feedback delay; the policies never see ground truth unless
    the delay is zero. *)

type t =
  | Static_hash
  | Random
  | Po2
  | Jsq
  | Jbsq of int  (** bound on outstanding requests per server, >= 1 *)

val name : t -> string
(** ["hash"], ["random"], ["po2"], ["jsq"], ["jbsq-<n>"]. *)

val validate : t -> unit
(** Raises [Invalid_argument] on [Jbsq n] with [n < 1]. *)

val bound : t -> int
(** Per-server outstanding bound: [n] for [Jbsq n], [max_int] otherwise. *)

val queue_aware : t -> bool
(** Does the policy consult queue estimates at all? *)

val choose :
  t ->
  rss:Net.Rss.t ->
  rng:Engine.Rng.t ->
  estimate:(int -> float) ->
  routable:(int -> bool) ->
  n:int ->
  conn:int ->
  int
(** Pick a server in [0, n) for a request on [conn], or [-1] when no
    server is routable. [estimate i] is the dispatcher-visible queue
    estimate of server [i]; [routable i] masks out servers the health
    layer considers down (and, under JBSQ, servers at their bound). [rss]
    must have been created with [~queues:n]. Randomized policies draw only
    from [rng], and only when [n > 1] and more than one server is
    routable, so a 1-server rack consumes no draws whatever the policy —
    the degeneracy the cluster tests pin down. *)
