(** The rack tier: N independent server instances behind one ToR
    dispatcher — the two-level scheduling composition (inter-server
    policy over intra-server systems) of RackSched, built from this
    repository's existing single-server models unchanged.

    The rack presents itself as a single {!Systems.Iface.t}, so the load
    generator and the sweep machinery treat it exactly like one big
    server. Inside, each request passes:

    + the {!Dispatch} policy layer (server choice, JBSQ credits,
      detection timers, hedging);
    + the server's crash filter: requests arriving inside a
      [Failplan.Crash] window are lost ([rack_lost_requests]);
    + the server's ingress link, which carries its [Failplan.Blackhole]
      window as a {!Net.Faults} partition (composed out entirely for
      servers with no blackhole);
    + the server system itself (any [make_server] — Linux, IX, ZygOS),
      whose [Failplan.Degraded] windows the caller applies as
      {!Core.Corefault} stragglers when building it.

    Responses flow back through the crash filter (suppressed inside a
    window: [rack_lost_responses]) into {!Dispatch.on_response}.

    {b Determinism.} [create] splits the caller's [rng] in a fixed
    order — one stream per server (index order), then the dispatcher's,
    then one per faulted link — so a 1-server rack with a zero failure
    plan consumes exactly the splits a bare single-server run does and
    reproduces it byte for byte (the degeneracy pinned by
    [test_cluster]). *)

type config = {
  servers : int;
  policy : Policy.t;
  feedback_delay : float;  (** estimate staleness (µs); 0 = exact *)
  feedback_until : float;  (** last sim time estimates refresh *)
  detect : Dispatch.detect option;
  hedge : float option;
  failplan : Failplan.t;
}

val config :
  ?feedback_delay:float ->
  ?feedback_until:float ->
  ?detect:Dispatch.detect ->
  ?hedge:float ->
  ?failplan:Failplan.t ->
  servers:int ->
  policy:Policy.t ->
  unit ->
  config
(** Validates everything ([servers >= 1], the policy, the failure plan);
    raises [Invalid_argument] otherwise. *)

type t

val create :
  Engine.Sim.t ->
  config ->
  rng:Engine.Rng.t ->
  pool:Net.Request.pool ->
  make_server:
    (i:int -> rng:Engine.Rng.t -> respond:(Net.Request.t -> unit) -> Systems.Iface.t) ->
  respond:(Net.Request.t -> unit) ->
  t
(** [make_server ~i ~rng ~respond] builds server [i]'s system instance;
    it must route every completed request to [respond] (the rack's
    egress for that server) and draw randomness only from [rng]. The
    rack's [respond] receives exactly one response per logical request
    (the dispatcher de-duplicates failover/hedge copies). *)

val iface : t -> Systems.Iface.t
(** The rack as a single server: [submit] dispatches, [info] merges the
    dispatcher's counters, rack-level loss counters ([rack_servers],
    [rack_lost_requests], [rack_lost_responses]), summed link-fault
    counters, and the key-wise sum of all per-server system counters. *)

val dispatch : t -> Dispatch.t

val server : t -> int -> Systems.Iface.t

val lost_requests : t -> int

val lost_responses : t -> int
