type state = Up | Suspect | Down

type config = { suspect_after : int; probe_interval : float }

let validate_config c =
  if c.suspect_after < 1 then invalid_arg "Health: suspect_after < 1";
  if Float.is_nan c.probe_interval || c.probe_interval <= 0. then
    invalid_arg "Health: probe_interval <= 0"

let config ?(suspect_after = 3) ?(probe_interval = 500.) () =
  let c = { suspect_after; probe_interval } in
  validate_config c;
  c

type server = {
  mutable state : state;
  mutable consecutive_timeouts : int;
  mutable last_probe : float;  (* sim time of the last probe admitted while Down *)
  mutable down_since : float;
}

type t = {
  cfg : config;
  servers : server array;
  mutable timeouts : int;
  mutable detections : int;
  mutable probes : int;
  mutable recoveries : int;
  mutable down_time : float;  (* accumulated across servers *)
}

let create ~n cfg =
  validate_config cfg;
  if n < 1 then invalid_arg "Health: n < 1";
  {
    cfg;
    servers =
      Array.init n (fun _ ->
          { state = Up; consecutive_timeouts = 0; last_probe = neg_infinity;
            down_since = nan });
    timeouts = 0;
    detections = 0;
    probes = 0;
    recoveries = 0;
    down_time = 0.;
  }

let state t i = t.servers.(i).state

let note_timeout t i ~now =
  let s = t.servers.(i) in
  t.timeouts <- t.timeouts + 1;
  s.consecutive_timeouts <- s.consecutive_timeouts + 1;
  match s.state with
  | Down -> ()
  | Up | Suspect ->
      if s.consecutive_timeouts >= t.cfg.suspect_after then begin
        s.state <- Down;
        s.down_since <- now;
        (* The next probe waits a full interval: the timeouts that led
           here already count as the failed probe. *)
        s.last_probe <- now;
        t.detections <- t.detections + 1
      end
      else s.state <- Suspect

let note_response t i ~now =
  let s = t.servers.(i) in
  s.consecutive_timeouts <- 0;
  match s.state with
  | Up -> ()
  | Suspect -> s.state <- Up
  | Down ->
      s.state <- Up;
      t.recoveries <- t.recoveries + 1;
      t.down_time <- t.down_time +. (now -. s.down_since);
      s.down_since <- nan

(* May server [i] receive a request at [now]? Up/Suspect always; Down only
   as a probe, one per probe interval. Pure: policies scan servers several
   times while choosing, so the probe slot is only consumed when the
   dispatcher actually sends ({!note_probe}). *)
let routable t i ~now =
  let s = t.servers.(i) in
  match s.state with
  | Up | Suspect -> true
  | Down -> now -. s.last_probe >= t.cfg.probe_interval

(* The dispatcher picked a Down server: that dispatch is the probe. *)
let note_probe t i ~now =
  let s = t.servers.(i) in
  match s.state with
  | Up | Suspect -> ()
  | Down ->
      s.last_probe <- now;
      t.probes <- t.probes + 1

let down_count t =
  Array.fold_left
    (fun acc s -> match s.state with Down -> acc + 1 | Up | Suspect -> acc)
    0 t.servers

let info t =
  [
    ("health_timeouts", float_of_int t.timeouts);
    ("health_detections", float_of_int t.detections);
    ("health_probes", float_of_int t.probes);
    ("health_recoveries", float_of_int t.recoveries);
    ("health_down", float_of_int (down_count t));
    ("health_down_time", t.down_time);
  ]
