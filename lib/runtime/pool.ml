(* Fixed-size domain pool with per-worker deques and work stealing.

   Tasks are coarse (whole simulation points, micro- to milliseconds of
   work each), so plain mutex-protected deques are far below the noise
   floor; the discipline — owner pops the front of its own queue, idle
   workers steal from the back of a victim's queue, scanning the other
   workers round-robin from themselves — is the same shuffle-queue shape
   the simulated scheduler uses. Determinism is the caller's concern:
   tasks must be independent (results are stored by index, so the output
   order never depends on the steal order). *)

type stats = {
  workers : int;
  points : int;
  steals : int;
  busy_s : float array;
  run_counts : int array;
  wall_s : float;
}

let sequential_stats ~points ~busy ~wall =
  {
    workers = 1;
    points;
    steals = 0;
    busy_s = [| busy |];
    run_counts = [| points |];
    wall_s = wall;
  }

let recommended_workers () = Domain.recommended_domain_count ()

(* One worker's slice of the task indices: [items.(head .. tail-1)] are
   still runnable. The owner takes from [head], thieves from [tail-1]. *)
type deque = {
  items : int array;
  mutable head : int
      [@zygos.owned
        "lock-protected: written only by pop_own/pop_steal under [lock]; \
         initialisation happens-before every worker via Domain.spawn"];
  mutable tail : int
      [@zygos.owned
        "lock-protected: written only by pop_own/pop_steal under [lock]; \
         initialisation happens-before every worker via Domain.spawn"];
  lock : Mutex.t;
}

let pop_own dq =
  Mutex.lock dq.lock;
  let r =
    if dq.head < dq.tail then begin
      let i = dq.items.(dq.head) in
      dq.head <- dq.head + 1;
      Some i
    end
    else None
  in
  Mutex.unlock dq.lock;
  r

let pop_steal dq =
  Mutex.lock dq.lock;
  let r =
    if dq.head < dq.tail then begin
      let i = dq.items.(dq.tail - 1) in
      dq.tail <- dq.tail - 1;
      Some i
    end
    else None
  in
  Mutex.unlock dq.lock;
  r

let run_sequential tasks =
  let n = Array.length tasks in
  let t0 = Unix.gettimeofday () in
  let results = Array.map (fun task -> task ()) tasks in
  let dt = Unix.gettimeofday () -. t0 in
  (results, sequential_stats ~points:n ~busy:dt ~wall:dt)

let run ~workers ~tasks =
  let n = Array.length tasks in
  if workers < 1 then invalid_arg "Pool.run: workers < 1";
  if workers = 1 || n <= 1 then run_sequential tasks
  else begin
    let workers = min workers n in
    (* Static round-robin partition; stealing rebalances at runtime. *)
    let owned w =
      let count = ((n - 1 - w) / workers) + 1 in
      Array.init count (fun k -> w + (k * workers))
    in
    let deques =
      Array.init workers (fun w ->
          let items = owned w in
          { items; head = 0; tail = Array.length items; lock = Mutex.create () })
    in
    let results = Array.make n None in
    let failure = Atomic.make None in
    let steals = Array.make workers 0 in
    let busy = Array.make workers 0. in
    let runs = Array.make workers 0 in
    let exec w i =
      let t0 = Unix.gettimeofday () in
      (match tasks.(i) () with
      | v -> results.(i) <- Some v
      | exception e ->
          (* Keep the first failure; the others still drain their work. *)
          ignore (Atomic.compare_and_set failure None (Some e) : bool));
      busy.(w) <- busy.(w) +. (Unix.gettimeofday () -. t0);
      runs.(w) <- runs.(w) + 1
    in
    let worker w =
      let rec own () =
        match pop_own deques.(w) with
        | Some i ->
            exec w i;
            own ()
        | None -> steal 1
      and steal k =
        if k < workers then
          match pop_steal deques.((w + k) mod workers) with
          | Some i ->
              steals.(w) <- steals.(w) + 1;
              exec w i;
              own ()
          | None -> steal (k + 1)
      in
      own ()
    in
    let t0 = Unix.gettimeofday () in
    let domains = List.init (workers - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1))) in
    worker 0;
    List.iter Domain.join domains;
    let wall = Unix.gettimeofday () -. t0 in
    (match Atomic.get failure with Some e -> raise e | None -> ());
    let results =
      Array.map (function Some v -> v | None -> assert false) results
    in
    ( results,
      {
        workers;
        points = n;
        steals = Array.fold_left ( + ) 0 steals;
        busy_s = busy;
        run_counts = runs;
        wall_s = wall;
      } )
  end
