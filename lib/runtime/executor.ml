module Sched = Core.Sched.Mt_sched

type task = unit -> unit

type state = Created | Running | Stopped

type t = {
  sched : task Sched.t;
  pcbs : task Sched.pcb array;
  cores : int;
  seed : int;
  submitted : int Atomic.t;
  executed : int Atomic.t;
  stop_flag : bool Atomic.t;
  mutable domains : unit Domain.t list
      [@zygos.owned "lock-protected: read/written only by start/stop under [state_lock]"];
  mutable state : state
      [@zygos.owned "lock-protected: read/written only by start/stop under [state_lock]"];
  state_lock : Mutex.t;
}

let create ?(seed = 17) ~cores ~conns () =
  if cores < 1 then invalid_arg "Executor.create: cores < 1";
  if conns < 1 then invalid_arg "Executor.create: conns < 1";
  let sched = Sched.create ~cores in
  let pcbs = Array.init conns (fun c -> Sched.register sched ~conn:c ~home:(c mod cores)) in
  {
    sched;
    pcbs;
    cores;
    seed;
    submitted = Atomic.make 0;
    executed = Atomic.make 0;
    stop_flag = Atomic.make false;
    domains = [];
    state = Created;
    state_lock = Mutex.create ();
  }

let run_batch t batch =
  List.iter
    (fun task ->
      task ();
      ignore (Atomic.fetch_and_add t.executed 1 : int))
    batch

let worker t ~core =
  let rng = Engine.Rng.create ~seed:(t.seed + (1000 * core)) in
  let policy = Core.Steal_policy.create ~rng ~cores:t.cores ~self:core in
  let rec loop idle_spins =
    let order = Core.Steal_policy.victim_order policy in
    match Sched.next t.sched ~core ~steal_order:order with
    | Some (pcb, batch, _source) ->
        run_batch t batch;
        Sched.complete t.sched pcb;
        loop 0
    | None ->
        if Atomic.get t.stop_flag && Atomic.get t.executed = Atomic.get t.submitted then ()
        else begin
          (* Idle loop: burn a few polls, then yield the processor so this
             works on machines with fewer cores than workers. *)
          if idle_spins > 64 then Domain.cpu_relax ();
          if idle_spins > 1024 then Unix.sleepf 0.0001;
          loop (idle_spins + 1)
        end
  in
  loop 0

let start t =
  Mutex.lock t.state_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.state_lock) @@ fun () ->
  if t.state <> Created then invalid_arg "Executor.start: already started";
  t.state <- Running;
  t.domains <- List.init t.cores (fun core -> Domain.spawn (fun () -> worker t ~core))

let submit t ~conn task =
  if Atomic.get t.stop_flag then invalid_arg "Executor.submit: executor stopped";
  if conn < 0 || conn >= Array.length t.pcbs then invalid_arg "Executor.submit: conn out of range";
  ignore (Atomic.fetch_and_add t.submitted 1 : int);
  Sched.deliver t.sched t.pcbs.(conn) task

let drain t =
  while Atomic.get t.executed < Atomic.get t.submitted do
    Unix.sleepf 0.0001
  done

let stop t =
  Mutex.lock t.state_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.state_lock) @@ fun () ->
  match t.state with
  | Stopped | Created -> t.state <- Stopped
  | Running ->
      drain t;
      Atomic.set t.stop_flag true;
      List.iter Domain.join t.domains;
      t.domains <- [];
      t.state <- Stopped

type stats = {
  submitted : int;
  executed : int;
  local_batches : int;
  stolen_batches : int;
  steal_fraction : float;
}

let stats t =
  let c = Sched.total_counters t.sched in
  {
    submitted = Atomic.get t.submitted;
    executed = Atomic.get t.executed;
    local_batches = c.Sched.local_dispatches;
    stolen_batches = c.Sched.steal_dispatches;
    steal_fraction = Sched.steal_fraction t.sched;
  }
