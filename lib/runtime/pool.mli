(** Fixed-size OCaml 5 domain pool for independent coarse-grained tasks.

    The pool applies the repo's own scheduling argument to its harness:
    tasks start statically partitioned round-robin across per-worker
    deques, the owner pops from the front, and an idle worker scans the
    other deques round-robin and steals from the back — work conservation
    without a central lock. Results are stored by task index, so the
    output array (and anything rendered from it) is independent of the
    steal order and of the worker count.

    Tasks must be independent: they run concurrently on separate domains
    and must not share mutable state. With [workers = 1] (or fewer than
    two tasks) everything runs in the calling domain and no domain is
    spawned — the graceful single-CPU fallback. *)

type stats = {
  workers : int;  (** workers actually used (<= requested) *)
  points : int;  (** tasks executed *)
  steals : int;  (** tasks run by a worker that did not own them *)
  busy_s : float array;  (** per-worker seconds spent inside tasks *)
  run_counts : int array;  (** per-worker tasks run *)
  wall_s : float;  (** wall-clock seconds for the whole batch *)
}

val recommended_workers : unit -> int
(** [Domain.recommended_domain_count ()] — 1 on single-CPU hosts. *)

val run : workers:int -> tasks:(unit -> 'a) array -> 'a array * stats
(** [run ~workers ~tasks] executes every task exactly once and returns
    the results in task order. If any task raises, the remaining tasks
    still run and the first exception is re-raised after the join.
    Raises [Invalid_argument] if [workers < 1]. *)
