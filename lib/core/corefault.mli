(** Deterministic straggler / antagonist injection for worker cores.

    RackSched-style fault model: a core is slowed by a constant factor (or
    fully stalled) during a scheduled time window — an antagonist sharing
    the hyperthread, a power-management excursion, an interrupt storm. The
    same spec list is applied uniformly to the Linux, IX and ZygOS models
    so the degradation experiments compare schedulers, not fault models.

    The model is a piecewise-constant speed function per core: speed 1
    outside every window, [1 / slowdown] inside ([slowdown = infinity]
    stalls the core completely). {!completion_time} integrates work across
    that function exactly; with no window overlapping the execution it
    returns [now +. work] with bit-identical float arithmetic, so an empty
    spec list cannot perturb a fault-free simulation. *)

type spec = {
  core : int;  (** worker core index the fault applies to *)
  start : float;  (** window start (sim µs) *)
  duration : float;  (** window length (µs) *)
  slowdown : float;
      (** execution-time multiplier inside the window; >= 1, [infinity]
          for a full stall *)
}

val validate_spec : spec -> unit
(** Raises [Invalid_argument] on a negative core/start/duration or a
    slowdown < 1 (NaNs rejected too). *)

type t

val none : t
(** No faults: {!completion_time} is exactly [now +. work]. *)

val create : spec list -> t
(** Windows of one core may not overlap each other (raises
    [Invalid_argument]); windows of different cores are independent. *)

val is_none : t -> bool
(** [true] iff no spec mentions any core. *)

val completion_time : t -> core:int -> now:float -> work:float -> float
(** Absolute sim time at which [work] µs of nominal execution finishes
    when started at [now] on [core]. Requires [work >= 0]. *)

val stalled : t -> core:int -> now:float -> bool
(** Is the core inside a full-stall ([slowdown = infinity]) window at
    [now]? Used by polling loops that would otherwise busy-spin through a
    stall. *)
