type spec = { core : int; start : float; duration : float; slowdown : float }

let validate_spec s =
  let bad msg = invalid_arg (Printf.sprintf "Corefault: %s" msg) in
  if s.core < 0 then bad "core < 0";
  if Float.is_nan s.start || s.start < 0. then bad "start < 0";
  if Float.is_nan s.duration || s.duration < 0. then bad "duration < 0";
  if Float.is_nan s.slowdown || s.slowdown < 1. then bad "slowdown < 1"

(* Per-core windows, sorted by start, non-overlapping. *)
type t = { windows : spec array array }

let none = { windows = [||] }

let is_none t = Array.length t.windows = 0

let create specs =
  List.iter validate_spec specs;
  match specs with
  | [] -> none
  | _ ->
      let max_core = List.fold_left (fun acc s -> max acc s.core) 0 specs in
      let per_core = Array.make (max_core + 1) [] in
      List.iter (fun s -> per_core.(s.core) <- s :: per_core.(s.core)) specs;
      let windows =
        Array.map
          (fun ws ->
            let a = Array.of_list ws in
            Array.sort (fun x y -> compare x.start y.start) a;
            Array.iteri
              (fun i w ->
                if i > 0 && a.(i - 1).start +. a.(i - 1).duration > w.start then
                  invalid_arg "Corefault.create: overlapping windows on one core")
              a;
            a)
          per_core
      in
      { windows }

let[@zygos.hot] windows_of t core =
  if core < Array.length t.windows then t.windows.(core) else [||]

let[@zygos.hot] completion_time t ~core ~now ~work =
  if work < 0. then invalid_arg "Corefault.completion_time: work < 0";
  let ws = windows_of t core in
  if Array.length ws = 0 then now +. work
  else begin
    let cur = ref now and remaining = ref work and finished = ref nan in
    let i = ref 0 in
    while Float.is_nan !finished && !i < Array.length ws do
      let w = ws.(!i) in
      let w_end = w.start +. w.duration in
      if w_end <= !cur then incr i
      else begin
        (* Full-speed stretch before the window (if any). *)
        if w.start > !cur then begin
          let free = w.start -. !cur in
          if !remaining <= free then finished := !cur +. !remaining
          else begin
            remaining := !remaining -. free;
            cur := w.start
          end
        end;
        if Float.is_nan !finished then begin
          (* Inside the window: work proceeds at 1/slowdown. *)
          if w.slowdown = infinity then cur := w_end
          else begin
            let capacity = (w_end -. !cur) /. w.slowdown in
            if !remaining <= capacity then finished := !cur +. (!remaining *. w.slowdown)
            else begin
              remaining := !remaining -. capacity;
              cur := w_end
            end
          end;
          incr i
        end
      end
    done;
    if Float.is_nan !finished then !cur +. !remaining else !finished
  end

let stalled t ~core ~now =
  Array.exists
    (fun w -> w.slowdown = infinity && w.start <= now && now < w.start +. w.duration)
    (windows_of t core)
