(** Multiple-producer / single-consumer queue for remote batched system
    calls (§4.2 step (b)).

    When a remote core finishes executing a stolen batch, the system calls
    the application issued (TCP sends, mainly) must run back on the
    connection's home core, where its TCP output path lives coherence-free.
    Remote cores push completed batches here; the home core drains the
    queue either in its main loop or from the IPI handler. *)

module Make (_ : Platform.LOCK) : sig
  type 'a t

  val create : unit -> 'a t

  val push : 'a t -> 'a -> unit
  (** Producer side (any core). *)

  val drain : 'a t -> 'a list
  (** Consumer side (home core only): take everything, FIFO order. *)

  val length : 'a t -> int

  val is_empty : 'a t -> bool

  val pushed_total : 'a t -> int
  (** Total elements ever pushed (for statistics). *)
end
