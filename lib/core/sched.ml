module type S = sig
  type lock

  type source = Local | Stolen of int

  type state = Idle | Ready | Busy

  type 'ev pcb

  type 'ev t

  val create : cores:int -> 'ev t

  val cores : 'ev t -> int

  val register : 'ev t -> conn:int -> home:int -> 'ev pcb

  val conn : 'ev pcb -> int

  val home : 'ev pcb -> int

  val state : 'ev pcb -> state

  val pending_events : 'ev pcb -> int

  val deliver : 'ev t -> 'ev pcb -> 'ev -> unit

  val next : 'ev t -> core:int -> steal_order:int array -> ('ev pcb * 'ev list * source) option

  val next_local : 'ev t -> core:int -> ('ev pcb * 'ev list * source) option

  val poll : 'ev t -> core:int -> steal_order:int array -> bool

  val poll_local : 'ev t -> core:int -> bool

  val batch_pcb : 'ev t -> core:int -> 'ev pcb

  val batch_size : 'ev t -> core:int -> int

  val batch_event : 'ev t -> core:int -> int -> 'ev

  val batch_stolen_from : 'ev t -> core:int -> int

  val complete : 'ev t -> 'ev pcb -> unit

  val queue_length : 'ev t -> core:int -> int

  val has_ready : 'ev t -> bool

  type counters = {
    local_dispatches : int;
    steal_dispatches : int;
    local_events : int;
    stolen_events : int;
  }

  val counters : 'ev t -> core:int -> counters

  val total_counters : 'ev t -> counters

  val steal_fraction : 'ev t -> float
end

(* Growable circular buffer, the flat replacement for the [Queue.t]s
   that used to back PCB event queues and per-core shuffle queues: a
   [Queue] allocates a 3-word cell per [add], i.e. one minor alloc per
   delivered event. The backing array is created lazily from the first
   pushed element (no dummy value exists for a polymorphic payload) and
   doubles on overflow. [pop] requires a non-empty buffer — callers
   check [len] — so no [option] is allocated either. *)
module Cq = struct
  type 'a t = { mutable buf : 'a array; mutable head : int; mutable len : int }

  let create () = { buf = [||]; head = 0; len = 0 }

  let[@zygos.hot] length q = q.len

  let[@zygos.hot] is_empty q = q.len = 0

  let[@zygos.hot] grow q x =
    let cap = Array.length q.buf in
    (* amortized doubling: O(log n) growths over a run, zero steady-state *)
    if cap = 0 then q.buf <- (Array.make 8 x [@zygos.allow "hot-alloc"])
    else begin
      let buf = (Array.make (2 * cap) x [@zygos.allow "hot-alloc"]) in
      let first = cap - q.head in
      Array.blit q.buf q.head buf 0 (min q.len first);
      if q.len > first then Array.blit q.buf 0 buf first (q.len - first);
      q.buf <- buf;
      q.head <- 0
    end

  let[@zygos.hot] push q x =
    if q.len = Array.length q.buf then grow q x;
    let cap = Array.length q.buf in
    let tail = q.head + q.len in
    let tail = if tail >= cap then tail - cap else tail in
    Array.unsafe_set q.buf tail x;
    q.len <- q.len + 1

  (* Precondition: not empty. The popped slot keeps its reference until
     overwritten; payloads here are immediates (request handles) or
     long-lived PCBs, so nothing is kept alive spuriously. *)
  let[@zygos.hot] pop q =
    let x = Array.unsafe_get q.buf q.head in
    let head = q.head + 1 in
    q.head <- (if head = Array.length q.buf then 0 else head);
    q.len <- q.len - 1;
    x
end

module Make (L : Platform.LOCK) : S with type lock = L.t = struct
  type lock = L.t

  type source = Local | Stolen of int

  type state = Idle | Ready | Busy

  type 'ev pcb = {
    conn_id : int;
    home_core : int;
    plock : L.t;  (* guards [events] and [pcb_state] *)
    events : 'ev Cq.t;
    mutable pcb_state : state;
  }

  type 'ev core_state = {
    qlock : L.t;  (* guards [shuffle]; §5's one spinlock per core *)
    shuffle : 'ev pcb Cq.t;
    (* Scratch for the zero-alloc dispatch API: [poll] claims a batch
       into [batch]/[batch_n] and parks the PCB in [cur] (a 1-slot array
       instead of an option, the engine's tbuf idiom). Valid until the
       core's next [poll]. *)
    mutable batch : 'ev array;
    mutable batch_n : int;
    mutable cur : 'ev pcb array;  (* [||] until the first dispatch *)
    mutable cur_src : int;  (* victim core, or -1 for a local dispatch *)
    mutable local_dispatches : int;
    mutable steal_dispatches : int;
    mutable local_events : int;
    mutable stolen_events : int;
  }

  (* [ready] counts PCBs sitting in shuffle queues, maintained inside the
     per-queue critical sections. A zero lets [poll] skip the all-cores
     scan entirely — the common case for an idle machine, where every
     fired timer used to pay cores x (lock, emptiness check, unlock).
     Cross-core reads are a snapshot: a concurrent enqueue can be missed
     for one poll, which only delays that dispatcher's next loop
     iteration (the executor polls in a retry loop; the simulator is
     single-threaded and sees the exact count). *)
  type 'ev t = { core_states : 'ev core_state array; ready : int Atomic.t }

  let create ~cores =
    if cores < 1 then invalid_arg "Sched.create: cores < 1";
    let make_core _ =
      {
        qlock = L.create ();
        shuffle = Cq.create ();
        batch = [||];
        batch_n = 0;
        cur = [||];
        cur_src = -1;
        local_dispatches = 0;
        steal_dispatches = 0;
        local_events = 0;
        stolen_events = 0;
      }
    in
    { core_states = Array.init cores make_core; ready = Atomic.make 0 }

  let cores t = Array.length t.core_states

  let register t ~conn ~home =
    if home < 0 || home >= cores t then invalid_arg "Sched.register: home out of range";
    { conn_id = conn; home_core = home; plock = L.create (); events = Cq.create ();
      pcb_state = Idle }

  let[@zygos.hot] conn pcb = pcb.conn_id

  let home pcb = pcb.home_core

  let state pcb = pcb.pcb_state

  let pending_events pcb = Cq.length pcb.events

  (* Lock order is always PCB lock before shuffle-queue lock, both here and
     in [complete]; [claim_from] takes them in the opposite nesting but
     never holds both (the queue lock is released before the PCB lock is
     taken — safe because only the dispatcher that popped the PCB can see
     it in Ready-but-not-in-queue limbo). *)
  let[@zygos.hot] enqueue_ready t pcb =
    let c = t.core_states.(pcb.home_core) in
    (L.lock c.qlock [@zygos.allow "r6"]);
    Cq.push c.shuffle pcb;
    Atomic.incr t.ready;
    (L.unlock c.qlock [@zygos.allow "r6"])

  let[@zygos.hot] deliver t pcb ev =
    (L.lock pcb.plock [@zygos.allow "r6"]);
    Cq.push pcb.events ev;
    let became_ready = pcb.pcb_state = Idle in
    if became_ready then pcb.pcb_state <- Ready;
    if became_ready then begin
      enqueue_ready t pcb;
      (L.unlock pcb.plock [@zygos.allow "r6"])
    end
    else (L.unlock pcb.plock [@zygos.allow "r6"])

  (* Cold scratch (re)sizing, out of the hot claim path. *)
  let[@zygos.hot] reserve_batch me n fill =
    if Array.length me.batch < n then begin
      let cap = max 8 (Array.length me.batch) in
      let cap = ref cap in
      while !cap < n do
        cap := 2 * !cap
      done;
      me.batch <- (Array.make !cap fill [@zygos.allow "hot-alloc"])
    end

  let[@zygos.hot] set_cur me pcb =
    if Array.length me.cur = 0 then me.cur <- (Array.make 1 pcb [@zygos.allow "hot-alloc"])
    else me.cur.(0) <- pcb

  (* Pop one ready PCB from [victim]'s shuffle queue, acquire it, and
     drain its whole event batch into [core]'s scratch slice — an array
     walk for the caller instead of a cons per event. Stealing uses
     try_lock and gives up on contention (§5). *)
  let[@zygos.hot] claim_from t ~core ~victim =
    let c = t.core_states.(victim) in
    let stealing = victim <> core in
    let locked = if stealing then (L.try_lock c.qlock [@zygos.allow "r6"]) else ((L.lock c.qlock [@zygos.allow "r6"]); true) in
    if not locked then false
    else if Cq.is_empty c.shuffle then begin
      (L.unlock c.qlock [@zygos.allow "r6"]);
      false
    end
    else begin
      let pcb = Cq.pop c.shuffle in
      Atomic.decr t.ready;
      (L.unlock c.qlock [@zygos.allow "r6"]);
      (L.lock pcb.plock [@zygos.allow "r6"]);
      assert (pcb.pcb_state = Ready);
      pcb.pcb_state <- Busy;
      let me = t.core_states.(core) in
      let n = Cq.length pcb.events in
      (* Ready implies a non-empty event queue, so peeking a fill
         element for the scratch array is safe. *)
      reserve_batch me n (Array.unsafe_get pcb.events.Cq.buf pcb.events.Cq.head);
      for i = 0 to n - 1 do
        Array.unsafe_set me.batch i (Cq.pop pcb.events)
      done;
      me.batch_n <- n;
      (L.unlock pcb.plock [@zygos.allow "r6"]);
      set_cur me pcb;
      me.cur_src <- (if stealing then victim else -1);
      if stealing then begin
        me.steal_dispatches <- me.steal_dispatches + 1;
        me.stolen_events <- me.stolen_events + n
      end
      else begin
        me.local_dispatches <- me.local_dispatches + 1;
        me.local_events <- me.local_events + n
      end;
      true
    end

  let[@zygos.hot] rec try_victims t ~core ~steal_order i n =
    if i >= n then false
    else begin
      let victim = Array.unsafe_get steal_order i in
      if victim = core then try_victims t ~core ~steal_order (i + 1) n
      else if claim_from t ~core ~victim then true
      else try_victims t ~core ~steal_order (i + 1) n
    end

  let[@zygos.hot] poll t ~core ~steal_order =
    Atomic.get t.ready <> 0
    && (claim_from t ~core ~victim:core
       || (Atomic.get t.ready <> 0
          && try_victims t ~core ~steal_order 0 (Array.length steal_order)))

  let[@zygos.hot] poll_local t ~core =
    Atomic.get t.ready <> 0 && claim_from t ~core ~victim:core

  let[@zygos.hot] batch_pcb t ~core =
    let me = t.core_states.(core) in
    if Array.length me.cur = 0 then invalid_arg "Sched.batch_pcb: nothing dispatched";
    Array.unsafe_get me.cur 0

  let[@zygos.hot] batch_size t ~core = t.core_states.(core).batch_n

  let[@zygos.hot] batch_event t ~core i =
    let me = t.core_states.(core) in
    if i < 0 || i >= me.batch_n then invalid_arg "Sched.batch_event: out of range";
    Array.unsafe_get me.batch i

  let[@zygos.hot] batch_stolen_from t ~core = t.core_states.(core).cur_src

  (* List-returning wrappers over the scratch batch, for callers off the
     hot path (the executor, unit tests). *)
  let of_scratch t ~core =
    let me = t.core_states.(core) in
    let pcb = me.cur.(0) in
    let rec build i acc = if i < 0 then acc else build (i - 1) (me.batch.(i) :: acc) in
    let batch = build (me.batch_n - 1) [] in
    Some (pcb, batch, if me.cur_src < 0 then Local else Stolen me.cur_src)

  let next t ~core ~steal_order =
    if poll t ~core ~steal_order then of_scratch t ~core else None

  let next_local t ~core = if poll_local t ~core then of_scratch t ~core else None

  let[@zygos.hot] complete t pcb =
    (L.lock pcb.plock [@zygos.allow "r6"]);
    if pcb.pcb_state <> Busy then begin
      (L.unlock pcb.plock [@zygos.allow "r6"]);
      invalid_arg "Sched.complete: pcb not busy"
    end;
    if Cq.is_empty pcb.events then pcb.pcb_state <- Idle
    else begin
      pcb.pcb_state <- Ready;
      enqueue_ready t pcb
    end;
    (L.unlock pcb.plock [@zygos.allow "r6"])

  let[@zygos.hot] queue_length t ~core =
    let c = t.core_states.(core) in
    (L.lock c.qlock [@zygos.allow "r6"]);
    let n = Cq.length c.shuffle in
    (L.unlock c.qlock [@zygos.allow "r6"]);
    n

  let[@zygos.hot] has_ready t = Atomic.get t.ready <> 0

  type counters = {
    local_dispatches : int;
    steal_dispatches : int;
    local_events : int;
    stolen_events : int;
  }

  let counters t ~core =
    let c = t.core_states.(core) in
    {
      local_dispatches = c.local_dispatches;
      steal_dispatches = c.steal_dispatches;
      local_events = c.local_events;
      stolen_events = c.stolen_events;
    }

  let total_counters t =
    let add (acc : counters) (c : _ core_state) : counters =
      {
        local_dispatches = acc.local_dispatches + c.local_dispatches;
        steal_dispatches = acc.steal_dispatches + c.steal_dispatches;
        local_events = acc.local_events + c.local_events;
        stolen_events = acc.stolen_events + c.stolen_events;
      }
    in
    Array.fold_left add
      { local_dispatches = 0; steal_dispatches = 0; local_events = 0; stolen_events = 0 }
      t.core_states

  let steal_fraction t =
    let c = total_counters t in
    let total = c.local_events + c.stolen_events in
    if total = 0 then 0. else float_of_int c.stolen_events /. float_of_int total
end

module Sim_sched = Make (Platform.Nolock)
module Mt_sched = Make (Platform.Mutex_lock)
