module Make (L : Platform.LOCK) = struct
  type 'a t = { lock : L.t; items : 'a Queue.t; mutable pushed : int }

  let create () = { lock = L.create (); items = Queue.create (); pushed = 0 }

  let push t x =
    L.lock t.lock;
    Queue.add x t.items;
    t.pushed <- t.pushed + 1;
    L.unlock t.lock

  (* The empty case is the hot one: ZygOS cores probe their remote queue
     on every scheduler step, and stolen batches are comparatively rare.
     Probe without touching the lock — [Queue.is_empty] is one field
     read, and a racing push is caught by the caller's next probe. *)
  let drain t =
    if Queue.is_empty t.items then []
    else begin
      L.lock t.lock;
      let rec loop acc =
        match Queue.take_opt t.items with
        | Some x -> loop (x :: acc)
        | None -> List.rev acc
      in
      let out = loop [] in
      L.unlock t.lock;
      out
    end

  let length t =
    L.lock t.lock;
    let n = Queue.length t.items in
    L.unlock t.lock;
    n

  let[@zygos.hot] is_empty t = Queue.is_empty t.items

  let pushed_total t = t.pushed
end
