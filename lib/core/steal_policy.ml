type t = {
  self : int;
  rng : Engine.Rng.t;
  others : int array;  (* all cores but self; shuffled in place per call *)
  rr : int array;  (* fixed round-robin order *)
}

let create ~rng ~cores ~self =
  if cores < 1 then invalid_arg "Steal_policy.create: cores < 1";
  if self < 0 || self >= cores then invalid_arg "Steal_policy.create: self out of range";
  let others = Array.init (cores - 1) (fun i -> if i < self then i else i + 1) in
  let rr = Array.init (cores - 1) (fun i -> (self + 1 + i) mod cores) in
  { self; rng; others; rr }

let self t = t.self

let[@zygos.hot] victim_order t =
  Engine.Rng.shuffle_in_place t.rng t.others;
  t.others

let[@zygos.hot] round_robin_order t = t.rr
