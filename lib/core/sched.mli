(** The ZygOS shuffle layer: per-core single-producer/multi-consumer queues
    of ready connections, the per-connection idle/ready/busy state machine,
    and work stealing (§4.2–§4.4 of the paper).

    The design invariants this module maintains — and that the test suite
    checks with property tests — are:

    - a connection (PCB) is present in its home core's shuffle queue exactly
      once when in the [Ready] state, and never otherwise (Figure 5);
    - whichever core dequeues a PCB gains exclusive access to the socket
      until it completes the whole batch of events it grabbed, so events of
      one connection are never processed concurrently or reordered (§4.3);
    - events are grouped per socket, so one long-running connection can
      never block events of other connections queued behind it — this is
      what eliminates head-of-line blocking (§4.4);
    - pre-sorting by socket trades strict global FCFS for per-socket
      ordering; back-to-back events of one socket execute as one batch
      (the "implicit batching" of §6.2).

    The module is a functor over {!Platform.LOCK}; {!Sim_sched} and
    {!Mt_sched} are the two instantiations used by the simulator and by the
    real multicore runtime. *)

module type S = sig
  type lock

  (** Where a dispatched batch came from. *)
  type source =
    | Local  (** dequeued by the connection's home core *)
    | Stolen of int  (** stolen; the int is the victim (home) core *)

  type state = Idle | Ready | Busy  (** Figure 5's connection states *)

  type 'ev pcb
  (** Protocol control block: one per connection, holding its pending-event
      queue and scheduling state. ['ev] is the application event type. *)

  type 'ev t
  (** A scheduler instance: one shuffle queue per core. *)

  val create : cores:int -> 'ev t
  (** Raises [Invalid_argument] when [cores < 1]. *)

  val cores : 'ev t -> int

  val register : 'ev t -> conn:int -> home:int -> 'ev pcb
  (** Create the PCB for a connection homed on core [home] (as dictated by
      RSS). Raises [Invalid_argument] if [home] is out of range. *)

  val conn : 'ev pcb -> int

  val home : 'ev pcb -> int

  val state : 'ev pcb -> state

  val pending_events : 'ev pcb -> int

  val deliver : 'ev t -> 'ev pcb -> 'ev -> unit
  (** TCP-in path: append an event to the connection. An [Idle] connection
      becomes [Ready] and is enqueued on its home core's shuffle queue; a
      [Ready] or [Busy] connection just accumulates the event. *)

  val next : 'ev t -> core:int -> steal_order:int array -> ('ev pcb * 'ev list * source) option
  (** Dispatch for [core]: first try its own shuffle queue, then attempt to
      steal from the queues in [steal_order] (each guarded by a try-lock,
      §5). On success the PCB transitions [Ready -> Busy] and the whole
      batch of its pending events is drained and returned; the caller now
      holds exclusive access to the connection until it calls
      {!complete}. Returns [None] when every queue is empty (the core is
      idle). *)

  val next_local : 'ev t -> core:int -> ('ev pcb * 'ev list * source) option
  (** Like {!next} with an empty steal order — dispatch only from the
      core's own queue. *)

  (** {2 Zero-allocation dispatch}

      The allocation-free face of {!next}: a successful {!poll} claims
      the batch into per-core scratch storage (one flat array walk, no
      list cons per event, no [option]/[source] allocation), read back
      through the accessors below. The scratch is valid until the same
      core's next [poll]/[poll_local]; consume it first. {!next} and
      {!next_local} are list-building wrappers over the same claim, so
      counters behave identically whichever face is used. *)

  val poll : 'ev t -> core:int -> steal_order:int array -> bool
  (** Claim the next batch for [core] (own queue first, then steal in
      [steal_order] under try-locks). [false] = every queue empty. *)

  val poll_local : 'ev t -> core:int -> bool

  val batch_pcb : 'ev t -> core:int -> 'ev pcb
  (** PCB of the batch claimed by [core]'s last successful poll. Raises
      [Invalid_argument] before the first dispatch. *)

  val batch_size : 'ev t -> core:int -> int

  val batch_event : 'ev t -> core:int -> int -> 'ev
  (** Events in arrival order, indices [0, batch_size). Raises
      [Invalid_argument] out of range. *)

  val batch_stolen_from : 'ev t -> core:int -> int
  (** Victim core of the last claimed batch, or [-1] if it was local. *)

  val complete : 'ev t -> 'ev pcb -> unit
  (** End of the batch: the PCB leaves [Busy]. If events arrived meanwhile
      it re-enters [Ready] (and the home shuffle queue); otherwise it goes
      [Idle]. Raises [Invalid_argument] when the PCB is not [Busy]. *)

  val queue_length : 'ev t -> core:int -> int
  (** Current shuffle-queue length of a core (what idle cores poll). *)

  val has_ready : 'ev t -> bool
  (** Whether any core's shuffle queue is non-empty. *)

  (** Dispatch counters, for Figure 8's steal-rate analysis. *)
  type counters = {
    local_dispatches : int;  (** batches a core took from its own queue *)
    steal_dispatches : int;  (** batches taken from another core's queue *)
    local_events : int;  (** events contained in local batches *)
    stolen_events : int;  (** events contained in stolen batches *)
  }

  val counters : 'ev t -> core:int -> counters

  val total_counters : 'ev t -> counters

  val steal_fraction : 'ev t -> float
  (** stolen events / all dispatched events; 0 when nothing dispatched. *)
end

module Make (L : Platform.LOCK) : S with type lock = L.t

module Sim_sched : S with type lock = Platform.Nolock.t
(** Instantiation used by the discrete-event system models. *)

module Mt_sched : S with type lock = Platform.Mutex_lock.t
(** Instantiation used by the real OCaml-domains runtime. *)
