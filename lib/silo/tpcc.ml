module Rng = Engine.Rng

type t = {
  database : Db.t;
  warehouse : Db.table;
  district : Db.table;
  customer : Db.table;
  customer_by_name : Db.table;  (* (w, d, last, first, c) -> [c_id] *)
  history : Db.table;
  item : Db.table;
  stock : Db.table;
  order : Db.table;
  order_by_customer : Db.table;  (* (w, d, c, o) -> [o_id] *)
  new_order : Db.table;
  order_line : Db.table;
  n_warehouses : int;
  n_districts : int;
  n_customers : int;  (* per district *)
  n_items : int;
  history_seq : int Atomic.t;  (* history rows have no natural primary key *)
}

type profile = [ `Full | `Small ]

(* ---- column layouts ----

   Records are string arrays; money is integer cents rendered with
   [string_of_int]. The constants below name the column offsets. *)

(* warehouse: name, street, city, state, zip, tax(bp), ytd(cents) *)
let w_tax = 5

and w_ytd = 6

(* district: name, street, city, state, zip, tax(bp), ytd(cents), next_o_id *)
let _d_tax = 5

and d_ytd = 6

and d_next_o_id = 7

(* customer *)
let _c_first = 0

and _c_last = 2

and c_credit = 10

and c_discount = 12

and c_balance = 13

and c_ytd_payment = 14

and c_payment_cnt = 15

and c_delivery_cnt = 16

and c_data = 17

(* item: name, price(cents), data *)
let i_price = 1

(* stock: quantity, dist, ytd, order_cnt, remote_cnt, data *)
let s_quantity = 0

and s_ytd = 2

and s_order_cnt = 3

and s_remote_cnt = 4

(* order: c_id, entry_d, carrier_id, ol_cnt, all_local *)
let o_c_id = 0

and o_carrier_id = 2

and o_ol_cnt = 3

(* order_line: i_id, supply_w, delivery_d, quantity, amount(cents), dist_info *)
let ol_i_id = 0

and ol_delivery_d = 2

and ol_amount = 4

(* ---- spec random functions ---- *)

let c_for_nurand_255 = 123 (* the spec's per-run constant C *)

let c_for_nurand_8191 = 4242

let c_for_nurand_1023 = 721

let nurand rng ~a ~c ~x ~y =
  (((Rng.int_range rng 0 a lor Rng.int_range rng x y) + c) mod (y - x + 1)) + x

let syllables =
  [| "BAR"; "OUGHT"; "ABLE"; "PRI"; "PRES"; "ESE"; "ANTI"; "CALLY"; "ATION"; "EING" |]

let last_name num =
  syllables.(num / 100 mod 10) ^ syllables.(num / 10 mod 10) ^ syllables.(num mod 10)

let rand_string rng ~min ~max =
  let len = Rng.int_range rng min max in
  String.init len (fun _ -> Char.chr (Char.code 'a' + Rng.int rng 26))

let money_to_string cents = string_of_int cents

let money_of_string s = int_of_string s

(* ---- keys ---- *)

let wkey w = Key.of_ints [ w ]

let dkey w d = Key.of_ints [ w; d ]

let ckey w d c = Key.of_ints [ w; d; c ]

let cname_key w d last first c = Key.of_ints_str [ w; d ] (last ^ "\x00" ^ first ^ "\x00") ^ Key.of_int c

let ikey i = Key.of_ints [ i ]

let skey w i = Key.of_ints [ w; i ]

let okey w d o = Key.of_ints [ w; d; o ]

let ocust_key w d c o = Key.of_ints [ w; d; c; o ]

let olkey w d o n = Key.of_ints [ w; d; o; n ]

(* ---- loading ---- *)

let load ?(warehouses = 1) ?(profile = `Small) ?(seed = 7) () =
  if warehouses < 1 then invalid_arg "Tpcc.load: warehouses < 1";
  let n_districts = 10 in
  let n_customers, n_items, n_orders =
    match profile with `Full -> (3000, 100_000, 3000) | `Small -> (300, 10_000, 300)
  in
  let database = Db.create () in
  let t =
    {
      database;
      warehouse = Db.add_table database "warehouse";
      district = Db.add_table database "district";
      customer = Db.add_table database "customer";
      customer_by_name = Db.add_table database "customer_by_name";
      history = Db.add_table database "history";
      item = Db.add_table database "item";
      stock = Db.add_table database "stock";
      order = Db.add_table database "order";
      order_by_customer = Db.add_table database "order_by_customer";
      new_order = Db.add_table database "new_order";
      order_line = Db.add_table database "order_line";
      n_warehouses = warehouses;
      n_districts;
      n_customers;
      n_items;
      history_seq = Atomic.make 0;
    }
  in
  let rng = Rng.create ~seed in
  let put (table : Db.table) key data =
    match Btree.insert table.Db.index key (Record.create data) with
    | `Inserted -> ()
    | `Duplicate _ -> invalid_arg "Tpcc.load: duplicate key"
  in
  for i = 1 to n_items do
    put t.item (ikey i)
      [| "item" ^ string_of_int i; money_to_string (Rng.int_range rng 100 10000);
         rand_string rng ~min:26 ~max:50; string_of_int (Rng.int_range rng 1 10_000) |]
  done;
  for w = 1 to warehouses do
    put t.warehouse (wkey w)
      [| "wh" ^ string_of_int w; rand_string rng ~min:10 ~max:20; "city"; "ST"; "12345";
         string_of_int (Rng.int_range rng 0 2000); money_to_string 30_000_000 |];
    for i = 1 to n_items do
      put t.stock (skey w i)
        [| string_of_int (Rng.int_range rng 10 100); rand_string rng ~min:24 ~max:24;
           "0"; "0"; "0"; rand_string rng ~min:26 ~max:50 |]
    done;
    for d = 1 to n_districts do
      put t.district (dkey w d)
        [| "d" ^ string_of_int d; rand_string rng ~min:10 ~max:20; "city"; "ST"; "12345";
           string_of_int (Rng.int_range rng 0 2000); money_to_string 3_000_000;
           string_of_int (n_orders + 1) |];
      for c = 1 to n_customers do
        let last = last_name ((c - 1) mod 1000) in
        let first = "first" ^ string_of_int c in
        let credit = if Rng.bernoulli rng 0.1 then "BC" else "GC" in
        put t.customer (ckey w d c)
          [| first; "OE"; last; rand_string rng ~min:10 ~max:20; "street2"; "city"; "ST";
             "12345"; "555-1234"; "2017-10-28"; credit; money_to_string 5_000_000;
             string_of_int (Rng.int_range rng 0 5000); money_to_string (-1000);
             money_to_string 1000; "1"; "0"; rand_string rng ~min:30 ~max:50 |];
        put t.customer_by_name (cname_key w d last first c) [| string_of_int c |];
        let hseq = 1 + Atomic.fetch_and_add t.history_seq 1 in
        put t.history
          (Key.of_ints [ w; d; c; hseq ])
          [| money_to_string 1000; "2017-10-28"; "initial" |]
      done;
      (* Initial orders: customers in a random permutation, per spec. *)
      let customers = Array.init n_orders (fun i -> (i mod n_customers) + 1) in
      Rng.shuffle_in_place rng customers;
      for o = 1 to n_orders do
        let c = customers.(o - 1) in
        let ol_cnt = Rng.int_range rng 5 15 in
        let delivered = o <= n_orders * 7 / 10 in
        put t.order (okey w d o)
          [| string_of_int c; "2017-10-28";
             (if delivered then string_of_int (Rng.int_range rng 1 10) else "");
             string_of_int ol_cnt; "1" |];
        put t.order_by_customer (ocust_key w d c o) [| string_of_int o |];
        if not delivered then put t.new_order (okey w d o) [| "1" |];
        for n = 1 to ol_cnt do
          let i = Rng.int_range rng 1 n_items in
          put t.order_line (olkey w d o n)
            [| string_of_int i; string_of_int w;
               (if delivered then "2017-10-28" else "");
               "5";
               (if delivered then "0" else money_to_string (Rng.int_range rng 1 999999));
               rand_string rng ~min:24 ~max:24 |]
        done
      done
    done
  done;
  t

let db t = t.database

let warehouses t = t.n_warehouses

let items t = t.n_items

let customers_per_district t = t.n_customers

(* ---- transaction inputs ---- *)

type tx_type = New_order | Payment | Order_status | Delivery | Stock_level

let all_tx_types = [ New_order; Payment; Order_status; Delivery; Stock_level ]

let tx_name = function
  | New_order -> "NewOrder"
  | Payment -> "Payment"
  | Order_status -> "OrderStatus"
  | Delivery -> "Delivery"
  | Stock_level -> "StockLevel"

let standard_mix rng =
  let p = Rng.int rng 100 in
  if p < 45 then New_order
  else if p < 88 then Payment
  else if p < 92 then Order_status
  else if p < 96 then Delivery
  else Stock_level

let rand_warehouse t rng = Rng.int_range rng 1 t.n_warehouses

let rand_district t rng = Rng.int_range rng 1 t.n_districts

let rand_customer t rng =
  nurand rng ~a:1023 ~c:c_for_nurand_1023 ~x:1 ~y:t.n_customers

let rand_item t rng = nurand rng ~a:8191 ~c:c_for_nurand_8191 ~x:1 ~y:t.n_items

let rand_last_name t rng =
  let num = nurand rng ~a:255 ~c:c_for_nurand_255 ~x:0 ~y:999 in
  last_name (num mod t.n_customers mod 1000)

(* Resolve a customer by last name: spec 2.6.2.2 picks the ceil(n/2)-th
   match ordered by first name. *)
let customer_by_last_name t txn w d last =
  let lo = Key.of_ints_str [ w; d ] (last ^ "\x00") in
  let hi = Key.of_ints_str [ w; d ] (last ^ "\x01") in
  let matches = Txn.scan txn t.customer_by_name ~lo ~hi in
  match matches with
  | [] -> None
  | _ ->
      let n = List.length matches in
      let _, data = List.nth matches ((n - 1) / 2) in
      Some (int_of_string data.(0))

let get_exn txn table key =
  match Txn.read txn table key with
  | Some data -> data
  | None -> raise Not_found

let set data idx v =
  let copy = Array.copy data in
  copy.(idx) <- v;
  copy

(* ---- the five transactions ---- *)

let new_order t txn rng =
  let w = rand_warehouse t rng in
  let d = rand_district t rng in
  let c = rand_customer t rng in
  let ol_cnt = Rng.int_range rng 5 15 in
  let rollback = Rng.int_range rng 1 100 = 1 in
  let wh = get_exn txn t.warehouse (wkey w) in
  let w_tax_v = int_of_string wh.(w_tax) in
  let dist = get_exn txn t.district (dkey w d) in
  let o_id = int_of_string dist.(d_next_o_id) in
  Txn.write txn t.district (dkey w d) (set dist d_next_o_id (string_of_int (o_id + 1)));
  let cust = get_exn txn t.customer (ckey w d c) in
  let c_discount_v = int_of_string cust.(c_discount) in
  let all_local = ref true in
  let total = ref 0 in
  for n = 1 to ol_cnt do
    (* The intentional 1% rollback: the last item id is invalid. *)
    let invalid = rollback && n = ol_cnt in
    let i_id = if invalid then t.n_items + 1 else rand_item t rng in
    let supply_w =
      if t.n_warehouses > 1 && Rng.bernoulli rng 0.01 then begin
        let rec pick () =
          let x = rand_warehouse t rng in
          if x = w then pick () else x
        in
        pick ()
      end
      else w
    in
    if supply_w <> w then all_local := false;
    match Txn.read txn t.item (ikey i_id) with
    | None -> raise Txn.Rollback
    | Some item_data ->
        let price = money_of_string item_data.(i_price) in
        let qty = Rng.int_range rng 1 10 in
        let stock = get_exn txn t.stock (skey supply_w i_id) in
        let s_qty = int_of_string stock.(s_quantity) in
        let new_qty = if s_qty >= qty + 10 then s_qty - qty else s_qty - qty + 91 in
        let stock = set stock s_quantity (string_of_int new_qty) in
        let stock = set stock s_ytd (string_of_int (int_of_string stock.(s_ytd) + qty)) in
        let stock =
          set stock s_order_cnt (string_of_int (int_of_string stock.(s_order_cnt) + 1))
        in
        let stock =
          if supply_w <> w then
            set stock s_remote_cnt (string_of_int (int_of_string stock.(s_remote_cnt) + 1))
          else stock
        in
        Txn.write txn t.stock (skey supply_w i_id) stock;
        let amount = qty * price in
        total := !total + amount;
        Txn.insert txn t.order_line (olkey w d o_id n)
          [| string_of_int i_id; string_of_int supply_w; ""; string_of_int qty;
             money_to_string amount; "dist-info-24-bytes-xxxxx" |]
  done;
  let _ = (w_tax_v, c_discount_v, !total) in
  Txn.insert txn t.order (okey w d o_id)
    [| string_of_int c; "2017-10-28"; ""; string_of_int ol_cnt;
       (if !all_local then "1" else "0") |];
  Txn.insert txn t.order_by_customer (ocust_key w d c o_id) [| string_of_int o_id |];
  Txn.insert txn t.new_order (okey w d o_id) [| "1" |]

let payment t txn rng =
  let w = rand_warehouse t rng in
  let d = rand_district t rng in
  let amount = Rng.int_range rng 100 500_000 in
  (* 85% home district customer, 15% remote (spec 2.5.1.2). *)
  let c_w, c_d =
    if t.n_warehouses > 1 && Rng.bernoulli rng 0.15 then begin
      let rec pick () =
        let x = rand_warehouse t rng in
        if x = w then pick () else x
      in
      (pick (), rand_district t rng)
    end
    else (w, d)
  in
  let c =
    if Rng.bernoulli rng 0.6 then
      match customer_by_last_name t txn c_w c_d (rand_last_name t rng) with
      | Some c -> c
      | None -> rand_customer t rng
    else rand_customer t rng
  in
  let wh = get_exn txn t.warehouse (wkey w) in
  Txn.write txn t.warehouse (wkey w)
    (set wh w_ytd (money_to_string (money_of_string wh.(w_ytd) + amount)));
  let dist = get_exn txn t.district (dkey w d) in
  Txn.write txn t.district (dkey w d)
    (set dist d_ytd (money_to_string (money_of_string dist.(d_ytd) + amount)));
  let cust = get_exn txn t.customer (ckey c_w c_d c) in
  let cust = set cust c_balance (money_to_string (money_of_string cust.(c_balance) - amount)) in
  let cust =
    set cust c_ytd_payment (money_to_string (money_of_string cust.(c_ytd_payment) + amount))
  in
  let cust =
    set cust c_payment_cnt (string_of_int (int_of_string cust.(c_payment_cnt) + 1))
  in
  let cust =
    if String.equal cust.(c_credit) "BC" then begin
      let info =
        Printf.sprintf "%d %d %d %d %d %d|%s" c c_d c_w d w amount cust.(c_data)
      in
      set cust c_data (if String.length info > 500 then String.sub info 0 500 else info)
    end
    else cust
  in
  Txn.write txn t.customer (ckey c_w c_d c) cust;
  let hseq = 1 + Atomic.fetch_and_add t.history_seq 1 in
  Txn.insert txn t.history
    (Key.of_ints [ c_w; c_d; c; hseq ])
    [| money_to_string amount; "2017-10-28"; "payment" |]

let order_status t txn rng =
  let w = rand_warehouse t rng in
  let d = rand_district t rng in
  let c =
    if Rng.bernoulli rng 0.6 then
      match customer_by_last_name t txn w d (rand_last_name t rng) with
      | Some c -> c
      | None -> rand_customer t rng
    else rand_customer t rng
  in
  let cust = get_exn txn t.customer (ckey w d c) in
  ignore (money_of_string cust.(c_balance) : int);
  (* Most recent order of this customer. *)
  let lo = ocust_key w d c 0 and hi = ocust_key w d c max_int in
  let orders = Txn.scan txn t.order_by_customer ~lo ~hi in
  match List.rev orders with
  | [] -> ()
  | (_, last_order) :: _ ->
      let o_id = int_of_string last_order.(0) in
      let order_data = get_exn txn t.order (okey w d o_id) in
      ignore order_data.(o_carrier_id);
      let lines = Txn.scan txn t.order_line ~lo:(olkey w d o_id 0) ~hi:(olkey w d o_id 99) in
      List.iter (fun (_, line) -> ignore (money_of_string line.(ol_amount) : int)) lines

let delivery t txn rng =
  let w = rand_warehouse t rng in
  let carrier = Rng.int_range rng 1 10 in
  for d = 1 to t.n_districts do
    (* Oldest undelivered order of the district. *)
    let pending = Txn.scan txn t.new_order ~lo:(okey w d 0) ~hi:(okey w d max_int) in
    match pending with
    | [] -> ()
    | (no_key, _) :: _ -> (
        match Key.to_ints no_key with
        | [ _; _; o_id ] ->
            Txn.delete txn t.new_order no_key;
            let order_data = get_exn txn t.order (okey w d o_id) in
            let c = int_of_string order_data.(o_c_id) in
            Txn.write txn t.order (okey w d o_id)
              (set order_data o_carrier_id (string_of_int carrier));
            let lines =
              Txn.scan txn t.order_line ~lo:(olkey w d o_id 0) ~hi:(olkey w d o_id 99)
            in
            let total = ref 0 in
            List.iter
              (fun (line_key, line) ->
                total := !total + money_of_string line.(ol_amount);
                Txn.write txn t.order_line line_key (set line ol_delivery_d "2017-10-29"))
              lines;
            let cust = get_exn txn t.customer (ckey w d c) in
            let cust =
              set cust c_balance (money_to_string (money_of_string cust.(c_balance) + !total))
            in
            let cust =
              set cust c_delivery_cnt
                (string_of_int (int_of_string cust.(c_delivery_cnt) + 1))
            in
            Txn.write txn t.customer (ckey w d c) cust
        | _ -> assert false)
  done

let stock_level t txn rng =
  let w = rand_warehouse t rng in
  let d = rand_district t rng in
  let threshold = Rng.int_range rng 10 20 in
  let dist = get_exn txn t.district (dkey w d) in
  let next_o = int_of_string dist.(d_next_o_id) in
  let lo = olkey w d (max 1 (next_o - 20)) 0 and hi = olkey w d next_o 0 in
  let lines = Txn.scan txn t.order_line ~lo ~hi in
  let seen = Hashtbl.create 64 in
  List.iter (fun (_, line) -> Hashtbl.replace seen (int_of_string line.(ol_i_id)) ()) lines;
  let low = ref 0 in
  Hashtbl.iter
    (fun i_id () ->
      let stock = get_exn txn t.stock (skey w i_id) in
      if int_of_string stock.(s_quantity) < threshold then incr low)
    seen;
  ignore !low

type outcome = Committed | Rolled_back | Conflicted

let execute t worker rng tx =
  (* Transaction inputs must not be re-drawn on an OCC retry (the retry
     must be "the same transaction"), so derive a child stream once and
     replay a copy of it on each attempt. *)
  let snapshot = Rng.split rng in
  let result =
    Txn.run (db t) worker (fun txn ->
        let r = Rng.copy snapshot in
        match tx with
        | New_order -> new_order t txn r
        | Payment -> payment t txn r
        | Order_status -> order_status t txn r
        | Delivery -> delivery t txn r
        | Stock_level -> stock_level t txn r)
  in
  match result with
  | Txn.Committed ((), _) -> Committed
  | Txn.Rolled_back -> Rolled_back
  | Txn.Conflict_exhausted -> Conflicted

(* ---- consistency conditions (TPC-C §3.3.2.1–4) ---- *)

let fold_table (table : Db.table) ~lo ~hi ~init ~f =
  let acc = ref init in
  Btree.iter_range table.Db.index ~lo ~hi (fun key record ->
      let tid, data = Record.stable_read record in
      if not (Tid.is_absent tid) then acc := f !acc key data);
  !acc

let consistency_check t =
  let results = ref [] in
  let add name ok = results := (name, ok) :: !results in
  let all_lo = "" and all_hi = "\xff\xff\xff\xff\xff\xff\xff\xff\xff" in
  for w = 1 to t.n_warehouses do
    (* 1: W_YTD = sum of its districts' D_YTD. *)
    let wh = fold_table t.warehouse ~lo:(wkey w) ~hi:(Key.succ (wkey w)) ~init:None
        ~f:(fun _ _ data -> Some data)
    in
    let w_ytd_v = match wh with Some d -> money_of_string d.(w_ytd) | None -> -1 in
    let d_ytd_sum =
      fold_table t.district ~lo:(dkey w 0) ~hi:(dkey w max_int) ~init:0 ~f:(fun acc _ data ->
          acc + money_of_string data.(d_ytd))
    in
    add (Printf.sprintf "C1.w%d: W_YTD = sum(D_YTD)" w) (w_ytd_v = d_ytd_sum);
    for d = 1 to t.n_districts do
      let dist = fold_table t.district ~lo:(dkey w d) ~hi:(Key.succ (dkey w d)) ~init:None
          ~f:(fun _ _ data -> Some data)
      in
      let next_o = match dist with Some x -> int_of_string x.(d_next_o_id) | None -> -1 in
      (* 2: D_NEXT_O_ID - 1 = max(O_ID). *)
      let max_o =
        fold_table t.order ~lo:(okey w d 0) ~hi:(okey w d max_int) ~init:0 ~f:(fun acc key _ ->
            match Key.to_ints key with [ _; _; o ] -> max acc o | _ -> acc)
      in
      add (Printf.sprintf "C2.w%d.d%d: next_o_id-1 = max(o_id)" w d) (next_o - 1 = max_o);
      (* 3: NEW-ORDER ids are contiguous. *)
      let ids =
        fold_table t.new_order ~lo:(okey w d 0) ~hi:(okey w d max_int) ~init:[]
          ~f:(fun acc key _ ->
            match Key.to_ints key with [ _; _; o ] -> o :: acc | _ -> acc)
      in
      let contiguous =
        match List.rev ids with
        | [] -> true
        | first :: _ as l ->
            let n = List.length l in
            let last = List.nth l (n - 1) in
            last - first + 1 = n
      in
      add (Printf.sprintf "C3.w%d.d%d: new_order contiguous" w d) contiguous;
      (* 4: sum(O_OL_CNT) = number of order lines. *)
      let ol_cnt_sum =
        fold_table t.order ~lo:(okey w d 0) ~hi:(okey w d max_int) ~init:0
          ~f:(fun acc _ data -> acc + int_of_string data.(o_ol_cnt))
      in
      let ol_rows =
        fold_table t.order_line ~lo:(olkey w d 0 0) ~hi:(olkey w d max_int 0) ~init:0
          ~f:(fun acc _ _ -> acc + 1)
      in
      add (Printf.sprintf "C4.w%d.d%d: sum(ol_cnt) = #order_lines" w d) (ol_cnt_sum = ol_rows)
    done
  done;
  ignore (all_lo, all_hi);
  List.rev !results
