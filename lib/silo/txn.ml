type pending_write = { wtable : Db.table; wkey : string; wrecord : Record.t; mutable wdata : string array }

type pending_insert = { itable : Db.table; ikey : string; mutable idata : string array }

type pending_delete = { dtable : Db.table; dkey : string; drecord : Record.t }

type t = {
  db : Db.t;
  worker : Db.worker;
  mutable reads : (Record.t * Tid.t) list;
  mutable node_set : (Record.t Btree.leaf * int) list;
  mutable writes : pending_write list;
  mutable inserts : pending_insert list;
  mutable deletes : pending_delete list;
  mutable finished : bool;
}

exception Rollback

let begin_ db worker =
  {
    db;
    worker;
    reads = [];
    node_set = [];
    writes = [];
    inserts = [];
    deletes = [];
    finished = false;
  }

let check_active t = if t.finished then invalid_arg "Txn: transaction already finished"

let find_own_insert t (table : Db.table) key =
  List.find_opt (fun i -> i.itable == table && String.equal i.ikey key) t.inserts

let find_own_write t (table : Db.table) key =
  List.find_opt (fun w -> w.wtable == table && String.equal w.wkey key) t.writes

let find_own_delete t (table : Db.table) key =
  List.find_opt (fun d -> d.dtable == table && String.equal d.dkey key) t.deletes

let read t (table : Db.table) key =
  check_active t;
  match find_own_insert t table key with
  | Some i -> Some i.idata
  | None -> (
      if Option.is_some (find_own_delete t table key) then None
      else
        match find_own_write t table key with
        | Some w -> Some w.wdata
        | None -> (
            let value, leaf = Btree.get table.index key in
            match value with
            | None ->
                (* Absent key: remember the leaf version so a concurrent
                   insert of this key aborts us (anti-phantom). *)
                t.node_set <- (leaf, Btree.leaf_version leaf) :: t.node_set;
                None
            | Some record ->
                let tid, data = Record.stable_read record in
                t.reads <- (record, tid) :: t.reads;
                if Tid.is_absent tid then None else Some data))

let scan t (table : Db.table) ~lo ~hi =
  check_active t;
  let on_leaf leaf = t.node_set <- (leaf, Btree.leaf_version leaf) :: t.node_set in
  let entries = Btree.scan_range table.index ~lo ~hi ~on_leaf () in
  List.filter_map
    (fun (key, record) ->
      if Option.is_some (find_own_delete t table key) then None
      else
        match find_own_write t table key with
        | Some w -> Some (key, w.wdata)
        | None ->
            let tid, data = Record.stable_read record in
            t.reads <- (record, tid) :: t.reads;
            if Tid.is_absent tid then None else Some (key, data))
    entries

let live_record (table : Db.table) key =
  let value, _leaf = Btree.get table.index key in
  match value with
  | None -> None
  | Some record -> if Tid.is_absent (Record.tid record) then None else Some record

let write t (table : Db.table) key data =
  check_active t;
  match find_own_insert t table key with
  | Some i -> i.idata <- data
  | None -> (
      match find_own_write t table key with
      | Some w -> w.wdata <- data
      | None -> (
          match live_record table key with
          | Some record -> t.writes <- { wtable = table; wkey = key; wrecord = record; wdata = data } :: t.writes
          | None -> raise Not_found))

let insert t (table : Db.table) key data =
  check_active t;
  if Option.is_some (find_own_insert t table key) then invalid_arg "Txn.insert: duplicate buffered insert";
  t.inserts <- { itable = table; ikey = key; idata = data } :: t.inserts

let delete t (table : Db.table) key =
  check_active t;
  match find_own_insert t table key with
  | Some i -> t.inserts <- List.filter (fun x -> x != i) t.inserts
  | None -> (
      match live_record table key with
      | Some record ->
          t.deletes <- { dtable = table; dkey = key; drecord = record } :: t.deletes;
          (* A buffered write of the same key is subsumed by the delete. *)
          t.writes <- List.filter (fun w -> not (w.wtable == table && String.equal w.wkey key)) t.writes
      | None -> raise Not_found)

let abort t = t.finished <- true

(* ---- commit protocol ---- *)

let lock_order (na, ka) (nb, kb) =
  let c = String.compare na nb in
  if c <> 0 then c else String.compare ka kb

(* Records to lock in phase 1: all update and delete targets, in global
   (table, key) order, without duplicates. *)
let lock_targets t =
  let entries =
    List.map (fun w -> ((w.wtable.Db.name, w.wkey), w.wrecord)) t.writes
    @ List.map (fun d -> ((d.dtable.Db.name, d.dkey), d.drecord)) t.deletes
  in
  let sorted = List.sort (fun (a, _) (b, _) -> lock_order a b) entries in
  let rec dedup = function
    | (ka, ra) :: ((kb, rb) :: _ as rest) when lock_order ka kb = 0 && ra == rb -> dedup rest
    | x :: rest -> x :: dedup rest
    | [] -> []
  in
  List.map snd (dedup sorted)

(* Tables whose indexes change structurally, in name order (so concurrent
   committers acquire tree locks consistently). *)
let structural_tables t =
  let names =
    List.map (fun i -> i.itable) t.inserts @ List.map (fun d -> d.dtable) t.deletes
  in
  let sorted = List.sort_uniq (fun (a : Db.table) b -> String.compare a.Db.name b.Db.name) names in
  sorted

let validate t ~locked =
  let nodes_ok =
    List.for_all (fun (leaf, v) -> Btree.leaf_version leaf = v) t.node_set
  in
  nodes_ok
  && List.for_all
       (fun (record, observed) ->
         let current = Record.tid record in
         if Tid.unlocked current <> observed then false
         else (not (Tid.is_locked current)) || List.memq record locked)
       t.reads

let commit_tid t ~locked ~epoch_now =
  let max_tid acc tid = if Tid.compare_data tid acc > 0 then tid else acc in
  let acc = Db.last_tid t.worker in
  let acc = List.fold_left (fun acc (_, tid) -> max_tid acc tid) acc t.reads in
  let acc = List.fold_left (fun acc r -> max_tid acc (Tid.unlocked (Record.tid r))) acc locked in
  let epoch = max epoch_now (Tid.epoch acc) in
  Tid.next_after acc ~epoch

let commit t =
  check_active t;
  t.finished <- true;
  let locked = lock_targets t in
  List.iter Record.lock locked;
  let epoch_now = Epoch.current (Db.epoch t.db) in
  let trees = structural_tables t in
  List.iter (fun (table : Db.table) -> Btree.lock_tree table.index) trees;
  let release_trees () = List.iter (fun (table : Db.table) -> Btree.unlock_tree table.index) trees in
  let fail () =
    release_trees ();
    List.iter Record.unlock locked;
    Db.note_abort t.worker;
    Error `Conflict
  in
  if not (validate t ~locked) then fail ()
  else begin
    let tid = commit_tid t ~locked ~epoch_now in
    (* Apply inserts first; a duplicate key is a conflict and requires
       undoing the inserts already applied. *)
    let rec apply_inserts applied = function
      | [] -> Ok ()
      | i :: rest -> (
          let record = Record.create_committed i.idata ~tid in
          match Btree.insert_unlocked i.itable.Db.index i.ikey record with
          | `Inserted -> apply_inserts (i :: applied) rest
          | `Duplicate _ ->
              List.iter
                (fun j -> ignore (Btree.remove_unlocked j.itable.Db.index j.ikey : Record.t option))
                applied;
              Error `Conflict)
    in
    match apply_inserts [] t.inserts with
    | Error `Conflict -> fail ()
    | Ok () ->
        List.iter
          (fun d ->
            ignore (Btree.remove_unlocked d.dtable.Db.index d.dkey : Record.t option);
            Record.mark_absent d.drecord ~tid)
          t.deletes;
        let deleted = List.map (fun d -> d.drecord) t.deletes in
        List.iter
          (fun w -> if not (List.memq w.wrecord deleted) then Record.install w.wrecord ~data:w.wdata ~tid)
          t.writes;
        release_trees ();
        Db.set_last_tid t.worker tid;
        Db.note_commit t.worker;
        Epoch.on_commit (Db.epoch t.db);
        Ok tid
  end

type 'a outcome = Committed of 'a * Tid.t | Rolled_back | Conflict_exhausted

let run ?(max_attempts = 64) db worker f =
  let rec attempt n =
    if n > max_attempts then Conflict_exhausted
    else begin
      let txn = begin_ db worker in
      match f txn with
      | x -> (
          match commit txn with
          | Ok tid -> Committed (x, tid)
          | Error `Conflict -> attempt (n + 1))
      | exception Rollback ->
          abort txn;
          Rolled_back
    end
  in
  attempt 1
