(** Single-experiment runner: one (system, service distribution, load)
    point, measured exactly like the paper's §3.1 methodology — open-loop
    Poisson arrivals over many connections, client-side latency, p99 tails.

    Loads are expressed as a fraction of the zero-overhead saturation
    capacity [cores / mean_service], so "load 0.8 for 10µs tasks on 16
    cores" means 1.28 requests/µs offered, for every system — real systems
    saturate below 1.0 because of their per-request overheads, exactly as
    in Figures 3, 6 and 7. *)

type system_kind =
  | Linux_partitioned
  | Linux_floating
  | Ix of int  (** bounded-batching parameter B *)
  | Zygos
  | Zygos_no_interrupts
  | Preemptive of float
      (** centralized preemptive scheduling with the given quantum (µs) —
          the §2.3 "PS wins under extreme dispersion" extension *)
  | Ix_rebalanced of float
      (** IX with an RSS-reprogramming control plane, window in µs — the
          §5 "control plane interactions" extension *)
  | Model_central_fcfs  (** zero-overhead M/G/n/FCFS bound *)
  | Model_partitioned_fcfs  (** zero-overhead n×M/G/1/FCFS bound *)

val system_name : system_kind -> string

val all_real_systems : system_kind list
(** The five simulated servers (both IX batchings excluded): partitioned,
    floating, IX(B=1), ZygOS, ZygOS-no-interrupts. *)

type config = {
  system : system_kind;
  cores : int;  (** default 16 *)
  conns : int;  (** default 2752, the paper's connection count *)
  service : Engine.Dist.t;
  requests : int;  (** measured request target per point (default 30_000) *)
  seed : int;
  rpc_packets : int;  (** packets per request each way (default 1) *)
  selection : Net.Loadgen.conn_selection;  (** default [Uniform] *)
  faults : Net.Faults.plan option;  (** network fault plan (default none) *)
  stragglers : Core.Corefault.spec list;  (** straggler windows (default none) *)
  retry : Net.Loadgen.retry option;  (** client retry policy (default none) *)
  slo : float;  (** goodput SLO in µs (default [infinity]) *)
  shed : Systems.Overload.policy;  (** admission control (default [No_shed]) *)
}

val config :
  ?cores:int ->
  ?conns:int ->
  ?requests:int ->
  ?seed:int ->
  ?rpc_packets:int ->
  ?selection:Net.Loadgen.conn_selection ->
  ?faults:Net.Faults.plan ->
  ?stragglers:Core.Corefault.spec list ->
  ?retry:Net.Loadgen.retry ->
  ?slo:float ->
  ?shed:Systems.Overload.policy ->
  system:system_kind ->
  service:Engine.Dist.t ->
  unit ->
  config
(** Validates every fault/overload knob eagerly (see the respective
    [validate_*] functions); raises [Invalid_argument] on bad values. When
    all the optional chaos knobs are left at their defaults, the resulting
    runs are bit-identical to a configuration built before this layer
    existed. *)

type point = {
  load : float;  (** offered load (fraction of zero-overhead capacity) *)
  offered_rate : float;  (** requests/µs offered *)
  throughput : float;  (** requests/µs completed in the measure window *)
  goodput : float;
      (** distinct requests completed within [slo] per µs; equals
          [throughput] when [slo = infinity] and no duplicates occur *)
  mean : float;
  p50 : float;
  p99 : float;
  p999 : float;
  completed : int;
  order_violations : int;
  info : (string * float) list;  (** system counters, see {!Systems.Iface} *)
}

val info_value : point -> string -> float option
(** [info_value p key] looks up a counter in [p.info] by [String.equal]. *)

val point_of_tally :
  load:float ->
  offered_rate:float ->
  throughput:float ->
  goodput:float ->
  order_violations:int ->
  info:(string * float) list ->
  Stats.Tally.t ->
  point
(** Reduce a latency tally to a sweep point (percentiles zeroed when the
    tally is empty). Exposed for runners outside this module —
    {!Rackrun} reduces rack simulations with it. *)

val run_point : config -> load:float -> point
(** Run one simulation at the given offered load. Deterministic in
    [config.seed]. *)

val sweep : config -> loads:float list -> point list
(** One point per load (ascending recommended), fresh simulation each. *)

val max_load_at_slo : config -> slo_p99:float -> ?resolution:float -> unit -> float * point
(** Bisection for the highest load whose p99 meets [slo_p99]; returns the
    load (0. when even 2% load violates) and the measured point at that
    load. Resolution defaults to 0.01 of capacity. *)
