module Sim = Engine.Sim
module Rng = Engine.Rng
module Dist = Engine.Dist

type config = {
  servers : int;
  system : Run.system_kind;
  cores : int;
  conns : int;
  service : Dist.t;
  requests : int;
  seed : int;
  rpc_packets : int;
  policy : Cluster.Policy.t;
  feedback_delay : float;
  detect : Cluster.Dispatch.detect option;
  hedge : float option;
  failplan : Cluster.Failplan.t;
  retry : Net.Loadgen.retry option;
  slo : float;
}

let config ?(servers = 4) ?(system = Run.Zygos) ?(cores = 16) ?(conns = 2752)
    ?(requests = 30_000) ?(seed = 42) ?(rpc_packets = 1) ?(feedback_delay = 0.) ?detect
    ?hedge ?(failplan = Cluster.Failplan.none) ?retry ?(slo = infinity) ~policy ~service
    () =
  (match system with
  | Run.Model_central_fcfs | Run.Model_partitioned_fcfs | Run.Ix_rebalanced _ ->
      invalid_arg "Rackrun: rack servers must be real single-ingress systems"
  | Run.Linux_partitioned | Run.Linux_floating | Run.Ix _ | Run.Zygos
  | Run.Zygos_no_interrupts | Run.Preemptive _ ->
      ());
  Option.iter Net.Loadgen.validate_retry retry;
  {
    servers;
    system;
    cores;
    conns;
    service;
    requests;
    seed;
    rpc_packets;
    policy;
    feedback_delay;
    detect;
    hedge;
    failplan;
    retry;
    slo;
  }

(* One server instance: the same construction Run.run_real_point performs,
   with the failure plan's Degraded windows applied as that server's
   straggler specs. *)
let make_server cfg sim ~pool ~i ~rng ~respond =
  let params =
    Systems.Params.with_stragglers
      (Systems.Params.with_rpc_packets
         (Systems.Params.default ~cores:cfg.cores ())
         cfg.rpc_packets)
      (Cluster.Failplan.stragglers cfg.failplan ~server:i ~cores:cfg.cores)
  in
  match cfg.system with
  | Run.Linux_partitioned ->
      Systems.Linux.partitioned sim params ~pool ~conns:cfg.conns ~respond
  | Run.Linux_floating -> Systems.Linux.floating sim params ~pool ~conns:cfg.conns ~respond
  | Run.Ix b ->
      Systems.Ix.create sim
        (Systems.Params.with_ix_batch params b)
        ~pool ~conns:cfg.conns ~respond
  | Run.Zygos -> Systems.Zygos.create sim params ~rng ~pool ~conns:cfg.conns ~respond ()
  | Run.Zygos_no_interrupts ->
      Systems.Zygos.create sim (Systems.Params.no_interrupts params) ~rng ~pool
        ~conns:cfg.conns ~respond ()
  | Run.Preemptive quantum ->
      Systems.Preemptive.create sim params ~quantum ~switch_cost:0.3 ~pool ~conns:cfg.conns
        ~respond ()
  | Run.Ix_rebalanced _ | Run.Model_central_fcfs | Run.Model_partitioned_fcfs ->
      assert false

let run cfg ~load =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:cfg.seed in
  let loadgen_rng = Rng.split rng in
  let mean = Dist.mean cfg.service in
  let rate = load *. float_of_int (cfg.cores * cfg.servers) /. mean in
  (* Never recycle slots in a rack: failover and hedge copies of a request
     (same logical id, fresh slots) can outlive its first completion. *)
  let pool = Net.Request.create_pool ~recycle:false () in
  let gen =
    Net.Loadgen.create sim ~rng:loadgen_rng ~pool ~conns:cfg.conns ~rate
      ~service:cfg.service ~slo:cfg.slo ?retry:cfg.retry ()
  in
  let measure = float_of_int cfg.requests /. rate in
  let warmup = 0.2 *. measure in
  let rack_cfg =
    Cluster.Rack.config ~servers:cfg.servers ~policy:cfg.policy
      ~feedback_delay:cfg.feedback_delay
      ~feedback_until:(warmup +. measure)
      ?detect:cfg.detect ?hedge:cfg.hedge ~failplan:cfg.failplan ()
  in
  let rack =
    Cluster.Rack.create sim rack_cfg ~rng ~pool
      ~make_server:(fun ~i ~rng ~respond -> make_server cfg sim ~pool ~i ~rng ~respond)
      ~respond:(fun req -> Net.Loadgen.complete gen req)
  in
  let iface = Cluster.Rack.iface rack in
  Net.Loadgen.set_target gen iface.Systems.Iface.submit;
  Net.Loadgen.start gen ~warmup ~measure;
  Sim.run sim;
  let client_info =
    [
      ("client_retries", float_of_int (Net.Loadgen.retries gen));
      ("client_timeouts", float_of_int (Net.Loadgen.timeouts gen));
      ("client_retry_exhausted", float_of_int (Net.Loadgen.retry_exhausted gen));
      ("duplicate_completions", float_of_int (Net.Loadgen.duplicate_completions gen));
    ]
  in
  Run.point_of_tally ~load ~offered_rate:rate ~throughput:(Net.Loadgen.throughput gen)
    ~goodput:(Net.Loadgen.goodput gen)
    ~order_violations:(Net.Loadgen.order_violations gen)
    ~info:(iface.Systems.Iface.info () @ client_info)
    (Net.Loadgen.tally gen)

(* The rack-scale centralized bound: one M/G/k FCFS queue over every core
   of every server — what a perfect single scheduler spanning the whole
   rack would achieve. *)
let central_bound cfg ~load =
  let rcfg =
    Run.config
      ~cores:(cfg.servers * cfg.cores)
      ~requests:cfg.requests ~seed:cfg.seed ~system:Run.Model_central_fcfs
      ~service:cfg.service ()
  in
  Run.run_point rcfg ~load
