(* Domain-parallel sweep runner with deterministic per-point seeds.

   A sweep point is a key (a stable human-readable path like
   "fig6/exp/10/zygos/0.80") plus a closure from a derived seed to the
   point's result. The derived seed is a pure function of (master seed,
   key) — SplitMix64 finalizer over an FNV-1a hash of the key, re-mixed
   with the master seed — so it does not depend on the enumeration
   order, the worker count, or the steal schedule. Results come back in
   enumeration order; rendering happens after the join, in the calling
   domain. Together these make parallel output byte-identical to the
   sequential run. *)

type 'a point = { key : string; run : seed:int -> 'a }

let point ~key run = { key; run }

(* SplitMix64 finalizer (same constants as Engine.Rng's mixer). *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let fnv1a64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let point_seed ~seed ~key =
  let golden_gamma = 0x9E3779B97F4A7C15L in
  let z = mix64 (Int64.add (fnv1a64 key) (Int64.mul (Int64.of_int seed) golden_gamma)) in
  (* Positive int so the seed survives printf/reparse round trips. *)
  Int64.to_int (Int64.shift_right_logical (mix64 z) 1)

(* Cumulative pool statistics across every sweep since the last reset,
   read by the benchmark harness after its targets ran. Only touched from
   the calling domain (the pool joins before returning). *)
type totals = {
  mutable sweeps : int;
  mutable points : int;
  mutable steals : int;
  mutable busy_s : float;
  mutable wall_s : float;
  mutable workers : int;  (** max workers used by any sweep *)
}
[@@zygos.owned
  "single-owner: mutated only by the calling domain, after Pool.run has joined \
   every worker"]

let totals = { sweeps = 0; points = 0; steals = 0; busy_s = 0.; wall_s = 0.; workers = 1 }

let reset_totals () =
  totals.sweeps <- 0;
  totals.points <- 0;
  totals.steals <- 0;
  totals.busy_s <- 0.;
  totals.wall_s <- 0.;
  totals.workers <- 1

let read_totals () = totals

let run_with_stats ?(jobs = 1) ~seed points =
  let tasks =
    Array.of_list
      (List.map
         (fun p ->
           let derived = point_seed ~seed ~key:p.key in
           fun () -> p.run ~seed:derived)
         points)
  in
  let results, stats = Runtime.Pool.run ~workers:jobs ~tasks in
  totals.sweeps <- totals.sweeps + 1;
  totals.points <- totals.points + stats.Runtime.Pool.points;
  totals.steals <- totals.steals + stats.Runtime.Pool.steals;
  totals.busy_s <- totals.busy_s +. Array.fold_left ( +. ) 0. stats.Runtime.Pool.busy_s;
  totals.wall_s <- totals.wall_s +. stats.Runtime.Pool.wall_s;
  totals.workers <- max totals.workers stats.Runtime.Pool.workers;
  (Array.to_list results, stats)

let run ?jobs ~seed points = fst (run_with_stats ?jobs ~seed points)
