(** Plain-text table/series rendering for the benchmark harness.

    Everything renders through one process-wide sink: stdout by default,
    or an in-memory buffer under {!capture}. Rendering always happens in
    the calling domain (figure render steps run after the sweep pool has
    joined), so the sink needs no synchronization. *)

val printf : ('a, unit, string, unit) format4 -> 'a
(** [Printf]-style formatting into the current sink. *)

val capture : (unit -> unit) -> string
(** [capture f] runs [f] with the sink redirected to a fresh buffer and
    returns everything it rendered. Restores the previous sink on exit
    (exceptions included); nests. *)

val print_header : string -> unit
(** Boxed section title. *)

val print_subheader : string -> unit

val print_table : columns:string list -> rows:string list list -> unit
(** Aligned columns; every row must have the arity of [columns]. *)

val print_sim_stats : Engine.Sim.stats -> unit
(** Table of the simulator's event-pool counters
    (scheduled/fired/cancelled/reused and pool size). *)

val pool_stats_rows : Runtime.Pool.stats -> (string * float) list
(** Sweep-pool counters as (name, value) pairs — workers, points run,
    steals, total busy seconds, wall seconds, and busy/wall speedup —
    for the benchmark trajectory file. *)

val print_pool_stats : Runtime.Pool.stats -> unit
(** Render {!pool_stats_rows} plus a per-domain busy-time table. *)

(** Minimal JSON emission (no external dependency), used by the benchmark
    harness's [--json] trajectory file. *)
module Json : sig
  val escape : string -> string

  val str : string -> string
  (** Quoted, escaped JSON string literal. *)

  val num : float -> string
  (** Decimal literal; NaN/infinity render as [null]. *)

  val obj : (string * string) list -> string
  (** Object from (key, already-rendered value) pairs. *)

  val arr : string list -> string
  (** Array of already-rendered values. *)
end

val f1 : float -> string
(** Format helpers: fixed decimals. *)

val f2 : float -> string

val f3 : float -> string

val pct : float -> string
(** 0.753 -> "75.3%". *)
