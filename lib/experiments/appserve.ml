type workload =
  | Tpcc of Silo.Tpcc.t
  | Kv of Kvstore.Workload.t * Kvstore.Store.t

type t = {
  workload : workload;
  rng : Engine.Rng.t;
  worker : Silo.Db.worker option;  (* for Tpcc *)
  clamp_at : float;  (* raw µs cap filtering host-noise artifacts *)
  scale_factor : float;  (* measured µs -> simulated µs *)
  target_mean : float;
  mutable ops : int;
}

(* zygos.allow determinism: appserve drives a live Runtime.Executor with
   real domains, so latencies here are genuine wall-clock measurements. *)
let[@zygos.allow "determinism"] now_us () = Unix.gettimeofday () *. 1e6

let execute_one workload rng worker =
  match workload with
  | Tpcc tpcc ->
      let tx = Silo.Tpcc.standard_mix rng in
      let t0 = now_us () in
      (match Silo.Tpcc.execute tpcc (Option.get worker) rng tx with
      | Silo.Tpcc.Committed | Silo.Tpcc.Rolled_back | Silo.Tpcc.Conflicted -> ());
      now_us () -. t0
  | Kv (wl, store) ->
      let cmd = Kvstore.Workload.next_command wl rng in
      let t0 = now_us () in
      ignore (Kvstore.Protocol.execute store cmd : Kvstore.Protocol.response);
      now_us () -. t0

let create ?(seed = 2026) ?(calibrate_over = 2000) ~target_mean_us workload =
  if target_mean_us < 0. then invalid_arg "Appserve.create: negative target mean";
  if calibrate_over < 1 then invalid_arg "Appserve.create: calibrate_over < 1";
  let rng = Engine.Rng.create ~seed in
  let worker =
    match workload with
    | Tpcc tpcc -> Some (Silo.Db.worker (Silo.Tpcc.db tpcc) ~id:4242)
    | Kv (wl, store) ->
        if Kvstore.Store.size store = 0 then Kvstore.Workload.populate wl store;
        None
  in
  let samples = Array.init calibrate_over (fun _ -> execute_one workload rng worker) in
  Array.sort Float.compare samples;
  (* Wall-clock measurement on a shared host picks up OCaml GC slices and
     OS scheduling noise — milliseconds-long artifacts unrelated to the
     application. The paper disabled Silo's GC for the same reason
     ("it adds experimental variability", §6.3.1); we cap raw durations at
     25x the measured median. Genuine slow transactions (Delivery is
     ~25-50x the median) sit right at that knee; artifact spikes are two
     orders of magnitude above it. *)
  let median = samples.(calibrate_over / 2) in
  let clamp_at = 25. *. Float.max 1e-3 median in
  let clamped = Array.map (fun x -> Float.min x clamp_at) samples in
  let raw_mean = Array.fold_left ( +. ) 0. clamped /. float_of_int calibrate_over in
  let scale_factor =
    if target_mean_us = 0. || raw_mean <= 0. then 1. else target_mean_us /. raw_mean
  in
  {
    workload;
    rng;
    worker;
    clamp_at;
    scale_factor;
    target_mean = (if target_mean_us = 0. then raw_mean else target_mean_us);
    ops = calibrate_over;
  }

let service_fn t ~conn =
  ignore conn;
  t.ops <- t.ops + 1;
  let raw = Float.min t.clamp_at (execute_one t.workload t.rng t.worker) in
  Float.max 0.01 (raw *. t.scale_factor)

let mean_us t = t.target_mean

let executed t = t.ops

let run_point t ~system ~load ?(cores = 16) ?(conns = 2752) ?(requests = 15_000) ?(seed = 42)
    () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let loadgen_rng = Engine.Rng.split rng in
  let system_rng = Engine.Rng.split rng in
  let rate = load *. float_of_int cores /. t.target_mean in
  (* The nominal distribution is only used for the mean; service_fn
     overrides per-request sampling. *)
  let nominal = Engine.Dist.deterministic t.target_mean in
  let pool = Net.Request.create_pool ~recycle:true () in
  let gen =
    Net.Loadgen.create sim ~rng:loadgen_rng ~pool ~conns ~rate ~service:nominal
      ~service_fn:(fun ~conn -> service_fn t ~conn)
      ()
  in
  let respond req = Net.Loadgen.complete gen req in
  let params = Systems.Params.default ~cores () in
  let iface =
    match system with
    | Run.Linux_partitioned -> Systems.Linux.partitioned sim params ~pool ~conns ~respond
    | Run.Linux_floating -> Systems.Linux.floating sim params ~pool ~conns ~respond
    | Run.Ix b ->
        Systems.Ix.create sim (Systems.Params.with_ix_batch params b) ~pool ~conns ~respond
    | Run.Zygos -> Systems.Zygos.create sim params ~rng:system_rng ~pool ~conns ~respond ()
    | Run.Zygos_no_interrupts ->
        Systems.Zygos.create sim (Systems.Params.no_interrupts params) ~rng:system_rng ~pool
          ~conns ~respond ()
    | Run.Preemptive quantum ->
        Systems.Preemptive.create sim params ~quantum ~switch_cost:0.3 ~pool ~conns ~respond
          ()
    | Run.Ix_rebalanced _ | Run.Model_central_fcfs | Run.Model_partitioned_fcfs ->
        invalid_arg "Appserve.run_point: unsupported system kind"
  in
  Net.Loadgen.set_target gen iface.Systems.Iface.submit;
  let measure = float_of_int requests /. rate in
  Net.Loadgen.start gen ~warmup:(0.2 *. measure) ~measure;
  Engine.Sim.run sim;
  let tally = Net.Loadgen.tally gen in
  let empty = Stats.Tally.is_empty tally in
  {
    Run.load;
    offered_rate = rate;
    throughput = Net.Loadgen.throughput gen;
    goodput = Net.Loadgen.goodput gen;
    mean = Stats.Tally.mean tally;
    p50 = (if empty then 0. else Stats.Tally.p50 tally);
    p99 = (if empty then 0. else Stats.Tally.p99 tally);
    p999 = (if empty then 0. else Stats.Tally.p999 tally);
    completed = Stats.Tally.count tally;
    order_violations = Net.Loadgen.order_violations gen;
    info = iface.Systems.Iface.info ();
  }
