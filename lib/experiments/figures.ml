(* Every figure is structured as enumerate -> run -> render: the figure
   enumerates its grid of independent simulation points into a pure
   [Sweep.point list], the sweep runner executes them (on [jobs] domains,
   idle domains stealing), and a sequential render step assembles the
   results in canonical enumeration order. Each point's randomness comes
   from a seed derived from [master_seed] and the point's stable key, so
   the rendered output is byte-identical for every [jobs] value. *)

module Dist = Engine.Dist

let requests ~scale base = max 4_000 (int_of_float (float_of_int base *. scale))

let cores = 16

let master_seed = 42

(* The three service-time distributions of §3.4/§6.1, at unit mean. *)
let dists_of_mean mean =
  [ Dist.deterministic mean; Dist.exponential mean; Dist.bimodal1 ~mean ]

(* Split [l] into consecutive chunks of [size] (render-side reslicing of
   the flat result list back into the enumeration's nested shape). *)
let chunks size l =
  let rec take k l acc = if k = 0 then (List.rev acc, l)
    else match l with [] -> invalid_arg "chunks: ragged" | x :: tl -> take (k - 1) tl (x :: acc)
  in
  let rec go acc = function
    | [] -> List.rev acc
    | l ->
        let c, rest = take size l [] in
        go (c :: acc) rest
  in
  go [] l

(* ---- Figure 2 ---- *)

let fig2 ~jobs ~scale =
  let open Models.Queueing in
  let specs =
    [
      { servers = cores; policy = Ps; topology = Partitioned };
      { servers = cores; policy = Fcfs; topology = Partitioned };
      { servers = cores; policy = Fcfs; topology = Central };
      { servers = cores; policy = Ps; topology = Central };
    ]
  in
  let loads = [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 0.95 ] in
  let service_mean = 1.0 in
  let dists =
    [
      Dist.deterministic service_mean;
      Dist.exponential service_mean;
      Dist.bimodal1 ~mean:service_mean;
      Dist.bimodal2 ~mean:service_mean;
    ]
  in
  let points =
    List.concat_map
      (fun dist ->
        List.concat_map
          (fun load ->
            List.map
              (fun spec ->
                Sweep.point
                  ~key:
                    (Printf.sprintf "fig2/%s/%s/%g" (Dist.name dist) (name spec) load)
                  (fun ~seed ->
                    let r =
                      simulate spec ~service:dist ~load
                        ~requests:(requests ~scale 40_000) ~seed
                    in
                    Output.f2 (Stats.Tally.p99 r.latencies)))
              specs)
          loads)
      dists
  in
  let results = Sweep.run ~jobs ~seed:master_seed points in
  Output.print_header "Figure 2: p99 latency vs load, idealized queueing models (n=16, S=1)";
  List.iter2
    (fun dist per_dist ->
      Output.print_subheader (Printf.sprintf "distribution: %s" (Dist.name dist));
      let rows =
        List.map2 (fun load cells -> Output.f2 load :: cells) loads per_dist
      in
      Output.print_table ~columns:("load" :: List.map name specs) ~rows)
    dists
    (chunks (List.length loads * List.length specs) results
    |> List.map (chunks (List.length specs)))

(* ---- Max-load-at-SLO figures (3 and 7) ---- *)

let slo_figure ~figkey ~jobs ~scale ~title ~service_means ~systems =
  let makers =
    [
      (fun m -> Dist.deterministic m);
      (fun m -> Dist.exponential m);
      (fun m -> Dist.bimodal1 ~mean:m);
    ]
  in
  let points =
    List.concat_map
      (fun make_dist ->
        List.concat_map
          (fun mean ->
            List.map
              (fun system ->
                let service = make_dist mean in
                Sweep.point
                  ~key:
                    (Printf.sprintf "%s/%s/%g/%s" figkey (Dist.name service) mean
                       (Run.system_name system))
                  (fun ~seed ->
                    let slo = 10. *. mean in
                    let cfg =
                      Run.config ~system ~service ~cores
                        ~requests:(requests ~scale 25_000) ~seed ()
                    in
                    let load, _ = Run.max_load_at_slo cfg ~slo_p99:slo ~resolution:0.02 () in
                    Output.pct load))
              systems)
          service_means)
      makers
  in
  let results = Sweep.run ~jobs ~seed:master_seed points in
  Output.print_header title;
  List.iter2
    (fun make_dist per_dist ->
      let sample = make_dist 1.0 in
      Output.print_subheader (Printf.sprintf "distribution: %s" (Dist.name sample));
      let rows =
        List.map2
          (fun mean cells -> Printf.sprintf "%g" mean :: cells)
          service_means per_dist
      in
      Output.print_table
        ~columns:("S(us)" :: List.map Run.system_name systems)
        ~rows)
    makers
    (chunks (List.length service_means * List.length systems) results
    |> List.map (chunks (List.length systems)))

let fig3 ~jobs ~scale =
  slo_figure ~figkey:"fig3" ~jobs ~scale
    ~title:"Figure 3: max load @ SLO (p99 <= 10*S) vs service time -- baselines"
    ~service_means:[ 5.; 10.; 25.; 50.; 100.; 200. ]
    ~systems:
      [
        Run.Model_central_fcfs;
        Run.Model_partitioned_fcfs;
        Run.Linux_floating;
        Run.Linux_partitioned;
        Run.Ix 1;
      ]

let fig7 ~jobs ~scale =
  slo_figure ~figkey:"fig7" ~jobs ~scale
    ~title:"Figure 7: max load @ SLO (p99 <= 10*S) vs service time -- with ZygOS"
    ~service_means:[ 2.; 5.; 10.; 15.; 20.; 30.; 40.; 50. ]
    ~systems:
      [
        Run.Model_central_fcfs;
        Run.Model_partitioned_fcfs;
        Run.Zygos;
        Run.Linux_floating;
        Run.Linux_partitioned;
        Run.Ix 1;
      ]

(* ---- Load-sweep figures (6, 9, 10b): shared enumerate + render ---- *)

let sweep_points ~figkey ~scale ~service ~systems ~loads ?(rpc_packets = 1) () =
  List.concat_map
    (fun system ->
      List.map
        (fun load ->
          Sweep.point
            ~key:(Printf.sprintf "%s/%s/%g" figkey (Run.system_name system) load)
            (fun ~seed ->
              let cfg =
                Run.config ~system ~service ~cores ~requests:(requests ~scale 25_000)
                  ~rpc_packets ~seed ()
              in
              (system, load, Run.run_point cfg ~load)))
        loads)
    systems

let sweep_render ~slo all =
  let rows =
    List.map
      (fun (system, load, (p : Run.point)) ->
        [
          Run.system_name system;
          Output.f2 load;
          Output.f3 p.throughput;
          Output.f1 p.p99;
          (if p.p99 <= slo then "meets" else "violates");
        ])
      all
  in
  Output.print_table
    ~columns:[ "system"; "load"; "tput(MRPS)"; "p99(us)"; Printf.sprintf "SLO %.0fus" slo ]
    ~rows

let fig6 ~jobs ~scale =
  let loads = [ 0.2; 0.35; 0.5; 0.6; 0.7; 0.8; 0.85; 0.9; 0.95 ] in
  let systems =
    [ Run.Model_central_fcfs; Run.Linux_floating; Run.Ix 1; Run.Zygos; Run.Zygos_no_interrupts ]
  in
  let groups =
    List.concat_map
      (fun mean ->
        List.map
          (fun service ->
            let figkey = Printf.sprintf "fig6/%s/%g" (Dist.name service) mean in
            ( Printf.sprintf "%s, S = %gus" (Dist.name service) mean,
              10. *. mean,
              sweep_points ~figkey ~scale ~service ~systems ~loads () ))
          (dists_of_mean mean))
      [ 10.; 25. ]
  in
  let results =
    Sweep.run ~jobs ~seed:master_seed (List.concat_map (fun (_, _, pts) -> pts) groups)
  in
  Output.print_header
    "Figure 6: p99 latency vs throughput (SLO = 10*S), three distributions x {10us, 25us}";
  List.iter2
    (fun (title, slo, _) group_results ->
      Output.print_subheader title;
      sweep_render ~slo group_results)
    groups
    (chunks (List.length systems * List.length loads) results)

(* ---- Figure 8 ---- *)

let fig8 ~jobs ~scale =
  let service = Dist.exponential 25. in
  let loads = [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.77; 0.85; 0.9; 0.95 ] in
  let points =
    List.concat_map
      (fun system ->
        List.map
          (fun load ->
            Sweep.point
              ~key:(Printf.sprintf "fig8/%s/%g" (Run.system_name system) load)
              (fun ~seed ->
                let cfg =
                  Run.config ~system ~service ~cores ~requests:(requests ~scale 25_000)
                    ~seed ()
                in
                let p = Run.run_point cfg ~load in
                let get key = Option.value ~default:0. (Run.info_value p key) in
                let events = get "local_events" +. get "stolen_events" in
                let ipis_per_event = if events = 0. then 0. else get "ipis_sent" /. events in
                [
                  Run.system_name system;
                  Output.f2 load;
                  Output.f3 p.Run.throughput;
                  Output.pct (get "steal_fraction");
                  Output.f3 ipis_per_event;
                ]))
          loads)
      [ Run.Zygos; Run.Zygos_no_interrupts ]
  in
  let rows = Sweep.run ~jobs ~seed:master_seed points in
  Output.print_header "Figure 8: steal rate vs throughput (exponential, S = 25us)";
  Output.print_table
    ~columns:[ "system"; "load"; "tput(MRPS)"; "steals/event"; "IPIs/event" ]
    ~rows

(* ---- Figure 9 ---- *)

let fig9 ~jobs ~scale =
  let kinds = [ Kvstore.Workload.Etc; Kvstore.Workload.Usr ] in
  (* For sub-2µs tasks the per-request overheads dominate: real systems
     saturate at 30–60% of the zero-overhead capacity, so the sweep
     covers the low-load range (the paper's Fig. 9 x-axis is absolute
     MRPS for the same reason). *)
  let loads = [ 0.05; 0.1; 0.15; 0.2; 0.25; 0.3; 0.35; 0.4; 0.45; 0.5; 0.55; 0.6 ] in
  let systems = [ Run.Linux_floating; Run.Ix 1; Run.Ix 64; Run.Zygos ] in
  let groups =
    List.map
      (fun kind ->
        let wl = Kvstore.Workload.create kind in
        let service = Kvstore.Workload.service_dist wl ~samples:20_000 in
        let figkey = Printf.sprintf "fig9/%s" (Kvstore.Workload.name kind) in
        (kind, service, sweep_points ~figkey ~scale ~service ~systems ~loads ()))
      kinds
  in
  let results =
    Sweep.run ~jobs ~seed:master_seed (List.concat_map (fun (_, _, pts) -> pts) groups)
  in
  Output.print_header "Figure 9: memcached ETC and USR (SLO 500us at p99)";
  List.iter2
    (fun (kind, service, _) group_results ->
      Output.print_subheader
        (Printf.sprintf "%s: mean task %.2fus, GET fraction %.1f%%"
           (Kvstore.Workload.name kind) (Dist.mean service)
           (100. *. Kvstore.Workload.get_fraction kind));
      sweep_render ~slo:500. group_results)
    groups
    (chunks (List.length systems * List.length loads) results)

(* ---- Silo / TPC-C (Figures 10a, 10b, Table 1) ---- *)

let paper_silo_mean_us = 33.

type silo_run = {
  samples : float array;  (* normalized service times, µs *)
  by_type : (string * float array) list;
  raw_mean : float;  (* measured mean on this machine, µs *)
}

let silo_run_memo : (float * silo_run) option ref = ref None

(* zygos.allow determinism: fig10a is the one real-time measurement in the
   suite — it times actual Silo/TPC-C executions on this machine, so the
   wall clock is the measurement, not simulation state. *)
let[@zygos.allow "determinism"] run_silo ~scale =
  match !silo_run_memo with
  | Some (s, run) when s >= scale -> run
  | _ ->
      let tpcc = Silo.Tpcc.load () in
      let worker = Silo.Db.worker (Silo.Tpcc.db tpcc) ~id:0 in
      let rng = Engine.Rng.create ~seed:1234 in
      let n = requests ~scale 30_000 in
      let all = Stats.Tally.create () in
      let per_type = Hashtbl.create 8 in
      for _ = 1 to n do
        let tx = Silo.Tpcc.standard_mix rng in
        let t0 = Unix.gettimeofday () in
        (match Silo.Tpcc.execute tpcc worker rng tx with
        | Silo.Tpcc.Committed | Silo.Tpcc.Rolled_back | Silo.Tpcc.Conflicted -> ());
        let us = (Unix.gettimeofday () -. t0) *. 1e6 in
        Stats.Tally.record all us;
        let tally =
          match Hashtbl.find_opt per_type (Silo.Tpcc.tx_name tx) with
          | Some t -> t
          | None ->
              let t = Stats.Tally.create () in
              Hashtbl.add per_type (Silo.Tpcc.tx_name tx) t;
              t
        in
        Stats.Tally.record tally us
      done;
      let raw_mean = Stats.Tally.mean all in
      (* Normalize to the paper's 33µs mean service time so the 1000µs SLO
         of §6.3 carries over directly; the *shape* is as measured. *)
      let k = paper_silo_mean_us /. raw_mean in
      let normalize tally = Array.map (fun x -> x *. k) (Stats.Tally.samples tally) in
      let run =
        {
          samples = normalize all;
          by_type =
            Hashtbl.fold (fun name tally acc -> (name, normalize tally) :: acc) per_type [];
          raw_mean;
        }
      in
      silo_run_memo := Some (scale, run);
      run

let silo_service_samples ~scale = (run_silo ~scale).samples

let fig10a ~jobs ~scale =
  (* One real-time measured execution, not a simulation grid: nothing to
     parallelize, and the Unix.gettimeofday timings would not be
     deterministic anyway. *)
  ignore (jobs : int);
  Output.print_header "Figure 10a: CCDF of Silo/TPC-C service time (real execution)";
  let run = run_silo ~scale in
  Output.printf
    "measured mean on this machine: %.1fus; samples normalized to the paper's %.0fus mean\n"
    run.raw_mean paper_silo_mean_us;
  let pct_of samples p =
    let t = Stats.Tally.create () in
    Array.iter (Stats.Tally.record t) samples;
    Stats.Tally.percentile t p
  in
  let rows =
    List.map
      (fun (name, samples) ->
        [
          name;
          string_of_int (Array.length samples);
          Output.f1 (Array.fold_left ( +. ) 0. samples /. float_of_int (Array.length samples));
          Output.f1 (pct_of samples 50.);
          Output.f1 (pct_of samples 90.);
          Output.f1 (pct_of samples 99.);
          Output.f1 (pct_of samples 99.9);
        ])
      (("Mix", run.samples)
      :: List.sort (fun (a, _) (b, _) -> String.compare a b) run.by_type)
  in
  Output.print_table
    ~columns:[ "transaction"; "count"; "mean"; "p50"; "p90"; "p99"; "p99.9" ]
    ~rows;
  Output.print_subheader "Mix CCDF (service time us, P[X > x])";
  let points = Stats.Ccdf.of_samples ~points:14 run.samples in
  Output.print_table
    ~columns:[ "x(us)"; "P[X>x]" ]
    ~rows:
      (List.map
         (fun { Stats.Ccdf.value; prob } -> [ Output.f1 value; Printf.sprintf "%.4f" prob ])
         points)

let silo_systems = [ Run.Linux_floating; Run.Ix 1; Run.Zygos ]

let silo_slo = 1000.

(* TPC-C requests/responses exceed one MTU; model them as 3 packets each
   way (the per-packet costs multiply; see EXPERIMENTS.md §Calibration). *)
let silo_rpc_packets = 3

let fig10b ~jobs ~scale =
  let service = Dist.empirical (silo_service_samples ~scale) in
  let loads = [ 0.2; 0.35; 0.5; 0.6; 0.7; 0.8; 0.85; 0.9; 0.95 ] in
  let points =
    sweep_points ~figkey:"fig10b" ~scale ~service ~systems:silo_systems ~loads
      ~rpc_packets:silo_rpc_packets ()
  in
  let results = Sweep.run ~jobs ~seed:master_seed points in
  Output.print_header
    "Figure 10b: Silo/TPC-C p99 end-to-end latency vs throughput (SLO 1000us)";
  sweep_render ~slo:silo_slo results

let table1 ~jobs ~scale =
  let service = Dist.empirical (silo_service_samples ~scale) in
  let service_p99 =
    let t = Stats.Tally.create () in
    Array.iter (Stats.Tally.record t) (silo_service_samples ~scale);
    Stats.Tally.p99 t
  in
  let slo5 = 5. *. service_p99 in
  let capacity = float_of_int cores /. Dist.mean service in
  (* One point per system: the 1000µs bisection, the three tail probes at
     fractions of the max load, and the 5×p99 bisection — all under the
     same derived seed so the table is one coherent experiment. *)
  let points =
    List.map
      (fun system ->
        Sweep.point
          ~key:(Printf.sprintf "table1/%s" (Run.system_name system))
          (fun ~seed ->
            let cfg =
              Run.config ~system ~service ~cores ~requests:(requests ~scale 25_000)
                ~rpc_packets:silo_rpc_packets ~seed ()
            in
            let max_load, point = Run.max_load_at_slo cfg ~slo_p99:silo_slo ~resolution:0.02 () in
            let tail_at frac =
              let p = Run.run_point cfg ~load:(max_load *. frac) in
              Printf.sprintf "%.0fus (%.1fx) @%.0f KTPS" p.Run.p99 (p.Run.p99 /. service_p99)
                (1000. *. p.Run.throughput)
            in
            let tails = (tail_at 0.5, tail_at 0.75, tail_at 0.9) in
            let _, point5 = Run.max_load_at_slo cfg ~slo_p99:slo5 ~resolution:0.02 () in
            (point.Run.throughput, tails, point5.Run.throughput)))
      silo_systems
  in
  let results = Sweep.run ~jobs ~seed:master_seed points in
  Output.print_header
    "Table 1: Silo/TPC-C max load @ 1000us SLO and tails at 50/75/90% of max";
  let linux_tput =
    match results with (tput, _, _) :: _ -> tput | [] -> assert false
  in
  let rows =
    List.map2
      (fun system (tput, (t50, t75, t90), _) ->
        [
          Run.system_name system;
          Printf.sprintf "%.0f KTPS" (1000. *. tput);
          Printf.sprintf "%.2fx" (tput /. linux_tput);
          t50;
          t75;
          t90;
        ])
      silo_systems results
  in
  Output.printf "zero-overhead capacity: %.0f KTPS; service p99 = %.0fus\n"
    (1000. *. capacity) service_p99;
  Output.print_table
    ~columns:[ "system"; "max load@SLO"; "speedup"; "tail@50%"; "tail@75%"; "tail@90%" ]
    ~rows;
  (* Our measured TPC-C service tail is heavier than the paper's (p99 here
     vs 203µs there), so the fixed 1000µs SLO is a much tighter multiple of
     p99 (2.7x vs the paper's ~5x) — which is the §7 tradeoff. Also report
     max load at the paper's SLO-to-tail ratio. *)
  Output.print_subheader
    (Printf.sprintf "same experiment at the paper's SLO-to-tail ratio (SLO = 5 x p99 = %.0fus)"
       slo5);
  let rows5 =
    List.map2
      (fun system (_, _, tput5) ->
        [ Run.system_name system; Printf.sprintf "%.0f KTPS" (1000. *. tput5) ])
      silo_systems results
  in
  Output.print_table ~columns:[ "system"; "max load@5xp99" ] ~rows:rows5

(* ---- Figure 11 ---- *)

let fig11 ~jobs ~scale =
  let service = Dist.deterministic 10. in
  let loads = [ 0.3; 0.5; 0.65; 0.8; 0.85; 0.9; 0.93; 0.95; 0.97 ] in
  let systems = [ Run.Ix 64; Run.Ix 1; Run.Zygos ] in
  let sweep_pts =
    List.concat_map
      (fun system ->
        List.map
          (fun load ->
            Sweep.point
              ~key:(Printf.sprintf "fig11/%s/%g" (Run.system_name system) load)
              (fun ~seed ->
                let cfg =
                  Run.config ~system ~service ~cores ~requests:(requests ~scale 25_000)
                    ~seed ()
                in
                (system, Run.run_point cfg ~load)))
          loads)
      systems
  in
  let best_pts =
    List.map
      (fun system ->
        Sweep.point
          ~key:(Printf.sprintf "fig11/best/%s" (Run.system_name system))
          (fun ~seed ->
            let cfg =
              Run.config ~system ~service ~cores ~requests:(requests ~scale 25_000) ~seed ()
            in
            let best slo =
              let _, p = Run.max_load_at_slo cfg ~slo_p99:slo ~resolution:0.02 () in
              Output.f3 p.Run.throughput
            in
            [ Run.system_name system; best 100.; best 1000. ]))
      systems
  in
  let n_sweep = List.length sweep_pts in
  let all =
    Sweep.run ~jobs ~seed:master_seed
      (List.map (fun p -> Sweep.point ~key:p.Sweep.key (fun ~seed -> `Point (p.Sweep.run ~seed))) sweep_pts
      @ List.map (fun p -> Sweep.point ~key:p.Sweep.key (fun ~seed -> `Row (p.Sweep.run ~seed))) best_pts)
  in
  let sweep_results =
    List.filteri (fun i _ -> i < n_sweep) all
    |> List.map (function `Point x -> x | `Row _ -> assert false)
  in
  let best_rows =
    List.filteri (fun i _ -> i >= n_sweep) all
    |> List.map (function `Row x -> x | `Point _ -> assert false)
  in
  Output.print_header
    "Figure 11: SLO choice (100us vs 1000us), fixed 10us tasks -- IX B=1, IX B=64, ZygOS";
  Output.print_table
    ~columns:[ "system"; "load"; "tput(MRPS)"; "p99(us)"; "SLO 100us"; "SLO 1000us" ]
    ~rows:
      (List.map
         (fun (system, (p : Run.point)) ->
           [
             Run.system_name system;
             Output.f2 p.Run.load;
             Output.f3 p.Run.throughput;
             Output.f1 p.Run.p99;
             (if p.Run.p99 <= 100. then "meets" else "violates");
             (if p.Run.p99 <= 1000. then "meets" else "violates");
           ])
         sweep_results);
  Output.print_subheader "max throughput under each SLO";
  Output.print_table ~columns:[ "system"; "MRPS @100us"; "MRPS @1000us" ] ~rows:best_rows

(* ---- Ablations (DESIGN.md §5) ---- *)

let ablate_poll ~jobs ~scale =
  let service = Dist.exponential 10. in
  let loads = [ 0.5; 0.7; 0.8; 0.85; 0.9 ] in
  let point_for ~random load =
    Sweep.point
      ~key:
        (Printf.sprintf "ablate-poll/%s/%g" (if random then "random" else "rr") load)
      (fun ~seed ->
        let sim = Engine.Sim.create () in
        let rng = Engine.Rng.create ~seed in
        let loadgen_rng = Engine.Rng.split rng in
        let system_rng = Engine.Rng.split rng in
        let rate = load *. float_of_int cores /. Dist.mean service in
        let pool = Net.Request.create_pool ~recycle:true () in
        let gen =
          Net.Loadgen.create sim ~rng:loadgen_rng ~pool ~conns:2752 ~rate ~service ()
        in
        let params = { (Systems.Params.default ~cores ()) with zy_poll_random = random } in
        let system =
          Systems.Zygos.create sim params ~rng:system_rng ~pool ~conns:2752
            ~respond:(fun req -> Net.Loadgen.complete gen req)
            ()
        in
        Net.Loadgen.set_target gen system.Systems.Iface.submit;
        let measure = float_of_int (requests ~scale 25_000) /. rate in
        Net.Loadgen.start gen ~warmup:(0.2 *. measure) ~measure;
        Engine.Sim.run sim;
        Stats.Tally.p99 (Net.Loadgen.tally gen))
  in
  let points =
    List.map (point_for ~random:true) loads @ List.map (point_for ~random:false) loads
  in
  let results = Sweep.run ~jobs ~seed:master_seed points in
  let random, rr = chunks (List.length loads) results |> function
    | [ a; b ] -> (a, b)
    | _ -> assert false
  in
  Output.print_header "Ablation: randomized vs round-robin steal-victim order (exp, 10us)";
  Output.print_table
    ~columns:[ "load"; "p99 randomized"; "p99 round-robin" ]
    ~rows:
      (List.map2
         (fun load (a, b) -> [ Output.f2 load; Output.f1 a; Output.f1 b ])
         loads
         (List.combine random rr))

let ablate_batch ~jobs ~scale =
  let service = Dist.deterministic 10. in
  let loads = [ 0.5; 0.7; 0.85; 0.93 ] in
  let points =
    List.concat_map
      (fun b ->
        List.map
          (fun load ->
            Sweep.point
              ~key:(Printf.sprintf "ablate-batch/b%d/%g" b load)
              (fun ~seed ->
                let cfg =
                  Run.config ~system:(Run.Ix b) ~service ~cores
                    ~requests:(requests ~scale 20_000) ~seed ()
                in
                let p = Run.run_point cfg ~load in
                [ Printf.sprintf "B=%d" b; Output.f2 load; Output.f3 p.Run.throughput;
                  Output.f1 p.Run.p99 ]))
          loads)
      [ 1; 2; 8; 64 ]
  in
  let rows = Sweep.run ~jobs ~seed:master_seed points in
  Output.print_header "Ablation: IX bounded-batching B sweep (fixed 10us tasks)";
  Output.print_table ~columns:[ "batch"; "load"; "tput(MRPS)"; "p99(us)" ] ~rows

(* Extension (paper §2.3 Observation 2 / §7): FCFS is tail-optimal only
   for low dispersion. A preemptive centralized scheduler — the design
   direction of the follow-up Shinjuku line — recovers the PS advantage on
   bimodal-2 at the price of context-switch overhead on benign
   workloads. *)
let ext_preempt ~jobs ~scale =
  let systems = [ Run.Ix 1; Run.Zygos; Run.Preemptive 5.; Run.Preemptive 1. ] in
  let cases =
    [
      ("bimodal-2 (0.1% of requests are 500x the mean)", Dist.bimodal2 ~mean:10.);
      ("deterministic (preemption cannot help, only cost)", Dist.deterministic 10.);
    ]
  in
  let loads = [ 0.3; 0.5; 0.7 ] in
  let points =
    List.concat_map
      (fun (_, service) ->
        List.concat_map
          (fun system ->
            List.map
              (fun load ->
                Sweep.point
                  ~key:
                    (Printf.sprintf "ext-preempt/%s/%s/%g" (Dist.name service)
                       (Run.system_name system) load)
                  (fun ~seed ->
                    let cfg =
                      Run.config ~system ~service ~cores ~requests:(requests ~scale 25_000)
                        ~seed ()
                    in
                    let p = Run.run_point cfg ~load in
                    let preemptions =
                      Option.value ~default:0. (Run.info_value p "preemptions_per_request")
                    in
                    [
                      Run.system_name system;
                      Output.f2 load;
                      Output.f1 p.Run.p99;
                      Output.f1 p.Run.p50;
                      Output.f2 preemptions;
                    ]))
              loads)
          systems)
      cases
  in
  let results = Sweep.run ~jobs ~seed:master_seed points in
  Output.print_header
    "Extension: preemptive scheduling vs FCFS under extreme dispersion (S = 10us)";
  List.iter2
    (fun (label, _) rows ->
      Output.print_subheader label;
      Output.print_table
        ~columns:[ "system"; "load"; "p99(us)"; "p50(us)"; "preempts/req" ]
        ~rows)
    cases
    (chunks (List.length systems * List.length loads) results)

(* Extension (§5): RSS-reprogramming control plane against persistent
   connection skew, vs static IX (suffers) and ZygOS (stealing absorbs
   it). *)
let ext_rebalance ~jobs ~scale =
  let service = Dist.exponential 10. in
  let selection = Net.Loadgen.Hot_cold { hot_fraction = 0.05; hot_load = 0.5 } in
  let systems = [ Run.Ix 1; Run.Ix_rebalanced 200.; Run.Zygos ] in
  let points =
    List.concat_map
      (fun system ->
        List.map
          (fun load ->
            Sweep.point
              ~key:(Printf.sprintf "ext-rebalance/%s/%g" (Run.system_name system) load)
              (fun ~seed ->
                let cfg =
                  Run.config ~system ~service ~cores ~requests:(requests ~scale 25_000)
                    ~selection ~seed ()
                in
                let p = Run.run_point cfg ~load in
                let moves =
                  Option.value ~default:0. (Run.info_value p "rebalance_moves")
                in
                [
                  Run.system_name system;
                  Output.f2 load;
                  Output.f1 p.Run.p99;
                  Output.f3 p.Run.throughput;
                  string_of_int (int_of_float moves);
                  string_of_int p.Run.order_violations;
                ]))
          [ 0.3; 0.5; 0.65; 0.8 ])
      systems
  in
  let rows = Sweep.run ~jobs ~seed:master_seed points in
  Output.print_header
    "Extension: RSS control plane under persistent connection skew (exp, S = 10us)";
  Output.printf
    "skew: 5%% of connections carry 50%% of the load; rebalance window 200us\n";
  Output.print_table
    ~columns:[ "system"; "load"; "p99(us)"; "tput(MRPS)"; "slot moves"; "order violations" ]
    ~rows

(* Extension (§5): workload consolidation — the IX control plane's energy
   proportionality function, on the centralized preemptive system where
   core parking is safe. *)
let ext_consolidate ~jobs ~scale =
  let service = Dist.exponential 10. in
  let loads = [ 0.1; 0.2; 0.35; 0.5; 0.7; 0.85 ] in
  let run_one ~seed ~consolidate ~load =
    let sim = Engine.Sim.create () in
    let rng = Engine.Rng.create ~seed in
    let loadgen_rng = Engine.Rng.split rng in
    let rate = load *. float_of_int cores /. Dist.mean service in
    let pool = Net.Request.create_pool ~recycle:true () in
    let gen =
      Net.Loadgen.create sim ~rng:loadgen_rng ~pool ~conns:2752 ~rate ~service ()
    in
    let params = Systems.Params.default ~cores () in
    let consolidate =
      if consolidate then Some Systems.Preemptive.default_consolidation else None
    in
    let system =
      Systems.Preemptive.create sim params ~quantum:10. ~switch_cost:0.3 ~pool ~conns:2752
        ~respond:(fun req -> Net.Loadgen.complete gen req)
        ?consolidate ()
    in
    Net.Loadgen.set_target gen system.Systems.Iface.submit;
    let measure = float_of_int (requests ~scale 25_000) /. rate in
    Net.Loadgen.start gen ~warmup:(0.2 *. measure) ~measure;
    Engine.Sim.run sim;
    let p99 = Stats.Tally.p99 (Net.Loadgen.tally gen) in
    let avg_cores =
      Option.value ~default:(float_of_int cores)
        (Systems.Iface.info_value system "avg_active_cores")
    in
    (p99, avg_cores)
  in
  let points =
    List.concat_map
      (fun consolidate ->
        List.map
          (fun load ->
            Sweep.point
              ~key:
                (Printf.sprintf "ext-consolidate/%s/%g"
                   (if consolidate then "on" else "off")
                   load)
              (fun ~seed -> run_one ~seed ~consolidate ~load))
          loads)
      [ false; true ]
  in
  let results = Sweep.run ~jobs ~seed:master_seed points in
  let statics, conss =
    chunks (List.length loads) results |> function [ a; b ] -> (a, b) | _ -> assert false
  in
  Output.print_header
    "Extension: workload consolidation (core parking) vs static 16 cores (exp, S = 10us)";
  let rows =
    List.map2
      (fun load ((static_p99, _), (cons_p99, avg)) ->
        [ Output.f2 load; Output.f1 static_p99; Output.f1 cons_p99; Output.f1 avg ])
      loads (List.combine statics conss)
  in
  Output.print_table
    ~columns:[ "load"; "p99 static(us)"; "p99 consolidated(us)"; "avg active cores" ]
    ~rows

(* Chaos: the robustness experiment — degradation curves under injected
   network faults, a straggler core, and retry storms past saturation,
   for the three main systems. Goodput (distinct requests completed
   within the SLO) is the headline metric; raw p99 rides along. *)
let chaos ~jobs ~scale =
  let service = Dist.exponential 10. in
  let slo = 100. in
  let systems = [ Run.Linux_floating; Run.Ix 1; Run.Zygos ] in
  let req = requests ~scale 20_000 in
  Output.print_header
    "Chaos: degradation under faults & overload (exp, S = 10us, SLO = 100us)";
  (* (a) lossy network x offered load, client retries recovering losses *)
  let retry = Net.Loadgen.retry ~timeout:300. () in
  let points_a =
    List.concat_map
      (fun system ->
        List.concat_map
          (fun fr ->
            List.map
              (fun load ->
                Sweep.point
                  ~key:
                    (Printf.sprintf "chaos/lossy/%s/%g/%g" (Run.system_name system) fr load)
                  (fun ~seed ->
                    let faults =
                      if fr = 0. then None
                      else Some (Net.Faults.plan ~drop:fr ~duplicate:(fr /. 2.) ~reorder:fr ())
                    in
                    let cfg =
                      Run.config ~system ~service ~cores ~requests:req ~retry ~slo ~seed
                        ?faults ()
                    in
                    let p = Run.run_point cfg ~load in
                    let get key = Option.value ~default:0. (Run.info_value p key) in
                    [
                      Run.system_name system;
                      Output.f3 fr;
                      Output.f2 load;
                      Output.f3 p.Run.goodput;
                      Output.f1 p.Run.p99;
                      string_of_int (int_of_float (get "fault_drops"));
                      string_of_int (int_of_float (get "client_retries"));
                    ]))
              [ 0.3; 0.6; 0.8 ])
          [ 0.; 0.01; 0.05 ])
      systems
  in
  let rows = Sweep.run ~jobs ~seed:master_seed points_a in
  Output.print_subheader "lossy network x offered load (client retries on)";
  Output.print_table
    ~columns:
      [ "system"; "fault rate"; "load"; "goodput(MRPS)"; "p99(us)"; "drops"; "retries" ]
    ~rows;
  (* (b) straggler core: ZygOS steals around it, IX cannot *)
  let points_b =
    List.map
      (fun system ->
        Sweep.point
          ~key:(Printf.sprintf "chaos/straggler/%s" (Run.system_name system))
          (fun ~seed ->
            let base_cfg = Run.config ~system ~service ~cores ~requests:req ~seed () in
            let base = Run.run_point base_cfg ~load:0.7 in
            let rate = 0.7 *. float_of_int cores /. Dist.mean service in
            let measure = float_of_int req /. rate in
            let stragglers =
              [
                Core.Corefault.
                  { core = 0; start = 0.2 *. measure; duration = 0.25 *. measure; slowdown = 10. };
              ]
            in
            let cfg = Run.config ~system ~service ~cores ~requests:req ~stragglers ~seed () in
            let p = Run.run_point cfg ~load:0.7 in
            [
              Run.system_name system;
              Output.f1 base.Run.p99;
              Output.f1 p.Run.p99;
              Output.f2 (p.Run.p99 /. Float.max 1e-9 base.Run.p99);
            ]))
      systems
  in
  let rows = Sweep.run ~jobs ~seed:master_seed points_b in
  Output.print_subheader "straggler core (core 0 at 10x for 25% of the run, load 0.7)";
  Output.print_table
    ~columns:[ "system"; "p99 clean(us)"; "p99 straggler(us)"; "degradation" ]
    ~rows;
  (* (c) retry storm past saturation: load shedding keeps goodput alive *)
  let retry = Net.Loadgen.retry ~timeout:200. ~max_retries:4 () in
  let points_c =
    List.concat_map
      (fun (label, shed) ->
        List.map
          (fun load ->
            Sweep.point
              ~key:(Printf.sprintf "chaos/storm/%s/%g" label load)
              (fun ~seed ->
                let cfg =
                  Run.config ~system:(Run.Ix 1) ~service ~cores ~requests:req ~retry ~slo
                    ~shed ~seed ()
                in
                let p = Run.run_point cfg ~load in
                let get key = Option.value ~default:0. (Run.info_value p key) in
                [
                  label;
                  Output.f2 load;
                  Output.f3 p.Run.goodput;
                  Output.f3 p.Run.throughput;
                  Output.f1 p.Run.p99;
                  string_of_int (int_of_float (get "shed"));
                ]))
          [ 0.8; 0.95; 1.1; 1.3 ])
      [
        ("no-shed", Systems.Overload.No_shed);
        ("queue-len", Systems.Overload.Queue_length (8 * cores));
      ]
  in
  let rows = Sweep.run ~jobs ~seed:master_seed points_c in
  Output.print_subheader
    "overload + retries: shedding (queue bound 8/core) vs none, ix";
  Output.print_table
    ~columns:[ "policy"; "load"; "goodput(MRPS)"; "tput(MRPS)"; "p99(us)"; "shed" ]
    ~rows

(* Rack-scale two-level scheduling (RackSched over our single-server
   models): N servers behind a ToR dispatcher, compared against the
   rack-wide M/G/(N*cores) centralized bound, under estimate staleness
   and injected server failures. *)
let rack ~jobs ~scale =
  let servers = 4 in
  let service = Dist.exponential 10. in
  let req = requests ~scale 20_000 in
  let policies =
    Cluster.Policy.[ Static_hash; Random; Po2; Jsq; Jbsq 32 ]
  in
  let pname = Cluster.Policy.name in
  let rcfg ?(policy = Cluster.Policy.Jsq) ?feedback_delay ?detect ?hedge ?failplan ?slo
      ~seed () =
    Rackrun.config ~servers ~system:Run.Zygos ~cores ~requests:req ~seed ?feedback_delay
      ?detect ?hedge ?failplan ?slo ~policy ~service ()
  in
  Output.print_header
    (Printf.sprintf
       "Rack: %d x zygos-16 behind a ToR dispatcher (exp, S = 10us) vs M/G/%d bound"
       servers (servers * cores));
  (* (a) inter-server policy x load, 5us-stale estimates *)
  let loads_a = [ 0.3; 0.5; 0.7; 0.85; 0.95 ] in
  let points_a =
    List.concat_map
      (fun policy ->
        List.map
          (fun load ->
            Sweep.point
              ~key:(Printf.sprintf "rack/policy/%s/%g" (pname policy) load)
              (fun ~seed ->
                let p = Rackrun.run (rcfg ~policy ~feedback_delay:5. ~seed ()) ~load in
                [
                  pname policy;
                  Output.f2 load;
                  Output.f3 p.Run.throughput;
                  Output.f1 p.Run.p99;
                  Output.f1 p.Run.p999;
                ]))
          loads_a)
      policies
    @ List.map
        (fun load ->
          Sweep.point
            ~key:(Printf.sprintf "rack/bound/%g" load)
            (fun ~seed ->
              let p = Rackrun.central_bound (rcfg ~seed ()) ~load in
              [
                "central-bound";
                Output.f2 load;
                Output.f3 p.Run.throughput;
                Output.f1 p.Run.p99;
                Output.f1 p.Run.p999;
              ]))
        loads_a
  in
  let rows = Sweep.run ~jobs ~seed:master_seed points_a in
  Output.print_subheader "policy x load (5us feedback delay)";
  Output.print_table
    ~columns:[ "policy"; "load"; "tput(MRPS)"; "p99(us)"; "p999(us)" ]
    ~rows;
  (* (b) estimate staleness at fixed load: queue-aware policies degrade
     as feedback lags; jbsq's credit gate keeps the bound exact *)
  let points_b =
    List.concat_map
      (fun policy ->
        List.map
          (fun delay ->
            Sweep.point
              ~key:(Printf.sprintf "rack/stale/%s/%g" (pname policy) delay)
              (fun ~seed ->
                let p = Rackrun.run (rcfg ~policy ~feedback_delay:delay ~seed ()) ~load:0.85 in
                [ pname policy; Output.f1 delay; Output.f1 p.Run.p99; Output.f1 p.Run.p999 ]))
          [ 0.; 5.; 25.; 100. ])
      Cluster.Policy.[ Po2; Jsq; Jbsq 32 ]
  in
  let rows = Sweep.run ~jobs ~seed:master_seed points_b in
  Output.print_subheader "estimate staleness x policy (load 0.85)";
  Output.print_table ~columns:[ "policy"; "delay(us)"; "p99(us)"; "p999(us)" ] ~rows;
  (* (c) one degraded server: queue-aware policies route around the
     rack-scale straggler that static hashing keeps feeding *)
  let points_c =
    List.map
      (fun policy ->
        Sweep.point
          ~key:(Printf.sprintf "rack/degraded/%s" (pname policy))
          (fun ~seed ->
            let load = 0.6 in
            let rate = load *. float_of_int (servers * cores) /. Dist.mean service in
            let measure = float_of_int req /. rate in
            let clean = Rackrun.run (rcfg ~policy ~feedback_delay:5. ~seed ()) ~load in
            let failplan =
              [
                Cluster.Failplan.Degraded
                  {
                    server = 0;
                    slowdown = 10.;
                    start = 0.2 *. measure;
                    duration = 0.25 *. measure;
                  };
              ]
            in
            let p = Rackrun.run (rcfg ~policy ~feedback_delay:5. ~failplan ~seed ()) ~load in
            [
              pname policy;
              Output.f1 clean.Run.p99;
              Output.f1 p.Run.p99;
              Output.f2 (p.Run.p99 /. Float.max 1e-9 clean.Run.p99);
            ]))
      policies
  in
  let rows = Sweep.run ~jobs ~seed:master_seed points_c in
  Output.print_subheader
    "one degraded server (server 0 at 10x for 25% of the run, load 0.6)";
  Output.print_table
    ~columns:[ "policy"; "p99 clean(us)"; "p99 degraded(us)"; "degradation" ]
    ~rows;
  (* (d) server crash: timeout detection + failover re-dispatch recover
     the goodput a crash window would otherwise swallow *)
  let detect =
    Cluster.Dispatch.
      {
        retry = Net.Loadgen.retry ~timeout:300. ~max_retries:3 ();
        health = Cluster.Health.config ();
      }
  in
  let points_d =
    List.map
      (fun (label, policy, detect, hedge) ->
        Sweep.point
          ~key:(Printf.sprintf "rack/crash/%s" label)
          (fun ~seed ->
            let load = 0.5 in
            let rate = load *. float_of_int (servers * cores) /. Dist.mean service in
            let measure = float_of_int req /. rate in
            let failplan =
              [
                Cluster.Failplan.Crash
                  { server = 0; start = 0.3 *. measure; duration = 0.25 *. measure };
              ]
            in
            let cfg = rcfg ~policy ?detect ?hedge ~failplan ~slo:1000. ~seed () in
            let p = Rackrun.run cfg ~load in
            let get key = Option.value ~default:0. (Run.info_value p key) in
            [
              label;
              Output.f3 p.Run.goodput;
              Output.f1 p.Run.p99;
              string_of_int (int_of_float (get "rack_lost_requests"));
              string_of_int (int_of_float (get "rack_failovers"));
              string_of_int (int_of_float (get "health_detections"));
              string_of_int (int_of_float (get "health_recoveries"));
              string_of_int (int_of_float (get "rack_hedges"));
            ]))
      [
        ("jsq-nodetect", Cluster.Policy.Jsq, None, None);
        ("jsq-detect", Cluster.Policy.Jsq, Some detect, None);
        ("jsq-detect-hedge", Cluster.Policy.Jsq, Some detect, Some 200.);
        ("hash-detect", Cluster.Policy.Static_hash, Some detect, None);
        ("jbsq32-detect", Cluster.Policy.Jbsq 32, Some detect, None);
      ]
  in
  let rows = Sweep.run ~jobs ~seed:master_seed points_d in
  Output.print_subheader
    "server 0 crashes for 25% of the run (load 0.5, SLO 1000us, detect: 300us timeout x3)";
  Output.print_table
    ~columns:
      [ "variant"; "goodput(MRPS)"; "p99(us)"; "lost"; "failovers"; "detect"; "recover"; "hedges" ]
    ~rows

type target = jobs:int -> scale:float -> unit

let all_targets : (string * target) list =
  [
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10a", fig10a);
    ("fig10b", fig10b);
    ("table1", table1);
    ("fig11", fig11);
    ("ablate-poll", ablate_poll);
    ("ablate-batch", ablate_batch);
    ("ext-preempt", ext_preempt);
    ("ext-rebalance", ext_rebalance);
    ("ext-consolidate", ext_consolidate);
    ("chaos", chaos);
    ("rack", rack);
  ]
