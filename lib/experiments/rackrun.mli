(** Rack-scale sweep points: run a {!Cluster.Rack} of N single-server
    system instances under the open-loop load generator and reduce to the
    same {!Run.point} record the single-server sweeps produce.

    The offered rate scales with the whole rack ([load] = utilization of
    all [servers * cores] cores), so rack points compare directly against
    {!central_bound}, the M/G/(servers*cores) FCFS model — the ceiling a
    perfect rack-wide single-queue scheduler would reach.

    A 1-server rack with the default (empty) failure plan, zero feedback
    delay, and no detection or hedging reproduces {!Run.run_real_point}
    byte for byte at the same seed, whatever the policy — the degeneracy
    guarded by [test_cluster]. *)

type config = {
  servers : int;
  system : Run.system_kind;  (** per-server model; real systems only *)
  cores : int;  (** per server *)
  conns : int;
  service : Engine.Dist.t;
  requests : int;  (** measured requests across the whole rack *)
  seed : int;
  rpc_packets : int;
  policy : Cluster.Policy.t;
  feedback_delay : float;
  detect : Cluster.Dispatch.detect option;
  hedge : float option;
  failplan : Cluster.Failplan.t;
  retry : Net.Loadgen.retry option;  (** client-side retry layer *)
  slo : float;
}

val config :
  ?servers:int ->
  ?system:Run.system_kind ->
  ?cores:int ->
  ?conns:int ->
  ?requests:int ->
  ?seed:int ->
  ?rpc_packets:int ->
  ?feedback_delay:float ->
  ?detect:Cluster.Dispatch.detect ->
  ?hedge:float ->
  ?failplan:Cluster.Failplan.t ->
  ?retry:Net.Loadgen.retry ->
  ?slo:float ->
  policy:Cluster.Policy.t ->
  service:Engine.Dist.t ->
  unit ->
  config
(** Defaults mirror {!Run.config}: 4 servers of 16 cores, 2752
    connections, 30k requests, seed 42. Raises [Invalid_argument] on a
    model or rebalanced system kind (the rack needs real single-ingress
    servers). *)

val run : config -> load:float -> Run.point
(** Simulate one rack point. The point's [info] merges the rack's
    counters (dispatcher, health, per-server systems) with the client's
    retry counters. *)

val central_bound : config -> load:float -> Run.point
(** The rack-wide M/G/(servers*cores)/FCFS model at the same load, seed,
    and request count. *)
