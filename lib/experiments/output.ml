(* All rendering funnels through one sink so a test (or any caller) can
   capture a figure's output as a string and compare it across worker
   counts. Rendering is sequential — only the calling domain ever touches
   the sink — so a plain ref suffices. *)
let sink : Buffer.t option ref = ref None

let emit s = match !sink with None -> print_string s | Some b -> Buffer.add_string b s

let printf fmt = Printf.ksprintf emit fmt

let capture f =
  let b = Buffer.create 4096 in
  let saved = !sink in
  sink := Some b;
  Fun.protect ~finally:(fun () -> sink := saved) f;
  Buffer.contents b

let print_header title =
  let line = String.make (String.length title + 4) '=' in
  printf "\n%s\n= %s =\n%s\n" line title line

let print_subheader title = printf "\n--- %s ---\n" title

let print_table ~columns ~rows =
  List.iter
    (fun row ->
      if List.length row <> List.length columns then
        invalid_arg "Output.print_table: row arity mismatch")
    rows;
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length col) rows)
      columns
  in
  let print_row cells =
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        printf "%s%s  " cell (String.make (w - String.length cell) ' '))
      cells;
    emit "\n"
  in
  print_row columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let print_sim_stats (s : Engine.Sim.stats) =
  print_subheader "event pool";
  print_table
    ~columns:[ "counter"; "value" ]
    ~rows:
      [
        [ "events scheduled"; string_of_int s.Engine.Sim.scheduled ];
        [ "events fired"; string_of_int s.Engine.Sim.fired ];
        [ "events cancelled"; string_of_int s.Engine.Sim.cancelled ];
        [ "pool slot reuses"; string_of_int s.Engine.Sim.reused ];
        [ "pool slots allocated"; string_of_int s.Engine.Sim.pool_slots ];
        [ "events live at snapshot"; string_of_int s.Engine.Sim.live ];
      ]

let pool_stats_rows (s : Runtime.Pool.stats) =
  let total_busy = Array.fold_left ( +. ) 0. s.Runtime.Pool.busy_s in
  let speedup = if s.Runtime.Pool.wall_s > 0. then total_busy /. s.Runtime.Pool.wall_s else 1. in
  [
    ("workers", float_of_int s.Runtime.Pool.workers);
    ("points_run", float_of_int s.Runtime.Pool.points);
    ("steals", float_of_int s.Runtime.Pool.steals);
    ("busy_s_total", total_busy);
    ("wall_s", s.Runtime.Pool.wall_s);
    ("speedup", speedup);
  ]

let print_pool_stats (s : Runtime.Pool.stats) =
  print_subheader "sweep pool";
  print_table
    ~columns:[ "counter"; "value" ]
    ~rows:(List.map (fun (k, v) -> [ k; Printf.sprintf "%g" v ]) (pool_stats_rows s));
  let per_domain =
    Array.to_list
      (Array.mapi
         (fun w busy ->
           [ string_of_int w; Printf.sprintf "%.3f" busy;
             string_of_int s.Runtime.Pool.run_counts.(w) ])
         s.Runtime.Pool.busy_s)
  in
  print_table ~columns:[ "domain"; "busy(s)"; "points" ] ~rows:per_domain

(* Minimal JSON emission for the benchmark-trajectory file; no external
   dependency, strings restricted to what Printf can escape. *)
module Json = struct
  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let str s = Printf.sprintf "\"%s\"" (escape s)

  let num x = if Float.is_finite x then Printf.sprintf "%.6g" x else "null"

  let obj fields =
    "{" ^ String.concat ", " (List.map (fun (k, v) -> str k ^ ": " ^ v) fields) ^ "}"

  let arr items = "[" ^ String.concat ", " items ^ "]"
end

let f1 x = Printf.sprintf "%.1f" x

let f2 x = Printf.sprintf "%.2f" x

let f3 x = Printf.sprintf "%.3f" x

let pct x = Printf.sprintf "%.1f%%" (100. *. x)
