module Sim = Engine.Sim
module Rng = Engine.Rng
module Dist = Engine.Dist

type system_kind =
  | Linux_partitioned
  | Linux_floating
  | Ix of int
  | Zygos
  | Zygos_no_interrupts
  | Preemptive of float
  | Ix_rebalanced of float
  | Model_central_fcfs
  | Model_partitioned_fcfs

let system_name = function
  | Linux_partitioned -> "linux-partitioned"
  | Linux_floating -> "linux-floating"
  | Ix 1 -> "ix"
  | Ix b -> Printf.sprintf "ix-b%d" b
  | Zygos -> "zygos"
  | Zygos_no_interrupts -> "zygos-noint"
  | Preemptive q -> Printf.sprintf "preempt-q%g" q
  | Ix_rebalanced _ -> "ix-rebalanced"
  | Model_central_fcfs -> "M/G/n/FCFS"
  | Model_partitioned_fcfs -> "nxM/G/1/FCFS"

let all_real_systems =
  [ Linux_partitioned; Linux_floating; Ix 1; Zygos; Zygos_no_interrupts ]

type config = {
  system : system_kind;
  cores : int;
  conns : int;
  service : Engine.Dist.t;
  requests : int;
  seed : int;
  rpc_packets : int;
  selection : Net.Loadgen.conn_selection;
  faults : Net.Faults.plan option;
  stragglers : Core.Corefault.spec list;
  retry : Net.Loadgen.retry option;
  slo : float;
  shed : Systems.Overload.policy;
}

let config ?(cores = 16) ?(conns = 2752) ?(requests = 30_000) ?(seed = 42) ?(rpc_packets = 1)
    ?(selection = Net.Loadgen.Uniform) ?faults ?(stragglers = []) ?retry ?(slo = infinity)
    ?(shed = Systems.Overload.No_shed) ~system ~service () =
  Option.iter Net.Faults.validate_plan faults;
  List.iter Core.Corefault.validate_spec stragglers;
  Option.iter Net.Loadgen.validate_retry retry;
  Systems.Overload.validate_policy shed;
  {
    system;
    cores;
    conns;
    service;
    requests;
    seed;
    rpc_packets;
    selection;
    faults;
    stragglers;
    retry;
    slo;
    shed;
  }

type point = {
  load : float;
  offered_rate : float;
  throughput : float;
  goodput : float;
  mean : float;
  p50 : float;
  p99 : float;
  p999 : float;
  completed : int;
  order_violations : int;
  info : (string * float) list;
}

(* String-keyed lookup into a point's counters; List.assoc_opt would
   compare the keys with polymorphic equality. *)
let info_value p key =
  let rec go = function
    | [] -> None
    | (k, v) :: rest -> if String.equal k key then Some v else go rest
  in
  go p.info

let point_of_tally ~load ~offered_rate ~throughput ~goodput ~order_violations ~info tally =
  let empty = Stats.Tally.is_empty tally in
  {
    load;
    offered_rate;
    throughput;
    goodput;
    mean = Stats.Tally.mean tally;
    p50 = (if empty then 0. else Stats.Tally.p50 tally);
    p99 = (if empty then 0. else Stats.Tally.p99 tally);
    p999 = (if empty then 0. else Stats.Tally.p999 tally);
    completed = Stats.Tally.count tally;
    order_violations;
    info;
  }

let run_model_point cfg ~load ~spec =
  let result =
    Models.Queueing.simulate spec ~service:cfg.service ~load ~requests:cfg.requests
      ~seed:cfg.seed
  in
  let offered_rate = load *. float_of_int cfg.cores /. Dist.mean cfg.service in
  point_of_tally ~load ~offered_rate ~throughput:result.Models.Queueing.throughput
    ~goodput:result.Models.Queueing.throughput ~order_violations:0 ~info:[]
    result.Models.Queueing.latencies

let run_real_point cfg ~load =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:cfg.seed in
  let loadgen_rng = Rng.split rng in
  let system_rng = Rng.split rng in
  let mean = Dist.mean cfg.service in
  let rate = load *. float_of_int cfg.cores /. mean in
  (* Request slots recycle through the pool's free list only when nothing
     outlives the first completion: a retry layer keeps timed-out handles
     around for late responses, and fault layers can hold delayed
     deliveries; in both cases slots must stay live (the pool then just
     grows to the in-flight high-water mark). *)
  let recycle = Option.is_none cfg.faults && Option.is_none cfg.retry in
  let rpool = Net.Request.create_pool ~recycle () in
  let gen =
    Net.Loadgen.create sim ~rng:loadgen_rng ~pool:rpool ~conns:cfg.conns ~rate
      ~service:cfg.service ~selection:cfg.selection ~slo:cfg.slo ?retry:cfg.retry ()
  in
  (* Admission control sits between the (possibly lossy) network and the
     server; built only when a shedding policy is configured so the
     default path is untouched. *)
  let guard =
    match cfg.shed with
    | Systems.Overload.No_shed -> None
    | policy -> Some (Systems.Overload.create sim ~pool:rpool ~policy ())
  in
  let respond =
    match guard with
    | None -> fun req -> Net.Loadgen.complete gen req
    | Some g ->
        fun req ->
          Systems.Overload.note_response g req;
          Net.Loadgen.complete gen req
  in
  let params =
    Systems.Params.with_stragglers
      (Systems.Params.with_rpc_packets (Systems.Params.default ~cores:cfg.cores ()) cfg.rpc_packets)
      cfg.stragglers
  in
  let extra_info = ref (fun () -> []) in
  let system =
    match cfg.system with
    | Linux_partitioned ->
        Systems.Linux.partitioned sim params ~pool:rpool ~conns:cfg.conns ~respond
    | Linux_floating -> Systems.Linux.floating sim params ~pool:rpool ~conns:cfg.conns ~respond
    | Ix b ->
        Systems.Ix.create sim (Systems.Params.with_ix_batch params b) ~pool:rpool
          ~conns:cfg.conns ~respond
    | Zygos ->
        Systems.Zygos.create sim params ~rng:system_rng ~pool:rpool ~conns:cfg.conns ~respond
          ()
    | Zygos_no_interrupts ->
        Systems.Zygos.create sim
          (Systems.Params.no_interrupts params)
          ~rng:system_rng ~pool:rpool ~conns:cfg.conns ~respond ()
    | Preemptive quantum ->
        Systems.Preemptive.create sim params ~quantum ~switch_cost:0.3 ~pool:rpool
          ~conns:cfg.conns ~respond ()
    | Ix_rebalanced window ->
        let rss = Net.Rss.create ~queues:cfg.cores () in
        let iface, read_counts =
          Systems.Ix.create_with_rss sim params ~pool:rpool ~rss ~conns:cfg.conns ~respond
        in
        let stats =
          Systems.Rebalance.attach sim ~rss ~queues:cfg.cores ~read_counts ~window ()
        in
        extra_info :=
          (fun () ->
            [
              ("rebalance_moves", float_of_int stats.Systems.Rebalance.moves);
              ("rebalance_windows", float_of_int stats.Systems.Rebalance.windows);
            ]);
        { iface with Systems.Iface.name = "ix-rebalanced" }
    | Model_central_fcfs | Model_partitioned_fcfs -> assert false
  in
  (* Compose the request path client -> network faults -> admission ->
     server. Each layer is only interposed when configured, so the
     fault-free path submits directly to the system (bit-identical to the
     pre-fault runner). *)
  let admitted =
    match guard with
    | None -> fun req -> system.Systems.Iface.submit req
    | Some g ->
        fun req ->
          Systems.Overload.admit g req ~forward:(fun r -> system.Systems.Iface.submit r)
  in
  let net_faults =
    match cfg.faults with
    | None -> None
    | Some plan -> Some (Net.Faults.create sim ~rng:(Rng.split rng) ~plan ())
  in
  let ingress =
    match net_faults with
    | None -> admitted
    | Some f -> fun req -> Net.Faults.apply f req ~deliver:admitted
  in
  Net.Loadgen.set_target gen ingress;
  let measure = float_of_int cfg.requests /. rate in
  let warmup = 0.2 *. measure in
  Net.Loadgen.start gen ~warmup ~measure;
  Sim.run sim;
  let pool = Sim.stats sim in
  let pool_info =
    [
      ("sim_events_scheduled", float_of_int pool.Sim.scheduled);
      ("sim_events_fired", float_of_int pool.Sim.fired);
      ("sim_events_cancelled", float_of_int pool.Sim.cancelled);
      ("sim_events_reused", float_of_int pool.Sim.reused);
      ("sim_pool_slots", float_of_int pool.Sim.pool_slots);
    ]
  in
  let client_info =
    [
      ("client_retries", float_of_int (Net.Loadgen.retries gen));
      ("client_timeouts", float_of_int (Net.Loadgen.timeouts gen));
      ("client_retry_exhausted", float_of_int (Net.Loadgen.retry_exhausted gen));
      ("duplicate_completions", float_of_int (Net.Loadgen.duplicate_completions gen));
    ]
  in
  let fault_info = match net_faults with None -> [] | Some f -> Net.Faults.info f in
  let shed_info = match guard with None -> [] | Some g -> Systems.Overload.info g in
  point_of_tally ~load ~offered_rate:rate ~throughput:(Net.Loadgen.throughput gen)
    ~goodput:(Net.Loadgen.goodput gen)
    ~order_violations:(Net.Loadgen.order_violations gen)
    ~info:
      (system.Systems.Iface.info () @ !extra_info () @ fault_info @ shed_info @ client_info
     @ pool_info)
    (Net.Loadgen.tally gen)

let run_point cfg ~load =
  match cfg.system with
  | Model_central_fcfs ->
      run_model_point cfg ~load
        ~spec:
          Models.Queueing.{ servers = cfg.cores; policy = Fcfs; topology = Central }
  | Model_partitioned_fcfs ->
      run_model_point cfg ~load
        ~spec:
          Models.Queueing.{ servers = cfg.cores; policy = Fcfs; topology = Partitioned }
  | _ -> run_real_point cfg ~load

let sweep cfg ~loads = List.map (fun load -> run_point cfg ~load) loads

let max_load_at_slo cfg ~slo_p99 ?(resolution = 0.01) () =
  let meets point = point.completed > 0 && point.p99 <= slo_p99 in
  let lowest = run_point cfg ~load:0.02 in
  if not (meets lowest) then (0., lowest)
  else begin
    let highest = run_point cfg ~load:0.99 in
    if meets highest then (0.99, highest)
    else begin
      let lo = ref 0.02 and hi = ref 0.99 in
      let best = ref lowest in
      while !hi -. !lo > resolution do
        let mid = (!lo +. !hi) /. 2. in
        let point = run_point cfg ~load:mid in
        if meets point then begin
          lo := mid;
          best := point
        end
        else hi := mid
      done;
      (!lo, !best)
    end
  end
