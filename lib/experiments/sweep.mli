(** Domain-parallel execution of independent sweep points with
    deterministic per-point RNG derivation.

    Every figure of the evaluation is a grid of mutually independent
    (system, service distribution, load) simulation points. This module
    runs such a grid on a {!Runtime.Pool} of OCaml 5 domains, while
    keeping the figure output bit-identical to a sequential run:

    - each point's randomness comes from a seed derived purely from the
      master seed and the point's stable key (SplitMix64 of an FNV-1a
      hash), never from execution order;
    - results are returned in enumeration order, so the render step that
      consumes them is oblivious to the steal schedule;
    - with [jobs = 1] (the default) no domain is spawned at all. *)

type 'a point = { key : string; run : seed:int -> 'a }
(** One unit of schedulable work. [key] must be unique within a sweep
    and stable across runs — it determines the point's seed. *)

val point : key:string -> (seed:int -> 'a) -> 'a point

val point_seed : seed:int -> key:string -> int
(** The derived seed for a point: a pure, order-independent function of
    the master seed and the key. Always non-negative. *)

val run : ?jobs:int -> seed:int -> 'a point list -> 'a list
(** [run ~jobs ~seed points] executes every point (on [jobs] workers)
    and returns the results in input order. Output is independent of
    [jobs]. Default [jobs = 1] runs sequentially in the calling domain. *)

val run_with_stats : ?jobs:int -> seed:int -> 'a point list -> 'a list * Runtime.Pool.stats

(** Cumulative pool counters across sweeps (for the bench harness's
    trajectory file); reset at the start of a measured region. *)
type totals = {
  mutable sweeps : int;
  mutable points : int;
  mutable steals : int;
  mutable busy_s : float;
  mutable wall_s : float;
  mutable workers : int;
}

val reset_totals : unit -> unit

val read_totals : unit -> totals
