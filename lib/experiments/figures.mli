(** Regeneration of every table and figure in the paper's evaluation
    (§2.3, §3.4, §6, §7), printing the same rows/series the paper plots.

    Every generator is enumerate → run → render: it enumerates its grid
    of independent simulation points, executes them on a {!Sweep} pool of
    [jobs] domains (idle domains steal; [jobs = 1] stays in the calling
    domain), and renders the results in canonical order. Per-point seeds
    are derived from the point's stable key (see {!Sweep.point_seed}), so
    the rendered output is byte-identical for every [jobs] value.

    [scale] multiplies the per-point measured-request budget (1.0 = the
    defaults recorded in EXPERIMENTS.md; 0.2 for a quick pass). All output
    goes through {!Output} (stdout unless captured). *)

type target = jobs:int -> scale:float -> unit

val fig2 : target
(** Queueing-model p99 vs load, 4 models × 4 distributions (n = 16). *)

val fig3 : target
(** Baselines: max load meeting p99 <= 10·S̄ as a function of S̄ —
    Linux-partitioned/floating, IX, and the two model bounds. *)

val fig6 : target
(** p99 latency vs throughput, {fixed, exp, bimodal-1} × {10µs, 25µs}:
    Linux-floating, IX, ZygOS, ZygOS-no-interrupts, M/G/16/FCFS. *)

val fig7 : target
(** Max load @ SLO vs S̄ with ZygOS included (1–50µs). *)

val fig8 : target
(** Steal rate vs throughput, ZygOS with and without IPIs (exp, 25µs). *)

val fig9 : target
(** memcached ETC/USR: p99 vs throughput for Linux, IX B=1, IX B=64,
    ZygOS. *)

val silo_service_samples : scale:float -> float array
(** Measured service times (µs) of a real TPC-C run on the Silo engine,
    normalized to the paper's 33µs mean (see EXPERIMENTS.md); memoized so
    fig10a/fig10b/table1 share one run. *)

val fig10a : target
(** CCDF of Silo/TPC-C service time per transaction type and for the
    mix. One real measured execution — [jobs] is ignored. *)

val fig10b : target
(** Silo/TPC-C p99 end-to-end latency vs throughput on Linux, IX, ZygOS. *)

val table1 : target
(** Max load @ 1000µs SLO, speedups, and tails at 50/75/90% of max. *)

val fig11 : target
(** IX B=1 / B=64 / ZygOS under 100µs and 1000µs SLOs (fixed 10µs). *)

val ablate_poll : target
(** Ablation: randomized vs round-robin idle-loop victim order. *)

val ablate_batch : target
(** Ablation: IX batching bound B and ZygOS receive-batch sweep. *)

val ext_preempt : target
(** Extension: preemptive centralized scheduling (quantum + switch cost)
    vs FCFS systems under extreme dispersion (bimodal-2) — Observation 2
    of §2.3 turned into a system. *)

val ext_rebalance : target
(** Extension (§5 "control plane interactions", left as future work by the
    paper): a control plane that re-programs the RSS indirection table to
    fight persistent load imbalance, compared with static IX and with
    ZygOS's work stealing under a skewed connection load. *)

val ext_consolidate : target
(** Extension (§5): the IX control plane's energy-proportionality
    function — dynamic core parking/unparking by measured utilization —
    on the centralized preemptive system, vs a static 16-core
    allocation. *)

val chaos : target
(** Robustness: degradation curves under injected network faults (drop /
    duplicate / reorder), a straggler core, and retry storms past
    saturation — goodput and p99 for Linux-floating, IX, and ZygOS, with
    and without server-side load shedding. *)

val rack : target
(** Rack tier: 4 ZygOS servers behind a ToR dispatcher. Inter-server
    policy (hash / random / po2 / jsq / jbsq) x load against the
    rack-wide M/G/64 centralized bound; estimate-staleness sweep; one
    degraded server (queue-aware policies route around it, static
    hashing collapses); and a crash window with timeout detection,
    failover re-dispatch, and hedged requests. *)

val all_targets : (string * target) list
(** Name → generator, in run order (the bench executable's registry). *)
