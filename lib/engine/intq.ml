(* A growable circular FIFO of immediate ints.

   [Stdlib.Queue] allocates a 3-word cell per [add]; on the per-request
   hot path (per-connection outstanding FIFOs, NIC rings, shuffle
   queues) that is one minor allocation per message. This queue stores
   its elements flat in an int array, so steady-state push/pop allocate
   nothing; the array doubles on overflow and is never shrunk (the
   high-water mark of a queue is its natural working-set size).

   Single-owner discipline: not thread safe; every instance is owned by
   one core/domain, like the engine's event pool. *)

type t = {
  mutable buf : int array;
  mutable head : int;  (* index of the oldest element *)
  mutable len : int;
}

let create ?(capacity = 8) () =
  if capacity < 1 then invalid_arg "Intq.create: capacity < 1";
  { buf = Array.make capacity 0; head = 0; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let[@zygos.hot] grow t =
  let cap = Array.length t.buf in
  (* amortized doubling: O(log n) growths over a run, zero steady-state *)
  let buf = (Array.make (2 * cap) 0 [@zygos.allow "hot-alloc"]) in
  (* Unroll the wrap: oldest element lands at index 0. *)
  let first = cap - t.head in
  Array.blit t.buf t.head buf 0 (min t.len first);
  if t.len > first then Array.blit t.buf 0 buf first (t.len - first);
  t.buf <- buf;
  t.head <- 0

let[@zygos.hot] push t x =
  if t.len = Array.length t.buf then grow t;
  let cap = Array.length t.buf in
  let tail = t.head + t.len in
  let tail = if tail >= cap then tail - cap else tail in
  Array.unsafe_set t.buf tail x;
  t.len <- t.len + 1

(* [pop]/[peek] return [empty] when the queue is empty: a flat sentinel
   instead of an [option], so the hot path allocates no [Some]. Callers
   whose payloads can legitimately be [empty] must guard with
   [is_empty] first. *)
let empty = min_int

let[@zygos.hot] pop t =
  if t.len = 0 then empty
  else begin
    let x = Array.unsafe_get t.buf t.head in
    let head = t.head + 1 in
    t.head <- (if head = Array.length t.buf then 0 else head);
    t.len <- t.len - 1;
    x
  end

let[@zygos.hot] peek t =
  if t.len = 0 then empty else Array.unsafe_get t.buf t.head

let clear t =
  t.head <- 0;
  t.len <- 0

let[@zygos.hot] get t i =
  if i < 0 || i >= t.len then invalid_arg "Intq.get: out of range";
  let j = t.head + i in
  let cap = Array.length t.buf in
  Array.unsafe_get t.buf (if j >= cap then j - cap else j)

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

(* Remove every occurrence of [x], preserving the order of the rest;
   used by the rare bookkeeping repair paths (client order-violation
   cleanup), not on the steady-state path. *)
let[@zygos.hot] remove_all t x =
  let kept = ref 0 in
  for i = 0 to t.len - 1 do
    let v = get t i in
    if v <> x then begin
      let j = t.head + !kept in
      let cap = Array.length t.buf in
      t.buf.(if j >= cap then j - cap else j) <- v;
      incr kept
    end
  done;
  t.len <- !kept
