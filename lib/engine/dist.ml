type t =
  | Deterministic of float
  | Exponential of float
  | Bimodal of { p_slow : float; fast : float; slow : float }
  | Lognormal of { mu : float; sigma : float }
  | Empirical of float array

let deterministic s = Deterministic s

let exponential s = Exponential s

let bimodal1 ~mean = Bimodal { p_slow = 0.1; fast = 0.5 *. mean; slow = 5.5 *. mean }

let bimodal2 ~mean = Bimodal { p_slow = 0.001; fast = 0.5 *. mean; slow = 500.5 *. mean }

let lognormal ~mean ~sigma =
  (* E[X] = exp (mu + sigma^2/2)  =>  mu = log mean - sigma^2/2. *)
  Lognormal { mu = log mean -. (sigma *. sigma /. 2.); sigma }

let empirical samples =
  if Array.length samples = 0 then invalid_arg "Dist.empirical: no samples";
  Empirical (Array.copy samples)

let mean = function
  | Deterministic s -> s
  | Exponential s -> s
  | Bimodal { p_slow; fast; slow } -> ((1. -. p_slow) *. fast) +. (p_slow *. slow)
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. sigma /. 2.))
  | Empirical a -> Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let second_moment = function
  | Deterministic s -> s *. s
  | Exponential s -> 2. *. s *. s
  | Bimodal { p_slow; fast; slow } ->
      ((1. -. p_slow) *. fast *. fast) +. (p_slow *. slow *. slow)
  | Lognormal { mu; sigma } -> exp ((2. *. mu) +. (2. *. sigma *. sigma))
  | Empirical a ->
      Array.fold_left (fun acc x -> acc +. (x *. x)) 0. a /. float_of_int (Array.length a)

let squared_cv t =
  let m = mean t in
  if m = 0. then 0. else (second_moment t -. (m *. m)) /. (m *. m)

(* Sampling returns a fresh float by contract; the boxes are part of
   the measured per-request budget (see perf guard), not a regression,
   so the cross-unit float returns below are documented suppressions. *)
let[@zygos.hot] sample t rng =
  match t with
  | Deterministic s -> s
  | Exponential s -> (Rng.exponential rng ~mean:s [@zygos.allow "r7"])
  | Bimodal { p_slow; fast; slow } ->
      if (Rng.bernoulli rng p_slow [@zygos.allow "r7"]) then slow else fast
  | Lognormal { mu; sigma } -> exp (Rng.normal rng ~mu ~sigma [@zygos.allow "r7"])
  | Empirical a -> a.(Rng.int rng (Array.length a))

let scale t k =
  match t with
  | Deterministic s -> Deterministic (s *. k)
  | Exponential s -> Exponential (s *. k)
  | Bimodal { p_slow; fast; slow } -> Bimodal { p_slow; fast = fast *. k; slow = slow *. k }
  | Lognormal { mu; sigma } -> Lognormal { mu = mu +. log k; sigma }
  | Empirical a -> Empirical (Array.map (fun x -> x *. k) a)

let name = function
  | Deterministic _ -> "fixed"
  | Exponential _ -> "exp"
  | Bimodal { p_slow; _ } -> if p_slow <= 0.001 then "bimodal2" else "bimodal1"
  | Lognormal _ -> "lognormal"
  | Empirical _ -> "empirical"

let pp ppf t =
  match t with
  | Deterministic s -> Format.fprintf ppf "fixed(%g)" s
  | Exponential s -> Format.fprintf ppf "exp(%g)" s
  | Bimodal { p_slow; fast; slow } ->
      Format.fprintf ppf "bimodal(p=%g, %g/%g)" p_slow fast slow
  | Lognormal { mu; sigma } -> Format.fprintf ppf "lognormal(mu=%g, sigma=%g)" mu sigma
  | Empirical a -> Format.fprintf ppf "empirical(%d samples)" (Array.length a)
