(** Hierarchical timing wheel over integer event payloads.

    A drop-in alternative to {!Heap} for the simulator's event queue:
    O(1) add and amortized O(1) pop for the short-horizon timers the
    simulations are dominated by, while popping in exactly the heap's
    (time, insertion-sequence) order — ties at equal [time] break FIFO,
    and the pop sequence is bit-identical to {!Heap}'s for any
    interleaving of adds and pops.

    Internals: 13 levels of 32 one-microsecond-granularity buckets
    (level l spans 32{^l} µs per bucket), per-level occupancy bitmaps,
    an intrusive structure-of-arrays node pool, and a sorted ready-run
    buffer that resolves sub-microsecond ordering. Steady state
    allocates nothing. Unlike {!Heap} this structure is monomorphic in
    the payload ([int]): it stores simulator event handles. *)

type t

val create : ?capacity:int -> ?dummy:int -> unit -> t
(** [create ?capacity ?dummy ()] is an empty wheel. [capacity] presizes
    the node pool (it grows by doubling); [dummy] (default [0]) is the
    value returned by {!min_elt} on an empty wheel. *)

val add : t -> time:float -> int -> unit
(** [add t ~time v] inserts [v] at [time]. Times must be non-negative
    and finite for meaningful ordering; a time at or before the last
    popped microsecond is delivered at the front, still in (time, seq)
    order, matching {!Heap}. O(1). *)

val add_key : t -> float array -> int -> unit
(** {!add} with the key passed in [buf.(0)] instead of a float argument
    (which would be boxed at the caller; see {!Heap.add_key}). The
    buffer is read before the call returns. *)

val min_time : t -> float
(** Earliest queued time, or [infinity] when empty. Amortized O(1);
    does not allocate (the float return may be boxed by the caller). *)

val min_elt : t -> int
(** Value at the earliest (time, seq) key, or [dummy] when empty. *)

val drop_min : t -> unit
(** Remove the minimum element; no-op when empty. Amortized O(1). *)

val pop_into : t -> float array -> int
(** Remove the minimum, writing its time into [buf.(0)] and returning
    its payload, or [dummy] (buffer untouched) when empty — the
    allocation-free dual of {!add_key}. *)

val pop_min : t -> (float * int) option
(** Convenience combining the three accessors; allocates the option. *)

val length : t -> int
(** Number of queued elements. O(1). *)

val is_empty : t -> bool

val clear : t -> unit
(** Remove all elements and reset the insertion sequence, keeping the
    allocated pool capacity. *)
