(* Event-queue facade: the simulator's priority queue behind a runtime
   choice of implementation. Both back ends pop in (time, insertion-seq)
   order and are bit-identical for any add/pop interleaving, so the
   selection is purely a performance knob (see DESIGN.md "Event queue"). *)

type kind = Heap | Wheel

type t = H of int Heap.t | W of Wheel.t

let create ?(capacity = 64) ?(dummy = 0) kind =
  match kind with
  | Heap -> H (Heap.create ~capacity ~dummy ())
  | Wheel -> W (Wheel.create ~capacity ~dummy ())

let kind = function H _ -> Heap | W _ -> Wheel

let add t ~time v =
  match t with H h -> Heap.add h ~time v | W w -> Wheel.add w ~time v

let min_time = function H h -> Heap.min_time h | W w -> Wheel.min_time w
let min_elt = function H h -> Heap.min_elt h | W w -> Wheel.min_elt w
let drop_min = function H h -> Heap.drop_min h | W w -> Wheel.drop_min w
let length = function H h -> Heap.length h | W w -> Wheel.length w
let is_empty = function H h -> Heap.is_empty h | W w -> Wheel.is_empty w
let clear = function H h -> Heap.clear h | W w -> Wheel.clear w

let kind_to_string = function Heap -> "heap" | Wheel -> "wheel"

let kind_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "heap" -> Some Heap
  | "wheel" -> Some Wheel
  | _ -> None
