(** Growable circular FIFO of immediate ints: flat storage, zero
    steady-state allocation (a [Stdlib.Queue] cell costs 3 minor words
    per [add]). Single-owner; not thread safe. *)

type t

val create : ?capacity:int -> unit -> t
(** Initial capacity defaults to 8; the buffer doubles on overflow and
    never shrinks. Raises [Invalid_argument] if [capacity < 1]. *)

val push : t -> int -> unit

val empty : int
(** Sentinel returned by {!pop}/{!peek} on an empty queue ([min_int]).
    Callers whose payloads can be [min_int] must guard with
    {!is_empty}. *)

val pop : t -> int
(** Oldest element, or {!empty}. *)

val peek : t -> int
(** Oldest element without removing it, or {!empty}. *)

val length : t -> int

val is_empty : t -> bool

val clear : t -> unit

val get : t -> int -> int
(** [get t i] is the [i]-th oldest element. Raises [Invalid_argument]
    out of range. *)

val iter : (int -> unit) -> t -> unit

val remove_all : t -> int -> unit
(** Remove every occurrence, preserving the order of the rest. O(n);
    for rare repair paths, not the hot path. *)
