(* Hierarchical timing wheel keyed by (time, sequence number).

   The event queue of the discrete-event simulator, optimized for the
   short-horizon timers the simulations are dominated by: O(1) add and
   amortized O(1) pop, against the binary heap's O(log n), while popping
   in exactly the heap's (time, seqno) order.

   Structure. Simulated time (float µs) is quantized to integer ticks of
   1 µs (tick = floor time). The wheel has [levels] levels of [slots]
   buckets each; a level-l bucket spans 32^l ticks, so level 0 resolves
   single microseconds and each level above coarsens by a power of two
   (2^5). A pending event lives in the bucket found by the highest base-32
   digit in which its tick differs from the current tick — the classic
   hierarchical placement rule — and cascades one level down each time the
   wheel's current position reaches its bucket.

   Ordering. A level-0 bucket can hold several distinct float times (all
   within the same microsecond), so FIFO-within-bucket alone cannot
   reproduce the heap's contract. Instead, when the wheel advances onto a
   level-0 bucket it drains the bucket into a flat "run" and sorts it by
   (time, seq) — exactly the heap's key — and pops come from the run.
   Adds whose tick has already been reached (tick <= cur, e.g. an action
   scheduling at the current instant) are merge-inserted into the run at
   their (time, seq) position; every event still in the wheel proper has
   tick > cur and hence time >= cur + 1, strictly above everything in the
   run, so the run head is always the global minimum. This makes the pop
   sequence bit-identical to the heap's for any add/pop interleaving.

   Memory. Events are nodes in a structure-of-arrays pool (time/seq/value/
   next) chained through int indices; buckets are (head, tail) index pairs
   and a per-level occupancy bitmap gives find-next-nonempty-bucket in a
   few instructions. Steady state allocates nothing: nodes recycle through
   a free list and the run reuses its scratch arrays. *)

let slot_bits = 5
let slots = 1 lsl slot_bits (* 32: bucket bitmaps must fit an OCaml int *)
let slot_mask = slots - 1
let levels = 13 (* 32^13 ticks > 2^62: covers every representable tick *)
let nil = -1

(* Ticks are clamped to max_int; [lsl]s below stay within 5*13 = 65 only
   through the level-bounded loops, never as a literal shift. *)
let max_tick = max_int

let max_tick_float = float_of_int max_tick

let[@zygos.hot] tick_of_time time =
  (* NaN and +infinity both fail [time < max_tick_float] and clamp. *)
  if time < max_tick_float then int_of_float time else max_tick

(* Count trailing zeros of a nonzero value < 2^32 (de Bruijn multiply). *)
let ctz_table =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
     31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let[@zygos.hot] ctz x = Array.unsafe_get ctz_table (((x land -x) * 0x077CB531) lsr 27 land 31)

type t = {
  (* node pool (SoA) *)
  mutable times : float array;
  mutable seqs : int array;
  mutable vals : int array;
  mutable nexts : int array;
  mutable free : int; (* free-list head threaded through [nexts], [nil] = none *)
  mutable n_alloc : int; (* fresh nodes handed out so far *)
  (* buckets: levels * slots entries, [nil] = empty *)
  heads : int array;
  tails : int array;
  maps : int array; (* per-level occupancy bitmaps *)
  mutable cur : int; (* current tick; every wheel node has tick > cur *)
  mutable wheel_count : int; (* live nodes in buckets (run excluded) *)
  mutable next_seq : int;
  (* the sorted ready run: indices [run_pos, run_len) are live *)
  mutable run_times : float array;
  mutable run_seqs : int array;
  mutable run_vals : int array;
  mutable run_pos : int;
  mutable run_len : int;
  kbuf : float array; (* one-element scratch backing [add]'s key, see [add_key] *)
  dummy : int;
}

let create ?(capacity = 64) ?(dummy = 0) () =
  let capacity = max capacity 1 in
  {
    times = Array.make capacity 0.;
    seqs = Array.make capacity 0;
    vals = Array.make capacity dummy;
    nexts = Array.make capacity nil;
    free = nil;
    n_alloc = 0;
    heads = Array.make (levels * slots) nil;
    tails = Array.make (levels * slots) nil;
    maps = Array.make levels 0;
    cur = 0;
    wheel_count = 0;
    next_seq = 0;
    run_times = Array.make 16 0.;
    run_seqs = Array.make 16 0;
    run_vals = Array.make 16 dummy;
    run_pos = 0;
    run_len = 0;
    kbuf = [| 0. |];
    dummy;
  }

let[@zygos.hot] length t = t.wheel_count + (t.run_len - t.run_pos)

let[@zygos.hot] is_empty t = length t = 0

(* ---- node pool ---- *)

let[@zygos.hot] grow_pool t =
  let cap = Array.length t.times in
  let new_cap = 2 * cap in
  (* amortized doubling: O(log n) growths over a run, zero steady-state *)
  let times = (Array.make new_cap 0. [@zygos.allow "hot-alloc"]) in
  let seqs = (Array.make new_cap 0 [@zygos.allow "hot-alloc"]) in
  let vals = (Array.make new_cap t.dummy [@zygos.allow "hot-alloc"]) in
  let nexts = (Array.make new_cap nil [@zygos.allow "hot-alloc"]) in
  Array.blit t.times 0 times 0 cap;
  Array.blit t.seqs 0 seqs 0 cap;
  Array.blit t.vals 0 vals 0 cap;
  Array.blit t.nexts 0 nexts 0 cap;
  t.times <- times;
  t.seqs <- seqs;
  t.vals <- vals;
  t.nexts <- nexts

let[@zygos.hot] alloc_node t =
  if t.free <> nil then begin
    let n = t.free in
    t.free <- Array.unsafe_get t.nexts n;
    n
  end
  else begin
    if t.n_alloc = Array.length t.times then grow_pool t;
    let n = t.n_alloc in
    t.n_alloc <- n + 1;
    n
  end

let[@zygos.hot] free_node t n =
  Array.unsafe_set t.nexts n t.free;
  Array.unsafe_set t.vals n t.dummy;
  t.free <- n

(* ---- bucket placement ---- *)

(* Level of a node with [tick] relative to [cur]: the highest base-32
   digit in which they differ (0 when equal, for redistributed nodes
   landing exactly on [cur]). Short-horizon timers exit immediately. *)
let[@zygos.hot] level_of ~cur tick =
  let x = tick lxor cur in
  let l = ref 0 in
  while !l < levels - 1 && x >= 1 lsl (slot_bits * (!l + 1)) do
    incr l
  done;
  !l

let[@zygos.hot] push_bucket t ~level ~slot node =
  let b = (level lsl slot_bits) lor slot in
  let tail = Array.unsafe_get t.tails b in
  if tail = nil then begin
    Array.unsafe_set t.heads b node;
    Array.unsafe_set t.maps level (Array.unsafe_get t.maps level lor (1 lsl slot))
  end
  else Array.unsafe_set t.nexts tail node;
  Array.unsafe_set t.tails b node;
  Array.unsafe_set t.nexts node nil

let[@zygos.hot] place t node =
  let tick = tick_of_time (Array.unsafe_get t.times node) in
  let level = level_of ~cur:t.cur tick in
  let slot = (tick lsr (slot_bits * level)) land slot_mask in
  push_bucket t ~level ~slot node

(* ---- the sorted run ---- *)

let[@zygos.hot] grow_run t =
  let cap = Array.length t.run_times in
  let new_cap = 2 * cap in
  (* amortized doubling: O(log n) growths over a run, zero steady-state *)
  let times = (Array.make new_cap 0. [@zygos.allow "hot-alloc"]) in
  let seqs = (Array.make new_cap 0 [@zygos.allow "hot-alloc"]) in
  let vals = (Array.make new_cap t.dummy [@zygos.allow "hot-alloc"]) in
  Array.blit t.run_times 0 times 0 t.run_len;
  Array.blit t.run_seqs 0 seqs 0 t.run_len;
  Array.blit t.run_vals 0 vals 0 t.run_len;
  t.run_times <- times;
  t.run_seqs <- seqs;
  t.run_vals <- vals

let[@zygos.hot] run_make_room t =
  if t.run_len = Array.length t.run_times then
    if t.run_pos > 0 then begin
      (* compact: discard popped prefix *)
      let live = t.run_len - t.run_pos in
      Array.blit t.run_times t.run_pos t.run_times 0 live;
      Array.blit t.run_seqs t.run_pos t.run_seqs 0 live;
      Array.blit t.run_vals t.run_pos t.run_vals 0 live;
      t.run_pos <- 0;
      t.run_len <- live
    end
    else grow_run t

(* Merge-insert at the (time, seq) position. The new seq is the largest
   live one, so the slot is after every entry with an equal time: first
   index whose time is strictly greater. *)
let[@zygos.hot] insert_into_run t ~time ~seq v =
  run_make_room t;
  let lo = ref t.run_pos and hi = ref t.run_len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get t.run_times mid > time then hi := mid else lo := mid + 1
  done;
  let i = !lo in
  let n = t.run_len - i in
  if n > 0 then begin
    Array.blit t.run_times i t.run_times (i + 1) n;
    Array.blit t.run_seqs i t.run_seqs (i + 1) n;
    Array.blit t.run_vals i t.run_vals (i + 1) n
  end;
  Array.unsafe_set t.run_times i time;
  Array.unsafe_set t.run_seqs i seq;
  Array.unsafe_set t.run_vals i v;
  t.run_len <- t.run_len + 1

(* Sort run[lo, hi) by (time, seq) in place: insertion sort for the small
   buckets steady state produces, parallel-array heapsort for pathological
   ones (thousands of events inside one microsecond). Keys are unique
   (seqs), so any comparison sort yields the one correct order. *)
(* Annotations matter: without them these generalize to polymorphic
   compare over ['a array], which boxes every float read. *)
let lt (times : float array) (seqs : int array) i j =
  let ti = Array.unsafe_get times i and tj = Array.unsafe_get times j in
  ti < tj || (ti = tj && Array.unsafe_get seqs i < Array.unsafe_get seqs j)

let swap3 (times : float array) (seqs : int array) (vals : int array) i j =
  let tt = times.(i) and ss = seqs.(i) and vv = vals.(i) in
  times.(i) <- times.(j);
  seqs.(i) <- seqs.(j);
  vals.(i) <- vals.(j);
  times.(j) <- tt;
  seqs.(j) <- ss;
  vals.(j) <- vv

let heapsort_run times seqs vals lo hi =
  let n = hi - lo in
  let sift root size =
    let r = ref root in
    let continue = ref true in
    while !continue do
      let child = (2 * !r) + 1 in
      if child >= size then continue := false
      else begin
        let child =
          if child + 1 < size && lt times seqs (lo + child) (lo + child + 1) then child + 1
          else child
        in
        if lt times seqs (lo + !r) (lo + child) then begin
          swap3 times seqs vals (lo + !r) (lo + child);
          r := child
        end
        else continue := false
      end
    done
  in
  for root = (n / 2) - 1 downto 0 do
    sift root n
  done;
  for last = n - 1 downto 1 do
    swap3 times seqs vals lo (lo + last);
    sift 0 last
  done

let[@zygos.hot] sort_run t lo hi =
  (* heapsort is the pathological-bucket fallback (thousands of events in
     one tick); steady state takes the inline insertion sort below *)
  if hi - lo > 32 then
    (heapsort_run t.run_times t.run_seqs t.run_vals lo hi [@zygos.allow "r6"])
  else begin
    let times = t.run_times and seqs = t.run_seqs and vals = t.run_vals in
    for i = lo + 1 to hi - 1 do
      let tt = Array.unsafe_get times i
      and ss = Array.unsafe_get seqs i
      and vv = Array.unsafe_get vals i in
      let j = ref (i - 1) in
      while
        !j >= lo
        &&
        let tj = Array.unsafe_get times !j in
        tj > tt || (tj = tt && Array.unsafe_get seqs !j > ss)
      do
        Array.unsafe_set times (!j + 1) (Array.unsafe_get times !j);
        Array.unsafe_set seqs (!j + 1) (Array.unsafe_get seqs !j);
        Array.unsafe_set vals (!j + 1) (Array.unsafe_get vals !j);
        decr j
      done;
      Array.unsafe_set times (!j + 1) tt;
      Array.unsafe_set seqs (!j + 1) ss;
      Array.unsafe_set vals (!j + 1) vv
    done
  end

(* ---- advancing ---- *)

let[@zygos.hot] drain_level0_slot t slot =
  let b = slot in
  let node = ref (Array.unsafe_get t.heads b) in
  Array.unsafe_set t.heads b nil;
  Array.unsafe_set t.tails b nil;
  Array.unsafe_set t.maps 0 (Array.unsafe_get t.maps 0 land lnot (1 lsl slot));
  (* run is empty here: reuse it from index 0 *)
  t.run_pos <- 0;
  t.run_len <- 0;
  while !node <> nil do
    if t.run_len = Array.length t.run_times then grow_run t;
    let n = !node in
    let i = t.run_len in
    Array.unsafe_set t.run_times i (Array.unsafe_get t.times n);
    Array.unsafe_set t.run_seqs i (Array.unsafe_get t.seqs n);
    Array.unsafe_set t.run_vals i (Array.unsafe_get t.vals n);
    t.run_len <- i + 1;
    t.wheel_count <- t.wheel_count - 1;
    node := Array.unsafe_get t.nexts n;
    free_node t n
  done;
  sort_run t 0 t.run_len

(* Pull the next-nonempty higher-level bucket down: jump [cur] to the
   start of its span and re-place its nodes (they land strictly below this
   level, or on level 0's current slot when their tick equals [cur]). *)
(* Top-level rather than an inner [let rec] of [cascade]: an inner
   recursive function capturing [t] is a closure allocated on every
   cascade, which the advance path cannot afford. *)
let[@zygos.hot] rec cascade_from t l =
  if l >= levels then assert false (* wheel_count > 0 guarantees a bucket *)
  else begin
    let dl = (t.cur lsr (slot_bits * l)) land slot_mask in
    let m = Array.unsafe_get t.maps l lsr dl in
    if m = 0 then cascade_from t (l + 1)
    else begin
      let slot = dl + ctz m in
      let shift = slot_bits * l in
      t.cur <- ((t.cur lsr (shift + slot_bits)) lsl (shift + slot_bits)) lor (slot lsl shift);
      let b = (l lsl slot_bits) lor slot in
      let node = ref (Array.unsafe_get t.heads b) in
      Array.unsafe_set t.heads b nil;
      Array.unsafe_set t.tails b nil;
      Array.unsafe_set t.maps l (Array.unsafe_get t.maps l land lnot (1 lsl slot));
      while !node <> nil do
        let n = !node in
        node := Array.unsafe_get t.nexts n;
        place t n
      done
    end
  end

let[@zygos.hot] cascade t = cascade_from t 1

(* Ensure the run holds the global minimum; false iff the queue is empty.
   Every wheel node has tick > cur, hence time >= tick > run times, so a
   non-empty run needs no advancing. *)
let[@zygos.hot] rec ensure_run t =
  if t.run_pos < t.run_len then true
  else if t.wheel_count = 0 then false
  else begin
    let d0 = t.cur land slot_mask in
    let m = Array.unsafe_get t.maps 0 lsr d0 in
    if m <> 0 then begin
      let slot = d0 + ctz m in
      t.cur <- (t.cur land lnot slot_mask) lor slot;
      drain_level0_slot t slot
    end
    else cascade t;
    ensure_run t
  end

(* ---- public ops ---- *)

(* The key arrives in [buf.(0)] rather than as a float argument (see
   {!Heap.add_key}: floats crossing a call are boxed at the caller, flat
   array hand-off is not). *)
let[@zygos.hot] add_key t buf v =
  let time = Array.unsafe_get buf 0 in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let tick = tick_of_time time in
  if tick <= t.cur then insert_into_run t ~time ~seq v
  else begin
    let node = alloc_node t in
    Array.unsafe_set t.times node time;
    Array.unsafe_set t.seqs node seq;
    Array.unsafe_set t.vals node v;
    let level = level_of ~cur:t.cur tick in
    let slot = (tick lsr (slot_bits * level)) land slot_mask in
    push_bucket t ~level ~slot node;
    t.wheel_count <- t.wheel_count + 1
  end

let[@zygos.hot] add t ~time v =
  Array.unsafe_set t.kbuf 0 time;
  add_key t t.kbuf v

(* The [t.run_pos < t.run_len || ...] guards below repeat
   {!ensure_run}'s own fast path inline: [ensure_run] is recursive (so
   never inlined), and in steady state the run already holds the
   minimum, making the call pure overhead on every pop. *)
let[@zygos.hot] min_time t =
  if t.run_pos < t.run_len || ensure_run t then Array.unsafe_get t.run_times t.run_pos
  else infinity

let[@zygos.hot] min_elt t =
  if t.run_pos < t.run_len || ensure_run t then Array.unsafe_get t.run_vals t.run_pos
  else t.dummy

let[@zygos.hot] drop_min t =
  if t.run_pos < t.run_len || ensure_run t then begin
    t.run_pos <- t.run_pos + 1;
    if t.run_pos = t.run_len then begin
      t.run_pos <- 0;
      t.run_len <- 0
    end
  end

(* Remove the minimum, writing its time into [buf.(0)] (flat store, no
   boxed-float return) and returning its payload; [dummy] when empty.
   The simulator's step loop pops through this. *)
let[@zygos.hot] pop_into t buf =
  if t.run_pos < t.run_len || ensure_run t then begin
    let p = t.run_pos in
    Array.unsafe_set buf 0 (Array.unsafe_get t.run_times p);
    let v = Array.unsafe_get t.run_vals p in
    let p1 = p + 1 in
    if p1 = t.run_len then begin
      t.run_pos <- 0;
      t.run_len <- 0
    end
    else t.run_pos <- p1;
    v
  end
  else t.dummy

let pop_min t =
  if ensure_run t then begin
    let time = t.run_times.(t.run_pos) and v = t.run_vals.(t.run_pos) in
    drop_min t;
    Some (time, v)
  end
  else None

let clear t =
  Array.fill t.nexts 0 t.n_alloc nil;
  Array.fill t.vals 0 t.n_alloc t.dummy;
  t.free <- nil;
  t.n_alloc <- 0;
  Array.fill t.heads 0 (levels * slots) nil;
  Array.fill t.tails 0 (levels * slots) nil;
  Array.fill t.maps 0 levels 0;
  t.cur <- 0;
  t.wheel_count <- 0;
  t.next_seq <- 0;
  Array.fill t.run_vals 0 (Array.length t.run_vals) t.dummy;
  t.run_pos <- 0;
  t.run_len <- 0
