(* SplitMix64 over a one-element Int64 bigarray. The state used to be a
   [mutable int64] record field, but every write to a boxed-int64 field
   allocates a fresh box, and the mix arithmetic crossing function
   boundaries boxed each intermediate — 8 minor words per draw on paths
   (arrival gaps, service samples, steal-victim shuffles) that run for
   every simulated request. Bigarray storage is flat, and keeping the
   whole mix chain inside each draw function lets the compiler keep the
   intermediates in registers: an [int] draw now allocates nothing and a
   [float] draw only its boxed result. The draw values are bit-identical
   to the record version's. *)

type t = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

let golden_gamma = 0x9E3779B97F4A7C15L

let of_int64 state =
  let s : t = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout 1 in
  Bigarray.Array1.unsafe_set s 0 state;
  s

let create ~seed = of_int64 (Int64.of_int seed)

let copy (t : t) = of_int64 (Bigarray.Array1.unsafe_get t 0)

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 (t : t) =
  let s = Int64.add (Bigarray.Array1.unsafe_get t 0) golden_gamma in
  Bigarray.Array1.unsafe_set t 0 s;
  mix64 s

let split (t : t) =
  let seed = next_int64 t in
  (* Re-mix so that split streams do not share the master's gamma phase. *)
  of_int64 (mix64 seed)

(* The draw bodies below repeat the advance+mix chain instead of calling
   {!next_int64}: a call returning [int64] boxes its result, an inline
   chain stays unboxed end to end. *)

let[@zygos.hot] float (t : t) =
  let s = Int64.add (Bigarray.Array1.unsafe_get t 0) golden_gamma in
  Bigarray.Array1.unsafe_set t 0 s;
  let z = Int64.(mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  let z = Int64.(logxor z (shift_right_logical z 31)) in
  (* 53 high-quality bits -> [0, 1). *)
  let bits = Int64.shift_right_logical z 11 in
  Int64.to_float bits *. 0x1p-53

let float_range (t : t) lo hi =
  assert (lo <= hi);
  lo +. (float t *. (hi -. lo))

let[@zygos.hot] int (t : t) bound =
  assert (bound > 0);
  let s = Int64.add (Bigarray.Array1.unsafe_get t 0) golden_gamma in
  Bigarray.Array1.unsafe_set t 0 s;
  let z = Int64.(mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  let z = Int64.(logxor z (shift_right_logical z 31)) in
  (* Modulo bias is negligible for bounds << 2^62 (all our uses). *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical z 1) (Int64.of_int bound))

let int_range (t : t) lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool (t : t) = Int64.logand (next_int64 t) 1L = 1L

let[@zygos.hot] bernoulli (t : t) p = float t < p

let[@zygos.hot] exponential (t : t) ~mean =
  (* Inverse CDF; [1. -. float t] avoids log 0. *)
  -.mean *. log (1. -. float t)

let[@zygos.hot] normal (t : t) ~mu ~sigma =
  let u1 = 1. -. float t and u2 = float t in
  let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
  mu +. (sigma *. z)

(* Fisher–Yates. The small sizes are unrolled with the [int] draw chain
   inlined and the bound a compile-time constant: [rem 2] of a
   non-negative operand becomes a mask instead of a 64-bit divide, and
   steal-victim shuffles (length cores-1, typically 2-3) run on every
   scheduler poll. Each unrolled draw computes exactly [int t (i + 1)],
   so the permutation stream is bit-identical to the generic loop's. *)
let[@zygos.hot] shuffle_in_place (t : t) a =
  match Array.length a with
  | 0 | 1 -> ()
  | 2 ->
      let s = Int64.add (Bigarray.Array1.unsafe_get t 0) golden_gamma in
      Bigarray.Array1.unsafe_set t 0 s;
      let z = Int64.(mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L) in
      let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
      let z = Int64.(logxor z (shift_right_logical z 31)) in
      let j = Int64.to_int (Int64.logand (Int64.shift_right_logical z 1) 1L) in
      let tmp = Array.unsafe_get a 1 in
      Array.unsafe_set a 1 (Array.unsafe_get a j);
      Array.unsafe_set a j tmp
  | 3 ->
      let s = Int64.add (Bigarray.Array1.unsafe_get t 0) golden_gamma in
      Bigarray.Array1.unsafe_set t 0 s;
      let z = Int64.(mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L) in
      let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
      let z = Int64.(logxor z (shift_right_logical z 31)) in
      let j = Int64.to_int (Int64.rem (Int64.shift_right_logical z 1) 3L) in
      let tmp = Array.unsafe_get a 2 in
      Array.unsafe_set a 2 (Array.unsafe_get a j);
      Array.unsafe_set a j tmp;
      let s = Int64.add (Bigarray.Array1.unsafe_get t 0) golden_gamma in
      Bigarray.Array1.unsafe_set t 0 s;
      let z = Int64.(mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L) in
      let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
      let z = Int64.(logxor z (shift_right_logical z 31)) in
      let j = Int64.to_int (Int64.logand (Int64.shift_right_logical z 1) 1L) in
      let tmp = Array.unsafe_get a 1 in
      Array.unsafe_set a 1 (Array.unsafe_get a j);
      Array.unsafe_set a j tmp
  | n ->
      for i = n - 1 downto 1 do
        let j = int t (i + 1) in
        let tmp = Array.unsafe_get a i in
        Array.unsafe_set a i (Array.unsafe_get a j);
        Array.unsafe_set a j tmp
      done
