(* Event records are pooled: a scheduled event is a slot in a set of
   parallel arrays (action + generation), and the handle returned to the
   caller is an immediate int packing (generation, slot). Firing or
   cancelling a slot bumps its generation and pushes it on a free-list
   stack, so steady-state scheduling recycles slots instead of allocating,
   and a stale handle (fired or cancelled event, possibly with the slot
   since reused) can never touch the wrong event: its packed generation no
   longer matches the slot's.

   Dispatch comes in two flavours per slot: a closure ([actions]) or a
   long-lived function plus an immediate int payload ([fns]/[iargs]).
   The closure path allocates the closure per schedule; the fn path
   allocates nothing, which is what the hot call sites in the system
   models use. A slot is a fn-slot iff its [fns] entry is not the
   [noop_fn] sentinel (physical equality).

   Hot-path notes. Both [actions] and [fns] are pointer arrays, so every
   store pays a write barrier; schedule and release therefore skip stores
   whose value is already in place (steady state reuses a slot for the
   same pre-bound fn, turning the store into a read + compare). Only
   closure slots are scrubbed on release — retaining a top-level fn or a
   stale int payload is harmless, retaining a closure is a space leak.
   The clock lives in a one-element float array: a mutable float field of
   a mixed record is a boxed pointer, so advancing it would allocate a
   fresh box per event, while a flat array stores the bits in place.
   Unsafe array accesses are confined to indices bounded by [t.fresh]
   (<= capacity of every pool array) or produced by [alloc_slot].

   The queue is an {!Equeue}: the SoA binary heap or the hierarchical
   timing wheel, selected per-simulation ([create ?queue]), process-wide
   ([set_default_queue], the CLI's [--equeue]) or via the ZYGOS_EQUEUE
   environment variable. Both pop in identical (time, seqno) order, so
   the choice never affects simulation output. The step loop matches on
   the back end once and calls {!Heap}/{!Wheel} directly. *)

type handle = int

(* Real handles are (gen lsl slot_bits) lor slot >= 0, so any negative
   value is inert; [cancel] rejects negatives explicitly. *)
let no_handle = -1

let slot_bits = 24
let slot_mask = (1 lsl slot_bits) - 1

type stats = {
  scheduled : int;
  fired : int;
  cancelled : int;
  reused : int;
  pool_slots : int;
  live : int;
}

let noop () = ()

(* Sentinel for "this slot dispatches through [actions]"; compared with
   physical equality, so user fns are never misread as the sentinel. *)
let noop_fn (_ : int) = ()

type t = {
  clock : float array; (* one element; flat storage, see header comment *)
  tbuf : float array; (* one element; carries event times to/from the queue *)
  queue : Equeue.t;
  mutable actions : (unit -> unit) array;
  mutable fns : (int -> unit) array;
  mutable iargs : int array;
  mutable gens : int array;
  mutable free : int array;  (* stack of recyclable slots *)
  mutable free_top : int;
  mutable fresh : int;  (* slots handed out so far *)
  mutable n_scheduled : int;
  mutable n_fired : int;
  mutable n_cancelled : int;
  mutable n_reused : int;
}

(* Queue-kind selection: explicit [?queue] beats [set_default_queue]
   beats ZYGOS_EQUEUE beats the built-in default (wheel — goldens are
   bit-identical to the heap's, see test/test_equeue.ml). *)
let forced_default : Equeue.kind option ref = ref None

let set_default_queue kind = forced_default := Some kind

let default_queue () =
  match !forced_default with
  | Some k -> k
  | None -> (
      match Sys.getenv_opt "ZYGOS_EQUEUE" with
      | None | Some "" -> Equeue.Wheel
      | Some s -> (
          match Equeue.kind_of_string s with
          | Some k -> k
          | None ->
              invalid_arg
                (Printf.sprintf "ZYGOS_EQUEUE=%s: expected \"heap\" or \"wheel\"" s)))

let create ?queue () =
  let kind = match queue with Some k -> k | None -> default_queue () in
  {
    clock = [| 0. |];
    tbuf = [| 0. |];
    queue = Equeue.create ~dummy:0 kind;
    actions = Array.make 64 noop;
    fns = Array.make 64 noop_fn;
    iargs = Array.make 64 0;
    gens = Array.make 64 0;
    free = Array.make 64 0;
    free_top = 0;
    fresh = 0;
    n_scheduled = 0;
    n_fired = 0;
    n_cancelled = 0;
    n_reused = 0;
  }

let[@zygos.hot] now t = Array.unsafe_get t.clock 0

let clock_buffer t = t.clock

let key_buffer t = t.tbuf

let queue_kind t = Equeue.kind t.queue

let[@zygos.hot] grow_pool t =
  let cap = Array.length t.actions in
  if cap >= slot_mask + 1 then
    failwith "Sim: event pool exceeded 2^24 concurrent events";
  let new_cap = min (2 * cap) (slot_mask + 1) in
  (* amortized doubling: O(log n) growths over a run, zero steady-state *)
  let actions = (Array.make new_cap noop [@zygos.allow "hot-alloc"]) in
  let fns = (Array.make new_cap noop_fn [@zygos.allow "hot-alloc"]) in
  let iargs = (Array.make new_cap 0 [@zygos.allow "hot-alloc"]) in
  let gens = (Array.make new_cap 0 [@zygos.allow "hot-alloc"]) in
  let free = (Array.make new_cap 0 [@zygos.allow "hot-alloc"]) in
  Array.blit t.actions 0 actions 0 cap;
  Array.blit t.fns 0 fns 0 cap;
  Array.blit t.iargs 0 iargs 0 cap;
  Array.blit t.gens 0 gens 0 cap;
  Array.blit t.free 0 free 0 t.free_top;
  t.actions <- actions;
  t.fns <- fns;
  t.iargs <- iargs;
  t.gens <- gens;
  t.free <- free

(* Scrub only what can leak: a closure slot drops its closure; a fn slot
   keeps its (top-level, long-lived) fn and int payload, so releasing it
   writes nothing through the barrier. *)
let[@zygos.hot] release_slot t slot =
  Array.unsafe_set t.gens slot (Array.unsafe_get t.gens slot + 1);
  if Array.unsafe_get t.actions slot != noop then Array.unsafe_set t.actions slot noop;
  Array.unsafe_set t.free t.free_top slot;
  t.free_top <- t.free_top + 1

let[@zygos.hot] alloc_slot t =
  if t.free_top > 0 then begin
    t.free_top <- t.free_top - 1;
    t.n_reused <- t.n_reused + 1;
    Array.unsafe_get t.free t.free_top
  end
  else begin
    if t.fresh = Array.length t.actions then grow_pool t;
    let s = t.fresh in
    t.fresh <- s + 1;
    s
  end

(* Slot setup minus the float plumbing (the [at] key stays in the caller
   so each schedule boxes it exactly once, at the queue-add call). *)
let[@zygos.hot] prep_action t action =
  let slot = alloc_slot t in
  if Array.unsafe_get t.actions slot != action then Array.unsafe_set t.actions slot action;
  if Array.unsafe_get t.fns slot != noop_fn then Array.unsafe_set t.fns slot noop_fn;
  t.n_scheduled <- t.n_scheduled + 1;
  (Array.unsafe_get t.gens slot lsl slot_bits) lor slot

let[@zygos.hot] prep_fn t fn iarg =
  let slot = alloc_slot t in
  if Array.unsafe_get t.fns slot != fn then Array.unsafe_set t.fns slot fn;
  Array.unsafe_set t.iargs slot iarg;
  t.n_scheduled <- t.n_scheduled + 1;
  (Array.unsafe_get t.gens slot lsl slot_bits) lor slot

(* Enqueue the slot whose key the caller stored in [t.tbuf]: the time
   travels to the queue through the flat buffer ({!Heap.add_key}), so a
   steady-state schedule allocates nothing at all. *)
let[@zygos.hot] enqueue_key t h =
  match t.queue with
  | Equeue.H hp -> Heap.add_key hp t.tbuf h
  | Equeue.W w -> Wheel.add_key w t.tbuf h

let schedule t ~at action =
  if at < Array.unsafe_get t.clock 0 then
    invalid_arg
      (Printf.sprintf "Sim.schedule: at %g is in the past (now %g)" at
         (Array.unsafe_get t.clock 0));
  Array.unsafe_set t.tbuf 0 at;
  let h = prep_action t action in
  enqueue_key t h;
  h

let schedule_after t ~delay action =
  if delay < 0. then invalid_arg "Sim.schedule_after: negative delay";
  Array.unsafe_set t.tbuf 0 (Array.unsafe_get t.clock 0 +. delay);
  let h = prep_action t action in
  enqueue_key t h;
  h

let[@zygos.hot] schedule_fn t ~at fn iarg =
  if at < Array.unsafe_get t.clock 0 then
    invalid_arg
      (Printf.sprintf "Sim.schedule_fn: at %g is in the past (now %g)" at
         (Array.unsafe_get t.clock 0));
  Array.unsafe_set t.tbuf 0 at;
  let h = prep_fn t fn iarg in
  enqueue_key t h;
  h

let[@zygos.hot] schedule_fn_after t ~delay fn iarg =
  if delay < 0. then invalid_arg "Sim.schedule_fn_after: negative delay";
  Array.unsafe_set t.tbuf 0 (Array.unsafe_get t.clock 0 +. delay);
  let h = prep_fn t fn iarg in
  enqueue_key t h;
  h

(* Keyed variants: the caller stored the absolute time in [t.tbuf]
   (see {!key_buffer}); no float crosses the call, so nothing boxes. *)
let[@zygos.hot] schedule_keyed t action =
  if Array.unsafe_get t.tbuf 0 < Array.unsafe_get t.clock 0 then
    invalid_arg
      (Printf.sprintf "Sim.schedule_keyed: at %g is in the past (now %g)"
         (Array.unsafe_get t.tbuf 0) (Array.unsafe_get t.clock 0));
  let h = prep_action t action in
  enqueue_key t h;
  h

let[@zygos.hot] schedule_fn_keyed t fn iarg =
  if Array.unsafe_get t.tbuf 0 < Array.unsafe_get t.clock 0 then
    invalid_arg
      (Printf.sprintf "Sim.schedule_fn_keyed: at %g is in the past (now %g)"
         (Array.unsafe_get t.tbuf 0) (Array.unsafe_get t.clock 0));
  let h = prep_fn t fn iarg in
  enqueue_key t h;
  h

let[@zygos.hot] cancel t h =
  let slot = h land slot_mask in
  let gen = h lsr slot_bits in
  (* [h >= 0] rejects [no_handle]; [slot < t.fresh] guards stale handles
     from before a [clear]-style reset as well as forged ones; past it,
     unsafe access is in bounds. *)
  if h >= 0 && slot < t.fresh && Array.unsafe_get t.gens slot = gen then begin
    release_slot t slot;
    t.n_cancelled <- t.n_cancelled + 1
  end

let pending t = Equeue.length t.queue

let live t = t.n_scheduled - t.n_fired - t.n_cancelled

(* Fire the event behind [h] (whose time the pop left in [t.tbuf]), or
   skip it if its generation is stale (cancelled); returns whether a
   callback actually ran. The clock only advances on an actual fire,
   and is copied flat from [tbuf] before the callback runs (which may
   overwrite [tbuf] by scheduling). *)
let[@zygos.hot] fire t h =
  let slot = h land slot_mask in
  let gen = h lsr slot_bits in
  if Array.unsafe_get t.gens slot <> gen then false (* cancelled; slot recycled *)
  else begin
    let fn = Array.unsafe_get t.fns slot in
    if fn != noop_fn then begin
      (* read the payload before releasing: the fn may reschedule into
         this very slot. A fn slot's release skips {!release_slot}'s
         [actions] scrub check — fn slots never hold a closure, and the
         check would drag the [actions] array into cache on every fire. *)
      let iarg = Array.unsafe_get t.iargs slot in
      Array.unsafe_set t.gens slot (Array.unsafe_get t.gens slot + 1);
      Array.unsafe_set t.free t.free_top slot;
      t.free_top <- t.free_top + 1;
      t.n_fired <- t.n_fired + 1;
      Array.unsafe_set t.clock 0 (Array.unsafe_get t.tbuf 0);
      (* dynamic dispatch: every registered handler is itself a certified
         [@zygos.hot] root, so the edge is deliberately cut here *)
      (fn iarg [@zygos.allow "r6"])
    end
    else begin
      let action = Array.unsafe_get t.actions slot in
      release_slot t slot;
      t.n_fired <- t.n_fired + 1;
      Array.unsafe_set t.clock 0 (Array.unsafe_get t.tbuf 0);
      (action () [@zygos.allow "r6"])
    end;
    true
  end

let[@zygos.hot] step t =
  match t.queue with
  | Equeue.H hp ->
      let fired = ref false in
      while (not !fired) && not (Heap.is_empty hp) do
        fired := fire t (Heap.pop_into hp t.tbuf)
      done;
      !fired
  | Equeue.W w ->
      let fired = ref false in
      while (not !fired) && not (Wheel.is_empty w) do
        fired := fire t (Wheel.pop_into w t.tbuf)
      done;
      !fired

(* The drain loop matches on the back end once, outside the loop; stale
   (cancelled) pops need no retry here because the loop condition is
   queue emptiness, not "fired". *)
let run t =
  match t.queue with
  | Equeue.H hp ->
      while not (Heap.is_empty hp) do
        ignore (fire t (Heap.pop_into hp t.tbuf) : bool)
      done
  | Equeue.W w ->
      while not (Wheel.is_empty w) do
        ignore (fire t (Wheel.pop_into w t.tbuf) : bool)
      done

let run_until t horizon =
  while (not (Equeue.is_empty t.queue)) && Equeue.min_time t.queue <= horizon do
    ignore (step t : bool)
  done;
  if horizon > Array.unsafe_get t.clock 0 then Array.unsafe_set t.clock 0 horizon

let stats t =
  {
    scheduled = t.n_scheduled;
    fired = t.n_fired;
    cancelled = t.n_cancelled;
    reused = t.n_reused;
    pool_slots = t.fresh;
    live = live t;
  }
