(* Structure-of-arrays binary min-heap.

   Keys live in a flat [float array] (unboxed storage) and payloads in a
   parallel ['a array], so pushing an element writes three array slots
   instead of boxing a record, and the peek/drop API below pops without
   allocating an option or tuple. The [dummy] element fills unused value
   slots so the heap never retains (or exposes) stale payloads.

   The sift loops move a hole instead of swapping, and use unsafe array
   accesses: every index is bounded by [t.size], which the public
   operations keep within the capacity of all three arrays. *)

type 'a t = {
  mutable times : float array;  (* slots [0, size) are live *)
  mutable seqs : int array;
  mutable values : 'a array;
  mutable size : int;
  mutable next_seq : int;
  kbuf : float array;  (* one-element scratch backing [add]'s key, see [add_key] *)
  dummy : 'a;
}

let create ?(capacity = 64) ~dummy () =
  let capacity = max capacity 1 in
  {
    times = Array.make capacity 0.;
    seqs = Array.make capacity 0;
    values = Array.make capacity dummy;
    size = 0;
    next_seq = 0;
    kbuf = [| 0. |];
    dummy;
  }

let length t = t.size

let[@zygos.hot] is_empty t = t.size = 0

let[@zygos.hot] grow t =
  let new_cap = 2 * Array.length t.times in
  (* amortized doubling: O(log n) growths over a run, zero steady-state *)
  let times = (Array.make new_cap 0. [@zygos.allow "hot-alloc"]) in
  let seqs = (Array.make new_cap 0 [@zygos.allow "hot-alloc"]) in
  let values = (Array.make new_cap t.dummy [@zygos.allow "hot-alloc"]) in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.values 0 values 0 t.size;
  t.times <- times;
  t.seqs <- seqs;
  t.values <- values

(* The key arrives in [buf.(0)] rather than as a float argument: without
   flambda a float crossing a function boundary is boxed at the caller,
   so the simulator's schedule path hands its (clock + delay) key over
   through a flat one-element array and steady-state adds allocate
   nothing. [add] below keeps the ergonomic labelled-argument form. *)
let[@zygos.hot] add_key t buf value =
  let time = Array.unsafe_get buf 0 in
  if t.size = Array.length t.times then grow t;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let times = t.times and seqs = t.seqs and values = t.values in
  (* Sift up moving a hole: the new element has the largest seq so far, so
     on a time tie the parent stays above it and a strict [<] suffices. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let moving = ref true in
  while !moving && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pt = Array.unsafe_get times parent in
    if time < pt then begin
      Array.unsafe_set times !i pt;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs parent);
      Array.unsafe_set values !i (Array.unsafe_get values parent);
      i := parent
    end
    else moving := false
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set values !i value

let[@zygos.hot] add t ~time value =
  Array.unsafe_set t.kbuf 0 time;
  add_key t t.kbuf value

let[@zygos.hot] min_time t = if t.size = 0 then infinity else Array.unsafe_get t.times 0

let[@zygos.hot] min_elt t = if t.size = 0 then t.dummy else Array.unsafe_get t.values 0

let[@zygos.hot] drop_min t =
  if t.size > 0 then begin
    let n = t.size - 1 in
    t.size <- n;
    if n = 0 then t.values.(0) <- t.dummy
    else begin
      let times = t.times and seqs = t.seqs and values = t.values in
      (* Move the last element into the root's hole, sifting it down. *)
      let time = Array.unsafe_get times n and seq = Array.unsafe_get seqs n in
      let value = Array.unsafe_get values n in
      Array.unsafe_set values n t.dummy;
      let i = ref 0 in
      let moving = ref true in
      while !moving do
        let left = (2 * !i) + 1 in
        if left >= n then moving := false
        else begin
          let right = left + 1 in
          let child =
            if
              right < n
              && (let rt = Array.unsafe_get times right
                  and lt = Array.unsafe_get times left in
                  rt < lt
                  || (rt = lt && Array.unsafe_get seqs right < Array.unsafe_get seqs left))
            then right
            else left
          in
          let ct = Array.unsafe_get times child in
          if ct < time || (ct = time && Array.unsafe_get seqs child < seq) then begin
            Array.unsafe_set times !i ct;
            Array.unsafe_set seqs !i (Array.unsafe_get seqs child);
            Array.unsafe_set values !i (Array.unsafe_get values child);
            i := child
          end
          else moving := false
        end
      done;
      Array.unsafe_set times !i time;
      Array.unsafe_set seqs !i seq;
      Array.unsafe_set values !i value
    end
  end

(* Pop the minimum, writing its time into [buf.(0)] (flat store — no
   boxed-float return) and returning its payload. The heap must be
   non-empty; the caller checks [is_empty] first. *)
let[@zygos.hot] pop_into t buf =
  Array.unsafe_set buf 0 (Array.unsafe_get t.times 0);
  let v = Array.unsafe_get t.values 0 in
  drop_min t;
  v

let pop_min t =
  if t.size = 0 then None
  else begin
    let time = t.times.(0) and value = t.values.(0) in
    drop_min t;
    Some (time, value)
  end

let peek_min_time t = if t.size = 0 then None else Some t.times.(0)

let clear t =
  Array.fill t.values 0 t.size t.dummy;
  t.size <- 0;
  t.next_seq <- 0
