(** Discrete-event simulation core.

    A simulation is a virtual clock plus an event queue of timestamped
    callbacks. Simulated time is a float in microseconds. Events scheduled
    for the same instant fire in scheduling order, so runs are fully
    deterministic given deterministic callbacks and {!Rng} seeds.

    The hot path is allocation-free in steady state: event records live in
    a pool of recycled slots, handles are immediate integers carrying a
    per-slot generation, and the queue stores its keys in flat arrays.
    Two dispatch APIs share the pool: {!schedule} takes a closure (one
    allocation per event), while {!schedule_fn} takes a long-lived
    [int -> unit] plus an immediate payload and allocates nothing.

    The queue implementation — binary heap or hierarchical timing wheel,
    see {!Equeue} — is selectable per simulation, process-wide, or via
    the [ZYGOS_EQUEUE] environment variable; both pop in identical
    (time, seqno) order so the choice never affects simulation output.

    Events can be cancelled through the handle returned by {!schedule};
    cancellation is O(1) (the queue entry stays queued but is skipped, and
    the slot is recycled immediately). *)

type t

type handle = private int
(** A scheduled event, usable for cancellation. Handles are immediate
    values (no allocation) and generation-checked: a handle whose event has
    fired or been cancelled is inert even after its pool slot is reused. *)

val no_handle : handle
(** A sentinel no real handle ever equals (handles pack (generation, slot)
    as a non-negative int; [no_handle] is negative). Lets callers store "no
    event armed" in a flat [handle] field instead of a [handle option],
    avoiding a [Some] allocation per armed event. [cancel t no_handle] is a
    no-op. *)

type stats = {
  scheduled : int;  (** events ever scheduled *)
  fired : int;  (** events whose callback ran *)
  cancelled : int;  (** live events cancelled (stale cancels excluded) *)
  reused : int;  (** schedules served from the free list (pool hits) *)
  pool_slots : int;  (** distinct pool slots ever handed out *)
  live : int;  (** events scheduled but not yet fired or cancelled *)
}
(** Event-pool counters. In steady state [reused] tracks [scheduled] and
    [pool_slots] stays at the high-water mark of concurrently pending
    events — the signature of an allocation-free hot path. *)

val create : ?queue:Equeue.kind -> unit -> t
(** Fresh simulation with clock at 0. [queue] selects the event-queue
    back end; when omitted the process default applies
    ({!set_default_queue}, else [ZYGOS_EQUEUE=heap|wheel], else
    [Wheel]). *)

val set_default_queue : Equeue.kind -> unit
(** Process-wide queue default for subsequent {!create} calls without an
    explicit [?queue]. Overrides [ZYGOS_EQUEUE]; the CLI's [--equeue]
    flag calls this before spawning workers. *)

val queue_kind : t -> Equeue.kind
(** The back end this simulation's queue runs on. *)

val now : t -> float
(** Current simulated time (µs). *)

val clock_buffer : t -> float array
(** The one-element backing buffer of the simulation clock, so embedders'
    hot paths can read the current time with one inline array load
    instead of a call. Read-only: writing to it corrupts the clock. *)

val key_buffer : t -> float array
(** The one-element buffer through which event times travel to the
    queue. Write the absolute time into slot 0 and call
    {!schedule_keyed} / {!schedule_fn_keyed}: the float never crosses a
    call boundary, so a steady-state schedule allocates nothing (a
    [~at:] float argument is boxed at every call site). *)

val schedule_keyed : t -> (unit -> unit) -> handle
(** Like {!schedule}, with the time taken from {!key_buffer} slot 0. *)

val schedule_fn_keyed : t -> (int -> unit) -> int -> handle
(** Like {!schedule_fn}, with the time taken from {!key_buffer} slot 0. *)

val schedule : t -> at:float -> (unit -> unit) -> handle
(** [schedule t ~at f] runs [f] when the clock reaches [at]. [at] must not
    be in the past (raises [Invalid_argument]). Allocates the closure the
    caller builds; cold paths only — hot paths use {!schedule_fn}. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> handle
(** [schedule_after t ~delay f] = [schedule t ~at:(now t +. delay) f].
    [delay] must be non-negative. *)

val schedule_fn : t -> at:float -> (int -> unit) -> int -> handle
(** [schedule_fn t ~at fn iarg] runs [fn iarg] when the clock reaches
    [at]. [fn] must be long-lived (pre-bound at setup, e.g. indexed by
    core or connection id) and [iarg] is stored unboxed in the event
    pool, so steady-state scheduling allocates zero words. Ordering is
    identical to {!schedule}: one (time, seqno) sequence spans both
    APIs. *)

val schedule_fn_after : t -> delay:float -> (int -> unit) -> int -> handle
(** [schedule_fn_after t ~delay fn iarg] =
    [schedule_fn t ~at:(now t +. delay) fn iarg]. *)

val cancel : t -> handle -> unit
(** Prevent a pending event from firing. Cancelling a fired or already
    cancelled event is a no-op. *)

val pending : t -> int
(** Number of events still queued, {e including} cancelled ones not yet
    skipped by {!step}. Use {!live} for the exact outstanding count. *)

val live : t -> int
(** Number of events scheduled but not yet fired or cancelled — the
    exact queue depth, unlike {!pending} which also counts lazily
    cancelled entries still sitting in the queue. O(1). *)

val step : t -> bool
(** Execute the next event, advancing the clock. Returns [false] when the
    queue is empty. *)

val run : t -> unit
(** Run until no events remain. *)

val run_until : t -> float -> unit
(** [run_until t horizon] executes events with timestamp <= [horizon], then
    advances the clock to [horizon]. Events beyond stay queued. *)

val stats : t -> stats
(** Snapshot of the event-pool counters. *)
