(** The simulator's event queue behind a runtime-selectable back end.

    [Heap] is the structure-of-arrays binary heap ({!Heap}); [Wheel] is
    the hierarchical timing wheel ({!Wheel}). Both pop in (time,
    insertion-sequence) order — FIFO among equal times — and produce
    bit-identical pop sequences for any interleaving of adds and pops,
    so switching back ends never changes simulation output, only speed.
    Payloads are [int] (simulator event handles). *)

type kind = Heap | Wheel

type t = H of int Heap.t | W of Wheel.t
(** The representation is exposed so {!Sim}'s hot loop can match on the
    back end once per operation and call {!Heap}/{!Wheel} directly,
    instead of paying a dispatch per [add]/[min_time]/[drop_min]. Use
    the functions below everywhere else. *)

val create : ?capacity:int -> ?dummy:int -> kind -> t
val kind : t -> kind

val add : t -> time:float -> int -> unit
(** Heap: O(log n). Wheel: O(1). Neither allocates in steady state. *)

val min_time : t -> float
(** Earliest queued time, or [infinity] when empty. *)

val min_elt : t -> int
(** Value at the earliest (time, seq) key, or [dummy] when empty. *)

val drop_min : t -> unit
(** Remove the minimum element; no-op when empty. *)

val length : t -> int
val is_empty : t -> bool

val clear : t -> unit
(** Empty the queue and reset the insertion sequence. *)

val kind_to_string : kind -> string

val kind_of_string : string -> kind option
(** Case-insensitive ["heap"] / ["wheel"]. *)
