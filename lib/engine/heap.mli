(** Structure-of-arrays binary min-heap keyed by (time, sequence number).

    The event queue of the discrete-event simulator. Ties on time break by
    insertion order (FIFO), which keeps simulations deterministic and makes
    "simultaneous" events execute in the order they were scheduled.

    Keys are stored in a flat [float array] and payloads in a parallel
    ['a array], so the hot path ({!add} / {!min_time} / {!min_elt} /
    {!drop_min}) allocates nothing in steady state. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** Fresh heap. [dummy] fills unused payload slots, so the heap never
    retains a popped value; it is also what {!min_elt} returns on an empty
    heap. [capacity] (default 64) is the initial slot count. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> time:float -> 'a -> unit
(** Insert an element with the given priority. O(log n), allocation-free
    unless the backing arrays must grow. *)

val add_key : 'a t -> float array -> 'a -> unit
(** [add] with the key passed in [buf.(0)] instead of a float argument:
    a float crossing a non-inlined call is boxed at the caller, so the
    simulator's schedule path hands the key over through a flat
    one-element array. The buffer is read before the call returns. *)

val min_time : 'a t -> float
(** Time of the earliest element, [infinity] when empty. Never allocates. *)

val min_elt : 'a t -> 'a
(** Payload of the earliest element, [dummy] when empty. Never allocates. *)

val drop_min : 'a t -> unit
(** Remove the earliest element (no-op when empty). O(log n),
    allocation-free. Peek-then-drop via {!min_time}/{!min_elt} is the
    non-allocating equivalent of {!pop_min}. *)

val pop_into : 'a t -> float array -> 'a
(** Remove the earliest element, writing its time into [buf.(0)] and
    returning its payload — the allocation-free dual of {!add_key}. The
    heap must be non-empty (unchecked); callers test {!is_empty} first. *)

val pop_min : 'a t -> (float * 'a) option
(** Remove and return the earliest element (smallest time, then earliest
    insertion). O(log n). Convenience wrapper over peek-then-drop; it
    allocates the option and tuple, so hot paths should prefer
    {!min_time}/{!min_elt}/{!drop_min}. *)

val peek_min_time : 'a t -> float option
(** Time of the earliest element without removing it (allocates an
    option; {!min_time} is the non-allocating variant). *)

val clear : 'a t -> unit
(** Empty the heap, releasing every retained payload. *)
