(** A remote procedure call in flight.

    Requests are created by the load generator ({!Loadgen}), carried through
    a simulated server system (lib/systems), and completed when the response
    is written back "on the wire". Latency is measured client-side as
    [completion - arrival], exactly as the paper measures with mutilate.

    A request is an {e immediate int handle} into a per-experiment arena
    ({!pool}): all per-request state lives in parallel SoA arrays (flat
    float arrays for times, int arrays for ids/conns), mirroring the
    engine's event pool. Creating, touching, and completing a request
    allocates nothing on the OCaml heap. Handles carry a generation
    number; touching a handle whose slot was recycled raises, so
    use-after-release is caught deterministically rather than corrupting
    another request's state. *)

type t = int
(** Handle: [(generation lsl slot_bits) lor slot]. Immediate, so it can
    ride in any int-payload channel (Sim.schedule_fn iargs, Sched event
    queues, Intq rings) without boxing. *)

type pool

val none : t
(** Sentinel "no request" handle ([-1]); never returned by {!alloc}. *)

val create_pool : ?recycle:bool -> ?capacity:int -> unit -> pool
(** [recycle] (default [false]) controls whether {!release} actually
    returns slots for reuse. Paths that may touch a request after its
    first completion (duplicate deliveries, hedged copies, failover)
    must run with [recycle:false]: the pool then grows monotonically —
    bounded by the total request count — and every handle stays valid
    for the whole run. The clean fast path (no faults, no retries)
    enables recycling and runs in O(outstanding) slots. *)

val alloc :
  pool -> id:int -> conn:int -> arrival:float -> service:float -> measured:bool -> t
(** [id] is explicit (not pool-assigned) because cluster re-dispatch
    creates fresh handles carrying the same logical request id. *)

val release : pool -> t -> unit
(** Return the slot for reuse (generation-bumped). No-op when the pool
    was created with [recycle:false]. Raises on a stale handle. *)

(** {2 Field access} — all raise [Invalid_argument] on a stale or
    [none] handle. *)

val id : pool -> t -> int
(** Unique, increasing in arrival order (per load generator). *)

val conn : pool -> t -> int
(** Connection carrying this RPC. *)

val arrival : pool -> t -> float
(** Sim time the request hits the server NIC (µs). *)

val service : pool -> t -> float
(** Application service demand (µs). *)

val measured : pool -> t -> bool
(** Inside the measurement window (not warmup/drain)? *)

val started : pool -> t -> float
(** Sim time application execution began; -1 if not yet. *)

val set_started : pool -> t -> float -> unit

val completion : pool -> t -> float
(** Sim time the response was sent; -1 if pending. *)

val set_completion : pool -> t -> float -> unit

val is_completed : pool -> t -> bool

val latency : pool -> t -> float
(** [completion - arrival]. Raises [Invalid_argument] if not completed. *)

val pp : pool -> Format.formatter -> t -> unit

(** {2 Introspection} (experiment info / perf guards) *)

val live : pool -> int
(** Handles allocated and not yet released. *)

val allocated : pool -> int
(** Total {!alloc} calls over the pool's lifetime. *)

val hwm : pool -> int
(** High-water mark of distinct slots ever in use — with recycling on,
    [allocated / hwm] is the reuse ratio the perf guard checks. *)
