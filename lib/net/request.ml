(* SoA request arena with generation-checked int handles.

   Same discipline as the engine event pool (lib/engine/sim.ml): a
   handle packs (generation lsl slot_bits) lor slot; the generation in
   the handle must match the slot's current generation or the access
   raises. Field arrays are parallel: float fields live in flat float
   arrays (unboxed), int/bool fields in int arrays, so the per-request
   working set is a handful of adjacent array cells instead of a
   scattered 8-word heap record per message. *)

type t = int

let slot_bits = 24
let slot_mask = (1 lsl slot_bits) - 1
let none = -1

type pool = {
  recycle : bool;
  mutable ids : int array;
  mutable conns : int array;
  mutable arrivals : float array;
  mutable services : float array;
  mutable starteds : float array;
  mutable completions : float array;
  mutable measureds : int array; (* 0/1; int to share the grow path idiom *)
  mutable gens : int array;
  mutable free : int array; (* stack of recycled slots *)
  mutable free_n : int;
  mutable next_slot : int; (* high-water mark: slots [0, next_slot) initialised *)
  mutable live_count : int;
  mutable alloc_count : int;
}

let create_pool ?(recycle = false) ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Request.create_pool: capacity < 1";
  {
    recycle;
    ids = Array.make capacity 0;
    conns = Array.make capacity 0;
    arrivals = Array.make capacity 0.;
    services = Array.make capacity 0.;
    starteds = Array.make capacity (-1.);
    completions = Array.make capacity (-1.);
    measureds = Array.make capacity 0;
    gens = Array.make capacity 0;
    free = Array.make capacity 0;
    free_n = 0;
    next_slot = 0;
    live_count = 0;
    alloc_count = 0;
  }

(* Amortized doubling of the arena: allocation here is the documented
   cost of exceeding the pre-sized capacity, not steady-state churn.
   Top-level monomorphic helpers instead of local closures so [grow]
   allocates nothing beyond the new arrays themselves. *)
let[@zygos.hot] extend (a : int array) ncap fill =
  (let b = Array.make ncap fill in
   Array.blit a 0 b 0 (Array.length a);
   b)
  [@zygos.allow "hot-alloc"]

let[@zygos.hot] extendf (a : float array) ncap fill =
  (let b = Array.make ncap fill in
   Array.blit a 0 b 0 (Array.length a);
   b)
  [@zygos.allow "hot-alloc"]

let[@zygos.hot] grow p =
  let ncap = 2 * Array.length p.ids in
  p.ids <- extend p.ids ncap 0;
  p.conns <- extend p.conns ncap 0;
  p.arrivals <- extendf p.arrivals ncap 0.;
  p.services <- extendf p.services ncap 0.;
  p.starteds <- extendf p.starteds ncap (-1.);
  p.completions <- extendf p.completions ncap (-1.);
  p.measureds <- extend p.measureds ncap 0;
  p.gens <- extend p.gens ncap 0;
  p.free <- extend p.free ncap 0

let[@zygos.hot] slot_of p (h : t) =
  let slot = h land slot_mask in
  if h < 0 || slot >= p.next_slot || Array.unsafe_get p.gens slot <> h lsr slot_bits
  then invalid_arg "Request: stale or invalid handle";
  slot

let[@zygos.hot] alloc p ~id ~conn ~arrival ~service ~measured =
  let slot =
    if p.free_n > 0 then begin
      p.free_n <- p.free_n - 1;
      Array.unsafe_get p.free p.free_n
    end
    else begin
      if p.next_slot = Array.length p.ids then grow p;
      let s = p.next_slot in
      p.next_slot <- s + 1;
      s
    end
  in
  Array.unsafe_set p.ids slot id;
  Array.unsafe_set p.conns slot conn;
  Array.unsafe_set p.arrivals slot arrival;
  Array.unsafe_set p.services slot service;
  Array.unsafe_set p.measureds slot (if measured then 1 else 0);
  Array.unsafe_set p.starteds slot (-1.);
  Array.unsafe_set p.completions slot (-1.);
  p.live_count <- p.live_count + 1;
  p.alloc_count <- p.alloc_count + 1;
  (Array.unsafe_get p.gens slot lsl slot_bits) lor slot

let[@zygos.hot] release p h =
  let slot = slot_of p h in
  if p.recycle then begin
    Array.unsafe_set p.gens slot (Array.unsafe_get p.gens slot + 1);
    if p.free_n = Array.length p.free then grow p;
    Array.unsafe_set p.free p.free_n slot;
    p.free_n <- p.free_n + 1
  end;
  p.live_count <- p.live_count - 1

let[@zygos.hot] id p h = Array.unsafe_get p.ids (slot_of p h)
let[@zygos.hot] conn p h = Array.unsafe_get p.conns (slot_of p h)
let[@zygos.hot] arrival p h = Array.unsafe_get p.arrivals (slot_of p h)
let[@zygos.hot] service p h = Array.unsafe_get p.services (slot_of p h)
let[@zygos.hot] measured p h = Array.unsafe_get p.measureds (slot_of p h) = 1
let[@zygos.hot] started p h = Array.unsafe_get p.starteds (slot_of p h)
let[@zygos.hot] set_started p h v = Array.unsafe_set p.starteds (slot_of p h) v
let[@zygos.hot] completion p h = Array.unsafe_get p.completions (slot_of p h)
let[@zygos.hot] set_completion p h v = Array.unsafe_set p.completions (slot_of p h) v
let[@zygos.hot] is_completed p h = Array.unsafe_get p.completions (slot_of p h) >= 0.

let[@zygos.hot] latency p h =
  let slot = slot_of p h in
  let c = Array.unsafe_get p.completions slot in
  if c < 0. then invalid_arg "Request.latency: not completed";
  c -. Array.unsafe_get p.arrivals slot

let pp p ppf h =
  let slot = slot_of p h in
  Format.fprintf ppf "req#%d conn=%d arrival=%.3f service=%.3f completion=%.3f" p.ids.(slot)
    p.conns.(slot) p.arrivals.(slot) p.services.(slot) p.completions.(slot)

let live p = p.live_count
let allocated p = p.alloc_count
let hwm p = p.next_slot
