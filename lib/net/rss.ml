(* The default secret key Microsoft publishes with the RSS specification
   (also the default of many NIC drivers). *)
let default_key =
  "\x6d\x5a\x56\xda\x25\x5b\x0e\xc2\x41\x67\x25\x3d\x43\xa3\x8f\xb0\xd0\xca\x2b\xcb\xae\x7b\x30\xb4\x77\xcb\x2d\xa3\x80\x30\xf2\x0c\x6a\x42\xb7\x3b\xbe\xac\x01\xfa"

let indirection_entries = 128

(* The 4-tuple input is fixed at 12 bytes (IPv4 src/dst ip + ports), so
   the hash of an input is the XOR of 12 independent per-byte
   contributions: contribution(position, value) depends only on the key.
   [lut] tabulates all 12×256 of them once per [create]; hashing a tuple
   is then 12 table loads and XORs instead of ~96 bit-serial 32-bit
   window rebuilds. Entries are 32-bit values held in immediate ints. *)
type t = {
  table : int array;
  nqueues : int;
  lut : int array; (* 12*256; index = byte_pos*256 + byte_value *)
  mutable memo : int array; (* conn -> indirection slot; -1 = not yet hashed *)
}

let tuple_bytes_len = 12

(* Bit [i] of the key, MSB-first. *)
let key_bit key i = Char.code key.[i / 8] lsr (7 - (i mod 8)) land 1

(* Sliding 32-bit window of the key starting at bit [bit_pos], as an int. *)
let key_window key bit_pos =
  let w = ref 0 in
  for i = 0 to 31 do
    w := (!w lsl 1) lor key_bit key (bit_pos + i)
  done;
  !w

let build_lut key =
  let lut = Array.make (tuple_bytes_len * 256) 0 in
  for bpos = 0 to tuple_bytes_len - 1 do
    (* Contribution of each of the 8 bits of the byte at [bpos]. *)
    let w0 = key_window key (8 * bpos) in
    let w1 = key_window key ((8 * bpos) + 1) in
    let w2 = key_window key ((8 * bpos) + 2) in
    let w3 = key_window key ((8 * bpos) + 3) in
    let w4 = key_window key ((8 * bpos) + 4) in
    let w5 = key_window key ((8 * bpos) + 5) in
    let w6 = key_window key ((8 * bpos) + 6) in
    let w7 = key_window key ((8 * bpos) + 7) in
    for v = 0 to 255 do
      let h = ref 0 in
      if v land 0x80 <> 0 then h := !h lxor w0;
      if v land 0x40 <> 0 then h := !h lxor w1;
      if v land 0x20 <> 0 then h := !h lxor w2;
      if v land 0x10 <> 0 then h := !h lxor w3;
      if v land 0x08 <> 0 then h := !h lxor w4;
      if v land 0x04 <> 0 then h := !h lxor w5;
      if v land 0x02 <> 0 then h := !h lxor w6;
      if v land 0x01 <> 0 then h := !h lxor w7;
      lut.((bpos * 256) + v) <- !h
    done
  done;
  lut

let create ?(key = default_key) ~queues () =
  if queues < 1 then invalid_arg "Rss.create: queues < 1";
  if String.length key < 16 then invalid_arg "Rss.create: key too short";
  let table = Array.init indirection_entries (fun i -> i mod queues) in
  { table; nqueues = queues; lut = build_lut key; memo = Array.make 256 (-1) }

let toeplitz ~key input =
  let hash = ref 0l in
  (* Sliding 32-bit window of the key, starting at its first 32 bits. *)
  let key_window_at bit_pos =
    let w = ref 0l in
    for i = 0 to 31 do
      w := Int32.logor (Int32.shift_left !w 1) (Int32.of_int (key_bit key (bit_pos + i)))
    done;
    !w
  in
  let nbits = 8 * Bytes.length input in
  if String.length key * 8 < nbits + 32 then invalid_arg "Rss.toeplitz: key too short for input";
  for i = 0 to nbits - 1 do
    let byte = Char.code (Bytes.get input (i / 8)) in
    let bit = byte lsr (7 - (i mod 8)) land 1 in
    if bit = 1 then hash := Int32.logxor !hash (key_window_at i)
  done;
  !hash

(* 12-tuple fast path: byte extraction straight from the tuple ints,
   no Bytes scratch, 12 LUT loads + XORs. Bitwise-equal to
   [toeplitz ~key (tuple_bytes ...)] (qcheck-enforced). Takes the ips
   as plain 32-bit-ranged ints so the all-int callers below stay
   box-free. *)
let[@zygos.hot] hash12 t si di src_port dst_port =
  let lut = t.lut in
  let h = Array.unsafe_get lut (si lsr 24) in
  let h = h lxor Array.unsafe_get lut (256 + (si lsr 16 land 0xff)) in
  let h = h lxor Array.unsafe_get lut ((2 * 256) + (si lsr 8 land 0xff)) in
  let h = h lxor Array.unsafe_get lut ((3 * 256) + (si land 0xff)) in
  let h = h lxor Array.unsafe_get lut ((4 * 256) + (di lsr 24)) in
  let h = h lxor Array.unsafe_get lut ((5 * 256) + (di lsr 16 land 0xff)) in
  let h = h lxor Array.unsafe_get lut ((6 * 256) + (di lsr 8 land 0xff)) in
  let h = h lxor Array.unsafe_get lut ((7 * 256) + (di land 0xff)) in
  let h = h lxor Array.unsafe_get lut ((8 * 256) + (src_port lsr 8 land 0xff)) in
  let h = h lxor Array.unsafe_get lut ((9 * 256) + (src_port land 0xff)) in
  let h = h lxor Array.unsafe_get lut ((10 * 256) + (dst_port lsr 8 land 0xff)) in
  let h = h lxor Array.unsafe_get lut ((11 * 256) + (dst_port land 0xff)) in
  h

let hash_of_tuple t ~src_ip ~dst_ip ~src_port ~dst_port =
  hash12 t
    (Int32.to_int src_ip land 0xffffffff)
    (Int32.to_int dst_ip land 0xffffffff)
    src_port dst_port

let[@zygos.hot] queue_of_tuple t ~src_ip ~dst_ip ~src_port ~dst_port =
  let h =
    hash12 t
      (Int32.to_int src_ip land 0xffffffff)
      (Int32.to_int dst_ip land 0xffffffff)
      src_port dst_port
  in
  Array.unsafe_get t.table (h land 0x7f)

let[@zygos.hot] grow_memo t c =
  let cap = Array.length t.memo in
  let ncap =
    let n = ref (2 * cap) in
    while !n <= c do
      n := 2 * !n
    done;
    !n
  in
  (* Amortized doubling of the memo table (cold: new conns only). *)
  let memo = (Array.make ncap (-1) [@zygos.allow "hot-alloc"]) in
  Array.blit t.memo 0 memo 0 cap;
  t.memo <- memo

(* The conn→slot map is pure (remapping rewrites slot→queue, never the
   hash), so it is memoised per connection: the steady-state lookup is
   one array load. *)
let[@zygos.hot] slot_of_conn t c =
  if c < 0 then invalid_arg "Rss.slot_of_conn: negative conn";
  if c >= Array.length t.memo then grow_memo t c;
  let s = Array.unsafe_get t.memo c in
  if s >= 0 then s
  else begin
    (* The synthetic 4-tuple documented at [queue_of_conn], in plain ints:
       10.0.(c/250).(c mod 250 + 1) : 1024+c -> 10.0.0.1 : 8000. *)
    let si = 0x0A000000 lor (((c / 250) lsl 8) lor ((c mod 250) + 1)) in
    let s = hash12 t si 0x0A000001 (1024 + c) 8000 land 0x7f in
    Array.unsafe_set t.memo c s;
    s
  end

let[@zygos.hot] queue_of_conn t c = Array.unsafe_get t.table (slot_of_conn t c)

let slots _t = indirection_entries

let queue_of_slot t slot = t.table.(slot)

let set_slot t ~slot ~queue =
  if slot < 0 || slot >= indirection_entries then invalid_arg "Rss.set_slot: slot out of range";
  if queue < 0 || queue >= t.nqueues then invalid_arg "Rss.set_slot: queue out of range";
  t.table.(slot) <- queue

let queues t = t.nqueues

let histogram_of_conns t n =
  let hist = Array.make (queues t) 0 in
  for c = 0 to n - 1 do
    let q = queue_of_conn t c in
    hist.(q) <- hist.(q) + 1
  done;
  hist
