module Sim = Engine.Sim
module Rng = Engine.Rng
module Dist = Engine.Dist

type conn_selection =
  | Uniform
  | Hot_cold of { hot_fraction : float; hot_load : float }

type retry = {
  timeout : float;
  max_retries : int;
  backoff_base : float;
  backoff_max : float;
  jitter : float;
}

let validate_retry r =
  if Float.is_nan r.timeout || r.timeout <= 0. then invalid_arg "Loadgen.retry: timeout <= 0";
  if r.max_retries < 0 then invalid_arg "Loadgen.retry: max_retries < 0";
  if Float.is_nan r.backoff_base || r.backoff_base < 0. then
    invalid_arg "Loadgen.retry: backoff_base < 0";
  if Float.is_nan r.backoff_max || r.backoff_max < r.backoff_base then
    invalid_arg "Loadgen.retry: backoff_max < backoff_base";
  if Float.is_nan r.jitter || r.jitter < 0. || r.jitter >= 1. then
    invalid_arg "Loadgen.retry: jitter outside [0, 1)"

let retry ?(timeout = 200.) ?(max_retries = 3) ?(backoff_base = 50.) ?(backoff_max = 800.)
    ?(jitter = 0.2) () =
  let r = { timeout; max_retries; backoff_base; backoff_max; jitter } in
  validate_retry r;
  r

let[@zygos.hot] backoff_nominal r ~attempt =
  if attempt < 1 then invalid_arg "Loadgen.backoff_nominal: attempt < 1";
  (* Capped exponential: base, 2*base, 4*base, ... clipped at the cap.
     The exponent is bounded first so huge attempt numbers cannot
     overflow the float. Inline compare instead of [Float.min]: both
     operands are validated non-NaN, and the unboxed branch keeps the
     backoff computation allocation-free. *)
  let doublings = min (attempt - 1) 60 in
  let nominal = r.backoff_base *. Float.pow 2. (float_of_int doublings) in
  if nominal > r.backoff_max then r.backoff_max else nominal

(* One logical request whose response is still awaited: the original send
   plus any retransmissions. Only allocated when retries are enabled. *)
type pending = {
  p_id : int;  (* logical id = physical id of the original send *)
  p_conn : int;
  p_service : float;
  p_measured : bool;
  p_first_arrival : float;
  mutable p_attempts : int;  (* retransmissions sent so far *)
  mutable p_timeout : Sim.handle;  (* [no_timeout] when no timer is armed *)
  mutable p_done : bool;
}

(* Stored flat instead of as a [handle option]: saves a [Some]
   allocation per armed timeout. *)
let no_timeout : Sim.handle = Sim.no_handle

type t = {
  sim : Sim.t;
  clk : float array;  (* [Sim.clock_buffer sim]: inline now-reads on hot paths *)
  kbuf : float array;  (* [Sim.key_buffer sim]: keyed schedules, no boxed [~at] *)
  rng : Rng.t;
  pool : Request.pool;  (* the experiment's request arena *)
  conns : int;
  rate : float;
  service : Dist.t;
  selection : conn_selection;
  service_fn : (conn:int -> float) option;
  slo : float;
  retry : retry option;
  retry_rng : Rng.t option;  (* dedicated stream for backoff jitter *)
  pending : (int, pending) Hashtbl.t;  (* logical id -> state *)
  phys2log : (int, int) Hashtbl.t;  (* retransmission id -> logical id *)
  mutable target : (Request.t -> unit) option;
  mutable next_id : int;
  mutable generated : int;
  mutable measured_generated : int;
  mutable measured_completed : int;
  mutable order_violations : int;
  mutable duplicate_completions : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable retry_exhausted : int;
  mutable goodput_completions : int;
  mutable measure_span : float;
  mutable measure_start : float;
  mutable measure_end : float;
  mutable window_completions : int;
  latencies : Stats.Tally.t;
  outstanding : Engine.Intq.t array;  (* per-conn FIFO of pending request ids *)
  (* Long-lived timeout/retransmit dispatch fns ([Sim.schedule_fn]),
     keyed by logical request id; bound in [create] when retries are on. *)
  mutable fn_timeout : int -> unit;
  mutable fn_retry : int -> unit;
}

let set_target t f = t.target <- Some f

let[@zygos.hot] send t req =
  match t.target with
  (* Dynamic dispatch: the target is the server's ingress, itself a
     certified [@zygos.hot] entry point ([Zygos.handle_request]). *)
  | Some f -> (f req [@zygos.allow "r6"])
  | None -> invalid_arg "Loadgen: no target set"

(* ---- client-side resilience: timeouts, capped backoff, retransmission ---- *)

let[@zygos.hot] arm_timeout t p (r : retry) =
  (* Keyed hand-off: same [clock +. delay] arithmetic that
     [schedule_fn_after] performs internally, with the expiry time
     written flat into the key buffer instead of boxed at the call. *)
  Array.unsafe_set t.kbuf 0 (Array.unsafe_get t.clk 0 +. r.timeout);
  p.p_timeout <- Sim.schedule_fn_keyed t.sim t.fn_timeout p.p_id

let[@zygos.hot] on_timeout t p r =
  t.timeouts <- t.timeouts + 1;
  if p.p_attempts >= r.max_retries then
    (* Retry budget exhausted: give up on this request. A straggling
       response may still arrive and complete it (late, beyond SLO). *)
    t.retry_exhausted <- t.retry_exhausted + 1
  else begin
    p.p_attempts <- p.p_attempts + 1;
    let nominal = backoff_nominal r ~attempt:p.p_attempts in
    let jittered =
      match t.retry_rng with
      (* Sampling returns a fresh float by contract; the box is part of
         the measured per-retry budget. *)
      | Some rng -> nominal *. (1. +. (r.jitter *. (Rng.float rng [@zygos.allow "r7"])))
      | None -> nominal
    in
    (* Keyed hand-off, as in [arm_timeout]: bit-identical fire time. *)
    Array.unsafe_set t.kbuf 0 (Array.unsafe_get t.clk 0 +. jittered);
    let _ : Sim.handle = Sim.schedule_fn_keyed t.sim t.fn_retry p.p_id in
    ()
  end

and retransmit t p r =
  let id = t.next_id in
  let req =
    Request.alloc t.pool ~id ~conn:p.p_conn ~arrival:(Sim.now t.sim) ~service:p.p_service
      ~measured:false
  in
  t.next_id <- t.next_id + 1;
  t.retries <- t.retries + 1;
  Hashtbl.replace t.phys2log id p.p_id;
  arm_timeout t p r;
  send t req

let create sim ~rng ~pool ~conns ~rate ~service ?(selection = Uniform) ?service_fn
    ?(slo = infinity) ?retry () =
  if conns < 1 then invalid_arg "Loadgen.create: conns < 1";
  if rate <= 0. then invalid_arg "Loadgen.create: rate <= 0";
  if Float.is_nan slo || slo <= 0. then invalid_arg "Loadgen.create: slo <= 0";
  Option.iter validate_retry retry;
  (match selection with
  | Uniform -> ()
  | Hot_cold { hot_fraction; hot_load } ->
      if hot_fraction <= 0. || hot_fraction >= 1. || hot_load <= 0. || hot_load >= 1. then
        invalid_arg "Loadgen.create: Hot_cold fractions must be in (0, 1)");
  let t =
    {
      sim;
      clk = Sim.clock_buffer sim;
      kbuf = Sim.key_buffer sim;
      rng;
      pool;
      conns;
      rate;
      service;
      selection;
      service_fn;
      slo;
      retry;
      (* Split only when retries are on: with [retry = None] the generator's
         draw sequence is bit-identical to the pre-retry implementation. *)
      retry_rng = (match retry with Some _ -> Some (Rng.split rng) | None -> None);
      pending = Hashtbl.create (if Option.is_none retry then 1 else 1024);
      phys2log = Hashtbl.create (if Option.is_none retry then 1 else 1024);
      target = None;
      next_id = 0;
      generated = 0;
      measured_generated = 0;
      measured_completed = 0;
      order_violations = 0;
      duplicate_completions = 0;
      retries = 0;
      timeouts = 0;
      retry_exhausted = 0;
      goodput_completions = 0;
      measure_span = 0.;
      measure_start = infinity;
      measure_end = infinity;
      window_completions = 0;
      latencies = Stats.Tally.create ();
      outstanding = Array.init conns (fun _ -> Engine.Intq.create ());
      fn_timeout = ignore;
      fn_retry = ignore;
    }
  in
  (match retry with
  | None -> ()
  | Some r ->
      (* Pending entries are never removed (p_done guards stale copies),
         so a fired timer always finds its state. *)
      t.fn_timeout <-
        (fun id ->
          match Hashtbl.find_opt t.pending id with
          | None -> ()
          | Some p ->
              p.p_timeout <- no_timeout;
              if not p.p_done then on_timeout t p r) [@zygos.hot];
      t.fn_retry <-
        (fun id ->
          match Hashtbl.find_opt t.pending id with
          | Some p when not p.p_done -> retransmit t p r
          | Some _ | None -> ()) [@zygos.hot]);
  t

let[@zygos.hot] emit t ~measure_start ~stop_at =
  let now = Array.unsafe_get t.clk 0 in
  let conn =
    match t.selection with
    | Uniform -> Rng.int t.rng t.conns
    | Hot_cold { hot_fraction; hot_load } ->
        let hot_count = max 1 (int_of_float (hot_fraction *. float_of_int t.conns)) in
        (* Biased coin per arrival: the boxed probability argument is part
           of the measured per-request budget. *)
        if (Rng.bernoulli t.rng hot_load [@zygos.allow "r7"]) then Rng.int t.rng hot_count
        else if t.conns > hot_count then hot_count + Rng.int t.rng (t.conns - hot_count)
        else Rng.int t.rng t.conns
  in
  let service =
    match t.service_fn with
    (* Experiment-supplied service model: opaque to the call graph. *)
    | Some f -> (f ~conn [@zygos.allow "r6"])
    (* Sampling returns a fresh float by contract (see [Dist.sample]). *)
    | None -> (Dist.sample t.service t.rng [@zygos.allow "r7"])
  in
  let measured = now >= measure_start && now < stop_at in
  let id = t.next_id in
  (* Request timestamps land in the pool's flat float arrays; the boxed
     labelled arguments are the documented alloc-time hand-off, inside
     the 85-words-per-request budget the perf guard pins. *)
  let req = (Request.alloc t.pool ~id ~conn ~arrival:now ~service ~measured
             [@zygos.allow "r7"]) in
  t.next_id <- t.next_id + 1;
  t.generated <- t.generated + 1;
  if measured then t.measured_generated <- t.measured_generated + 1;
  (match t.retry with
  | None ->
      (* Per-connection ordering bookkeeping (see [complete]). With retries
         on, the queues are unused: retransmissions make the FIFO invariant
         meaningless, so losses surface as timeouts instead. *)
      Engine.Intq.push t.outstanding.(conn) id
  | Some r ->
      (* Per-logical-request state, retry mode only: one record per
         request for its whole lifetime, not per event. *)
      let p =
        {
          p_id = id;
          p_conn = conn;
          p_service = service;
          p_measured = measured;
          p_first_arrival = now;
          p_attempts = 0;
          p_timeout = no_timeout;
          p_done = false;
        }
        [@zygos.allow "hot-alloc"]
      in
      (* Retry mode only: one table write per logical request lifetime. *)
      (Hashtbl.replace t.pending p.p_id p [@zygos.allow "hot-alloc"]);
      arm_timeout t p r);
  send t req

let start t ~warmup ~measure =
  if Option.is_none t.target then invalid_arg "Loadgen.start: no target set";
  if measure <= 0. then invalid_arg "Loadgen.start: measure <= 0";
  let t0 = Sim.now t.sim in
  let measure_start = t0 +. warmup in
  let stop_at = measure_start +. measure in
  t.measure_span <- measure;
  t.measure_start <- measure_start;
  t.measure_end <- stop_at;
  let rec arrival () =
    if Array.unsafe_get t.clk 0 < stop_at then begin
      emit t ~measure_start ~stop_at;
      let gap = Rng.exponential t.rng ~mean:(1. /. t.rate) in
      (* Keyed schedule: same [clock +. delay] arithmetic as
         [schedule_after], with the time handed over flat. *)
      Array.unsafe_set t.kbuf 0 (Array.unsafe_get t.clk 0 +. gap);
      ignore (Sim.schedule_keyed t.sim arrival : Sim.handle)
    end
  in
  let first_gap = Rng.exponential t.rng ~mean:(1. /. t.rate) in
  ignore (Sim.schedule_after t.sim ~delay:first_gap arrival : Sim.handle)

(* Record a distinct logical completion at time [now] with latency [lat]. *)
let[@zygos.hot] record_completion t ~now ~measured ~lat =
  if now >= t.measure_start && now < t.measure_end then
    t.window_completions <- t.window_completions + 1;
  if measured then begin
    if now < t.measure_end then begin
      t.measured_completed <- t.measured_completed + 1;
      (* Goodput: distinct measured requests whose response made the SLO,
         completed inside the window — the metric that collapses under a
         retry storm while raw throughput still looks healthy. *)
      if lat <= t.slo then t.goodput_completions <- t.goodput_completions + 1
    end;
    (* Latency is recorded for every measured request, so overload shows
       up in the tail. One boxed float per measured completion feeds the
       tally; the reservoir itself is a flat float array. *)
    (Stats.Tally.record t.latencies lat [@zygos.allow "r7"])
  end

let[@zygos.hot] complete t (req : Request.t) =
  if Request.is_completed t.pool req then
    (* Duplicate responses are legitimate under packet duplication and
       under client retries; count them instead of raising. *)
    t.duplicate_completions <- t.duplicate_completions + 1
  else begin
    let now = Array.unsafe_get t.clk 0 in
    (* Completion timestamp lands in the pool's flat float array. *)
    (Request.set_completion t.pool req now [@zygos.allow "r7"]);
    let rid = Request.id t.pool req in
    (match t.retry with
    | None ->
        (* Per-connection ordering check (§4.3): the completed request must
           be the oldest outstanding one on its connection. *)
        let q = t.outstanding.(Request.conn t.pool req) in
        let popped = Engine.Intq.pop q in
        if popped <> rid then begin
          t.order_violations <- t.order_violations + 1;
          (* Drop the stale entry for this id so the queue does not grow.
             (Matches the historical repair: the mismatched head stays
             dropped, later copies of [rid] are filtered out.) *)
          Engine.Intq.remove_all q rid
        end;
        record_completion t ~now ~measured:(Request.measured t.pool req)
          ~lat:((Request.latency t.pool req) [@zygos.allow "r7"])
    | Some _ -> (
        (* Retry-mode lookups; the [Some] boxes are retry bookkeeping,
           absent from the clean fast path. *)
        let log_id =
          match (Hashtbl.find_opt t.phys2log rid [@zygos.allow "hot-alloc"]) with
          | Some l -> l
          | None -> rid
        in
        match (Hashtbl.find_opt t.pending log_id [@zygos.allow "hot-alloc"]) with
        | None -> ()  (* completed before [start] armed any state; ignore *)
        | Some p ->
            if p.p_done then
              (* A different copy of this logical request already came
                 back: the response this retransmission earned. *)
              t.duplicate_completions <- t.duplicate_completions + 1
            else begin
              p.p_done <- true;
              if p.p_timeout <> no_timeout then begin
                Sim.cancel t.sim p.p_timeout;
                p.p_timeout <- no_timeout
              end;
              (* Client-observed latency spans from the first send, not the
                 retransmission that finally got through. *)
              record_completion t ~now ~measured:p.p_measured ~lat:(now -. p.p_first_arrival)
            end));
    (* The client is the end of the line for a response: hand the slot
       back. A no-op unless the pool recycles (clean fast path only). *)
    Request.release t.pool req
  end

let tally t = t.latencies

let generated t = t.generated

let measured_generated t = t.measured_generated

let measured_completed t = t.measured_completed

let order_violations t = t.order_violations

let duplicate_completions t = t.duplicate_completions

let retries t = t.retries

let timeouts t = t.timeouts

let retry_exhausted t = t.retry_exhausted

let throughput t =
  if t.measure_span = 0. then 0. else float_of_int t.window_completions /. t.measure_span

let goodput t =
  if t.measure_span = 0. then 0. else float_of_int t.goodput_completions /. t.measure_span

let conns t = t.conns
