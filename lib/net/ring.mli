(** Bounded FIFO ring, modelling a NIC hardware descriptor ring or a
    bounded software packet queue.

    Overflow behaviour matches hardware: a push to a full ring drops the
    element (and counts the drop) rather than blocking, like a NIC with no
    free receive descriptors. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val push : 'a t -> 'a -> bool
(** [push t x] enqueues [x]; returns [false] (and counts a drop) when
    full. *)

val pop : 'a t -> 'a option

val pop_or : 'a t -> default:'a -> 'a
(** Like {!pop} but returns [default] when empty — no [Some] allocation;
    the hot-path variant for immediate payloads (request handles). *)

val peek : 'a t -> 'a option

val peek_or : 'a t -> default:'a -> 'a

val length : 'a t -> int

val is_empty : 'a t -> bool

val capacity : 'a t -> int

val drops : 'a t -> int
(** Number of pushes rejected so far. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Front-to-back, without consuming. *)
