(** Open-loop load generator (the reproduction's "mutilate").

    Generates RPC requests with Poisson inter-arrival times at a target
    aggregate rate, each on a uniformly random connection (§3.1: "incoming
    requests follow a Poisson inter-arrival time on randomly-selected
    connections"), with service demands drawn from a configurable
    distribution. Because it is open-loop, arrivals never wait for
    responses — a connection may accumulate several outstanding requests
    (the pipelining that §6.2 discusses).

    Latency is recorded client-side at response completion, but only for
    requests that arrive inside the measurement window (warmup and drain
    excluded). The generator also checks the paper's ordering guarantee:
    responses on one connection must come back in request order (§4.3).

    {b Resilience.} With a {!retry} policy the generator behaves like a
    production RPC client facing a lossy network or an overloaded server:
    each request is timed out, retransmitted after capped exponential
    backoff with jitter, and abandoned once the retry budget is spent.
    Responses are then de-duplicated: latency and {!goodput} count each
    {e logical} request once, from its first transmission to its first
    response. All backoff jitter comes from a dedicated stream split off
    the generator's [rng] at creation, so runs without retries are
    bit-identical to the pre-retry implementation. *)

type t

(** How arrivals pick their connection. [Uniform] is the paper's §3.1
    setup; [Hot_cold] models connection skew ("some clients request
    substantially more data than the average", §2.3's persistent
    imbalance): the first [hot_fraction] of connections receive
    [hot_load] of the traffic. *)
type conn_selection =
  | Uniform
  | Hot_cold of { hot_fraction : float; hot_load : float }

(** Client-side retry policy. The nth retransmission waits
    [min backoff_max (backoff_base * 2^(n-1))] µs after its timeout,
    stretched by a uniform jitter factor in [1, 1 + jitter). *)
type retry = {
  timeout : float;  (** per-attempt response timeout (µs), > 0 *)
  max_retries : int;  (** retransmissions after the first send, >= 0 *)
  backoff_base : float;  (** first backoff delay (µs) *)
  backoff_max : float;  (** backoff cap (µs), >= backoff_base *)
  jitter : float;  (** jitter fraction in [0, 1) *)
}

val retry :
  ?timeout:float ->
  ?max_retries:int ->
  ?backoff_base:float ->
  ?backoff_max:float ->
  ?jitter:float ->
  unit ->
  retry
(** Defaults: 200µs timeout, 3 retries, backoff 50µs doubling to 800µs,
    20% jitter. Raises [Invalid_argument] on out-of-range fields. *)

val validate_retry : retry -> unit

val backoff_nominal : retry -> attempt:int -> float
(** Backoff delay (µs, before jitter) that precedes retransmission
    [attempt] (1-based). Capped exponential; raises on [attempt < 1]. *)

val create :
  Engine.Sim.t ->
  rng:Engine.Rng.t ->
  pool:Request.pool ->
  conns:int ->
  rate:float ->
  service:Engine.Dist.t ->
  ?selection:conn_selection ->
  ?service_fn:(conn:int -> float) ->
  ?slo:float ->
  ?retry:retry ->
  unit ->
  t
(** [rate] is in requests per µs (e.g. 1.0 = 1 MRPS). The target server is
    attached afterwards with {!set_target}. [selection] defaults to
    [Uniform]. [pool] is the request arena handles are drawn from; the
    generator releases each handle at its first completion (a no-op
    unless the pool recycles).

    [service_fn], when given, overrides [service]: it is invoked once per
    generated request to produce its service demand (µs). This is how real
    application work is coupled into the simulation (see
    {!Experiments.Appserve}): the function executes actual application
    code — a Silo transaction, a memcached op — measures it, and the
    simulated server then "serves" that measured demand.

    [slo] (µs, default infinity) is the latency bound {!goodput} counts
    against. [retry], when given, enables timeouts and retransmission. *)

val set_target : t -> (Request.t -> unit) -> unit
(** Where generated requests are delivered (the server's submit
    function). Must be called before {!start}. *)

val start : t -> warmup:float -> measure:float -> unit
(** Schedule the arrival process: requests are generated from sim-time now
    until [warmup + measure]; those arriving in [[warmup, warmup+measure))
    are measured. Run the simulation afterwards to completion. *)

val complete : t -> Request.t -> unit
(** Called by the server when the response for [req] is on the wire.
    Records latency for measured requests and verifies per-connection
    ordering. Completing a request twice — legitimate under packet
    duplication and client retries — is counted in
    {!duplicate_completions} and otherwise ignored. *)

val tally : t -> Stats.Tally.t
(** Latencies (µs) of measured, completed requests. With retries, one
    sample per {e logical} request, first send to first response. *)

val generated : t -> int
(** Total requests generated (including warmup, excluding
    retransmissions). *)

val measured_generated : t -> int

val measured_completed : t -> int
(** Distinct measured requests whose (first) response arrived inside the
    measurement window. *)

val order_violations : t -> int
(** Completions that came back out of order on their connection. Always 0
    for a correct system model on a fault-free network; packet reordering
    shows up here. Not tracked (always 0) when retries are enabled. *)

val duplicate_completions : t -> int
(** Responses for already-completed requests (network duplication, or a
    retransmission whose original also got served). *)

val retries : t -> int
(** Retransmissions sent. *)

val timeouts : t -> int
(** Attempts that timed out. *)

val retry_exhausted : t -> int
(** Requests abandoned after the full retry budget. *)

val throughput : t -> float
(** Achieved throughput: responses leaving the server {e during} the
    measurement window, per µs. Beyond saturation this plateaus at system
    capacity while latencies blow up. *)

val goodput : t -> float
(** Distinct measured requests completed inside the window {e and} within
    [slo] of their first send, per µs — the paper-facing "useful work"
    metric. Equals the measured completion rate when [slo] is infinite. *)

val conns : t -> int
