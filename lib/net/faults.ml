module Sim = Engine.Sim
module Rng = Engine.Rng

type plan = {
  drop : float;
  duplicate : float;
  reorder : float;
  corrupt : float;
  reorder_delay : float;
  dup_delay : float;
  blackhole_from : float;
  blackhole_until : float;
}

let zero =
  {
    drop = 0.;
    duplicate = 0.;
    reorder = 0.;
    corrupt = 0.;
    reorder_delay = 5.;
    dup_delay = 1.;
    blackhole_from = 0.;
    blackhole_until = 0.;
  }

let validate_plan p =
  let rate name x =
    if Float.is_nan x || x < 0. || x > 1. then
      invalid_arg (Printf.sprintf "Faults: %s rate %g outside [0, 1]" name x)
  in
  rate "drop" p.drop;
  rate "duplicate" p.duplicate;
  rate "reorder" p.reorder;
  rate "corrupt" p.corrupt;
  if Float.is_nan p.reorder_delay || p.reorder_delay < 0. then
    invalid_arg "Faults: reorder_delay < 0";
  if Float.is_nan p.dup_delay || p.dup_delay < 0. then invalid_arg "Faults: dup_delay < 0";
  if Float.is_nan p.blackhole_from || p.blackhole_from < 0. then
    invalid_arg "Faults: blackhole_from < 0";
  if Float.is_nan p.blackhole_until || p.blackhole_until < p.blackhole_from then
    invalid_arg "Faults: blackhole_until < blackhole_from"

let plan ?(drop = 0.) ?(duplicate = 0.) ?(reorder = 0.) ?(corrupt = 0.)
    ?(reorder_delay = zero.reorder_delay) ?(dup_delay = zero.dup_delay)
    ?(blackhole = (0., 0.)) () =
  let blackhole_from, blackhole_until = blackhole in
  let p =
    { drop; duplicate; reorder; corrupt; reorder_delay; dup_delay; blackhole_from;
      blackhole_until }
  in
  validate_plan p;
  p

let blackhole_active p ~now = now >= p.blackhole_from && now < p.blackhole_until

type t = {
  sim : Sim.t;
  rng : Rng.t;
  plan : plan;
  mutable packets : int;
  mutable drops : int;
  mutable corruptions : int;
  mutable duplicates : int;
  mutable reorders : int;
  mutable blackholes : int;
  mutable injected : int;
}

let create sim ~rng ~plan () =
  validate_plan plan;
  {
    sim;
    rng;
    plan;
    packets = 0;
    drops = 0;
    corruptions = 0;
    duplicates = 0;
    reorders = 0;
    blackholes = 0;
    injected = 0;
  }

let apply t pkt ~deliver =
  t.packets <- t.packets + 1;
  (* Fixed draw order keeps runs comparable across plans with the same
     seed: drop, corrupt, duplicate, reorder — every packet consumes
     exactly four draws whichever faults fire. The blackhole window is
     checked after the draws for the same reason: a packet swallowed by a
     partition still consumes its four draws, so runs with and without a
     window stay comparable outside it. *)
  let dropped = Rng.bernoulli t.rng t.plan.drop in
  let corrupted = Rng.bernoulli t.rng t.plan.corrupt in
  let duplicated = Rng.bernoulli t.rng t.plan.duplicate in
  let reordered = Rng.bernoulli t.rng t.plan.reorder in
  if blackhole_active t.plan ~now:(Sim.now t.sim) then begin
    t.blackholes <- t.blackholes + 1;
    t.injected <- t.injected + 1
  end
  else if dropped then begin
    t.drops <- t.drops + 1;
    t.injected <- t.injected + 1
  end
  else if corrupted then begin
    t.corruptions <- t.corruptions + 1;
    t.injected <- t.injected + 1
  end
  else begin
    if duplicated || reordered then t.injected <- t.injected + 1;
    if reordered then begin
      t.reorders <- t.reorders + 1;
      let _ : Sim.handle =
        Sim.schedule_after t.sim ~delay:t.plan.reorder_delay (fun () -> deliver pkt)
      in
      ()
    end
    else deliver pkt;
    if duplicated then begin
      t.duplicates <- t.duplicates + 1;
      let delay = t.plan.dup_delay +. if reordered then t.plan.reorder_delay else 0. in
      let _ : Sim.handle = Sim.schedule_after t.sim ~delay (fun () -> deliver pkt) in
      ()
    end
  end

let injected t = t.injected

let info t =
  [
    ("fault_packets", float_of_int t.packets);
    ("fault_drops", float_of_int t.drops);
    ("fault_corruptions", float_of_int t.corruptions);
    ("fault_duplicates", float_of_int t.duplicates);
    ("fault_reorders", float_of_int t.reorders);
    ("fault_blackholes", float_of_int t.blackholes);
    ("fault_injected", float_of_int t.injected);
  ]

let corrupt_frame rng frame =
  if String.length frame = 0 then frame
  else begin
    let i = Rng.int rng (String.length frame) in
    let b = Bytes.of_string frame in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x80));
    Bytes.unsafe_to_string b
  end
