(** Receive-side scaling: flow-consistent dispatch of connections to NIC
    hardware queues.

    Real NICs (the paper's Intel 82599) hash each packet's 4-tuple with the
    Toeplitz function and index a 128-entry indirection table to pick a
    receive queue; all packets of a connection therefore land on one queue,
    which in IX/ZygOS makes that queue's core the connection's "home core".
    We implement the actual Microsoft Toeplitz hash over a synthetic 4-tuple
    derived from the connection id, so connection→core placement has the
    same statistics (uneven connection counts per core included) as the
    hardware. *)

type t

val create : ?key:string -> queues:int -> unit -> t
(** [create ~queues ()] builds an RSS engine dispatching to [queues]
    hardware queues through a 128-entry indirection table (entry [i] maps
    to queue [i mod queues], the usual driver default). [key] is the 40-byte
    Toeplitz secret; a fixed well-known key is used by default. Raises
    [Invalid_argument] if [queues < 1] or the key is shorter than needed. *)

val toeplitz : key:string -> bytes -> int32
(** The raw Toeplitz hash of an input byte string (used for the 12-byte
    IPv4 4-tuple: src ip, dst ip, src port, dst port). Bit-serial
    reference implementation; exposed for tests against published test
    vectors and as the oracle for the precomputed fast path. *)

val hash_of_tuple : t -> src_ip:int32 -> dst_ip:int32 -> src_port:int -> dst_port:int -> int
(** The Toeplitz hash of a 4-tuple via the 12×256 per-byte lookup table
    precomputed at {!create} (12 table XORs, no per-bit key-window
    rebuilds). The 32-bit result is returned as a non-negative int;
    bitwise-equal to {!toeplitz} over the same 12 bytes
    (qcheck-enforced). *)

val queue_of_tuple : t -> src_ip:int32 -> dst_ip:int32 -> src_port:int -> dst_port:int -> int
(** Hardware queue for a given 4-tuple. *)

val queue_of_conn : t -> int -> int
(** Queue for a synthetic connection id: connection [c] is given the
    4-tuple (10.0.(c/250).(c mod 250 + 1) : 1024+c  ->  10.0.0.1 : 8000).
    Deterministic; this is the connection→home-core map used by every
    partitioned system model. *)

(** {2 Indirection-table reprogramming}

    Real control planes rebalance load by rewriting indirection-table
    slots (the paper's §5 mentions the IX control plane doing exactly
    this); the hash of a connection never changes, only the slot→queue
    mapping. *)

val slots : t -> int
(** Indirection table size (128, as on the paper's NICs). *)

val slot_of_conn : t -> int -> int
(** The table slot a connection hashes to (stable across remapping —
    remapping rewrites slot→queue, never the hash). Memoised per
    connection: the first call per conn hashes, the rest are one array
    load. *)

val queue_of_slot : t -> int -> int

val set_slot : t -> slot:int -> queue:int -> unit
(** Re-program one table slot. Raises [Invalid_argument] on out-of-range
    slot or queue. *)

val queues : t -> int

val histogram_of_conns : t -> int -> int array
(** [histogram_of_conns t n] = per-queue connection counts for connections
    0..n-1 — the (im)balance the paper's §2.3 "persistent imbalance"
    discussion is about. *)
