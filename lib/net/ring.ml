(* Flat circular-array ring. The backing array is lazily created from
   the first pushed element (a polymorphic ring has no dummy value to
   pre-fill with) and sized exactly [capacity], so steady-state
   push/pop allocate nothing — [Stdlib.Queue] costs a 3-word cell per
   push, one minor alloc per simulated packet on the NIC paths. *)

type 'a t = {
  capacity : int;
  mutable buf : 'a array; (* [||] until the first push *)
  mutable head : int;
  mutable len : int;
  mutable dropped : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Ring.create: capacity < 1";
  { capacity; buf = [||]; head = 0; len = 0; dropped = 0 }

let[@zygos.hot] push t x =
  if t.len >= t.capacity then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    (* One-time lazy init of the backing store. *)
    if Array.length t.buf = 0 then t.buf <- (Array.make t.capacity x [@zygos.allow "hot-alloc"]);
    let tail = t.head + t.len in
    let tail = if tail >= t.capacity then tail - t.capacity else tail in
    Array.unsafe_set t.buf tail x;
    t.len <- t.len + 1;
    true
  end

(* Non-allocating pop: returns [default] when empty. The option-returning
   {!pop} remains for callers off the hot path. *)
let[@zygos.hot] pop_or t ~default =
  if t.len = 0 then default
  else begin
    let x = Array.unsafe_get t.buf t.head in
    let head = t.head + 1 in
    t.head <- (if head = t.capacity then 0 else head);
    t.len <- t.len - 1;
    x
  end

let pop t =
  if t.len = 0 then None
  else begin
    let x = Array.unsafe_get t.buf t.head in
    let head = t.head + 1 in
    t.head <- (if head = t.capacity then 0 else head);
    t.len <- t.len - 1;
    Some x
  end

let peek t = if t.len = 0 then None else Some t.buf.(t.head)

let[@zygos.hot] peek_or t ~default = if t.len = 0 then default else Array.unsafe_get t.buf t.head

let[@zygos.hot] length t = t.len

let[@zygos.hot] is_empty t = t.len = 0

let capacity t = t.capacity

let drops t = t.dropped

let iter f t =
  for i = 0 to t.len - 1 do
    let j = t.head + i in
    f t.buf.(if j >= t.capacity then j - t.capacity else j)
  done
