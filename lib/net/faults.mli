(** Seeded, deterministic packet-fault injection for the simulated network.

    A {!plan} gives per-packet probabilities for the four classic network
    faults — drop, duplicate, reorder, corrupt — applied on the
    client→server path just before the request reaches the server's NIC
    ring. Corrupted packets model frames whose length prefix / checksum
    fails validation (see {!Framing.Reassembler}): the NIC or framing layer
    discards them, so for the simulation they are drops counted under a
    separate cause.

    All randomness is drawn from the dedicated [rng] stream handed to
    {!create} — never from the load generator's or the system's streams —
    so a plan whose rates are all [0.0] yields a bit-identical simulation
    to running with no plan at all (the fault layer then delivers every
    packet synchronously and schedules no events). *)

type plan = {
  drop : float;  (** P(packet silently lost) *)
  duplicate : float;  (** P(packet delivered twice) *)
  reorder : float;  (** P(packet delayed by [reorder_delay], letting later
                        packets overtake it) *)
  corrupt : float;  (** P(packet corrupted in flight and discarded by
                        framing validation) *)
  reorder_delay : float;  (** extra latency of a reordered packet (µs) *)
  dup_delay : float;  (** lag of the duplicate copy behind the original (µs) *)
  blackhole_from : float;
      (** partition window start (sim µs): the target is unreachable —
          every packet silently swallowed — during
          [[blackhole_from, blackhole_until)] *)
  blackhole_until : float;  (** partition window end (exclusive) *)
}

val zero : plan
(** All rates 0; delays at harmless defaults; empty blackhole window. *)

val plan : ?drop:float -> ?duplicate:float -> ?reorder:float -> ?corrupt:float ->
  ?reorder_delay:float -> ?dup_delay:float -> ?blackhole:float * float -> unit -> plan
(** [zero] overridden field-wise; validates (rates in [0,1], delays >= 0,
    rates summing <= 1 not required — drop/corrupt are exclusive, the rest
    independent). [blackhole] is the [(from, until)] partition window,
    default [(0., 0.)] — empty, since sim time is non-negative. Raises
    [Invalid_argument] on out-of-range values. *)

val validate_plan : plan -> unit

val blackhole_active : plan -> now:float -> bool
(** Is [now] inside the plan's partition window? *)

type t

val create : Engine.Sim.t -> rng:Engine.Rng.t -> plan:plan -> unit -> t
(** [rng] must be a dedicated stream (e.g. a {!Engine.Rng.split} of the
    master) so fault draws never perturb other components. *)

val apply : t -> 'a -> deliver:('a -> unit) -> unit
(** Run one packet through the plan. [deliver] is called zero, one or two
    times: never for a dropped/corrupted packet, immediately (same call
    stack) for a clean packet, after [reorder_delay] for a reordered one,
    and an extra time after [dup_delay] for a duplicated one. *)

val injected : t -> int
(** Packets that suffered at least one fault. *)

val info : t -> (string * float) list
(** Per-kind counters for {!Systems.Iface.info}-style reporting:
    [fault_drops], [fault_corruptions], [fault_duplicates],
    [fault_reorders], [fault_blackholes], [fault_injected],
    [fault_packets]. *)

val corrupt_frame : Engine.Rng.t -> string -> string
(** Flip the top bit of one random byte of an encoded frame — the
    corruption {!Framing.Reassembler} is expected to detect when the byte
    lands in a length prefix. Used by framing/fault tests. *)
