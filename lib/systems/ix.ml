module Sim = Engine.Sim
module Request = Net.Request
module Corefault = Core.Corefault

type icore = { id : int; ring : Request.t Net.Ring.t; mutable busy : bool }

(* [route req] returns the core for a request; [note] observes the
   arrival (slot counters for the control plane). *)
let make sim (p : Params.t) ~route ~note ~respond =
  let p = Params.validate p in
  let faults = Params.corefaults p in
  let cores =
    Array.init p.cores (fun id ->
        { id; ring = Net.Ring.create ~capacity:p.ring_capacity; busy = false })
  in
  (* Straggler-aware clock arithmetic: with no fault windows this is
     exactly [t +. work], so a fault-free run is bit-identical to the
     pre-fault implementation. *)
  let advance c t work = Corefault.completion_time faults ~core:c.id ~now:t ~work in
  let rec iteration c =
    (* Take up to B packets: "adaptive" bounded batching processes whatever
       has accumulated, capped at B. *)
    let rec take acc n =
      if n = 0 then List.rev acc
      else
        match Net.Ring.pop c.ring with
        | None -> List.rev acc
        | Some req -> take (req :: acc) (n - 1)
    in
    match take [] p.ix_batch with
    | [] -> c.busy <- false
    | batch ->
        let k = List.length batch in
        (* Strict run-to-completion bounded by B (§6.2): the whole batch
           crosses the receive stack, every request executes, and the
           responses leave together through the batched transmit/syscall
           path — request 1's response waits for request k's execution,
           which is exactly why large B hurts tail latency (Fig. 11). *)
        let pkts = float_of_int p.rpc_packets in
        let rx_done =
          (* Two steps, preserving the original left-associated float sum
             [now +. dp_loop +. k*rx] bit for bit. *)
          let loop_done = advance c (Sim.now sim) p.dp_loop in
          advance c loop_done (float_of_int k *. pkts *. p.dp_rx)
        in
        let exec_done =
          List.fold_left
            (fun t req ->
              req.Request.started <- t;
              advance c t req.Request.service)
            rx_done batch
        in
        let finish_at =
          List.fold_left
            (fun t req ->
              let sent = advance c t (pkts *. p.dp_tx) in
              let _ : Sim.handle = Sim.schedule sim ~at:sent (fun () -> respond req) in
              sent)
            exec_done batch
        in
        let _ : Sim.handle = Sim.schedule_fn sim ~at:finish_at fn_iteration c.id in
        ()
  (* Closure-free dispatch: one long-lived fn, core id as the payload. *)
  and fn_iteration id = (iteration cores.(id)) [@@zygos.hot] in
  let[@zygos.hot] submit req =
    note req;
    let c = cores.(route req) in
    if Net.Ring.push c.ring req then
      if not c.busy then begin
        c.busy <- true;
        (* Polling loop: an idle core notices the packet within one loop
           iteration. *)
        let _ : Sim.handle = Sim.schedule_fn_after sim ~delay:p.dp_loop fn_iteration c.id in
        ()
      end
  in
  let info () =
    let drops = Array.fold_left (fun acc c -> acc + Net.Ring.drops c.ring) 0 cores in
    [ ("ring_drops", float_of_int drops) ]
  in
  { Iface.name = (if p.ix_batch = 1 then "ix" else Printf.sprintf "ix-b%d" p.ix_batch); submit; info }

let create sim (p : Params.t) ~conns ~respond =
  let rss = Net.Rss.create ~queues:p.cores () in
  let home = Array.init conns (fun c -> Net.Rss.queue_of_conn rss c) in
  make sim p ~route:(fun req -> home.(req.Request.conn)) ~note:(fun _ -> ()) ~respond

let create_with_rss sim (p : Params.t) ~rss ~conns ~respond =
  let slot = Array.init conns (fun c -> Net.Rss.slot_of_conn rss c) in
  let counts = Array.make (Net.Rss.slots rss) 0 in
  let route req = Net.Rss.queue_of_slot rss slot.(req.Request.conn) in
  let note req =
    let s = slot.(req.Request.conn) in
    counts.(s) <- counts.(s) + 1
  in
  let iface = make sim p ~route ~note ~respond in
  let read_and_reset () =
    let snapshot = Array.copy counts in
    Array.fill counts 0 (Array.length counts) 0;
    snapshot
  in
  (iface, read_and_reset)
