module Sim = Engine.Sim
module Request = Net.Request
module Corefault = Core.Corefault

type icore = {
  id : int;
  ring : Request.t Net.Ring.t;
  mutable busy : bool;
  batch : Request.t array;  (* scratch for the current iteration, capacity B *)
  tbuf : float array;  (* 1-slot unboxed clock accumulator (tbuf idiom) *)
}

(* [route req] returns the core for a request; [note] observes the
   arrival (slot counters for the control plane). *)
let make sim (p : Params.t) ~pool ~route ~note ~respond =
  let p = Params.validate p in
  let faults = Params.corefaults p in
  let cores =
    Array.init p.cores (fun id ->
        { id; ring = Net.Ring.create ~capacity:p.ring_capacity; busy = false;
          batch = Array.make p.ix_batch Request.none; tbuf = Array.make 1 0. })
  in
  (* Straggler-aware clock arithmetic: with no fault windows this is
     exactly [t +. work], so a fault-free run is bit-identical to the
     pre-fault implementation. *)
  let advance c t work = Corefault.completion_time faults ~core:c.id ~now:t ~work in
  (* Take up to B packets into the core's scratch slice: "adaptive"
     bounded batching processes whatever has accumulated, capped at B. *)
  let rec take c n =
    if n = p.ix_batch then n
    else begin
      let req = Net.Ring.pop_or c.ring ~default:Request.none in
      if req = Request.none then n
      else begin
        Array.unsafe_set c.batch n req;
        take c (n + 1)
      end
    end
  [@@zygos.hot]
  in
  let rec iteration c =
    (let k = take c 0 in
     if k = 0 then c.busy <- false
     else begin
       (* Strict run-to-completion bounded by B (§6.2): the whole batch
          crosses the receive stack, every request executes, and the
          responses leave together through the batched transmit/syscall
          path — request 1's response waits for request k's execution,
          which is exactly why large B hurts tail latency (Fig. 11). *)
       let pkts = float_of_int p.rpc_packets in
       let rx_done =
         (* Two steps, preserving the original left-associated float sum
            [now +. dp_loop +. k*rx] bit for bit. *)
         let loop_done = advance c (Sim.now sim) p.dp_loop in
         advance c loop_done (float_of_int k *. pkts *. p.dp_rx)
       in
       (* The running clock walks the batch through a 1-slot float array,
          so neither loop boxes its accumulator. *)
       Array.unsafe_set c.tbuf 0 rx_done;
       for i = 0 to k - 1 do
         let req = Array.unsafe_get c.batch i in
         let t = Array.unsafe_get c.tbuf 0 in
         Request.set_started pool req t;
         Array.unsafe_set c.tbuf 0 (advance c t (Request.service pool req))
       done;
       for i = 0 to k - 1 do
         let sent = advance c (Array.unsafe_get c.tbuf 0) (pkts *. p.dp_tx) in
         let _ : Sim.handle =
           (* [respond] is itself an [int -> unit] over the handle: the
              long-lived dispatch fn, no per-response closure. *)
           Sim.schedule_fn sim ~at:sent respond (Array.unsafe_get c.batch i)
         in
         Array.unsafe_set c.tbuf 0 sent
       done;
       let _ : Sim.handle =
         Sim.schedule_fn sim ~at:(Array.unsafe_get c.tbuf 0) fn_iteration c.id
       in
       ()
     end)
  [@@zygos.hot]
  (* Closure-free dispatch: one long-lived fn, core id as the payload. *)
  and fn_iteration id = (iteration cores.(id)) [@@zygos.hot] in
  let[@zygos.hot] submit req =
    note req;
    let c = cores.(route req) in
    if Net.Ring.push c.ring req then
      if not c.busy then begin
        c.busy <- true;
        (* Polling loop: an idle core notices the packet within one loop
           iteration. *)
        let _ : Sim.handle = Sim.schedule_fn_after sim ~delay:p.dp_loop fn_iteration c.id in
        ()
      end
  in
  let info () =
    let drops = Array.fold_left (fun acc c -> acc + Net.Ring.drops c.ring) 0 cores in
    [ ("ring_drops", float_of_int drops) ]
  in
  { Iface.name = (if p.ix_batch = 1 then "ix" else Printf.sprintf "ix-b%d" p.ix_batch); submit; info }

let create sim (p : Params.t) ~pool ~conns ~respond =
  let rss = Net.Rss.create ~queues:p.cores () in
  let home = Array.init conns (fun c -> Net.Rss.queue_of_conn rss c) in
  make sim p ~pool
    ~route:(fun [@zygos.hot] req -> home.(Request.conn pool req))
    ~note:(fun _ -> ()) ~respond

let create_with_rss sim (p : Params.t) ~pool ~rss ~conns ~respond =
  let slot = Array.init conns (fun c -> Net.Rss.slot_of_conn rss c) in
  let counts = Array.make (Net.Rss.slots rss) 0 in
  let route req = Net.Rss.queue_of_slot rss slot.(Request.conn pool req) in
  let note req =
    let s = slot.(Request.conn pool req) in
    counts.(s) <- counts.(s) + 1
  in
  let iface = make sim p ~pool ~route ~note ~respond in
  let read_and_reset () =
    let snapshot = Array.copy counts in
    Array.fill counts 0 (Array.length counts) 0;
    snapshot
  in
  (iface, read_and_reset)
