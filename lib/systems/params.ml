type t = {
  cores : int;
  ring_capacity : int;
  rpc_packets : int;
  linux_epoll : float;
  linux_syscall : float;
  linux_netstack : float;
  linux_wakeup : float;
  linux_lock : float;
  dp_rx : float;
  dp_tx : float;
  dp_loop : float;
  ix_batch : int;
  zy_rx_batch : int;
  zy_shuffle : float;
  zy_steal : float;
  zy_remote_syscall : float;
  zy_ipi_latency : float;
  zy_ipi_handler : float;
  zy_poll_delay : float;
  zy_interrupts : bool;
  zy_poll_random : bool;
  stragglers : Core.Corefault.spec list;
}

let validate t =
  let bad msg = invalid_arg (Printf.sprintf "Params: %s" msg) in
  let overhead name x =
    if Float.is_nan x || x < 0. || x = infinity then
      bad (Printf.sprintf "%s must be a finite non-negative time, got %g" name x)
  in
  if t.cores < 1 then bad "cores < 1";
  if t.ring_capacity < 1 then bad "ring_capacity < 1";
  if t.rpc_packets < 1 then bad "rpc_packets < 1";
  if t.ix_batch < 1 then bad "ix_batch < 1";
  if t.zy_rx_batch < 1 then bad "zy_rx_batch < 1";
  overhead "linux_epoll" t.linux_epoll;
  overhead "linux_syscall" t.linux_syscall;
  overhead "linux_netstack" t.linux_netstack;
  overhead "linux_wakeup" t.linux_wakeup;
  overhead "linux_lock" t.linux_lock;
  overhead "dp_rx" t.dp_rx;
  overhead "dp_tx" t.dp_tx;
  overhead "dp_loop" t.dp_loop;
  overhead "zy_shuffle" t.zy_shuffle;
  overhead "zy_steal" t.zy_steal;
  overhead "zy_remote_syscall" t.zy_remote_syscall;
  overhead "zy_ipi_latency" t.zy_ipi_latency;
  overhead "zy_ipi_handler" t.zy_ipi_handler;
  overhead "zy_poll_delay" t.zy_poll_delay;
  List.iter Core.Corefault.validate_spec t.stragglers;
  List.iter
    (fun (s : Core.Corefault.spec) ->
      if s.core >= t.cores then
        bad (Printf.sprintf "straggler core %d out of range (cores = %d)" s.core t.cores))
    t.stragglers;
  t

let default ?(cores = 16) () =
  validate
    {
      cores;
      ring_capacity = 4096;
      rpc_packets = 1;
      (* Linux: ~10 µs/request in total, dominated by two syscalls, the
         kernel TCP/IP stack both ways and an epoll_wait per event —
         calibrated against the Linux saturation points of Fig. 6 (about
         half of IX's throughput for 10µs tasks). *)
      linux_epoll = 2.0;
      linux_syscall = 1.6;
      linux_netstack = 1.9;
      linux_wakeup = 1.5;
      linux_lock = 0.5;
      (* Dataplane: ~1.1 µs/request (IX reaches 90% efficiency at 25µs tasks
         in Fig. 3, implying roughly this overhead). *)
      dp_rx = 0.45;
      dp_tx = 0.40;
      dp_loop = 0.25;
      ix_batch = 1;
      (* ZygOS adds buffering/synchronization (§1: "measurable for extremely
         small tasks"): ~0.3µs over IX on the local path, more when
         stealing. *)
      zy_rx_batch = 64;
      zy_shuffle = 0.15;
      zy_steal = 0.35;
      zy_remote_syscall = 0.25;
      zy_ipi_latency = 0.9;
      zy_ipi_handler = 0.5;
      zy_poll_delay = 0.2;
      zy_interrupts = true;
      zy_poll_random = true;
      stragglers = [];
    }

let no_interrupts t = { t with zy_interrupts = false }

let with_ix_batch t b =
  if b < 1 then invalid_arg "Params.with_ix_batch: b < 1";
  { t with ix_batch = b }

let with_rpc_packets t n =
  if n < 1 then invalid_arg "Params.with_rpc_packets: n < 1";
  { t with rpc_packets = n }

let with_stragglers t specs = validate { t with stragglers = specs }

let corefaults t = Core.Corefault.create t.stragglers
