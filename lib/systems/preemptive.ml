module Sim = Engine.Sim
module Request = Net.Request

type consolidation = {
  window : float;
  low_util : float;
  high_util : float;
  unpark_latency : float;
}

let default_consolidation =
  { window = 200.; low_util = 0.5; high_util = 0.85; unpark_latency = 10. }

type job = {
  req : Request.t;
  mutable remaining : float;
  mutable dispatched : bool;
  mutable slot : int;  (* index in the job registry, -1 when unregistered *)
}

(* Registry placeholder; also the content of freed registry slots. *)
let no_job = { req = Request.none; remaining = 0.; dispatched = true; slot = -1 }

type state = {
  runq : job Queue.t;  (* centralized, preemptible run queue *)
  mutable idle_cores : int;
  mutable parked : int;  (* consolidation: cores taken out of service *)
  mutable active_target : int;
  conn_busy : bool array;
  conn_pending : Request.t Queue.t array;
  mutable preemptions : int;
  mutable completed : int;
  mutable busy_accum : float;  (* total core-busy µs, for utilization *)
  mutable core_time : float;  (* integral of active cores over time *)
  mutable windows : int;
}

let create sim (p : Params.t) ~quantum ~switch_cost ~pool ~conns ~respond ?consolidate () =
  let p = Params.validate p in
  if quantum <= 0. then invalid_arg "Preemptive.create: quantum <= 0";
  if switch_cost < 0. then invalid_arg "Preemptive.create: switch_cost < 0";
  let st =
    {
      runq = Queue.create ();
      idle_cores = p.cores;
      parked = 0;
      active_target = p.cores;
      conn_busy = Array.make conns false;
      conn_pending = Array.init conns (fun _ -> Queue.create ());
      preemptions = 0;
      completed = 0;
      busy_accum = 0.;
      core_time = 0.;
      windows = 0;
    }
  in
  let pkts = float_of_int p.rpc_packets in
  let active () = p.cores - st.parked in
  (* Job registry: maps the immediate int payload of closure-free events
     back to the job, so per-slice and per-completion events allocate
     nothing. Slots recycle through a stack, like the Sim event pool. *)
  let jobs = ref (Array.make 64 no_job) in
  let job_free = ref (Array.make 64 0) in
  let job_free_top = ref 0 in
  let job_fresh = ref 0 in
  let register_job job =
    let s =
      if !job_free_top > 0 then begin
        decr job_free_top;
        !job_free.(!job_free_top)
      end
      else begin
        if !job_fresh = Array.length !jobs then begin
          let cap = Array.length !jobs in
          let grown = Array.make (2 * cap) no_job in
          Array.blit !jobs 0 grown 0 cap;
          jobs := grown;
          let free' = Array.make (2 * cap) 0 in
          Array.blit !job_free 0 free' 0 !job_free_top;
          job_free := free'
        end;
        let s = !job_fresh in
        incr job_fresh;
        s
      end
    in
    !jobs.(s) <- job;
    job.slot <- s
  in
  let unregister_job job =
    !jobs.(job.slot) <- no_job;
    !job_free.(!job_free_top) <- job.slot;
    incr job_free_top;
    job.slot <- -1
  in
  let[@zygos.hot] rec run_slice ~resume_cost job =
    let slice = Float.min quantum job.remaining in
    let setup =
      if job.dispatched then resume_cost
      else begin
        (* First dispatch pays the receive path. *)
        job.dispatched <- true;
        p.dp_loop +. (pkts *. p.dp_rx)
      end
    in
    if Request.started pool job.req < 0. then
      Request.set_started pool job.req (Sim.now sim +. setup);
    st.busy_accum <- st.busy_accum +. setup +. slice;
    let _ : Sim.handle = Sim.schedule_fn_after sim ~delay:(setup +. slice) fn_slice_end job.slot in
    ()
  and fn_slice_end s =
    (let job = !jobs.(s) in
     (* [remaining] is untouched between schedule and fire, so this
        recomputes exactly the slice the event was scheduled for. *)
     let slice = Float.min quantum job.remaining in
     job.remaining <- job.remaining -. slice;
     if job.remaining <= 1e-9 then finish job else preempt job)
  [@@zygos.hot]
  and finish job =
    (st.busy_accum <- st.busy_accum +. (pkts *. p.dp_tx);
     let _ : Sim.handle =
       Sim.schedule_fn_after sim ~delay:(pkts *. p.dp_tx) fn_finish job.slot
     in
     ())
  [@@zygos.hot]
  and fn_finish s =
    (let job = !jobs.(s) in
     unregister_job job;
     st.completed <- st.completed + 1;
     (* The handle dies at [respond] (the client may recycle its slot), so
        the connection is read out first. *)
     let conn = Request.conn pool job.req in
     respond job.req;
     (* Per-connection serialization (§4.3): promote the next queued
        request of this connection, if any. The promoted job record is a
        per-logical-request allocation, not a per-event one. *)
     (match Queue.take_opt st.conn_pending.(conn) with
     | Some next ->
         let job =
           ({ req = next; remaining = Request.service pool next; dispatched = false; slot = -1 }
           [@zygos.allow "hot-alloc"])
         in
         register_job job;
         Queue.add job st.runq
     | None -> st.conn_busy.(conn) <- false);
     next_work ())
  [@@zygos.hot]
  and preempt job =
    (if Queue.is_empty st.runq then
       (* Nothing else to run: keep going, no context switch to pay. *)
       run_slice ~resume_cost:0. job
     else begin
       st.preemptions <- st.preemptions + 1;
       Queue.add job st.runq;
       match Queue.take_opt st.runq with
       | Some next -> run_slice ~resume_cost:switch_cost next
       | None -> assert false
     end)
  [@@zygos.hot]
  and next_work () =
    (match Queue.take_opt st.runq with
     | Some job -> run_slice ~resume_cost:switch_cost job
     | None ->
         (* Consolidation: surplus cores park instead of idling. *)
         if active () > st.active_target then st.parked <- st.parked + 1
         else st.idle_cores <- st.idle_cores + 1)
  [@@zygos.hot]
  and fn_first s = (run_slice ~resume_cost:0. !jobs.(s)) [@@zygos.hot] in
  let submit req =
    let conn = Request.conn pool req in
    if st.conn_busy.(conn) then Queue.add req st.conn_pending.(conn)
    else begin
      st.conn_busy.(conn) <- true;
      let job = { req; remaining = Request.service pool req; dispatched = false; slot = -1 } in
      register_job job;
      if st.idle_cores > 0 then begin
        st.idle_cores <- st.idle_cores - 1;
        (* An idle core notices the packet within one poll iteration. *)
        let _ : Sim.handle = Sim.schedule_fn_after sim ~delay:p.dp_loop fn_first job.slot in
        ()
      end
      else Queue.add job st.runq
    end
  in
  (* ---- consolidation controller ---- *)
  (match consolidate with
  | None -> ()
  | Some { window; low_util; high_util; unpark_latency } ->
      if window <= 0. then invalid_arg "Preemptive.create: consolidation window <= 0";
      let last_busy = ref 0. in
      let quiet = ref 0 in
      let unpark () =
        st.parked <- st.parked - 1;
        let _ : Sim.handle =
          Sim.schedule_after sim ~delay:unpark_latency (fun () ->
              (* The woken core joins the pool and pulls work if any. *)
              match Queue.take_opt st.runq with
              | Some job -> run_slice ~resume_cost:switch_cost job
              | None -> st.idle_cores <- st.idle_cores + 1)
        in
        ()
      in
      let rec tick () =
        st.windows <- st.windows + 1;
        let act = active () in
        st.core_time <- st.core_time +. (float_of_int act *. window);
        let busy = st.busy_accum -. !last_busy in
        last_busy := st.busy_accum;
        let util = busy /. (float_of_int (max 1 act) *. window) in
        if busy = 0. && Queue.is_empty st.runq then incr quiet else quiet := 0;
        if util < low_util && st.active_target > 1 then begin
          st.active_target <- st.active_target - 1;
          (* Park an idle core immediately if one exists. *)
          if active () > st.active_target && st.idle_cores > 0 then begin
            st.idle_cores <- st.idle_cores - 1;
            st.parked <- st.parked + 1
          end
        end
        else if util > high_util && st.active_target < p.cores then begin
          st.active_target <- st.active_target + 1;
          if st.parked > 0 then unpark ()
        end;
        if !quiet < 2 then ignore (Sim.schedule_after sim ~delay:window tick : Sim.handle)
      in
      ignore (Sim.schedule_after sim ~delay:window tick : Sim.handle));
  let info () =
    let base =
      [
        ("preemptions", float_of_int st.preemptions);
        ( "preemptions_per_request",
          if st.completed = 0 then 0.
          else float_of_int st.preemptions /. float_of_int st.completed );
      ]
    in
    match consolidate with
    | None -> base
    | Some _ ->
        let elapsed = float_of_int st.windows *. (Option.get consolidate).window in
        base
        @ [
            ( "avg_active_cores",
              if elapsed = 0. then float_of_int p.cores else st.core_time /. elapsed );
            ("consolidation_windows", float_of_int st.windows);
          ]
  in
  { Iface.name = Printf.sprintf "preempt-q%g" quantum; submit; info }
