(** Simulated Linux event-driven servers (§3.3).

    Two configurations of a 16-thread epoll server, one thread pinned per
    core:

    - {b partitioned}: each thread owns the connections RSS directs to its
      core and polls only those — no rebalancing, so the system behaves
      like n×M/G/1/FCFS plus Linux overheads;
    - {b floating}: all connections live in one shared pool
      (EPOLLEXCLUSIVE-style, one thread woken per event) with a locking
      protocol serializing same-socket access — behaves like M/G/n/FCFS
      plus Linux overheads and lock costs.

    Per-request cost structure: epoll_wait (one event per call, the
    configuration §3.3 settled on) + read + write syscalls + kernel network
    stack both ways (+ pool lock twice for floating), around the
    application service time. *)

val partitioned :
  Engine.Sim.t ->
  Params.t ->
  pool:Net.Request.pool ->
  conns:int ->
  respond:(Net.Request.t -> unit) ->
  Iface.t

val floating :
  Engine.Sim.t ->
  Params.t ->
  pool:Net.Request.pool ->
  conns:int ->
  respond:(Net.Request.t -> unit) ->
  Iface.t
