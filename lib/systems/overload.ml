module Sim = Engine.Sim
module Request = Net.Request

type policy = No_shed | Queue_length of int | Sojourn of float

let validate_policy = function
  | No_shed -> ()
  | Queue_length k -> if k < 1 then invalid_arg "Overload: Queue_length bound < 1"
  | Sojourn s ->
      if Float.is_nan s || s <= 0. then invalid_arg "Overload: Sojourn bound <= 0"

type t = {
  sim : Sim.t;
  pool : Request.pool;
  policy : policy;
  live : (int, unit) Hashtbl.t;  (* admitted request ids awaiting a response *)
  fifo : (int * float) Queue.t;  (* (id, admit time), stale entries skipped lazily *)
  mutable inflight : int;
  mutable admitted : int;
  mutable shed : int;
  mutable peak : int;
}

let create sim ~pool ~policy () =
  validate_policy policy;
  {
    sim;
    pool;
    policy;
    live = Hashtbl.create 1024;
    fifo = Queue.create ();
    inflight = 0;
    admitted = 0;
    shed = 0;
    peak = 0;
  }

(* Pop fifo entries whose request already completed (lazy deletion). *)
let rec evict_retired t =
  match Queue.peek_opt t.fifo with
  | Some (id, _) when not (Hashtbl.mem t.live id) ->
      ignore (Queue.pop t.fifo : int * float);
      evict_retired t
  | _ -> ()

let over_limit t =
  match t.policy with
  | No_shed -> false
  | Queue_length k -> t.inflight >= k
  | Sojourn bound -> (
      evict_retired t;
      match Queue.peek_opt t.fifo with
      | Some (_, admitted_at) -> Sim.now t.sim -. admitted_at > bound
      | None -> false)

let track t (req : Request.t) =
  let id = Request.id t.pool req in
  if not (Hashtbl.mem t.live id) then begin
    Hashtbl.replace t.live id ();
    Queue.add (id, Sim.now t.sim) t.fifo;
    t.inflight <- t.inflight + 1;
    if t.inflight > t.peak then t.peak <- t.inflight
  end

let admit t (req : Request.t) ~forward =
  if over_limit t then t.shed <- t.shed + 1
  else begin
    t.admitted <- t.admitted + 1;
    track t req;
    forward req
  end

let note_response t (req : Request.t) =
  let id = Request.id t.pool req in
  if Hashtbl.mem t.live id then begin
    Hashtbl.remove t.live id;
    t.inflight <- t.inflight - 1
  end

let inflight t = t.inflight

let info t =
  [
    ("admitted", float_of_int t.admitted);
    ("shed", float_of_int t.shed);
    ("inflight_peak", float_of_int t.peak);
    (* Exact engine-level queue depth ([Sim.live], which excludes
       lazily-cancelled entries, unlike [Sim.pending]): the shedding
       decisions above key off [inflight], and this snapshot lets a
       sweep correlate them with the simulator's own backlog. *)
    ("sim_live", float_of_int (Sim.live t.sim));
    ("sim_pending", float_of_int (Sim.pending t.sim));
  ]
