(** Preemptive centralized scheduling — the §2.3/§7 counterpoint.

    Observation 2 of the paper: FCFS is tail-optimal for low-dispersion
    service times, but processor sharing wins when dispersion is extreme
    (bimodal-2, where 0.1% of requests are 1000x longer than the rest).
    ZygOS is FCFS by design; the line of work it spawned (Shinjuku,
    SOSP'19-adjacent) adds preemption to recover the PS advantage.

    This model implements that extension: a centralized run queue feeding
    all cores, where a request executes for at most a quantum before being
    preempted (paying a context-switch cost) and re-queued at the tail —
    processor sharing discretized at quantum granularity, with dataplane
    per-packet costs. With [quantum = infinity] it degenerates to
    centralized FCFS run-to-completion.

    Counters exposed through {!Iface.info}: ["preemptions"],
    ["preemptions_per_request"]. *)

(** Workload-consolidation control plane (§5's other IX control-plane
    function, "energy proportionality [and] workload consolidation ...
    dynamically adjusting ... core allocation"): every [window] µs the
    controller measures utilization of the active cores and parks one core
    below [low_util], or unparks one above [high_util] (paying
    [unpark_latency] before the woken core serves). A centralized run
    queue makes this safe — parked cores simply stop pulling work. *)
type consolidation = {
  window : float;
  low_util : float;
  high_util : float;
  unpark_latency : float;
}

val default_consolidation : consolidation
(** window 200µs, park below 50%, unpark above 85%, 10µs wakeup. *)

val create :
  Engine.Sim.t ->
  Params.t ->
  quantum:float ->
  switch_cost:float ->
  pool:Net.Request.pool ->
  conns:int ->
  respond:(Net.Request.t -> unit) ->
  ?consolidate:consolidation ->
  unit ->
  Iface.t
(** [quantum] is the maximum uninterrupted execution slice (µs);
    [switch_cost] is charged at every preemption (save/restore, queue
    traffic). Raises [Invalid_argument] if [quantum <= 0] or
    [switch_cost < 0].

    With [consolidate], {!Iface.info} additionally exposes
    ["avg_active_cores"] (time-weighted) and ["consolidation_windows"]. *)
