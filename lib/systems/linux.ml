module Sim = Engine.Sim
module Intq = Engine.Intq
module Request = Net.Request
module Corefault = Core.Corefault

(* Per-request thread-side cost: read+write syscalls plus the kernel
   TCP/IP stack each way for every packet of the request/response. *)
let thread_overhead (p : Params.t) =
  (2. *. p.linux_syscall) +. (float_of_int p.rpc_packets *. 2. *. p.linux_netstack)

(* ---- Partitioned: static connection->core assignment via RSS ---- *)

type pcore = {
  id : int;
  ring : Request.t Net.Ring.t;
  mutable busy : bool;
  mutable cur : Request.t;  (* request executing on this core, else [Request.none] *)
}

let partitioned sim (p : Params.t) ~pool ~conns ~respond =
  let p = Params.validate p in
  let faults = Params.corefaults p in
  let rss = Net.Rss.create ~queues:p.cores () in
  let home = Array.init conns (fun c -> Net.Rss.queue_of_conn rss c) in
  let cores =
    Array.init p.cores (fun id ->
        { id; ring = Net.Ring.create ~capacity:p.ring_capacity; busy = false;
          cur = Request.none })
  in
  let per_request_overhead = p.linux_epoll +. thread_overhead p in
  let rec run_next c =
    (let req = Net.Ring.pop_or c.ring ~default:Request.none in
     if req = Request.none then c.busy <- false
     else begin
       Request.set_started pool req (Sim.now sim);
       let work = per_request_overhead +. Request.service pool req in
       let done_at =
         Corefault.completion_time faults ~core:c.id ~now:(Sim.now sim) ~work
       in
       c.cur <- req;
       let _ : Sim.handle = Sim.schedule_fn sim ~at:done_at fn_done c.id in
       ()
     end)
  [@@zygos.hot]
  and fn_done id =
    (let c = cores.(id) in
     let req = c.cur in
     c.cur <- Request.none;
     respond req;
     run_next c)
  [@@zygos.hot]
  and fn_wake id = (run_next cores.(id)) [@@zygos.hot] in
  let[@zygos.hot] submit req =
    let c = cores.(home.(Request.conn pool req)) in
    if Net.Ring.push c.ring req then
      if not c.busy then begin
        c.busy <- true;
        (* The thread is blocked in epoll_wait; it resumes after the wakeup
           latency and then drains its queue. *)
        let _ : Sim.handle = Sim.schedule_fn_after sim ~delay:p.linux_wakeup fn_wake c.id in
        ()
      end
  in
  let info () =
    [
      ("backlog", float_of_int (Array.fold_left (fun acc c -> acc + Net.Ring.length c.ring) 0 cores));
      ("ring_drops", float_of_int (Array.fold_left (fun acc c -> acc + Net.Ring.drops c.ring) 0 cores));
    ]
  in
  { Iface.name = "linux-partitioned"; submit; info }

(* ---- Floating: one shared pool, any thread serves any connection ----

   Matches the paper's implementation: EPOLLEXCLUSIVE-style single-thread
   wakeups plus "a simple locking protocol to serialize access to the same
   socket". Two serialization effects are modelled:

   - per-connection exclusivity: a connection with a request in flight
     parks later requests until it completes; the released request
     re-enters the pool;
   - the shared pool itself: handing an event from the shared epoll set to
     a thread holds the pool lock, a single serial section all threads
     contend on (this is what caps floating's throughput for tiny tasks,
     cf. Figure 9's Linux curve). *)

type fstate = {
  dispatch_queue : Intq.t;  (* waiting for the pool hand-off *)
  mutable dispatcher_busy : bool;
  ready : Intq.t;  (* dispatched, waiting for a free thread *)
  conn_busy : bool array;
  conn_pending : Intq.t array;
  mutable idle_threads : int;
  mutable backlog : int;  (* accepted, execution not yet started *)
  mutable drops : int;  (* refused: kernel backlog budget exhausted *)
  mutable next_thread : int;  (* round-robin core assignment of executions *)
}

let floating sim (p : Params.t) ~pool ~conns ~respond =
  let p = Params.validate p in
  let faults = Params.corefaults p in
  (* The kernel buffers bursts in per-socket receive queues, not a NIC
     ring the application sees; the aggregate socket-buffer budget still
     bounds how far the backlog can grow before packets are refused. *)
  let backlog_capacity = p.ring_capacity * p.cores in
  let st =
    {
      dispatch_queue = Intq.create ();
      dispatcher_busy = false;
      ready = Intq.create ();
      conn_busy = Array.make conns false;
      conn_pending = Array.init conns (fun _ -> Intq.create ());
      idle_threads = p.cores;
      backlog = 0;
      drops = 0;
      next_thread = 0;
    }
  in
  (* Only the pool-lock hand-off serializes; each woken thread performs
     its own epoll_wait in parallel (EPOLLEXCLUSIVE). *)
  let dispatch_cost = p.linux_lock in
  let rec start ~woken req =
    (st.backlog <- st.backlog - 1;
     (* Threads are unpinned; model the antagonist by spreading executions
        round-robin over the cores it may land on. *)
     let core = st.next_thread in
     st.next_thread <- (st.next_thread + 1) mod p.cores;
     Request.set_started pool req (Sim.now sim);
     let work =
       (if woken then p.linux_wakeup else 0.)
       +. p.linux_epoll +. thread_overhead p +. Request.service pool req
     in
     let done_at = Corefault.completion_time faults ~core ~now:(Sim.now sim) ~work in
     let _ : Sim.handle = Sim.schedule_fn sim ~at:done_at fn_finish req in
     ())
  [@@zygos.hot]
  and fn_finish req =
    (* The handle dies at [respond] (the client may recycle its slot), so
       the connection is read out first. *)
    (let conn = Request.conn pool req in
     respond req;
     (* Socket serialization: release it, or send its next queued request
        back through the shared pool. *)
     (if Intq.is_empty st.conn_pending.(conn) then st.conn_busy.(conn) <- false
      else enqueue_dispatch (Intq.pop st.conn_pending.(conn)));
     (* This thread immediately picks up the next dispatched event. *)
     if Intq.is_empty st.ready then st.idle_threads <- st.idle_threads + 1
     else start ~woken:false (Intq.pop st.ready))
  [@@zygos.hot]
  and enqueue_dispatch req =
    (Intq.push st.dispatch_queue req;
     pump_dispatcher ())
  [@@zygos.hot]
  and pump_dispatcher () =
    (if not st.dispatcher_busy then
       if not (Intq.is_empty st.dispatch_queue) then begin
         let req = Intq.pop st.dispatch_queue in
         st.dispatcher_busy <- true;
         let _ : Sim.handle =
           Sim.schedule_fn_after sim ~delay:dispatch_cost fn_dispatched req
         in
         ()
       end)
  [@@zygos.hot]
  and fn_dispatched req =
    (st.dispatcher_busy <- false;
     (if st.idle_threads > 0 then begin
        st.idle_threads <- st.idle_threads - 1;
        start ~woken:true req
      end
      else Intq.push st.ready req);
     pump_dispatcher ())
  [@@zygos.hot]
  in
  let[@zygos.hot] submit req =
    if st.backlog >= backlog_capacity then st.drops <- st.drops + 1
    else begin
      st.backlog <- st.backlog + 1;
      let conn = Request.conn pool req in
      if st.conn_busy.(conn) then Intq.push st.conn_pending.(conn) req
      else begin
        st.conn_busy.(conn) <- true;
        enqueue_dispatch req
      end
    end
  in
  let info () =
    [
      ("backlog", float_of_int (Intq.length st.ready + Intq.length st.dispatch_queue));
      ("ring_drops", float_of_int st.drops);
    ]
  in
  { Iface.name = "linux-floating"; submit; info }
