(** Simulated ZygOS server (§4–§5): the paper's three-layer architecture
    driven by the real scheduling code of [lib/core].

    Per core, the model keeps the paper's data structures:

    - a NIC hardware descriptor ring fed flow-consistently by RSS (lower
      networking layer, coherence-free, home-core only);
    - the shuffle queue of ready connections ({!Core.Sched}), which the
      home core consumes and idle remote cores steal from;
    - a multiple-producer/single-consumer queue of remote batched syscalls
      ({!Core.Remote_queue}) carrying responses of stolen work back to the
      home core's TCP output path.

    The idle loop follows §5's polling order: own hardware ring, then
    others' shuffle queues, then others' pending packet queues — sending an
    exit-less IPI when it finds packets whose home core is busy executing
    application code with an empty shuffle queue. IPIs also force timely
    execution of remote batched syscalls. With [zy_interrupts = false] the
    model degenerates to the cooperative "ZygOS (no interrupts)" variant of
    Figures 6 and 8.

    A connection's events execute under exclusive ownership from dispatch
    until the home core has transmitted the batch's responses, giving the
    §4.3 ordering guarantee; the per-socket event grouping of the shuffle
    queue eliminates head-of-line blocking (§4.4). *)

(** Scheduling events, observable through [create]'s [trace] callback —
    the model's counterpart of a kernel tracepoint stream. *)
type trace_event =
  | Rx of { core : int; packets : int }
      (** the core ran its receive path over this many packets *)
  | Dispatch_local of { core : int; conn : int; events : int }
  | Steal of { thief : int; victim : int; conn : int; events : int }
  | Ipi of { src : int; dst : int }
      (** an inter-processor interrupt was sent *)
  | Remote_tx of { home : int; conn : int; responses : int }
      (** the home core transmitted a stolen batch's responses *)

val pp_trace_event : Format.formatter -> trace_event -> unit

val create :
  Engine.Sim.t ->
  Params.t ->
  rng:Engine.Rng.t ->
  pool:Net.Request.pool ->
  conns:int ->
  respond:(Net.Request.t -> unit) ->
  ?trace:(float -> trace_event -> unit) ->
  unit ->
  Iface.t
(** Counters exposed through {!Iface.info}: ["steal_fraction"] (stolen
    events / dispatched events, Figure 8), ["ipis_sent"], ["ring_drops"],
    ["local_events"], ["stolen_events"], ["remote_batches"]. [trace], when
    given, receives every scheduling event with its simulated
    timestamp. *)

val work_conservation_violations : Iface.t -> int
(** Number of scheduler idle decisions that left a non-empty shuffle queue
    unserved somewhere (checked at every idle transition; must be 0 — this
    is the work-conservation property, validated in tests). Raises
    [Invalid_argument] on a non-ZygOS handle. *)
