(** Simulated IX dataplane (Belay et al., OSDI'14 / TOCS'17), the paper's
    shared-nothing baseline.

    Each core owns the connections RSS maps to its hardware queue and runs
    a strict run-to-completion loop with adaptive bounded batching
    (§3.3/§6.2): take up to B packets from the hardware ring, carry the
    whole batch through the network stack, then execute each request to
    completion (application service + eager transmit), then loop. There is
    no stealing and no preemption, so a long request blocks everything
    behind it on the same core — the head-of-line blocking ZygOS
    eliminates. B=1 disables batching (best tail latency), B=64 is the
    default (best throughput for tiny tasks, Figure 9/11). *)

val create :
  Engine.Sim.t ->
  Params.t ->
  pool:Net.Request.pool ->
  conns:int ->
  respond:(Net.Request.t -> unit) ->
  Iface.t

val create_with_rss :
  Engine.Sim.t ->
  Params.t ->
  pool:Net.Request.pool ->
  rss:Net.Rss.t ->
  conns:int ->
  respond:(Net.Request.t -> unit) ->
  Iface.t * (unit -> int array)
(** Like {!create}, but the connection→core mapping goes through the given
    RSS engine's {e live} indirection table on every packet, so a control
    plane ({!Rebalance}) can re-program it mid-run. The second result
    reads and resets the per-slot arrival counters the controller uses to
    find hot slots. *)
