(** Server-side admission control / load shedding.

    SWP-style overload handling: past saturation, an open-loop arrival
    process (and worse, a retrying client population) grows server queues
    without bound, so the latency of {e every} admitted request blows past
    the SLO and goodput collapses — the classic retry-storm metastable
    failure. Shedding keeps the backlog bounded: requests the server
    cannot serve in time are refused at the NIC boundary (the client sees
    a timeout and backs off), so the requests that {e are} admitted still
    meet the SLO and goodput degrades gracefully to the service capacity.

    The guard wraps a system's submit/respond pair and is policy-checked
    before a request reaches the model, so it composes with all of
    Linux/IX/ZygOS unchanged. With {!No_shed} the guard only counts
    in-flight requests — it draws no randomness and schedules no events,
    so it cannot perturb a simulation. *)

type policy =
  | No_shed  (** admit everything (observation only) *)
  | Queue_length of int
      (** refuse when the server already holds this many admitted,
          unanswered requests (>= 1) *)
  | Sojourn of float
      (** refuse while the oldest admitted, unanswered request has been
          in the server longer than this bound (µs, > 0) — a
          CoDel-flavoured head-sojourn rule that adapts to service-time
          dispersion where a fixed queue bound cannot *)

val validate_policy : policy -> unit
(** Raises [Invalid_argument] on a non-positive bound. *)

type t

val create : Engine.Sim.t -> pool:Net.Request.pool -> policy:policy -> unit -> t
(** The pool is consulted only to read request ids; the guard never
    allocates or releases handles. *)

val admit : t -> Net.Request.t -> forward:(Net.Request.t -> unit) -> unit
(** Apply the policy: either [forward] the request into the server (and
    start tracking it) or shed it — the request is then never delivered
    and never completed, exactly like a drop at a full NIC ring. *)

val note_response : t -> Net.Request.t -> unit
(** Must be called on the server's respond path so the guard can retire
    the request from its in-flight accounting. *)

val inflight : t -> int

val info : t -> (string * float) list
(** [admitted], [shed], [inflight_peak] — merged into the wrapped
    system's {!Iface.info} output by the experiment runner. *)
