type t = {
  name : string;
  submit : Net.Request.t -> unit;
  info : unit -> (string * float) list;
}

(* String-keyed lookup: List.assoc_opt would compare keys with
   polymorphic equality. *)
let rec assoc_str key = function
  | [] -> None
  | (k, v) :: rest -> if String.equal k key then Some v else assoc_str key rest

let info_value t key = assoc_str key (t.info ())
