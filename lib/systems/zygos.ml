module Sim = Engine.Sim
module Request = Net.Request
module Sched = Core.Sched.Sim_sched
module RQ = Core.Remote_queue.Make (Core.Platform.Nolock)

type mode = Midle | Muser | Mkernel

type trace_event =
  | Rx of { core : int; packets : int }
  | Dispatch_local of { core : int; conn : int; events : int }
  | Steal of { thief : int; victim : int; conn : int; events : int }
  | Ipi of { src : int; dst : int }
  | Remote_tx of { home : int; conn : int; responses : int }

let pp_trace_event ppf = function
  | Rx { core; packets } -> Format.fprintf ppf "core %d: rx %d packets" core packets
  | Dispatch_local { core; conn; events } ->
      Format.fprintf ppf "core %d: dispatch conn %d (%d events)" core conn events
  | Steal { thief; victim; conn; events } ->
      Format.fprintf ppf "core %d: steal conn %d (%d events) from core %d" thief conn events
        victim
  | Ipi { src; dst } -> Format.fprintf ppf "core %d: IPI -> core %d" src dst
  | Remote_tx { home; conn; responses } ->
      Format.fprintf ppf "core %d: tx %d remote responses for conn %d" home responses conn

(* A remote batched-syscall entry: the responses of a stolen batch, to be
   transmitted by (and ownership released at) the home core. The handles
   are copied out of the thief's scheduler scratch into one flat array —
   the only allocation a stolen batch costs. *)
type remote_batch = { pcb : Request.t Sched.pcb; reqs : Request.t array }

(* Sentinel for "no segment continuation armed"; compared with physical
   equality, so real continuations are never misread as it. *)
let fn_none (_ : int) = ()

type zcore = {
  id : int;
  hw : Request.t Net.Ring.t;
  remote : remote_batch RQ.t;
  policy : Core.Steal_policy.t;
  mutable mode : mode;
  mutable cur_handle : Sim.handle;  (* current timed segment; [Sim.no_handle] if none *)
  mutable cur_fn : int -> unit;  (* its completion fn ([fn_none] if none) *)
  done_buf : float array;  (* 1 slot: current segment's completion time; a
                              mutable float field of this mixed record would
                              box on every store *)
  mutable ipi_pending : bool;  (* an IPI is in flight / unhandled for this core *)
  mutable wake_scheduled : bool;
  mutable ipis_received : int;
  mutable rx_pending : int;  (* batch size of the in-flight rx segment *)
  (* Cursor of the batch walk over the scheduler's claimed scratch; the
     scratch stays valid for the whole batch because this core only
     polls again after [end_of_batch]. *)
  mutable b_idx : int;
  mutable b_stolen : int;  (* victim core, or -1 for a local batch *)
  rxbuf : Request.t array;  (* rx scratch, capacity zy_rx_batch *)
  tbuf : float array;  (* 1-slot unboxed clock for remote-tx walks *)
}

type t = {
  sim : Sim.t;
  clk : float array;  (* [Sim.clock_buffer sim]: inline now-reads on hot paths *)
  kbuf : float array;  (* [Sim.key_buffer sim]: keyed schedules, no boxed [~at] *)
  p : Params.t;
  pool : Request.pool;
  faults : Core.Corefault.t;  (* straggler schedule; [none] = exact nominal times *)
  fault_free : bool;  (* [Corefault.is_none faults]: segments cost exactly [now +. cost] *)
  sched : Request.t Sched.t;
  pcbs : Request.t Sched.pcb array;
  zcores : zcore array;
  respond : Request.t -> unit;
  trace : (float -> trace_event -> unit) option;
  mutable ipis_sent : int;
  mutable remote_batches : int;
  mutable wc_violations : int;
  (* Long-lived dispatch fns for [Sim.schedule_fn]: bound once in
     [create], so the hot scheduling paths allocate no closures. *)
  (* Segment-completion fns, one per segment kind (iarg = core id): the
     segment event dispatches straight into its continuation — one
     indirect call per completion, not fn_segment_done + a stored
     closure. Each fn re-arms nothing; it clears [cur_handle] first. *)
  mutable fn_step : int -> unit;  (* resume the scheduler loop *)
  mutable fn_rx_done : int -> unit;  (* deliver the [rx_pending] popped packets *)
  mutable fn_user_done : int -> unit;  (* batch walk: user segment of event [b_idx] ended *)
  mutable fn_tx_done : int -> unit;  (* batch walk: eager tx of event [b_idx] on the wire *)
  mutable fn_wake : int -> unit;  (* iarg = core id *)
  mutable fn_ipi : int -> unit;  (* iarg = destination core id *)
  mutable fn_ipi_rx : int -> unit;  (* iarg = (rx_count lsl 16) lor core id *)
  mutable fn_remote_release : int -> unit;  (* iarg = connection id *)
}

(* ---- timed segments ----

   A core executes one timed segment at a time (user execution of one
   event, or a stretch of kernel work). IPIs extend the current segment:
   the handler's work is accounted inside the interrupted execution.

   Segments are where straggler injection lands: the nominal cost is run
   through [Corefault.completion_time], which stretches (or parks) work
   overlapping a fault window. With no straggler schedule the arithmetic
   is exactly [now +. cost], preserving bit-identical fault-free runs. *)

(* The completion event carries only the core id and dispatches directly
   into the segment's completion fn; [cur_fn] only exists so
   [extend_segment] can reschedule the same continuation. The completion
   time lives in [done_buf] / [Sim.key_buffer] flat storage end to end:
   [completion_time] is a real call with boxed float args, so the
   fault-free steady state keeps the arithmetic inline and unboxed. *)
let[@zygos.hot] start_segment t c ~mode ~cost ~finish =
  assert (c.cur_handle = Sim.no_handle);
  c.mode <- mode;
  if c.cur_fn != finish then c.cur_fn <- finish;
  let at =
    if t.fault_free then Array.unsafe_get t.clk 0 +. cost
    else
      (* fault windows active: boxed returns acceptable off steady state *)
      (Core.Corefault.completion_time t.faults ~core:c.id
         ~now:(Sim.now t.sim) ~work:cost [@zygos.allow "r7"])
  in
  Array.unsafe_set c.done_buf 0 at;
  Array.unsafe_set t.kbuf 0 at;
  c.cur_handle <- Sim.schedule_fn_keyed t.sim finish c.id

let[@zygos.hot] extend_segment t c ~extra =
  assert (c.cur_handle <> Sim.no_handle);
  assert (c.cur_fn != fn_none);
  Sim.cancel t.sim c.cur_handle;
  let prev = Array.unsafe_get c.done_buf 0 in
  let at =
    if t.fault_free then prev +. extra
    else
      (Core.Corefault.completion_time t.faults ~core:c.id ~now:prev
         ~work:extra [@zygos.allow "r7"])
  in
  Array.unsafe_set c.done_buf 0 at;
  Array.unsafe_set t.kbuf 0 at;
  c.cur_handle <- Sim.schedule_fn_keyed t.sim c.cur_fn c.id

let[@zygos.hot] emit_trace t ev =
  (* user-supplied diagnostics callback: opaque by design, and the
     timestamp argument is a fresh float by contract *)
  match t.trace with
  | Some f -> (f (Sim.now t.sim) ev [@zygos.allow "r6,r7"])
  | None -> ()

(* Trace-event constructors allocate; hot sites guard on [tracing t] so
   the untraced steady state allocates nothing. *)
let[@zygos.hot] tracing t = Option.is_some t.trace

(* ---- idle wakeups ---- *)

let rec wake t c ~delay =
  (if c.mode = Midle && not c.wake_scheduled then begin
     c.wake_scheduled <- true;
     Array.unsafe_set t.kbuf 0 (Array.unsafe_get t.clk 0 +. delay);
     let _ : Sim.handle = Sim.schedule_fn_keyed t.sim t.fn_wake c.id in
     ()
   end)
[@@zygos.hot]

and wake_idlers t ~delay =
  (* for-loop, not Array.iter: the iter closure would capture [t]/[delay]
     and be rebuilt on every call. *)
  (let zs = t.zcores in
   for i = 0 to Array.length zs - 1 do
     let c = zs.(i) in
     if c.mode = Midle then wake t c ~delay
   done)
[@@zygos.hot]

(* ---- inter-processor interrupts (§4.5, exit-less per §5) ---- *)

and send_ipi t ~src v =
  (if not v.ipi_pending then begin
     v.ipi_pending <- true;
     t.ipis_sent <- t.ipis_sent + 1;
     if tracing t then (emit_trace t (Ipi { src; dst = v.id }) [@zygos.allow "hot-alloc"]);
     Array.unsafe_set t.kbuf 0 (Array.unsafe_get t.clk 0 +. t.p.zy_ipi_latency);
     let _ : Sim.handle = Sim.schedule_fn_keyed t.sim t.fn_ipi v.id in
     ()
   end)
[@@zygos.hot]

and deliver_ipi t v =
  v.ipi_pending <- false;
  match v.mode with
  | Midle ->
      (* Nothing to interrupt; treat as a wakeup hint. *)
      wake t v ~delay:0.
  | Mkernel ->
      (* The kernel executes with interrupts disabled (§4.5); its loop will
         find the pending work anyway. *)
      ()
  | Muser ->
      v.ipis_received <- v.ipis_received + 1;
      (* Handler, interrupting user-level execution: (1) process incoming
         packets if the shuffle queue is empty; (2) execute all remote
         batched syscalls and transmit (§4.5). *)
      let rx_count =
        if Sched.queue_length t.sched ~core:v.id = 0 then
          min t.p.zy_rx_batch (Net.Ring.length v.hw)
        else 0
      in
      let batches = (RQ.drain v.remote [@zygos.allow "r6"]) in
      let have_batches = match batches with [] -> false | _ :: _ -> true in
      if rx_count > 0 || have_batches then begin
        let t0 = Array.unsafe_get t.clk 0 +. t.p.zy_ipi_handler in
        let after_rx = t0 +. (float_of_int (rx_count * t.p.rpc_packets) *. t.p.dp_rx) in
        if rx_count > 0 then begin
          (* Pop the ring at the moment the handler's receive work
             completes — popping earlier and delivering later could let a
             second IPI's packets overtake these on the same connection.
             The event packs (rx_count, core id) into its int payload. *)
          Array.unsafe_set t.kbuf 0 after_rx;
          let _ : Sim.handle =
            Sim.schedule_fn_keyed t.sim t.fn_ipi_rx ((rx_count lsl 16) lor v.id)
          in
          ()
        end;
        let tx_end = transmit_batches t ~home:v.id ~from:after_rx batches in
        extend_segment t v ~extra:(tx_end -. Array.unsafe_get t.clk 0)
      end

(* ---- kernel helpers ---- *)

(* Pop up to [limit] packets into the core's rx scratch; returns the
   count. The scratch is always consumed in the same event that fills
   it ([k_rx] / [fn_ipi_rx]), so one buffer per core suffices. *)
and pop_hw v ~limit = (pop_hw_loop v ~limit 0) [@@zygos.hot]

and pop_hw_loop v ~limit n =
  (if n = limit then n
   else begin
     let req = Net.Ring.pop_or v.hw ~default:Request.none in
     if req = Request.none then n
     else begin
       Array.unsafe_set v.rxbuf n req;
       pop_hw_loop v ~limit (n + 1)
     end
   end)
[@@zygos.hot]

(* Schedule the transmit work of remote batches starting at [from]; each
   response completes after its syscall + tx cost, and each batch's
   connection is released (Sched.complete) once its replies are on the
   wire, per the §4.3 ownership rule. Returns the finish time. The
   running clock lives in the home core's 1-slot float scratch so the
   walk boxes nothing; [t.respond] is itself the [int -> unit] dispatch
   fn for each response event. *)
and transmit_batches t ~home ~from batches =
  (let c = t.zcores.(home) in
   Array.unsafe_set c.tbuf 0 from;
   transmit_go t c ~home batches;
   Array.unsafe_get c.tbuf 0)
[@@zygos.hot]

and transmit_go t c ~home batches =
  (match batches with
   | [] -> ()
   | { pcb; reqs } :: rest ->
       if tracing t then
         (emit_trace t
            (Remote_tx { home; conn = Sched.conn pcb; responses = Array.length reqs })
         [@zygos.allow "hot-alloc"]);
       for i = 0 to Array.length reqs - 1 do
         let done_at =
           Array.unsafe_get c.tbuf 0
           +. t.p.zy_remote_syscall
           +. (float_of_int t.p.rpc_packets *. t.p.dp_tx)
         in
         Array.unsafe_set t.kbuf 0 done_at;
         let _ : Sim.handle =
           Sim.schedule_fn_keyed t.sim t.respond (Array.unsafe_get reqs i)
         in
         Array.unsafe_set c.tbuf 0 done_at
       done;
       Array.unsafe_set t.kbuf 0 (Array.unsafe_get c.tbuf 0);
       let _ : Sim.handle =
         Sim.schedule_fn_keyed t.sim t.fn_remote_release (Sched.conn pcb)
       in
       transmit_go t c ~home rest)
[@@zygos.hot]

(* ---- the per-core scheduler loop ---- *)

and step t c =
  (assert (c.cur_handle = Sim.no_handle);
   if not (try_drain_remote t c) then
     if not (try_dispatch t c) then if not (try_rx t c) then go_idle t c)
[@@zygos.hot]

and try_drain_remote t c =
  (* cross-core handoff: the remote queue's lock+list drain is the
     stealing slow path, deliberately outside the certified hot set *)
  match (RQ.drain c.remote [@zygos.allow "r6"]) with
  | [] -> false
  | batches ->
      let finish_at = transmit_batches t ~home:c.id ~from:(Array.unsafe_get t.clk 0) batches in
      start_segment t c ~mode:Mkernel ~cost:(finish_at -. Array.unsafe_get t.clk 0) ~finish:t.fn_step;
      true
[@@zygos.hot]

and victim_order t c =
  (if t.p.zy_poll_random then Core.Steal_policy.victim_order c.policy
   else Core.Steal_policy.round_robin_order c.policy)
[@@zygos.hot]

and try_dispatch t c =
  (* Own shuffle queue first, then steal in randomized victim order. The
     claimed batch stays in the scheduler's per-core scratch — processed
     in place as one array walk, no per-event list. *)
  (let order = victim_order t c in
   if not (Sched.poll t.sched ~core:c.id ~steal_order:order) then false
   else begin
     let stolen = Sched.batch_stolen_from t.sched ~core:c.id in
     (if tracing t then begin
        let pcb = Sched.batch_pcb t.sched ~core:c.id in
        let n = Sched.batch_size t.sched ~core:c.id in
        if stolen < 0 then
          (emit_trace t (Dispatch_local { core = c.id; conn = Sched.conn pcb; events = n })
          [@zygos.allow "hot-alloc"])
        else
          (emit_trace t
             (Steal { thief = c.id; victim = stolen; conn = Sched.conn pcb; events = n })
          [@zygos.allow "hot-alloc"])
      end);
     c.b_idx <- 0;
     c.b_stolen <- stolen;
     exec_next t c;
     true
   end)
[@@zygos.hot]

(* Execute the batch's events one at a time, alternating user execution
   and (for local work) eager kernel transmit — §6.2: "processes events
   individually, interleaving between user and kernel code". The walk is
   a cursor ([b_idx]) over the scheduler scratch driven by the two
   preallocated continuations [k_user_done]/[k_tx_done]; nothing is
   allocated per event. *)
and exec_next t c =
  (if c.b_idx >= Sched.batch_size t.sched ~core:c.id then end_of_batch t c
   else begin
     let req = Sched.batch_event t.sched ~core:c.id c.b_idx in
     let steal_cost = if c.b_idx = 0 && c.b_stolen >= 0 then t.p.zy_steal else 0. in
     (Request.set_started t.pool req (Array.unsafe_get t.clk 0)
     [@zygos.allow "r7"]);
     let user_cost =
       steal_cost +. t.p.zy_shuffle
       +. (Request.service t.pool req [@zygos.allow "r7"])
     in
     start_segment t c ~mode:Muser ~cost:user_cost ~finish:t.fn_user_done
   end)
[@@zygos.hot]

and end_of_batch t c =
  (let pcb = Sched.batch_pcb t.sched ~core:c.id in
   if c.b_stolen < 0 then begin
     Sched.complete t.sched pcb;
     step t c
   end
   else begin
     (* Remote core: the batch's syscalls return to the home core (§4.2
        step (b)); ownership is released there once transmitted. *)
     let home = t.zcores.(c.b_stolen) in
     let n = Sched.batch_size t.sched ~core:c.id in
     (* One response array + one record per stolen batch: the scratch is
        overwritten by the core's next poll, so the copy must outlive it. *)
     let reqs =
       (Array.init n (fun i -> Sched.batch_event t.sched ~core:c.id i)
       [@zygos.allow "hot-alloc"])
     in
     (RQ.push home.remote ({ pcb; reqs } [@zygos.allow "hot-alloc"])
     [@zygos.allow "r6"]);
     t.remote_batches <- t.remote_batches + 1;
     (match home.mode with
     | Midle -> wake t home ~delay:0.
     | Muser -> if t.p.zy_interrupts then send_ipi t ~src:c.id home
     | Mkernel -> ());
     step t c
   end)
[@@zygos.hot]

and try_rx t c =
  (if Net.Ring.is_empty c.hw then false
   else begin
     let k = min t.p.zy_rx_batch (Net.Ring.length c.hw) in
     let cost = t.p.dp_loop +. (float_of_int (k * t.p.rpc_packets) *. t.p.dp_rx) in
     (* A core runs one rx segment at a time, so parking the batch size on
        the core (for the preallocated [k_rx] continuation) is safe. *)
     c.rx_pending <- k;
     start_segment t c ~mode:Mkernel ~cost ~finish:t.fn_rx_done;
     true
   end)
[@@zygos.hot]

and go_idle t c =
  (c.mode <- Midle;
   (* Work-conservation invariant: this core just scanned every shuffle
      queue and found nothing; if anything is ready now, the scheduler
      failed to be work conserving. *)
   if Sched.has_ready t.sched then t.wc_violations <- t.wc_violations + 1;
   if t.p.zy_interrupts then scan_and_ipi t c)
[@@zygos.hot]

(* Idle-loop steps (c)/(d) of §5: look at other cores' pending packet
   queues; when a busy-at-user core has packets but an empty shuffle
   queue, interrupt it so it replenishes the shuffle queue for stealing. *)
and scan_and_ipi t c =
  (* for-loop over the victim order, not Array.iter: the iter closure
     would capture [t]/[c] and be rebuilt per idle transition. *)
  (let order = victim_order t c in
   for k = 0 to Array.length order - 1 do
     let vid = order.(k) in
     let v = t.zcores.(vid) in
     if v.mode = Muser then begin
       let packets_blocked =
         (not (Net.Ring.is_empty v.hw)) && Sched.queue_length t.sched ~core:vid = 0
       in
       let syscalls_blocked = not (RQ.is_empty v.remote) in
       if packets_blocked || syscalls_blocked then send_ipi t ~src:c.id v
     end
   done)
[@@zygos.hot]

(* Deliver the first [n] requests of a core's rx scratch to the
   scheduler: one flat array walk, request by request in arrival order. *)
let[@zygos.hot] deliver_batch t v n =
  for i = 0 to n - 1 do
    let req = Array.unsafe_get v.rxbuf i in
    Sched.deliver t.sched t.pcbs.(Request.conn t.pool req) req
  done

let create sim (p : Params.t) ~rng ~pool ~conns ~respond ?trace () =
  let p = Params.validate p in
  let rss = Net.Rss.create ~queues:p.cores () in
  let sched = Sched.create ~cores:p.cores in
  let pcbs =
    Array.init conns (fun c -> Sched.register sched ~conn:c ~home:(Net.Rss.queue_of_conn rss c))
  in
  let zcores =
    Array.init p.cores (fun id ->
        {
          id;
          hw = Net.Ring.create ~capacity:p.ring_capacity;
          remote = RQ.create ();
          policy = Core.Steal_policy.create ~rng:(Engine.Rng.split rng) ~cores:p.cores ~self:id;
          mode = Midle;
          cur_handle = Sim.no_handle;
          cur_fn = fn_none;
          done_buf = Array.make 1 0.;
          ipi_pending = false;
          wake_scheduled = false;
          ipis_received = 0;
          rx_pending = 0;
          b_idx = 0;
          b_stolen = -1;
          rxbuf = Array.make p.zy_rx_batch Request.none;
          tbuf = Array.make 1 0.;
        })
  in
  let t =
    {
      sim;
      clk = Sim.clock_buffer sim;
      kbuf = Sim.key_buffer sim;
      p;
      pool;
      faults = Params.corefaults p;
      fault_free = Core.Corefault.is_none (Params.corefaults p);
      sched;
      pcbs;
      zcores;
      respond;
      trace;
      ipis_sent = 0;
      remote_batches = 0;
      wc_violations = 0;
      fn_step = ignore;
      fn_rx_done = ignore;
      fn_user_done = ignore;
      fn_tx_done = ignore;
      fn_wake = ignore;
      fn_ipi = ignore;
      fn_ipi_rx = ignore;
      fn_remote_release = ignore;
    }
  in
  (* Bind the long-lived dispatch fns and per-core continuations now that
     [t] exists; every event scheduled below reaches back through these. *)
  t.fn_step <-
    (fun id ->
      let c = t.zcores.(id) in
      c.cur_handle <- Sim.no_handle;
      step t c) [@zygos.hot];
  t.fn_wake <-
    (fun id ->
      let c = t.zcores.(id) in
      c.wake_scheduled <- false;
      if c.mode = Midle && c.cur_handle = Sim.no_handle then step t c) [@zygos.hot];
  t.fn_ipi <- (fun id -> deliver_ipi t t.zcores.(id)) [@zygos.hot];
  t.fn_ipi_rx <-
    (fun packed ->
      let v = t.zcores.(packed land 0xffff) in
      let rx_count = packed lsr 16 in
      let n = pop_hw v ~limit:rx_count in
      (if tracing t then
         (emit_trace t (Rx { core = v.id; packets = n }) [@zygos.allow "hot-alloc"]));
      deliver_batch t v n;
      wake_idlers t ~delay:t.p.zy_poll_delay) [@zygos.hot];
  t.fn_remote_release <-
    (fun conn ->
      Sched.complete t.sched t.pcbs.(conn);
      wake_idlers t ~delay:t.p.zy_poll_delay) [@zygos.hot];
  t.fn_rx_done <-
    (fun id ->
      let c = t.zcores.(id) in
      c.cur_handle <- Sim.no_handle;
      let n = pop_hw c ~limit:c.rx_pending in
      (if tracing t then
         (emit_trace t (Rx { core = c.id; packets = n }) [@zygos.allow "hot-alloc"]));
      deliver_batch t c n;
      wake_idlers t ~delay:t.p.zy_poll_delay;
      step t c) [@zygos.hot];
  t.fn_user_done <-
    (fun id ->
      let c = t.zcores.(id) in
      c.cur_handle <- Sim.no_handle;
      if c.b_stolen >= 0 then begin
        c.b_idx <- c.b_idx + 1;
        exec_next t c
      end
      else
        (* Home core: transmit eagerly, in kernel mode. *)
        start_segment t c ~mode:Mkernel
          ~cost:(float_of_int t.p.rpc_packets *. t.p.dp_tx) ~finish:t.fn_tx_done)
    [@zygos.hot];
  t.fn_tx_done <-
    (fun id ->
      let c = t.zcores.(id) in
      c.cur_handle <- Sim.no_handle;
      let req = Sched.batch_event t.sched ~core:c.id c.b_idx in
      c.b_idx <- c.b_idx + 1;
      t.respond req;
      exec_next t c) [@zygos.hot];
  let[@zygos.hot] submit req =
    let c = t.zcores.(Sched.home t.pcbs.(Request.conn pool req)) in
    if Net.Ring.push c.hw req then begin
      match c.mode with
      | Midle -> wake t c ~delay:p.dp_loop
      | Muser ->
          (* The home core is executing application code: only another,
             idle, core can notice this packet (and IPI the home core). *)
          if p.zy_interrupts then wake_idlers t ~delay:p.zy_poll_delay
      | Mkernel -> ()
    end
  in
  let info () =
    let counters = Sched.total_counters t.sched in
    let drops = Array.fold_left (fun acc c -> acc + Net.Ring.drops c.hw) 0 t.zcores in
    [
      ("steal_fraction", Sched.steal_fraction t.sched);
      ("ipis_sent", float_of_int t.ipis_sent);
      ("ring_drops", float_of_int drops);
      ("local_events", float_of_int counters.Sched.local_events);
      ("stolen_events", float_of_int counters.Sched.stolen_events);
      ("remote_batches", float_of_int t.remote_batches);
      ("wc_violations", float_of_int t.wc_violations);
    ]
  in
  let name = if p.zy_interrupts then "zygos" else "zygos-noint" in
  { Iface.name; submit; info }

let work_conservation_violations (iface : Iface.t) =
  match Iface.info_value iface "wc_violations" with
  | Some v -> int_of_float v
  | None -> invalid_arg "Zygos.work_conservation_violations: not a zygos system"
