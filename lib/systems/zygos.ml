module Sim = Engine.Sim
module Request = Net.Request
module Sched = Core.Sched.Sim_sched
module RQ = Core.Remote_queue.Make (Core.Platform.Nolock)

type mode = Midle | Muser | Mkernel

type trace_event =
  | Rx of { core : int; packets : int }
  | Dispatch_local of { core : int; conn : int; events : int }
  | Steal of { thief : int; victim : int; conn : int; events : int }
  | Ipi of { src : int; dst : int }
  | Remote_tx of { home : int; conn : int; responses : int }

let pp_trace_event ppf = function
  | Rx { core; packets } -> Format.fprintf ppf "core %d: rx %d packets" core packets
  | Dispatch_local { core; conn; events } ->
      Format.fprintf ppf "core %d: dispatch conn %d (%d events)" core conn events
  | Steal { thief; victim; conn; events } ->
      Format.fprintf ppf "core %d: steal conn %d (%d events) from core %d" thief conn events
        victim
  | Ipi { src; dst } -> Format.fprintf ppf "core %d: IPI -> core %d" src dst
  | Remote_tx { home; conn; responses } ->
      Format.fprintf ppf "core %d: tx %d remote responses for conn %d" home responses conn

(* A remote batched-syscall entry: the responses of a stolen batch, to be
   transmitted by (and ownership released at) the home core. *)
type remote_batch = { pcb : Request.t Sched.pcb; reqs : Request.t list }

(* Sentinel for "no segment continuation armed"; compared with physical
   equality, so real continuations (closures) are never misread as it.
   Storing the continuation flat instead of as an option removes two
   [Some] allocations per timed segment. *)
let no_finish () = ()

type zcore = {
  id : int;
  hw : Request.t Net.Ring.t;
  remote : remote_batch RQ.t;
  policy : Core.Steal_policy.t;
  mutable mode : mode;
  mutable cur_handle : Sim.handle;  (* current timed segment; [Sim.no_handle] if none *)
  mutable cur_finish : unit -> unit;  (* its continuation ([no_finish] if none) *)
  mutable cur_done_at : float;
  mutable ipi_pending : bool;  (* an IPI is in flight / unhandled for this core *)
  mutable wake_scheduled : bool;
  mutable ipis_received : int;
  (* Continuations allocated once per core (closure-free steady state). *)
  mutable k_step : unit -> unit;  (* [step t c] *)
  mutable k_rx : unit -> unit;  (* deliver the [rx_pending] popped packets *)
  mutable rx_pending : int;  (* batch size of the in-flight rx segment *)
}

type t = {
  sim : Sim.t;
  p : Params.t;
  faults : Core.Corefault.t;  (* straggler schedule; [none] = exact nominal times *)
  sched : Request.t Sched.t;
  pcbs : Request.t Sched.pcb array;
  zcores : zcore array;
  respond : Request.t -> unit;
  trace : (float -> trace_event -> unit) option;
  mutable ipis_sent : int;
  mutable remote_batches : int;
  mutable wc_violations : int;
  (* Long-lived dispatch fns for [Sim.schedule_fn]: bound once in
     [create], so the hot scheduling paths allocate no closures. *)
  mutable fn_segment_done : int -> unit;  (* iarg = core id *)
  mutable fn_wake : int -> unit;  (* iarg = core id *)
  mutable fn_ipi : int -> unit;  (* iarg = destination core id *)
  mutable fn_ipi_rx : int -> unit;  (* iarg = (rx_count lsl 16) lor core id *)
  mutable fn_remote_release : int -> unit;  (* iarg = connection id *)
}

(* ---- timed segments ----

   A core executes one timed segment at a time (user execution of one
   event, or a stretch of kernel work). IPIs extend the current segment:
   the handler's work is accounted inside the interrupted execution.

   Segments are where straggler injection lands: the nominal cost is run
   through [Corefault.completion_time], which stretches (or parks) work
   overlapping a fault window. With no straggler schedule the arithmetic
   is exactly [now +. cost], preserving bit-identical fault-free runs. *)

(* The completion event carries only the core id; the continuation lives
   in [cur_finish], so scheduling a segment allocates nothing beyond the
   continuation the caller already built. *)
let[@zygos.hot] start_segment t c ~mode ~cost ~finish =
  assert (c.cur_handle = Sim.no_handle);
  c.mode <- mode;
  c.cur_finish <- finish;
  c.cur_done_at <-
    Core.Corefault.completion_time t.faults ~core:c.id ~now:(Sim.now t.sim) ~work:cost;
  c.cur_handle <- Sim.schedule_fn t.sim ~at:c.cur_done_at t.fn_segment_done c.id

let[@zygos.hot] extend_segment t c ~extra =
  assert (c.cur_handle <> Sim.no_handle);
  assert (c.cur_finish != no_finish);
  Sim.cancel t.sim c.cur_handle;
  c.cur_done_at <-
    Core.Corefault.completion_time t.faults ~core:c.id ~now:c.cur_done_at ~work:extra;
  c.cur_handle <- Sim.schedule_fn t.sim ~at:c.cur_done_at t.fn_segment_done c.id

let emit_trace t ev =
  match t.trace with Some f -> f (Sim.now t.sim) ev | None -> ()

(* Trace-event constructors allocate; hot sites guard on [tracing t] so
   the untraced steady state allocates nothing. *)
let tracing t = Option.is_some t.trace

(* ---- idle wakeups ---- *)

let rec wake t c ~delay =
  (if c.mode = Midle && not c.wake_scheduled then begin
     c.wake_scheduled <- true;
     let _ : Sim.handle = Sim.schedule_fn_after t.sim ~delay t.fn_wake c.id in
     ()
   end)
[@@zygos.hot]

and wake_idlers t ~delay =
  (* for-loop, not Array.iter: the iter closure would capture [t]/[delay]
     and be rebuilt on every call. *)
  (let zs = t.zcores in
   for i = 0 to Array.length zs - 1 do
     let c = zs.(i) in
     if c.mode = Midle then wake t c ~delay
   done)
[@@zygos.hot]

(* ---- inter-processor interrupts (§4.5, exit-less per §5) ---- *)

and send_ipi t ~src v =
  (if not v.ipi_pending then begin
     v.ipi_pending <- true;
     t.ipis_sent <- t.ipis_sent + 1;
     if tracing t then (emit_trace t (Ipi { src; dst = v.id }) [@zygos.allow "hot-alloc"]);
     let _ : Sim.handle = Sim.schedule_fn_after t.sim ~delay:t.p.zy_ipi_latency t.fn_ipi v.id in
     ()
   end)
[@@zygos.hot]

and deliver_ipi t v =
  v.ipi_pending <- false;
  match v.mode with
  | Midle ->
      (* Nothing to interrupt; treat as a wakeup hint. *)
      wake t v ~delay:0.
  | Mkernel ->
      (* The kernel executes with interrupts disabled (§4.5); its loop will
         find the pending work anyway. *)
      ()
  | Muser ->
      v.ipis_received <- v.ipis_received + 1;
      (* Handler, interrupting user-level execution: (1) process incoming
         packets if the shuffle queue is empty; (2) execute all remote
         batched syscalls and transmit (§4.5). *)
      let rx_count =
        if Sched.queue_length t.sched ~core:v.id = 0 then
          min t.p.zy_rx_batch (Net.Ring.length v.hw)
        else 0
      in
      let batches = RQ.drain v.remote in
      let have_batches = match batches with [] -> false | _ :: _ -> true in
      if rx_count > 0 || have_batches then begin
        let t0 = Sim.now t.sim +. t.p.zy_ipi_handler in
        let after_rx = t0 +. (float_of_int (rx_count * t.p.rpc_packets) *. t.p.dp_rx) in
        if rx_count > 0 then begin
          (* Pop the ring at the moment the handler's receive work
             completes — popping earlier and delivering later could let a
             second IPI's packets overtake these on the same connection.
             The event packs (rx_count, core id) into its int payload. *)
          let _ : Sim.handle =
            Sim.schedule_fn t.sim ~at:after_rx t.fn_ipi_rx ((rx_count lsl 16) lor v.id)
          in
          ()
        end;
        let tx_end = transmit_batches t ~home:v.id ~from:after_rx batches in
        extend_segment t v ~extra:(tx_end -. Sim.now t.sim)
      end

(* ---- kernel helpers ---- *)

and pop_hw t v ~limit =
  ignore t;
  let rec loop acc n =
    if n = 0 then List.rev acc
    else
      match Net.Ring.pop v.hw with
      | None -> List.rev acc
      | Some req -> loop (req :: acc) (n - 1)
  in
  loop [] limit

(* Schedule the transmit work of remote batches starting at [from]; each
   response completes after its syscall + tx cost, and each batch's
   connection is released (Sched.complete) once its replies are on the
   wire, per the §4.3 ownership rule. Returns the finish time. *)
and transmit_batches t ~home ~from batches =
  List.fold_left
    (fun clock { pcb; reqs } ->
      if tracing t then
        emit_trace t (Remote_tx { home; conn = Sched.conn pcb; responses = List.length reqs });
      let clock =
        List.fold_left
          (fun clock req ->
            let done_at =
              clock +. t.p.zy_remote_syscall +. (float_of_int t.p.rpc_packets *. t.p.dp_tx)
            in
            let _ : Sim.handle = Sim.schedule t.sim ~at:done_at (fun () -> t.respond req) in
            done_at)
          clock reqs
      in
      let _ : Sim.handle = Sim.schedule_fn t.sim ~at:clock t.fn_remote_release (Sched.conn pcb) in
      clock)
    from batches

(* ---- the per-core scheduler loop ---- *)

and step t c =
  (assert (c.cur_handle = Sim.no_handle);
   if not (try_drain_remote t c) then
     if not (try_dispatch t c) then if not (try_rx t c) then go_idle t c)
[@@zygos.hot]

and try_drain_remote t c =
  match RQ.drain c.remote with
  | [] -> false
  | batches ->
      let finish_at = transmit_batches t ~home:c.id ~from:(Sim.now t.sim) batches in
      start_segment t c ~mode:Mkernel ~cost:(finish_at -. Sim.now t.sim) ~finish:c.k_step;
      true

and victim_order t c =
  if t.p.zy_poll_random then Core.Steal_policy.victim_order c.policy
  else Core.Steal_policy.round_robin_order c.policy

and try_dispatch t c =
  (* Own shuffle queue first, then steal in randomized victim order. *)
  let order = victim_order t c in
  match Sched.next t.sched ~core:c.id ~steal_order:order with
  | None -> false
  | Some (pcb, batch, source) ->
      (match source with
      | Sched.Local ->
          if tracing t then
            emit_trace t
              (Dispatch_local { core = c.id; conn = Sched.conn pcb; events = List.length batch });
          process_batch t c pcb batch ~stolen_from:None
      | Sched.Stolen v ->
          if tracing t then
            emit_trace t
              (Steal { thief = c.id; victim = v; conn = Sched.conn pcb; events = List.length batch });
          process_batch t c pcb batch ~stolen_from:(Some v));
      true

and process_batch t c pcb batch ~stolen_from =
  (* Execute the batch's events one at a time, alternating user execution
     and (for local work) eager kernel transmit — §6.2: "processes events
     individually, interleaving between user and kernel code". *)
  let first = ref true in
  let rec exec completed = function
    | [] -> end_of_batch t c pcb (List.rev completed) ~stolen_from
    | req :: rest ->
        let steal_cost = if !first && Option.is_some stolen_from then t.p.zy_steal else 0. in
        first := false;
        req.Request.started <- Sim.now t.sim;
        let user_cost = steal_cost +. t.p.zy_shuffle +. req.Request.service in
        start_segment t c ~mode:Muser ~cost:user_cost ~finish:(fun () ->
            match stolen_from with
            | None ->
                (* Home core: transmit eagerly, in kernel mode. *)
                start_segment t c ~mode:Mkernel
                  ~cost:(float_of_int t.p.rpc_packets *. t.p.dp_tx) ~finish:(fun () ->
                    t.respond req;
                    exec (req :: completed) rest)
            | Some _ -> exec (req :: completed) rest)
  in
  exec [] batch

and end_of_batch t c pcb completed ~stolen_from =
  match stolen_from with
  | None ->
      Sched.complete t.sched pcb;
      step t c
  | Some v ->
      (* Remote core: the batch's syscalls return to the home core (§4.2
         step (b)); ownership is released there once transmitted. *)
      let home = t.zcores.(v) in
      RQ.push home.remote { pcb; reqs = completed };
      t.remote_batches <- t.remote_batches + 1;
      (match home.mode with
      | Midle -> wake t home ~delay:0.
      | Muser -> if t.p.zy_interrupts then send_ipi t ~src:c.id home
      | Mkernel -> ());
      step t c

and try_rx t c =
  (if Net.Ring.is_empty c.hw then false
   else begin
     let k = min t.p.zy_rx_batch (Net.Ring.length c.hw) in
     let cost = t.p.dp_loop +. (float_of_int (k * t.p.rpc_packets) *. t.p.dp_rx) in
     (* A core runs one rx segment at a time, so parking the batch size on
        the core (for the preallocated [k_rx] continuation) is safe. *)
     c.rx_pending <- k;
     start_segment t c ~mode:Mkernel ~cost ~finish:c.k_rx;
     true
   end)
[@@zygos.hot]

and go_idle t c =
  (c.mode <- Midle;
   (* Work-conservation invariant: this core just scanned every shuffle
      queue and found nothing; if anything is ready now, the scheduler
      failed to be work conserving. *)
   if Sched.has_ready t.sched then t.wc_violations <- t.wc_violations + 1;
   if t.p.zy_interrupts then scan_and_ipi t c)
[@@zygos.hot]

(* Idle-loop steps (c)/(d) of §5: look at other cores' pending packet
   queues; when a busy-at-user core has packets but an empty shuffle
   queue, interrupt it so it replenishes the shuffle queue for stealing. *)
and scan_and_ipi t c =
  (* for-loop over the victim order, not Array.iter: the iter closure
     would capture [t]/[c] and be rebuilt per idle transition. *)
  (let order = victim_order t c in
   for k = 0 to Array.length order - 1 do
     let vid = order.(k) in
     let v = t.zcores.(vid) in
     if v.mode = Muser then begin
       let packets_blocked =
         (not (Net.Ring.is_empty v.hw)) && Sched.queue_length t.sched ~core:vid = 0
       in
       let syscalls_blocked = not (RQ.is_empty v.remote) in
       if packets_blocked || syscalls_blocked then send_ipi t ~src:c.id v
     end
   done)
[@@zygos.hot]

(* Deliver a popped rx batch to the scheduler, request by request; a
   top-level rec loop instead of [List.iter (fun req -> ...)], which
   would allocate the closure per rx event. *)
let rec deliver_batch t = function
  | [] -> ()
  | req :: rest ->
      Sched.deliver t.sched t.pcbs.(req.Request.conn) req;
      deliver_batch t rest

let create sim (p : Params.t) ~rng ~conns ~respond ?trace () =
  let p = Params.validate p in
  let rss = Net.Rss.create ~queues:p.cores () in
  let sched = Sched.create ~cores:p.cores in
  let pcbs =
    Array.init conns (fun c -> Sched.register sched ~conn:c ~home:(Net.Rss.queue_of_conn rss c))
  in
  let zcores =
    Array.init p.cores (fun id ->
        {
          id;
          hw = Net.Ring.create ~capacity:p.ring_capacity;
          remote = RQ.create ();
          policy = Core.Steal_policy.create ~rng:(Engine.Rng.split rng) ~cores:p.cores ~self:id;
          mode = Midle;
          cur_handle = Sim.no_handle;
          cur_finish = no_finish;
          cur_done_at = 0.;
          ipi_pending = false;
          wake_scheduled = false;
          ipis_received = 0;
          k_step = ignore;
          k_rx = ignore;
          rx_pending = 0;
        })
  in
  let t =
    {
      sim;
      p;
      faults = Params.corefaults p;
      sched;
      pcbs;
      zcores;
      respond;
      trace;
      ipis_sent = 0;
      remote_batches = 0;
      wc_violations = 0;
      fn_segment_done = ignore;
      fn_wake = ignore;
      fn_ipi = ignore;
      fn_ipi_rx = ignore;
      fn_remote_release = ignore;
    }
  in
  (* Bind the long-lived dispatch fns and per-core continuations now that
     [t] exists; every event scheduled below reaches back through these. *)
  t.fn_segment_done <-
    (fun id ->
      let c = t.zcores.(id) in
      c.cur_handle <- Sim.no_handle;
      let finish = c.cur_finish in
      assert (finish != no_finish);
      (* Scrub before running: the continuation may start a new segment,
         and a retained closure would be a space leak. *)
      c.cur_finish <- no_finish;
      finish ()) [@zygos.hot];
  t.fn_wake <-
    (fun id ->
      let c = t.zcores.(id) in
      c.wake_scheduled <- false;
      if c.mode = Midle && c.cur_handle = Sim.no_handle then step t c) [@zygos.hot];
  t.fn_ipi <- (fun id -> deliver_ipi t t.zcores.(id)) [@zygos.hot];
  t.fn_ipi_rx <-
    (fun packed ->
      let v = t.zcores.(packed land 0xffff) in
      let rx_count = packed lsr 16 in
      let rx_batch = pop_hw t v ~limit:rx_count in
      (if tracing t then
         (emit_trace t (Rx { core = v.id; packets = List.length rx_batch })
         [@zygos.allow "hot-alloc"]));
      deliver_batch t rx_batch;
      wake_idlers t ~delay:t.p.zy_poll_delay) [@zygos.hot];
  t.fn_remote_release <-
    (fun conn ->
      Sched.complete t.sched t.pcbs.(conn);
      wake_idlers t ~delay:t.p.zy_poll_delay) [@zygos.hot];
  Array.iter
    (fun c ->
      c.k_step <- (fun () -> step t c);
      c.k_rx <-
        (fun () ->
          let batch = pop_hw t c ~limit:c.rx_pending in
          (if tracing t then
             (emit_trace t (Rx { core = c.id; packets = List.length batch })
             [@zygos.allow "hot-alloc"]));
          deliver_batch t batch;
          wake_idlers t ~delay:t.p.zy_poll_delay;
          step t c) [@zygos.hot])
    t.zcores;
  let[@zygos.hot] submit req =
    let c = t.zcores.(Sched.home t.pcbs.(req.Request.conn)) in
    if Net.Ring.push c.hw req then begin
      match c.mode with
      | Midle -> wake t c ~delay:p.dp_loop
      | Muser ->
          (* The home core is executing application code: only another,
             idle, core can notice this packet (and IPI the home core). *)
          if p.zy_interrupts then wake_idlers t ~delay:p.zy_poll_delay
      | Mkernel -> ()
    end
  in
  let info () =
    let counters = Sched.total_counters t.sched in
    let drops = Array.fold_left (fun acc c -> acc + Net.Ring.drops c.hw) 0 t.zcores in
    [
      ("steal_fraction", Sched.steal_fraction t.sched);
      ("ipis_sent", float_of_int t.ipis_sent);
      ("ring_drops", float_of_int drops);
      ("local_events", float_of_int counters.Sched.local_events);
      ("stolen_events", float_of_int counters.Sched.stolen_events);
      ("remote_batches", float_of_int t.remote_batches);
      ("wc_violations", float_of_int t.wc_violations);
    ]
  in
  let name = if p.zy_interrupts then "zygos" else "zygos-noint" in
  { Iface.name; submit; info }

let work_conservation_violations (iface : Iface.t) =
  match Iface.info_value iface "wc_violations" with
  | Some v -> int_of_float v
  | None -> invalid_arg "Zygos.work_conservation_violations: not a zygos system"
