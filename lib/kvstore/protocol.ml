type command =
  | Get of string
  | Set of { key : string; flags : int; exptime : int; data : string }
  | Delete of string

(* The parser is a resumable state machine: either waiting for a command
   line, or waiting for the <bytes>+2 data block of a set. Pending input
   lives in one flat [Bytes.t] with a consumed cursor; command lines are
   tokenized in place by index so the steady state allocates only the
   emitted command (its key and data strings). *)
type mode = Line | Data of { key : string; flags : int; exptime : int; bytes : int }

type parser_state = {
  mutable buf : Bytes.t;
  mutable len : int;  (* bytes of [buf] holding input *)
  mutable pos : int;  (* consumed cursor: [pos..len) is pending *)
  mutable mode : mode;
}

let initial_capacity = 256

let create_parser () =
  { buf = Bytes.create initial_capacity; len = 0; pos = 0; mode = Line }

let pending_bytes t = t.len - t.pos

let buffer_capacity t = Bytes.length t.buf

(* Reclaim consumed space by sliding the pending tail to the front.
   Fraction-of-capacity rule: compact as soon as the dead prefix reaches
   half the capacity, whatever its absolute size — a stream of tiny
   commands then recycles the same buffer forever instead of ratcheting
   it up (the old threshold compared consumed bytes against a fixed
   4 KiB floor, so sub-4K buffers never compacted and every grow copied
   an ever-longer dead prefix). *)
let compact t =
  if 2 * t.pos >= Bytes.length t.buf then begin
    let pending = t.len - t.pos in
    Bytes.blit t.buf t.pos t.buf 0 pending;
    t.pos <- 0;
    t.len <- pending
  end

(* Make room to append [n] bytes. Compacts first; the capacity grows only
   when the pending bytes themselves outgrow it. *)
let reserve t n =
  if t.len + n > Bytes.length t.buf then begin
    let pending = t.len - t.pos in
    Bytes.blit t.buf t.pos t.buf 0 pending;
    t.pos <- 0;
    t.len <- pending;
    if pending + n > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf) in
      while pending + n > !cap do
        cap := 2 * !cap
      done;
      let nbuf = Bytes.create !cap in
      Bytes.blit t.buf 0 nbuf 0 pending;
      t.buf <- nbuf
    end
  end

(* Find "\r\n" at or after [from]; return the index of '\r', or -1. *)
let[@zygos.hot] rec crlf_scan buf i last =
  if i >= last then -1
  else if Bytes.unsafe_get buf i = '\r' && Bytes.unsafe_get buf (i + 1) = '\n' then i
  else crlf_scan buf (i + 1) last

let[@zygos.hot] find_crlf t from = crlf_scan t.buf from (t.len - 1)

let[@zygos.hot] rec skip_spaces buf i limit =
  if i < limit && Bytes.unsafe_get buf i = ' ' then skip_spaces buf (i + 1) limit else i

let[@zygos.hot] rec token_end buf i limit =
  if i < limit && Bytes.unsafe_get buf i <> ' ' then token_end buf (i + 1) limit else i

(* Does buf[i, j) spell [kw]? *)
let[@zygos.hot] rec span_eq buf i kw k n =
  k = n || (Bytes.unsafe_get buf (i + k) = String.unsafe_get kw k && span_eq buf i kw (k + 1) n)

let[@zygos.hot] span_equals buf i j kw =
  let n = String.length kw in
  j - i = n && span_eq buf i kw 0 n

(* Decimal integer in buf[i, j); [min_int] marks a malformed span. *)
let[@zygos.hot] rec parse_digits buf i j acc =
  if i = j then acc
  else begin
    let d = Char.code (Bytes.unsafe_get buf i) - Char.code '0' in
    if d < 0 || d > 9 then min_int
    else begin
      let acc = (acc * 10) + d in
      if acc < 0 then min_int else parse_digits buf (i + 1) j acc
    end
  end

let[@zygos.hot] parse_int buf i j =
  if i >= j then min_int
  else if Bytes.unsafe_get buf i = '-' then begin
    if i + 1 >= j then min_int
    else begin
      let v = parse_digits buf (i + 1) j 0 in
      if v = min_int then min_int else -v
    end
  end
  else parse_digits buf i j 0

let line_string t i cr = Bytes.sub_string t.buf i (cr - i)

(* One command line, buf[i, cr), tokenized by cursor walks. *)
let parse_line t emit i cr =
  let buf = t.buf in
  let a = skip_spaces buf i cr in
  if a >= cr then emit (Error "empty command")
  else begin
    let b = token_end buf a cr in
    if span_equals buf a b "get" || span_equals buf a b "gets" then begin
      let ka = skip_spaces buf b cr in
      let kb = token_end buf ka cr in
      if ka >= cr || skip_spaces buf kb cr < cr then
        emit (Error ("bad get arguments: " ^ line_string t i cr))
      else emit (Ok (Get (Bytes.sub_string buf ka (kb - ka))))
    end
    else if span_equals buf a b "delete" then begin
      let ka = skip_spaces buf b cr in
      let kb = token_end buf ka cr in
      if ka >= cr || skip_spaces buf kb cr < cr then
        emit (Error ("bad delete arguments: " ^ line_string t i cr))
      else emit (Ok (Delete (Bytes.sub_string buf ka (kb - ka))))
    end
    else if span_equals buf a b "set" then begin
      let ka = skip_spaces buf b cr in
      let kb = token_end buf ka cr in
      let fa = skip_spaces buf kb cr in
      let fb = token_end buf fa cr in
      let ea = skip_spaces buf fb cr in
      let eb = token_end buf ea cr in
      let ba = skip_spaces buf eb cr in
      let bb = token_end buf ba cr in
      if ka >= cr || fa >= cr || ea >= cr || ba >= cr || skip_spaces buf bb cr < cr then
        emit (Error ("bad set arguments: " ^ line_string t i cr))
      else begin
        let flags = parse_int buf fa fb in
        let exptime = parse_int buf ea eb in
        let bytes = parse_int buf ba bb in
        if flags = min_int || exptime = min_int || bytes = min_int || bytes < 0 then
          emit (Error ("bad set arguments: " ^ line_string t i cr))
        else
          t.mode <- Data { key = Bytes.sub_string buf ka (kb - ka); flags; exptime; bytes }
      end
    end
    else emit (Error ("unknown command: " ^ Bytes.sub_string buf a (b - a)))
  end

let rec drive t emit =
  match t.mode with
  | Line ->
      let cr = find_crlf t t.pos in
      if cr >= 0 then begin
        let start = t.pos in
        t.pos <- cr + 2;
        parse_line t emit start cr;
        drive t emit
      end
  | Data { key; flags; exptime; bytes } ->
      if t.len - t.pos >= bytes + 2 then begin
        let data = Bytes.sub_string t.buf t.pos bytes in
        let terminated =
          Bytes.unsafe_get t.buf (t.pos + bytes) = '\r'
          && Bytes.unsafe_get t.buf (t.pos + bytes + 1) = '\n'
        in
        t.pos <- t.pos + bytes + 2;
        t.mode <- Line;
        if terminated then emit (Ok (Set { key; flags; exptime; data }))
        else emit (Error "set data not terminated by CRLF");
        drive t emit
      end

let feed_iter t chunk emit =
  let n = String.length chunk in
  reserve t n;
  Bytes.blit_string chunk 0 t.buf t.len n;
  t.len <- t.len + n;
  drive t emit;
  compact t

let feed t chunk =
  let out = ref [] in
  feed_iter t chunk (fun r -> out := r :: !out);
  List.rev !out

let render_command = function
  | Get key -> Printf.sprintf "get %s\r\n" key
  | Delete key -> Printf.sprintf "delete %s\r\n" key
  | Set { key; flags; exptime; data } ->
      Printf.sprintf "set %s %d %d %d\r\n%s\r\n" key flags exptime (String.length data) data

type response =
  | Value of { key : string; flags : int; data : string }
  | Not_found_resp
  | Stored
  | Deleted
  | Client_error of string

let render_response ~cmd response =
  match response with
  | Value { key; flags; data } ->
      Printf.sprintf "VALUE %s %d %d\r\n%s\r\nEND\r\n" key flags (String.length data) data
  | Not_found_resp -> (
      match cmd with Get _ -> "END\r\n" | Delete _ | Set _ -> "NOT_FOUND\r\n")
  | Stored -> "STORED\r\n"
  | Deleted -> "DELETED\r\n"
  | Client_error e -> Printf.sprintf "CLIENT_ERROR %s\r\n" e

let execute store = function
  | Get key -> (
      match Store.get store key with
      | Some data -> Value { key; flags = 0; data }
      | None -> Not_found_resp)
  | Set { key; data; _ } ->
      Store.set store key data;
      Stored
  | Delete key -> if Store.delete store key then Deleted else Not_found_resp
