(** memcached text protocol: resumable request parser and response writer.

    The parser consumes a TCP byte stream in arbitrary chunks (requests
    routinely straddle packet boundaries) and yields complete commands.
    This framing is exactly what §6.2 says ZygOS cannot see ("ZygOS doesn't
    know the boundaries of the requests in the TCP byte stream") — the
    parser lives in application code, after scheduling.

    Supported commands: [get]/[gets] (single key), [set], [delete] — the
    operations the ETC/USR workloads exercise. *)

type command =
  | Get of string
  | Set of { key : string; flags : int; exptime : int; data : string }
  | Delete of string

type parser_state
(** Buffers partial input across [feed] calls in one flat byte buffer;
    command lines are tokenized in place, so a parse allocates only the
    emitted command. The consumed prefix is reclaimed whenever it reaches
    half the buffer's capacity, so a long-lived connection of small
    commands never grows the buffer. *)

val create_parser : unit -> parser_state

val feed : parser_state -> string -> (command, string) result list
(** Append a chunk and return every command completed by it, in order.
    [Error reason] marks a malformed line (the line is consumed; parsing
    continues at the next line, like memcached's CLIENT_ERROR). *)

val feed_iter : parser_state -> string -> ((command, string) result -> unit) -> unit
(** [feed] without the result list: each completed command is passed to
    the callback as it is framed. The hot-path entry point. *)

val pending_bytes : parser_state -> int
(** Bytes buffered waiting for more input. *)

val buffer_capacity : parser_state -> int
(** Current size of the backing buffer (for bounding tests). *)

val render_command : command -> string
(** Wire encoding of a command (for clients / tests). *)

type response =
  | Value of { key : string; flags : int; data : string }  (** GET hit ends with END *)
  | Not_found_resp  (** GET miss: bare END; DELETE miss: NOT_FOUND *)
  | Stored
  | Deleted
  | Client_error of string

val render_response : cmd:command -> response -> string
(** Wire encoding of the server's reply to [cmd]. *)

val execute : Store.t -> command -> response
(** Apply a command to a store. *)
