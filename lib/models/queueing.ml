module Sim = Engine.Sim
module Rng = Engine.Rng
module Dist = Engine.Dist

type policy = Fcfs | Ps

type topology = Central | Partitioned

type spec = { servers : int; policy : policy; topology : topology }

let name spec =
  let pol = match spec.policy with Fcfs -> "FCFS" | Ps -> "PS" in
  match spec.topology with
  | Central -> Printf.sprintf "M/G/%d/%s" spec.servers pol
  | Partitioned -> Printf.sprintf "%dxM/G/1/%s" spec.servers pol

type result = {
  latencies : Stats.Tally.t;
  throughput : float;
  offered_load : float;
}

type job = { arrival : float; mutable remaining : float; measured : bool }

type station = {
  capacity : int;
  policy : policy;
  fifo : job Queue.t;  (* FCFS waiting room *)
  mutable running : int;  (* FCFS jobs currently in service *)
  mutable ps_jobs : job list;  (* PS: every job present shares the processors *)
  mutable last_update : float;
  mutable next_done : Sim.handle option;
}

let make_station ~capacity ~policy =
  {
    capacity;
    policy;
    fifo = Queue.create ();
    running = 0;
    ps_jobs = [];
    last_update = 0.;
    next_done = None;
  }

(* ---- FCFS ---- *)

let rec fcfs_start sim station job ~record =
  station.running <- station.running + 1;
  let _ : Sim.handle =
    Sim.schedule_after sim ~delay:job.remaining (fun () ->
        station.running <- station.running - 1;
        record job;
        match Queue.take_opt station.fifo with
        | Some next -> fcfs_start sim station next ~record
        | None -> ())
  in
  ()

let fcfs_arrive sim station job ~record =
  if station.running < station.capacity then fcfs_start sim station job ~record
  else Queue.add job station.fifo

(* ---- Processor sharing ----

   All k jobs present at the station advance simultaneously at rate
   min(1, capacity/k): with k <= capacity every job has a full processor;
   beyond that the processors are split evenly. Remaining work is brought
   up to date lazily at every arrival/completion. *)

let ps_rate station k =
  if k = 0 then 0. else Float.min 1. (float_of_int station.capacity /. float_of_int k)

let ps_update station now =
  let dt = now -. station.last_update in
  if dt > 0. then begin
    let rate = ps_rate station (List.length station.ps_jobs) in
    List.iter (fun j -> j.remaining <- j.remaining -. (dt *. rate)) station.ps_jobs
  end;
  station.last_update <- now

let ps_epsilon = 1e-9

let rec ps_reschedule sim station ~record =
  (match station.next_done with
  | Some h -> Sim.cancel sim h
  | None -> ());
  match station.ps_jobs with
  | [] -> station.next_done <- None
  | jobs ->
      let rate = ps_rate station (List.length jobs) in
      let soonest =
        List.fold_left (fun acc j -> if j.remaining < acc.remaining then j else acc)
          (List.hd jobs) (List.tl jobs)
      in
      let delay = Float.max 0. (soonest.remaining /. rate) in
      station.next_done <-
        Some (Sim.schedule_after sim ~delay (fun () -> ps_complete sim station ~record))

and ps_complete sim station ~record =
  (* Bring work up to date as of now, then retire every finished job
     (float rounding can finish several at once). *)
  ps_update station (Sim.now sim);
  let finished, left = List.partition (fun j -> j.remaining <= ps_epsilon) station.ps_jobs in
  station.ps_jobs <- left;
  List.iter record finished;
  ps_reschedule sim station ~record

let ps_arrive sim station job ~record =
  ps_update station (Sim.now sim);
  station.ps_jobs <- job :: station.ps_jobs;
  ps_reschedule sim station ~record

(* ---- Simulation driver ---- *)

let simulate spec ~service ~load ~requests ~seed =
  if spec.servers < 1 then invalid_arg "Queueing.simulate: servers < 1";
  if load <= 0. || load >= 1.05 then invalid_arg "Queueing.simulate: load out of (0, 1.05)";
  if requests < 1 then invalid_arg "Queueing.simulate: requests < 1";
  let sim = Sim.create () in
  let rng = Rng.create ~seed in
  let arrival_rng = Rng.split rng in
  let service_rng = Rng.split rng in
  let select_rng = Rng.split rng in
  let mean = Dist.mean service in
  let lambda = load *. float_of_int spec.servers /. mean in
  let warmup = requests / 5 in
  let total = warmup + requests in
  let stations =
    match spec.topology with
    | Central -> [| make_station ~capacity:spec.servers ~policy:spec.policy |]
    | Partitioned ->
        Array.init spec.servers (fun _ -> make_station ~capacity:1 ~policy:spec.policy)
  in
  let latencies = Stats.Tally.create () in
  let first_measured_arrival = ref nan in
  let last_measured_completion = ref nan in
  let record job =
    if job.measured then begin
      Stats.Tally.record latencies (Sim.now sim -. job.arrival);
      last_measured_completion := Sim.now sim
    end
  in
  let arrive station job =
    match station.policy with
    | Fcfs -> fcfs_arrive sim station job ~record
    | Ps -> ps_arrive sim station job ~record
  in
  let generated = ref 0 in
  let rec next_arrival () =
    if !generated < total then begin
      let gap = Rng.exponential arrival_rng ~mean:(1. /. lambda) in
      let _ : Sim.handle =
        Sim.schedule_after sim ~delay:gap (fun () ->
            let idx = !generated in
            generated := idx + 1;
            let measured = idx >= warmup in
            let now = Sim.now sim in
            if measured && Float.is_nan !first_measured_arrival then
              first_measured_arrival := now;
            let job =
              { arrival = now; remaining = Dist.sample service service_rng; measured }
            in
            let station =
              match spec.topology with
              | Central -> stations.(0)
              | Partitioned -> stations.(Rng.int select_rng spec.servers)
            in
            arrive station job;
            next_arrival ())
      in
      ()
    end
  in
  next_arrival ();
  Sim.run sim;
  let span = !last_measured_completion -. !first_measured_arrival in
  let throughput =
    if Float.is_nan span || span <= 0. then 0.
    else float_of_int (Stats.Tally.count latencies) /. span
  in
  { latencies; throughput; offered_load = load }

let max_load_at_slo spec ~service ~slo_p99 ?(requests = 40_000) ?(seed = 42) () =
  let meets load =
    let { latencies; _ } = simulate spec ~service ~load ~requests ~seed in
    Stats.Tally.count latencies > 0 && Stats.Tally.p99 latencies <= slo_p99
  in
  if not (meets 0.02) then 0.
  else begin
    let lo = ref 0.02 and hi = ref 0.99 in
    if meets !hi then !hi
    else begin
      while !hi -. !lo > 0.01 do
        let mid = (!lo +. !hi) /. 2. in
        if meets mid then lo := mid else hi := mid
      done;
      !lo
    end
  end
