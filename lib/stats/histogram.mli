(** Log-bucketed latency histogram (HdrHistogram-style).

    Constant-memory alternative to {!Tally} for very long runs: values are
    bucketed with a bounded relative error (a geometric bucket ratio of
    1 + 10^-digits), so percentile queries are approximate but never off by
    more than the configured precision. Used where a simulation records
    tens of millions of samples.

    The record path is log-free: the bucket index is derived from the
    IEEE-754 exponent and mantissa bits of the value (a 4096-entry table
    plus a cubic correction), matching the exact floor(ln(v/floor)/ln r)
    index to within ~1e-12 of a bucket width. See the implementation
    comment for the error bound derivation. *)

type t

val create : ?significant_digits:int -> unit -> t
(** [significant_digits] (1–4, default 3) bounds the relative quantization
    error to 10^-digits. *)

val record : t -> float -> unit
(** Record a non-negative value. Negative values raise
    [Invalid_argument]. Amortized O(1), allocation-free (the bucket array
    doubles on first touch of a new maximum bucket). *)

val bucket_of_value : t -> float -> int
(** Index of the bucket a value falls into: 0 for values at or below the
    1e-3 floor, otherwise 1 + floor(ln(v / floor) / ln ratio) computed via
    exponent/mantissa extraction instead of [log]. Exposed for tests and
    for mapping externally-stored counts onto bucket boundaries. *)

val count : t -> int

val mean : t -> float
(** Exact mean of recorded values (the running sum is kept unquantized). *)

val max_value : t -> float
(** Largest recorded value (exact). *)

val percentile : t -> float -> float
(** Approximate nearest-rank percentile. Raises on empty histogram or [p]
    outside [0, 100]. *)

val merge_into : dst:t -> t -> unit
(** Add all of the source's counts into [dst] with a single O(buckets)
    array sum; the exact sum and maximum carry over, so the merged mean and
    max are as if every sample had been recorded into [dst] directly. The
    two histograms must have the same precision (raises [Invalid_argument]
    otherwise). *)

val clear : t -> unit
