type t = {
  digits : int;
  log_ratio : float;  (* ln of the geometric bucket ratio *)
  inv_log_ratio : float;
  floor_value : float;  (* values below this land in bucket 0 *)
  ln_floor : float;
  mutable buckets : int array;
  mutable total : int;
  acc : float array;  (* [| sum; max_seen |] — flat floats so updates don't box *)
}

(* ---- log-free bucket index ----

   The bucket index needs floor(ln(v / floor) / ln ratio), but calling
   [log] per sample dominates the record path. Instead, split v into
   exponent and mantissa by bit twiddling: v = m * 2^e with m in [1, 2),
   so ln v = e * ln 2 + ln m. The mantissa's top 12 bits select a
   precomputed ln from a 4096-entry table at m0 = 1 + k/4096; the residual
   x = (m - m0) / m0 < 2^-12 is folded in with the cubic
   ln(1+x) = x - x^2/2 + x^3/3 + O(x^4). The truncation error is below
   x^4/4 < 9e-16 (absolute, in ln space) — about 1e-12 of a bucket width
   even at 4 significant digits — so the index agrees with the log-based
   formula except for values within that sliver of a bucket boundary. *)

let mant_table_size = 4096 (* top 12 mantissa bits *)

let ln_mant =
  Array.init mant_table_size (fun i -> log (1. +. (float_of_int i /. 4096.)))

let inv_mant =
  Array.init mant_table_size (fun i -> 4096. /. (4096. +. float_of_int i))

let ln2 = 0.6931471805599453

let create ?(significant_digits = 3) () =
  if significant_digits < 1 || significant_digits > 4 then
    invalid_arg "Histogram.create: significant_digits must be in 1..4";
  let ratio = 1. +. (10. ** float_of_int (-significant_digits)) in
  let floor_value = 1e-3 (* 1 ns when values are in µs *) in
  {
    digits = significant_digits;
    log_ratio = log ratio;
    inv_log_ratio = 1. /. log ratio;
    floor_value;
    ln_floor = log floor_value;
    buckets = Array.make 1024 0;
    total = 0;
    acc = [| 0.; 0. |];
  }

(* Callers guarantee v > 0 past the floor test, so the sign bit is clear
   and the whole IEEE-754 bit pattern fits in OCaml's 63-bit native int:
   one unboxed bits-of-float, then plain int shifts and masks (no Int64
   boxing, and an int result so nothing is boxed on return either). *)
let[@zygos.hot] bucket_of_value t v =
  if v <= t.floor_value then 0
  else begin
    let b = Int64.to_int (Int64.bits_of_float v) in
    let e = ((b lsr 52) land 0x7FF) - 1023 in
    let mi = (b lsr 40) land 0xFFF in
    let frac = float_of_int (b land 0xFF_FFFF_FFFF) *. 0x1p-52 in
    let x = frac *. Array.unsafe_get inv_mant mi in
    let ln_m =
      Array.unsafe_get ln_mant mi +. (x -. (x *. x *. (0.5 -. (x *. (1. /. 3.)))))
    in
    let ln_v = (float_of_int e *. ln2) +. ln_m in
    1 + int_of_float ((ln_v -. t.ln_floor) *. t.inv_log_ratio)
  end

let value_of_bucket t i =
  if i = 0 then t.floor_value
  else
    (* Midpoint (geometric) of the bucket's range. *)
    t.floor_value *. exp ((float_of_int i -. 0.5) *. t.log_ratio)

let[@zygos.hot] grow_to t cap =
  (* Amortized doubling of the bucket array (new-maximum values only). *)
  let bigger = (Array.make cap 0 [@zygos.allow "hot-alloc"]) in
  Array.blit t.buckets 0 bigger 0 (Array.length t.buckets);
  t.buckets <- bigger

let[@zygos.hot] record t v =
  if v < 0. then invalid_arg "Histogram.record: negative value";
  let i = bucket_of_value t v in
  if i >= Array.length t.buckets then
    grow_to t (max (i + 1) (2 * Array.length t.buckets));
  let buckets = t.buckets in
  (* i < length buckets by the grow above *)
  Array.unsafe_set buckets i (Array.unsafe_get buckets i + 1);
  t.total <- t.total + 1;
  let acc = t.acc in
  Array.unsafe_set acc 0 (Array.unsafe_get acc 0 +. v);
  if v > Array.unsafe_get acc 1 then Array.unsafe_set acc 1 v

let count t = t.total

let mean t = if t.total = 0 then 0. else t.acc.(0) /. float_of_int t.total

let max_value t = t.acc.(1)

let percentile t p =
  if t.total = 0 then invalid_arg "Histogram.percentile: empty histogram";
  if p < 0. || p > 100. then invalid_arg "Histogram.percentile: p out of [0,100]";
  let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int t.total))) in
  if rank >= t.total then t.acc.(1)
  else begin
  let remaining = ref rank in
  let result = ref t.acc.(1) in
  (try
     for i = 0 to Array.length t.buckets - 1 do
       remaining := !remaining - t.buckets.(i);
       if !remaining <= 0 then begin
         result := value_of_bucket t i;
         raise Exit
       end
     done
     with Exit -> ());
    Float.min !result t.acc.(1)
  end

let merge_into ~dst src =
  if dst.digits <> src.digits then invalid_arg "Histogram.merge_into: precision mismatch";
  (* Straight O(buckets) array sum — bucket boundaries coincide because the
     precision (and therefore ratio and floor) match. The exact [sum] and
     [max_seen] carry over unquantized. *)
  if Array.length src.buckets > Array.length dst.buckets then
    grow_to dst (Array.length src.buckets);
  for i = 0 to Array.length src.buckets - 1 do
    let n = Array.unsafe_get src.buckets i in
    if n > 0 then dst.buckets.(i) <- dst.buckets.(i) + n
  done;
  dst.total <- dst.total + src.total;
  dst.acc.(0) <- dst.acc.(0) +. src.acc.(0);
  dst.acc.(1) <- Float.max dst.acc.(1) src.acc.(1)

let clear t =
  Array.fill t.buckets 0 (Array.length t.buckets) 0;
  t.total <- 0;
  t.acc.(0) <- 0.;
  t.acc.(1) <- 0.
