type t = {
  mutable data : float array;
  mutable size : int;
  mutable sorted : bool;  (* whether data.[0,size) is known ascending *)
}

let create () = { data = [||]; size = 0; sorted = true }

let[@zygos.hot] record t x =
  if t.size = Array.length t.data then begin
    (* Amortized doubling of the sample reservoir. *)
    let cap = max 256 (2 * Array.length t.data) in
    let bigger = (Array.make cap 0. [@zygos.allow "hot-alloc"]) in
    Array.blit t.data 0 bigger 0 t.size;
    t.data <- bigger
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  t.sorted <- false

let count t = t.size

let is_empty t = t.size = 0

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let mean t = if t.size = 0 then 0. else fold ( +. ) 0. t /. float_of_int t.size

let max_value t = if t.size = 0 then 0. else fold Float.max neg_infinity t

let min_value t = if t.size = 0 then 0. else fold Float.min infinity t

(* Monomorphic ascending float sort. [Array.sort Float.compare] pays a
   closure call and float boxing per comparison, and sorting the latency
   tally was the single largest cost of finishing a sweep point. Unboxed
   [<] / [>] compares sort the same multiset to the same array — samples
   are finite latencies, no NaNs — so every percentile is bit-identical.
   Median-of-three quicksort, insertion sort under 17 elements; the
   samples are simulation outputs, not adversarial input. *)
let insertion_sort (a : float array) lo hi =
  for j = lo + 1 to hi - 1 do
    let x = Array.unsafe_get a j in
    let k = ref j in
    while !k > lo && Array.unsafe_get a (!k - 1) > x do
      Array.unsafe_set a !k (Array.unsafe_get a (!k - 1));
      decr k
    done;
    Array.unsafe_set a !k x
  done

(* Sort a.[lo, hi). *)
let rec sort_range (a : float array) lo hi =
  if hi - lo <= 16 then insertion_sort a lo hi
  else begin
    let p0 = Array.unsafe_get a lo
    and p1 = Array.unsafe_get a ((lo + hi) / 2)
    and p2 = Array.unsafe_get a (hi - 1) in
    let pivot =
      if p0 <= p1 then (if p1 <= p2 then p1 else if p0 <= p2 then p2 else p0)
      else if p0 <= p2 then p0
      else if p1 <= p2 then p2
      else p1
    in
    let i = ref lo and j = ref (hi - 1) in
    while !i <= !j do
      while Array.unsafe_get a !i < pivot do incr i done;
      while Array.unsafe_get a !j > pivot do decr j done;
      if !i <= !j then begin
        let tmp = Array.unsafe_get a !i in
        Array.unsafe_set a !i (Array.unsafe_get a !j);
        Array.unsafe_set a !j tmp;
        incr i;
        decr j
      end
    done;
    sort_range a lo (!j + 1);
    sort_range a !i hi
  end

let ensure_sorted t =
  if not t.sorted then begin
    sort_range t.data 0 t.size;
    t.sorted <- true
  end

let percentile t p =
  if t.size = 0 then invalid_arg "Tally.percentile: empty tally";
  if p < 0. || p > 100. then invalid_arg "Tally.percentile: p out of [0,100]";
  ensure_sorted t;
  (* Nearest-rank: smallest value whose cumulative frequency >= p%. *)
  let rank = int_of_float (ceil (p /. 100. *. float_of_int t.size)) in
  let idx = max 0 (min (t.size - 1) (rank - 1)) in
  t.data.(idx)

let p50 t = percentile t 50.

let p90 t = percentile t 90.

let p99 t = percentile t 99.

let p999 t = percentile t 99.9

let stddev t =
  if t.size < 2 then 0.
  else begin
    let m = mean t in
    let ss = fold (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. t in
    sqrt (ss /. float_of_int (t.size - 1))
  end

let samples t = Array.sub t.data 0 t.size

let sorted_samples t =
  ensure_sorted t;
  Array.sub t.data 0 t.size

let merge a b =
  let t = create () in
  for i = 0 to a.size - 1 do
    record t a.data.(i)
  done;
  for i = 0 to b.size - 1 do
    record t b.data.(i)
  done;
  t

let clear t =
  t.size <- 0;
  t.sorted <- true
