(* zygos: run the paper's figure/table generators, optionally in
   parallel on a domain pool.

   Examples:
     dune exec zygos -- fig6 -j 4
     dune exec zygos -- fig8 ablate-batch
     ZYGOS_BENCH_SCALE=0.05 dune exec zygos -- all -j 2

   Figure output goes to stdout and is byte-identical for every -j value
   (per-point seeds derive from stable point keys, and rendering happens
   after the pool joins, in enumeration order). Run metadata and pool
   statistics go to stderr so stdout can be diffed across -j values. *)

let usage () =
  Printf.eprintf
    "usage: zygos [TARGET...] [-j N] [--scale S] [--equeue heap|wheel]\n\
     \  TARGET   one of: %s (default: all)\n\
     \  -j N     run sweep points on N domains (default 1; also ZYGOS_JOBS)\n\
     \  --scale S  request-budget multiplier (default 1.0; also ZYGOS_BENCH_SCALE)\n\
     \  --equeue Q  event-queue back end: heap or wheel (default wheel; also\n\
     \              ZYGOS_EQUEUE; output is byte-identical either way)\n"
    (String.concat " " (List.map fst Experiments.Figures.all_targets));
  exit 1

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0. -> f
      | _ ->
          Printf.eprintf "%s must be a positive float\n" name;
          exit 1)
  | None -> default

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt s with
      | Some i when i >= 1 -> i
      | _ ->
          Printf.eprintf "%s must be a positive integer\n" name;
          exit 1)
  | None -> default

let () =
  let jobs = ref (env_int "ZYGOS_JOBS" 1) in
  let scale = ref (env_float "ZYGOS_BENCH_SCALE" 1.0) in
  let names = ref [] in
  let rec parse = function
    | [] -> ()
    | ("-j" | "--jobs") :: v :: rest -> (
        match int_of_string_opt v with
        | Some j when j >= 1 ->
            jobs := j;
            parse rest
        | _ -> usage ())
    | "--scale" :: v :: rest -> (
        match float_of_string_opt v with
        | Some s when s > 0. ->
            scale := s;
            parse rest
        | _ -> usage ())
    | "--equeue" :: v :: rest -> (
        (* before any sweep spawns pool workers: every Sim.create () in
           every domain then picks this back end *)
        match Engine.Equeue.kind_of_string v with
        | Some k ->
            Engine.Sim.set_default_queue k;
            parse rest
        | None -> usage ())
    | ("-h" | "--help") :: _ -> usage ()
    | a :: rest when String.length a > 2 && String.sub a 0 2 = "-j" -> (
        match int_of_string_opt (String.sub a 2 (String.length a - 2)) with
        | Some j when j >= 1 ->
            jobs := j;
            parse rest
        | _ -> usage ())
    | a :: _ when String.length a > 0 && a.[0] = '-' -> usage ()
    | a :: rest ->
        names := a :: !names;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let selected =
    match List.rev !names with
    | [] | [ "all" ] -> List.map fst Experiments.Figures.all_targets
    | names ->
        List.iter
          (fun n ->
            let known (name, _) = String.equal name n in
            if not (List.exists known Experiments.Figures.all_targets) then begin
              Printf.eprintf "unknown target %S\nvalid targets: %s all\n" n
                (String.concat " " (List.map fst Experiments.Figures.all_targets));
              exit 2
            end)
          names;
        names
  in
  Printf.eprintf "zygos: targets [%s], scale=%g, jobs=%d\n%!"
    (String.concat " " selected) !scale !jobs;
  Experiments.Sweep.reset_totals ();
  List.iter
    (fun name ->
      (* Progress reporting on stderr: wall-clock never reaches the
         figures themselves, which are seeded-simulation outputs. *)
      let t0 = (Unix.gettimeofday () [@zygos.allow "determinism"]) in
      let _, target =
        List.find (fun (n, _) -> String.equal n name) Experiments.Figures.all_targets
      in
      target ~jobs:!jobs ~scale:!scale;
      flush stdout;
      Printf.eprintf "[%s done in %.1fs]\n%!" name
        ((Unix.gettimeofday () [@zygos.allow "determinism"]) -. t0))
    selected;
  let totals = Experiments.Sweep.read_totals () in
  if totals.Experiments.Sweep.points > 0 then
    Printf.eprintf
      "[sweep pool: %d points over %d sweeps, %d steals, busy %.1fs / wall %.1fs, max %d \
       workers]\n"
      totals.Experiments.Sweep.points totals.Experiments.Sweep.sweeps
      totals.Experiments.Sweep.steals totals.Experiments.Sweep.busy_s
      totals.Experiments.Sweep.wall_s totals.Experiments.Sweep.workers
