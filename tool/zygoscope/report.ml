(* Machine-readable lint report and the CI baseline ratchet.

   The report (--report lint.json) is deterministic by construction:
   every list is sorted upstream (Graph sorts findings, Lint returns
   files in sorted order), object keys are emitted in a fixed order,
   and there are no timestamps, hostnames, or hash-table iteration
   anywhere — so the bytes are identical across runs and -j settings.

   The ratchet (--ratchet LINT_BASELINE.json) compares the current
   report against a committed baseline and fails on either:
   - a NEW active finding: current count for a (file, rule, msg) key
     exceeds the baseline count (line/col excluded so pure line drift
     does not churn the baseline);
   - a VANISHED suppression: the per-(file, rule) suppression count
     dropped below the baseline. Suppressions are load-bearing
     documentation; removing one must be deliberate (regenerate the
     baseline in the same commit). *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(* ---- writer ---- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string (j : json) =
  let buf = Buffer.create 4096 in
  let rec go indent j =
    match j with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr l ->
        let pad = String.make (indent + 2) ' ' in
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf pad;
            go (indent + 2) x)
          l;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make indent ' ');
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
        let pad = String.make (indent + 2) ' ' in
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf pad;
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\": ";
            go (indent + 2) v)
          kvs;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make indent ' ');
        Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ---- minimal parser (only what the writer above emits) ---- *)

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\n' | '\t' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 32 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 't' -> Buffer.add_char buf '\t'
               | 'r' -> Buffer.add_char buf '\r'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else
                     (* non-ASCII escapes are not produced by our writer *)
                     Buffer.add_string buf (Printf.sprintf "\\u%s" hex);
                   pos := !pos + 4
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let kvs = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            kvs := (k, v) :: !kvs;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !kvs)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') ->
        let start = !pos in
        if peek () = Some '-' then advance ();
        let rec digits () =
          match peek () with
          | Some '0' .. '9' ->
              advance ();
              digits ()
          | _ -> ()
        in
        digits ();
        (* our writer never emits floats; reject a fractional part *)
        if peek () = Some '.' then fail "unexpected float";
        Int (int_of_string (String.sub s start (!pos - start)))
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ---- accessors ---- *)

let member key = function
  | Obj kvs -> ( match List.assoc_opt key kvs with Some v -> v | None -> Null)
  | _ -> Null

let arr = function Arr l -> l | _ -> []
let str_of = function Str s -> s | _ -> ""
let int_of = function Int i -> i | _ -> 0

(* ---- report construction ---- *)

let finding_json (f : Lint.finding) =
  Obj
    [
      ("file", Str f.file);
      ("line", Int f.line);
      ("col", Int f.col);
      ("rule", Str (Lint.rule_name f.rule));
      ("msg", Str f.msg);
    ]

let rule_counts findings =
  List.map
    (fun r ->
      let c =
        List.length (List.filter (fun (f : Lint.finding) -> f.rule == r) findings)
      in
      (Lint.rule_name r, Int c))
    Lint.all_rules

let report_json ~(active : Lint.finding list) ~(suppressed : Lint.finding list)
    ~(graph : Graph.result) =
  Obj
    [
      ("schema", Str "zygoscope-lint-v2");
      ("findings", Arr (List.map finding_json active));
      ("suppressions", Arr (List.map finding_json suppressed));
      ("counts_active", Obj (rule_counts active));
      ("counts_suppressed", Obj (rule_counts suppressed));
      ( "root_hot_set_sizes",
        Arr
          (List.map
             (fun (root, size) -> Obj [ ("root", Str root); ("size", Int size) ])
             graph.Graph.root_sizes) );
      ( "callgraph",
        Obj
          [
            ("functions", Int graph.Graph.stats.gs_functions);
            ("edges", Int graph.Graph.stats.gs_edges);
            ("unknown_edges", Int graph.Graph.stats.gs_unknown);
            ("hot_roots", Int graph.Graph.stats.gs_roots);
            ("hot_set", Int graph.Graph.stats.gs_hot);
          ] );
    ]

(* ---- ratchet ---- *)

let counts_by key_of items =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun it ->
      let k = key_of it in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    items;
  tbl

let finding_key j =
  Printf.sprintf "%s|%s|%s"
    (str_of (member "file" j))
    (str_of (member "rule" j))
    (str_of (member "msg" j))

let suppression_key j =
  Printf.sprintf "%s|%s" (str_of (member "file" j)) (str_of (member "rule" j))

(* Returns violation messages; empty list = ratchet holds. *)
let ratchet ~(baseline : json) ~(current : json) =
  let violations = ref [] in
  let base_f = counts_by finding_key (arr (member "findings" baseline)) in
  let cur_f = counts_by finding_key (arr (member "findings" current)) in
  let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  List.iter
    (fun k ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt cur_f k) in
      let base = Option.value ~default:0 (Hashtbl.find_opt base_f k) in
      if cur > base then
        violations :=
          Printf.sprintf "new finding (%d > baseline %d): %s" cur base k
          :: !violations)
    (List.sort_uniq compare (keys cur_f));
  let base_s = counts_by suppression_key (arr (member "suppressions" baseline)) in
  let cur_s = counts_by suppression_key (arr (member "suppressions" current)) in
  List.iter
    (fun k ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt cur_s k) in
      let base = Option.value ~default:0 (Hashtbl.find_opt base_s k) in
      if cur < base then
        violations :=
          Printf.sprintf
            "suppression vanished (%d < baseline %d): %s — if deliberate, \
             regenerate the baseline in the same commit"
            cur base k
          :: !violations)
    (List.sort_uniq compare (keys base_s));
  List.sort compare !violations

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s
